package repro

import (
	"context"
	"fmt"
)

// ExtractOptions configures the end-to-end macromodeling flow of the
// paper: sensitivity-weighted fitting followed by sensitivity-weighted
// passivity enforcement.
type ExtractOptions struct {
	// NumPoles is the macromodel order (default 12, the paper's value).
	NumPoles int
	// VFIterations bounds Vector Fitting sweeps (default 10).
	VFIterations int
	// WeightOrder is the sensitivity weight order n_w (default 8).
	WeightOrder int
	// UnweightedFit disables the sensitivity weighting of the rational
	// fit (for comparison with the standard flow).
	UnweightedFit bool
	// UnweightedEnforcement disables the sensitivity weighting of the
	// passivity enforcement cost (the paper's baseline, Fig. 5
	// "standard SOCP").
	UnweightedEnforcement bool
	// Enforce tunes the enforcement loop.
	Enforce EnforceOptions
}

// ExtractResult carries every artifact of the flow.
type ExtractResult struct {
	// Model is the final passive macromodel.
	Model *Macromodel
	// NonPassive is the fitted model before enforcement (cloned).
	NonPassive *Macromodel
	// Weight is the fitted sensitivity weight Ξ̃(s) (nil when both stages
	// run unweighted).
	Weight *Weight
	// Sensitivity holds the raw Ξ_k samples (nil when unweighted).
	Sensitivity []float64
	// Fit reports the Vector Fitting stage.
	Fit *FitReport
	// Before is the passivity report of the fitted model.
	Before *PassivityReport
	// Enforcement reports the perturbation loop (nil when Before.Passive).
	Enforcement *EnforceReport
}

// Extract runs the complete reliable macromodeling flow of the paper on
// scattering data with its nominal termination network: weighted fit,
// weight-model identification, and weighted passivity enforcement. Flags
// in opts degrade individual stages to their unweighted baselines so that
// the four combinations compared in the paper's figures are all available.
// It delegates to the shared default Session (see Session.Extract for
// cancellation and progress reporting).
func Extract(data *SData, load *Load, opts ExtractOptions) (*ExtractResult, error) {
	return extractWith(context.Background(), defaultSession, data, load, opts)
}

// extractWith is the session-routed implementation behind Extract and
// Session.Extract: the check and enforcement stages share the session's
// evaluation caches and progress sink, and ctx is consulted between
// stages (plus all the cooperative points inside check and enforcement).
func extractWith(ctx context.Context, s *Session, data *SData, load *Load, opts ExtractOptions) (*ExtractResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := data.Validate(); err != nil {
		return nil, err
	}
	if err := load.Validate(data.Ports()); err != nil {
		return nil, err
	}
	if opts.NumPoles <= 0 {
		opts.NumPoles = 12
	}
	if opts.WeightOrder <= 0 {
		opts.WeightOrder = 8
	}
	res := &ExtractResult{}

	needWeight := !opts.UnweightedFit || !opts.UnweightedEnforcement
	var fitWeights []float64
	if needWeight {
		w, xi, err := BuildWeight(data, load, opts.WeightOrder)
		if err != nil {
			return nil, fmt.Errorf("repro: weight construction: %w", err)
		}
		res.Weight = w
		res.Sensitivity = xi
		if !opts.UnweightedFit {
			fitWeights = xi
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	model, fitRep, err := Fit(data, FitOptions{
		NumPoles:   opts.NumPoles,
		Iterations: opts.VFIterations,
		Weights:    fitWeights,
		ConstrainD: 0.999, // keep the model asymptotically passive up front
	})
	if err != nil {
		return nil, fmt.Errorf("repro: fit: %w", err)
	}
	res.Model = model
	res.NonPassive = model.Clone()
	res.Fit = fitRep

	before, err := s.Check(ctx, model, opts.Enforce.Check)
	if err != nil {
		return nil, fmt.Errorf("repro: passivity check: %w", err)
	}
	res.Before = before
	if before.Passive {
		return res, nil
	}

	eopts := opts.Enforce
	eopts.ClampD = true // fitted D may sit marginally outside the unit ball
	if !opts.UnweightedEnforcement {
		eopts.Weight = res.Weight
	}
	enf, err := s.Enforce(ctx, model, eopts)
	if err != nil {
		return nil, fmt.Errorf("repro: enforcement: %w", err)
	}
	res.Enforcement = enf
	return res, nil
}
