package repro

// Representation conversions. The paper's conclusions (§V) point out that
// the sensitivity-weighting flow is independent of the native data
// representation: raw impedance or admittance samples, or scattering data
// normalized to any reference resistance, all feed the same machinery once
// mapped to a scattering set. These helpers perform those mappings; the
// representation-independence experiment (EXPERIMENTS.md, Ext-A) runs the
// full flow through each path and verifies the target impedance agrees.

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/sparam"
)

func toCMatrices(samples [][][]complex128) ([]*mat.CMatrix, error) {
	out := make([]*mat.CMatrix, len(samples))
	if len(samples) == 0 {
		return nil, ErrBadData
	}
	p := len(samples[0])
	for k, s := range samples {
		if len(s) != p {
			return nil, fmt.Errorf("%w: sample %d has %d rows, want %d", ErrBadData, k, len(s), p)
		}
		m := mat.NewCMatrix(p, p)
		for i, row := range s {
			if len(row) != p {
				return nil, fmt.Errorf("%w: sample %d row %d has %d cols", ErrBadData, k, i, len(row))
			}
			copy(m.Data[i*p:(i+1)*p], row)
		}
		out[k] = m
	}
	return out, nil
}

func fromCMatrices(samples []*mat.CMatrix) [][][]complex128 {
	out := make([][][]complex128, len(samples))
	for k, m := range samples {
		p := m.Rows
		rows := make([][]complex128, p)
		for i := 0; i < p; i++ {
			rows[i] = append([]complex128(nil), m.Row(i)...)
		}
		out[k] = rows
	}
	return out
}

// SDataFromImpedance builds a scattering dataset from tabulated impedance
// samples (z[k][i][j] = Z_ij at freqHz[k]), normalized to r0.
func SDataFromImpedance(freqHz []float64, z [][][]complex128, r0 float64) (*SData, error) {
	if len(freqHz) != len(z) {
		return nil, ErrBadData
	}
	zm, err := toCMatrices(z)
	if err != nil {
		return nil, err
	}
	sm, err := sparam.SweepZToS(zm, r0)
	if err != nil {
		return nil, fmt.Errorf("repro: impedance conversion: %w", err)
	}
	d := &SData{Freq: append([]float64(nil), freqHz...), S: sm, R0: r0}
	return d, d.Validate()
}

// SDataFromAdmittance builds a scattering dataset from tabulated admittance
// samples (y[k][i][j] = Y_ij at freqHz[k]), normalized to r0.
func SDataFromAdmittance(freqHz []float64, y [][][]complex128, r0 float64) (*SData, error) {
	if len(freqHz) != len(y) {
		return nil, ErrBadData
	}
	ym, err := toCMatrices(y)
	if err != nil {
		return nil, err
	}
	sm, err := sparam.SweepYToS(ym, r0)
	if err != nil {
		return nil, fmt.Errorf("repro: admittance conversion: %w", err)
	}
	d := &SData{Freq: append([]float64(nil), freqHz...), S: sm, R0: r0}
	return d, d.Validate()
}

// Impedance converts the dataset to tabulated impedance matrices,
// Z_k = R0·(I−Ŝ_k)⁻¹(I+Ŝ_k). It fails when a sample has an eigenvalue at
// +1 (an ideally open port has no impedance representation).
func (d *SData) Impedance() ([][][]complex128, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	zm, err := sparam.SweepSToZ(d.S, d.R0)
	if err != nil {
		return nil, fmt.Errorf("repro: impedance conversion: %w", err)
	}
	return fromCMatrices(zm), nil
}

// Admittance converts the dataset to tabulated admittance matrices,
// Y_k = R0⁻¹·(I+Ŝ_k)⁻¹(I−Ŝ_k). It fails when a sample has an eigenvalue at
// −1 (an ideally shorted port has no admittance representation).
func (d *SData) Admittance() ([][][]complex128, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	ym, err := sparam.SweepSToY(d.S, d.R0)
	if err != nil {
		return nil, fmt.Errorf("repro: admittance conversion: %w", err)
	}
	return fromCMatrices(ym), nil
}

// Renormalized returns the dataset re-referenced to a new port resistance
// r1 (Ω) via the Möbius map S' = (I−ρS)⁻¹(S−ρI), ρ = (r1−R0)/(r1+R0).
// Passivity of the data is preserved.
func (d *SData) Renormalized(r1 float64) (*SData, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	sm, err := sparam.SweepRenormalize(d.S, d.R0, r1)
	if err != nil {
		return nil, fmt.Errorf("repro: renormalization: %w", err)
	}
	out := &SData{Freq: append([]float64(nil), d.Freq...), S: sm, R0: r1}
	return out, out.Validate()
}
