package repro_test

import (
	"math"
	"math/cmplx"
	"testing"

	repro "repro"
)

// smallPDN generates the 8-port synthetic dataset shared by the root-level
// conversion tests.
func smallPDN(t *testing.T) *repro.SyntheticPDN {
	t.Helper()
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func TestSDataImpedanceRoundTrip(t *testing.T) {
	syn := smallPDN(t)
	z, err := syn.Data.Impedance()
	if err != nil {
		t.Fatal(err)
	}
	back, err := repro.SDataFromImpedance(syn.Data.Freq, z, syn.Data.R0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range syn.Data.Freq {
		for i := 0; i < syn.Data.Ports(); i++ {
			for j := 0; j < syn.Data.Ports(); j++ {
				d := cmplx.Abs(back.At(k, i, j) - syn.Data.At(k, i, j))
				if d > 1e-8 {
					t.Fatalf("S→Z→S mismatch at k=%d (%d,%d): %g", k, i, j, d)
				}
			}
		}
	}
}

func TestSDataAdmittanceRoundTrip(t *testing.T) {
	syn := smallPDN(t)
	y, err := syn.Data.Admittance()
	if err != nil {
		t.Fatal(err)
	}
	back, err := repro.SDataFromAdmittance(syn.Data.Freq, y, syn.Data.R0)
	if err != nil {
		t.Fatal(err)
	}
	for k := range syn.Data.Freq {
		for i := 0; i < syn.Data.Ports(); i++ {
			for j := 0; j < syn.Data.Ports(); j++ {
				d := cmplx.Abs(back.At(k, i, j) - syn.Data.At(k, i, j))
				if d > 1e-8 {
					t.Fatalf("S→Y→S mismatch at k=%d (%d,%d): %g", k, i, j, d)
				}
			}
		}
	}
}

func TestRenormalizedPreservesTargetImpedance(t *testing.T) {
	// Z_PDN is a physical quantity: it must not depend on the scattering
	// reference resistance of the data representation.
	syn := smallPDN(t)
	z50, err := repro.TargetImpedance(syn.Data, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	for _, r1 := range []float64{10, 50, 130} {
		ren, err := syn.Data.Renormalized(r1)
		if err != nil {
			t.Fatal(err)
		}
		if ren.R0 != r1 {
			t.Fatalf("renormalized R0 = %v want %v", ren.R0, r1)
		}
		zr, err := repro.TargetImpedance(ren, syn.Load)
		if err != nil {
			t.Fatal(err)
		}
		for k := range z50 {
			scale := 1 + cmplx.Abs(z50[k])
			if cmplx.Abs(zr[k]-z50[k]) > 1e-7*scale {
				t.Fatalf("r1=%g: Z_PDN differs at sample %d: %v vs %v", r1, k, zr[k], z50[k])
			}
		}
	}
}

func TestRenormalizedPreservesSensitivityShape(t *testing.T) {
	// The sensitivity magnitude depends on the representation (it weights
	// perturbations of the representation's entries), but it must remain
	// finite and positive after renormalization, and the renormalized
	// dataset must still be passive.
	syn := smallPDN(t)
	ren, err := syn.Data.Renormalized(5)
	if err != nil {
		t.Fatal(err)
	}
	for k, sig := range ren.MaxSingularValues() {
		if sig > 1+1e-8 {
			t.Fatalf("renormalized data not passive at sample %d: σmax=%v", k, sig)
		}
	}
	xi, err := repro.Sensitivity(ren, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range xi {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("sensitivity of renormalized data invalid at %d: %v", k, v)
		}
	}
}

func TestConversionErrorsSurface(t *testing.T) {
	// Zero-length data must be rejected everywhere.
	var empty repro.SData
	if _, err := empty.Impedance(); err == nil {
		t.Fatal("Impedance on empty data should fail")
	}
	if _, err := empty.Admittance(); err == nil {
		t.Fatal("Admittance on empty data should fail")
	}
	if _, err := empty.Renormalized(50); err == nil {
		t.Fatal("Renormalized on empty data should fail")
	}
	if _, err := repro.SDataFromImpedance([]float64{1}, nil, 50); err == nil {
		t.Fatal("length mismatch should fail")
	}
}
