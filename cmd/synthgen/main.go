// Command synthgen emits a synthetic PDN as a Touchstone file plus a JSON
// description of its nominal termination network, so the data can be fed
// to external tools (or back into pdnflow).
//
// Usage:
//
//	synthgen -preset paper45 -points 301 -out pdn.s45p -loads loads.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	repro "repro"
)

type loadJSON struct {
	Port int     `json:"port"`
	Role string  `json:"role"`
	J    float64 `json:"excitation_amps"`
}

func main() {
	preset := flag.String("preset", "small", "paper45 or small")
	points := flag.Int("points", 201, "log frequency points (plus DC)")
	out := flag.String("out", "", "output Touchstone path (default pdn.sNp)")
	loads := flag.String("loads", "loads.json", "termination description output")
	flag.Parse()

	p := repro.PDNSmall
	if strings.EqualFold(*preset, "paper45") {
		p = repro.PDNPaper45
	}
	freqs := repro.LogFreqGrid(1e3, 2e9, *points, true)
	syn, err := repro.GeneratePDN(p, freqs, 50)
	fatal(err)
	path := *out
	if path == "" {
		path = fmt.Sprintf("pdn.s%dp", syn.Data.Ports())
	}
	fatal(repro.WriteTouchstone(path, syn.Data))

	var desc []loadJSON
	for i, role := range syn.Roles {
		desc = append(desc, loadJSON{Port: i, Role: role, J: real(syn.Load.J[i])})
	}
	blob, err := json.MarshalIndent(desc, "", " ")
	fatal(err)
	fatal(os.WriteFile(*loads, blob, 0o644))
	fmt.Printf("wrote %s (%d ports, %d points) and %s\n", path, syn.Data.Ports(), syn.Data.Points(), *loads)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}
