// Command passivityd runs the passivity-enforcement service: an HTTP/JSON
// daemon wrapping a pool of long-lived repro.Session workers with
// pole-fingerprint cache-affinity scheduling (see internal/serve).
//
// Usage:
//
//	passivityd [-addr :7077] [-workers N] [-queue N] [-deadline 60s]
//	           [-parallelism N] [-cache-dir DIR] [-cache-budget MiB]
//	           [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/check    assess a macromodel (JSON body: {"model": ..., "check": {...}})
//	POST /v1/enforce  enforce passivity, returning the enforced model
//	GET  /metrics     Prometheus text-format operational metrics
//	GET  /healthz     liveness (503 while draining)
//
// The dispatcher hashes each submitted model's pole set and steers it to
// the worker whose evaluation caches are already warm for that
// fingerprint, falling back to the least-loaded worker — on library and
// parameter sweeps sharing pole sets, warm-cache hits dominate. The queue
// is bounded: beyond -queue accepted jobs, submissions fail with 429 and
// a Retry-After hint. Each job runs under a deadline (its own deadline_ms
// or -deadline) mapped to context cancellation.
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops (503),
// accepted jobs finish and deliver their results, worker caches are saved
// under -cache-dir (reloaded at the next start, so the pool — and the
// affinity placement — comes back warm), and the process exits 0. If the
// drain outlives -drain-timeout, in-flight jobs are cancelled through
// their contexts; a second signal kills the process immediately.
//
// The companion client is passcheck -remote (see cmd/passcheck).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	workers := flag.Int("workers", 0, "worker Sessions (0 = GOMAXPROCS, capped at 8)")
	queue := flag.Int("queue", 64, "max accepted-but-unfinished jobs before 429")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job deadline")
	parallelism := flag.Int("parallelism", 0, "intra-check goroutines per worker (0 = GOMAXPROCS/workers)")
	cacheDir := flag.String("cache-dir", "", "persist/reload per-worker evaluation caches under this directory")
	cacheBudget := flag.Int64("cache-budget", 0, "per-worker cache budget in MiB (0 = library default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM: max wait for in-flight jobs before cancelling them")
	maxAttempts := flag.Int("max-attempts", 0, "default per-job attempts for retryable failures (0 = 3)")
	maxRestarts := flag.Int("max-restarts", 0, "worker Session rebuilds after panics before the worker is retired (0 = 3)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "passivityd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	srv, err := serve.New(serve.Options{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultDeadline:    *deadline,
		WorkerParallelism:  *parallelism,
		CacheDir:           *cacheDir,
		CacheBudget:        *cacheBudget << 20,
		DefaultMaxAttempts: *maxAttempts,
		MaxWorkerRestarts:  *maxRestarts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "passivityd: %v\n", err)
		os.Exit(2)
	}
	if *cacheDir != "" {
		quarantined, err := srv.LoadCaches()
		if err != nil {
			fmt.Fprintf(os.Stderr, "passivityd: loading caches: %v\n", err)
		} else {
			fmt.Printf("passivityd: loaded caches from %s\n", *cacheDir)
		}
		if quarantined > 0 {
			fmt.Fprintf(os.Stderr, "passivityd: quarantined %d corrupt cache file(s) (renamed *.corrupt); affected pole sets start cold\n", quarantined)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("passivityd: listening on %s (%d workers, queue %d)\n", *addr, srv.Workers(), *queue)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "passivityd: %v\n", err)
		os.Exit(2)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills immediately
	fmt.Fprintln(os.Stderr, "passivityd: draining (in-flight jobs finish, new ones get 503)")

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first: it stops admission and completes the accepted jobs, so
	// the HTTP handlers blocked on results unblock; Shutdown then closes
	// the listener and waits for those handlers to write their responses.
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "passivityd: drain: %v\n", err)
	} else if *cacheDir != "" {
		fmt.Printf("passivityd: caches saved to %s\n", *cacheDir)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "passivityd: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "passivityd: drained cleanly")
}
