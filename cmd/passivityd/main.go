// Command passivityd runs the passivity-enforcement service: an HTTP/JSON
// daemon wrapping a pool of long-lived repro.Session workers with
// pole-fingerprint cache-affinity scheduling (see internal/serve), and —
// with -coordinator or -join — the cluster layer that shards batches
// across a fleet of such daemons (see internal/cluster).
//
// Usage:
//
//	passivityd [-addr :7077] [-workers N] [-queue N] [-deadline 60s]
//	           [-parallelism N] [-cache-dir DIR] [-cache-budget MiB]
//	           [-drain-timeout 30s]
//	passivityd -coordinator [-addr :7077] [-lease-ttl 15s] [-max-pending N]
//	passivityd -join URL [-name HOST] [...single-host flags]
//
// Endpoints (single-host daemon and coordinator alike):
//
//	POST /v1/check    assess a macromodel (JSON body: {"model": ..., "check": {...}})
//	POST /v1/enforce  enforce passivity, returning the enforced model
//	GET  /metrics     Prometheus text-format operational metrics
//	GET  /healthz     readiness (503 while loading caches or draining)
//
// The dispatcher hashes each submitted model's pole set and steers it to
// the worker whose evaluation caches are already warm for that
// fingerprint, falling back to the least-loaded worker — on library and
// parameter sweeps sharing pole sets, warm-cache hits dominate. The queue
// is bounded: beyond -queue accepted jobs, submissions fail with 429 and
// a Retry-After hint. Each job runs under a deadline (its own deadline_ms
// or -deadline) mapped to context cancellation.
//
// In -coordinator mode the process serves the same client surface but
// owns no workers: jobs enter a ledger and are leased to the hosts that
// joined with -join, placed by pole-fingerprint affinity with work
// stealing, warm caches shipped ahead of the models. A host that
// vanishes mid-lease loses the lease, and the item requeues onto a
// different host from the pristine admitted model. `passcheck -remote`
// pointed at a coordinator fans out transparently.
//
// In -join mode the daemon additionally runs a worker agent pulling
// leases from the coordinator at URL; its local endpoints stay up for
// observability.
//
// On SIGINT/SIGTERM the daemon drains gracefully: admission stops (503),
// accepted jobs finish and deliver their results, worker caches are saved
// under -cache-dir (reloaded at the next start, so the pool — and the
// affinity placement — comes back warm), and the process exits 0. Until
// that reload (and its corrupt-file quarantine scan) completes, /healthz
// answers 503 "loading" so a fleet load balancer does not route jobs to a
// cold-loading host. If the drain outlives -drain-timeout, in-flight jobs
// are cancelled through their contexts; a second signal kills the process
// immediately.
//
// The companion client is passcheck -remote (see cmd/passcheck).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":7077", "listen address")
	workers := flag.Int("workers", 0, "worker Sessions (0 = GOMAXPROCS, capped at 8)")
	queue := flag.Int("queue", 64, "max accepted-but-unfinished jobs before 429")
	deadline := flag.Duration("deadline", 60*time.Second, "default per-job deadline")
	parallelism := flag.Int("parallelism", 0, "intra-check goroutines per worker (0 = GOMAXPROCS/workers)")
	cacheDir := flag.String("cache-dir", "", "persist/reload per-worker evaluation caches under this directory")
	cacheBudget := flag.Int64("cache-budget", 0, "per-worker cache budget in MiB (0 = library default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "SIGTERM: max wait for in-flight jobs before cancelling them")
	maxAttempts := flag.Int("max-attempts", 0, "default per-job attempts for retryable failures (0 = 3)")
	maxRestarts := flag.Int("max-restarts", 0, "worker Session rebuilds after panics before the worker is retired (0 = 3)")
	coordinator := flag.Bool("coordinator", false, "run the cluster coordinator instead of a worker daemon")
	joinURL := flag.String("join", "", "coordinator URL to join as a cluster worker host")
	name := flag.String("name", "", "cluster worker name (-join; default hostname+addr)")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "coordinator: lease lifetime without a heartbeat")
	maxPending := flag.Int("max-pending", 0, "coordinator: max admitted-but-unfinished jobs before 429 (0 = 4096)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "passivityd: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}
	if *coordinator && *joinURL != "" {
		fmt.Fprintln(os.Stderr, "passivityd: -coordinator and -join are mutually exclusive")
		os.Exit(2)
	}

	if *coordinator {
		runCoordinator(*addr, *leaseTTL, *maxPending)
		return
	}

	srv, err := serve.New(serve.Options{
		Workers:            *workers,
		QueueDepth:         *queue,
		DefaultDeadline:    *deadline,
		WorkerParallelism:  *parallelism,
		CacheDir:           *cacheDir,
		CacheBudget:        *cacheBudget << 20,
		DefaultMaxAttempts: *maxAttempts,
		MaxWorkerRestarts:  *maxRestarts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "passivityd: %v\n", err)
		os.Exit(2)
	}

	// Listen before the cache load, not after: the daemon answers
	// /healthz with 503 "loading" until the reload and its quarantine
	// scan finish, so the fleet sees "alive but not ready" instead of
	// "connection refused" during a slow warm start.
	srv.SetReady(false)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("passivityd: listening on %s (%d workers, queue %d)\n", *addr, srv.Workers(), *queue)

	if *cacheDir != "" {
		quarantined, err := srv.LoadCaches()
		if err != nil {
			fmt.Fprintf(os.Stderr, "passivityd: loading caches: %v\n", err)
		} else {
			fmt.Printf("passivityd: loaded caches from %s\n", *cacheDir)
		}
		if quarantined > 0 {
			fmt.Fprintf(os.Stderr, "passivityd: quarantined %d corrupt cache file(s) (renamed *.corrupt); affected pole sets start cold\n", quarantined)
		}
	}
	srv.SetReady(true)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var agent *cluster.Agent
	if *joinURL != "" {
		agentName := *name
		if agentName == "" {
			host, _ := os.Hostname()
			agentName = host + *addr
		}
		agent, err = cluster.NewAgent(srv, cluster.AgentOptions{Coordinator: *joinURL, Name: agentName})
		if err == nil {
			err = agent.Start(ctx)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "passivityd: joining cluster: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("passivityd: joined cluster at %s as %q\n", *joinURL, agentName)
	}

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "passivityd: %v\n", err)
		os.Exit(2)
	case <-ctx.Done():
	}
	stop() // restore default handling: a second signal kills immediately
	fmt.Fprintln(os.Stderr, "passivityd: draining (in-flight jobs finish, new ones get 503)")
	if agent != nil {
		// Stop pulling leases first; completions for jobs still running
		// would be dropped anyway once the coordinator requeues them.
		agent.Stop()
	}

	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first: it stops admission and completes the accepted jobs, so
	// the HTTP handlers blocked on results unblock; Shutdown then closes
	// the listener and waits for those handlers to write their responses.
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "passivityd: drain: %v\n", err)
	} else if *cacheDir != "" {
		fmt.Printf("passivityd: caches saved to %s\n", *cacheDir)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "passivityd: shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "passivityd: drained cleanly")
}

// runCoordinator serves the cluster coordinator until SIGINT/SIGTERM.
func runCoordinator(addr string, leaseTTL time.Duration, maxPending int) {
	c := cluster.NewCoordinator(cluster.Options{LeaseTTL: leaseTTL, MaxPending: maxPending})
	httpSrv := &http.Server{Addr: addr, Handler: c.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("passivityd: coordinating on %s (lease TTL %s)\n", addr, leaseTTL)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "passivityd: %v\n", err)
		os.Exit(2)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "passivityd: coordinator shutting down (unfinished jobs fail with 503)")
	c.Close()
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "passivityd: shutdown: %v\n", err)
	}
}
