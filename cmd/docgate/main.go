// Command docgate is the CI documentation gate: it fails (exit 1) when an
// exported symbol of the root package lacks a doc comment or when any
// package — root, internal/..., cmd/... — lacks a package doc comment, and
// prints the doc-coverage figures either way.
//
// Usage:
//
//	docgate [repo-root]
//
// The root defaults to the current directory. Test files are ignored; a
// symbol in a grouped declaration counts as documented when either the
// spec or the group carries the comment, matching what go doc shows.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string

	pkgDirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: %v\n", err)
		os.Exit(2)
	}
	pkgsDocumented := 0
	for _, dir := range pkgDirs {
		name, hasDoc, err := packageDoc(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docgate: %s: %v\n", dir, err)
			os.Exit(2)
		}
		if name == "" {
			continue // no buildable non-test Go files
		}
		if hasDoc {
			pkgsDocumented++
		} else {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, name))
		}
	}

	documented, total, missing, err := rootSymbolCoverage(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docgate: %v\n", err)
		os.Exit(2)
	}
	for _, m := range missing {
		problems = append(problems, fmt.Sprintf("root package: exported %s lacks a doc comment", m))
	}

	fmt.Printf("docgate: package docs %d/%d, root exported symbols documented %d/%d (%.1f%%)\n",
		pkgsDocumented, len(pkgDirs), documented, total, 100*float64(documented)/float64(max(total, 1)))
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Printf("docgate: FAIL %s\n", p)
		}
		os.Exit(1)
	}
	fmt.Println("docgate: OK")
}

// packageDirs lists the repo root plus every directory under internal/ and
// cmd/ that contains Go files.
func packageDirs(root string) ([]string, error) {
	dirs := []string{root}
	for _, sub := range []string{"internal", "cmd"} {
		if _, statErr := os.Stat(filepath.Join(root, sub)); os.IsNotExist(statErr) {
			continue
		}
		err := filepath.WalkDir(filepath.Join(root, sub), func(path string, d os.DirEntry, err error) error {
			if err != nil || !d.IsDir() {
				return err
			}
			hasGo, err := filepath.Glob(filepath.Join(path, "*.go"))
			if err != nil {
				return err
			}
			if len(hasGo) > 0 {
				dirs = append(dirs, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// parseDir parses the non-test Go files of one directory.
func parseDir(dir string) (map[string]*ast.Package, error) {
	fset := token.NewFileSet()
	return parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
}

// packageDoc reports whether any file of the package in dir carries a
// package doc comment.
func packageDoc(dir string) (name string, hasDoc bool, err error) {
	pkgs, err := parseDir(dir)
	if err != nil {
		return "", false, err
	}
	for pkgName, pkg := range pkgs {
		name = pkgName
		for _, f := range pkg.Files {
			if f.Doc != nil && len(f.Doc.List) > 0 {
				return name, true, nil
			}
		}
	}
	return name, false, nil
}

// rootSymbolCoverage audits every exported top-level symbol (functions,
// methods on exported receivers, types, consts, vars) of the root package.
func rootSymbolCoverage(root string) (documented, total int, missing []string, err error) {
	pkgs, err := parseDir(root)
	if err != nil {
		return 0, 0, nil, err
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					total++
					if d.Doc != nil {
						documented++
					} else {
						missing = append(missing, declName(d))
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						names, doc := specNames(spec)
						hasDoc := d.Doc != nil || doc != nil
						for _, n := range names {
							if !n.IsExported() {
								continue
							}
							total++
							if hasDoc {
								documented++
							} else {
								missing = append(missing, fmt.Sprintf("%s %s", d.Tok, n.Name))
							}
						}
					}
				}
			}
		}
	}
	return documented, total, missing, nil
}

// receiverExported reports whether a function is top-level or its receiver
// type is exported (methods on unexported types are not public API).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// declName renders a function or method identifier for the failure report.
func declName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return "func " + d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return fmt.Sprintf("method %s.%s", id.Name, d.Name.Name)
	}
	return "method " + d.Name.Name
}

// specNames extracts the declared identifiers and per-spec doc of one spec.
func specNames(spec ast.Spec) ([]*ast.Ident, *ast.CommentGroup) {
	switch s := spec.(type) {
	case *ast.TypeSpec:
		return []*ast.Ident{s.Name}, s.Doc
	case *ast.ValueSpec:
		return s.Names, s.Doc
	}
	return nil, nil
}
