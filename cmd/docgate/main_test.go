package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFixture lays out a minimal repo root with one documented and one
// undocumented exported symbol, plus an internal package without a
// package doc.
func writeFixture(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("root.go", `// Package fixture is documented.
package fixture

// Documented carries a doc comment.
func Documented() {}

func Undocumented() {}

// Sess is a documented type.
type Sess struct{}

// Good is documented.
func (s *Sess) Good() {}

func (s *Sess) Bad() {}

type UndocType struct{}

func helper() {} // unexported: never audited
`)
	write("root_test.go", `package fixture

// ExportedInTest would trip the gate if test files were audited.
func ExportedInTest() {}
`)
	write("internal/sub/sub.go", `package sub

func F() {}
`)
	return root
}

func TestRootSymbolCoverageFlagsUndocumentedSymbols(t *testing.T) {
	root := writeFixture(t)
	documented, total, missing, err := rootSymbolCoverage(root)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 {
		t.Fatalf("audited %d symbols, want 6 (Documented, Undocumented, Sess, Good, Bad, UndocType); missing list: %v", total, missing)
	}
	if documented != 3 {
		t.Fatalf("%d documented, want 3", documented)
	}
	want := map[string]bool{
		"func Undocumented": false,
		"method Sess.Bad":   false,
		"type UndocType":    false,
	}
	for _, m := range missing {
		if _, ok := want[m]; !ok {
			t.Fatalf("unexpected missing entry %q (all: %v)", m, missing)
		}
		want[m] = true
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("gate did not flag %s; flagged: %v", name, missing)
		}
	}
	for _, m := range missing {
		if strings.Contains(m, "ExportedInTest") || strings.Contains(m, "helper") {
			t.Fatalf("gate audited a test-file or unexported symbol: %v", missing)
		}
	}
}

func TestPackageDocDetection(t *testing.T) {
	root := writeFixture(t)
	name, hasDoc, err := packageDoc(root)
	if err != nil {
		t.Fatal(err)
	}
	if name != "fixture" || !hasDoc {
		t.Fatalf("root package: name=%q hasDoc=%v, want fixture/true", name, hasDoc)
	}
	name, hasDoc, err = packageDoc(filepath.Join(root, "internal", "sub"))
	if err != nil {
		t.Fatal(err)
	}
	if name != "sub" || hasDoc {
		t.Fatalf("internal/sub: name=%q hasDoc=%v, want sub/false", name, hasDoc)
	}
}

// TestGateAcceptsThisRepo pins the gate green on the repository itself —
// the same invocation CI runs, so a PR adding an undocumented root symbol
// fails here too.
func TestGateAcceptsThisRepo(t *testing.T) {
	repoRoot := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(repoRoot, "go.mod")); err != nil {
		t.Skip("repo root not found")
	}
	_, total, missing, err := rootSymbolCoverage(repoRoot)
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("audited no root symbols")
	}
	if len(missing) > 0 {
		t.Fatalf("root package has undocumented exported symbols: %v", missing)
	}
}
