package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// testClient builds a remoteRun with fast, deterministic backoff against
// the given server.
func testClient(t *testing.T, base string, retries int) *remoteRun {
	t.Helper()
	return &remoteRun{
		ctx: context.Background(), base: base, cli: &http.Client{},
		retries: retries, waitBase: time.Millisecond, waitMax: 5 * time.Millisecond,
		rng: rand.New(rand.NewSource(1)),
	}
}

func okBody(t *testing.T) []byte {
	t.Helper()
	blob, err := json.Marshal(&serve.Response{
		Worker: 1, Report: &repro.PassivityReport{Passive: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// The client must absorb queue-full 429s and server-side 5xx hiccups and
// still deliver the eventual 200.
func TestPostRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ok := okBody(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, "bad gateway", http.StatusBadGateway)
		default:
			w.Write(ok)
		}
	}))
	defer srv.Close()

	r := testClient(t, srv.URL, 5)
	resp, err := r.post("/v1/check", &serve.Request{})
	if err != nil {
		t.Fatalf("post after flaky starts: %v", err)
	}
	if resp.Worker != 1 || !resp.Report.Passive {
		t.Fatalf("decoded response mangled: %+v", resp)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3 (429, 502, 200)", n)
	}
}

// A non-2xx with a body that is not a Response must surface the HTTP
// status and a snippet of the raw body, not a JSON decode error.
func TestPostUndecodableErrorBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, "<html>proxy exploded</html>")
	}))
	defer srv.Close()

	r := testClient(t, srv.URL, 2)
	_, err := r.post("/v1/check", &serve.Request{})
	if err == nil {
		t.Fatal("want error for persistent 500")
	}
	for _, want := range []string{"HTTP 500", "proxy exploded"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not surface %q", err, want)
		}
	}
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusInternalServerError {
		t.Fatalf("want *httpError with status 500, got %#v", err)
	}
}

// Client-side 4xx statuses are final: one request, no backoff, and the
// daemon's own error string is surfaced.
func TestPostClientErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(&serve.Response{Error: "missing model"})
	}))
	defer srv.Close()

	r := testClient(t, srv.URL, 5)
	_, err := r.post("/v1/check", &serve.Request{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") || !strings.Contains(err.Error(), "missing model") {
		t.Fatalf("want daemon error surfaced with status, got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("4xx was retried: %d calls", n)
	}
}

// A daemon that never recovers exhausts the attempt budget.
func TestPostExhaustsRetries(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	r := testClient(t, srv.URL, 3)
	_, err := r.post("/v1/check", &serve.Request{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 503") {
		t.Fatalf("want HTTP 503 after exhausted retries, got %v", err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want exactly the 3-attempt budget", n)
	}
}

// Connection-level failures (daemon down) are retryable too.
func TestPostConnectionErrorRetried(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	base := srv.URL
	srv.Close() // nothing listens here any more

	r := testClient(t, base, 2)
	start := time.Now()
	_, err := r.post("/v1/check", &serve.Request{})
	if err == nil {
		t.Fatal("want connection error")
	}
	if !retryableRemote(err) {
		t.Fatalf("connection error classified non-retryable: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("connection retries did not stay bounded")
	}
}

func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"2", 2 * time.Second},
		{"0", 0},
		{"soon", 0},
		{"-3", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// HTTP-date form: a timestamp well in the future yields a positive
	// wait; one in the past yields zero.
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(future); got < 80*time.Second || got > 91*time.Second {
		t.Errorf("parseRetryAfter(future date) = %v, want ~90s", got)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if got := parseRetryAfter(past); got != 0 {
		t.Errorf("parseRetryAfter(past date) = %v, want 0", got)
	}
}

// backoff grows exponentially from waitBase, is capped at waitMax, stays
// positive (jitter never zeroes it out), and yields to the daemon's
// Retry-After hint.
func TestBackoffSchedule(t *testing.T) {
	r := &remoteRun{
		waitBase: 100 * time.Millisecond, waitMax: time.Second,
		rng: rand.New(rand.NewSource(7)),
	}
	plain := errors.New("conn reset")
	for attempt := 1; attempt <= 8; attempt++ {
		ideal := r.waitBase << (attempt - 1)
		if ideal > r.waitMax || ideal <= 0 {
			ideal = r.waitMax
		}
		for i := 0; i < 32; i++ {
			d := r.backoff(attempt, plain)
			if d < ideal/2 || d > ideal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, ideal/2, ideal)
			}
		}
	}
	hinted := &httpError{status: 429, retryAfter: 3 * time.Second}
	for i := 0; i < 32; i++ {
		if d := r.backoff(1, hinted); d < 1500*time.Millisecond || d > 3*time.Second {
			t.Fatalf("Retry-After hint ignored: backoff %v", d)
		}
	}
}
