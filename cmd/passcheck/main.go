// Command passcheck assesses the passivity of tabulated scattering data
// (Touchstone .sNp) or of a fitted macromodel (JSON produced by the
// library), reports violations, and optionally fits + enforces in one shot.
//
// Usage:
//
//	passcheck [-ports N] [-fit n] [-enforce] [-save out.json] [-method m] input.s4p
//	passcheck -model model.json [-enforce] [-save out.json] [-method m]
//	passcheck -batch 'lib/*.json' [-enforce] [-workers N] [-save-dir out/]
//
// -method selects the detection algorithm: auto (Hamiltonian for small
// models, multi-stage adaptive sampling otherwise), hamiltonian, sweep, or
// adaptive. -sweep tunes the fixed sweep's grid density; the adaptive
// method ignores it and is tuned by -seedpoints instead.
//
// -batch runs over a whole model library (a glob of saved macromodel JSON
// files): with -enforce the models are enforced in parallel shards
// (-workers) through the batch subsystem, otherwise each is checked. Per-
// model failures are reported without aborting the batch; -save-dir writes
// the final models under their original base names.
//
// Exit status: 0 when every final artifact is passive, 1 when not, 2 on
// usage or I/O errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	repro "repro"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "passcheck: "+format+"\n", args...)
	os.Exit(code)
}

func main() {
	ports := flag.Int("ports", 0, "port count when not parsable from the extension")
	modelPath := flag.String("model", "", "check a saved macromodel (JSON) instead of raw data")
	fit := flag.Int("fit", 0, "fit a macromodel with this many poles before checking")
	enforce := flag.Bool("enforce", false, "enforce passivity on the (fitted or loaded) model")
	save := flag.String("save", "", "save the final model as JSON")
	sweep := flag.Int("sweep", 1200, "sweep grid points for the model check")
	seedPoints := flag.Int("seedpoints", 0, "adaptive method: coarse seed grid points (0 = library default)")
	method := flag.String("method", "auto", "passivity check method: auto|hamiltonian|sweep|adaptive")
	batch := flag.String("batch", "", "glob of saved macromodel JSON files to process as a library")
	workers := flag.Int("workers", 0, "batch mode: model-level parallel shards (0 = GOMAXPROCS)")
	saveDir := flag.String("save-dir", "", "batch mode: directory to save final models into")
	flag.Parse()

	var checkMethod repro.CheckMethod
	switch *method {
	case "auto":
		checkMethod = repro.CheckAuto
	case "hamiltonian":
		checkMethod = repro.CheckHamiltonian
	case "sweep":
		checkMethod = repro.CheckSweep
	case "adaptive":
		checkMethod = repro.CheckAdaptive
	default:
		fail(2, "unknown -method %q (want auto, hamiltonian, sweep or adaptive)", *method)
	}

	chkBase := repro.CheckOptions{Method: checkMethod, SweepPoints: *sweep, AdaptiveSeedPoints: *seedPoints}
	if *batch != "" {
		if flag.NArg() != 0 {
			fail(2, "-batch takes no positional arguments (got %d)", flag.NArg())
		}
		runBatch(*batch, chkBase, *enforce, *workers, *saveDir)
		return
	}

	var model *repro.Macromodel
	switch {
	case *modelPath != "":
		var err error
		model, err = repro.LoadMacromodel(*modelPath)
		if err != nil {
			fail(2, "loading model: %v", err)
		}
		fmt.Printf("model: %d ports, %d poles, R0 = %g Ω\n", model.Ports(), model.NumPoles(), model.R0())
	case flag.NArg() == 1:
		data, err := repro.ReadTouchstone(flag.Arg(0), *ports)
		if err != nil {
			fail(2, "reading %s: %v", flag.Arg(0), err)
		}
		fmt.Printf("data: %d ports, %d samples, R0 = %g Ω\n", data.Ports(), data.Points(), data.R0)
		worst, at := 0.0, 0.0
		for k, s := range data.MaxSingularValues() {
			if s > worst {
				worst, at = s, data.Freq[k]
			}
		}
		fmt.Printf("data passivity: σmax = %.6f at %.4g Hz", worst, at)
		if worst > 1+1e-9 {
			fmt.Println("  ** data itself is non-passive **")
		} else {
			fmt.Println("  (samples passive)")
		}
		if *fit <= 0 {
			if worst > 1+1e-9 {
				os.Exit(1)
			}
			return
		}
		model, _, err = repro.Fit(data, repro.FitOptions{NumPoles: *fit, ConstrainD: 0.999})
		if err != nil {
			fail(2, "fit: %v", err)
		}
		fmt.Printf("fitted %d poles, RMS error %.3g\n", *fit, model.RMSError(data))
	default:
		fail(2, "need exactly one Touchstone file or -model (got %d args)", flag.NArg())
	}

	chkOpts := chkBase
	rep, err := repro.CheckPassivity(model, chkOpts)
	if err != nil {
		fail(2, "check: %v", err)
	}
	printReport(rep)

	if !rep.Passive && *enforce {
		enf, err := repro.EnforcePassivity(model, repro.EnforceOptions{Check: chkOpts, ClampD: true})
		if err != nil {
			fail(2, "enforce: %v", err)
		}
		fmt.Printf("enforced in %d iterations (D clamped: %v)\n", enf.Iterations, enf.DClamped)
		rep = enf.Final
		printReport(rep)
	}
	if *save != "" && model != nil {
		if err := model.SaveFile(*save); err != nil {
			fail(2, "saving: %v", err)
		}
		fmt.Printf("saved model to %s\n", *save)
	}
	if !rep.Passive {
		os.Exit(1)
	}
}

// runBatch processes a library of saved models: load every glob match,
// check or enforce the whole set, print per-model lines plus aggregate
// stats, and exit with the library verdict.
func runBatch(glob string, chkOpts repro.CheckOptions, enforce bool, workers int, saveDir string) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fail(2, "bad -batch pattern %q: %v", glob, err)
	}
	if len(paths) == 0 {
		fail(2, "-batch %q matched no files", glob)
	}
	sort.Strings(paths)
	models := make([]*repro.Macromodel, len(paths))
	for i, p := range paths {
		if models[i], err = repro.LoadMacromodel(p); err != nil {
			fail(2, "loading %s: %v", p, err)
		}
	}
	fmt.Printf("batch: %d models\n", len(models))

	allPassive := true
	if enforce {
		rep, err := repro.EnforcePassivityBatch(models, repro.BatchEnforceOptions{
			Enforce: repro.EnforceOptions{Check: chkOpts, ClampD: true},
			Workers: workers,
		})
		if err != nil {
			fail(2, "batch enforce: %v", err)
		}
		for i, p := range paths {
			switch {
			case rep.Errors[i] != nil:
				fmt.Printf("  %s: FAILED: %v\n", p, rep.Errors[i])
				allPassive = false
			default:
				r := rep.Reports[i]
				fmt.Printf("  %s: passive=%v iterations=%d σmax=%.6f\n",
					p, r.Passive, r.Iterations, r.Final.MaxSigma)
				if !r.Passive {
					allPassive = false
				}
			}
		}
		fmt.Printf("batch summary: %d/%d passive, %d failed, %d total iterations, worst σ=%.6f\n",
			rep.Passive, rep.Models, rep.Failed, rep.TotalIterations, rep.WorstSigma)
	} else {
		for i, p := range paths {
			rep, err := repro.CheckPassivity(models[i], chkOpts)
			if err != nil {
				fmt.Printf("  %s: FAILED: %v\n", p, err)
				allPassive = false
				continue
			}
			fmt.Printf("  %s: passive=%v σmax=%.6f at %.4g Hz (%d samples)\n",
				p, rep.Passive, rep.MaxSigma, rep.MaxFreqHz, rep.Samples)
			if !rep.Passive {
				allPassive = false
			}
		}
	}
	if saveDir != "" {
		if err := os.MkdirAll(saveDir, 0o755); err != nil {
			fail(2, "creating %s: %v", saveDir, err)
		}
		for i, p := range paths {
			out := filepath.Join(saveDir, filepath.Base(p))
			if err := models[i].SaveFile(out); err != nil {
				fail(2, "saving %s: %v", out, err)
			}
		}
		fmt.Printf("saved %d models to %s\n", len(paths), saveDir)
	}
	if !allPassive {
		os.Exit(1)
	}
}

func printReport(rep *repro.PassivityReport) {
	fmt.Printf("model passivity [%s]: passive=%v σmax=%.6f at %.4g Hz, σmax(D)=%.6f",
		rep.Method, rep.Passive, rep.MaxSigma, rep.MaxFreqHz, rep.DSigma)
	if rep.Samples > 0 {
		fmt.Printf(" (%d samples)", rep.Samples)
	}
	fmt.Println()
	for i, v := range rep.Violations {
		fmt.Printf("  violation %d: σ=%.6f at %.4g Hz, band [%.4g, %.4g] Hz\n",
			i+1, v.SigmaPeak, v.FreqPeakHz, v.FreqLoHz, v.FreqHiHz)
	}
}
