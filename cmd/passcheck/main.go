// Command passcheck assesses the passivity of tabulated scattering data
// (Touchstone .sNp) or of a fitted macromodel (JSON produced by the
// library), reports violations, and optionally fits + enforces in one shot.
//
// Usage:
//
//	passcheck [-ports N] [-fit n] [-enforce] [-certify] [-save out.json] [-method m] input.s4p
//	passcheck -model model.json [-enforce] [-certify] [-weight w.json] [-save out.json] [-method m]
//	passcheck -batch 'lib/*.json' [-enforce] [-certify] [-weight w.json | -load spec] [-workers N] [-save-dir out/]
//	passcheck -remote http://host:7077 {-model m.json | -batch 'lib/*.json'} [-enforce] [-certify] [-deadline 30s] [-retries 5] [-retry-wait 250ms]
//
// -method selects the detection algorithm: auto (Hamiltonian for small
// models, multi-stage adaptive sampling otherwise), hamiltonian, sweep, or
// adaptive. -sweep tunes the fixed sweep's grid density; the adaptive
// method ignores it and is tuned by -seedpoints instead.
//
// -certify escalates every passive verdict through the staged
// certification pipeline (closed-form tail-bound interval certificates,
// then an exact or restricted-band Hamiltonian eigentest): a plain check
// reports the certifying stage and its cost; with -enforce, violation
// bands the pipeline proves re-enter the enforcement loop as constraints,
// so a model only comes back passive together with a certificate covering
// the whole frequency axis. The report lines name the stage that settled
// the verdict, the largest eigenproblem solved and the intervals each
// stage certified.
//
// -batch runs over a whole model library (a glob of saved macromodel JSON
// files): with -enforce the models are enforced in parallel shards
// (-workers) through the batch subsystem, otherwise each is checked. Per-
// model failures are reported without aborting the batch; -save-dir writes
// the final models under their original base names.
//
// All work runs through a long-lived repro.Session. -cache-dir names a
// directory of persisted evaluation caches (one file per pole-set
// fingerprint): existing caches are loaded before the run, so repeated
// library sweeps over fixed pole sets start warm, and the session state is
// saved back afterwards. SIGINT/SIGTERM cancel the run gracefully — in-
// flight models drain, partial results are reported, caches are still
// saved — and exit with status 130.
//
// Enforcement is sensitivity-weighted (the paper's scheme, built on the
// closed-form cascade Gramian) when either weight source is given:
//
//   - -weight w.json loads one saved weight (Weight.SaveFile) shared by
//     every model;
//   - -load spec (batch mode) derives a per-model weight from each model's
//     own response under a termination network. The spec is a comma-
//     separated per-port list of open | short | r:R | decap:C:ESR:ESL |
//     die:R:C | vrm:R:L (a single term applies to all ports); -obs picks
//     the observation port and -weight-order the weight order n_w.
//
// -remote ships the work to a running passivityd daemon (cmd/passivityd)
// instead of the in-process engine: each -model or -batch entry is POSTed
// as a job and the daemon's pole-fingerprint affinity scheduler places it
// on the worker whose evaluation caches are already warm for its pole
// set. The per-model lines additionally report the serving worker and
// whether the placement was an affinity hit; -deadline bounds each job's
// running time server-side. Weighted enforcement (-weight/-load) and
// -cache-dir are local-mode features — the daemon owns its caches.
//
// The remote client retries connection errors, 429 queue-full rejections
// and 5xx responses with bounded exponential backoff plus jitter,
// honoring the daemon's Retry-After hint: -retries caps the attempts per
// request and -retry-wait sets the first backoff step. When the daemon
// itself retried a job after a worker fault, the result line carries an
// attempts=N tail.
//
// Exit status: 0 when every final artifact is passive, 1 when not, 2 on
// usage or I/O errors, 130 when interrupted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	repro "repro"
	"repro/internal/serve"
)

func fail(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "passcheck: "+format+"\n", args...)
	os.Exit(code)
}

// run carries the per-invocation session state: the engine, the run
// context (cancelled by SIGINT/SIGTERM) and the cache directory.
type run struct {
	ctx      context.Context
	sess     *repro.Session
	cacheDir string
}

// saveCaches persists the session caches when -cache-dir is set.
func (r *run) saveCaches() {
	if r.cacheDir == "" {
		return
	}
	if err := r.sess.SaveCache(r.cacheDir); err != nil {
		fmt.Fprintf(os.Stderr, "passcheck: saving caches: %v\n", err)
		return
	}
	st := r.sess.CacheStats()
	fmt.Printf("saved %d evaluation caches to %s (%d basis + %d σ entries)\n",
		st.Models, r.cacheDir, st.BasisEntries, st.SigmaEntries)
}

// interrupted reports a context cancellation, saves the caches and exits
// with the conventional SIGINT status.
func (r *run) interrupted() {
	fmt.Fprintln(os.Stderr, "passcheck: interrupted — partial results above")
	r.saveCaches()
	os.Exit(130)
}

// checkErr fails on an error, routing cancellations through interrupted.
func (r *run) checkErr(err error, what string) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		r.interrupted()
	}
	fail(2, "%s: %v", what, err)
}

func main() {
	ports := flag.Int("ports", 0, "port count when not parsable from the extension")
	modelPath := flag.String("model", "", "check a saved macromodel (JSON) instead of raw data")
	fit := flag.Int("fit", 0, "fit a macromodel with this many poles before checking")
	enforce := flag.Bool("enforce", false, "enforce passivity on the (fitted or loaded) model")
	certify := flag.Bool("certify", false, "escalate passive verdicts through the certification pipeline (see doc)")
	save := flag.String("save", "", "save the final model as JSON")
	sweep := flag.Int("sweep", 1200, "sweep grid points for the model check")
	seedPoints := flag.Int("seedpoints", 0, "adaptive method: coarse seed grid points (0 = library default)")
	method := flag.String("method", "auto", "passivity check method: auto|hamiltonian|sweep|adaptive")
	batch := flag.String("batch", "", "glob of saved macromodel JSON files to process as a library")
	workers := flag.Int("workers", 0, "batch mode: model-level parallel shards (0 = GOMAXPROCS)")
	saveDir := flag.String("save-dir", "", "batch mode: directory to save final models into")
	weightPath := flag.String("weight", "", "saved sensitivity weight (JSON) for weighted enforcement")
	loadSpec := flag.String("load", "", "batch mode: termination spec deriving per-model weights (see doc)")
	weightOrder := flag.Int("weight-order", 8, "-load mode: weight order n_w")
	obsPort := flag.Int("obs", 0, "-load mode: observation port of the target impedance")
	cacheDir := flag.String("cache-dir", "", "persist/reload session evaluation caches in this directory")
	remote := flag.String("remote", "", "base URL of a passivityd daemon to run the jobs on (e.g. http://host:7077)")
	deadline := flag.Duration("deadline", 0, "-remote mode: per-job deadline (0 = daemon default)")
	retries := flag.Int("retries", 5, "-remote mode: attempts per request for connection errors, 429 and 5xx")
	retryWait := flag.Duration("retry-wait", 250*time.Millisecond, "-remote mode: first backoff step (doubled per attempt, with jitter)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *remote != "" {
		if _, err := serve.ParseCheckMethod(*method); err != nil {
			fail(2, "%v", err)
		}
		if *weightPath != "" || *loadSpec != "" {
			fail(2, "weighted enforcement is local-only; drop -weight/-load in -remote mode")
		}
		if *cacheDir != "" {
			fail(2, "-cache-dir is the daemon's concern; configure passivityd -cache-dir instead")
		}
		if *fit > 0 || flag.NArg() != 0 {
			fail(2, "-remote processes saved models: pass -model or -batch, not raw Touchstone input")
		}
		if (*modelPath == "") == (*batch == "") {
			fail(2, "-remote needs exactly one of -model or -batch")
		}
		runRemote(ctx, strings.TrimRight(*remote, "/"), *modelPath, *batch, *method, *sweep,
			*enforce, *certify, *deadline, *save, *saveDir, *retries, *retryWait)
		return
	}
	r := &run{
		ctx:      ctx,
		sess:     repro.NewSession(repro.WithWorkers(*workers)),
		cacheDir: *cacheDir,
	}
	if *cacheDir != "" {
		if err := r.sess.LoadCache(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "passcheck: loading caches: %v\n", err)
		} else if st := r.sess.CacheStats(); st.Models > 0 {
			fmt.Printf("loaded %d evaluation caches from %s (%d basis + %d σ entries)\n",
				st.Models, *cacheDir, st.BasisEntries, st.SigmaEntries)
		}
	}

	var checkMethod repro.CheckMethod
	switch *method {
	case "auto":
		checkMethod = repro.CheckAuto
	case "hamiltonian":
		checkMethod = repro.CheckHamiltonian
	case "sweep":
		checkMethod = repro.CheckSweep
	case "adaptive":
		checkMethod = repro.CheckAdaptive
	default:
		fail(2, "unknown -method %q (want auto, hamiltonian, sweep or adaptive)", *method)
	}

	var weight *repro.Weight
	if *weightPath != "" {
		if *loadSpec != "" {
			fail(2, "-weight and -load are mutually exclusive weight sources")
		}
		if !*enforce {
			fail(2, "-weight selects the weighted enforcement cost and needs -enforce")
		}
		var err error
		if weight, err = repro.LoadWeightFile(*weightPath); err != nil {
			fail(2, "loading weight: %v", err)
		}
	}

	if *loadSpec != "" && !*enforce {
		fail(2, "-load weights only matter with -enforce")
	}

	chkBase := repro.CheckOptions{Method: checkMethod, SweepPoints: *sweep, AdaptiveSeedPoints: *seedPoints, Certify: *certify}
	if *batch != "" {
		if flag.NArg() != 0 {
			fail(2, "-batch takes no positional arguments (got %d)", flag.NArg())
		}
		runBatch(r, *batch, chkBase, *enforce, *certify, *workers, *saveDir, weight, *loadSpec, *weightOrder, *obsPort)
		return
	}
	if *loadSpec != "" {
		fail(2, "-load derives per-model weights and needs -batch mode")
	}

	var model *repro.Macromodel
	switch {
	case *modelPath != "":
		var err error
		model, err = repro.LoadMacromodel(*modelPath)
		if err != nil {
			fail(2, "loading model: %v", err)
		}
		fmt.Printf("model: %d ports, %d poles, R0 = %g Ω\n", model.Ports(), model.NumPoles(), model.R0())
	case flag.NArg() == 1:
		data, err := repro.ReadTouchstone(flag.Arg(0), *ports)
		if err != nil {
			fail(2, "reading %s: %v", flag.Arg(0), err)
		}
		fmt.Printf("data: %d ports, %d samples, R0 = %g Ω\n", data.Ports(), data.Points(), data.R0)
		worst, at := 0.0, 0.0
		for k, s := range data.MaxSingularValues() {
			if s > worst {
				worst, at = s, data.Freq[k]
			}
		}
		fmt.Printf("data passivity: σmax = %.6f at %.4g Hz", worst, at)
		if worst > 1+1e-9 {
			fmt.Println("  ** data itself is non-passive **")
		} else {
			fmt.Println("  (samples passive)")
		}
		if *fit <= 0 {
			if worst > 1+1e-9 {
				os.Exit(1)
			}
			return
		}
		model, _, err = repro.Fit(data, repro.FitOptions{NumPoles: *fit, ConstrainD: 0.999})
		if err != nil {
			fail(2, "fit: %v", err)
		}
		fmt.Printf("fitted %d poles, RMS error %.3g\n", *fit, model.RMSError(data))
	default:
		fail(2, "need exactly one Touchstone file or -model (got %d args)", flag.NArg())
	}

	chkOpts := chkBase
	rep, err := r.sess.Check(r.ctx, model, chkOpts)
	r.checkErr(err, "check")
	printReport(rep)

	if !rep.Passive && *enforce {
		// The enforcement engine certifies on convergence itself; the
		// per-sweep checks stay on the fast method.
		enfChk := chkOpts
		enfChk.Certify = false
		enf, err := r.sess.Enforce(r.ctx, model, repro.EnforceOptions{Check: enfChk, ClampD: true, Weight: weight, Certify: *certify})
		r.checkErr(err, "enforce")
		cost := "standard L2"
		if weight != nil {
			cost = "sensitivity-weighted"
		}
		fmt.Printf("enforced in %d iterations (%s cost, D clamped: %v", enf.Iterations, cost, enf.DClamped)
		if *certify {
			fmt.Printf(", certified rescues: %d", enf.CertifiedRescues)
		}
		fmt.Println(")")
		// enf.Final carries the certificate; printReport shows it.
		rep = enf.Final
		printReport(rep)
	}
	if *save != "" && model != nil {
		if err := model.SaveFile(*save); err != nil {
			fail(2, "saving: %v", err)
		}
		fmt.Printf("saved model to %s\n", *save)
	}
	r.saveCaches()
	if !rep.Passive {
		os.Exit(1)
	}
}

// runBatch processes a library of saved models: load every glob match,
// check or enforce the whole set (optionally with a shared -weight or
// per-model -load derived sensitivity weights, and with -certify a
// certification stage per model on its owning worker), print per-model
// lines plus aggregate stats, and exit with the library verdict. The run
// goes through the session, so -cache-dir makes repeated sweeps start
// warm, and a SIGINT mid-batch drains gracefully with partial results.
func runBatch(r *run, glob string, chkOpts repro.CheckOptions, enforce, certify bool, workers int, saveDir string,
	weight *repro.Weight, loadSpec string, weightOrder, obsPort int) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		fail(2, "bad -batch pattern %q: %v", glob, err)
	}
	if len(paths) == 0 {
		fail(2, "-batch %q matched no files", glob)
	}
	sort.Strings(paths)
	models := make([]*repro.Macromodel, len(paths))
	for i, p := range paths {
		if models[i], err = repro.LoadMacromodel(p); err != nil {
			fail(2, "loading %s: %v", p, err)
		}
	}
	fmt.Printf("batch: %d models\n", len(models))

	var perModel []*repro.Weight
	if loadSpec != "" {
		// Shard the derivations like the enforcement itself: each weight
		// fit (sample sweep + magnitude VF) is independent, and on a big
		// library a serial pre-pass would idle the worker pool below.
		perModel = make([]*repro.Weight, len(models))
		errs := make([]error, len(models))
		shards := workers
		if shards <= 0 {
			shards = runtime.GOMAXPROCS(0)
		}
		var wg sync.WaitGroup
		for w := 0; w < shards; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(models); i += shards {
					load, err := parseLoadSpec(loadSpec, models[i].Ports(), obsPort)
					if err != nil {
						errs[i] = err
						continue
					}
					perModel[i], errs[i] = deriveModelWeight(models[i], load, weightOrder)
				}
			}(w)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				fail(2, "deriving weight for %s: %v", paths[i], err)
			}
		}
		fmt.Printf("derived %d per-model sensitivity weights (order %d, load %q)\n",
			len(perModel), weightOrder, loadSpec)
	}

	allPassive := true
	cancelled := false
	// In enforce mode a failed or cancelled model is NOT a finished
	// artifact; -save-dir must skip it (in check mode models are never
	// modified, so saving is always just a copy).
	var enforceErrs []error
	if enforce {
		if weight != nil {
			fmt.Printf("weighted enforcement: shared weight, order %d\n", weight.Order())
		}
		enfChk := chkOpts
		enfChk.Certify = false // the engine certifies on convergence itself
		rep, err := r.sess.EnforceBatch(r.ctx, models, repro.BatchEnforceOptions{
			Enforce: repro.EnforceOptions{Check: enfChk, ClampD: true, Weight: weight, Certify: certify},
			Weights: perModel,
			Workers: workers,
		})
		if err != nil && !errors.Is(err, context.Canceled) {
			fail(2, "batch enforce: %v", err)
		}
		cancelled = err != nil
		enforceErrs = rep.Errors
		for i, p := range paths {
			switch {
			case errors.Is(rep.Errors[i], context.Canceled):
				fmt.Printf("  %s: CANCELLED\n", p)
				allPassive = false
			case rep.Errors[i] != nil:
				fmt.Printf("  %s: FAILED: %v\n", p, rep.Errors[i])
				allPassive = false
			default:
				mr := rep.Reports[i]
				fmt.Printf("  %s: passive=%v iterations=%d σmax=%.6f%s\n",
					p, mr.Passive, mr.Iterations, mr.Final.MaxSigma, certSummary(mr.Certificate))
				if !mr.Passive {
					allPassive = false
				}
			}
		}
		fmt.Printf("batch summary: %d/%d passive, %d failed, %d total iterations, worst σ=%.6f\n",
			rep.Passive, rep.Models, rep.Failed, rep.TotalIterations, rep.WorstSigma)
		if certify {
			fmt.Printf("batch certification: %d/%d certified, %d rescued convergences\n",
				rep.Certified, rep.Models, rep.CertifiedRescues)
		}
	} else {
		for i, p := range paths {
			rep, err := r.sess.Check(r.ctx, models[i], chkOpts)
			if errors.Is(err, context.Canceled) {
				// Account for every remaining model so the report stays
				// index-complete, like the enforce branch.
				for _, q := range paths[i:] {
					fmt.Printf("  %s: CANCELLED\n", q)
				}
				allPassive = false
				cancelled = true
				break
			}
			if err != nil {
				fmt.Printf("  %s: FAILED: %v\n", p, err)
				allPassive = false
				continue
			}
			fmt.Printf("  %s: passive=%v σmax=%.6f at %.4g Hz (%d samples)%s\n",
				p, rep.Passive, rep.MaxSigma, rep.MaxFreqHz, rep.Samples, certSummary(rep.Certificate))
			if !rep.Passive {
				allPassive = false
			}
		}
	}
	if saveDir != "" {
		if err := os.MkdirAll(saveDir, 0o755); err != nil {
			fail(2, "creating %s: %v", saveDir, err)
		}
		saved := 0
		for i, p := range paths {
			if enforceErrs != nil && enforceErrs[i] != nil {
				continue // failed or cancelled: not an enforced artifact
			}
			out := filepath.Join(saveDir, filepath.Base(p))
			if err := models[i].SaveFile(out); err != nil {
				fail(2, "saving %s: %v", out, err)
			}
			saved++
		}
		fmt.Printf("saved %d models to %s\n", saved, saveDir)
	}
	if cancelled {
		r.interrupted()
	}
	r.saveCaches()
	if !allPassive {
		os.Exit(1)
	}
}

// parseLoadSpec builds the termination network of a -load spec for a model
// with the given port count: a comma-separated per-port list of
// open | short | r:R | decap:C:ESR:ESL | die:R:C | vrm:R:L, a single term
// replicating across all ports. The Norton excitation is a unit current at
// the observation port (eq. 2's definition of the target impedance).
func parseLoadSpec(spec string, ports, obsPort int) (*repro.Load, error) {
	entries := strings.Split(spec, ",")
	if len(entries) == 1 {
		for len(entries) < ports {
			entries = append(entries, entries[0])
		}
	}
	if len(entries) != ports {
		return nil, fmt.Errorf("-load lists %d terminations for a %d-port model", len(entries), ports)
	}
	if obsPort < 0 || obsPort >= ports {
		return nil, fmt.Errorf("-obs %d out of range for a %d-port model", obsPort, ports)
	}
	terms := make([]repro.Termination, ports)
	for i, e := range entries {
		t, err := parseTermination(strings.TrimSpace(e))
		if err != nil {
			return nil, err
		}
		terms[i] = t
	}
	j := make([]complex128, ports)
	j[obsPort] = 1
	return &repro.Load{Terms: terms, J: j, ObsPort: obsPort}, nil
}

// parseTermination parses one port term of a -load spec.
func parseTermination(e string) (repro.Termination, error) {
	parts := strings.Split(e, ":")
	vals := make([]float64, 0, 3)
	for _, p := range parts[1:] {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q in term %q", p, e)
		}
		vals = append(vals, v)
	}
	want := func(n int) error {
		if len(vals) != n {
			return fmt.Errorf("term %q wants %d values, got %d", parts[0], n, len(vals))
		}
		return nil
	}
	switch parts[0] {
	case "open":
		return repro.OpenPort(), want(0)
	case "short":
		return repro.ShortPort(), want(0)
	case "r":
		if err := want(1); err != nil {
			return nil, err
		}
		return repro.ResistorLoad(vals[0]), nil
	case "decap":
		if err := want(3); err != nil {
			return nil, err
		}
		return repro.DecapLoad(vals[0], vals[1], vals[2]), nil
	case "die":
		if err := want(2); err != nil {
			return nil, err
		}
		return repro.DieLoad(vals[0], vals[1]), nil
	case "vrm":
		if err := want(2); err != nil {
			return nil, err
		}
		return repro.VRMLoad(vals[0], vals[1]), nil
	}
	return nil, fmt.Errorf("unknown termination %q (want open, short, r, decap, die or vrm)", parts[0])
}

// deriveModelWeight samples the model's own scattering response over a log
// grid spanning its pole resonances and fits the sensitivity weight of the
// loaded configuration to it — the batch-mode analogue of building the
// weight from the original solver data.
func deriveModelWeight(m *repro.Macromodel, load *repro.Load, order int) (*repro.Weight, error) {
	lo, hi := math.Inf(1), 0.0
	for _, p := range m.Poles() {
		f := math.Abs(imag(p)) / (2 * math.Pi)
		if f == 0 {
			f = math.Abs(real(p)) / (2 * math.Pi)
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if !(lo > 0) || hi <= 0 {
		return nil, fmt.Errorf("model has no finite resonances to span a weight-fit band")
	}
	freqs := repro.LogFreqGrid(lo/10, hi*10, 80, false)
	w, _, err := repro.BuildWeight(m.Sample(freqs), load, order)
	return w, err
}

func printReport(rep *repro.PassivityReport) {
	fmt.Printf("model passivity [%s]: passive=%v σmax=%.6f at %.4g Hz, σmax(D)=%.6f",
		rep.Method, rep.Passive, rep.MaxSigma, rep.MaxFreqHz, rep.DSigma)
	if rep.Samples > 0 {
		fmt.Printf(" (%d samples)", rep.Samples)
	}
	fmt.Println()
	for i, v := range rep.Violations {
		fmt.Printf("  violation %d: σ=%.6f at %.4g Hz, band [%.4g, %.4g] Hz\n",
			i+1, v.SigmaPeak, v.FreqPeakHz, v.FreqLoHz, v.FreqHiHz)
	}
	printCertificate(rep.Certificate)
}

// printCertificate reports which pipeline stage settled the verdict and
// what each stage spent (eigenproblem size, kernel backend and dimension
// gate, intervals certified, samples, and for the terminal contour-counter
// stage its quadrature nodes).
func printCertificate(c *repro.PassivityCertificate) {
	if c == nil {
		return
	}
	fmt.Printf("certificate: stage=%s certified=%v (largest eigenproblem %d, %d axis intervals)\n",
		c.Stage, c.Certified, c.EigenDim, c.Intervals)
	for _, s := range c.Stages {
		fmt.Printf("  stage %-22s certified %d intervals", s.Stage, s.Certified)
		if s.Violations > 0 {
			fmt.Printf(", proved %d violations", s.Violations)
		}
		if s.EigenDim > 0 {
			fmt.Printf(", eigenproblem dim %d", s.EigenDim)
		}
		if s.Backend != "" {
			fmt.Printf(", backend=%s", s.Backend)
		}
		if s.DimGate > 0 {
			fmt.Printf(", dim gate %d", s.DimGate)
		}
		if s.Declined > 0 {
			fmt.Printf(", declined %d intervals at the gate", s.Declined)
		}
		if s.Samples > 0 {
			fmt.Printf(", %d σ samples", s.Samples)
		}
		if s.Nodes > 0 {
			fmt.Printf(", %d contour nodes", s.Nodes)
		}
		if s.Note != "" {
			fmt.Printf(" [%s]", s.Note)
		}
		fmt.Println()
	}
	for _, b := range c.Open {
		fmt.Printf("  OPEN band [%g, %g] Hz — no stage could settle it\n", b.FreqLoHz, b.FreqHiHz)
	}
}

// certSummary compresses a certificate into the per-model batch line.
func certSummary(c *repro.PassivityCertificate) string {
	if c == nil {
		return ""
	}
	return fmt.Sprintf(" cert=%s/%v(dim %d)", c.Stage, c.Certified, c.EigenDim)
}
