package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// remoteRun drives a passivityd daemon instead of the in-process engine:
// every model is POSTed to /v1/check or /v1/enforce and the daemon's
// pole-fingerprint affinity scheduler places it on the worker whose
// caches are warm for its pole set.
//
// The client is built for flaky daemons: connection errors, 5xx statuses
// and 429 queue-full rejections are retried with bounded exponential
// backoff plus jitter (honoring the daemon's Retry-After hint), so a
// -batch sweep against a restarting or briefly-full daemon completes
// instead of scattering FAILED rows.
type remoteRun struct {
	ctx  context.Context
	base string
	cli  *http.Client
	// retries is the max attempts per request (>= 1); waitBase is the
	// first backoff step, doubled per attempt and capped at waitMax.
	retries  int
	waitBase time.Duration
	waitMax  time.Duration

	rngMu sync.Mutex
	rng   *rand.Rand
}

// httpError is a non-2xx daemon response: the status, the daemon's error
// string (or a bounded raw-body snippet when the body did not decode as
// a Response), and the parsed Retry-After hint for the backoff path.
type httpError struct {
	endpoint   string
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.endpoint, e.status, e.msg)
}

// retryableRemote classifies a failed request: queue pressure (429) and
// server-side trouble (5xx, including the 503 of a draining daemon) are
// worth retrying, as is anything below HTTP (connection refused/reset,
// truncated response body). Client-side 4xx mistakes are final.
func retryableRemote(err error) bool {
	var he *httpError
	if errors.As(err, &he) {
		return he.status == http.StatusTooManyRequests || he.status >= 500
	}
	return true // connection-level or torn-response failure
}

// parseRetryAfter reads a Retry-After header value — delta-seconds or an
// HTTP-date (0 when absent or unparseable). It is the shared
// serve.ParseRetryAfter, so the coordinator's date-form hints are honored
// exactly like a daemon's delta-seconds.
func parseRetryAfter(v string) time.Duration { return serve.ParseRetryAfter(v) }

// backoff computes the wait before retry number attempt (1-based): the
// daemon's Retry-After hint when it gave one, otherwise waitBase doubled
// per attempt, capped at waitMax — always with jitter so a fleet of
// clients does not re-dogpile a recovering daemon in lockstep.
func (r *remoteRun) backoff(attempt int, err error) time.Duration {
	d := r.waitBase << (attempt - 1)
	if d > r.waitMax || d <= 0 {
		d = r.waitMax
	}
	var he *httpError
	if errors.As(err, &he) && he.retryAfter > 0 {
		d = he.retryAfter
		if d > 30*time.Second {
			d = 30 * time.Second
		}
	}
	r.rngMu.Lock()
	jittered := d/2 + time.Duration(r.rng.Int63n(int64(d/2)+1))
	r.rngMu.Unlock()
	return jittered
}

// post submits one job, retrying retryable failures with backoff until
// r.retries attempts are spent or the run context is cancelled.
func (r *remoteRun) post(endpoint string, req *serve.Request) (*serve.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	for attempt := 1; ; attempt++ {
		resp, err := r.postOnce(endpoint, body)
		if err == nil {
			return resp, nil
		}
		if r.ctx.Err() != nil || attempt >= r.retries || !retryableRemote(err) {
			return nil, err
		}
		select {
		case <-time.After(r.backoff(attempt, err)):
		case <-r.ctx.Done():
			return nil, err
		}
	}
}

// postOnce performs a single request/response round trip.
func (r *remoteRun) postOnce(endpoint string, body []byte) (*serve.Response, error) {
	hreq, err := http.NewRequestWithContext(r.ctx, http.MethodPost, r.base+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.cli.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode < 200 || hresp.StatusCode > 299 {
		// Error bodies are small; bound the read so a broken daemon
		// cannot stream garbage at a failing client. Decode the daemon's
		// error when the body is a Response, but never let a decode
		// failure mask the status — surface it with a raw snippet.
		raw, _ := io.ReadAll(io.LimitReader(hresp.Body, 8<<10))
		he := &httpError{
			endpoint:   endpoint,
			status:     hresp.StatusCode,
			retryAfter: parseRetryAfter(hresp.Header.Get("Retry-After")),
		}
		var resp serve.Response
		if err := json.Unmarshal(raw, &resp); err == nil && resp.Error != "" {
			he.msg = resp.Error
		} else {
			snippet := raw
			if len(snippet) > 256 {
				snippet = snippet[:256]
			}
			he.msg = fmt.Sprintf("undecodable body %q", snippet)
		}
		return nil, he
	}
	var resp serve.Response
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 256<<20)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("decoding %s response (HTTP %d): %v", endpoint, hresp.StatusCode, err)
	}
	return &resp, nil
}

// jobRequest assembles the wire request for one model.
func remoteRequest(m *repro.Macromodel, method string, sweep int, certify bool, deadline time.Duration) *serve.Request {
	return &serve.Request{
		Model:      m,
		Check:      serve.CheckSpec{Method: method, SweepPoints: sweep, Certify: certify},
		Enforce:    serve.EnforceSpec{ClampD: true, Certify: certify},
		DeadlineMS: deadline.Milliseconds(),
	}
}

// attemptsNote renders the retry tail of a result line ("" when the
// daemon ran the job once).
func attemptsNote(resp *serve.Response) string {
	if resp.Attempts > 1 {
		return fmt.Sprintf(" attempts=%d", resp.Attempts)
	}
	return ""
}

// runRemote is the -remote entry point: single -model jobs go through one
// POST; -batch fans the library out with a few concurrent submitters so
// the daemon's queue (and its affinity scheduler) stays busy.
func runRemote(ctx context.Context, base, modelPath, batch string, method string, sweep int,
	enforce, certify bool, deadline time.Duration, save, saveDir string,
	retries int, retryWait time.Duration) {
	if retries < 1 {
		retries = 1
	}
	if retryWait <= 0 {
		retryWait = 250 * time.Millisecond
	}
	r := &remoteRun{
		ctx: ctx, base: base, cli: &http.Client{},
		retries: retries, waitBase: retryWait, waitMax: 5 * time.Second,
		rng: rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	endpoint := "/v1/check"
	if enforce {
		endpoint = "/v1/enforce"
	}

	if batch == "" {
		model, err := repro.LoadMacromodel(modelPath)
		if err != nil {
			fail(2, "loading model: %v", err)
		}
		resp, err := r.post(endpoint, remoteRequest(model, method, sweep, certify, deadline))
		if err != nil {
			if errors.Is(ctx.Err(), context.Canceled) {
				fail(130, "interrupted")
			}
			fail(2, "remote %s: %v", endpoint, err)
		}
		fmt.Printf("remote: worker %d, affinity hit %v, fingerprint %s, wait %.1f ms, service %.1f ms%s\n",
			resp.Worker, resp.AffinityHit, resp.Fingerprint, resp.QueueWaitMS, resp.ServiceMS, attemptsNote(resp))
		if resp.Enforce != nil {
			fmt.Printf("enforced in %d iterations (D clamped: %v)\n", resp.Enforce.Iterations, resp.Enforce.DClamped)
		}
		printReport(resp.Report)
		if save != "" && resp.Model != nil {
			if err := resp.Model.SaveFile(save); err != nil {
				fail(2, "saving: %v", err)
			}
			fmt.Printf("saved enforced model to %s\n", save)
		}
		if !resp.Report.Passive {
			os.Exit(1)
		}
		return
	}

	paths, err := filepath.Glob(batch)
	if err != nil {
		fail(2, "bad -batch pattern %q: %v", batch, err)
	}
	if len(paths) == 0 {
		fail(2, "-batch %q matched no files", batch)
	}
	sort.Strings(paths)
	fmt.Printf("remote batch: %d models via %s%s\n", len(paths), base, endpoint)
	if saveDir != "" {
		// Once, up front — not per surviving row deep inside the loop.
		if err := os.MkdirAll(saveDir, 0o755); err != nil {
			fail(2, "creating %s: %v", saveDir, err)
		}
	}

	resps := make([]*serve.Response, len(paths))
	errs := make([]error, len(paths))
	submitters := 8
	if len(paths) < submitters {
		submitters = len(paths)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				model, err := repro.LoadMacromodel(paths[i])
				if err != nil {
					errs[i] = err
					continue
				}
				resps[i], errs[i] = r.post(endpoint, remoteRequest(model, method, sweep, certify, deadline))
			}
		}()
	}
	for i := range paths {
		select {
		case next <- i:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(next)
	wg.Wait()

	allPassive := true
	hits, failed, saveErrs := 0, 0, 0
	var waitMS, serviceMS float64
	for i, p := range paths {
		switch {
		case errs[i] != nil:
			fmt.Printf("  %s: FAILED: %v\n", p, errs[i])
			allPassive = false
			failed++
		case resps[i] == nil: // never dispatched: the run was interrupted
			fmt.Printf("  %s: CANCELLED\n", p)
			allPassive = false
			failed++
		default:
			rp := resps[i]
			if rp.AffinityHit {
				hits++
			}
			waitMS += rp.QueueWaitMS
			serviceMS += rp.ServiceMS
			iter := ""
			if rp.Enforce != nil {
				iter = fmt.Sprintf(" iterations=%d", rp.Enforce.Iterations)
			}
			saveNote := ""
			if saveDir != "" && rp.Model != nil {
				// A failed save is that row's problem, not the batch's:
				// report it in place and keep emitting the remaining
				// results and the summary.
				if err := rp.Model.SaveFile(filepath.Join(saveDir, filepath.Base(p))); err != nil {
					saveNote = fmt.Sprintf(" SAVE FAILED: %v", err)
					saveErrs++
				}
			}
			fmt.Printf("  %s: passive=%v σmax=%.6f%s%s [worker %d, hit=%v]%s\n",
				p, rp.Report.Passive, rp.Report.MaxSigma, iter, attemptsNote(rp), rp.Worker, rp.AffinityHit, saveNote)
			if !rp.Report.Passive {
				allPassive = false
			}
		}
	}
	done := len(paths) - failed
	if done > 0 {
		fmt.Printf("remote summary: %d/%d ok, affinity hits %d/%d (%.0f%%), mean wait %.1f ms, mean service %.1f ms\n",
			done, len(paths), hits, done, 100*float64(hits)/float64(done), waitMS/float64(done), serviceMS/float64(done))
	}
	if ctx.Err() != nil {
		fail(130, "interrupted — partial results above")
	}
	if saveErrs > 0 {
		fail(2, "%d enforced model(s) could not be saved to %s", saveErrs, saveDir)
	}
	if !allPassive {
		os.Exit(1)
	}
}
