package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// remoteRun drives a passivityd daemon instead of the in-process engine:
// every model is POSTed to /v1/check or /v1/enforce and the daemon's
// pole-fingerprint affinity scheduler places it on the worker whose
// caches are warm for its pole set.
type remoteRun struct {
	ctx  context.Context
	base string
	cli  *http.Client
}

// post submits one job and decodes the response; non-2xx statuses carry
// the daemon's error string.
func (r *remoteRun) post(endpoint string, req *serve.Request) (*serve.Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(r.ctx, http.MethodPost, r.base+endpoint, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := r.cli.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(io.LimitReader(hresp.Body, 256<<20)).Decode(&resp); err != nil {
		return nil, fmt.Errorf("decoding %s response (HTTP %d): %v", endpoint, hresp.StatusCode, err)
	}
	if hresp.StatusCode != http.StatusOK {
		return &resp, fmt.Errorf("%s: HTTP %d: %s", endpoint, hresp.StatusCode, resp.Error)
	}
	return &resp, nil
}

// jobRequest assembles the wire request for one model.
func remoteRequest(m *repro.Macromodel, method string, sweep int, certify bool, deadline time.Duration) *serve.Request {
	return &serve.Request{
		Model:      m,
		Check:      serve.CheckSpec{Method: method, SweepPoints: sweep, Certify: certify},
		Enforce:    serve.EnforceSpec{ClampD: true, Certify: certify},
		DeadlineMS: deadline.Milliseconds(),
	}
}

// runRemote is the -remote entry point: single -model jobs go through one
// POST; -batch fans the library out with a few concurrent submitters so
// the daemon's queue (and its affinity scheduler) stays busy.
func runRemote(ctx context.Context, base, modelPath, batch string, method string, sweep int,
	enforce, certify bool, deadline time.Duration, save, saveDir string) {
	r := &remoteRun{ctx: ctx, base: base, cli: &http.Client{}}
	endpoint := "/v1/check"
	if enforce {
		endpoint = "/v1/enforce"
	}

	if batch == "" {
		model, err := repro.LoadMacromodel(modelPath)
		if err != nil {
			fail(2, "loading model: %v", err)
		}
		resp, err := r.post(endpoint, remoteRequest(model, method, sweep, certify, deadline))
		if err != nil {
			if errors.Is(ctx.Err(), context.Canceled) {
				fail(130, "interrupted")
			}
			fail(2, "remote %s: %v", endpoint, err)
		}
		fmt.Printf("remote: worker %d, affinity hit %v, fingerprint %s, wait %.1f ms, service %.1f ms\n",
			resp.Worker, resp.AffinityHit, resp.Fingerprint, resp.QueueWaitMS, resp.ServiceMS)
		if resp.Enforce != nil {
			fmt.Printf("enforced in %d iterations (D clamped: %v)\n", resp.Enforce.Iterations, resp.Enforce.DClamped)
		}
		printReport(resp.Report)
		if save != "" && resp.Model != nil {
			if err := resp.Model.SaveFile(save); err != nil {
				fail(2, "saving: %v", err)
			}
			fmt.Printf("saved enforced model to %s\n", save)
		}
		if !resp.Report.Passive {
			os.Exit(1)
		}
		return
	}

	paths, err := filepath.Glob(batch)
	if err != nil {
		fail(2, "bad -batch pattern %q: %v", batch, err)
	}
	if len(paths) == 0 {
		fail(2, "-batch %q matched no files", batch)
	}
	sort.Strings(paths)
	fmt.Printf("remote batch: %d models via %s%s\n", len(paths), base, endpoint)

	resps := make([]*serve.Response, len(paths))
	errs := make([]error, len(paths))
	submitters := 8
	if len(paths) < submitters {
		submitters = len(paths)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				model, err := repro.LoadMacromodel(paths[i])
				if err != nil {
					errs[i] = err
					continue
				}
				resps[i], errs[i] = r.post(endpoint, remoteRequest(model, method, sweep, certify, deadline))
			}
		}()
	}
	for i := range paths {
		select {
		case next <- i:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(next)
	wg.Wait()

	allPassive := true
	hits, failed := 0, 0
	var waitMS, serviceMS float64
	for i, p := range paths {
		switch {
		case errs[i] != nil:
			fmt.Printf("  %s: FAILED: %v\n", p, errs[i])
			allPassive = false
			failed++
		case resps[i] == nil: // never dispatched: the run was interrupted
			fmt.Printf("  %s: CANCELLED\n", p)
			allPassive = false
			failed++
		default:
			rp := resps[i]
			if rp.AffinityHit {
				hits++
			}
			waitMS += rp.QueueWaitMS
			serviceMS += rp.ServiceMS
			iter := ""
			if rp.Enforce != nil {
				iter = fmt.Sprintf(" iterations=%d", rp.Enforce.Iterations)
			}
			fmt.Printf("  %s: passive=%v σmax=%.6f%s [worker %d, hit=%v]\n",
				p, rp.Report.Passive, rp.Report.MaxSigma, iter, rp.Worker, rp.AffinityHit)
			if !rp.Report.Passive {
				allPassive = false
			}
			if saveDir != "" && rp.Model != nil {
				if err := os.MkdirAll(saveDir, 0o755); err != nil {
					fail(2, "creating %s: %v", saveDir, err)
				}
				if err := rp.Model.SaveFile(filepath.Join(saveDir, filepath.Base(p))); err != nil {
					fail(2, "saving %s: %v", filepath.Base(p), err)
				}
			}
		}
	}
	done := len(paths) - failed
	if done > 0 {
		fmt.Printf("remote summary: %d/%d ok, affinity hits %d/%d (%.0f%%), mean wait %.1f ms, mean service %.1f ms\n",
			done, len(paths), hits, done, 100*float64(hits)/float64(done), waitMS/float64(done), serviceMS/float64(done))
	}
	if ctx.Err() != nil {
		fail(130, "interrupted — partial results above")
	}
	if !allPassive {
		os.Exit(1)
	}
}
