// Command experiments regenerates the paper's evaluation figures (§IV,
// Figs. 1–6) on the synthetic 45-port PDN testcase, plus the extension
// experiments Ext-A..Ext-H (representation independence, transient
// verification, MOR baseline, enforcement ablation, adaptive
// characterization, batch enforcement, closed-form weighted Gramian,
// certified enforcement escape rate), printing the shape metrics recorded
// in EXPERIMENTS.md and writing one CSV per figure.
//
// The promoted hypothesis harness lives behind subcommands:
//
//	experiments list                     show registered hypotheses
//	experiments run [-out dir] [id ...]  evaluate hypotheses, write FINDINGS
//	experiments report [-out dir]        summarize FINDINGS artifacts on disk
//
// Legacy figure mode (no subcommand):
//
//	experiments [-fig all|figs|ext|1|..|6|A|..|H] [-out dir] [-points N] [-poles N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/hypothesis"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "list":
			os.Exit(runList())
		case "run":
			os.Exit(runHypotheses(os.Args[2:]))
		case "report":
			os.Exit(runReport(os.Args[2:]))
		}
	}
	os.Exit(runFigures())
}

func registry() *hypothesis.Registry {
	reg, err := experiments.Hypotheses()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: building hypothesis registry: %v\n", err)
		os.Exit(1)
	}
	return reg
}

func runList() int {
	for _, s := range registry().Specs() {
		fmt.Printf("%-26s %s/%s\n    %s\n", s.ID, s.Class, s.Subtype, s.Claim)
	}
	return 0
}

func runHypotheses(args []string) int {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "results/findings", "directory for FINDINGS artifacts (empty = no files)")
	fs.Parse(args)

	reg := registry()
	var specs []*hypothesis.Spec
	ids := fs.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		specs = reg.Specs()
	} else {
		for _, id := range ids {
			s, ok := reg.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown hypothesis %q (try 'experiments list')\n", id)
				return 2
			}
			specs = append(specs, s)
		}
	}

	t0 := time.Now()
	exit := 0
	for _, s := range specs {
		t1 := time.Now()
		f, err := hypothesis.Evaluate(s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", s.ID, err)
			return 1
		}
		fmt.Printf("%-26s %-12s %s  (%.1fs)\n", f.ID, string(f.Verdict), f.Reason, time.Since(t1).Seconds())
		if f.Verdict == hypothesis.Refuted {
			exit = 1
		}
		if *out != "" {
			if _, err := f.Write(*out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing FINDINGS: %v\n", err)
				return 1
			}
		}
	}
	if *out != "" {
		fmt.Printf("total %.1fs; FINDINGS artifacts in %s\n", time.Since(t0).Seconds(), *out)
	}
	return exit
}

func runReport(args []string) int {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	out := fs.String("out", "results/findings", "directory holding FINDINGS-*.json artifacts")
	fs.Parse(args)

	paths, err := filepath.Glob(filepath.Join(*out, "FINDINGS-*.json"))
	if err != nil || len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no FINDINGS artifacts in %s (run 'experiments run' first)\n", *out)
		return 1
	}
	sort.Strings(paths)
	exit := 0
	for _, p := range paths {
		f, err := hypothesis.ReadFinding(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: reading %s: %v\n", p, err)
			return 1
		}
		fmt.Printf("%-26s %-12s %s\n", f.ID, string(f.Verdict), f.Reason)
		if f.Verdict == hypothesis.Refuted {
			exit = 1
		}
	}
	return exit
}

func runFigures() int {
	fig := flag.String("fig", "all", "what to regenerate: all, figs, ext, 1..6, or A..D")
	out := flag.String("out", "results", "output directory for CSV series (empty = no files)")
	points := flag.Int("points", 0, "frequency points (default per profile)")
	poles := flag.Int("poles", 0, "model order n (default 12)")
	quick := flag.Bool("quick", false, "use the reduced-cost profile")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *poles > 0 {
		cfg.Poles = *poles
	}
	ctx := experiments.NewContext(cfg)

	run := map[string]func() (*experiments.FigResult, error){
		"1": ctx.Fig1, "2": ctx.Fig2, "3": ctx.Fig3,
		"4": ctx.Fig4, "5": ctx.Fig5, "6": ctx.Fig6,
		"A": ctx.ExtA, "B": ctx.ExtB, "C": ctx.ExtC, "D": ctx.ExtD, "E": ctx.ExtE,
		"F": ctx.ExtF, "G": ctx.ExtG, "H": ctx.ExtH,
	}
	figOrder := []string{"1", "2", "3", "4", "5", "6"}
	extOrder := []string{"A", "B", "C", "D", "E", "F", "G", "H"}

	var keys []string
	switch strings.ToLower(*fig) {
	case "all":
		keys = append(append(keys, figOrder...), extOrder...)
	case "figs":
		keys = figOrder
	case "ext":
		keys = extOrder
	default:
		k := strings.ToUpper(*fig)
		if _, ok := run[k]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: bad -fig %q (want all, figs, ext, 1..6 or A..G)\n", *fig)
			return 2
		}
		keys = []string{k}
	}

	t0 := time.Now()
	for _, k := range keys {
		t1 := time.Now()
		res, err := run[k]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", k, err)
			return 1
		}
		fmt.Print(res.Summary())
		if *out != "" {
			if err := res.WriteCSV(*out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing CSV: %v\n", err)
				return 1
			}
		}
		fmt.Printf("  (%.1fs)\n\n", time.Since(t1).Seconds())
	}
	fmt.Printf("total %.1fs; CSV series in %s\n", time.Since(t0).Seconds(), *out)
	return 0
}
