// Command experiments regenerates the paper's evaluation figures (§IV,
// Figs. 1–6) on the synthetic 45-port PDN testcase, plus the extension
// experiments Ext-A..Ext-H (representation independence, transient
// verification, MOR baseline, enforcement ablation, adaptive
// characterization, batch enforcement, closed-form weighted Gramian,
// certified enforcement escape rate), printing the shape metrics recorded
// in EXPERIMENTS.md and writing one CSV per figure.
//
// Usage:
//
//	experiments [-fig all|figs|ext|1|..|6|A|..|H] [-out dir] [-points N] [-poles N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "what to regenerate: all, figs, ext, 1..6, or A..D")
	out := flag.String("out", "results", "output directory for CSV series (empty = no files)")
	points := flag.Int("points", 0, "frequency points (default per profile)")
	poles := flag.Int("poles", 0, "model order n (default 12)")
	quick := flag.Bool("quick", false, "use the reduced-cost profile")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *points > 0 {
		cfg.Points = *points
	}
	if *poles > 0 {
		cfg.Poles = *poles
	}
	ctx := experiments.NewContext(cfg)

	run := map[string]func() (*experiments.FigResult, error){
		"1": ctx.Fig1, "2": ctx.Fig2, "3": ctx.Fig3,
		"4": ctx.Fig4, "5": ctx.Fig5, "6": ctx.Fig6,
		"A": ctx.ExtA, "B": ctx.ExtB, "C": ctx.ExtC, "D": ctx.ExtD, "E": ctx.ExtE,
		"F": ctx.ExtF, "G": ctx.ExtG, "H": ctx.ExtH,
	}
	figOrder := []string{"1", "2", "3", "4", "5", "6"}
	extOrder := []string{"A", "B", "C", "D", "E", "F", "G", "H"}

	var keys []string
	switch strings.ToLower(*fig) {
	case "all":
		keys = append(append(keys, figOrder...), extOrder...)
	case "figs":
		keys = figOrder
	case "ext":
		keys = extOrder
	default:
		k := strings.ToUpper(*fig)
		if _, ok := run[k]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: bad -fig %q (want all, figs, ext, 1..6 or A..G)\n", *fig)
			os.Exit(2)
		}
		keys = []string{k}
	}

	t0 := time.Now()
	for _, k := range keys {
		t1 := time.Now()
		res, err := run[k]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", k, err)
			os.Exit(1)
		}
		fmt.Print(res.Summary())
		if *out != "" {
			if err := res.WriteCSV(*out); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: writing CSV: %v\n", err)
				os.Exit(1)
			}
		}
		fmt.Printf("  (%.1fs)\n\n", time.Since(t1).Seconds())
	}
	fmt.Printf("total %.1fs; CSV series in %s\n", time.Since(t0).Seconds(), *out)
}
