// Command pdnflow runs the complete reliable macromodeling flow of the
// paper on scattering data: sensitivity-weighted rational fitting followed
// by sensitivity-weighted passivity enforcement under a nominal PDN
// termination network.
//
// Input is either a Touchstone file (-in data.s45p, with -die/-decap/-vrm
// port lists) or a bundled synthetic PDN (-synth paper45|small). The final
// passive macromodel is written as JSON together with a flow report.
//
// Usage examples:
//
//	pdnflow -synth small -poles 10 -out model.json
//	pdnflow -in board.s8p -die 0,1,2,3 -decap 4,5 -vrm 6 -out model.json
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"
	"strconv"
	"strings"
	"time"

	repro "repro"
)

func main() {
	in := flag.String("in", "", "Touchstone input file (.sNp)")
	synth := flag.String("synth", "", "use a synthetic PDN instead: paper45 or small")
	points := flag.Int("points", 201, "frequency points for synthetic data")
	poles := flag.Int("poles", 12, "macromodel order n")
	worder := flag.Int("worder", 8, "sensitivity weight order n_w")
	dieS := flag.String("die", "", "comma-separated die port indices (Touchstone input)")
	decapS := flag.String("decap", "", "comma-separated decap port indices")
	vrmS := flag.String("vrm", "", "VRM port index")
	out := flag.String("out", "model.json", "output macromodel (JSON)")
	unweighted := flag.Bool("unweighted", false, "disable sensitivity weighting everywhere (baseline flow)")
	flag.Parse()

	var data *repro.SData
	var load *repro.Load
	switch {
	case *synth != "":
		preset := repro.PDNSmall
		if strings.EqualFold(*synth, "paper45") {
			preset = repro.PDNPaper45
		}
		freqs := repro.LogFreqGrid(1e3, 2e9, *points, true)
		syn, err := repro.GeneratePDN(preset, freqs, 50)
		fatal(err)
		data, load = syn.Data, syn.Load
		fmt.Printf("synthetic %s: %d ports, %d frequency points\n", *synth, data.Ports(), data.Points())
	case *in != "":
		var err error
		data, err = repro.ReadTouchstone(*in, 0)
		fatal(err)
		load = buildLoad(data.Ports(), *dieS, *decapS, *vrmS)
		fmt.Printf("%s: %d ports, %d frequency points\n", *in, data.Ports(), data.Points())
	default:
		fmt.Fprintln(os.Stderr, "pdnflow: need -in or -synth")
		os.Exit(2)
	}

	t0 := time.Now()
	res, err := repro.Extract(data, load, repro.ExtractOptions{
		NumPoles:              *poles,
		WeightOrder:           *worder,
		UnweightedFit:         *unweighted,
		UnweightedEnforcement: *unweighted,
	})
	fatal(err)

	fmt.Printf("fit: RMS %.3g, max %.3g\n", res.Fit.RMSErr, res.Fit.MaxAbsErr)
	if res.Before.Passive {
		fmt.Println("fitted model already passive")
	} else {
		fmt.Printf("violations before enforcement: σmax=%.6f at %.4g Hz (%d bands)\n",
			res.Before.MaxSigma, res.Before.MaxFreqHz, len(res.Before.Violations))
		fmt.Printf("enforcement: passive=%v in %d iterations (D clamped: %v)\n",
			res.Enforcement.Passive, res.Enforcement.Iterations, res.Enforcement.DClamped)
	}
	zref, err := repro.TargetImpedance(data, load)
	fatal(err)
	zmod, err := repro.TargetImpedanceModel(res.Model, data.Freq, load)
	fatal(err)
	worst := 0.0
	for i := range zref {
		if data.Freq[i] == 0 {
			continue
		}
		r := cmplx.Abs(zmod[i]-zref[i]) / (1e-15 + cmplx.Abs(zref[i]))
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("target impedance worst rel deviation: %.3g\n", worst)
	fatal(res.Model.SaveFile(*out))
	fmt.Printf("model written to %s (%.1fs total)\n", *out, time.Since(t0).Seconds())
}

func buildLoad(ports int, dieS, decapS, vrmS string) *repro.Load {
	die := parseList(dieS)
	decap := parseList(decapS)
	vrm := parseList(vrmS)
	terms := make([]repro.Termination, ports)
	for i := range terms {
		terms[i] = repro.OpenPort()
	}
	for _, p := range die {
		terms[p] = repro.DieLoad(0.08, 40e-9)
	}
	models := []repro.Termination{
		repro.DecapLoad(100e-9, 20e-3, 0.6e-9),
		repro.DecapLoad(1e-6, 10e-3, 0.8e-9),
		repro.DecapLoad(10e-6, 5e-3, 1.2e-9),
	}
	for k, p := range decap {
		terms[p] = models[k%len(models)]
	}
	for _, p := range vrm {
		terms[p] = repro.ShortPort()
	}
	j := make([]complex128, ports)
	for _, p := range die {
		j[p] = complex(1/float64(len(die)), 0)
	}
	obs := 0
	if len(die) > 0 {
		obs = die[0]
	}
	return &repro.Load{Terms: terms, J: j, ObsPort: obs}
}

func parseList(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		fatal(err)
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdnflow:", err)
		os.Exit(1)
	}
}
