package repro_test

// Runnable godoc examples for the root API. They use the deterministic
// synthetic model generator (no data files), the adaptive characterizer,
// and coarse printing (verdicts, iteration behavior — not raw floats) so
// the expected output is stable across platforms.

import (
	"context"
	"fmt"

	repro "repro"
)

// violatingModel builds a deterministic 2-port macromodel with a
// passivity violation (σmax crosses one mid-band).
func violatingModel(seed int64) *repro.Macromodel {
	m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
		Ports: 2, Poles: 20, Seed: seed, PeakGain: 1.1,
	})
	if err != nil {
		panic(err)
	}
	return m
}

func ExampleCheckPassivity() {
	m := violatingModel(3)
	rep, err := repro.CheckPassivity(m, repro.CheckOptions{Method: repro.CheckAdaptive})
	if err != nil {
		panic(err)
	}
	fmt.Printf("passive: %v\n", rep.Passive)
	fmt.Printf("method: %s\n", rep.Method)
	fmt.Printf("violations found: %v\n", len(rep.Violations) > 0)
	fmt.Printf("sigma exceeds one: %v\n", rep.MaxSigma > 1)
	// Output:
	// passive: false
	// method: adaptive
	// violations found: true
	// sigma exceeds one: true
}

func ExampleNewSession() {
	// A long-lived Session keys evaluation caches by pole-set fingerprint,
	// so the second check of the same model is served from the σ layer —
	// with results bitwise identical to the stateless CheckPassivity.
	m := violatingModel(3)
	sess := repro.NewSession(repro.WithMethod(repro.CheckAdaptive))
	ctx := context.Background()

	cold, err := sess.Check(ctx, m, repro.CheckOptions{})
	if err != nil {
		panic(err)
	}
	warm, err := sess.Check(ctx, m, repro.CheckOptions{})
	if err != nil {
		panic(err)
	}
	st := sess.CacheStats()
	fmt.Printf("passive: %v\n", cold.Passive)
	fmt.Printf("warm identical: %v\n", cold.MaxSigma == warm.MaxSigma && cold.Samples == warm.Samples)
	fmt.Printf("caches resident: %d\n", st.Models)
	fmt.Printf("cache has entries: %v\n", st.BasisEntries > 0 && st.SigmaEntries > 0)
	// Output:
	// passive: false
	// warm identical: true
	// caches resident: 1
	// cache has entries: true
}

func ExampleSession_EnforceBatch() {
	// Session.EnforceBatch shards a library across workers with
	// fingerprint-keyed caches, a cancellable context and progress events;
	// results are bitwise identical to sequential EnforcePassivity.
	models := []*repro.Macromodel{violatingModel(3), violatingModel(4)}
	var iterations int
	sess := repro.NewSession(repro.WithProgress(func(ev repro.ProgressEvent) {
		if ev.Kind == repro.ProgressIteration {
			iterations++
		}
	}))
	rep, err := sess.EnforceBatch(context.Background(), models, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			ClampD: true,
		},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("passive: %d/%d\n", rep.Passive, rep.Models)
	fmt.Printf("progress saw every sweep: %v\n", iterations == rep.TotalIterations)
	// Output:
	// passive: 2/2
	// progress saw every sweep: true
}

func ExampleEnforcePassivity() {
	m := violatingModel(3)
	rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
		Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
		ClampD: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("passive after enforcement: %v\n", rep.Passive)
	fmt.Printf("converged within 40 iterations: %v\n", rep.Iterations <= 40)
	fmt.Printf("final sigma <= 1: %v\n", rep.Final.MaxSigma <= 1)
	// Output:
	// passive after enforcement: true
	// converged within 40 iterations: true
	// final sigma <= 1: true
}

func ExampleEnforcePassivity_weighted() {
	// The paper's scheme: fit the sensitivity weight Xi~(s) of a loaded
	// PDN, then minimize the weighted norm built from the closed-form
	// cascade Gramian P^Xi,11 instead of the plain L2 cost.
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		panic(err)
	}
	weight, xi, err := repro.BuildWeight(syn.Data, syn.Load, 6)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sensitivity samples: %d, weight order: %d\n", len(xi), weight.Order())

	m := violatingModel(3)
	rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
		Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
		Weight: weight,
		ClampD: true,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("passive after weighted enforcement: %v\n", rep.Passive)
	// Output:
	// sensitivity samples: 40, weight order: 6
	// passive after weighted enforcement: true
}

func ExampleEnforcePassivityBatch() {
	lib := []*repro.Macromodel{violatingModel(3), violatingModel(4), violatingModel(5)}
	rep, err := repro.EnforcePassivityBatch(lib, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			ClampD: true,
		},
		Workers: 2, // results are bitwise independent of the worker count
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("models: %d passive: %d failed: %d\n", rep.Models, rep.Passive, rep.Failed)
	fmt.Printf("worst final sigma <= 1: %v\n", rep.WorstSigma <= 1)
	// Output:
	// models: 3 passive: 3 failed: 0
	// worst final sigma <= 1: true
}

func ExampleEnforcePassivityBatch_weights() {
	// Weighted batch enforcement: one sensitivity weight per model (a
	// shared Enforce.Weight works too). Each model's cost Gramian is the
	// closed-form cascade block computed on its worker.
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		panic(err)
	}
	weight, _, err := repro.BuildWeight(syn.Data, syn.Load, 6)
	if err != nil {
		panic(err)
	}

	lib := []*repro.Macromodel{violatingModel(3), violatingModel(4)}
	rep, err := repro.EnforcePassivityBatch(lib, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			ClampD: true,
		},
		Weights: []*repro.Weight{weight, weight},
		Workers: 2,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("models: %d passive: %d failed: %d\n", rep.Models, rep.Passive, rep.Failed)
	// Output:
	// models: 2 passive: 2 failed: 0
}
