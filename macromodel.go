package repro

import (
	"encoding/json"
	"fmt"
	"math"
	"math/cmplx"
	"os"

	"repro/internal/mat"
	"repro/internal/rational"
)

// Macromodel is a stable common-pole rational scattering macromodel
//
//	S(s) = Σ_m R_m/(s − p_m) + D
//
// produced by Fit and consumed by the passivity and PDN analyses.
type Macromodel struct {
	model *rational.Model
	r0    float64
}

// Ports returns the port count P.
func (m *Macromodel) Ports() int { return m.model.Ports() }

// NumPoles returns the model order n.
func (m *Macromodel) NumPoles() int { return m.model.NumPoles() }

// Poles returns a copy of the pole set (conjugate pairs adjacent).
func (m *Macromodel) Poles() []complex128 {
	return append([]complex128(nil), m.model.Poles...)
}

// R0 returns the scattering normalization resistance (Ω).
func (m *Macromodel) R0() float64 { return m.r0 }

// Clone deep-copies the macromodel.
func (m *Macromodel) Clone() *Macromodel {
	return &Macromodel{model: m.model.Clone(), r0: m.r0}
}

// IsStable reports whether all poles lie strictly in the left half plane.
func (m *Macromodel) IsStable() bool { return m.model.IsStable(0) }

// Eval returns S(j2πf) as a dense complex matrix for a frequency in Hz.
func (m *Macromodel) Eval(freqHz float64) [][]complex128 {
	h := m.model.Eval(2 * math.Pi * freqHz)
	p := h.Rows
	out := make([][]complex128, p)
	for i := 0; i < p; i++ {
		out[i] = append([]complex128(nil), h.Row(i)...)
	}
	return out
}

// EvalEntry returns S_ij(j2πf).
func (m *Macromodel) EvalEntry(i, j int, freqHz float64) complex128 {
	return m.model.EvalEntry(i, j, 2*math.Pi*freqHz)
}

// Sample evaluates the model over a frequency grid, producing a dataset
// directly comparable with measured SData.
func (m *Macromodel) Sample(freqHz []float64) *SData {
	d := &SData{Freq: append([]float64(nil), freqHz...), R0: m.r0}
	for _, f := range freqHz {
		d.S = append(d.S, m.model.Eval(2*math.Pi*f))
	}
	return d
}

// MaxSingularValue returns σ_max(S(j2πf)).
func (m *Macromodel) MaxSingularValue(freqHz float64) float64 {
	return mat.MaxSingularValue(m.model.Eval(2 * math.Pi * freqHz))
}

// SingularValues returns all singular values of S(j2πf), descending.
func (m *Macromodel) SingularValues(freqHz float64) []float64 {
	return mat.SingularValues(m.model.Eval(2 * math.Pi * freqHz))
}

// RMSError returns the plain (unweighted) RMS deviation of the model from
// a dataset over all entries and frequencies.
func (m *Macromodel) RMSError(d *SData) float64 {
	p := m.Ports()
	sum, cnt := 0.0, 0
	for k, f := range d.Freq {
		h := m.model.Eval(2 * math.Pi * f)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				e := cmplx.Abs(h.At(i, j) - d.S[k].At(i, j))
				sum += e * e
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(cnt))
}

// modelJSON is the serialized form of a macromodel.
type modelJSON struct {
	R0       float64          `json:"r0"`
	Poles    [][2]float64     `json:"poles"`
	Residues [][][][2]float64 `json:"residues"` // [pole][row][col] = (re, im)
	D        [][]float64      `json:"d"`
}

// MarshalJSON implements json.Marshaler.
func (m *Macromodel) MarshalJSON() ([]byte, error) {
	p := m.Ports()
	out := modelJSON{R0: m.r0}
	for _, pole := range m.model.Poles {
		out.Poles = append(out.Poles, [2]float64{real(pole), imag(pole)})
	}
	for _, r := range m.model.Residues {
		rm := make([][][2]float64, p)
		for i := 0; i < p; i++ {
			rm[i] = make([][2]float64, p)
			for j := 0; j < p; j++ {
				z := r.At(i, j)
				rm[i][j] = [2]float64{real(z), imag(z)}
			}
		}
		out.Residues = append(out.Residues, rm)
	}
	for i := 0; i < p; i++ {
		out.D = append(out.D, append([]float64(nil), m.model.D.Row(i)...))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Macromodel) UnmarshalJSON(data []byte) error {
	var in modelJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	n := len(in.Poles)
	if len(in.Residues) != n {
		return fmt.Errorf("repro: %d poles but %d residue matrices", n, len(in.Residues))
	}
	p := len(in.D)
	poles := make([]complex128, n)
	for i, pr := range in.Poles {
		poles[i] = complex(pr[0], pr[1])
	}
	residues := make([]*mat.CMatrix, n)
	for k, rm := range in.Residues {
		residues[k] = mat.NewCMatrix(p, p)
		if len(rm) != p {
			return fmt.Errorf("repro: residue %d has %d rows, want %d", k, len(rm), p)
		}
		for i := 0; i < p; i++ {
			if len(rm[i]) != p {
				return fmt.Errorf("repro: residue %d row %d has %d cols", k, i, len(rm[i]))
			}
			for j := 0; j < p; j++ {
				residues[k].Set(i, j, complex(rm[i][j][0], rm[i][j][1]))
			}
		}
	}
	d := mat.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		if len(in.D[i]) != p {
			return fmt.Errorf("repro: D row %d has %d cols", i, len(in.D[i]))
		}
		copy(d.Row(i), in.D[i])
	}
	model, err := rational.New(poles, residues, d)
	if err != nil {
		return err
	}
	m.model = model
	m.r0 = in.R0
	if m.r0 <= 0 {
		m.r0 = 50
	}
	return nil
}

// SaveFile writes the macromodel as JSON.
func (m *Macromodel) SaveFile(path string) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadMacromodel reads a JSON macromodel written by SaveFile.
func LoadMacromodel(path string) (*Macromodel, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m := &Macromodel{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, err
	}
	return m, nil
}
