package repro

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/mat"
	"repro/internal/touchstone"
)

// SData holds tabulated scattering samples of a P-port network.
type SData struct {
	// Freq lists sample frequencies in Hz, ascending.
	Freq []float64
	// S holds one P×P scattering matrix per frequency.
	S []*mat.CMatrix
	// R0 is the port normalization resistance in Ω (typically 50).
	R0 float64
}

// ErrBadData reports inconsistent scattering data.
var ErrBadData = errors.New("repro: inconsistent scattering data")

// NewSData builds and validates a dataset from raw samples
// (samples[k][i][j] = S_ij at Freq[k]).
func NewSData(freqHz []float64, samples [][][]complex128, r0 float64) (*SData, error) {
	if len(freqHz) == 0 || len(freqHz) != len(samples) {
		return nil, ErrBadData
	}
	p := len(samples[0])
	d := &SData{Freq: append([]float64(nil), freqHz...), R0: r0}
	for k, s := range samples {
		m := mat.NewCMatrix(p, p)
		if len(s) != p {
			return nil, fmt.Errorf("%w: sample %d has %d rows, want %d", ErrBadData, k, len(s), p)
		}
		for i, row := range s {
			if len(row) != p {
				return nil, fmt.Errorf("%w: sample %d row %d has %d cols", ErrBadData, k, i, len(row))
			}
			copy(m.Data[i*p:(i+1)*p], row)
		}
		d.S = append(d.S, m)
	}
	return d, d.Validate()
}

// Validate checks structural consistency.
func (d *SData) Validate() error {
	if len(d.Freq) == 0 || len(d.Freq) != len(d.S) {
		return ErrBadData
	}
	if d.R0 <= 0 {
		return fmt.Errorf("%w: R0 = %g", ErrBadData, d.R0)
	}
	p := d.S[0].Rows
	for k, s := range d.S {
		if s.Rows != p || s.Cols != p {
			return fmt.Errorf("%w: sample %d is %d×%d, want %d×%d", ErrBadData, k, s.Rows, s.Cols, p, p)
		}
		if k > 0 && d.Freq[k] < d.Freq[k-1] {
			return fmt.Errorf("%w: frequencies not ascending at %d", ErrBadData, k)
		}
	}
	return nil
}

// Ports returns the port count.
func (d *SData) Ports() int {
	if len(d.S) == 0 {
		return 0
	}
	return d.S[0].Rows
}

// Points returns the number of frequency samples.
func (d *SData) Points() int { return len(d.Freq) }

// Omega returns the angular frequencies (rad/s).
func (d *SData) Omega() []float64 {
	out := make([]float64, len(d.Freq))
	for i, f := range d.Freq {
		out[i] = 2 * math.Pi * f
	}
	return out
}

// At returns S_ij at sample k.
func (d *SData) At(k, i, j int) complex128 { return d.S[k].At(i, j) }

// MaxSingularValues returns σ_max(Ŝ_k) per sample — the passivity metric
// of the raw data itself.
func (d *SData) MaxSingularValues() []float64 {
	out := make([]float64, len(d.S))
	for k, s := range d.S {
		out[k] = mat.MaxSingularValue(s)
	}
	return out
}

// LogFreqGrid builds a log-spaced frequency grid (Hz) with n points from
// fmin to fmax inclusive; when includeDC is true a 0 Hz point is prepended,
// matching the paper's sweep (1 kHz – 2 GHz logarithmic plus DC).
func LogFreqGrid(fmin, fmax float64, n int, includeDC bool) []float64 {
	if n < 2 || fmin <= 0 || fmax <= fmin {
		panic("repro: bad LogFreqGrid arguments")
	}
	var out []float64
	if includeDC {
		out = append(out, 0)
	}
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		out = append(out, fmin*math.Pow(fmax/fmin, t))
	}
	return out
}

// ReadTouchstoneFrom loads scattering data in Touchstone v1 format from an
// arbitrary stream — a network response, a decompressor, an archive entry —
// without touching the filesystem. Unlike ReadTouchstone there is no
// filename to infer the port count from, so ports must be positive.
func ReadTouchstoneFrom(r io.Reader, ports int) (*SData, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("repro: ReadTouchstoneFrom needs a positive port count (got %d)", ports)
	}
	td, err := touchstone.Read(r, ports)
	if err != nil {
		return nil, err
	}
	if td.Parameter != touchstone.ParamS {
		return nil, fmt.Errorf("repro: stream holds %c-parameters; only S supported here", td.Parameter)
	}
	d := &SData{Freq: td.Freq, S: td.Matrices, R0: td.R0}
	return d, d.Validate()
}

// WriteTouchstoneTo writes the dataset in Touchstone v1 format (Hz, RI) to
// an arbitrary stream — the symmetric counterpart of ReadTouchstoneFrom.
func WriteTouchstoneTo(w io.Writer, d *SData) error {
	return touchstone.Write(w, &touchstone.Data{
		Freq: d.Freq, Matrices: d.S, Parameter: touchstone.ParamS, R0: d.R0,
	})
}

// ReadTouchstone loads scattering data from a Touchstone v1 file. The port
// count is taken from the .sNp extension when parsable, otherwise it must
// be positive in the ports argument. It delegates to ReadTouchstoneFrom.
func ReadTouchstone(path string, ports int) (*SData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if ports <= 0 {
		ports = portsFromExtension(path)
		if ports <= 0 {
			return nil, fmt.Errorf("repro: cannot infer port count from %q, pass it explicitly", path)
		}
	}
	d, err := ReadTouchstoneFrom(f, ports)
	if err != nil {
		// The stream errors already carry the package prefix; add the path.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// WriteTouchstone writes the dataset to a Touchstone v1 file (Hz, RI) via
// WriteTouchstoneTo.
func WriteTouchstone(path string, d *SData) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTouchstoneTo(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func portsFromExtension(path string) int {
	// Expect a literal .sNp / .SNp extension. Requiring the dot matters:
	// a name like "mass3p" merely ends in the letters s-3-p and must not
	// silently infer 3 ports.
	n := len(path)
	if n < 4 {
		return 0
	}
	i := n - 1
	if path[i] != 'p' && path[i] != 'P' {
		return 0
	}
	j := i - 1
	for j >= 0 && path[j] >= '0' && path[j] <= '9' {
		j--
	}
	if j < 1 || (path[j] != 's' && path[j] != 'S') || j == i-1 || path[j-1] != '.' {
		return 0
	}
	ports := 0
	for _, c := range path[j+1 : i] {
		ports = ports*10 + int(c-'0')
	}
	return ports
}
