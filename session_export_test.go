package repro_test

import (
	"bytes"
	"context"
	"testing"

	repro "repro"
)

// TestSessionExportImportCache round-trips a warm evaluation cache
// through the serialized blob form: the importing session must report the
// fingerprint resident and produce the exact same check results as the
// exporter — the mechanism cluster warm-state transfer rides on.
func TestSessionExportImportCache(t *testing.T) {
	m := violatingLibrary(t, 1, 20)[0]
	opts := repro.CheckOptions{Method: repro.CheckAdaptive}
	fp := repro.PoleFingerprint(m)

	s1 := repro.NewSession()
	want, err := s1.Check(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.ExportCache(fp); err != nil {
		t.Fatalf("export after check: %v", err)
	}
	blob, err := s1.ExportCache(fp)
	if err != nil {
		t.Fatal(err)
	}

	// The blob self-identifies and validates end to end.
	gotFP, err := repro.CacheBlobFingerprint(blob)
	if err != nil {
		t.Fatalf("validating exported blob: %v", err)
	}
	if gotFP != fp {
		t.Fatalf("blob fingerprint %016x, want %016x", gotFP, fp)
	}

	s2 := repro.NewSession()
	if s2.HasCache(fp) {
		t.Fatal("fresh session already holds the fingerprint")
	}
	impFP, err := s2.ImportCache(blob)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if impFP != fp || !s2.HasCache(fp) {
		t.Fatalf("import installed %016x (resident=%v), want %016x", impFP, s2.HasCache(fp), fp)
	}
	got, err := s2.Check(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxSigma != want.MaxSigma || got.Samples != want.Samples || len(got.Violations) != len(want.Violations) {
		t.Fatalf("imported-cache check drifted: %+v vs %+v", got, want)
	}

	// Exporting a fingerprint nobody holds fails typed.
	if _, err := s2.ExportCache(fp ^ 1); err == nil {
		t.Fatal("export of an absent fingerprint succeeded")
	}
}

// TestSessionImportCacheRejectsCorrupt flips single bytes across the blob
// and asserts every torn variant is rejected whole — no session state
// changes, matching the quarantine-on-corrupt contract of the file path.
func TestSessionImportCacheRejectsCorrupt(t *testing.T) {
	m := violatingLibrary(t, 1, 20)[0]
	fp := repro.PoleFingerprint(m)
	s1 := repro.NewSession()
	if _, err := s1.Check(context.Background(), m, repro.CheckOptions{Method: repro.CheckAdaptive}); err != nil {
		t.Fatal(err)
	}
	blob, err := s1.ExportCache(fp)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 8, len(blob) / 2, len(blob) - 1} {
		torn := append([]byte(nil), blob...)
		torn[off] ^= 0x20
		if _, err := repro.CacheBlobFingerprint(torn); err == nil {
			t.Errorf("CacheBlobFingerprint accepted a blob torn at %d", off)
		}
		s2 := repro.NewSession()
		if _, err := s2.ImportCache(torn); err == nil {
			t.Errorf("ImportCache accepted a blob torn at %d", off)
		}
		if st := s2.CacheStats(); st.Models != 0 {
			t.Errorf("rejected import at offset %d left %d caches resident", off, st.Models)
		}
	}
	// Truncation is rejected too.
	if _, err := repro.NewSession().ImportCache(blob[:len(blob)/3]); err == nil {
		t.Error("ImportCache accepted a truncated blob")
	}
	if _, err := repro.NewSession().ImportCache(nil); err == nil {
		t.Error("ImportCache accepted an empty blob")
	}

	// "Live cache wins": importing over an already-warm fingerprint keeps
	// the session consistent (one resident model, checks still clean).
	if _, err := s1.ImportCache(blob); err != nil {
		t.Fatalf("re-import over live cache: %v", err)
	}
	if st := s1.CacheStats(); st.Models != 1 {
		t.Fatalf("re-import left %d resident models, want 1", st.Models)
	}
	fps := s1.CacheFingerprints()
	if len(fps) != 1 || fps[0] != fp {
		t.Fatalf("CacheFingerprints = %x, want [%016x]", fps, fp)
	}
	if !bytes.Equal(func() []byte { b, _ := s1.ExportCache(fp); return b }(), blob) {
		// Not a hard requirement (touch order may differ) but the
		// serialized payload should be stable for an untouched cache.
		t.Log("note: re-exported blob differs from original (acceptable if ordering metadata moved)")
	}
}
