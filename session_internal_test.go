package repro

// White-box tests of the Session redesign's backward-compatibility
// contract: routing a check or enforcement through a Session — cold or
// warm — must produce results bitwise identical to the pre-Session free
// functions, whose bodies called internal/passivity directly with a fresh
// evaluation state per call. The pre-Session behavior is reconstructed
// here from the same internals.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/passivity"
)

func syntheticViolator(t *testing.T, seed int64) *Macromodel {
	t.Helper()
	m, err := SyntheticMacromodel(SyntheticModelOptions{
		Ports: 2, Poles: 18, Seed: seed, PeakGain: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// preSessionCheck reproduces the pre-Session CheckPassivity body: one
// stateless internal Check with no shared cache.
func preSessionCheck(t *testing.T, m *Macromodel, opts CheckOptions) *PassivityReport {
	t.Helper()
	rep, err := passivity.Check(m.model, opts.internal())
	if err != nil {
		t.Fatal(err)
	}
	return toPublicReport(rep)
}

func TestSessionCheckBitwiseIdenticalToStateless(t *testing.T) {
	for _, method := range []CheckMethod{CheckAdaptive, CheckSweep, CheckHamiltonian} {
		m := syntheticViolator(t, 11)
		opts := CheckOptions{Method: method, Workers: 2}
		want := preSessionCheck(t, m, opts)

		s := NewSession()
		cold, err := s.Check(context.Background(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, cold) {
			t.Fatalf("method %d: cold session check differs from stateless check:\n%+v\nvs\n%+v", method, cold, want)
		}
		// Second pass: served largely from the session cache, still bitwise
		// identical (memoized values are recomputations, never approximations).
		warm, err := s.Check(context.Background(), m, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, warm) {
			t.Fatalf("method %d: warm session check differs from stateless check:\n%+v\nvs\n%+v", method, warm, want)
		}
	}
}

func TestSessionEnforceBitwiseIdenticalToStateless(t *testing.T) {
	base := syntheticViolator(t, 23)
	opts := EnforceOptions{Check: CheckOptions{Method: CheckAdaptive, Workers: 1}, ClampD: true}

	// Pre-Session path: fresh internal enforcement on a clone.
	mA := base.Clone()
	eopts := passivity.EnforceOptions{
		Check:  opts.Check.internal(),
		ClampD: opts.ClampD,
	}
	repA, err := passivity.Enforce(mA.model, eopts)
	if err != nil {
		t.Fatal(err)
	}
	wantRep := toPublicEnforceReport(repA)

	// Session path, then a warm re-enforcement of another clone: the pole
	// set matches, so the basis layer is shared, but results must not move.
	s := NewSession()
	for pass, name := range map[int]string{0: "cold", 1: "warm"} {
		mB := base.Clone()
		got, err := s.Enforce(context.Background(), mB, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantRep, got) {
			t.Fatalf("pass %d (%s): session enforcement report differs:\n%+v\nvs\n%+v", pass, name, got, wantRep)
		}
		ja, _ := json.Marshal(mA)
		jb, _ := json.Marshal(mB)
		if string(ja) != string(jb) {
			t.Fatalf("pass %d (%s): enforced models differ bitwise", pass, name)
		}
	}
}

// TestSessionEnforceClampDInvalidatesSigma: regression for the warm-cache
// D-clamp hazard. A session Check populates the σ layer from the
// unclamped D; the following Enforce(ClampD) moves D, so those σ samples
// are stale and must be dropped inside Enforce — otherwise the session
// run diverges from the stateless one (and can report passivity from
// pre-clamp data).
func TestSessionEnforceClampDInvalidatesSigma(t *testing.T) {
	base := syntheticViolator(t, 77)
	// Push σmax(D) past the enforcement margin so ClampD must fire.
	p := base.model.D.Rows
	for i := 0; i < p; i++ {
		base.model.D.Set(i, i, base.model.D.At(i, i)+0.4)
	}
	opts := EnforceOptions{Check: CheckOptions{Method: CheckAdaptive, Workers: 1}, ClampD: true}

	mA := base.Clone()
	repA, err := passivity.Enforce(mA.model, passivity.EnforceOptions{Check: opts.Check.internal(), ClampD: true})
	if err != nil {
		t.Fatal(err)
	}
	if !repA.DClamped {
		t.Fatal("test premise broken: D was not clamped")
	}
	want := toPublicEnforceReport(repA)

	s := NewSession()
	mB := base.Clone()
	// Warm the σ layer with the UNCLAMPED D.
	if _, err := s.Check(context.Background(), mB, opts.Check); err != nil {
		t.Fatal(err)
	}
	got, err := s.Enforce(context.Background(), mB, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("session enforcement after a warm check diverged from the stateless run:\n%+v\nvs\n%+v", got, want)
	}
	ja, _ := json.Marshal(mA)
	jb, _ := json.Marshal(mB)
	if string(ja) != string(jb) {
		t.Fatal("clamped+enforced models differ bitwise between session and stateless paths")
	}
}

// TestSessionCacheSigmaInvalidationOnResidueChange: two models sharing a
// pole set but carrying different residues must not see each other's σ
// samples — the session guards the σ layer with a residue fingerprint.
func TestSessionCacheSigmaInvalidationOnResidueChange(t *testing.T) {
	a := syntheticViolator(t, 31)
	b := a.Clone()
	// Perturb one residue entry of b: same poles, different σ(ω).
	delta := make([]float64, b.model.NumPoles())
	delta[0] = 0.05
	b.model.AddToCVector(0, 0, delta)

	opts := CheckOptions{Method: CheckAdaptive, Workers: 1}
	wantA := preSessionCheck(t, a, opts)
	wantB := preSessionCheck(t, b, opts)
	if wantA.MaxSigma == wantB.MaxSigma {
		t.Fatal("test premise broken: perturbed clone has identical σmax")
	}

	s := NewSession()
	gotA, err := s.Check(context.Background(), a, opts)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := s.Check(context.Background(), b, opts) // same pole fingerprint, stale σ would poison this
	if err != nil {
		t.Fatal(err)
	}
	gotA2, err := s.Check(context.Background(), a, opts) // and back
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantA, gotA) || !reflect.DeepEqual(wantA, gotA2) {
		t.Fatal("session check of model A drifted")
	}
	if !reflect.DeepEqual(wantB, gotB) {
		t.Fatalf("session check of perturbed clone differs from stateless check:\n%+v\nvs\n%+v", gotB, wantB)
	}
	if st := s.CacheStats(); st.Models != 1 {
		t.Fatalf("expected one shared pole-set cache, have %d", st.Models)
	}
}

// TestSessionBatchBitwiseIdenticalToStateless: the session batch path with
// fingerprint-keyed caches matches per-model stateless enforcement, on the
// cold first sweep and on a warm repeat over the same (re-cloned) library.
func TestSessionBatchBitwiseIdenticalToStateless(t *testing.T) {
	const n = 4
	orig := make([]*Macromodel, n)
	seq := make([]*Macromodel, n)
	for i := range orig {
		orig[i] = syntheticViolator(t, 100+int64(i))
		seq[i] = orig[i].Clone()
	}
	opts := EnforceOptions{Check: CheckOptions{Method: CheckAdaptive, Workers: 1}, ClampD: true}
	wantReps := make([]*EnforceReport, n)
	for i, m := range seq {
		eopts := passivity.EnforceOptions{Check: opts.Check.internal(), ClampD: true}
		rep, err := passivity.Enforce(m.model, eopts)
		if err != nil {
			t.Fatal(err)
		}
		wantReps[i] = toPublicEnforceReport(rep)
	}
	s := NewSession()
	for pass := 0; pass < 2; pass++ {
		models := make([]*Macromodel, n)
		for i := range models {
			models[i] = orig[i].Clone()
		}
		rep, err := s.EnforceBatch(context.Background(), models, BatchEnforceOptions{Enforce: opts, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantReps {
			if rep.Errors[i] != nil {
				t.Fatalf("pass %d model %d: %v", pass, i, rep.Errors[i])
			}
			if !reflect.DeepEqual(wantReps[i], rep.Reports[i]) {
				t.Fatalf("pass %d model %d: session batch report differs:\n%+v\nvs\n%+v", pass, i, rep.Reports[i], wantReps[i])
			}
			ja, _ := json.Marshal(seq[i])
			jb, _ := json.Marshal(models[i])
			if string(ja) != string(jb) {
				t.Fatalf("pass %d model %d: batch-enforced model differs bitwise from sequential", pass, i)
			}
		}
	}
}

// TestSessionSigmaStashKeepsVariantsWarm: cycling a session through
// residue variants of one pole set must restore each variant's σ layer
// from the per-cache stash — the second visit of a variant is served from
// σ samples, not recomputed from the shared basis.
func TestSessionSigmaStashKeepsVariantsWarm(t *testing.T) {
	a := syntheticViolator(t, 47)
	b := a.Clone()
	delta := make([]float64, b.model.NumPoles())
	delta[0] = 0.05
	b.model.AddToCVector(0, 0, delta)

	opts := CheckOptions{Method: CheckAdaptive, Workers: 1}
	ctx := context.Background()
	s := NewSession()
	for _, m := range []*Macromodel{a, b} { // first round: both cold
		if _, err := s.Check(ctx, m, opts); err != nil {
			t.Fatal(err)
		}
	}
	fp := PoleFingerprint(a)
	s.mu.Lock()
	e := s.caches[fp]
	if e == nil {
		s.mu.Unlock()
		t.Fatal("no session cache for the shared pole set")
	}
	e.cache.SigmaHits, e.cache.SigmaMisses = 0, 0
	s.mu.Unlock()

	for _, m := range []*Macromodel{a, b} { // second round: σ restored per variant
		if _, err := s.Check(ctx, m, opts); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	hits, misses := e.cache.SigmaHits, e.cache.SigmaMisses
	s.mu.Unlock()
	if hits == 0 {
		t.Fatal("re-checking variants produced no σ hits: stash did not restore their layers")
	}
	if misses > hits/10 {
		t.Fatalf("re-check of stashed variants mostly cold: %d hits, %d misses", hits, misses)
	}
	if st := s.CacheStats(); st.Models != 1 || st.SigmaEntries == 0 {
		t.Fatalf("cache stats after variant cycling: %+v", st)
	}
}
