package repro_test

import (
	"math"
	"math/cmplx"
	"testing"

	repro "repro"
)

// extractSmall runs the full weighted flow on the 8-port synthetic PDN once
// and shares the result across the transient tests.
func extractSmall(t *testing.T) (*repro.ExtractResult, *repro.SyntheticPDN) {
	t.Helper()
	freqs := repro.LogFreqGrid(1e3, 2e9, 60, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := repro.Extract(syn.Data, syn.Load, repro.ExtractOptions{
		NumPoles: 8,
		Enforce: repro.EnforceOptions{
			Check: repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 800},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, syn
}

func TestTransientDroopOfExtractedModel(t *testing.T) {
	res, syn := extractSmall(t)
	rep, wave, err := repro.Droop(res.Model, syn.Load, 1e-9, repro.TransientOptions{
		Dt: 2e-10, Steps: 20000, RecordEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakDroop <= 0 {
		t.Fatal("expected a nonzero droop")
	}
	// A passive macromodel with passive terminations must never deliver
	// negative cumulative energy.
	if rep.MinEnergy < -1e-9 {
		t.Fatalf("passive model generated energy: %v", rep.MinEnergy)
	}
	// The waveform must stay bounded by a generous multiple of the peak
	// target impedance level.
	if rep.PeakDroop > 100 {
		t.Fatalf("droop %v V for 1 A is not plausible for a PDN", rep.PeakDroop)
	}
	if len(wave.T) == 0 {
		t.Fatal("no recorded waveform")
	}
}

func TestTransientSineMatchesTargetImpedance(t *testing.T) {
	res, syn := extractSmall(t)
	const f0 = 5e7
	zs, err := repro.TargetImpedanceModel(res.Model, []float64{f0}, syn.Load)
	if err != nil {
		t.Fatal(err)
	}
	want := cmplx.Abs(zs[0])

	out, err := repro.Transient(res.Model, syn.Load, repro.SineWave(f0, 1), repro.TransientOptions{
		Dt: 1 / (50 * f0), Steps: 30000,
	})
	if err != nil {
		t.Fatal(err)
	}
	amp, _ := out.FitTone(syn.Load.ObsPort, f0, out.T[len(out.T)-1]*0.6)
	if math.Abs(amp-want) > 0.05*want {
		t.Fatalf("transient steady-state amplitude %v, frequency domain %v", amp, want)
	}
}

func TestTransientErrorPaths(t *testing.T) {
	res, syn := extractSmall(t)
	if _, err := repro.Transient(res.Model, syn.Load, nil, repro.TransientOptions{Dt: 1e-9, Steps: 10}); err == nil {
		t.Fatal("nil waveform must fail")
	}
	if _, err := repro.Transient(res.Model, syn.Load, repro.StepWave(0, 0, 1), repro.TransientOptions{}); err == nil {
		t.Fatal("missing Dt/Steps must fail")
	}
	empty := *syn.Load
	empty.J = make([]complex128, len(syn.Load.J))
	if _, err := repro.Transient(res.Model, &empty, repro.StepWave(0, 0, 1), repro.TransientOptions{Dt: 1e-9, Steps: 10}); err == nil {
		t.Fatal("zero excitation must fail")
	}
}
