package repro

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/rational"
	"repro/internal/vecfit"
)

// Weight is a stable, minimum-phase SISO rational model Ξ̃(s) used as a
// frequency-dependent weight in fitting and passivity enforcement.
type Weight struct {
	model *rational.Model
}

// Eval returns |Ξ̃(j2πf)|.
func (w *Weight) Eval(freqHz float64) float64 {
	z := w.model.EvalEntry(0, 0, 2*math.Pi*freqHz)
	return math.Hypot(real(z), imag(z))
}

// Order returns the weight model order n_w.
func (w *Weight) Order() int { return w.model.NumPoles() }

// Poles returns a copy of the weight poles.
func (w *Weight) Poles() []complex128 {
	return append([]complex128(nil), w.model.Poles...)
}

// FitWeight fits a minimum-phase rational weight to magnitude samples
// xi[k] ≥ 0 at freqHz[k] via Magnitude Vector Fitting (paper eq. 17).
// order is n_w (the paper uses 8); iterations ≤ 0 selects the default.
func FitWeight(freqHz []float64, xi []float64, order, iterations int) (*Weight, error) {
	omega := make([]float64, len(freqHz))
	for i, f := range freqHz {
		omega[i] = 2 * math.Pi * f
	}
	m, _, err := vecfit.FitMagnitude(omega, xi, vecfit.MagOptions{Order: order, Iterations: iterations})
	if err != nil {
		return nil, err
	}
	return &Weight{model: m}, nil
}

// BuildWeight computes the sensitivity Ξ of the loaded PDN directly from
// the data and fits the weight model in one step (order ≤ 0 defaults to
// the paper's n_w = 8). It returns the weight and the raw sensitivity
// samples.
func BuildWeight(data *SData, load *Load, order int) (*Weight, []float64, error) {
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	m, xi, err := core.BuildWeight(data.Omega(), data.S, data.R0, load, core.WeightOptions{Order: order})
	if err != nil {
		return nil, nil, err
	}
	return &Weight{model: m}, xi, nil
}

// weightJSON is the serialized form of a sensitivity weight: the SISO
// pole-residue model Ξ̃(s) = Σ r_m/(s − p_m) + d with angular-frequency
// poles, matching the macromodel JSON conventions.
type weightJSON struct {
	Poles    [][2]float64 `json:"poles"`
	Residues [][2]float64 `json:"residues"`
	D        float64      `json:"d"`
}

// MarshalJSON implements json.Marshaler.
func (w *Weight) MarshalJSON() ([]byte, error) {
	out := weightJSON{D: w.model.D.At(0, 0)}
	for _, p := range w.model.Poles {
		out.Poles = append(out.Poles, [2]float64{real(p), imag(p)})
	}
	for _, r := range w.model.ScalarResidues() {
		out.Residues = append(out.Residues, [2]float64{real(r), imag(r)})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (w *Weight) UnmarshalJSON(data []byte) error {
	var in weightJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	if len(in.Poles) != len(in.Residues) {
		return fmt.Errorf("repro: weight has %d poles but %d residues", len(in.Poles), len(in.Residues))
	}
	poles := make([]complex128, len(in.Poles))
	res := make([]complex128, len(in.Residues))
	for i := range in.Poles {
		poles[i] = complex(in.Poles[i][0], in.Poles[i][1])
		res[i] = complex(in.Residues[i][0], in.Residues[i][1])
	}
	m, err := rational.NewScalar(poles, res, in.D)
	if err != nil {
		return err
	}
	w.model = m
	return nil
}

// Save writes the weight as JSON to an arbitrary stream, loadable by
// ReadWeight — the stream-level counterpart of SaveFile for services that
// ship weights over the network or store them compressed.
func (w *Weight) Save(dst io.Writer) error {
	data, err := json.MarshalIndent(w, "", " ")
	if err != nil {
		return err
	}
	_, err = dst.Write(data)
	return err
}

// ReadWeight reads a JSON sensitivity weight written by Weight.Save (or
// Weight.SaveFile), rejecting weights with unstable poles.
func ReadWeight(r io.Reader) (*Weight, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	w := &Weight{}
	if err := json.Unmarshal(data, w); err != nil {
		return nil, err
	}
	if !w.model.IsStable(0) {
		return nil, fmt.Errorf("repro: weight has unstable poles")
	}
	return w, nil
}

// SaveFile writes the weight as JSON, loadable by LoadWeightFile — the
// persistence step that lets one fitted sensitivity weight drive repeated
// weighted (batch) enforcement runs, e.g. via passcheck -weight. It
// delegates to Save.
func (w *Weight) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadWeightFile reads a JSON sensitivity weight written by Weight.SaveFile
// via ReadWeight.
func LoadWeightFile(path string) (*Weight, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	w, err := ReadWeight(f)
	if err != nil {
		// ReadWeight errors already carry the package prefix; add the path.
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return w, nil
}
