package repro_test

import (
	"context"
	"testing"

	repro "repro"
)

// BenchmarkSessionWarmCache measures what the Session's persistent
// per-pole-set caches buy on the repeated-library-sweep workload the
// ROADMAP scale-out item targets: the same fixed-pole model library is
// checked (or re-enforced) over and over, as a monitoring service or an
// iterating designer does. "cold" rebuilds the evaluation state every
// sweep (one fresh Session per iteration — the pre-Session behavior of
// the stateless root functions); "warm" reuses one long-lived Session, so
// repeated checks are served from the σ layer and re-enforcements of
// re-cloned models reuse every pole-basis vector. The acceptance target
// is warm ≥ 2× cold on the check workload (BENCH_5.json).
func BenchmarkSessionWarmCache(b *testing.B) {
	const libSize = 6
	models := make([]*repro.Macromodel, libSize)
	for i := range models {
		m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 4, Poles: 60, Seed: 500 + int64(i), PeakGain: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		models[i] = m
	}
	ctx := context.Background()
	chk := repro.CheckOptions{Method: repro.CheckAdaptive}

	sweep := func(b *testing.B, s *repro.Session) {
		for _, m := range models {
			if _, err := s.Check(ctx, m, chk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("check-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(b, repro.NewSession()) // fresh evaluation state every sweep
		}
	})
	b.Run("check-warm", func(b *testing.B) {
		b.ReportAllocs()
		s := repro.NewSession()
		sweep(b, s) // prime
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, s)
		}
	})

	eopts := repro.EnforceOptions{Check: chk, ClampD: true}
	enforceLib := func(b *testing.B, s *repro.Session) {
		for _, m := range models {
			if _, err := s.Enforce(ctx, m.Clone(), eopts); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("enforce-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enforceLib(b, repro.NewSession())
		}
	})
	b.Run("enforce-warm", func(b *testing.B) {
		b.ReportAllocs()
		s := repro.NewSession()
		enforceLib(b, s) // prime: the pole-basis layers stay resident
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enforceLib(b, s)
		}
	})
}
