package repro

import (
	"bytes"
	"container/list"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/rational"
)

// ProgressKind classifies the events a Session progress sink receives.
type ProgressKind string

// Progress event kinds delivered to WithProgress sinks.
const (
	// ProgressCheck reports a completed passivity check (inside an
	// enforcement run that is one event per sweep).
	ProgressCheck ProgressKind = "check"
	// ProgressIteration reports one applied enforcement perturbation.
	ProgressIteration ProgressKind = "iteration"
	// ProgressCertificateStage reports a completed certification-pipeline
	// stage.
	ProgressCertificateStage ProgressKind = "certificate-stage"
)

// ProgressEvent is one observation of a running Session operation,
// delivered synchronously (and serialized — handlers never run
// concurrently) to the sink installed by WithProgress.
type ProgressEvent struct {
	// Kind classifies the event.
	Kind ProgressKind
	// Model is the batch model index the event belongs to, -1 for
	// single-model operations.
	Model int
	// Iteration is the 1-based enforcement sweep count (iteration events).
	Iteration int
	// MaxSigma is the worst singular value the step observed.
	MaxSigma float64
	// Passive is the step's verdict (check events).
	Passive bool
	// Stage names the certification stage (certificate-stage events).
	Stage string
	// Samples counts the σ(ω) evaluations the step spent.
	Samples int
	// Nodes counts contour-quadrature determinant evaluations
	// (certificate-stage events from the terminal counter stage).
	Nodes int
	// Backend names the eigenproblem kernel a certificate stage ran (or
	// declined) on — "structured" or "dense"; empty when the stage involved
	// no such kernel.
	Backend string
	// Declined counts the intervals a certificate stage refused at its
	// dimension gate (certificate-stage events).
	Declined int
}

// DefaultSessionCacheBudget bounds the estimated bytes a Session keeps in
// evaluation caches before whole least-recently-used model caches are
// evicted (256 MiB). Override with WithCacheBudget.
const DefaultSessionCacheBudget int64 = 256 << 20

// SessionOption configures NewSession.
type SessionOption func(*Session)

// WithWorkers sets the default worker count of the session's checks and
// batch runs (0 keeps the per-call/GOMAXPROCS default). An explicit
// Workers in a call's options still wins.
func WithWorkers(n int) SessionOption {
	return func(s *Session) { s.workers = n }
}

// WithMethod sets the default passivity detection method applied whenever
// a call's CheckOptions leave Method at CheckAuto.
func WithMethod(m CheckMethod) SessionOption {
	return func(s *Session) { s.method = m }
}

// WithCertify makes every check and enforcement of the session certified
// (equivalent to setting Certify on each call's options): passive verdicts
// escalate through the staged certification pipeline.
func WithCertify(on bool) SessionOption {
	return func(s *Session) { s.certify = on }
}

// WithProgress installs a progress sink receiving sweep, iteration and
// certificate-stage events from every session operation. Events are
// delivered synchronously on the working goroutine but serialized across
// workers, so the sink needs no locking of its own; it must return
// quickly.
func WithProgress(fn func(ProgressEvent)) SessionOption {
	return func(s *Session) { s.progress = fn }
}

// WithCacheBudget bounds the estimated bytes of evaluation-cache state the
// session retains across calls; the least-recently-used model caches are
// evicted beyond it. bytes ≤ 0 removes the bound (not recommended for
// long-running services). The default is DefaultSessionCacheBudget.
func WithCacheBudget(bytes int64) SessionOption {
	return func(s *Session) { s.budget = bytes }
}

// sessionCache is one per-pole-set evaluation cache retained by a Session,
// with the fingerprints guarding its validity and its LRU links.
type sessionCache struct {
	cache *passivity.EvalCache
	// poles is the exact pole set the basis layer was computed from; a
	// fingerprint match is only trusted after an exact pole comparison.
	poles []complex128
	// poleFP keys the cache (FNV-1a over the pole bits).
	poleFP uint64
	// resFP fingerprints the residues + D the σ layer is valid for; on
	// mismatch the σ layer is dropped, the basis layer kept.
	resFP uint64
	// bytes is the estimated resident size, updated at check-in.
	bytes int64
	// basisN/sigmaN snapshot the cache layer sizes at check-in (or load):
	// CacheStats must not read the live cache maps, which a checked-out
	// operation may be writing concurrently.
	basisN, sigmaN int
	// busy marks the cache as checked out by a running operation (caches
	// are single-goroutine state; concurrent operations on the same pole
	// set fall back to a private transient cache).
	busy bool
	// elem is the entry's node in the session recency list.
	elem *list.Element
}

// Session is a long-lived engine for the iterative fit → weight → enforce →
// re-check workflow. It owns shared defaults (workers, detection method,
// certification policy, progress sink) and — unlike the stateless root
// functions, which rebuild evaluation state on every call — a bounded pool
// of per-pole-set EvalCaches that survive across Check, Enforce,
// EnforceBatch and Extract calls: repeated sweeps over a fixed-pole model
// library reuse the pole-basis vectors and the σ samples — each residue
// variant's σ layer is parked in a per-cache stash while its siblings run,
// so a re-checked parameter sweep stays warm end to end — instead of
// recomputing them. Caches persist across processes via
// SaveCache/LoadCache.
//
// All methods take a leading context.Context and stop cooperatively when
// it is cancelled: parallel fan-outs drain deterministically, no goroutine
// outlives the call, and enforcement methods return ctx.Err() together
// with a partial report covering the work already done.
//
// A Session is safe for concurrent use. Results are bitwise identical to
// the stateless root functions: a cache can only change where values are
// recomputed, never the values themselves.
type Session struct {
	workers  int
	method   CheckMethod
	certify  bool
	progress func(ProgressEvent)
	budget   int64

	mu        sync.Mutex
	caches    map[uint64]*sessionCache
	lru       *list.List // of *sessionCache; front = most recent
	used      int64
	evictions int

	progressMu sync.Mutex
}

// NewSession builds a Session with the given options. The zero
// configuration (no options) matches the root free functions' defaults —
// in fact those functions delegate to a shared default Session.
func NewSession(opts ...SessionOption) *Session {
	s := &Session{
		budget: DefaultSessionCacheBudget,
		caches: make(map[uint64]*sessionCache),
		lru:    list.New(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// defaultSession backs the stateless root functions (CheckPassivity,
// EnforcePassivity, EnforcePassivityBatch, Extract): they are thin
// wrappers over it with a background context.
var defaultSession = NewSession()

// DefaultSession returns the shared Session behind the stateless root
// functions, so services that call them directly can inspect it
// (CacheStats) or release its memory (Reset). Its cache budget is
// DefaultSessionCacheBudget; build a private Session with NewSession to
// choose different policies.
func DefaultSession() *Session { return defaultSession }

// Reset drops every resident evaluation cache, returning the session to
// its empty cold state. Caches checked out by operations still running
// are left in place and rejoin the pool when those operations complete.
// The eviction counter is preserved.
func (s *Session) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.caches {
		if !e.busy {
			s.removeLocked(e)
		}
	}
}

// fnvMix folds one 64-bit word into an FNV-1a hash.
func fnvMix(h, w uint64) uint64 {
	const prime = 1099511628211
	for shift := 0; shift < 64; shift += 8 {
		h ^= (w >> shift) & 0xff
		h *= prime
	}
	return h
}

const fnvOffset = 14695981039346656037

// poleFingerprint hashes a pole set (exact bit patterns, order-sensitive).
func poleFingerprint(poles []complex128) uint64 {
	h := uint64(fnvOffset)
	for _, p := range poles {
		h = fnvMix(h, math.Float64bits(real(p)))
		h = fnvMix(h, math.Float64bits(imag(p)))
	}
	return h
}

// PoleFingerprint returns the FNV-1a fingerprint of the model's pole set —
// the key under which a Session retains the model's evaluation cache
// (exact bit patterns, order-sensitive). Schedulers routing work across a
// pool of Sessions use it together with HasCache to steer a model to the
// worker whose caches are already warm for its pole set; models produced
// by the same fitting run (a parameter sweep, a perturbed library) share
// fingerprints exactly when they share poles.
func PoleFingerprint(m *Macromodel) uint64 { return poleFingerprint(m.model.Poles) }

// residueFingerprint hashes everything the σ layer depends on besides the
// poles: the residue matrices and the direct coupling D.
func residueFingerprint(m *rational.Model) uint64 {
	h := uint64(fnvOffset)
	for _, r := range m.Residues {
		for _, z := range r.Data {
			h = fnvMix(h, math.Float64bits(real(z)))
			h = fnvMix(h, math.Float64bits(imag(z)))
		}
	}
	p := m.D.Rows
	for i := 0; i < p; i++ {
		for _, v := range m.D.Row(i) {
			h = fnvMix(h, math.Float64bits(v))
		}
	}
	return h
}

func equalPoles(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// touchLocked moves e to the recency front, registering it on first use.
// Callers hold s.mu.
func (s *Session) touchLocked(e *sessionCache) {
	if e.elem == nil {
		e.elem = s.lru.PushFront(e)
		return
	}
	s.lru.MoveToFront(e.elem)
}

// removeLocked unlinks e from the registry. Callers hold s.mu.
func (s *Session) removeLocked(e *sessionCache) {
	s.lru.Remove(e.elem)
	e.elem = nil
	delete(s.caches, e.poleFP)
	s.used -= e.bytes
}

// evictLocked enforces the byte budget by dropping whole caches from the
// cold end, skipping the ones checked out by running operations. Callers
// hold s.mu.
func (s *Session) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for el := s.lru.Back(); el != nil && s.used > s.budget; {
		prev := el.Prev()
		if e := el.Value.(*sessionCache); !e.busy {
			s.removeLocked(e)
			s.evictions++
		}
		el = prev
	}
}

// cacheBytes estimates the resident size of one cache: per basis entry the
// vector itself plus node/map overhead, plus the σ layers (active and
// stashed variants) and hot seeds.
func cacheBytes(c *passivity.EvalCache, nPoles int) int64 {
	return int64(c.BasisEntries())*(int64(nPoles)*16+120) +
		int64(c.SigmaEntries()+c.StashedSigmaEntries())*32 +
		int64(len(c.Hot()))*8
}

// checkout hands the caller the session cache for the model's pole set,
// marking it busy. When the model's residues differ from the ones the
// active σ layer was computed for, the layers are swapped through the
// cache's per-variant stash (the old layer parks under its fingerprint,
// the new variant's parked layer — if any — is restored), so cycling
// through a residue-variant library keeps every variant's σ samples warm.
// The warm-start hot seeds are cleared so a session-routed run samples
// exactly like a stateless one.
// When the cache is already checked out (a concurrent operation on the
// same pole set) or a fingerprint collision is detected, the caller gets a
// private transient cache and a nil entry.
func (s *Session) checkout(m *rational.Model) (*sessionCache, *passivity.EvalCache) {
	poleFP := poleFingerprint(m.Poles)
	resFP := residueFingerprint(m)
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.caches[poleFP]
	if e == nil {
		e = &sessionCache{
			cache:  passivity.NewEvalCache(),
			poles:  append([]complex128(nil), m.Poles...),
			poleFP: poleFP,
			resFP:  resFP,
			busy:   true,
		}
		s.caches[poleFP] = e
		s.touchLocked(e)
		return e, e.cache
	}
	if e.busy || !equalPoles(e.poles, m.Poles) {
		return nil, passivity.NewEvalCache()
	}
	if e.resFP != resFP {
		e.cache.SwapSigma(e.resFP, resFP)
		e.resFP = resFP
	}
	e.cache.SetHot(nil)
	e.busy = true
	s.touchLocked(e)
	return e, e.cache
}

// checkin returns a checked-out cache, refreshing its residue fingerprint
// (enforcement moves residues in place) and byte estimate, and applies the
// session budget.
func (s *Session) checkin(e *sessionCache, m *rational.Model) {
	if e == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e.resFP = residueFingerprint(m)
	s.used -= e.bytes
	e.bytes = cacheBytes(e.cache, len(e.poles))
	e.basisN = e.cache.BasisEntries()
	e.sigmaN = e.cache.SigmaEntries() + e.cache.StashedSigmaEntries()
	s.used += e.bytes
	e.busy = false
	s.evictLocked()
}

// SessionCacheStats summarizes the evaluation-cache state a Session
// currently retains.
type SessionCacheStats struct {
	// Models counts the resident pole-set caches.
	Models int
	// BasisEntries and SigmaEntries sum the two cache layers over all
	// resident caches; SigmaEntries includes the per-variant σ layers
	// parked in each cache's stash alongside the active one.
	BasisEntries, SigmaEntries int
	// Bytes is the estimated resident size charged against the budget.
	Bytes int64
	// Evictions counts whole caches dropped by the session LRU bound.
	Evictions int
}

// CacheStats reports the session's resident cache state. Entry counts are
// the snapshots taken when each cache was last checked in, so a cache
// checked out by a running operation contributes its pre-operation counts
// (reading the live maps would race with the worker writing them).
func (s *Session) CacheStats() SessionCacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := SessionCacheStats{Models: len(s.caches), Bytes: s.used, Evictions: s.evictions}
	for _, e := range s.caches {
		st.BasisEntries += e.basisN
		st.SigmaEntries += e.sigmaN
	}
	return st
}

// HasCache reports whether the session currently retains an evaluation
// cache for the given pole-set fingerprint (see PoleFingerprint), checked
// out or not. It is the affinity probe for schedulers: a dispatcher
// steering a model to the Session that answers true here turns the
// model's checks into warm-cache hits. The answer is advisory — the LRU
// byte budget may evict the cache between the probe and the work.
func (s *Session) HasCache(fp uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.caches[fp]
	return ok
}

// progressFunc adapts the session sink to the internal event stream,
// serializing delivery across concurrent batch workers.
func (s *Session) progressFunc() passivity.ProgressFunc {
	if s.progress == nil {
		return nil
	}
	return func(ev passivity.ProgressEvent) {
		s.progressMu.Lock()
		defer s.progressMu.Unlock()
		s.progress(ProgressEvent{
			Kind:      ProgressKind(ev.Kind),
			Model:     ev.Model,
			Iteration: ev.Iteration,
			MaxSigma:  ev.MaxSigma,
			Passive:   ev.Passive,
			Stage:     ev.Stage,
			Samples:   ev.Samples,
			Nodes:     ev.Nodes,
			Backend:   ev.Backend,
			Declined:  ev.Declined,
		})
	}
}

// applyDefaults folds the session-wide defaults into one call's check
// options: the session method fills an Auto method, the session worker
// count fills an unset Workers, and the session certify policy turns
// certification on (an explicitly certified call stays certified either
// way).
func (s *Session) applyDefaults(opts CheckOptions) CheckOptions {
	if opts.Method == CheckAuto && !opts.ForceSweep && s.method != CheckAuto {
		opts.Method = s.method
	}
	if opts.Workers == 0 && s.workers != 0 {
		opts.Workers = s.workers
	}
	if s.certify {
		opts.Certify = true
	}
	return opts
}

// internalCheck builds the internal options for a session call: session
// defaults, context, progress sink and the checked-out cache.
func (s *Session) internalCheck(ctx context.Context, opts CheckOptions, cache *passivity.EvalCache, model int) passivity.CheckOptions {
	iopts := s.applyDefaults(opts).internal()
	iopts.Ctx = ctx
	iopts.Progress = s.progressFunc()
	iopts.ProgressModel = model
	iopts.Cache = cache
	return iopts
}

// Check assesses the passivity of the model like CheckPassivity, reusing
// the session's evaluation cache for the model's pole set: a repeated
// check of an unchanged model is served almost entirely from the σ layer,
// and a re-check after residue perturbations still reuses every pole-basis
// vector. Cancelling ctx aborts cooperatively with ctx.Err().
func (s *Session) Check(ctx context.Context, m *Macromodel, opts CheckOptions) (*PassivityReport, error) {
	e, cache := s.checkout(m.model)
	iopts := s.internalCheck(ctx, opts, cache, -1)
	rep, err := passivity.Check(m.model, iopts)
	s.checkin(e, m.model)
	if err != nil {
		return nil, err
	}
	return toPublicReport(rep), nil
}

// Enforce removes passivity violations of the model in place like
// EnforcePassivity, with the session's cache, defaults, progress sink and
// cancellation. On ctx cancellation it returns the partial report of the
// sweeps already applied together with ctx.Err(); the model keeps those
// perturbations.
func (s *Session) Enforce(ctx context.Context, m *Macromodel, opts EnforceOptions) (*EnforceReport, error) {
	e, cache := s.checkout(m.model)
	rep, err := s.enforceWith(ctx, m, opts, cache, -1)
	s.checkin(e, m.model)
	return rep, err
}

// enforceWith runs one enforcement with an explicit cache and model tag.
func (s *Session) enforceWith(ctx context.Context, m *Macromodel, opts EnforceOptions, cache *passivity.EvalCache, model int) (*EnforceReport, error) {
	eopts := passivity.EnforceOptions{
		Check:         s.internalCheck(ctx, opts.Check, cache, model),
		MaxIterations: opts.MaxIterations,
		Margin:        opts.Margin,
		ClampD:        opts.ClampD,
		Certify:       opts.Certify || s.certify,
	}
	// The engine certifies on convergence itself; the per-sweep checks stay
	// on the fast method (mirrors EnforcePassivity).
	eopts.Check.Certify = false
	var rep *passivity.EnforceReport
	var err error
	if opts.Weight != nil {
		rep, err = core.EnforceWeighted(m.model, opts.Weight.model, eopts)
	} else {
		rep, err = passivity.Enforce(m.model, eopts)
	}
	return toPublicEnforceReport(rep), err
}

// Fit identifies a macromodel like Fit, under the session's context: the
// call is checked for cancellation up front (the fitting solves themselves
// are not interruptible) and tagged with the session defaults where they
// apply. The fitted model's future checks and enforcements then hit the
// session cache.
func (s *Session) Fit(ctx context.Context, data *SData, opts FitOptions) (*Macromodel, *FitReport, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return Fit(data, opts)
}

// Extract runs the paper's complete flow like Extract, routing the
// passivity check and enforcement stages through the session (shared
// caches, progress events, cancellation between and inside stages).
func (s *Session) Extract(ctx context.Context, data *SData, load *Load, opts ExtractOptions) (*ExtractResult, error) {
	return extractWith(ctx, s, data, load, opts)
}

// EnforceBatch enforces passivity on a library of macromodels like
// EnforcePassivityBatch, sharding models across workers with the session's
// per-pole-set caches: a second sweep over the same library starts with
// every pole basis (and unchanged σ sample) warm. When ctx cancellation
// cuts the batch short, the returned report is partial — completed models
// keep their results, cancelled ones carry ctx.Err() — and the error is
// ctx.Err(); a cancellation arriving only after every model drained
// returns the complete report with a nil error.
func (s *Session) EnforceBatch(ctx context.Context, models []*Macromodel, opts BatchEnforceOptions) (*BatchEnforceReport, error) {
	if opts.Weights != nil && len(opts.Weights) != len(models) {
		return nil, fmt.Errorf("repro: %d weights for %d models", len(opts.Weights), len(models))
	}
	raw := make([]*rational.Model, len(models))
	for i, m := range models {
		raw[i] = m.model
	}
	// Caches are leased per model from the owning worker, not pinned for
	// the whole batch: at any moment only ~workers caches are checked out,
	// so the session byte budget keeps bounding resident memory even
	// across huge libraries. Duplicates of a pole set running concurrently
	// (and caches busy elsewhere) fall back to private transient caches.
	// entries[i] is written by CacheFor and read by CacheDone on the same
	// worker goroutine — no cross-worker sharing.
	entries := make([]*sessionCache, len(models))
	bopts := passivity.BatchOptions{
		Enforce: passivity.EnforceOptions{
			Check:         s.internalCheck(ctx, opts.Enforce.Check, nil, -1),
			MaxIterations: opts.Enforce.MaxIterations,
			Margin:        opts.Enforce.Margin,
			ClampD:        opts.Enforce.ClampD,
			Certify:       opts.Enforce.Certify || s.certify,
		},
		Workers: opts.Workers,
		Ctx:     ctx,
		CacheFor: func(i int) *passivity.EvalCache {
			e, c := s.checkout(raw[i])
			entries[i] = e
			return c
		},
		CacheDone: func(i int) {
			s.checkin(entries[i], raw[i])
			entries[i] = nil
		},
		Progress: s.progressFunc(),
	}
	bopts.Enforce.Check.Certify = false
	bopts.Enforce.Check.Cache = nil
	if opts.Workers == 0 && s.workers != 0 {
		bopts.Workers = s.workers
	}
	if w := opts.Enforce.Weight; w != nil {
		bopts.Weight = w.model
	}
	if opts.Weights != nil {
		bopts.Weights = make([]*rational.Model, len(opts.Weights))
		for i, w := range opts.Weights {
			if w != nil {
				bopts.Weights[i] = w.model
			}
		}
	}
	brep := passivity.EnforceBatch(raw, bopts)
	out := toPublicBatchReport(len(models), brep)
	// A cancelled context only makes the report partial if it actually cut
	// the batch short; a cancellation racing in after the last model
	// drained leaves a complete report, which callers should not retry.
	if err := ctx.Err(); err != nil {
		for _, e := range out.Errors {
			if errors.Is(e, err) {
				return out, err
			}
		}
	}
	return out, nil
}

// --- Cache persistence -------------------------------------------------

const (
	sessionCacheMagic   = 0x53455343 // "SESC"
	sessionCacheVersion = 3          // v3 added the CRC-64 footer; v2 files reload cold
	// SessionCacheExt is the filename extension of persisted session
	// caches (one file per pole-set fingerprint).
	SessionCacheExt = ".evc"
	// SessionCacheCorruptExt is appended to a cache file's name when
	// LoadCacheQuarantine sets it aside as unreadable or corrupt.
	SessionCacheCorruptExt = ".corrupt"
)

// sessionCacheCRC is the checksum of the version-3 cache-file footer: a
// CRC-64/ECMA over every preceding byte of the file, written as the last
// 8 bytes. A half-written or bit-flipped file (power loss mid-rename on
// a non-atomic filesystem, disk corruption) fails the footer check and
// is rejected before any payload is parsed.
var sessionCacheCRC = crc64.MakeTable(crc64.ECMA)

// SaveCache persists every resident evaluation cache to dir (created if
// missing), one file per pole-set fingerprint, readable by LoadCache.
// Repeated library sweeps across process restarts then start warm: the
// pole-basis layers — and the σ layers of every unchanged residue
// variant, active or stashed — are reloaded instead of recomputed. Caches checked out by
// concurrently running operations are skipped. Files are written
// atomically (temp file + rename), so a SIGINT during save leaves no torn
// cache behind.
func (s *Session) SaveCache(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	s.mu.Lock()
	var entries []*sessionCache
	for _, e := range s.caches {
		if !e.busy {
			e.busy = true // pin against concurrent checkout during the save
			entries = append(entries, e)
		}
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		for _, e := range entries {
			e.busy = false
		}
		s.mu.Unlock()
	}()
	sort.Slice(entries, func(a, b int) bool { return entries[a].poleFP < entries[b].poleFP })
	for _, e := range entries {
		if err := saveSessionCacheFile(dir, e); err != nil {
			return err
		}
	}
	return nil
}

func saveSessionCacheFile(dir string, e *sessionCache) error {
	path := filepath.Join(dir, fmt.Sprintf("cache-%016x%s", e.poleFP, SessionCacheExt))
	tmp, err := os.CreateTemp(dir, "cache-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := writeSessionCache(tmp, e); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func writeSessionCache(w io.Writer, e *sessionCache) error {
	// Everything before the footer runs through the CRC so the loader can
	// verify the whole file in one pass.
	h := crc64.New(sessionCacheCRC)
	hw := io.MultiWriter(w, h)
	head := []uint64{
		uint64(sessionCacheMagic)<<32 | sessionCacheVersion,
		e.poleFP,
		e.resFP,
		uint64(len(e.poles)),
	}
	if err := binary.Write(hw, binary.LittleEndian, head); err != nil {
		return err
	}
	if err := binary.Write(hw, binary.LittleEndian, e.poles); err != nil {
		return err
	}
	if err := e.cache.Save(hw); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, h.Sum64())
}

// LoadCache loads every cache file previously written by SaveCache from
// dir into the session, skipping fingerprints that are already resident
// (the live cache is at least as warm) and unreadable or corrupt files
// (reported in the returned error after all loadable files are in). The
// session byte budget applies: caches beyond it are LRU-evicted.
func (s *Session) LoadCache(dir string) error {
	paths, err := filepath.Glob(filepath.Join(dir, "cache-*"+SessionCacheExt))
	if err != nil {
		return err
	}
	sort.Strings(paths)
	var firstErr error
	for _, path := range paths {
		if err := s.loadCacheFile(path); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("repro: loading %s: %w", path, err)
		}
	}
	return firstErr
}

// LoadCacheQuarantine loads every cache file written by SaveCache from
// dir, like LoadCache, but instead of reporting unreadable or corrupt
// files as errors it quarantines them: the offending file is renamed to
// its own name plus SessionCacheCorruptExt and skipped, so the next load
// never trips over it again and the caller starts cold for just that
// pole set. It returns the number of caches loaded and quarantined; err
// covers only infrastructure failures (an unreadable directory, a rename
// that itself failed), never cache corruption. Services reloading caches
// after an unclean shutdown want this entry point — a torn cache file
// must cost one cold pole set, not the whole warm start.
func (s *Session) LoadCacheQuarantine(dir string) (loaded, quarantined int, err error) {
	paths, globErr := filepath.Glob(filepath.Join(dir, "cache-*"+SessionCacheExt))
	if globErr != nil {
		return 0, 0, globErr
	}
	sort.Strings(paths)
	var firstErr error
	for _, path := range paths {
		loadErr := s.loadCacheFile(path)
		if loadErr == nil {
			loaded++
			continue
		}
		if renameErr := os.Rename(path, path+SessionCacheCorruptExt); renameErr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("repro: quarantining %s (%v): %w", path, loadErr, renameErr)
			}
			continue
		}
		quarantined++
	}
	return loaded, quarantined, firstErr
}

func (s *Session) loadCacheFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	e, err := parseSessionCacheBlob(blob)
	if err != nil {
		return err
	}
	s.installCacheEntry(e)
	return nil
}

// CacheBlobFingerprint validates a serialized evaluation cache — the
// bytes of a SaveCache file or an ExportCache blob — and returns the
// pole-set fingerprint it belongs to. The whole blob is verified (magic,
// version, CRC-64 footer, fingerprint consistency) before anything is
// trusted, so transports and content-addressed stores can use it as the
// admission check that quarantines corrupt cache transfers.
func CacheBlobFingerprint(blob []byte) (uint64, error) {
	e, err := parseSessionCacheBlob(blob)
	if err != nil {
		return 0, err
	}
	return e.poleFP, nil
}

// ExportCache serializes the session's resident evaluation cache for the
// given pole-set fingerprint in the same versioned, CRC-64-checksummed
// format SaveCache writes to disk, so the blob can travel over a wire and
// be installed elsewhere with ImportCache. It fails with
// ErrCacheUnavailable when the session holds no cache for fp or the cache
// is checked out by a concurrently running operation.
func (s *Session) ExportCache(fp uint64) ([]byte, error) {
	s.mu.Lock()
	e, ok := s.caches[fp]
	if !ok || e.busy {
		s.mu.Unlock()
		return nil, ErrCacheUnavailable
	}
	e.busy = true // pin against concurrent checkout during the write
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		e.busy = false
		s.mu.Unlock()
	}()
	var buf bytes.Buffer
	if err := writeSessionCache(&buf, e); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ErrCacheUnavailable reports that ExportCache found no resident, idle
// evaluation cache for the requested fingerprint — the session never saw
// the pole set, the LRU budget evicted it, or a running operation has it
// checked out. Callers shipping warm state treat it as "send nothing":
// the receiver simply starts cold.
var ErrCacheUnavailable = errors.New("repro: evaluation cache unavailable")

// ImportCache installs a serialized evaluation cache (an ExportCache blob
// or the bytes of a SaveCache file) into the session, returning the
// pole-set fingerprint it now answers HasCache for. The blob is fully
// validated first — magic, version, CRC-64 footer, fingerprint
// consistency — and a corrupt one is rejected without touching the
// session, so a torn transfer costs one cold pole set, never a poisoned
// cache. A fingerprint already resident is kept (the live cache is at
// least as warm); the session byte budget applies as usual.
func (s *Session) ImportCache(blob []byte) (uint64, error) {
	e, err := parseSessionCacheBlob(blob)
	if err != nil {
		return 0, err
	}
	s.installCacheEntry(e)
	return e.poleFP, nil
}

// CacheFingerprints returns the pole-set fingerprints of every resident
// evaluation cache, sorted, checked out or not. Schedulers advertise the
// list as the session's warm-state catalog (see HasCache for the
// single-fingerprint probe).
func (s *Session) CacheFingerprints() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	fps := make([]uint64, 0, len(s.caches))
	for fp := range s.caches {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(a, b int) bool { return fps[a] < fps[b] })
	return fps
}

// installCacheEntry adds a parsed cache entry to the pool under the
// budget, keeping an already-resident cache for the same fingerprint.
func (s *Session) installCacheEntry(e *sessionCache) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.caches[e.poleFP]; exists {
		return // live cache wins
	}
	s.caches[e.poleFP] = e
	s.used += e.bytes
	s.touchLocked(e)
	s.evictLocked()
}

// parseSessionCacheBlob decodes and fully validates one serialized cache
// (the SaveCache file format): magic, version, whole-blob CRC-64 footer,
// then the payload, with the pole fingerprint cross-checked against the
// poles actually read.
func parseSessionCacheBlob(blob []byte) (*sessionCache, error) {
	const headBytes, footBytes = 4 * 8, 8
	if len(blob) < headBytes+footBytes {
		return nil, fmt.Errorf("truncated cache file (%d bytes)", len(blob))
	}
	var head [4]uint64
	for i := range head {
		head[i] = binary.LittleEndian.Uint64(blob[i*8:])
	}
	if head[0]>>32 != sessionCacheMagic {
		return nil, fmt.Errorf("bad magic %#x", head[0]>>32)
	}
	if v := head[0] & 0xffffffff; v != sessionCacheVersion {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	// The footer CRC covers every byte before it; verify before parsing
	// anything, so corruption is one deterministic error instead of
	// whatever a damaged payload happens to decode as.
	body := blob[:len(blob)-footBytes]
	want := binary.LittleEndian.Uint64(blob[len(blob)-footBytes:])
	if got := crc64.Checksum(body, sessionCacheCRC); got != want {
		return nil, fmt.Errorf("checksum mismatch (file %016x, computed %016x)", want, got)
	}
	r := bytes.NewReader(body[headBytes:])
	nPoles := head[3]
	if nPoles > 1<<20 {
		return nil, fmt.Errorf("implausible pole count %d", nPoles)
	}
	poles := make([]complex128, nPoles)
	if err := binary.Read(r, binary.LittleEndian, poles); err != nil {
		return nil, err
	}
	if fp := poleFingerprint(poles); fp != head[1] {
		return nil, fmt.Errorf("pole fingerprint mismatch (file %016x, poles %016x)", head[1], fp)
	}
	cache, err := passivity.LoadEvalCache(r)
	if err != nil {
		return nil, err
	}
	return &sessionCache{
		cache:  cache,
		poles:  poles,
		poleFP: head[1],
		resFP:  head[2],
		bytes:  cacheBytes(cache, len(poles)),
		basisN: cache.BasisEntries(),
		sigmaN: cache.SigmaEntries() + cache.StashedSigmaEntries(),
	}, nil
}
