package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vecfit"
)

// FitOptions configures rational macromodel identification.
type FitOptions struct {
	// NumPoles is the model order n (the paper's testcase uses 12).
	NumPoles int
	// Iterations bounds the Vector Fitting pole-relocation sweeps
	// (default 10).
	Iterations int
	// Weights gives one least-squares weight per frequency sample — the
	// sensitivity weighting w_k = Ξ_k of the paper's eq. (6). Nil fits the
	// plain metric (4).
	Weights []float64
	// Unrelaxed disables the relaxed nontriviality constraint.
	Unrelaxed bool
	// SkipD omits the direct-coupling constant.
	SkipD bool
	// ConstrainD caps σmax(D) at this value when positive (0.999 keeps the
	// model asymptotically passive); see EnforceOptions.ClampD for the
	// post-hoc alternative.
	ConstrainD float64
}

// FitReport summarizes a fit.
type FitReport struct {
	Iterations int
	RMSErr     float64 // weighted RMS error over all entries/samples
	MaxAbsErr  float64
}

// RefineReport records the iterative reweighting of FitWithRefinement.
type RefineReport struct {
	// WorstRelErr is the worst relative Z_PDN error after each round
	// (index 0 = plain first-order sensitivity weights).
	WorstRelErr []float64
	// BestRound indexes the round that produced the returned model.
	BestRound int
	// Weights are the final per-frequency weights, reusable in
	// FitOptions.Weights.
	Weights []float64
}

// FitWithRefinement runs the iterative reweighting process of the paper's
// reference [23]: a sensitivity-weighted fit whose weights are then
// re-tuned from the realized loaded-domain error over a few refit rounds
// (default 3 when rounds ≤ 0). The best model across rounds is returned —
// refinement can only improve on the plain sensitivity weighting.
func FitWithRefinement(data *SData, load *Load, opts FitOptions, rounds int) (*Macromodel, *RefineReport, error) {
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if err := load.Validate(data.Ports()); err != nil {
		return nil, nil, err
	}
	if opts.NumPoles <= 0 {
		return nil, nil, fmt.Errorf("repro: NumPoles must be positive")
	}
	model, rep, err := core.FitRefined(data.Omega(), data.S, data.R0, load, core.RefineOptions{
		Rounds: rounds,
		Fit: vecfit.Options{
			NumPoles:   opts.NumPoles,
			Iterations: opts.Iterations,
			Unrelaxed:  opts.Unrelaxed,
			SkipD:      opts.SkipD,
			ConstrainD: opts.ConstrainD,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	return &Macromodel{model: model, r0: data.R0}, &RefineReport{
		WorstRelErr: rep.WorstRelErr,
		BestRound:   rep.BestRound,
		Weights:     rep.Weights,
	}, nil
}

// Fit identifies a stable common-pole rational macromodel from scattering
// data by (optionally weighted, relaxed) Vector Fitting.
func Fit(data *SData, opts FitOptions) (*Macromodel, *FitReport, error) {
	if err := data.Validate(); err != nil {
		return nil, nil, err
	}
	if opts.NumPoles <= 0 {
		return nil, nil, fmt.Errorf("repro: NumPoles must be positive")
	}
	model, rep, err := vecfit.Fit(data.Omega(), data.S, vecfit.Options{
		NumPoles:   opts.NumPoles,
		Iterations: opts.Iterations,
		Weights:    opts.Weights,
		Unrelaxed:  opts.Unrelaxed,
		SkipD:      opts.SkipD,
		ConstrainD: opts.ConstrainD,
	})
	if err != nil {
		return nil, nil, err
	}
	return &Macromodel{model: model, r0: data.R0},
		&FitReport{Iterations: rep.Iterations, RMSErr: rep.RMSErr, MaxAbsErr: rep.MaxAbsErr},
		nil
}
