package repro

// Classical projection-based model order reduction ([6], [7] in the
// paper's introduction), provided as the baseline family that black-box
// identification competes with: reduce a high-order, very accurate fit to
// the working order and compare against a direct low-order fit.

import (
	"fmt"

	"repro/internal/mor"
)

// ReduceReport summarizes a balanced-truncation run.
type ReduceReport struct {
	// Hankel lists every Hankel singular value of the original model's
	// realization, descending — the decay rate shows how reducible the
	// model is.
	Hankel []float64
	// Bound is the a-priori H∞ error bound 2·Σ_{k>r} σ_k.
	Bound float64
	// Order is the retained state order.
	Order int
}

// ReduceModel compresses a macromodel to (at most) the given state order by
// balanced truncation of its state-space realization, then converts the
// reduced system back to pole-residue form so the result flows through the
// same passivity checking and enforcement machinery as a fitted model.
//
// The input realization of a P-port model with n common poles has n·P
// states; ReduceModel is how the "classical MOR" baseline reaches the
// paper's working order from a deliberately overfitted model.
func ReduceModel(m *Macromodel, order int) (*Macromodel, *ReduceReport, error) {
	if order <= 0 {
		return nil, nil, fmt.Errorf("repro: reduction order must be positive, got %d", order)
	}
	red, err := mor.BalancedTruncation(m.model.Realization(), order)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: balanced truncation: %w", err)
	}
	model, err := mor.ToRational(red.System)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: reduced system to pole-residue: %w", err)
	}
	return &Macromodel{model: model, r0: m.r0},
		&ReduceReport{Hankel: red.Hankel, Bound: red.Bound, Order: red.Order},
		nil
}
