package repro

import (
	"math"

	"repro/internal/pdn"
)

// Termination models one port load by its admittance; see the constructors
// below. (The concrete types live in the pdn engine; they are fully usable
// through this API.)
type Termination = pdn.Termination

// Load is the nominal termination network: one Termination per port, the
// Norton current excitation J, and the observation port for Z_PDN.
type Load = pdn.Load

// OpenPort returns an unterminated port load.
func OpenPort() Termination { return pdn.Open{} }

// ShortPort returns an (effectively) ideal short — the paper's VRM
// termination.
func ShortPort() Termination { return pdn.Short{} }

// ResistorLoad returns a resistive termination.
func ResistorLoad(r float64) Termination { return pdn.Resistor{R: r} }

// DecapLoad returns the vendor-style decoupling capacitor model:
// C in series with its parasitic ESR and ESL.
func DecapLoad(c, esr, esl float64) Termination { return pdn.Decap(c, esr, esl) }

// DieLoad returns the series-RC equivalent circuit of an active die block.
func DieLoad(r, c float64) Termination { return pdn.DieRC(r, c) }

// VRMLoad returns a series R-L voltage regulator output model.
func VRMLoad(r, l float64) Termination { return pdn.VRM(r, l) }

// TargetImpedance computes the loaded PDN impedance Z_PDN(f) of eq. (2)
// from tabulated scattering data under the given termination network.
func TargetImpedance(data *SData, load *Load) ([]complex128, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return pdn.TargetImpedance(data.Omega(), data.S, data.R0, load)
}

// TargetImpedanceModel evaluates Z_PDN(f) of a macromodel over a frequency
// grid (Hz) under the given termination network.
func TargetImpedanceModel(m *Macromodel, freqHz []float64, load *Load) ([]complex128, error) {
	out := make([]complex128, len(freqHz))
	for k, f := range freqHz {
		omega := 2 * math.Pi * f
		z, err := pdn.TargetImpedanceAt(m.model.Eval(omega), m.r0, omega, load)
		if err != nil {
			return nil, err
		}
		out[k] = z
	}
	return out, nil
}

// Sensitivity computes the first-order sensitivity Ξ(f) of Z_PDN to
// perturbations of the scattering entries (paper eq. 5, closed form), the
// quantity used as fitting and enforcement weight.
func Sensitivity(data *SData, load *Load) ([]float64, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return pdn.Sensitivity(data.Omega(), data.S, data.R0, load)
}

// SensitivityMC estimates Ξ(f) by Monte-Carlo perturbation analysis — the
// defining experiment of eq. (5); slower than Sensitivity but assumption-
// free. Trials and sigma ≤ 0 select defaults.
func SensitivityMC(data *SData, load *Load, trials int, sigma float64) ([]float64, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return pdn.SensitivityMC(data.Omega(), data.S, data.R0, load, pdn.MCOptions{
		Trials: trials, Sigma: sigma, Seed: 1,
	})
}
