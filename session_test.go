package repro_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
)

func violatingLibrary(t *testing.T, n int, poles int) []*repro.Macromodel {
	t.Helper()
	models := make([]*repro.Macromodel, n)
	for i := range models {
		m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 2, Poles: poles, Seed: 900 + int64(i), PeakGain: 0.9,
		})
		if err != nil {
			t.Fatal(err)
		}
		models[i] = m
	}
	return models
}

// settleGoroutines waits for the goroutine count to drop back to the
// baseline, tolerating runtime bookkeeping with a bounded settle loop.
func settleGoroutines(t *testing.T, before int) {
	t.Helper()
	var after int
	for i := 0; i < 200; i++ {
		after = runtime.NumGoroutine()
		if after <= before {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after settle", before, after)
}

// TestSessionEnforceBatchCancellation: cancelling mid-batch must surface
// context.Canceled, leave a coherent partial report (every slot either
// completed, carries its own partial report with the context error, or
// carries the context error alone), and leak no goroutines.
func TestSessionEnforceBatchCancellation(t *testing.T) {
	models := violatingLibrary(t, 8, 24)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events int64
	s := repro.NewSession(repro.WithProgress(func(ev repro.ProgressEvent) {
		// Cancel from inside the work, after the batch is demonstrably
		// running: the progress sink fires on the worker goroutines.
		if atomic.AddInt64(&events, 1) == 3 {
			cancel()
		}
	}))
	rep, err := s.EnforceBatch(ctx, models, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			ClampD: true,
		},
		Workers: 2,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancellation must still return the partial report")
	}
	if rep.Models != len(models) || len(rep.Reports) != len(models) || len(rep.Errors) != len(models) {
		t.Fatalf("partial report lost its shape: %d models, %d reports, %d errors",
			rep.Models, len(rep.Reports), len(rep.Errors))
	}
	cancelled := 0
	for i := range models {
		switch {
		case rep.Errors[i] == nil:
			if rep.Reports[i] == nil || rep.Reports[i].Final == nil {
				t.Fatalf("model %d: no error but no complete report either", i)
			}
		case errors.Is(rep.Errors[i], context.Canceled):
			cancelled++
			// A claimed-then-cancelled model carries a partial report whose
			// iteration history matches its length; an unclaimed one has none.
			if r := rep.Reports[i]; r != nil && len(r.MaxSigmaHistory) != r.Iterations {
				t.Fatalf("model %d: incoherent partial report: %d history entries, %d iterations",
					i, len(r.MaxSigmaHistory), r.Iterations)
			}
		default:
			t.Fatalf("model %d: unexpected error %v", i, rep.Errors[i])
		}
	}
	if cancelled == 0 {
		t.Fatal("cancellation raced past the whole batch; no model was cancelled")
	}
	settleGoroutines(t, before)
}

// TestSessionCheckCancelledContext: a pre-cancelled context aborts before
// any work.
func TestSessionCheckCancelledContext(t *testing.T) {
	m := violatingLibrary(t, 1, 12)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := repro.NewSession()
	if _, err := s.Check(ctx, m, repro.CheckOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Check: got %v, want context.Canceled", err)
	}
	if _, err := s.Enforce(ctx, m, repro.EnforceOptions{ClampD: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Enforce: got %v, want context.Canceled", err)
	}
	if _, _, err := s.Fit(ctx, nil, repro.FitOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Fit: got %v, want context.Canceled", err)
	}
}

// TestSessionCachePersistence: SaveCache/LoadCache carry the evaluation
// state across sessions; a loaded-warm check returns the identical report.
func TestSessionCachePersistence(t *testing.T) {
	m := violatingLibrary(t, 1, 20)[0]
	opts := repro.CheckOptions{Method: repro.CheckAdaptive}
	dir := t.TempDir()

	s1 := repro.NewSession()
	want, err := s1.Check(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s1.CacheStats()
	if st1.Models != 1 || st1.BasisEntries == 0 || st1.SigmaEntries == 0 {
		t.Fatalf("first check left no cache state: %+v", st1)
	}
	if err := s1.SaveCache(dir); err != nil {
		t.Fatal(err)
	}

	s2 := repro.NewSession()
	if err := s2.LoadCache(dir); err != nil {
		t.Fatal(err)
	}
	st2 := s2.CacheStats()
	if st2.Models != 1 || st2.BasisEntries != st1.BasisEntries || st2.SigmaEntries != st1.SigmaEntries {
		t.Fatalf("reloaded cache state %+v, want %+v", st2, st1)
	}
	got, err := s2.Check(context.Background(), m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxSigma != want.MaxSigma || got.Samples != want.Samples || len(got.Violations) != len(want.Violations) {
		t.Fatalf("warm-loaded check drifted: %+v vs %+v", got, want)
	}
	// Loading into a session that already holds the fingerprint is a no-op.
	if err := s2.LoadCache(dir); err != nil {
		t.Fatal(err)
	}
	if st := s2.CacheStats(); st.Models != 1 {
		t.Fatalf("duplicate load created %d caches", st.Models)
	}
	// An empty directory loads cleanly.
	if err := repro.NewSession().LoadCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCacheChecksum: a saved cache file carries a CRC-64 footer;
// a flipped byte anywhere makes LoadCache fail deterministically and
// makes LoadCacheQuarantine set the file aside as .corrupt and continue.
func TestSessionCacheChecksum(t *testing.T) {
	models := violatingLibrary(t, 2, 20)
	opts := repro.CheckOptions{Method: repro.CheckAdaptive}
	dir := t.TempDir()

	s1 := repro.NewSession()
	for _, m := range models {
		if _, err := s1.Check(context.Background(), m, opts); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.SaveCache(dir); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "cache-*"+repro.SessionCacheExt))
	if err != nil || len(paths) != 2 {
		t.Fatalf("saved files %v (err %v), want 2", paths, err)
	}

	// Corrupt one file mid-payload: the pristine sibling must still load.
	blob, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(paths[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := repro.NewSession()
	if err := s2.LoadCache(dir); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("LoadCache of corrupt file: %v, want checksum mismatch", err)
	}
	if st := s2.CacheStats(); st.Models != 1 {
		t.Fatalf("corrupt load left %d caches, want 1 (the intact file)", st.Models)
	}

	s3 := repro.NewSession()
	loaded, quarantined, err := s3.LoadCacheQuarantine(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 1 || quarantined != 1 {
		t.Fatalf("quarantine load: loaded %d quarantined %d, want 1/1", loaded, quarantined)
	}
	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still present: %v", err)
	}
	if _, err := os.Stat(paths[0] + repro.SessionCacheCorruptExt); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	// A repeat load no longer sees the quarantined file.
	if loaded, quarantined, err = repro.NewSession().LoadCacheQuarantine(dir); err != nil || loaded != 1 || quarantined != 0 {
		t.Fatalf("post-quarantine reload: %d/%d/%v, want 1/0/nil", loaded, quarantined, err)
	}

	// A truncated file (torn write) is quarantined too, not parsed.
	if err := os.WriteFile(paths[0], blob[:20], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, quarantined, err = repro.NewSession().LoadCacheQuarantine(dir); err != nil || quarantined != 1 {
		t.Fatalf("truncated-file quarantine: %d/%v, want 1/nil", quarantined, err)
	}
}

// TestSessionCacheBudgetEviction: the session byte budget evicts whole
// model caches LRU-first.
func TestSessionCacheBudgetEviction(t *testing.T) {
	s := repro.NewSession(repro.WithCacheBudget(64 << 10))
	for _, m := range violatingLibrary(t, 6, 20) {
		if _, err := s.Check(context.Background(), m, repro.CheckOptions{Method: repro.CheckAdaptive}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 64 KiB budget: %+v", st)
	}
	if st.Bytes > 64<<10 {
		t.Fatalf("resident bytes %d exceed the budget", st.Bytes)
	}
	if st.Models >= 6 {
		t.Fatalf("all %d caches survived a budget sized for one", st.Models)
	}
}

// TestSessionResetAndDefaultSession: Reset empties the cache pool, and
// the shared default session behind the free functions is reachable for
// inspection and flushing.
func TestSessionResetAndDefaultSession(t *testing.T) {
	m := violatingLibrary(t, 1, 16)[0]
	s := repro.NewSession()
	if _, err := s.Check(context.Background(), m, repro.CheckOptions{Method: repro.CheckAdaptive}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Models != 1 || st.Bytes == 0 {
		t.Fatalf("expected resident state before Reset: %+v", st)
	}
	s.Reset()
	if st := s.CacheStats(); st.Models != 0 || st.Bytes != 0 {
		t.Fatalf("Reset left state behind: %+v", st)
	}
	// A post-Reset check runs cold but still works and re-registers.
	if _, err := s.Check(context.Background(), m, repro.CheckOptions{Method: repro.CheckAdaptive}); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Models != 1 {
		t.Fatalf("post-Reset check did not repopulate: %+v", st)
	}

	ds := repro.DefaultSession()
	if ds == nil {
		t.Fatal("no default session")
	}
	if _, err := repro.CheckPassivity(m, repro.CheckOptions{Method: repro.CheckAdaptive}); err != nil {
		t.Fatal(err)
	}
	if st := ds.CacheStats(); st.Models == 0 {
		t.Fatal("free function did not populate the default session")
	}
	ds.Reset()
	if st := ds.CacheStats(); st.Models != 0 {
		t.Fatalf("default session Reset left state behind: %+v", st)
	}
}

// TestSessionDefaultsAndProgress: session-wide method/certify defaults
// apply, and the progress sink sees check, iteration and certificate
// events with the single-model tag.
func TestSessionDefaultsAndProgress(t *testing.T) {
	m := violatingLibrary(t, 1, 10)[0]
	kinds := map[repro.ProgressKind]int{}
	models := map[int]bool{}
	s := repro.NewSession(
		repro.WithMethod(repro.CheckAdaptive),
		repro.WithCertify(true),
		repro.WithWorkers(1),
		repro.WithProgress(func(ev repro.ProgressEvent) {
			kinds[ev.Kind]++ // serialized delivery: no locking needed
			models[ev.Model] = true
		}),
	)
	rep, err := s.Check(context.Background(), m, repro.CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "adaptive" {
		t.Fatalf("session method default ignored: %q", rep.Method)
	}
	enf, err := s.Enforce(context.Background(), m, repro.EnforceOptions{ClampD: true})
	if err != nil {
		t.Fatal(err)
	}
	if enf.Certificate == nil || !enf.Certificate.Certified {
		t.Fatal("session certify default did not produce a certificate")
	}
	if kinds[repro.ProgressCheck] == 0 || kinds[repro.ProgressIteration] == 0 || kinds[repro.ProgressCertificateStage] == 0 {
		t.Fatalf("missing progress kinds: %+v", kinds)
	}
	if len(models) != 1 || !models[-1] {
		t.Fatalf("single-model events must be tagged -1, got %v", models)
	}
}
