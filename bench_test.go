package repro_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figs. 1–6 — the paper has no tables), plus ablation benches for the
// design choices called out in DESIGN.md. Each figure bench regenerates the
// corresponding result on the 45-port synthetic testcase with the Quick
// profile (coarser frequency grid, same structure) so a full -bench=. run
// stays in the minutes range; cmd/experiments reproduces the figures at
// full resolution.

import (
	"fmt"
	"testing"

	repro "repro"
	"repro/internal/experiments"
)

// benchCtx shares the expensive artifacts across benchmark iterations, as
// the figures share them in the flow.
var benchCtx = experiments.NewContext(experiments.Quick())

func BenchmarkFig1StandardFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx.Fig1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2TargetImpedance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.Fig2()
		if err != nil {
			b.Fatal(err)
		}
		std := res.Metrics["standard_worst_rel_err_below_10MHz"]
		w := res.Metrics["weighted_worst_rel_err_below_10MHz"]
		if w > std {
			b.Fatalf("weighted fit should beat standard at LF: %v vs %v", w, std)
		}
	}
}

func BenchmarkFig3SensitivityFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["xi_dynamic_range_db"] < 20 {
			b.Fatalf("sensitivity should span decades, got %.1f dB", res.Metrics["xi_dynamic_range_db"])
		}
	}
}

func BenchmarkFig4PassivityCheck(b *testing.B) {
	m, _, err := benchCtx.WeightedFit()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.CheckPassivity(m, repro.CheckOptions{
			ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4WeightedEnforcement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["max_sigma_after"] > 1+1e-6 {
			b.Fatalf("enforcement left σmax=%v", res.Metrics["max_sigma_after"])
		}
	}
}

func BenchmarkFig5StandardVsWeighted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		ratio := res.Metrics["standard_over_weighted_error_ratio"]
		if ratio < 2 {
			b.Fatalf("weighted enforcement should clearly beat standard; ratio %.2f", ratio)
		}
	}
}

func BenchmarkFig6FinalModelEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx.Fig6(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablations -----------------------------------------------------------

// BenchmarkAblationWeightOrder compares weight model orders: the cost of
// building the weighted Gramian and running one weighted enforcement with
// n_w ∈ {2, 8}. Low-order weights are cheaper but resolve the sensitivity
// shape worse (see EXPERIMENTS.md).
func BenchmarkAblationWeightOrder2(b *testing.B) { ablationWeightOrder(b, 2) }

// BenchmarkAblationWeightOrder8 is the paper's n_w = 8 configuration.
func BenchmarkAblationWeightOrder8(b *testing.B) { ablationWeightOrder(b, 8) }

func ablationWeightOrder(b *testing.B, order int) {
	syn, err := benchCtx.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	m0, _, err := benchCtx.WeightedFit()
	if err != nil {
		b.Fatal(err)
	}
	w, _, err := repro.BuildWeight(syn.Data, syn.Load, order)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := m0.Clone()
		rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
			Check:  repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200},
			Weight: w,
			ClampD: true,
			Margin: 2e-5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatalf("n_w=%d enforcement failed", order)
		}
	}
}

// BenchmarkAblationHamiltonianVsSweep compares the two passivity checks on
// a model small enough for both (8-port synthetic PDN).
func BenchmarkAblationHamiltonianVsSweep(b *testing.B) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 80, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		b.Fatal(err)
	}
	m, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 8, Iterations: 5, ConstrainD: 0.999})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hamiltonian", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.CheckPassivity(m, repro.CheckOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := repro.CheckPassivity(m, repro.CheckOptions{
				ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSensitivityClosedForm measures the per-sweep cost of the
// analytic Ξ computation on the 45-port data (the paper's "negligible
// overhead" claim).
func BenchmarkSensitivityClosedForm(b *testing.B) {
	syn, err := benchCtx.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := repro.Sensitivity(syn.Data, syn.Load); err != nil {
			b.Fatal(err)
		}
	}
}

// --- extension experiments ------------------------------------------------

// BenchmarkExtARepresentationIndependence reruns the full weighted flow
// from renormalized (5 Ω) and admittance-derived (20 Ω) data and checks all
// paths agree with the native one (paper §V).
func BenchmarkExtARepresentationIndependence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.ExtA()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["worst_path_over_best"] > 50 {
			b.Fatalf("representation paths diverge: ×%v", res.Metrics["worst_path_over_best"])
		}
	}
}

// BenchmarkExtBTransientVerification co-simulates both enforced models with
// their termination network at the worst low-frequency tone: the transient
// must reproduce each model's frequency response, stay passive in energy,
// and the weighted model must be the more accurate one against nominal.
func BenchmarkExtBTransientVerification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.ExtB()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["td_fd_consistency_weighted"] > 0.05 {
			b.Fatalf("transient disagrees with frequency domain: %v", res.Metrics["td_fd_consistency_weighted"])
		}
		if res.Metrics["min_energy_weighted_joule"] < -1e-9 {
			b.Fatalf("passive model generated energy: %v", res.Metrics["min_energy_weighted_joule"])
		}
		if res.Metrics["standard_over_weighted"] < 1 {
			b.Fatalf("weighted model should beat standard in transient droop, ratio %v", res.Metrics["standard_over_weighted"])
		}
	}
}

// BenchmarkExtCMORBaseline runs the classical balanced-truncation baseline
// (overfit → reduce → enforce) against direct VF at equal realization size.
func BenchmarkExtCMORBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.ExtC()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["bt_retained_order"] <= 0 {
			b.Fatal("reduction retained nothing")
		}
	}
}

// BenchmarkExtDEnforcementAblation compares weighted QP, standard QP and
// global residue scaling on the same non-passive fit.
func BenchmarkExtDEnforcementAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchCtx.ExtD()
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics["z_err_lf_residue_scaling"] < res.Metrics["z_err_lf_weighted_qp"] {
			b.Fatalf("residue scaling (%v) should not beat the weighted QP (%v)",
				res.Metrics["z_err_lf_residue_scaling"], res.Metrics["z_err_lf_weighted_qp"])
		}
	}
}

// --- more ablations --------------------------------------------------------

// BenchmarkAblationSweepWorkers measures the parallel speedup of the
// singular-value sweep on the 45-port model (results are identical by
// construction; see internal/parallel).
func BenchmarkAblationSweepWorkers(b *testing.B) {
	m, _, err := benchCtx.WeightedFit()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "gomaxprocs"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.CheckPassivity(m, repro.CheckOptions{
					ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200, Workers: workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransientDroop45 measures the switching-step co-simulation of
// the final 45-port weighted-passive model with its nominal terminations
// (540 macromodel states + 45 termination companions).
func BenchmarkTransientDroop45(b *testing.B) {
	syn, err := benchCtx.Dataset()
	if err != nil {
		b.Fatal(err)
	}
	m, _, err := benchCtx.WeightedEnforced()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, _, err := repro.Droop(m, syn.Load, 1e-9, repro.TransientOptions{
			Dt: 1e-9, Steps: 2000, RecordEvery: 10,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.MinEnergy < -1e-9 {
			b.Fatalf("passive model generated energy: %v", rep.MinEnergy)
		}
	}
}

// BenchmarkReduceModel measures balanced truncation + pole-residue
// recovery of an overfitted 8-port model (160 → 96 states).
func BenchmarkReduceModel(b *testing.B) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 80, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		b.Fatal(err)
	}
	big, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 20, Iterations: 5, ConstrainD: 0.999})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := repro.ReduceModel(big, 96); err != nil {
			b.Fatal(err)
		}
	}
}

// --- passivity check scaling ----------------------------------------------

// BenchmarkPassivityCheck charts the check hot path across model sizes
// (nP = poles × ports, the half Hamiltonian dimension) and methods. The
// synthetic models carry the narrow off-resonance violation band that the
// fixed sweep cannot see, so the benchmark doubles as the method-selection
// evidence: the exact Hamiltonian test explodes as O((2nP)³) while the
// adaptive characterizer stays in the milliseconds at nP = 2000, finding
// the band the 1000-point sweep misses. Hamiltonian runs are capped at
// nP ≤ 1000; note the nP = 1000 eigensolve takes tens of seconds per
// iteration, so a full -bench run of this function is slow by design —
// narrow with -bench 'BenchmarkPassivityCheck/nP=1000' when regenerating
// the speedup numbers.
func BenchmarkPassivityCheck(b *testing.B) {
	for _, size := range []struct{ ports, poles int }{
		{2, 24},  // nP = 48
		{2, 100}, // nP = 200
		{4, 125}, // nP = 500
		{4, 250}, // nP = 1000
		{8, 250}, // nP = 2000
	} {
		nP := size.ports * size.poles
		m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: size.ports, Poles: size.poles, Seed: 3, PeakGain: 0.1, NarrowBand: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		run := func(name string, method repro.CheckMethod, wantPassive bool) {
			b.Run(fmt.Sprintf("nP=%d/%s", nP, name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := repro.CheckPassivity(m, repro.CheckOptions{Method: method, SweepPoints: 1000})
					if err != nil {
						b.Fatal(err)
					}
					if rep.Passive != wantPassive {
						b.Fatalf("%s at nP=%d: passive=%v, want %v (σmax=%v)",
							name, nP, rep.Passive, wantPassive, rep.MaxSigma)
					}
				}
			})
		}
		// The narrow band is invisible to the fixed grid (passive verdict)
		// and found by the adaptive characterizer and the exact test.
		run("adaptive", repro.CheckAdaptive, false)
		run("sweep1000", repro.CheckSweep, true)
		if nP <= 1000 {
			run("hamiltonian", repro.CheckHamiltonian, false)
		}
	}
}

// BenchmarkPassivityCheckEnforceCached measures a full adaptive-driven
// enforcement on a violating synthetic model — the loop shares one
// evaluation cache across its sweeps, which is where the adaptive method
// earns its keep inside Enforce.
func BenchmarkPassivityCheckEnforceCached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 2, Poles: 40, Seed: 9, PeakGain: 1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := repro.EnforcePassivity(m, repro.EnforceOptions{
			Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
			ClampD: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatal("enforcement failed")
		}
	}
}
