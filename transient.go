package repro

// Transient co-simulation of a macromodel with its nominal termination
// network — the verification step the paper's flow feeds its passive
// macromodels into ("extensive transient simulations are run", §I), and the
// step where passivity separates a usable model from an exploding one.

import (
	"fmt"
	"math"

	"repro/internal/tdsim"
)

// Waveform is a scalar time-domain excitation; see StepWave, PulseWave,
// SineWave and CustomWave.
type Waveform = tdsim.Waveform

// StepWave returns a current step of the given amplitude at t0 with a
// linear rise time (0 = ideal step) — the synchronous-switching onset.
func StepWave(t0, rise, amplitude float64) Waveform {
	return tdsim.Step{T0: t0, Rise: rise, Amplitude: amplitude}
}

// PulseWave returns a trapezoidal pulse (repeating when period > 0) —
// a periodic switching-activity burst.
func PulseWave(t0, rise, width, amplitude, period float64) Waveform {
	return tdsim.Pulse{T0: t0, Rise: rise, Width: width, Amplitude: amplitude, Period: period}
}

// SineWave returns a sinusoidal excitation switched on at t = 0.
func SineWave(freqHz, amplitude float64) Waveform {
	return tdsim.Sine{Freq: freqHz, Amplitude: amplitude}
}

// CustomWave wraps an arbitrary function of time (s).
func CustomWave(name string, f func(t float64) float64) Waveform {
	return tdsim.Custom{F: f, Name: name}
}

// TransientOptions configures a transient run.
type TransientOptions struct {
	// Dt is the time step (s).
	Dt float64
	// Steps is the number of time steps.
	Steps int
	// BackwardEuler switches the integrator from the trapezoidal rule to
	// backward Euler (adds numerical damping that can mask non-passivity;
	// provided for comparison experiments).
	BackwardEuler bool
	// RecordEvery decimates the stored waveforms (default 1).
	RecordEvery int
}

// TransientResult holds the recorded waveforms; see the tdsim package for
// the accessor methods (PortVoltage, MaxAbsVoltage, Energy, FitTone, …).
type TransientResult = tdsim.Result

// Transient runs a time-domain co-simulation of the macromodel terminated
// by the load network. Every port with a nonzero Norton excitation J_p in
// the load receives the waveform scaled by Re(J_p) — with the paper's
// uniform die excitation (total 1 A) the observation-port voltage is the
// transient counterpart of the target impedance Z_PDN.
func Transient(m *Macromodel, load *Load, wave Waveform, opts TransientOptions) (*TransientResult, error) {
	if err := load.Validate(m.Ports()); err != nil {
		return nil, err
	}
	if wave == nil {
		return nil, fmt.Errorf("repro: nil excitation waveform")
	}
	var sources []tdsim.Source
	for p, j := range load.J {
		if j == 0 {
			continue
		}
		if imag(j) != 0 {
			return nil, fmt.Errorf("repro: port %d has complex excitation %v; transient excitations must be real", p, j)
		}
		sources = append(sources, tdsim.Source{Port: p, Wave: tdsim.Scale(wave, real(j))})
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("repro: load network has no excitation (J = 0)")
	}
	method := tdsim.Trapezoidal
	if opts.BackwardEuler {
		method = tdsim.BackwardEuler
	}
	sim, err := tdsim.New(m.model.Realization(), m.r0, load.Terms, sources, tdsim.Options{
		Dt:          opts.Dt,
		Steps:       opts.Steps,
		Method:      method,
		RecordEvery: opts.RecordEvery,
	})
	if err != nil {
		return nil, err
	}
	return sim.Run(), nil
}

// DroopReport summarizes a switching-transient run at the observation port.
type DroopReport struct {
	// PeakDroop is the worst-case |v| at the observation port (V per A of
	// excitation when J is the paper's normalized switching current).
	PeakDroop float64
	// PeakTime is when the worst droop occurs (s).
	PeakTime float64
	// Settled is the final observed voltage (V).
	Settled float64
	// DCExpected is Re(Z_PDN(0))·ΣJ — where the waveform should settle for
	// a unit step.
	DCExpected float64
	// MinEnergy is the lowest cumulative energy delivered to the
	// macromodel; negative values flag non-passive behaviour.
	MinEnergy float64
}

// Droop runs a switching-step transient (1 A total, rise time as given) and
// reports the voltage droop at the observation port of the load.
func Droop(m *Macromodel, load *Load, rise float64, opts TransientOptions) (*DroopReport, *TransientResult, error) {
	res, err := Transient(m, load, StepWave(0, rise, 1), opts)
	if err != nil {
		return nil, nil, err
	}
	rep := &DroopReport{MinEnergy: res.MinEnergy(), Settled: res.FinalVoltage(load.ObsPort)}
	for k := range res.T {
		if a := math.Abs(res.V[k][load.ObsPort]); a > rep.PeakDroop {
			rep.PeakDroop = a
			rep.PeakTime = res.T[k]
		}
	}
	z, err := TargetImpedanceModel(m, []float64{0}, load)
	if err == nil {
		rep.DCExpected = real(z[0])
	}
	return rep, res, nil
}
