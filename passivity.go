package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/passivity"
)

// PassivityViolation is one frequency band where a singular value of the
// model scattering matrix exceeds one.
type PassivityViolation struct {
	FreqPeakHz float64
	SigmaPeak  float64
	FreqLoHz   float64
	FreqHiHz   float64 // +Inf for an unbounded band
}

// infFloat is a float64 whose JSON form survives IEEE infinities:
// encoding/json refuses ±Inf outright, but an unbounded violation or
// certificate band legitimately carries FreqHiHz = +Inf. Infinities (and
// NaN, defensively) encode as the strings "Inf", "-Inf", "NaN"; finite
// values stay plain numbers, so the wire format of bounded bands is
// unchanged.
type infFloat float64

func (f infFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (f *infFloat) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "Inf", "+Inf":
			*f = infFloat(math.Inf(1))
		case "-Inf":
			*f = infFloat(math.Inf(-1))
		case "NaN":
			*f = infFloat(math.NaN())
		default:
			return fmt.Errorf("infFloat: unknown value %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = infFloat(v)
	return nil
}

// violationWire mirrors PassivityViolation with an Inf-safe upper edge.
type violationWire struct {
	FreqPeakHz float64
	SigmaPeak  float64
	FreqLoHz   float64
	FreqHiHz   infFloat
}

// MarshalJSON encodes the violation with an unbounded band edge
// (FreqHiHz = +Inf) as the JSON string "Inf" — encoding/json rejects IEEE
// infinities, and without this a report crossing the passivityd wire would
// truncate mid-body.
func (v PassivityViolation) MarshalJSON() ([]byte, error) {
	return json.Marshal(violationWire{v.FreqPeakHz, v.SigmaPeak, v.FreqLoHz, infFloat(v.FreqHiHz)})
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts both plain
// numbers and the "Inf" string form for FreqHiHz.
func (v *PassivityViolation) UnmarshalJSON(data []byte) error {
	var w violationWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*v = PassivityViolation{w.FreqPeakHz, w.SigmaPeak, w.FreqLoHz, float64(w.FreqHiHz)}
	return nil
}

// PassivityReport is the outcome of CheckPassivity.
type PassivityReport struct {
	Passive    bool
	MaxSigma   float64
	MaxFreqHz  float64
	DSigma     float64 // σ_max(D), asymptotic passivity
	Violations []PassivityViolation
	Method     string // "hamiltonian", "sweep" or "adaptive"
	// Samples counts the σ grid evaluations spent (sweep and adaptive
	// methods).
	Samples int
	// Certificate records the certification pipeline's verdict and cost
	// (nil unless certification ran — CheckOptions.Certify or
	// EnforceOptions.Certify — and the method-level check passed).
	Certificate *PassivityCertificate
}

// CertificateStage is the per-stage cost accounting of a certification
// run: which pipeline stage ran, how many frequency intervals it certified
// passive, the largest eigenproblem it solved (0 when it solved none), the
// direct σ evaluations it spent and — for the terminal contour-counter
// stage — the quadrature nodes (determinant evaluations) it spent.
type CertificateStage struct {
	Stage      string
	Certified  int
	Violations int
	EigenDim   int
	Samples    int
	Nodes      int
	// Backend names the eigenproblem kernel the stage ran (or declined) on
	// — "structured" (diagonal-plus-low-rank, O(N·p²) per query) or "dense"
	// (complex LU / QR, O(N³)); empty for stages with no such kernel.
	Backend string
	// DimGate is the stage's effective eigenproblem dimension cap; Declined
	// counts the intervals the stage refused at that gate.
	DimGate  int
	Declined int
	// Note carries non-fatal diagnostics (e.g. a quadrature that stalled).
	Note string
}

// CertificateBand is one frequency band of a certificate, in Hz
// (FreqHiHz is +Inf for the unbounded tail band).
type CertificateBand struct {
	FreqLoHz, FreqHiHz float64
}

// certBandWire mirrors CertificateBand with an Inf-safe upper edge.
type certBandWire struct {
	FreqLoHz float64
	FreqHiHz infFloat
}

// MarshalJSON encodes the unbounded tail band (FreqHiHz = +Inf) as the
// JSON string "Inf"; see PassivityViolation.MarshalJSON.
func (b CertificateBand) MarshalJSON() ([]byte, error) {
	return json.Marshal(certBandWire{b.FreqLoHz, infFloat(b.FreqHiHz)})
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts both plain
// numbers and the "Inf" string form for FreqHiHz.
func (b *CertificateBand) UnmarshalJSON(data []byte) error {
	var w certBandWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*b = CertificateBand{w.FreqLoHz, float64(w.FreqHiHz)}
	return nil
}

// PassivityCertificate is the outcome of the staged certification
// pipeline: a partition of the whole frequency axis retired interval by
// interval with rigorous certificates (closed-form tail bounds, exact or
// restricted Hamiltonian eigentests). Certified reports full coverage;
// Stage names the stage that settled the verdict. When Certified is false
// on a passive report, the rigorous stages could not cover the whole axis
// (some interval outgrew the restricted eigentest's reduction capacity or
// the probe dimension cap) and the passive verdict is best-effort —
// callers needing a hard guarantee must check Certified.
type PassivityCertificate struct {
	Certified bool
	Stage     string
	// EigenDim is the largest eigenproblem dimension solved overall.
	EigenDim int
	// Intervals is the size of the initial axis partition.
	Intervals int
	Stages    []CertificateStage
	// Open lists the frequency bands no stage could settle. With the
	// terminal contour-counter stage in the default pipeline it is nil in
	// practice; a non-nil Open pinpoints exactly where (and why, via the
	// stage Notes) a certificate fell short of full axis coverage.
	Open []CertificateBand
}

// CheckMethod selects the passivity detection algorithm. See the decision
// table in internal/passivity: the Hamiltonian test is exact but O((2nP)³);
// the sweep is a fixed pole-seeded log grid; the adaptive characterizer
// refines a coarse grid only where σ(ω) curvature or pole proximity leaves
// room for a violation, scaling to models far beyond the eigensolve while
// still resolving narrow resonant bands a fixed grid steps over.
type CheckMethod int

const (
	// CheckAuto picks the Hamiltonian test for small state dimensions and
	// the adaptive characterizer otherwise.
	CheckAuto CheckMethod = iota
	// CheckHamiltonian forces the exact Hamiltonian eigenvalue test.
	CheckHamiltonian
	// CheckSweep forces the fixed-grid singular-value sweep.
	CheckSweep
	// CheckAdaptive forces the multi-stage adaptive characterizer.
	CheckAdaptive
)

// CheckOptions tunes passivity detection.
type CheckOptions struct {
	// Method selects the detection algorithm (default CheckAuto).
	Method CheckMethod
	// ForceSweep skips the Hamiltonian test regardless of model size.
	// Deprecated shorthand for Method: CheckSweep; an explicit Method wins.
	ForceSweep bool
	// FreqMin/FreqMax bound the sweep band in Hz (0 = derive from poles).
	FreqMin, FreqMax float64
	// SweepPoints sets the sweep grid density (0 = default 1000).
	SweepPoints int
	// Workers bounds the goroutines of the sweep evaluation
	// (0 = GOMAXPROCS, 1 = serial); the result does not depend on it.
	Workers int
	// AdaptiveSeedPoints sets the adaptive characterizer's coarse seed
	// grid density (0 = default 64); pole resonances are always added.
	AdaptiveSeedPoints int
	// AdaptiveRelTol is the relative tolerance to which the adaptive
	// characterizer brackets violation-band edges (0 = default 1e-3).
	AdaptiveRelTol float64
	// AdaptiveMaxSamples caps the adaptive refinement's σ evaluations
	// beyond the seed grid (0 = default 20000).
	AdaptiveMaxSamples int
	// Certify escalates a passive verdict through the staged certification
	// pipeline — closed-form tail-bound interval certificates, then an
	// exact or restricted-band Hamiltonian eigentest — so that "no
	// violation was sampled" becomes "no violation exists". Violations the
	// pipeline proves are appended to the report and flip Passive; the
	// verdict and its cost land in PassivityReport.Certificate.
	Certify bool
}

func (o CheckOptions) internal() passivity.CheckOptions {
	opts := passivity.CheckOptions{
		OmegaMin:           2 * math.Pi * o.FreqMin,
		OmegaMax:           2 * math.Pi * o.FreqMax,
		SweepPoints:        o.SweepPoints,
		Workers:            o.Workers,
		AdaptiveSeedPoints: o.AdaptiveSeedPoints,
		AdaptiveRelTol:     o.AdaptiveRelTol,
		AdaptiveMaxSamples: o.AdaptiveMaxSamples,
		Certify:            o.Certify,
	}
	switch o.Method {
	case CheckHamiltonian:
		opts.Method = passivity.MethodHamiltonian
	case CheckSweep:
		opts.Method = passivity.MethodSweep
	case CheckAdaptive:
		opts.Method = passivity.MethodAdaptive
	default:
		if o.ForceSweep {
			opts.Method = passivity.MethodSweep
		}
	}
	return opts
}

func toPublicCertificate(c *passivity.Certificate) *PassivityCertificate {
	if c == nil {
		return nil
	}
	out := &PassivityCertificate{
		Certified: c.Certified,
		Stage:     c.Stage,
		EigenDim:  c.EigenDim,
		Intervals: c.Intervals,
	}
	for _, s := range c.Stages {
		out.Stages = append(out.Stages, CertificateStage{
			Stage:      s.Stage,
			Certified:  s.Certified,
			Violations: s.Violations,
			EigenDim:   s.EigenDim,
			Samples:    s.Samples,
			Nodes:      s.Nodes,
			Backend:    s.Backend,
			DimGate:    s.DimGate,
			Declined:   s.Declined,
			Note:       s.Note,
		})
	}
	for _, iv := range c.Open {
		out.Open = append(out.Open, CertificateBand{
			FreqLoHz: iv.Lo / (2 * math.Pi),
			FreqHiHz: iv.Hi / (2 * math.Pi),
		})
	}
	return out
}

func toPublicReport(rep *passivity.Report) *PassivityReport {
	out := &PassivityReport{
		Passive:     rep.Passive,
		MaxSigma:    rep.MaxSigma,
		MaxFreqHz:   rep.MaxOmega / (2 * math.Pi),
		DSigma:      rep.DSigma,
		Method:      rep.Method,
		Samples:     rep.Samples,
		Certificate: toPublicCertificate(rep.Certificate),
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, PassivityViolation{
			FreqPeakHz: v.OmegaPeak / (2 * math.Pi),
			SigmaPeak:  v.SigmaPeak,
			FreqLoHz:   v.OmegaLo / (2 * math.Pi),
			FreqHiHz:   v.OmegaHi / (2 * math.Pi),
		})
	}
	return out
}

// CheckPassivity assesses the model: Hamiltonian imaginary-eigenvalue test
// for small state dimensions, multi-stage adaptive singular-value
// characterization otherwise (see CheckMethod to force one). It is a thin
// wrapper over the shared default Session with a background context —
// repeated checks of the same pole set reuse its evaluation caches; use
// NewSession for cancellation, progress reporting or an isolated cache
// pool. Results are bitwise identical either way.
func CheckPassivity(m *Macromodel, opts CheckOptions) (*PassivityReport, error) {
	return defaultSession.Check(context.Background(), m, opts)
}

// EnforceOptions tunes passivity enforcement.
type EnforceOptions struct {
	Check CheckOptions
	// MaxIterations bounds the perturbation loop (default 40).
	MaxIterations int
	// Margin pushes constrained singular values to 1 − Margin
	// (default 1e-4).
	Margin float64
	// Weight selects the paper's sensitivity-weighted cost ‖Ξ̃·δS‖₂
	// built from the cascade Gramian (eqs. 18–21). Nil uses the standard
	// L2 cost tr(δC·P·δCᵀ).
	Weight *Weight
	// ClampD permits a one-time singular-value clip of D when the fit is
	// asymptotically non-passive (σmax(D) ≥ 1), which residue
	// perturbation alone cannot repair.
	ClampD bool
	// Certify escalates every convergence of the fast per-sweep check
	// through the certification pipeline; certified violation bands
	// re-enter the loop as constraints instead of being declared passive,
	// and the final verdict carries EnforceReport.Certificate. This closes
	// the sampling-based false pass: a model only leaves the loop with an
	// interval-by-interval certificate of the whole frequency axis.
	Certify bool
}

// EnforceReport summarizes an enforcement run.
type EnforceReport struct {
	Passive    bool
	Iterations int
	// DClamped reports that D was clipped to the passivity boundary first.
	DClamped bool
	// MaxSigmaHistory records the worst singular value seen before each
	// sweep — the paper reports convergence in 9 iterations on its
	// testcase.
	MaxSigmaHistory []float64
	Final           *PassivityReport
	// Certificate is the final certification-pipeline verdict (nil unless
	// EnforceOptions.Certify): which stage certified the enforced model
	// and at what cost.
	Certificate *PassivityCertificate
	// CertifiedRescues counts the convergences where the fast check
	// reported passive but the certification pipeline proved a residual
	// violation that re-entered the loop.
	CertifiedRescues int
}

// ScalingEnforceReport summarizes a residue-scaling enforcement run.
type ScalingEnforceReport struct {
	Passive bool
	// Gamma is the global residue scale factor applied (1 = untouched).
	Gamma float64
	// Checks counts passivity checks spent in the bisection.
	Checks int
	Final  *PassivityReport
}

// EnforcePassivityByScaling makes the model passive by scaling all residues
// with one global factor (bisection) — the crudest guaranteed-passive
// baseline, kept for the enforcement-accuracy ablation. opts.Weight is
// ignored; use EnforcePassivity for the perturbation schemes.
func EnforcePassivityByScaling(m *Macromodel, opts EnforceOptions) (*ScalingEnforceReport, error) {
	rep, err := passivity.EnforceByResidueScaling(m.model, passivity.EnforceOptions{
		Check:  opts.Check.internal(),
		Margin: opts.Margin,
		ClampD: opts.ClampD,
	})
	if err != nil {
		return nil, err
	}
	return &ScalingEnforceReport{
		Passive: rep.Passive,
		Gamma:   rep.Gamma,
		Checks:  rep.Checks,
		Final:   toPublicReport(rep.Final),
	}, nil
}

// BatchEnforceOptions configures EnforcePassivityBatch.
type BatchEnforceOptions struct {
	// Enforce is the per-model enforcement configuration. With Weight set,
	// every model gets the sensitivity-weighted cost built from its own
	// closed-form cascade Gramian; otherwise the standard L2 cost.
	Enforce EnforceOptions
	// Weights supplies a per-model sensitivity weight, index-aligned with
	// the model slice; a nil entry falls back to Enforce.Weight (or the
	// standard cost when that is nil too). Model libraries fitted against
	// different termination networks carry one weight each this way.
	Weights []*Weight
	// Workers bounds the model-level parallelism (0 = GOMAXPROCS). The
	// per-model results are bitwise independent of the value.
	Workers int
}

// BatchEnforceReport aggregates a batch enforcement run. Reports and
// Errors are index-aligned with the input models.
type BatchEnforceReport struct {
	Reports []*EnforceReport // nil for models whose enforcement errored
	Errors  []error
	Models  int
	Passive int
	Failed  int
	// TotalIterations sums the enforcement sweeps over all models.
	TotalIterations int
	// WorstSigma is the largest final σ_max across the library.
	WorstSigma float64
	// Certified counts models whose final certificate covers the whole
	// frequency axis (zero when Enforce.Certify is off).
	Certified int
	// CertifiedRescues sums, across the library, the convergences where
	// the fast check passed but the certification pipeline proved a
	// residual violation that re-entered the enforcement loop.
	CertifiedRescues int
}

// toPublicEnforceReport converts an internal enforcement report, tolerating
// the partial reports a cancelled run produces (nil Final, no certificate).
func toPublicEnforceReport(rep *passivity.EnforceReport) *EnforceReport {
	if rep == nil {
		return nil
	}
	out := &EnforceReport{
		Passive:          rep.Passive,
		Iterations:       rep.Iterations,
		DClamped:         rep.DClamped,
		Certificate:      toPublicCertificate(rep.Certificate),
		CertifiedRescues: rep.CertifiedRescues,
	}
	if rep.Final != nil {
		out.Final = toPublicReport(rep.Final)
	}
	for _, h := range rep.History {
		out.MaxSigmaHistory = append(out.MaxSigmaHistory, h.MaxSigma)
	}
	return out
}

// toPublicBatchReport converts an internal batch report (n input models).
func toPublicBatchReport(n int, brep *passivity.BatchReport) *BatchEnforceReport {
	out := &BatchEnforceReport{
		Reports:          make([]*EnforceReport, n),
		Errors:           make([]error, n),
		Models:           brep.Stats.Models,
		Passive:          brep.Stats.Passive,
		Failed:           brep.Stats.Failed,
		TotalIterations:  brep.Stats.TotalIterations,
		WorstSigma:       brep.Stats.WorstSigma,
		Certified:        brep.Stats.Certified,
		CertifiedRescues: brep.Stats.CertifiedRescues,
	}
	for i, r := range brep.Results {
		out.Errors[i] = r.Err
		out.Reports[i] = toPublicEnforceReport(r.Report)
	}
	return out
}

// EnforcePassivityBatch enforces passivity on a library of macromodels in
// place, sharding models across workers with per-worker reusable
// workspaces and per-model evaluation caches. Every model is attempted;
// per-model failures are reported in Errors without aborting the batch.
// The per-model outcomes are bitwise identical to calling EnforcePassivity
// on each model sequentially with the same options. Like the other root
// functions it delegates to the shared default Session, so a repeated
// sweep over the same library starts with warm pole-basis caches; use
// Session.EnforceBatch directly for cancellation and progress events.
func EnforcePassivityBatch(models []*Macromodel, opts BatchEnforceOptions) (*BatchEnforceReport, error) {
	return defaultSession.EnforceBatch(context.Background(), models, opts)
}

// EnforcePassivity removes passivity violations in place by iterative
// residue perturbation (paper eqs. 8–10). With opts.Weight set it runs the
// paper's sensitivity-weighted scheme; otherwise the standard L2 scheme.
// It is a thin wrapper over the shared default Session with a background
// context (see Session for cancellation, progress and cache control);
// results are bitwise identical either way.
func EnforcePassivity(m *Macromodel, opts EnforceOptions) (*EnforceReport, error) {
	rep, err := defaultSession.Enforce(context.Background(), m, opts)
	if err != nil {
		// Preserve the historical contract of the stateless wrapper: report
		// or error, never both (Session.Enforce returns partial reports
		// alongside convergence errors).
		return nil, err
	}
	return rep, nil
}
