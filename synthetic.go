package repro

import (
	"fmt"

	"repro/internal/passivity"
	"repro/internal/synthpdn"
)

// PDNPreset selects one of the bundled synthetic PDN structures that
// substitute for the paper's proprietary testcase.
type PDNPreset int

// Presets.
const (
	// PDNPaper45 mirrors the paper's §IV testcase: 45 ports — 24 die,
	// 12 decap, 1 VRM (shorted), 8 open.
	PDNPaper45 PDNPreset = iota
	// PDNSmall is an 8-port variant (4 die, 2 decap, 1 VRM, 1 open) for
	// quick experiments and examples.
	PDNSmall
)

// SyntheticPDN couples generated scattering data with the nominal
// termination network of the structure.
type SyntheticPDN struct {
	Data *SData
	Load *Load
	// Roles describes each port: "die", "decap", "vrm" or "open".
	Roles []string
}

// GeneratePDN synthesizes a board/package/die PDN structure (RLC plane
// grids solved by MNA — the library's field-solver substitute), sweeps its
// scattering parameters over the given frequency grid (Hz; use LogFreqGrid
// to match the paper's 1 kHz–2 GHz log sweep plus DC), and returns the data
// together with the paper's nominal termination network.
func GeneratePDN(preset PDNPreset, freqHz []float64, r0 float64) (*SyntheticPDN, error) {
	var cfg synthpdn.Config
	switch preset {
	case PDNPaper45:
		cfg = synthpdn.Paper45()
	case PDNSmall:
		cfg = synthpdn.Small()
	default:
		return nil, fmt.Errorf("repro: unknown PDN preset %d", preset)
	}
	p, err := synthpdn.Build(cfg)
	if err != nil {
		return nil, err
	}
	ss, err := p.Circuit.SweepS(freqHz, r0)
	if err != nil {
		return nil, err
	}
	data := &SData{Freq: append([]float64(nil), freqHz...), S: ss, R0: r0}
	roles := make([]string, p.Ports())
	for i, r := range p.Roles {
		roles[i] = r.String()
	}
	return &SyntheticPDN{Data: data, Load: p.NominalLoad(), Roles: roles}, nil
}

// SyntheticModelOptions configures SyntheticMacromodel.
type SyntheticModelOptions struct {
	// Ports is the port count P (default 2).
	Ports int
	// Poles is the model order n (default 20).
	Poles int
	// Seed drives the deterministic random construction.
	Seed int64
	// PeakGain caps each background pole's resonance strength (default
	// 0.25; values near or above 1−σmax(D) produce near-passive and
	// violating models).
	PeakGain float64
	// NarrowBand plants a high-Q off-resonance violation band (relative
	// width ~3e-4) that fixed-grid sweeps step over — the stress case for
	// passivity characterization at scale.
	NarrowBand bool
}

// SyntheticMacromodel builds a random stable scattering macromodel with
// controlled passivity structure, bypassing the fitting stage. It feeds
// the passivity characterization benchmarks and tests: model size and the
// presence of a deliberately narrow violation band are dialed directly,
// which no fitted dataset allows. Frequencies are normalized (resonances
// span ~1–1e4 rad/s); the reference resistance is fixed at 50 Ω.
func SyntheticMacromodel(opts SyntheticModelOptions) (*Macromodel, error) {
	m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
		Ports:      opts.Ports,
		Poles:      opts.Poles,
		Seed:       opts.Seed,
		PeakGain:   opts.PeakGain,
		NarrowBand: opts.NarrowBand,
	})
	if err != nil {
		return nil, err
	}
	return &Macromodel{model: m, r0: 50}, nil
}
