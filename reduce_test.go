package repro_test

import (
	"math"
	"math/cmplx"
	"testing"

	repro "repro"
)

func TestReduceModelKeepsScatteringAccuracy(t *testing.T) {
	// Overfit the small PDN (16 poles), reduce to 24 states, and check the
	// reduced model still matches the data nearly as well as the original.
	freqs := repro.LogFreqGrid(1e3, 2e9, 60, true)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 16, Iterations: 8, ConstrainD: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	red, rep, err := repro.ReduceModel(big, 24)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Order > 24 {
		t.Fatalf("retained order %d exceeds request", rep.Order)
	}
	if len(rep.Hankel) != 16*syn.Data.Ports() {
		t.Fatalf("expected %d Hankel values, got %d", 16*syn.Data.Ports(), len(rep.Hankel))
	}
	if !red.IsStable() {
		t.Fatal("reduced model must stay stable")
	}
	bigErr := big.RMSError(syn.Data)
	redErr := red.RMSError(syn.Data)
	// Reduction adds at most the BT bound on top of the fit error; in
	// practice it should stay the same order of magnitude.
	if redErr > 10*bigErr+rep.Bound {
		t.Fatalf("reduced model error %g too large (fit %g, bound %g)", redErr, bigErr, rep.Bound)
	}
}

func TestReduceModelRespectsHankelDecay(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 10, Iterations: 6, ConstrainD: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := repro.ReduceModel(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Hankel); i++ {
		if rep.Hankel[i] > rep.Hankel[i-1]*(1+1e-12) {
			t.Fatalf("Hankel values must descend, violated at %d", i)
		}
	}
	if rep.Bound < 0 {
		t.Fatal("negative error bound")
	}
}

func TestReducedModelTransferCloseToOriginal(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 40, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 12, Iterations: 6, ConstrainD: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	red, rep, err := repro.ReduceModel(m, 40)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, f := range freqs {
		a := m.Eval(f)
		b := red.Eval(f)
		for i := range a {
			for j := range a[i] {
				if d := cmplx.Abs(a[i][j] - b[i][j]); d > worst {
					worst = d
				}
			}
		}
	}
	slack := math.Sqrt(float64(syn.Data.Ports())) * rep.Bound * 1.05
	if worst > slack+1e-9 {
		t.Fatalf("entrywise deviation %g exceeds BT bound slack %g", worst, slack)
	}
}

func TestReduceModelErrors(t *testing.T) {
	freqs := repro.LogFreqGrid(1e3, 2e9, 20, false)
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	m, _, err := repro.Fit(syn.Data, repro.FitOptions{NumPoles: 4, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := repro.ReduceModel(m, 0); err == nil {
		t.Fatal("order 0 must fail")
	}
	if _, _, err := repro.ReduceModel(m, 10_000); err == nil {
		t.Fatal("order beyond state dimension must fail")
	}
}
