// Package repro is a Go implementation of sensitivity-weighted passivity
// enforcement for power-integrity macromodels, reproducing
//
//	A. Ubolli, S. Grivet-Talocia, M. Bandinu, A. Chinea,
//	"Sensitivity-based weighting for passivity enforcement of linear
//	macromodels in power integrity applications", DATE 2014.
//
// # Problem
//
// Power distribution networks (PDNs) are characterized by tabulated
// scattering parameters from electromagnetic solvers. Rational macromodels
// fitted to those samples can be extremely accurate in the scattering
// domain yet useless under the nominal termination network (decoupling
// capacitors, VRM, die models): the map from S to the loaded target
// impedance Z_PDN amplifies fitting errors by a strongly frequency-
// dependent sensitivity Ξ(ω). Weighting the rational fit by Ξ fixes the
// fitting stage but typically yields a non-passive model — and standard
// passivity enforcement, which minimizes an unweighted ‖δS‖, destroys the
// carefully tuned accuracy again.
//
// # Method
//
// This library implements the complete flow:
//
//  1. Fit: weighted Vector Fitting of the scattering samples
//     (Fit, FitOptions.Weights).
//  2. Sensitivity: closed-form Ξ(ω) of the loaded PDN (Sensitivity) and a
//     Monte-Carlo reference estimator.
//  3. Weight model: Magnitude Vector Fitting of a low-order minimum-phase
//     Ξ̃(s) with |Ξ̃(jω)| ≈ Ξ(ω) (FitWeight).
//  4. Enforcement: iterative residue perturbation under linearized
//     singular-value constraints, minimizing either the standard L2 norm
//     tr(δC·P·δCᵀ) or the paper's sensitivity-weighted norm
//     Σ_ij δc_ij·P^Ξ,11·δc_ijᵀ built from the cascade realization
//     S_ij(s)·Ξ̃(s) (EnforcePassivity, EnforceOptions.Weight). Both cost
//     Gramians are assembled in closed form per pole-pair block — no dense
//     Lyapunov solve remains on any hot path.
//  5. One call: Extract runs the whole pipeline.
//
// # Passivity characterization
//
// The violation detection feeding the enforcement loop is pluggable
// (CheckOptions.Method). With N = 2·n·P the Hamiltonian dimension:
//
//	CheckHamiltonian  exact imaginary-eigenvalue test, O(N³). The oracle
//	                  and certifier for small models (N ≲ 400).
//	CheckSweep        fixed pole-seeded log grid. Flat cost, trivially
//	                  parallel; adequate for broad violation bands but a
//	                  narrow resonant band can fall between grid points.
//	CheckAdaptive     multi-stage adaptive sampling: a coarse seed grid
//	                  refined only where the local σ(ω) curvature or pole
//	                  proximity leaves room for a violation, with
//	                  certified-passive intervals pruned by a residue tail
//	                  bound. Scales to models far beyond the eigensolve
//	                  and still localizes narrow bands; inside
//	                  EnforcePassivity it shares a per-frequency
//	                  evaluation cache and warm-starts from the previous
//	                  sweep's bands.
//	CheckAuto         Hamiltonian below the dimension threshold, adaptive
//	                  above (the default).
//
// # Certification
//
// Every method except the Hamiltonian test only samples σ(ω), so a narrow
// residual band can survive enforcement unseen — and the sensitivity-
// weighted cost makes exactly such leftovers likelier, because perturbing
// high-sensitivity bands is deliberately expensive. CheckOptions.Certify
// and EnforceOptions.Certify escalate every passive verdict through a
// staged certification pipeline that retires a partition of the whole
// frequency axis interval by interval, cheapest certificate first:
//
//	tail-bound              closed-form pole-tail interval bound, zero σ
//	                        evaluations; wins wherever the passivity
//	                        headroom dwarfs the local pole mass.
//	lipschitz               σ-anchored certified sweep: rigorous derivative
//	                        bound around true σ samples (anchored on the
//	                        enforcement run's own evaluation cache), so it
//	                        inherits the residue phase cancellation the
//	                        magnitude bound cannot see; wins across the
//	                        pole band of large passive models.
//	hamiltonian             the exact eigentest, one shot, for models
//	                        within the dense eigensolve's reach.
//	hamiltonian-restricted  level-γ eigentest on a reduced model per still-
//	                        open interval, the level charged by the
//	                        truncated far-pole tail; wins on large models
//	                        whose undecided slivers are local.
//	hamiltonian-probe       shift-and-invert eigenvalue probe near targeted
//	                        frequencies — a best-effort detector beyond the
//	                        eigensolve frontier, not a certificate. Runs on
//	                        the structured O(N·p²) shift-invert kernel up
//	                        to CertifyOptions.ProbeMaxDim (default 60000).
//	interval-counter        argument-principle contour integral: the exact
//	                        number of level-γ Hamiltonian eigenvalues in a
//	                        thin rectangle around each still-open jω
//	                        segment, from the winding of arg det(zI − M).
//	                        Zero is a rigorous emptiness certificate; a
//	                        nonzero count bisects into certified violation
//	                        bands. Free when nothing is open. One contour
//	                        node costs O(N·p²) on the structured diagonal-
//	                        plus-low-rank determinant kernel (p = 2·ports;
//	                        the dense O(N³) LU survives as an oracle behind
//	                        CertifyOptions.ForceDenseKernels), and the
//	                        stage declines above CertifyOptions.
//	                        CounterMaxDim (default 6000), recording the
//	                        refused intervals in CertificateStage.Declined.
//
// Inside EnforcePassivity the pipeline runs on every convergence of the
// fast per-sweep check; violation bands it proves re-enter the loop as
// constraints instead of terminating it, which turns the sampling false
// pass into an impossible state whenever the rigorous stages cover the
// axis — PassivityCertificate.Certified records whether they did, and a
// false value marks a best-effort verdict. With the terminal counter
// stage, every certificate within the counter's dimension gate either
// lists violations or reports no open intervals
// (PassivityCertificate.Open == nil). The final verdict carries a
// PassivityCertificate naming the stage that settled it and its cost
// (largest eigenproblem dimension, kernel backend and dimension gate,
// intervals, σ samples, contour nodes); passcheck prints it with
// -certify.
//
// # Beyond the paper's figures
//
// The library also covers the paper's surrounding claims and baselines:
//
//   - FitWithRefinement: the iterative reweighting of reference [23].
//   - Transient / Droop: time-domain co-simulation of a macromodel with
//     its termination network (the §I end use), with a cumulative-energy
//     dissipativity audit that catches non-passive models generating
//     energy.
//   - ReduceModel: classical balanced-truncation model order reduction
//     ([6], [7] of the introduction) with Hankel spectrum and H∞ bound.
//   - EnforcePassivityByScaling: the guaranteed-passive residue-scaling
//     strawman used in the enforcement ablation.
//   - SData.Renormalized, SDataFromAdmittance, SDataFromImpedance: the §V
//     representation-independence claim, exercisable end to end.
//
// # Performance: workspaces and batch enforcement
//
// The per-frequency hot path of characterization and enforcement —
// transfer evaluation plus a P×P singular value decomposition, repeated
// across every sweep — is allocation-free after warm-up. The internal
// packages follow a uniform "…Into" convention for this:
//
//   - An …Into function writes into a caller-owned buffer (a slice or a
//     workspace struct) and returns it; the buffer is grown only when too
//     small, so a warmed buffer is reused forever. Examples:
//     rational.EvalBasisInto / EvalWithBasisInto, mat.CSVDecomposeInto /
//     SingularValuesInto (driven by a mat.CSVDWorkspace),
//     mat.Cholesky.SolveVecInto, mat.MulInto / CMulInto.
//   - The caller owns the buffers and their lifetime. Results returned by
//     a workspace (e.g. the CSVD of CSVDecomposeInto) stay valid only
//     until the next call on the same workspace.
//   - Workspaces are single-goroutine. Parallel sweeps hand each worker a
//     private workspace (parallel.ForWorker provides the stable worker
//     identity); every index still writes only its own output slot, so
//     results remain bitwise independent of the worker count.
//
// Enforcement additionally shares one EvalCache per run: pole-basis
// vectors are computed once per frequency and survive residue
// perturbations (including the golden-section peak refinement's off-grid
// probes), with an LRU bound for long-running services.
//
// Model libraries are processed by EnforcePassivityBatch, which shards
// models across workers — per-worker workspaces, per-model caches — and
// aggregates per-model reports. A shared sensitivity weight
// (EnforceOptions.Weight) or per-model weights (BatchEnforceOptions.
// Weights) select the paper's weighted cost for the whole library; each
// model's cascade Gramian is built on its owning worker. The results are
// bitwise identical to sequential per-model EnforcePassivity runs at
// every worker count. Weights persist as JSON (Weight.SaveFile /
// LoadWeightFile) so one fitted weight can drive repeated library sweeps.
//
// # Sessions
//
// The paper's workflow is inherently iterative — fit, weight, enforce,
// re-check, re-enforce over the same pole sets — and a serving system
// repeats it across a whole model library. The Session type is the
// long-lived engine for that shape of work:
//
//   - Persistent evaluation caches. A Session keeps one EvalCache per
//     pole-set fingerprint (FNV-1a over the pole bits, verified exactly)
//     across Check / Enforce / EnforceBatch / Extract calls. Pole-basis
//     vectors survive residue changes; σ samples are additionally guarded
//     by a residue fingerprint, and each residue variant's σ layer parks
//     in a per-cache stash while its siblings run, so cycling through a
//     parameter-sweep library keeps every variant warm. Repeated library
//     sweeps over fixed pole sets run several times faster warm
//     (BENCH_5.json), and SaveCache / LoadCache persist the warm state
//     across processes (passcheck -cache-dir). A byte budget
//     (WithCacheBudget) evicts whole least-recently-used model caches.
//   - Cancellation. Every Session method takes a context.Context.
//     Cancellation is cooperative and drains deterministically: parallel
//     fan-outs stop claiming new work but finish what is in flight, no
//     goroutine outlives the call, and enforcement methods return
//     ctx.Err() together with a partial report (per-model partial reports
//     and ctx-cancelled slots inside a batch).
//   - Progress. WithProgress installs a sink receiving check, iteration
//     and certificate-stage events, serialized across batch workers.
//   - Defaults. WithWorkers, WithMethod and WithCertify set session-wide
//     policies that individual calls inherit.
//
// The stateless root functions (CheckPassivity, EnforcePassivity,
// EnforcePassivityBatch, Extract) are thin wrappers over a shared default
// Session with a background context; their signatures and results are
// unchanged — caching only moves work, never results, so session-routed
// outcomes are bitwise identical to the pre-Session implementations.
//
// For serving this engine over the network, cmd/passivityd wraps a pool
// of Sessions in an HTTP/JSON daemon whose scheduler routes each model
// to the worker already warm for its pole set (PoleFingerprint and
// Session.HasCache are the hooks it builds on); cmd/passcheck -remote is
// the matching client. The daemon is fault-tolerant: a panicking worker
// is caught (serve.ErrWorkerPanic), its Session retired and rebuilt, and
// the job retried on a different worker from a pristine model copy up to
// a per-job attempt budget, while the client side retries connection
// errors, 429 and 5xx with jittered exponential backoff (passcheck
// -retries / -retry-wait). Cache files carry a checksum footer; a file
// corrupted between save and load is quarantined (renamed *.corrupt) and
// its pole set simply starts cold. The "Service layer" section of
// ARCHITECTURE.md has the design and the failure-mode table.
//
// ARCHITECTURE.md maps the paper's equations to packages and expands on
// these conventions.
//
// # Data
//
// Scattering data can be loaded from Touchstone files (ReadTouchstone),
// built from raw samples, or synthesized with the included board/package/
// die PDN generator (GeneratePDN) which substitutes for the proprietary
// testcase of the paper's §IV.
//
// All frequencies at this API level are in Hz.
package repro
