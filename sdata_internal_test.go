package repro

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/touchstone"
)

// TestPortsFromExtension pins the port-count inference to literal .sNp
// extensions. The dotless cases are the regression: "mass3p" merely ends
// in the letters s-3-p and must not silently parse as a 3-port file.
func TestPortsFromExtension(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"line.s2p", 2},
		{"pdn.s12p", 12},
		{"noisy.S4P", 4},
		{"dir.v2/board.s3p", 3},
		{".s3p", 3}, // hidden file, still a literal extension
		{"mass3p", 0},
		{"bus4p", 0},
		{"s2p", 0},  // no dot before the s
		{"a.sp", 0}, // no digits
		{"a.s2x", 0},
		{"a.2p", 0},
		{"x", 0},
		{"", 0},
	}
	for _, c := range cases {
		if got := portsFromExtension(c.path); got != c.want {
			t.Errorf("portsFromExtension(%q) = %d, want %d", c.path, got, c.want)
		}
	}
}

// TestReadTouchstoneDotlessNameErrors verifies the user-visible half of
// the fix: a dotless file name with no explicit port count errors instead
// of inferring ports from a coincidental sNp suffix.
func TestReadTouchstoneDotlessNameErrors(t *testing.T) {
	dir := t.TempDir()
	// Valid 3-port content under a name that previously parsed as 3 ports.
	src := `# Hz S RI R 50
1e6 0.1 0 0.2 0 0.3 0 0.2 0 0.4 0 0.5 0 0.3 0 0.5 0 0.6 0
`
	path := filepath.Join(dir, "mass3p")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTouchstone(path, 0); err == nil {
		t.Fatal("ReadTouchstone(\"mass3p\", 0) inferred a port count from a dotless name")
	} else if !strings.Contains(err.Error(), "cannot infer port count") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The explicit port count still reads the same file fine.
	d, err := ReadTouchstone(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ports() != 3 {
		t.Fatalf("ports = %d, want 3", d.Ports())
	}
}

// TestReadTouchstoneOversizedLineErrFormat verifies scanner failures wrap
// ErrFormat: a single line beyond the 1 MiB scanner buffer must surface
// as malformed input to errors.Is-matching callers, not as a bare
// bufio.ErrTooLong.
func TestReadTouchstoneOversizedLineErrFormat(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# Hz S RI R 50\n")
	sb.WriteString("1e6")
	for sb.Len() < 1<<20+64 {
		sb.WriteString(" 0.0")
	}
	sb.WriteString("\n")
	_, err := ReadTouchstoneFrom(strings.NewReader(sb.String()), 2)
	if err == nil {
		t.Fatal("oversized line parsed without error")
	}
	if !errors.Is(err, touchstone.ErrFormat) {
		t.Fatalf("errors.Is(err, ErrFormat) = false for %v", err)
	}
}
