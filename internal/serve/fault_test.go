package serve

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	repro "repro"
)

// settleGoroutines waits for the goroutine count to come back to (near)
// base — the leak check after a drain.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d now vs %d at start", runtime.NumGoroutine(), base)
}

// TestFaultPanicRetriesOnAnotherWorker: a worker panic mid-job becomes a
// typed *PanicError, the worker's Session is retired and rebuilt, and
// the job is requeued onto a different worker where it succeeds — with
// attempt count and the panic surfaced in the Result.
func TestFaultPanicRetriesOnAnotherWorker(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(new(FaultPlan).PanicOnWorker(0, 1, "injected fault"))

	models := library(t, 2, 1, 12)
	// A fresh fingerprint routes least-loaded, i.e. to worker 0 — whose
	// first attempt is scheduled to panic.
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil {
		t.Fatalf("retried job failed: %v", res.Err)
	}
	if res.Attempts != 2 || res.Worker != 1 {
		t.Fatalf("attempts=%d worker=%d, want 2 on worker 1", res.Attempts, res.Worker)
	}
	if !errors.Is(res.LastErr, ErrWorkerPanic) {
		t.Fatalf("LastErr = %v, want ErrWorkerPanic", res.LastErr)
	}
	var pe *PanicError
	if !errors.As(res.LastErr, &pe) || pe.Worker != 0 || len(pe.Stack) == 0 ||
		!strings.Contains(pe.Error(), "injected fault") {
		t.Fatalf("panic detail: %+v", pe)
	}

	// The requeue re-recorded the fingerprint's placement: a variant of
	// the same pole set follows the job to worker 1 as an affinity hit.
	ch, err = s.Submit(&Job{Kind: JobCheck, Model: variant(t, models[0], 1.002), Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-ch; res.Err != nil || res.Worker != 1 || !res.AffinityHit {
		t.Fatalf("follow-up placement: err=%v worker=%d hit=%v, want worker 1 hit", res.Err, res.Worker, res.AffinityHit)
	}

	// Worker 0 survived (one restart is within budget) and still serves.
	ch, err = s.Submit(&Job{Kind: JobCheck, Model: models[1], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-ch; res.Err != nil || res.Worker != 0 || res.Attempts != 1 {
		t.Fatalf("worker 0 after restart: err=%v worker=%d attempts=%d", res.Err, res.Worker, res.Attempts)
	}

	// Accounting is exact: nothing leaked toward a spurious 429.
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after all results, want 0", d)
	}
	s.met.mu.Lock()
	panics, restarts, retries, requeued := s.met.panicsTotal, s.met.restartsTotal, s.met.retriesTotal, s.met.requeuedTotal
	s.met.mu.Unlock()
	if panics != 1 || restarts != 1 || retries != 1 || requeued != 1 {
		t.Fatalf("metrics panics=%d restarts=%d retries=%d requeued=%d, want 1/1/1/1", panics, restarts, retries, requeued)
	}
	drainOrFail(t, s)
}

// TestFaultPanicExhaustsAttempts: with a single worker every retry runs
// in place, and a job whose every attempt panics is delivered with
// ErrWorkerPanic and the full attempt count — then the freshly rebuilt
// Session keeps serving.
func TestFaultPanicExhaustsAttempts(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 8, DefaultDeadline: time.Minute, MaxWorkerRestarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(new(FaultPlan).PanicOnWorker(0, 1, "first").PanicOnWorker(0, 2, "second"))

	models := library(t, 2, 1, 12)
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck, MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !errors.Is(res.Err, ErrWorkerPanic) || res.Attempts != 2 {
		t.Fatalf("exhausted job: err=%v attempts=%d, want ErrWorkerPanic after 2", res.Err, res.Attempts)
	}
	if !errors.Is(res.LastErr, ErrWorkerPanic) {
		t.Fatalf("LastErr = %v, want the first attempt's panic", res.LastErr)
	}

	// The worker is still alive on a fresh Session; the queue is clean.
	ch, err = s.Submit(&Job{Kind: JobCheck, Model: models[1], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-ch; res.Err != nil || res.Attempts != 1 {
		t.Fatalf("post-panic job: err=%v attempts=%d", res.Err, res.Attempts)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d, want 0", d)
	}
	drainOrFail(t, s)
}

// TestFaultTransientAndPermanentErrors: a Transient-marked failure is
// retried to success; an unmarked failure is final on the first attempt.
func TestFaultTransientAndPermanentErrors(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	permanent := errors.New("solver rejected the model")
	s.InjectFaults(new(FaultPlan).
		FailOn(1, Transient(errors.New("flaky transport"))).
		FailOn(3, permanent))

	models := library(t, 2, 1, 12)
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil || res.Attempts != 2 || !IsTransient(res.LastErr) {
		t.Fatalf("transient retry: err=%v attempts=%d lastErr=%v", res.Err, res.Attempts, res.LastErr)
	}

	ch, err = s.Submit(&Job{Kind: JobCheck, Model: models[1], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	res = <-ch
	if !errors.Is(res.Err, permanent) || res.Attempts != 1 {
		t.Fatalf("permanent error: err=%v attempts=%d, want no retry", res.Err, res.Attempts)
	}
	drainOrFail(t, s)
}

// TestFaultWorkerRetiredAfterRestartBudget: a worker that keeps
// panicking is retired once its Session-restart budget is spent; the
// dispatcher stops routing to it, its placements are scrubbed, and the
// surviving pool absorbs the load.
func TestFaultWorkerRetiredAfterRestartBudget(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute, MaxWorkerRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(new(FaultPlan).
		PanicOnWorker(0, 1, "panic one").
		PanicOnWorker(0, 2, "panic two"))

	models := library(t, 3, 1, 12)
	for i := 0; i < 2; i++ {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[i], Check: fastCheck})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-ch; res.Err != nil || res.Worker != 1 || res.Attempts != 2 {
			t.Fatalf("job %d: err=%v worker=%d attempts=%d, want rescue on worker 1", i, res.Err, res.Worker, res.Attempts)
		}
	}
	// Worker 0 is retired now: fresh fingerprints route straight to 1.
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[2], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-ch; res.Err != nil || res.Worker != 1 || res.Attempts != 1 {
		t.Fatalf("post-retirement job: err=%v worker=%d attempts=%d", res.Err, res.Worker, res.Attempts)
	}
	s.mu.Lock()
	for fp, wi := range s.affinity {
		if wi == 0 {
			t.Errorf("affinity %016x still points at retired worker 0", fp)
		}
	}
	dead := s.deadWorkers
	s.mu.Unlock()
	if dead != 1 || !s.workers[0].dead.Load() {
		t.Fatalf("deadWorkers=%d dead[0]=%v, want worker 0 retired", dead, s.workers[0].dead.Load())
	}
	s.met.mu.Lock()
	retired, restarts := s.met.retiredTotal, s.met.restartsTotal
	s.met.mu.Unlock()
	if retired != 1 || restarts != 1 {
		t.Fatalf("metrics retired=%d restarts=%d, want 1/1", retired, restarts)
	}
	drainOrFail(t, s)
}

// TestFaultAllWorkersRetired: when the whole pool is gone, Submit fails
// fast with ErrNoWorkers (503 on the wire) instead of queueing work
// nobody will run — and Drain still completes.
func TestFaultAllWorkersRetired(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 8, DefaultDeadline: time.Minute, MaxWorkerRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(new(FaultPlan).
		PanicOnWorker(0, 1, "one").PanicOnWorker(0, 2, "two"))

	models := library(t, 2, 1, 12)
	for i := 0; i < 2; i++ {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck, MaxAttempts: 1})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-ch; !errors.Is(res.Err, ErrWorkerPanic) {
			t.Fatalf("job %d: err=%v, want ErrWorkerPanic", i, res.Err)
		}
	}
	if _, err := s.Submit(&Job{Kind: JobCheck, Model: models[1], Check: fastCheck}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("submit to dead pool: %v, want ErrNoWorkers", err)
	}
	drainOrFail(t, s)
}

// TestFaultEnforceRetryFromPristine: an enforce attempt that fails after
// perturbing the model in place is retried from a pristine copy — the
// retry sees byte-identical input, not the half-perturbed survivor.
func TestFaultEnforceRetryFromPristine(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 8, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var snapshots [][]byte
	s.runHook = func(ctx context.Context, j *Job) error {
		blob, err := json.Marshal(j.Model)
		if err != nil {
			t.Error(err)
		}
		snapshots = append(snapshots, blob)
		if len(snapshots) == 1 {
			// Simulate a fault mid-enforcement: the model has already
			// been perturbed when the attempt dies.
			*j.Model = *variant(t, j.Model, 1000)
			return Transient(errors.New("died mid-perturbation"))
		}
		return nil
	}

	bad, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
		Ports: 2, Poles: 16, Seed: 42, PeakGain: 1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := s.Submit(&Job{
		Kind: JobEnforce, Model: bad,
		Check:   repro.CheckOptions{Method: repro.CheckSweep, SweepPoints: 400},
		Enforce: repro.EnforceOptions{ClampD: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if res.Err != nil || res.Attempts != 2 {
		t.Fatalf("enforce retry: err=%v attempts=%d", res.Err, res.Attempts)
	}
	if len(snapshots) != 2 {
		t.Fatalf("hook saw %d attempts, want 2", len(snapshots))
	}
	if string(snapshots[0]) != string(want) {
		t.Fatal("first attempt did not start from the submitted model")
	}
	if string(snapshots[1]) != string(want) {
		t.Fatal("retry did not restart from the pristine model copy")
	}
	if res.Report == nil || !res.Report.Passive {
		t.Fatalf("retried enforcement did not converge: %+v", res.Report)
	}
	drainOrFail(t, s)
}

// TestFaultCacheQuarantine: a cache file corrupted between save and load
// (torn write, bit rot) is quarantined by LoadCaches — renamed aside,
// counted in the metric, pole set starts cold — and the daemon serves on.
func TestFaultCacheQuarantine(t *testing.T) {
	dir := t.TempDir()
	models := library(t, 2, 1, 12)
	s, err := New(Options{Workers: 1, QueueDepth: 8, DefaultDeadline: time.Minute, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: m, Check: fastCheck})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-ch; res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	drainOrFail(t, s)

	saved, err := filepath.Glob(filepath.Join(dir, "worker-*", "cache-*"+repro.SessionCacheExt))
	if err != nil || len(saved) != 2 {
		t.Fatalf("saved caches %v (%v), want 2", saved, err)
	}
	if err := CorruptCacheFile(saved[0]); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{Workers: 1, QueueDepth: 8, DefaultDeadline: time.Minute, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	quarantined, err := s2.LoadCaches()
	if err != nil {
		t.Fatalf("LoadCaches must not fail on corruption: %v", err)
	}
	if quarantined != 1 {
		t.Fatalf("quarantined %d, want 1", quarantined)
	}
	if _, err := os.Stat(saved[0] + repro.SessionCacheCorruptExt); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(saved[0]); !os.IsNotExist(err) {
		t.Fatalf("corrupt file still in place: %v", err)
	}
	s2.met.mu.Lock()
	qm := s2.met.quarantinedTotal
	s2.met.mu.Unlock()
	if qm != 1 {
		t.Fatalf("quarantined_caches_total %d, want 1", qm)
	}
	// Both models still serve: one warm, one cold.
	for i, m := range models {
		ch, err := s2.Submit(&Job{Kind: JobCheck, Model: m, Check: fastCheck})
		if err != nil {
			t.Fatal(err)
		}
		if res := <-ch; res.Err != nil {
			t.Fatalf("post-quarantine job %d: %v", i, res.Err)
		}
	}
	drainOrFail(t, s2)
}

// TestFaultChaosSweep is the acceptance chaos run: a 64-model sweep with
// panics injected on two workers mid-sweep plus transient failures and
// latency. Every accepted job still receives a Result (retried jobs
// succeed on another worker), Drain returns, goroutines settle, and a
// subsequent Submit is not spuriously rejected.
func TestFaultChaosSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := New(Options{Workers: 4, QueueDepth: 128, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.InjectFaults(new(FaultPlan).
		PanicOnWorker(1, 2, "chaos: worker 1 dies").
		PanicOnWorker(2, 3, "chaos: worker 2 dies").
		FailOn(5, Transient(errors.New("chaos: transient blip"))).
		FailOn(23, Transient(errors.New("chaos: another blip"))).
		DelayOn(11, 5*time.Millisecond).
		DelayOn(37, 5*time.Millisecond))

	models := library(t, 8, 8, 12)
	chans := make([]<-chan *Result, len(models))
	for i, m := range models {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: m, Check: fastCheck})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	retried := 0
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("job %d lost to chaos: %v (attempts %d)", i, res.Err, res.Attempts)
			}
			if res.Attempts > 1 {
				retried++
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("job %d never delivered a result", i)
		}
	}
	if retried < 4 {
		t.Fatalf("only %d jobs retried; the plan injected 4 retryable faults", retried)
	}
	s.met.mu.Lock()
	panics, requeued := s.met.panicsTotal, s.met.requeuedTotal
	s.met.mu.Unlock()
	if panics != 2 {
		t.Fatalf("panics_total %d, want 2", panics)
	}
	if requeued < 2 {
		t.Fatalf("requeued_total %d, want >= 2", requeued)
	}

	// The admission counter is exact: a fresh submit sails through.
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after full sweep, want 0", d)
	}
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck})
	if err != nil {
		t.Fatalf("post-chaos submit rejected: %v", err)
	}
	if res := <-ch; res.Err != nil {
		t.Fatal(res.Err)
	}
	drainOrFail(t, s)
	settleGoroutines(t, base)
}
