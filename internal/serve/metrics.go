package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	repro "repro"
)

// metrics aggregates the server's operational counters. Everything is
// guarded by one mutex — update rates are per job and per progress event,
// far below contention territory — and exported in Prometheus text format
// by writePrometheus.
type metrics struct {
	mu sync.Mutex

	acceptedTotal  int64
	rejectedTotal  map[string]int64 // by reason: queue_full, draining
	affinityHits   int64
	affinityMisses int64

	// completedTotal counts finished jobs by "kind/status" (status: ok,
	// error, deadline, cancelled).
	completedTotal map[string]int64

	// Fault-tolerance counters: recovered worker panics, Session rebuilds
	// after panics, workers retired for exhausting their restart budget,
	// attempt re-runs, jobs moved to another worker's queue, and cache
	// files quarantined as corrupt at load.
	panicsTotal      int64
	restartsTotal    int64
	retiredTotal     int64
	retriesTotal     int64
	requeuedTotal    int64
	quarantinedTotal int64

	queueWaitSec   float64
	queueWaitCount int64
	serviceSec     map[string]float64 // by job kind
	serviceCount   map[string]int64

	// stageSec/stageEvents charge wall-clock between progress events to
	// the emitting stage (check, iteration, certificate-stage) — the
	// per-stage latency view of the PR 5 progress stream.
	stageSec    map[string]float64
	stageEvents map[string]int64
	sigmaTotal  int64
	// nodesTotal counts contour-quadrature determinant evaluations by the
	// kernel backend that priced them ("structured" or "dense");
	// declinesTotal counts the intervals certificate stages refused at
	// their dimension gates.
	nodesTotal    map[string]int64
	declinesTotal int64

	// cache holds the latest per-worker Session cache snapshot.
	cache map[int]repro.SessionCacheStats
}

func newMetrics() *metrics {
	return &metrics{
		rejectedTotal:  make(map[string]int64),
		completedTotal: make(map[string]int64),
		serviceSec:     make(map[string]float64),
		serviceCount:   make(map[string]int64),
		stageSec:       make(map[string]float64),
		stageEvents:    make(map[string]int64),
		nodesTotal:     make(map[string]int64),
		cache:          make(map[int]repro.SessionCacheStats),
	}
}

func (m *metrics) accepted(affinityHit bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acceptedTotal++
	if affinityHit {
		m.affinityHits++
	} else {
		m.affinityMisses++
	}
}

func (m *metrics) rejected(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejectedTotal[reason]++
}

func (m *metrics) panicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panicsTotal++
}

func (m *metrics) workerRestarted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.restartsTotal++
}

func (m *metrics) workerRetired() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retiredTotal++
}

func (m *metrics) retried() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.retriesTotal++
}

func (m *metrics) requeued() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requeuedTotal++
}

func (m *metrics) quarantined(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.quarantinedTotal += int64(n)
}

// kindLabel names a job kind in metric labels.
func kindLabel(k JobKind) string {
	if k == JobEnforce {
		return "enforce"
	}
	return "check"
}

func (m *metrics) finished(kind JobKind, res *Result) {
	status := "ok"
	switch {
	case errors.Is(res.Err, context.DeadlineExceeded):
		status = "deadline"
	case errors.Is(res.Err, context.Canceled):
		status = "cancelled"
	case res.Err != nil:
		status = "error"
	}
	k := kindLabel(kind)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.completedTotal[k+"/"+status]++
	m.queueWaitSec += res.QueueWait.Seconds()
	m.queueWaitCount++
	m.serviceSec[k] += res.Service.Seconds()
	m.serviceCount[k]++
}

func (m *metrics) stage(stage string, d time.Duration, samples, nodes int, backend string, declined int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stageSec[stage] += d.Seconds()
	m.stageEvents[stage]++
	m.sigmaTotal += int64(samples)
	if nodes > 0 {
		if backend == "" {
			backend = "unlabelled"
		}
		m.nodesTotal[backend] += int64(nodes)
	}
	m.declinesTotal += int64(declined)
}

func (m *metrics) cacheStats(worker int, st repro.SessionCacheStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cache[worker] = st
}

// AffinityHitRatio reports hits/(hits+misses) over all accepted jobs
// (0 when none were accepted yet).
func (s *Server) AffinityHitRatio() float64 {
	s.met.mu.Lock()
	defer s.met.mu.Unlock()
	total := s.met.affinityHits + s.met.affinityMisses
	if total == 0 {
		return 0
	}
	return float64(s.met.affinityHits) / float64(total)
}

// sortedKeys returns the map keys in stable order so the /metrics output
// is deterministic.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// writePrometheus renders the server state in the Prometheus text
// exposition format (hand-rolled — the module takes no dependencies).
func (s *Server) writePrometheus(w io.Writer) {
	queued := s.QueueDepth()
	m := s.met
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP passivityd_workers Worker pool size.\n# TYPE passivityd_workers gauge\npassivityd_workers %d\n", len(s.workers))
	fmt.Fprintf(w, "# HELP passivityd_queue_depth Accepted-but-unfinished jobs.\n# TYPE passivityd_queue_depth gauge\npassivityd_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# HELP passivityd_jobs_accepted_total Jobs admitted to the queue.\n# TYPE passivityd_jobs_accepted_total counter\npassivityd_jobs_accepted_total %d\n", m.acceptedTotal)

	fmt.Fprintf(w, "# HELP passivityd_jobs_rejected_total Jobs rejected at admission.\n# TYPE passivityd_jobs_rejected_total counter\n")
	for _, reason := range sortedKeys(m.rejectedTotal) {
		fmt.Fprintf(w, "passivityd_jobs_rejected_total{reason=%q} %d\n", reason, m.rejectedTotal[reason])
	}

	fmt.Fprintf(w, "# HELP passivityd_affinity_hits_total Jobs placed on the worker already holding their pole-set fingerprint.\n# TYPE passivityd_affinity_hits_total counter\npassivityd_affinity_hits_total %d\n", m.affinityHits)
	fmt.Fprintf(w, "# HELP passivityd_affinity_misses_total Jobs placed by the least-loaded fallback.\n# TYPE passivityd_affinity_misses_total counter\npassivityd_affinity_misses_total %d\n", m.affinityMisses)
	ratio := 0.0
	if t := m.affinityHits + m.affinityMisses; t > 0 {
		ratio = float64(m.affinityHits) / float64(t)
	}
	fmt.Fprintf(w, "# HELP passivityd_affinity_hit_ratio Affinity hits over accepted jobs.\n# TYPE passivityd_affinity_hit_ratio gauge\npassivityd_affinity_hit_ratio %g\n", ratio)

	fmt.Fprintf(w, "# HELP passivityd_panics_total Worker panics recovered by job supervision.\n# TYPE passivityd_panics_total counter\npassivityd_panics_total %d\n", m.panicsTotal)
	fmt.Fprintf(w, "# HELP passivityd_worker_restarts_total Worker Sessions rebuilt fresh after a panic.\n# TYPE passivityd_worker_restarts_total counter\npassivityd_worker_restarts_total %d\n", m.restartsTotal)
	fmt.Fprintf(w, "# HELP passivityd_workers_retired_total Workers retired for exhausting their restart budget.\n# TYPE passivityd_workers_retired_total counter\npassivityd_workers_retired_total %d\n", m.retiredTotal)
	fmt.Fprintf(w, "# HELP passivityd_retries_total Job attempts re-run after a retryable failure.\n# TYPE passivityd_retries_total counter\npassivityd_retries_total %d\n", m.retriesTotal)
	fmt.Fprintf(w, "# HELP passivityd_requeued_total Jobs moved onto a different worker's queue.\n# TYPE passivityd_requeued_total counter\npassivityd_requeued_total %d\n", m.requeuedTotal)
	fmt.Fprintf(w, "# HELP passivityd_quarantined_caches_total Corrupt cache files quarantined at load.\n# TYPE passivityd_quarantined_caches_total counter\npassivityd_quarantined_caches_total %d\n", m.quarantinedTotal)

	fmt.Fprintf(w, "# HELP passivityd_jobs_completed_total Finished jobs by kind and status.\n# TYPE passivityd_jobs_completed_total counter\n")
	for _, k := range sortedKeys(m.completedTotal) {
		kind, status := k, ""
		for i := range k {
			if k[i] == '/' {
				kind, status = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "passivityd_jobs_completed_total{kind=%q,status=%q} %d\n", kind, status, m.completedTotal[k])
	}

	fmt.Fprintf(w, "# HELP passivityd_queue_wait_seconds_total Cumulative time jobs spent queued.\n# TYPE passivityd_queue_wait_seconds_total counter\npassivityd_queue_wait_seconds_total %g\n", m.queueWaitSec)
	fmt.Fprintf(w, "# HELP passivityd_queue_wait_count Jobs the wait total covers.\n# TYPE passivityd_queue_wait_count counter\npassivityd_queue_wait_count %d\n", m.queueWaitCount)

	fmt.Fprintf(w, "# HELP passivityd_service_seconds_total Cumulative worker time by job kind.\n# TYPE passivityd_service_seconds_total counter\n")
	for _, k := range sortedKeys(m.serviceSec) {
		fmt.Fprintf(w, "passivityd_service_seconds_total{kind=%q} %g\n", k, m.serviceSec[k])
	}
	fmt.Fprintf(w, "# HELP passivityd_service_count Jobs the service totals cover, by kind.\n# TYPE passivityd_service_count counter\n")
	for _, k := range sortedKeys(m.serviceCount) {
		fmt.Fprintf(w, "passivityd_service_count{kind=%q} %d\n", k, m.serviceCount[k])
	}

	fmt.Fprintf(w, "# HELP passivityd_stage_seconds_total Wall-clock charged to each progress stage.\n# TYPE passivityd_stage_seconds_total counter\n")
	for _, k := range sortedKeys(m.stageSec) {
		fmt.Fprintf(w, "passivityd_stage_seconds_total{stage=%q} %g\n", k, m.stageSec[k])
	}
	fmt.Fprintf(w, "# HELP passivityd_stage_events_total Progress events per stage.\n# TYPE passivityd_stage_events_total counter\n")
	for _, k := range sortedKeys(m.stageEvents) {
		fmt.Fprintf(w, "passivityd_stage_events_total{stage=%q} %d\n", k, m.stageEvents[k])
	}
	fmt.Fprintf(w, "# HELP passivityd_sigma_samples_total Sigma evaluations reported by progress events.\n# TYPE passivityd_sigma_samples_total counter\npassivityd_sigma_samples_total %d\n", m.sigmaTotal)
	fmt.Fprintf(w, "# HELP passivityd_counter_nodes_total Contour-quadrature determinant evaluations reported by certificate-stage events, by kernel backend.\n# TYPE passivityd_counter_nodes_total counter\n")
	for _, k := range sortedKeys(m.nodesTotal) {
		fmt.Fprintf(w, "passivityd_counter_nodes_total{backend=%q} %d\n", k, m.nodesTotal[k])
	}
	fmt.Fprintf(w, "# HELP passivityd_counter_declines_total Intervals certificate stages refused at their dimension gates.\n# TYPE passivityd_counter_declines_total counter\npassivityd_counter_declines_total %d\n", m.declinesTotal)

	fmt.Fprintf(w, "# HELP passivityd_worker_cache_bytes Estimated resident evaluation-cache bytes per worker Session.\n# TYPE passivityd_worker_cache_bytes gauge\n")
	workers := make([]int, 0, len(m.cache))
	for id := range m.cache {
		workers = append(workers, id)
	}
	sort.Ints(workers)
	for _, id := range workers {
		fmt.Fprintf(w, "passivityd_worker_cache_bytes{worker=\"%d\"} %d\n", id, m.cache[id].Bytes)
	}
	fmt.Fprintf(w, "# HELP passivityd_worker_cache_models Resident pole-set caches per worker Session.\n# TYPE passivityd_worker_cache_models gauge\n")
	for _, id := range workers {
		fmt.Fprintf(w, "passivityd_worker_cache_models{worker=\"%d\"} %d\n", id, m.cache[id].Models)
	}
}
