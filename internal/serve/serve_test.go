package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	repro "repro"
)

// variant builds a model sharing base's pole set exactly (same pole
// fingerprint) with residues scaled by a real factor — the shape of a
// parameter sweep: near-identical models over a fixed pole library.
func variant(t testing.TB, base *repro.Macromodel, scale float64) *repro.Macromodel {
	t.Helper()
	blob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var mj struct {
		R0       float64          `json:"r0"`
		Poles    [][2]float64     `json:"poles"`
		Residues [][][][2]float64 `json:"residues"`
		D        [][]float64      `json:"d"`
	}
	if err := json.Unmarshal(blob, &mj); err != nil {
		t.Fatal(err)
	}
	for _, rm := range mj.Residues {
		for i := range rm {
			for j := range rm[i] {
				rm[i][j][0] *= scale
				rm[i][j][1] *= scale
			}
		}
	}
	out, err := json.Marshal(mj)
	if err != nil {
		t.Fatal(err)
	}
	m := &repro.Macromodel{}
	if err := json.Unmarshal(out, m); err != nil {
		t.Fatal(err)
	}
	return m
}

// library builds nFP×variants models: nFP distinct pole sets, each with
// `variants` residue-scaled copies (the 64-model / 8-fingerprint sweep of
// the acceptance criteria is library(t, 8, 8, …)).
func library(t testing.TB, nFP, variants, poles int) []*repro.Macromodel {
	t.Helper()
	var out []*repro.Macromodel
	for f := 0; f < nFP; f++ {
		base, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 2, Poles: poles, Seed: 9000 + int64(f), PeakGain: 0.6,
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < variants; v++ {
			out = append(out, variant(t, base, 1+0.002*float64(v)))
		}
	}
	return out
}

// fastCheck keeps test jobs in the millisecond range.
var fastCheck = repro.CheckOptions{Method: repro.CheckSweep, SweepPoints: 80}

func drainOrFail(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestAffinityRouting submits the acceptance workload — a 64-model
// library sharing 8 pole fingerprints — and asserts the dispatcher turns
// it into warm-cache placements: hit rate ≥ 80% (only the 8 first-seen
// fingerprints may miss), every fingerprint pinned to one worker, and the
// /metrics endpoint exporting the same ratio.
func TestAffinityRouting(t *testing.T) {
	s, err := New(Options{Workers: 4, QueueDepth: 128, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	models := library(t, 8, 8, 16)
	chans := make([]<-chan *Result, len(models))
	for i, m := range models {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: m, Check: fastCheck})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	workerOf := make(map[uint64]int)
	for i, ch := range chans {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if w, seen := workerOf[res.Fingerprint]; seen && w != res.Worker {
			t.Errorf("fingerprint %016x served by workers %d and %d", res.Fingerprint, w, res.Worker)
		}
		workerOf[res.Fingerprint] = res.Worker
	}
	if len(workerOf) != 8 {
		t.Fatalf("saw %d fingerprints, want 8", len(workerOf))
	}
	if ratio := s.AffinityHitRatio(); ratio < 0.8 {
		t.Fatalf("affinity hit ratio %.3f < 0.8", ratio)
	}

	// The exported metrics agree.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	var ratio float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "passivityd_affinity_hit_ratio ") {
			fmt.Sscanf(line, "passivityd_affinity_hit_ratio %g", &ratio)
		}
	}
	if ratio < 0.8 {
		t.Fatalf("/metrics affinity hit ratio %g < 0.8\n%s", ratio, text)
	}
	for _, want := range []string{
		"passivityd_queue_depth",
		"passivityd_jobs_completed_total{kind=\"check\",status=\"ok\"} 64",
		"passivityd_stage_seconds_total{stage=\"check\"}",
		"passivityd_worker_cache_bytes{worker=\"0\"}",
		"passivityd_counter_declines_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	drainOrFail(t, s)
}

// TestQueueFullRejects exercises admission control: with one gated worker
// and QueueDepth 3, the fourth job is rejected — ErrQueueFull from
// Submit, HTTP 429 with a Retry-After hint from the handler — and the
// gated jobs still finish once released.
func TestQueueFullRejects(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 3, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	models := library(t, 1, 4, 12)
	var chans []<-chan *Result
	for i := 0; i < 3; i++ {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[i], Check: fastCheck})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}
	if _, err := s.Submit(&Job{Kind: JobCheck, Model: models[3], Check: fastCheck}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submit: %v, want ErrQueueFull", err)
	}

	// The HTTP surface maps it to 429.
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	body, _ := json.Marshal(&Request{Model: models[3]})
	resp, err := http.Post(hs.URL+"/v1/check", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var jr Response
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil || jr.Error == "" {
		t.Errorf("429 body: %+v, %v", jr, err)
	}

	close(gate)
	for i, ch := range chans {
		if res := <-ch; res.Err != nil {
			t.Fatalf("gated job %d failed: %v", i, res.Err)
		}
	}
	drainOrFail(t, s)
}

// TestDrainFinishesAcceptedJobs verifies the SIGTERM contract: a drain
// rejects new work, lets every accepted job finish and deliver its
// result, and persists the worker caches — from which a fresh server
// resumes affinity placement (warm restart).
func TestDrainFinishesAcceptedJobs(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	models := library(t, 2, 3, 12)
	var chans []<-chan *Result
	for i, m := range models {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: m, Check: fastCheck})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans = append(chans, ch)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Admission must stop as soon as the drain begins.
	for {
		_, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck})
		if errors.Is(err, ErrDraining) {
			break
		}
		if err != nil {
			t.Fatalf("pre-drain submit: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every accepted job (including the extras admitted in the loop
	// above) got a result; the ones we kept channels for are all clean.
	for i, ch := range chans {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("accepted job %d lost to drain: %v", i, res.Err)
			}
		default:
			t.Fatalf("accepted job %d has no result after drain", i)
		}
	}
	// Caches were persisted.
	saved, err := filepath.Glob(filepath.Join(dir, "worker-*", "cache-*"+repro.SessionCacheExt))
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) == 0 {
		t.Fatal("drain saved no cache files")
	}

	// A fresh server reloads them and resumes affinity placement: the
	// very first submit of a known pole set is already a hit.
	s2, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if quarantined, err := s2.LoadCaches(); err != nil || quarantined != 0 {
		t.Fatalf("reload: quarantined=%d err=%v", quarantined, err)
	}
	ch, err := s2.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-ch; res.Err != nil || !res.AffinityHit {
		t.Fatalf("warm restart: err=%v affinityHit=%v, want nil/true", res.Err, res.AffinityHit)
	}
	drainOrFail(t, s2)

	// The original server stays drained.
	if _, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck}); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitDrainRaceFullQueue races a Submit storm against Drain on a
// full queue: every Submit resolves to acceptance, ErrQueueFull or
// ErrDraining (never a hang, never a lost result), every accepted job
// still delivers, and the drain completes.
func TestSubmitDrainRaceFullQueue(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 4, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.runHook = func(ctx context.Context, j *Job) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	models := library(t, 1, 5, 12)
	var accepted []<-chan *Result
	for i := 0; i < 4; i++ {
		ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[i], Check: fastCheck})
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		accepted = append(accepted, ch)
	}

	extra := make(chan []<-chan *Result, 1)
	go func() {
		var won []<-chan *Result
		for {
			ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[4], Check: fastCheck})
			switch {
			case err == nil:
				won = append(won, ch)
			case errors.Is(err, ErrQueueFull):
				// expected while the queue is full
			case errors.Is(err, ErrDraining):
				extra <- won
				return
			default:
				t.Errorf("unexpected submit error: %v", err)
				extra <- won
				return
			}
		}
	}()

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	time.Sleep(5 * time.Millisecond) // let the storm collide with the drain
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, ch := range append(accepted, <-extra...) {
		select {
		case res := <-ch:
			if res.Err != nil {
				t.Fatalf("accepted job %d: %v", i, res.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("accepted job %d never delivered", i)
		}
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d after drain, want 0", d)
	}
}

// TestAbandonedResultChannel: a caller that walks away from its result
// channel costs nothing — the buffered delivery never blocks the worker,
// the admission slot is returned, and the server keeps serving.
func TestAbandonedResultChannel(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 2, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	models := library(t, 1, 3, 12)
	// Abandon two results — as many as the whole queue holds.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(&Job{Kind: JobCheck, Model: models[i], Check: fastCheck}); err != nil {
			t.Fatalf("abandoned submit %d: %v", i, err)
		}
	}
	// The slots come back without anyone reading those channels.
	deadline := time.Now().Add(10 * time.Second)
	for s.QueueDepth() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth stuck at %d with abandoned callers", s.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[2], Check: fastCheck})
	if err != nil {
		t.Fatalf("submit after abandonment: %v", err)
	}
	if res := <-ch; res.Err != nil {
		t.Fatal(res.Err)
	}
	drainOrFail(t, s)
}

// TestDrainZeroAccepted: draining an idle server completes immediately,
// saves nothing, and stays drained.
func TestDrainZeroAccepted(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 4, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("idle drain took %v", d)
	}
	if err := s.Drain(ctx); err == nil {
		t.Fatal("second drain must report already draining")
	}
	models := library(t, 1, 1, 12)
	if _, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after idle drain: %v, want ErrDraining", err)
	}
}

// TestJobDeadline verifies per-job deadlines map to context cancellation:
// a wedged job is cut at its deadline and surfaces
// context.DeadlineExceeded (HTTP 504 on the wire).
func TestJobDeadline(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 4, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	s.runHook = func(ctx context.Context, j *Job) error {
		<-ctx.Done() // simulate a job that only stops when cancelled
		return ctx.Err()
	}
	models := library(t, 1, 1, 12)
	ch, err := s.Submit(&Job{Kind: JobCheck, Model: models[0], Check: fastCheck, Deadline: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", res.Err)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	body, _ := json.Marshal(&Request{Model: models[0], DeadlineMS: 30})
	resp, err := http.Post(hs.URL+"/v1/check", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	drainOrFail(t, s)
}

// TestHTTPEndpoints covers the wire protocol end to end: check and
// enforce round trips (the enforce response carries the enforced model,
// which must verify passive locally), malformed requests, and healthz.
func TestHTTPEndpoints(t *testing.T) {
	s, err := New(Options{Workers: 2, QueueDepth: 16, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	post := func(endpoint string, req *Request) (*Response, int) {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(hs.URL+endpoint, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var jr Response
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("%s: decode: %v", endpoint, err)
		}
		return &jr, resp.StatusCode
	}

	// A violating model: check finds it non-passive, enforce repairs it.
	bad, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
		Ports: 2, Poles: 16, Seed: 42, PeakGain: 1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	jr, code := post("/v1/check", &Request{Model: bad, Check: CheckSpec{Method: "sweep", SweepPoints: 400}})
	if code != http.StatusOK {
		t.Fatalf("check: HTTP %d (%s)", code, jr.Error)
	}
	wantFP := fmt.Sprintf("%016x", repro.PoleFingerprint(bad))
	if jr.Fingerprint != wantFP {
		t.Errorf("fingerprint %s, want %s", jr.Fingerprint, wantFP)
	}
	if jr.Report == nil || jr.Report.Passive {
		t.Fatalf("check of violating model: %+v", jr.Report)
	}

	jr, code = post("/v1/enforce", &Request{
		Model: bad, Check: CheckSpec{Method: "sweep", SweepPoints: 400},
		Enforce: EnforceSpec{ClampD: true},
	})
	if code != http.StatusOK {
		t.Fatalf("enforce: HTTP %d (%s)", code, jr.Error)
	}
	if jr.Enforce == nil || jr.Report == nil || !jr.Report.Passive || jr.Model == nil {
		t.Fatalf("enforce response incomplete: enforce=%v report=%v model=%v", jr.Enforce, jr.Report, jr.Model)
	}
	// The returned model is genuinely enforced, not an echo.
	rep, err := repro.CheckPassivity(jr.Model, repro.CheckOptions{Method: repro.CheckSweep, SweepPoints: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("returned model fails a local re-check: σmax=%v", rep.MaxSigma)
	}

	// Protocol errors.
	if _, code := post("/v1/check", &Request{}); code != http.StatusBadRequest {
		t.Errorf("no model: HTTP %d, want 400", code)
	}
	if _, code := post("/v1/check", &Request{Model: bad, Check: CheckSpec{Method: "nope"}}); code != http.StatusBadRequest {
		t.Errorf("bad method: HTTP %d, want 400", code)
	}
	resp, err := http.Post(hs.URL+"/v1/check", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("truncated JSON: HTTP %d, want 400", resp.StatusCode)
	}
	if resp, err = http.Get(hs.URL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	drainOrFail(t, s)
}
