package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	repro "repro"
)

// maxRequestBytes bounds a request body (a macromodel JSON grows with
// poles × ports², and untrusted payloads must not exhaust memory).
const maxRequestBytes = 64 << 20

// CheckSpec is the wire form of the passivity-check options a job carries
// (a stable subset of repro.CheckOptions).
type CheckSpec struct {
	// Method names the detection algorithm: "", "auto", "hamiltonian",
	// "sweep" or "adaptive".
	Method string `json:"method,omitempty"`
	// SweepPoints sets the fixed sweep's grid density (0 = default).
	SweepPoints int `json:"sweep_points,omitempty"`
	// FreqMinHz/FreqMaxHz bound the checked band (0 = derive from poles).
	FreqMinHz float64 `json:"freq_min_hz,omitempty"`
	// FreqMaxHz is the upper band edge in Hz.
	FreqMaxHz float64 `json:"freq_max_hz,omitempty"`
	// Certify escalates passive verdicts through the certification
	// pipeline.
	Certify bool `json:"certify,omitempty"`
}

// EnforceSpec is the wire form of the enforcement options (a stable
// subset of repro.EnforceOptions; the check side rides in CheckSpec).
type EnforceSpec struct {
	// MaxIterations bounds the perturbation loop (0 = default).
	MaxIterations int `json:"max_iterations,omitempty"`
	// Margin pushes constrained singular values to 1 − Margin.
	Margin float64 `json:"margin,omitempty"`
	// ClampD permits the one-time D singular-value clip.
	ClampD bool `json:"clamp_d,omitempty"`
	// Certify requires an interval certificate before the loop exits.
	Certify bool `json:"certify,omitempty"`
}

// Request is the JSON body of POST /v1/check and POST /v1/enforce.
type Request struct {
	// Model is the macromodel to process (the repro.Macromodel JSON
	// schema, as written by SaveFile).
	Model *repro.Macromodel `json:"model"`
	// Check tunes the passivity check of either job kind.
	Check CheckSpec `json:"check"`
	// Enforce tunes the enforcement loop (/v1/enforce only).
	Enforce EnforceSpec `json:"enforce"`
	// DeadlineMS bounds the job's running wall-clock in milliseconds
	// (0 = server default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MaxAttempts bounds the job's server-side attempts; retryable
	// failures (worker panics, transient errors) re-run the job on a
	// different worker up to this total (0 = server default).
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// Response is the JSON body answering both job endpoints.
type Response struct {
	// Worker is the worker index that served the job; AffinityHit reports
	// a warm-cache placement; Fingerprint is the model's pole-set
	// fingerprint in hex.
	Worker int `json:"worker"`
	// AffinityHit reports that the job landed on the worker already
	// associated with its fingerprint.
	AffinityHit bool `json:"affinity_hit"`
	// Fingerprint is the pole-set fingerprint, %016x.
	Fingerprint string `json:"fingerprint"`
	// QueueWaitMS and ServiceMS split the job's latency into queueing and
	// service time.
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// ServiceMS is the worker execution time in milliseconds.
	ServiceMS float64 `json:"service_ms"`
	// Report is the passivity report of the (final) model.
	Report *repro.PassivityReport `json:"report,omitempty"`
	// Enforce is the enforcement report (/v1/enforce).
	Enforce *repro.EnforceReport `json:"enforce,omitempty"`
	// Model is the enforced model (/v1/enforce).
	Model *repro.Macromodel `json:"model,omitempty"`
	// Attempts counts how many times the job ran (1 = no retries).
	Attempts int `json:"attempts,omitempty"`
	// LastError is the most recent failed attempt's error when the
	// delivered outcome came from a retry.
	LastError string `json:"last_error,omitempty"`
	// Error carries the job failure on non-2xx statuses.
	Error string `json:"error,omitempty"`
}

// ParseCheckMethod maps the wire method names to repro.CheckMethod.
func ParseCheckMethod(name string) (repro.CheckMethod, error) {
	switch name {
	case "", "auto":
		return repro.CheckAuto, nil
	case "hamiltonian":
		return repro.CheckHamiltonian, nil
	case "sweep":
		return repro.CheckSweep, nil
	case "adaptive":
		return repro.CheckAdaptive, nil
	}
	return repro.CheckAuto, fmt.Errorf("unknown check method %q (want auto, hamiltonian, sweep or adaptive)", name)
}

// CheckOptions converts the wire spec to library options.
func (c CheckSpec) CheckOptions() (repro.CheckOptions, error) {
	m, err := ParseCheckMethod(c.Method)
	if err != nil {
		return repro.CheckOptions{}, err
	}
	return repro.CheckOptions{
		Method:      m,
		SweepPoints: c.SweepPoints,
		FreqMin:     c.FreqMinHz,
		FreqMax:     c.FreqMaxHz,
		Certify:     c.Certify,
	}, nil
}

// EnforceOptions converts the wire spec to library options (Check is
// filled by the job's CheckSpec).
func (e EnforceSpec) EnforceOptions() repro.EnforceOptions {
	return repro.EnforceOptions{
		MaxIterations: e.MaxIterations,
		Margin:        e.Margin,
		ClampD:        e.ClampD,
		Certify:       e.Certify,
	}
}

// Handler returns the server's HTTP interface:
//
//	POST /v1/check    submit a check job, wait, return its Response
//	POST /v1/enforce  submit an enforce job (response carries the model)
//	GET  /metrics     Prometheus text-format metrics
//	GET  /healthz     liveness (200 "ok", 503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", func(w http.ResponseWriter, r *http.Request) {
		s.handleJob(w, r, JobCheck)
	})
	mux.HandleFunc("/v1/enforce", func(w http.ResponseWriter, r *http.Request) {
		s.handleJob(w, r, JobEnforce)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		switch {
		case draining:
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case !s.Ready():
			// Not ready ≠ not alive: startup cache loading (and its
			// quarantine scan) is still running, so a fleet LB should not
			// route here yet — every job would start cold.
			http.Error(w, "loading", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	return mux
}

// ParseRetryAfter reads a Retry-After header value in either RFC 9110
// form — delta-seconds or an HTTP-date — returning how long the sender
// asked the client to wait (0 when absent, unparseable, or already in
// the past). Both passcheck's remote client and the cluster worker agent
// feed it into their backoff, so a daemon hinting with a date is honored
// the same as one hinting with seconds.
func ParseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// writeJSON emits one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	// Marshal before touching the header: an encoding failure after
	// WriteHeader(200) would truncate the body mid-stream and surface at
	// the client as an opaque EOF instead of an error it can report.
	body, err := json.Marshal(v)
	if err != nil {
		body, _ = json.Marshal(Response{Error: "encoding response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// handleJob decodes a Request, submits it and waits for the Result.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, kind JobKind) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "decoding request: " + err.Error()})
		return
	}
	if req.Model == nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: "request carries no model"})
		return
	}
	chk, err := req.Check.CheckOptions()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	job := &Job{
		Kind:        kind,
		Model:       req.Model,
		Check:       chk,
		Enforce:     req.Enforce.EnforceOptions(),
		Deadline:    time.Duration(req.DeadlineMS) * time.Millisecond,
		MaxAttempts: req.MaxAttempts,
	}
	ch, err := s.Submit(job)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, Response{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNoWorkers):
		writeJSON(w, http.StatusServiceUnavailable, Response{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, Response{Error: err.Error()})
		return
	}
	// The worker always delivers (the channel is buffered), so waiting
	// here cannot leak even if the client has gone away.
	resp, status := ResponseStatus(<-ch)
	writeJSON(w, status, resp)
}

// ResponseStatus converts a finished job's Result into the wire Response
// and the HTTP status it travels under — the single mapping both the
// local HTTP handler and a cluster worker agent reporting to its
// coordinator use, so a job fails identically whichever path served it.
func ResponseStatus(res *Result) (Response, int) {
	resp := Response{
		Worker:      res.Worker,
		AffinityHit: res.AffinityHit,
		Fingerprint: fmt.Sprintf("%016x", res.Fingerprint),
		QueueWaitMS: float64(res.QueueWait) / float64(time.Millisecond),
		ServiceMS:   float64(res.Service) / float64(time.Millisecond),
		Report:      res.Report,
		Enforce:     res.Enforce,
		Model:       res.Model,
		Attempts:    res.Attempts,
	}
	if res.LastErr != nil {
		resp.LastError = res.LastErr.Error()
	}
	switch {
	case errors.Is(res.Err, context.DeadlineExceeded):
		resp.Error = "job deadline exceeded"
		return resp, http.StatusGatewayTimeout
	case errors.Is(res.Err, context.Canceled):
		resp.Error = "job cancelled by server shutdown"
		return resp, http.StatusServiceUnavailable
	case res.Err != nil:
		resp.Error = res.Err.Error()
		return resp, http.StatusInternalServerError
	}
	return resp, http.StatusOK
}
