package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestCounterMetricsBackendLabels checks the per-backend node accounting
// and the dimension-gate decline counter behind
// passivityd_counter_nodes_total{backend=...} and
// passivityd_counter_declines_total.
func TestCounterMetricsBackendLabels(t *testing.T) {
	m := newMetrics()
	m.stage("certificate-stage/contour-counter", time.Millisecond, 3, 120, "structured", 0)
	m.stage("certificate-stage/contour-counter", time.Millisecond, 1, 45, "dense", 0)
	m.stage("certificate-stage/contour-counter", time.Millisecond, 0, 0, "structured", 2)
	m.stage("certificate-stage/contour-counter", time.Millisecond, 0, 7, "", 0)
	if got := m.nodesTotal["structured"]; got != 120 {
		t.Errorf("structured nodes = %d, want 120", got)
	}
	if got := m.nodesTotal["dense"]; got != 45 {
		t.Errorf("dense nodes = %d, want 45", got)
	}
	if got := m.nodesTotal["unlabelled"]; got != 7 {
		t.Errorf("unlabelled nodes = %d, want 7", got)
	}
	if m.declinesTotal != 2 {
		t.Errorf("declines = %d, want 2", m.declinesTotal)
	}
}

// TestWriteJSONEncodeFailure pins the header-ordering contract of
// writeJSON: a value the encoder rejects (here a bare IEEE infinity) must
// come back as a clean 500 with a decodable error body, not a 200 whose
// body truncated mid-stream.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]float64{"x": math.Inf(1)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	var resp Response
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("error body not decodable: %v (%q)", err, rec.Body.String())
	}
	if resp.Error == "" {
		t.Fatalf("error body carries no message: %q", rec.Body.String())
	}
}
