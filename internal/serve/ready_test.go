package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestHealthzReadiness exercises the /healthz readiness protocol: a
// loading server answers 503 "loading" (alive, not routable), flips to
// 200 once ready, and reports "draining" during shutdown.
func TestHealthzReadiness(t *testing.T) {
	s, err := New(Options{Workers: 1, QueueDepth: 4, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	if !s.Ready() {
		t.Fatal("a fresh server must be born ready")
	}
	if code, body := get(); code != http.StatusOK || body != "ok" {
		t.Fatalf("ready /healthz = %d %q, want 200 ok", code, body)
	}

	// Startup cache loading in progress: alive but not routable.
	s.SetReady(false)
	if code, body := get(); code != http.StatusServiceUnavailable || body != "loading" {
		t.Fatalf("loading /healthz = %d %q, want 503 loading", code, body)
	}
	// Jobs are still accepted while loading — readiness gates routing, not
	// admission.
	if _, err := s.Submit(&Job{Kind: JobCheck, Model: library(t, 1, 1, 12)[0], Check: fastCheck}); err != nil {
		t.Fatalf("submit while loading: %v", err)
	}

	s.SetReady(true)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("reloaded /healthz = %d, want 200", code)
	}

	drainOrFail(t, s)
	if code, body := get(); code != http.StatusServiceUnavailable || body != "draining" {
		t.Fatalf("draining /healthz = %d %q, want 503 draining", code, body)
	}
}
