package serve

import (
	"context"
	"os"
	"sync"
	"time"
)

// FaultPlan is a deterministic fault-injection schedule for tests. It
// extends the runHook seam: installed with Server.InjectFaults, its hook
// runs at the start of every job attempt, numbers the attempt — globally
// and per worker, each counter 1-based in execution order — and fires
// whatever fault is registered for that number: a panic (exercising
// worker supervision), a transient or permanent error (exercising
// retry), or added latency (exercising deadlines and drain windows).
// Because faults key on attempt numbers rather than wall clock, a chaos
// test decides exactly which attempt dies regardless of scheduling, and
// the same plan replays identically under -race.
//
// The zero value is an empty plan; chain the registration methods:
//
//	s.InjectFaults(new(FaultPlan).
//		PanicOnWorker(0, 1, "boom").   // worker 0's first attempt panics
//		FailOn(5, Transient(errFlaky)). // 5th attempt overall fails retryably
//		DelayOn(7, 50*time.Millisecond))
type FaultPlan struct {
	mu        sync.Mutex
	global    map[int64]faultSpec
	perWorker map[int]map[int64]faultSpec
	globalSeq int64
	workerSeq map[int]int64
}

// faultSpec is one registered fault. Latency applies first, then panic,
// then error — a single spec can combine them.
type faultSpec struct {
	latency    time.Duration
	panicValue any
	doPanic    bool
	err        error
}

func (p *FaultPlan) globalSpec(n int64) *faultSpec {
	if p.global == nil {
		p.global = make(map[int64]faultSpec)
	}
	s := p.global[n]
	return &s
}

func (p *FaultPlan) setGlobal(n int64, f func(*faultSpec)) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.globalSpec(n)
	f(s)
	p.global[n] = *s
	return p
}

func (p *FaultPlan) setWorker(worker int, n int64, f func(*faultSpec)) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.perWorker == nil {
		p.perWorker = make(map[int]map[int64]faultSpec)
	}
	if p.perWorker[worker] == nil {
		p.perWorker[worker] = make(map[int64]faultSpec)
	}
	s := p.perWorker[worker][n]
	f(&s)
	p.perWorker[worker][n] = s
	return p
}

// PanicOn makes the nth attempt overall (1-based) panic with value.
func (p *FaultPlan) PanicOn(n int64, value any) *FaultPlan {
	return p.setGlobal(n, func(s *faultSpec) { s.doPanic, s.panicValue = true, value })
}

// PanicOnWorker makes the nth attempt run by the given worker panic.
func (p *FaultPlan) PanicOnWorker(worker int, n int64, value any) *FaultPlan {
	return p.setWorker(worker, n, func(s *faultSpec) { s.doPanic, s.panicValue = true, value })
}

// FailOn makes the nth attempt overall fail with err (wrap with
// Transient to make it retryable).
func (p *FaultPlan) FailOn(n int64, err error) *FaultPlan {
	return p.setGlobal(n, func(s *faultSpec) { s.err = err })
}

// FailOnWorker makes the nth attempt run by the given worker fail.
func (p *FaultPlan) FailOnWorker(worker int, n int64, err error) *FaultPlan {
	return p.setWorker(worker, n, func(s *faultSpec) { s.err = err })
}

// DelayOn stalls the nth attempt overall by d (cut short by the job's
// deadline context, which then fails the attempt with the ctx error).
func (p *FaultPlan) DelayOn(n int64, d time.Duration) *FaultPlan {
	return p.setGlobal(n, func(s *faultSpec) { s.latency = d })
}

// DelayOnWorker stalls the nth attempt run by the given worker.
func (p *FaultPlan) DelayOnWorker(worker int, n int64, d time.Duration) *FaultPlan {
	return p.setWorker(worker, n, func(s *faultSpec) { s.latency = d })
}

// Attempts reports how many attempts the plan has numbered so far.
func (p *FaultPlan) Attempts() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.globalSeq
}

// hook is installed as the server's runHook. A worker-specific fault
// wins over a global one for the same attempt.
func (p *FaultPlan) hook(ctx context.Context, j *Job) error {
	p.mu.Lock()
	p.globalSeq++
	if p.workerSeq == nil {
		p.workerSeq = make(map[int]int64)
	}
	p.workerSeq[j.worker]++
	spec, ok := p.perWorker[j.worker][p.workerSeq[j.worker]]
	if !ok {
		spec, ok = p.global[p.globalSeq]
	}
	p.mu.Unlock()
	if !ok {
		return nil
	}
	if spec.latency > 0 {
		select {
		case <-time.After(spec.latency):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if spec.doPanic {
		panic(spec.panicValue)
	}
	return spec.err
}

// InjectFaults installs the plan on the server's runHook seam. Call
// before submitting jobs; passing nil clears injection. Test-only — the
// production daemon never installs a plan.
func (s *Server) InjectFaults(p *FaultPlan) {
	if p == nil {
		s.runHook = nil
		return
	}
	s.runHook = p.hook
}

// CorruptCacheFile flips one byte in the middle of a saved cache file so
// its checksum footer no longer matches — the deterministic stand-in for
// a torn write or disk corruption between save and load. The load path
// must quarantine the file rather than fail.
func CorruptCacheFile(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	blob[len(blob)/2] ^= 0xff
	return os.WriteFile(path, blob, 0o644)
}
