package serve

import (
	"context"
	"testing"
	"time"

	repro "repro"
)

// BenchmarkAffinityRouting measures what pole-fingerprint affinity buys
// over random placement on the acceptance workload: a 64-model library
// sharing 8 pole fingerprints (8 residue variants each — a parameter
// sweep), re-checked every round across 4 workers, the monitoring pattern
// passivityd exists for. Per-worker session cache budgets hold ~2
// pole-set caches, the service-realistic setting (a budget always exists;
// 8 fingerprints ÷ 4 workers = 2 per worker). Affinity keeps each
// worker's share of the fingerprints resident, so after the warm-up sweep
// every check is served from its variant's stashed σ layer; random
// placement spreads all 8 fingerprints over every worker and thrashes the
// LRU, so most checks run cold. One op = one full 64-model sweep after a
// shared warm-up sweep; the reported hit-ratio is the dispatcher's
// affinity rate (0 by construction for the random arm). BENCH_6.json
// tracks the wall-clock ratio (acceptance: affinity ≥ 1.5× lower) and the
// hit rate (≥ 80%).
func BenchmarkAffinityRouting(b *testing.B) {
	const (
		nFP      = 8
		variants = 8
		workers  = 4
	)
	var models []*repro.Macromodel
	for f := 0; f < nFP; f++ {
		base, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 4, Poles: 60, Seed: 4200 + int64(f), PeakGain: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < variants; v++ {
			models = append(models, variant(b, base, 1+0.002*float64(v)))
		}
	}
	chk := repro.CheckOptions{Method: repro.CheckAdaptive}

	// Size the per-worker budget off a probe sweep of the whole library:
	// 40% of the full steady-state footprint (basis unions plus every
	// variant's stashed σ layer) accommodates any worker's 2-of-8
	// fingerprint share under affinity — per-fingerprint footprints vary,
	// so sizing off one fingerprint starves workers that draw heavy ones —
	// while a randomly routed worker, which eventually needs all 8
	// resident, keeps thrashing its LRU.
	probe := repro.NewSession()
	for _, m := range models {
		if _, err := probe.Check(context.Background(), m, chk); err != nil {
			b.Fatal(err)
		}
	}
	budget := probe.CacheStats().Bytes * 2 / 5

	for _, arm := range []struct {
		name    string
		routing RoutingPolicy
	}{
		{"affinity", RouteAffinity},
		{"random", RouteRandom},
	} {
		b.Run(arm.name, func(b *testing.B) {
			s, err := New(Options{
				Workers:         workers,
				QueueDepth:      len(models) * 2,
				DefaultDeadline: time.Minute,
				CacheBudget:     budget,
				Routing:         arm.routing,
				Seed:            7,
			})
			if err != nil {
				b.Fatal(err)
			}
			sweep := func() {
				chans := make([]<-chan *Result, len(models))
				for i, m := range models {
					ch, err := s.Submit(&Job{Kind: JobCheck, Model: m, Check: chk})
					if err != nil {
						b.Fatal(err)
					}
					chans[i] = ch
				}
				for i, ch := range chans {
					if res := <-ch; res.Err != nil {
						b.Fatalf("job %d: %v", i, res.Err)
					}
				}
			}
			sweep() // warm-up: both arms get one sweep of cache population
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep()
			}
			b.StopTimer()
			b.ReportMetric(s.AffinityHitRatio(), "hit-ratio")
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				b.Fatal(err)
			}
		})
	}
}
