package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// Worker supervision and job retry.
//
// The failure model: anything under a worker's job — the Session call,
// a progress sink, a fault hook — may panic, and the service must keep
// its contract anyway (every accepted job receives exactly one Result,
// Drain completes, the admission counter never leaks). Each attempt
// therefore runs behind a recover that converts the panic into a typed
// *PanicError; the panicking worker's Session is retired on the spot —
// a panic mid-check can leave a checked-out cache half-mutated, so the
// old Session is never trusted again — and rebuilt fresh, up to
// Options.MaxWorkerRestarts times. Beyond the bound the worker itself is
// retired: the dispatcher stops routing to it and its goroutine turns
// into a forwarder that hands anything still queued on its channel to
// the surviving workers.
//
// Jobs that die with a worker, or fail with an error marked Transient,
// are requeued onto a different live worker (the same one only when no
// other exists) until Job.MaxAttempts runs out. Enforce retries restart
// from a pristine copy of the model, never from the half-perturbed one
// the failed attempt left behind.

// ErrWorkerPanic marks a job attempt that died with a panicking worker.
// Match with errors.Is; the concrete error is a *PanicError carrying the
// recovered value and stack.
var ErrWorkerPanic = errors.New("serve: worker panicked")

// ErrNoWorkers rejects a Submit because every worker exhausted its
// restart budget and was retired (HTTP 503).
var ErrNoWorkers = errors.New("serve: every worker retired")

// PanicError is the typed error a job fails with when the worker running
// it panics. It matches ErrWorkerPanic under errors.Is.
type PanicError struct {
	// Worker is the index of the worker that panicked.
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error formats the panic without the stack (the stack rides along for
// logs and tests that want it).
func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: worker %d panicked: %v", e.Worker, e.Value)
}

// Is matches ErrWorkerPanic so callers can classify without the type.
func (e *PanicError) Is(target error) bool { return target == ErrWorkerPanic }

// Transient wraps err so the retry machinery treats a failed attempt as
// retryable. Fault hooks and future transport layers mark recoverable
// failures this way; ordinary job errors (a model the solver rejects, a
// deadline expiry) are not retried.
func Transient(err error) error { return &transientError{err} }

type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// IsTransient reports whether err (or anything it wraps) was marked by
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// retryable reports whether a failed attempt may run again: worker
// panics and explicitly transient errors, nothing else. Deadline expiry
// and cancellation are deliberate outcomes, not faults.
func retryable(err error) bool {
	return errors.Is(err, ErrWorkerPanic) || IsTransient(err)
}

// process owns one accepted job from pickup to its single Result
// delivery, looping over attempts that stay on this worker and handing
// off the ones that requeue elsewhere.
func (w *worker) process(j *Job) {
	for {
		if w.dead.Load() {
			// A retired worker no longer runs jobs: forward to a live
			// peer, or fail the job if nobody can take it (all workers
			// dead, or the drain already closed the queues).
			if w.srv.requeue(j, w) {
				return
			}
			w.deliver(j, &Result{
				Worker:      w.id,
				AffinityHit: j.affinityHit,
				Fingerprint: j.fp,
				LastErr:     j.lastErr,
				Err:         fmt.Errorf("serve: worker %d retired after repeated panics: %w", w.id, ErrWorkerPanic),
			})
			return
		}
		res := w.run(j)
		if pe := (*PanicError)(nil); errors.As(res.Err, &pe) {
			w.srv.met.panicked()
			w.retire()
		}
		if res.Err == nil || !retryable(res.Err) || j.attempts >= j.maxAttempts {
			w.deliver(j, res)
			return
		}
		j.lastErr = res.Err
		if w.srv.requeue(j, w) {
			return // another worker owns the next attempt
		}
		// No other live worker can take it: retry here. If this worker
		// just retired, the next loop iteration fails the job instead.
	}
}

// deliver hands the job its Result and settles the admission accounting.
// It runs exactly once per accepted job, so the queued counter and the
// per-worker pending load can never leak — not even when every attempt
// panicked.
func (w *worker) deliver(j *Job, res *Result) {
	res.Attempts = j.attempts
	j.result <- res // buffered: never blocks on a departed caller
	w.pending.Add(-1)
	s := w.srv
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
	s.met.finished(j.Kind, res)
}

// retire replaces the worker's Session after a panic — the old one may
// hold a cache in an inconsistent state and is never reused — and, once
// the restart budget is spent, retires the worker itself. Either way the
// dispatcher's placements onto this worker are scrubbed: the caches they
// pointed at are gone.
func (w *worker) retire() {
	s := w.srv
	s.mu.Lock()
	s.scrubAffinityLocked(w.id)
	w.restarts++
	died := w.restarts > s.opts.MaxWorkerRestarts
	if died && !w.dead.Load() {
		w.dead.Store(true)
		s.deadWorkers++
	}
	// The fresh Session keeps even a retired worker safe to probe
	// (HasCache, cache stats) and costs nothing until used.
	w.sess = s.newWorkerSession(w)
	s.mu.Unlock()
	if died {
		s.met.workerRetired()
	} else {
		s.met.workerRestarted()
	}
}

// scrubAffinityLocked drops every placement pointing at the worker.
// Callers hold s.mu.
func (s *Server) scrubAffinityLocked(workerID int) {
	for fp, id := range s.affinity {
		if id == workerID {
			delete(s.affinity, fp)
		}
	}
}

// requeue moves an accepted job onto a different live worker's queue,
// preferring the least loaded, and re-records the job's affinity
// placement so queued siblings follow it. It returns false when no other
// live worker exists or the server is draining (the queues are closed);
// the caller then retries in place or fails the job. The job stays
// accepted throughout: the admission counter is untouched and the
// channel send cannot block (each accepted job occupies at most one
// queue slot, and admission bounds accepted jobs by QueueDepth — every
// worker's buffer size).
func (s *Server) requeue(j *Job, from *worker) bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return false
	}
	var best *worker
	for _, w := range s.workers {
		if w == from || w.dead.Load() {
			continue
		}
		if best == nil || w.pending.Load() < best.pending.Load() {
			best = w
		}
	}
	if best == nil {
		s.mu.Unlock()
		return false
	}
	if s.opts.Routing == RouteAffinity {
		s.affinity[j.fp] = best.id
	}
	j.worker = best.id
	from.pending.Add(-1)
	best.pending.Add(1)
	best.jobs <- j
	s.mu.Unlock()
	s.met.requeued()
	return true
}

// runAttempt executes one attempt behind panic isolation: a panic
// anywhere under the job — fault hook or Session call — becomes a typed
// *PanicError on the Result instead of killing the worker goroutine.
func (w *worker) runAttempt(ctx0 context.Context, j *Job, res *Result) {
	defer func() {
		if v := recover(); v != nil {
			res.Err = &PanicError{Worker: w.id, Value: v, Stack: debug.Stack()}
		}
	}()
	if hook := w.srv.runHook; hook != nil {
		res.Err = hook(ctx0, j)
	}
	if res.Err != nil {
		return
	}
	switch j.Kind {
	case JobCheck:
		res.Report, res.Err = w.sess.Check(ctx0, j.Model, j.Check)
	case JobEnforce:
		eopts := j.Enforce
		eopts.Check = j.Check
		res.Enforce, res.Err = w.sess.Enforce(ctx0, j.Model, eopts)
		if res.Enforce != nil {
			res.Report = res.Enforce.Final
			res.Model = j.Model
		}
	default:
		res.Err = fmt.Errorf("serve: unknown job kind %d", j.Kind)
	}
}
