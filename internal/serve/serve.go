// Package serve implements passivityd: a long-running passivity-enforcement
// service wrapping a pool of long-lived repro.Session workers behind an
// HTTP/JSON interface.
//
// The scheduling idea is pole-fingerprint cache affinity. A Session's
// evaluation caches are keyed by the FNV-1a fingerprint of a model's pole
// set (repro.PoleFingerprint), and a warm cache makes repeated checks of
// models sharing that pole set several times cheaper than cold ones. The
// dispatcher therefore steers every submitted job to the worker whose
// Session already holds the job's fingerprint — consulting first its own
// placement map (so queued jobs for one fingerprint pile onto one worker)
// and then the workers' live caches via Session.HasCache (so affinity
// survives process restarts through persisted cache files) — and falls
// back to the least-loaded worker for fingerprints nobody has seen. On
// library and parameter sweeps, where thousands of near-identical models
// share a handful of pole sets, warm-cache hits dominate.
//
// The queue is bounded with admission control: a Submit beyond QueueDepth
// accepted-but-unfinished jobs fails with ErrQueueFull (HTTP 429), and a
// draining server fails with ErrDraining (HTTP 503). Every job carries a
// deadline mapped to context cancellation through the Session plumbing, so
// a stuck check cannot wedge a worker. Drain stops admission, lets the
// accepted jobs finish (cancelling them only if the drain context expires)
// and saves every worker's caches, so a SIGTERM loses no accepted work and
// the next process starts warm.
//
// The server is fault-tolerant (see supervise.go): every job attempt
// runs behind panic isolation, a panicking worker's Session is retired
// and rebuilt fresh (bounded by MaxWorkerRestarts, after which the
// worker itself retires and the pool absorbs its load), and jobs that
// die with a worker or fail with a Transient error are requeued onto a
// different worker up to Job.MaxAttempts — enforce retries restarting
// from a pristine model copy. Persisted cache files carry a checksum
// footer; LoadCaches quarantines corrupt ones instead of failing. The
// deterministic FaultPlan harness (fault.go) drives all of this from
// tests.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	repro "repro"
)

// Errors reported by Submit (mapped to HTTP statuses by the handler).
var (
	// ErrQueueFull rejects a job because QueueDepth jobs are already
	// accepted and unfinished (HTTP 429).
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects a job because the server is shutting down
	// (HTTP 503).
	ErrDraining = errors.New("serve: server draining")
)

// RoutingPolicy selects how the dispatcher places jobs on workers.
type RoutingPolicy int

const (
	// RouteAffinity (the default) steers each job to the worker whose
	// Session holds the job's pole-set fingerprint, falling back to the
	// least-loaded worker for unseen fingerprints.
	RouteAffinity RoutingPolicy = iota
	// RouteRandom places every job on a uniformly random worker. It is the
	// control arm of BenchmarkAffinityRouting and deliberately ignores
	// cache residency; production servers want RouteAffinity.
	RouteRandom
)

// Options configures New.
type Options struct {
	// Workers is the number of long-lived Session workers (default:
	// GOMAXPROCS, capped at 8 — each worker parallelizes internally).
	Workers int
	// QueueDepth bounds the accepted-but-unfinished jobs across the whole
	// server; Submit beyond it returns ErrQueueFull (default 64).
	QueueDepth int
	// DefaultDeadline applies to jobs that do not carry their own
	// (default 60s).
	DefaultDeadline time.Duration
	// WorkerParallelism is the intra-check goroutine budget of each
	// worker's Session (default: GOMAXPROCS/Workers, at least 1), so a
	// fully loaded pool does not oversubscribe the host.
	WorkerParallelism int
	// CacheDir persists each worker's evaluation caches under
	// CacheDir/worker-N across Drain/restart ("" disables persistence).
	CacheDir string
	// CacheBudget bounds each worker Session's resident cache bytes
	// (0 = repro.DefaultSessionCacheBudget).
	CacheBudget int64
	// Routing selects the placement policy (default RouteAffinity).
	Routing RoutingPolicy
	// Seed makes RouteRandom deterministic for benchmarks (0 = fixed
	// default seed).
	Seed int64
	// DefaultMaxAttempts applies to jobs that do not set Job.MaxAttempts
	// (default 3). Only worker panics and errors marked Transient are
	// retried; ordinary failures, deadline expiry and cancellation are
	// final on the first attempt.
	DefaultMaxAttempts int
	// MaxWorkerRestarts bounds how many times a panicking worker's
	// Session is rebuilt before the worker is retired and its load is
	// served by the surviving pool (default 3).
	MaxWorkerRestarts int
}

// JobKind distinguishes check from enforce jobs.
type JobKind int

// Job kinds.
const (
	// JobCheck assesses passivity without modifying the model.
	JobCheck JobKind = iota
	// JobEnforce removes passivity violations from the job's model in
	// place and returns the enforced model.
	JobEnforce
)

// Job is one unit of work submitted to the server. The server owns the
// model after Submit succeeds (enforce jobs perturb it in place).
type Job struct {
	// Kind selects check or enforce.
	Kind JobKind
	// Model is the macromodel to process.
	Model *repro.Macromodel
	// Check tunes the passivity check (both kinds).
	Check repro.CheckOptions
	// Enforce tunes the enforcement loop (JobEnforce; its Check field is
	// overwritten by Job.Check).
	Enforce repro.EnforceOptions
	// Deadline bounds the job's wall-clock once it starts running
	// (0 = the server's DefaultDeadline). Expiry cancels the job's
	// context; the Session plumbing stops cooperatively.
	Deadline time.Duration
	// MaxAttempts bounds how many times the job may run before its last
	// error becomes final (0 = the server's DefaultMaxAttempts). A job
	// whose attempt dies with a panicking worker, or fails with an error
	// marked Transient, is requeued onto a different worker — the same
	// one only when no other is available. Enforce retries restart from a
	// pristine copy of the model, never the half-perturbed survivor of
	// the failed attempt.
	MaxAttempts int

	fp          uint64
	worker      int
	affinityHit bool
	accepted    time.Time
	result      chan *Result
	maxAttempts int
	attempts    int               // attempts started (worker goroutines only)
	lastErr     error             // most recent failed attempt's error
	pristine    *repro.Macromodel // enforce-retry restore point
}

// Result is the outcome of one job.
type Result struct {
	// Worker is the index of the worker that ran the job.
	Worker int
	// AffinityHit reports that the dispatcher placed the job on a worker
	// already associated with its pole-set fingerprint.
	AffinityHit bool
	// Fingerprint is the job model's pole-set fingerprint.
	Fingerprint uint64
	// QueueWait is the time the job spent queued before a worker picked
	// it up; Service is the time the worker spent running it.
	QueueWait, Service time.Duration
	// Report is the passivity report (for enforce jobs, of the final
	// model).
	Report *repro.PassivityReport
	// Enforce is the enforcement report (JobEnforce only).
	Enforce *repro.EnforceReport
	// Model is the enforced model (JobEnforce only).
	Model *repro.Macromodel
	// Attempts counts how many times the job ran (1 = no retries).
	Attempts int
	// LastErr is the error of the most recent failed attempt before the
	// delivered outcome: for a job that succeeded on a retry it records
	// why earlier attempts failed; nil when the first attempt's outcome
	// is the delivered one.
	LastErr error
	// Err is the job error; deadline expiry surfaces as
	// context.DeadlineExceeded, a worker panic as ErrWorkerPanic (a
	// *PanicError carrying the stack).
	Err error
}

// worker is one long-lived Session plus its job queue.
type worker struct {
	id   int
	srv  *Server
	sess *repro.Session // swapped under srv.mu when a panic retires it
	jobs chan *Job
	// pending counts queued+running jobs on this worker (the least-loaded
	// fallback's load signal).
	pending atomic.Int64
	// restarts counts Session rebuilds after panics (worker goroutine
	// only, under srv.mu); past Options.MaxWorkerRestarts the worker is
	// retired and dead flips true.
	restarts int
	dead     atomic.Bool
	// markMu guards lastMark, the base timestamp the progress sink charges
	// stage latencies from. Progress events arrive serialized (the Session
	// guarantees that) but on varying goroutines, and run() resets the
	// mark between jobs.
	markMu   sync.Mutex
	lastMark time.Time
}

// Server is the passivityd engine: a dispatcher with admission control in
// front of a pool of Session workers. Build with New, serve HTTP with
// Handler, stop with Drain.
type Server struct {
	opts    Options
	workers []*worker
	met     *metrics

	hardCtx    context.Context
	hardCancel context.CancelFunc

	mu          sync.Mutex
	affinity    map[uint64]int
	queued      int
	draining    bool
	deadWorkers int
	rng         *rand.Rand

	// notReady inverts the /healthz readiness signal (see SetReady); the
	// zero value keeps a freshly built server ready, matching embedded
	// uses that never load caches.
	notReady atomic.Bool

	wg sync.WaitGroup

	// runHook, when set by tests, runs at the start of every job with the
	// job's deadline context; its error fails the job. It gives tests a
	// deterministic way to block workers and exercise admission control,
	// deadlines and drains.
	runHook func(ctx context.Context, j *Job) error
}

// maxAffinityEntries bounds the dispatcher placement map; beyond it the
// map is rebuilt lazily from the workers' live caches (HasCache), which
// bound themselves via the session byte budgets.
const maxAffinityEntries = 1 << 16

// New builds the server and starts its workers. Caches are not loaded
// here — call LoadCaches to warm the pool from Options.CacheDir.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers > 8 {
			opts.Workers = 8
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.DefaultDeadline <= 0 {
		opts.DefaultDeadline = 60 * time.Second
	}
	if opts.WorkerParallelism <= 0 {
		opts.WorkerParallelism = runtime.GOMAXPROCS(0) / opts.Workers
		if opts.WorkerParallelism < 1 {
			opts.WorkerParallelism = 1
		}
	}
	if opts.DefaultMaxAttempts <= 0 {
		opts.DefaultMaxAttempts = 3
	}
	if opts.MaxWorkerRestarts <= 0 {
		opts.MaxWorkerRestarts = 3
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	hardCtx, hardCancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		met:        newMetrics(),
		hardCtx:    hardCtx,
		hardCancel: hardCancel,
		affinity:   make(map[uint64]int),
		rng:        rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < opts.Workers; i++ {
		w := &worker{id: i, srv: s, jobs: make(chan *Job, opts.QueueDepth)}
		w.sess = s.newWorkerSession(w)
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go w.loop()
	}
	return s, nil
}

// newWorkerSession builds a fresh Session for w — at startup and every
// time supervision retires a panicked one.
func (s *Server) newWorkerSession(w *worker) *repro.Session {
	sessOpts := []repro.SessionOption{
		repro.WithWorkers(s.opts.WorkerParallelism),
		repro.WithProgress(w.onProgress),
	}
	if s.opts.CacheBudget > 0 {
		sessOpts = append(sessOpts, repro.WithCacheBudget(s.opts.CacheBudget))
	}
	return repro.NewSession(sessOpts...)
}

// Workers returns the size of the worker pool.
func (s *Server) Workers() int { return len(s.workers) }

// SetReady flips the readiness the /healthz endpoint reports. A server is
// born ready; a daemon that loads persisted caches at startup marks
// itself unready first and ready once the load (and its quarantine scan)
// completes, so a fleet load balancer never routes to a cold-loading
// worker. Liveness is unaffected — the server accepts jobs either way.
func (s *Server) SetReady(ready bool) { s.notReady.Store(!ready) }

// Ready reports the readiness state SetReady controls (true unless
// marked otherwise).
func (s *Server) Ready() bool { return !s.notReady.Load() }

// ErrNoCache reports that no live worker Session holds a cache for the
// requested fingerprint.
var ErrNoCache = errors.New("serve: no cache for fingerprint")

// CacheFingerprints returns the union of the live workers' resident
// cache fingerprints, sorted — the server's warm-state catalog, which a
// cluster worker agent advertises to its coordinator so placement can
// follow the caches.
func (s *Server) CacheFingerprints() []uint64 {
	seen := make(map[uint64]bool)
	for _, w := range s.liveSessions() {
		for _, fp := range w.CacheFingerprints() {
			seen[fp] = true
		}
	}
	fps := make([]uint64, 0, len(seen))
	for fp := range seen {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(a, b int) bool { return fps[a] < fps[b] })
	return fps
}

// liveSessions snapshots the live workers' Sessions under the dispatcher
// lock (supervision swaps a panicked worker's Session there).
func (s *Server) liveSessions() []*repro.Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*repro.Session, 0, len(s.workers))
	for _, w := range s.workers {
		if !w.dead.Load() {
			out = append(out, w.sess)
		}
	}
	return out
}

// ExportCache serializes the evaluation cache one of the live workers
// holds for fp, in the checksummed Session cache format (see
// repro.Session.ExportCache). ErrNoCache when nobody holds it — or the
// holder has it checked out by a running job; warm-state shippers treat
// that as "send nothing".
func (s *Server) ExportCache(fp uint64) ([]byte, error) {
	for _, sess := range s.liveSessions() {
		if !sess.HasCache(fp) {
			continue
		}
		blob, err := sess.ExportCache(fp)
		if errors.Is(err, repro.ErrCacheUnavailable) {
			continue
		}
		return blob, err
	}
	return nil, ErrNoCache
}

// ImportCache validates a serialized evaluation cache and installs it
// into the worker the dispatcher would route the fingerprint to, then
// records that placement — so the jobs the cache was shipped ahead of
// land on the worker that now holds it. A corrupt blob is rejected whole;
// no session state changes.
func (s *Server) ImportCache(blob []byte) (uint64, error) {
	fp, err := repro.CacheBlobFingerprint(blob)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	w, _ := s.routeLocked(fp)
	var sess *repro.Session
	if w != nil {
		sess = w.sess
	}
	s.mu.Unlock()
	if sess == nil {
		return 0, ErrNoWorkers
	}
	if _, err := sess.ImportCache(blob); err != nil {
		return 0, err
	}
	s.mu.Lock()
	s.affinity[fp] = w.id
	s.mu.Unlock()
	return fp, nil
}

// workerCacheDir is the per-worker cache subdirectory (stable across
// restarts as long as the worker count is).
func (s *Server) workerCacheDir(id int) string {
	return filepath.Join(s.opts.CacheDir, fmt.Sprintf("worker-%d", id))
}

// LoadCaches warms every worker Session from Options.CacheDir (written
// by a previous Drain). Unreadable or corrupt cache files — a crash can
// tear one — are quarantined (renamed with a .corrupt suffix, counted in
// quarantined and the quarantined_caches_total metric) and that pole set
// simply starts cold; the load never fails on corruption. The returned
// error covers only infrastructure failures. The dispatcher rediscovers
// the loaded fingerprints through Session.HasCache, so affinity
// placement survives restarts.
func (s *Server) LoadCaches() (quarantined int, err error) {
	if s.opts.CacheDir == "" {
		return 0, nil
	}
	var firstErr error
	for _, w := range s.workers {
		_, q, err := w.sess.LoadCacheQuarantine(s.workerCacheDir(w.id))
		quarantined += q
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if quarantined > 0 {
		s.met.quarantined(quarantined)
	}
	return quarantined, firstErr
}

// saveCaches persists every live worker Session under Options.CacheDir
// (a retired worker's Session is fresh and holds nothing worth saving).
func (s *Server) saveCaches() error {
	if s.opts.CacheDir == "" {
		return nil
	}
	var firstErr error
	for _, w := range s.workers {
		if w.dead.Load() {
			continue
		}
		if err := w.sess.SaveCache(s.workerCacheDir(w.id)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Submit places a job on a worker queue, returning the channel its Result
// will arrive on (buffered: the worker never blocks on a departed
// caller). It fails fast with ErrQueueFull when QueueDepth jobs are
// already accepted and unfinished, with ErrDraining after Drain began,
// and with ErrNoWorkers when the whole pool has been retired.
func (s *Server) Submit(j *Job) (<-chan *Result, error) {
	if j.Model == nil {
		return nil, errors.New("serve: job without a model")
	}
	fp := repro.PoleFingerprint(j.Model)
	j.maxAttempts = j.MaxAttempts
	if j.maxAttempts <= 0 {
		j.maxAttempts = s.opts.DefaultMaxAttempts
	}
	// Enforce attempts perturb the model in place; keep a pristine copy
	// so a retry never resumes from a half-perturbed carcass. Cloned
	// outside the dispatcher lock — rejects waste one clone, admits keep
	// the lock hold short.
	if j.Kind == JobEnforce && j.maxAttempts > 1 {
		j.pristine = j.Model.Clone()
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.rejected("draining")
		return nil, ErrDraining
	}
	if s.queued >= s.opts.QueueDepth {
		s.mu.Unlock()
		s.met.rejected("queue_full")
		return nil, ErrQueueFull
	}
	w, hit := s.routeLocked(fp)
	if w == nil {
		s.mu.Unlock()
		s.met.rejected("no_workers")
		return nil, ErrNoWorkers
	}
	s.queued++
	j.fp = fp
	j.worker = w.id
	j.affinityHit = hit
	j.accepted = time.Now()
	j.result = make(chan *Result, 1)
	w.pending.Add(1)
	// The send stays under s.mu so Drain can never close the channel
	// between the admission check and the enqueue; it cannot block, since
	// the buffer is QueueDepth and admission control bounds first.
	w.jobs <- j
	s.mu.Unlock()
	s.met.accepted(hit)
	return j.result, nil
}

// routeLocked picks the worker for a fingerprint, never a retired one
// (nil if the whole pool is). Callers hold s.mu.
func (s *Server) routeLocked(fp uint64) (*worker, bool) {
	if s.deadWorkers >= len(s.workers) {
		return nil, false
	}
	if s.opts.Routing == RouteRandom {
		for {
			if w := s.workers[s.rng.Intn(len(s.workers))]; !w.dead.Load() {
				return w, false
			}
		}
	}
	if wi, ok := s.affinity[fp]; ok && !s.workers[wi].dead.Load() {
		return s.workers[wi], true
	}
	// No placement on record: a worker may still hold the cache (loaded
	// from disk by LoadCaches, or the map was rebuilt) — probe the pool.
	for _, w := range s.workers {
		if !w.dead.Load() && w.sess.HasCache(fp) {
			s.affinity[fp] = w.id
			return w, true
		}
	}
	var best *worker
	for _, w := range s.workers {
		if w.dead.Load() {
			continue
		}
		if best == nil || w.pending.Load() < best.pending.Load() {
			best = w
		}
	}
	if len(s.affinity) >= maxAffinityEntries {
		s.evictAffinityLocked()
	}
	s.affinity[fp] = best.id
	return best, false
}

// evictAffinityLocked shrinks a full placement map by keeping only the
// live entries — fingerprints whose worker still holds the cache — so a
// long-running daemon sheds the cold tail without forgetting its hot
// set. Only if the live entries alone still fill the map are arbitrary
// ones dropped (the budget-bounded Sessions make that pathological).
// Callers hold s.mu.
func (s *Server) evictAffinityLocked() {
	kept := make(map[uint64]int)
	for fp, wi := range s.affinity {
		w := s.workers[wi]
		if !w.dead.Load() && w.sess.HasCache(fp) {
			kept[fp] = wi
		}
	}
	for fp := range kept {
		if len(kept) < maxAffinityEntries {
			break
		}
		delete(kept, fp)
	}
	s.affinity = kept
}

// Drain stops admission (subsequent Submits fail with ErrDraining), waits
// for every accepted job to finish — cancelling the in-flight ones only
// if ctx expires first — then saves the worker caches to
// Options.CacheDir. Accepted jobs always receive a Result: a graceful
// drain loses no work, and the next process starts warm from the saved
// caches.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("serve: already draining")
	}
	s.draining = true
	for _, w := range s.workers {
		close(w.jobs)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.hardCancel() // force: cancel every in-flight job context
		<-done
	}
	s.hardCancel()
	return s.saveCaches()
}

// QueueDepth reports the accepted-but-unfinished job count.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// loop owns the worker's queue until Drain closes it; process isolates
// every failure mode, so the goroutine (and the Drain WaitGroup behind
// it) survives anything a job does.
func (w *worker) loop() {
	defer w.srv.wg.Done()
	for j := range w.jobs {
		w.process(j)
	}
}

// run executes one attempt of the job under its deadline context.
func (w *worker) run(j *Job) *Result {
	start := time.Now()
	j.attempts++
	if j.attempts > 1 {
		w.srv.met.retried()
		if j.Kind == JobEnforce && j.pristine != nil {
			j.Model = j.pristine.Clone()
		}
	}
	res := &Result{
		Worker:      w.id,
		AffinityHit: j.affinityHit,
		Fingerprint: j.fp,
		LastErr:     j.lastErr,
		QueueWait:   start.Sub(j.accepted),
	}
	deadline := j.Deadline
	if deadline <= 0 {
		deadline = w.srv.opts.DefaultDeadline
	}
	ctx, cancel := context.WithTimeout(w.srv.hardCtx, deadline)
	defer cancel()

	w.markMu.Lock()
	w.lastMark = start
	w.markMu.Unlock()

	w.runAttempt(ctx, j, res)
	res.Service = time.Since(start)
	w.srv.met.cacheStats(w.id, w.sess.CacheStats())
	return res
}

// onProgress is the worker Session's progress sink: it charges the time
// since the last event to the event's stage and counts the σ evaluations
// and contour-quadrature nodes, feeding the per-stage latency metrics.
// Certificate-stage events are sub-labelled with the pipeline stage name
// (e.g. "certificate-stage/contour-counter") so the cost of the terminal
// counter stage is visible next to the cheaper certificate stages; check
// and iteration events keep their bare kind label.
func (w *worker) onProgress(ev repro.ProgressEvent) {
	now := time.Now()
	w.markMu.Lock()
	delta := now.Sub(w.lastMark)
	w.lastMark = now
	w.markMu.Unlock()
	label := string(ev.Kind)
	if ev.Kind == repro.ProgressCertificateStage && ev.Stage != "" {
		label += "/" + ev.Stage
	}
	w.srv.met.stage(label, delta, ev.Samples, ev.Nodes, ev.Backend, ev.Declined)
}
