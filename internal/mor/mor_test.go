package mor

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
	"repro/internal/statespace"
)

// randStableSystem builds a random stable MIMO system with well-damped
// block-diagonal dynamics.
func randStableSystem(rng *rand.Rand, n, p int) *statespace.System {
	a := mat.NewMatrix(n, n)
	for k := 0; k < n; {
		if k+1 < n && rng.Float64() < 0.6 {
			al := -0.5 - 2*rng.Float64()
			be := 0.5 + 3*rng.Float64()
			a.Set(k, k, al)
			a.Set(k, k+1, be)
			a.Set(k+1, k, -be)
			a.Set(k+1, k+1, al)
			k += 2
			continue
		}
		a.Set(k, k, -0.3-2*rng.Float64())
		k++
	}
	b := mat.NewMatrix(n, p)
	c := mat.NewMatrix(p, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	d := mat.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		d.Set(i, i, 0.1*rng.NormFloat64())
	}
	return statespace.MustNew(a, b, c, d)
}

// maxTransferError sweeps ‖G(jω)−Gr(jω)‖_F over a grid (a proxy for the
// H∞ distance on well-damped systems).
func maxTransferError(t *testing.T, g, gr *statespace.System, omegas []float64) float64 {
	t.Helper()
	worst := 0.0
	for _, w := range omegas {
		h1, err := g.Eval(w)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := gr.Eval(w)
		if err != nil {
			t.Fatal(err)
		}
		if d := h1.Sub(h2).FrobNorm(); d > worst {
			worst = d
		}
	}
	return worst
}

func sweepOmegas() []float64 {
	var omegas []float64
	for i := 0; i <= 200; i++ {
		omegas = append(omegas, math.Pow(10, -2+4*float64(i)/200))
	}
	return append(omegas, 0)
}

func TestBalancedTruncationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		sys := randStableSystem(rng, 14, 2)
		for _, r := range []int{4, 8, 12} {
			red, err := BalancedTruncation(sys, r)
			if err != nil {
				t.Fatal(err)
			}
			errH := maxTransferError(t, sys, red.System, sweepOmegas())
			// The Frobenius norm exceeds the spectral norm by at most √p,
			// so allow that factor plus numerical headroom.
			if errH > red.Bound*math.Sqrt(2)*1.01+1e-9 {
				t.Fatalf("trial %d r=%d: error %g exceeds bound %g", trial, r, errH, red.Bound)
			}
		}
	}
}

func TestBalancedTruncationFullOrderIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	sys := randStableSystem(rng, 10, 2)
	red, err := BalancedTruncation(sys, 10)
	if err != nil {
		t.Fatal(err)
	}
	if red.Bound > 1e-10 {
		t.Fatalf("full-order bound should vanish, got %g", red.Bound)
	}
	if e := maxTransferError(t, sys, red.System, sweepOmegas()); e > 1e-7 {
		t.Fatalf("full-order reduction changed the transfer function by %g", e)
	}
}

func TestBalancedSystemGramiansAreDiagonalEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	sys := randStableSystem(rng, 8, 2)
	red, err := BalancedTruncation(sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := red.System.Gramian()
	if err != nil {
		t.Fatal(err)
	}
	q, err := mat.ObservabilityGramian(red.System.A, red.System.C)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if math.Abs(p.At(i, i)-red.Hankel[i]) > 1e-6*(1+red.Hankel[i]) {
			t.Fatalf("P[%d,%d]=%g want Hankel %g", i, i, p.At(i, i), red.Hankel[i])
		}
		if math.Abs(q.At(i, i)-red.Hankel[i]) > 1e-6*(1+red.Hankel[i]) {
			t.Fatalf("Q[%d,%d]=%g want Hankel %g", i, i, q.At(i, i), red.Hankel[i])
		}
		for j := 0; j < 8; j++ {
			if i == j {
				continue
			}
			if math.Abs(p.At(i, j)) > 1e-6*(1+red.Hankel[0]) || math.Abs(q.At(i, j)) > 1e-6*(1+red.Hankel[0]) {
				t.Fatalf("balanced Gramians not diagonal at (%d,%d)", i, j)
			}
		}
	}
}

func TestHankelValuesDescendAndPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	sys := randStableSystem(rng, 12, 3)
	red, err := BalancedTruncation(sys, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(red.Hankel); i++ {
		if red.Hankel[i] > red.Hankel[i-1]*(1+1e-12) {
			t.Fatalf("Hankel values not descending at %d", i)
		}
		if red.Hankel[i] < 0 {
			t.Fatalf("negative Hankel value at %d", i)
		}
	}
}

func TestBalancedTruncationRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	sys := randStableSystem(rng, 6, 1)
	if _, err := BalancedTruncation(sys, 0); err == nil {
		t.Fatal("order 0 must fail")
	}
	if _, err := BalancedTruncation(sys, 7); err == nil {
		t.Fatal("order beyond system order must fail")
	}
	unstable := statespace.MustNew(
		mat.NewMatrixFrom([][]float64{{1}}),
		mat.NewMatrixFrom([][]float64{{1}}),
		mat.NewMatrixFrom([][]float64{{1}}),
		mat.NewMatrixFrom([][]float64{{0}}),
	)
	if _, err := BalancedTruncation(unstable, 1); err == nil {
		t.Fatal("unstable system must fail")
	}
}

func TestToRationalRoundTrip(t *testing.T) {
	// Build a pole-residue model, realize it, convert back: transfer
	// functions and pole sets must agree. The model is SISO because the
	// MIMO common-pole realization repeats every pole once per port, which
	// ToRational (simple poles only) rejects by design — reduced systems,
	// its actual input, have generically simple spectra.
	poles := []complex128{
		complex(-1, 4), complex(-1, -4),
		complex(-0.5, 0),
		complex(-2, 9), complex(-2, -9),
	}
	rng := rand.New(rand.NewSource(36))
	p := 1
	var residues []*mat.CMatrix
	for k := 0; k < len(poles); {
		r := mat.NewCMatrix(p, p)
		for i := range r.Data {
			r.Data[i] = complex(rng.NormFloat64(), 0)
		}
		if imag(poles[k]) == 0 {
			residues = append(residues, r)
			k++
			continue
		}
		rc := mat.NewCMatrix(p, p)
		for i := range r.Data {
			r.Data[i] += complex(0, rng.NormFloat64())
			rc.Data[i] = cmplx.Conj(r.Data[i])
		}
		residues = append(residues, r, rc)
		k += 2
	}
	d := mat.NewMatrix(p, p)
	d.Set(0, 0, 0.3)
	model, err := rational.New(poles, residues, d)
	if err != nil {
		t.Fatal(err)
	}

	back, err := ToRational(model.Realization())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumPoles() != len(poles) {
		t.Fatalf("pole count %d want %d", back.NumPoles(), len(poles))
	}
	for _, w := range []float64{0, 0.5, 1, 3, 4, 7, 20} {
		h1 := model.Eval(w)
		h2 := back.Eval(w)
		if !h1.Equalish(h2, 1e-7*(1+h1.MaxAbs())) {
			t.Fatalf("ω=%g: transfer mismatch", w)
		}
	}
}

func TestReduceThenToRationalKeepsAccuracy(t *testing.T) {
	// End-to-end: random stable 12-state system → BT to 8 → pole-residue;
	// the rational form must match the reduced state space exactly.
	rng := rand.New(rand.NewSource(37))
	sys := randStableSystem(rng, 12, 2)
	red, err := BalancedTruncation(sys, 8)
	if err != nil {
		t.Fatal(err)
	}
	model, err := ToRational(red.System)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range sweepOmegas()[:50] {
		h1, err := red.System.Eval(w)
		if err != nil {
			t.Fatal(err)
		}
		h2 := model.Eval(w)
		if !h1.Equalish(h2, 1e-6*(1+h1.MaxAbs())) {
			t.Fatalf("ω=%g: rational form differs from reduced system", w)
		}
	}
	if !model.IsStable(0) {
		t.Fatal("reduction of a stable system must stay stable")
	}
}

func TestToRationalRejectsNonSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	sys := randStableSystem(rng, 4, 1)
	bad := statespace.MustNew(sys.A, sys.B, mat.NewMatrix(2, 4), mat.NewMatrix(2, 1))
	if _, err := ToRational(bad); err == nil {
		t.Fatal("non-square system must fail")
	}
}
