// Package mor implements projection-based model order reduction by
// balanced truncation — the "classical" reduction family ([6], [7] in the
// paper's introduction) that the black-box identification flow is usually
// contrasted with. The library uses it as a baseline: reduce a high-order
// (very accurate) Vector-Fitting model to the paper's working order and
// compare against a direct low-order fit, in the scattering norm and under
// the nominal PDN termination network.
package mor

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/rational"
	"repro/internal/statespace"
)

// Reduced is the outcome of a balanced truncation.
type Reduced struct {
	// System is the reduced state-space model of the requested order.
	System *statespace.System
	// Hankel lists every Hankel singular value of the original system,
	// descending.
	Hankel []float64
	// Bound is the a-priori H∞ error bound 2·Σ_{k>r} σ_k of balanced
	// truncation.
	Bound float64
	// Order is the retained order (may be smaller than requested when the
	// system is numerically of lower rank).
	Order int
}

// ErrUnstable reports a system whose Gramians do not exist.
var ErrUnstable = errors.New("mor: balanced truncation needs an asymptotically stable system")

// BalancedTruncation reduces a stable system to the given order with the
// square-root algorithm: Cholesky factors of the two Gramians, an SVD of
// their product, and the Petrov–Galerkin projection built from its leading
// singular vectors.
func BalancedTruncation(sys *statespace.System, order int) (*Reduced, error) {
	n := sys.Order()
	if order <= 0 {
		return nil, fmt.Errorf("mor: order must be positive, got %d", order)
	}
	if order > n {
		return nil, fmt.Errorf("mor: order %d exceeds system order %d", order, n)
	}
	if ok, err := sys.IsStable(0); err != nil {
		return nil, err
	} else if !ok {
		return nil, ErrUnstable
	}
	p, err := sys.Gramian()
	if err != nil {
		return nil, fmt.Errorf("%w: controllability Gramian: %v", ErrUnstable, err)
	}
	q, err := mat.ObservabilityGramian(sys.A, sys.C)
	if err != nil {
		return nil, fmt.Errorf("%w: observability Gramian: %v", ErrUnstable, err)
	}
	lp, _, err := mat.CholFactorRegularized(p)
	if err != nil {
		return nil, fmt.Errorf("mor: controllability Gramian not PSD: %w", err)
	}
	lq, _, err := mat.CholFactorRegularized(q)
	if err != nil {
		return nil, fmt.Errorf("mor: observability Gramian not PSD: %w", err)
	}
	// M = Lqᵀ·Lp, SVD M = U·Σ·Vᵀ; Hankel values are Σ.
	m := lq.L().T().Mul(lp.L())
	svd := mat.SVDecompose(m)
	hankel := append([]float64(nil), svd.S...)

	// Clamp the order at the numerical rank so Σ^{-1/2} stays finite.
	r := order
	tol := 1e-13 * hankel[0]
	for r > 0 && hankel[r-1] <= tol {
		r--
	}
	if r == 0 {
		return nil, fmt.Errorf("mor: system is numerically zero (σ₁ = %g)", hankel[0])
	}

	// Projection bases T1 = Lp·V_r·Σ_r^{-1/2}, W1 = Lq·U_r·Σ_r^{-1/2};
	// then W1ᵀ·T1 = I.
	t1 := mat.NewMatrix(n, r)
	w1 := mat.NewMatrix(n, r)
	lpl, lql := lp.L(), lq.L()
	for j := 0; j < r; j++ {
		is := 1 / math.Sqrt(hankel[j])
		for i := 0; i < n; i++ {
			var tv, wv float64
			for k := 0; k < n; k++ {
				tv += lpl.At(i, k) * svd.V.At(k, j)
				wv += lql.At(i, k) * svd.U.At(k, j)
			}
			t1.Set(i, j, tv*is)
			w1.Set(i, j, wv*is)
		}
	}
	ar := w1.T().Mul(sys.A.Mul(t1))
	br := w1.T().Mul(sys.B)
	cr := sys.C.Mul(t1)
	red, err := statespace.New(ar, br, cr, sys.D.Clone())
	if err != nil {
		return nil, err
	}
	bound := 0.0
	for k := r; k < len(hankel); k++ {
		bound += 2 * hankel[k]
	}
	return &Reduced{System: red, Hankel: hankel, Bound: bound, Order: r}, nil
}

// ToRational converts a state-space system with simple poles back to the
// pole-residue form used by the fitting and passivity machinery:
//
//	H(s) = Σ_k (C·v_k)(w_kᵀ·B)/(s − λ_k) + D,
//
// where v_k, w_k are right/left eigenvectors of A normalized to
// w_kᵀ·v_k = 1. Unstable or defective systems are rejected. The result can
// be fed directly into passivity checking and (weighted) enforcement,
// closing the "classical MOR + enforcement" alternative flow.
func ToRational(sys *statespace.System) (*rational.Model, error) {
	if sys.Inputs() != sys.Outputs() {
		return nil, fmt.Errorf("mor: ToRational needs a square system, got %d×%d", sys.Outputs(), sys.Inputs())
	}
	values, vecs, err := mat.EigenDecompose(sys.A)
	if err != nil {
		return nil, err
	}
	n := sys.Order()
	ports := sys.Outputs()
	// Left eigenvectors: rows of V⁻¹ satisfy w_kᵀ·A = λ_k·w_kᵀ with
	// w_kᵀ·v_k = 1 already normalized.
	vinv, err := mat.CInverse(vecs)
	if err != nil {
		return nil, fmt.Errorf("mor: eigenvector matrix singular (defective system?): %w", err)
	}
	// Order poles canonically: ascending |Im|, conjugate pairs adjacent
	// with the +Im member first; EigenDecompose already emits pairs
	// adjacent, so only per-pair ordering needs fixing.
	type entry struct {
		lambda complex128
		right  []complex128 // C·v_k (ports)
		left   []complex128 // w_kᵀ·B (ports)
	}
	entries := make([]entry, n)
	bc := mat.RealToComplex(sys.B)
	cc := mat.RealToComplex(sys.C)
	for k := 0; k < n; k++ {
		vk := vecs.Col(k)
		wk := vinv.Row(k)
		// Bᵀ·w_k: B is real, so the Hermitian product equals the transpose.
		entries[k] = entry{lambda: values[k], right: cc.MulVec(vk), left: bc.MulVecH(wk)}
	}
	poles := make([]complex128, 0, n)
	residues := make([]*mat.CMatrix, 0, n)
	for k := 0; k < n; {
		e := entries[k]
		if imag(e.lambda) == 0 {
			poles = append(poles, e.lambda)
			residues = append(residues, outer(e.right, e.left, ports))
			k++
			continue
		}
		if k+1 >= n {
			return nil, fmt.Errorf("mor: dangling complex eigenvalue %v", e.lambda)
		}
		a, b := entries[k], entries[k+1]
		if imag(a.lambda) < 0 {
			a, b = b, a
		}
		if cmplx.Abs(a.lambda-cmplx.Conj(b.lambda)) > 1e-7*(1+cmplx.Abs(a.lambda)) {
			return nil, fmt.Errorf("mor: eigenvalues %v, %v are not a conjugate pair", a.lambda, b.lambda)
		}
		ra := outer(a.right, a.left, ports)
		poles = append(poles, a.lambda, cmplx.Conj(a.lambda))
		residues = append(residues, ra, conjMat(ra))
		k += 2
	}
	return rational.New(poles, residues, sys.D.Clone())
}

// outer returns the rank-one residue matrix right·leftᵀ.
func outer(right, left []complex128, p int) *mat.CMatrix {
	m := mat.NewCMatrix(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			m.Set(i, j, right[i]*left[j])
		}
	}
	return m
}

func conjMat(a *mat.CMatrix) *mat.CMatrix {
	out := mat.NewCMatrix(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = cmplx.Conj(a.Data[i])
	}
	return out
}
