package rational

import (
	"fmt"
	"math/cmplx"
	"sort"

	"repro/internal/mat"
)

// NewScalar builds a 1×1 (SISO) pole-residue model from plain complex
// slices. Poles must follow the conjugate-pair adjacency convention.
func NewScalar(poles, residues []complex128, d float64) (*Model, error) {
	if len(poles) != len(residues) {
		return nil, fmt.Errorf("rational: %d poles but %d residues", len(poles), len(residues))
	}
	rm := make([]*mat.CMatrix, len(poles))
	for i, r := range residues {
		m := mat.NewCMatrix(1, 1)
		m.Set(0, 0, r)
		rm[i] = m
	}
	dm := mat.NewMatrix(1, 1)
	dm.Set(0, 0, d)
	return New(poles, rm, dm)
}

// ScalarResidues returns the residues of a SISO model as a flat slice.
func (m *Model) ScalarResidues() []complex128 {
	if m.Ports() != 1 {
		panic("rational: ScalarResidues on a MIMO model")
	}
	out := make([]complex128, len(m.Residues))
	for i, r := range m.Residues {
		out[i] = r.At(0, 0)
	}
	return out
}

// SortPairs reorders an arbitrary conjugation-closed pole set into the
// canonical convention: ascending by |Im|, then Re; complex poles appear as
// (Im>0, Im<0) adjacent pairs. It returns the reordered poles and the
// permutation mapping new index → old index. Poles with tiny imaginary
// parts (|Im| ≤ tol·|p|) are snapped to the real axis.
func SortPairs(poles []complex128, tol float64) ([]complex128, []int, error) {
	type entry struct {
		p   complex128
		idx int
	}
	var reals, ups []entry
	used := make([]bool, len(poles))
	snapped := make([]complex128, len(poles))
	for i, p := range poles {
		if absIm := cmplx.Abs(complex(0, imag(p))); absIm <= tol*(1+cmplx.Abs(p)) {
			snapped[i] = complex(real(p), 0)
		} else {
			snapped[i] = p
		}
	}
	for i, p := range snapped {
		if used[i] {
			continue
		}
		if imag(p) == 0 {
			reals = append(reals, entry{p, i})
			used[i] = true
			continue
		}
		// Find the conjugate partner.
		best := -1
		bestDist := 0.0
		for j := i + 1; j < len(snapped); j++ {
			if used[j] || imag(snapped[j]) == 0 {
				continue
			}
			d := cmplx.Abs(snapped[j] - cmplx.Conj(p))
			if best == -1 || d < bestDist {
				best, bestDist = j, d
			}
		}
		if best == -1 || bestDist > 1e-6*(1+cmplx.Abs(p)) {
			return nil, nil, fmt.Errorf("rational: pole %v has no conjugate partner", p)
		}
		used[i], used[best] = true, true
		if imag(p) > 0 {
			ups = append(ups, entry{p, i})
		} else {
			ups = append(ups, entry{snapped[best], best})
		}
	}
	sort.Slice(reals, func(a, b int) bool { return real(reals[a].p) < real(reals[b].p) })
	sort.Slice(ups, func(a, b int) bool {
		if imag(ups[a].p) != imag(ups[b].p) {
			return imag(ups[a].p) < imag(ups[b].p)
		}
		return real(ups[a].p) < real(ups[b].p)
	})
	out := make([]complex128, 0, len(poles))
	perm := make([]int, 0, len(poles))
	for _, e := range reals {
		out = append(out, e.p)
		perm = append(perm, e.idx)
	}
	for _, e := range ups {
		out = append(out, e.p, cmplx.Conj(e.p))
		perm = append(perm, e.idx, -1) // conjugate slot has no source index
	}
	return out, perm, nil
}

// FromZPK builds a scalar pole-residue model from zeros, poles and gain:
//
//	H(s) = gain·Π(s−z_l) / Π(s−p_m) = gain + Σ r_m/(s−p_m)
//
// with len(zeros) == len(poles) (biproper) or len(zeros) < len(poles)
// (strictly proper, direct term 0 unless biproper). Residues follow from
// the standard partial-fraction formula
//
//	r_m = gain·Π_l(p_m−z_l) / Π_{l≠m}(p_m−p_l).
//
// Repeated poles are rejected. The pole set must be conjugation-closed; the
// result uses the canonical pair ordering.
func FromZPK(zeros, poles []complex128, gain float64) (*Model, error) {
	if len(zeros) > len(poles) {
		return nil, fmt.Errorf("rational: improper transfer function (%d zeros > %d poles)", len(zeros), len(poles))
	}
	sorted, _, err := SortPairs(poles, 1e-12)
	if err != nil {
		return nil, err
	}
	// Reject (near-)repeated poles, which partial fractions cannot handle.
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if cmplx.Abs(sorted[i]-sorted[j]) < 1e-9*(1+cmplx.Abs(sorted[i])) {
				return nil, fmt.Errorf("rational: repeated pole %v", sorted[i])
			}
		}
	}
	res := make([]complex128, len(sorted))
	for m, pm := range sorted {
		num := complex(gain, 0)
		for _, z := range zeros {
			num *= pm - z
		}
		den := complex(1, 0)
		for l, pl := range sorted {
			if l != m {
				den *= pm - pl
			}
		}
		res[m] = num / den
	}
	d := 0.0
	if len(zeros) == len(poles) {
		d = gain
	}
	// Force exact conjugate symmetry (cleans rounding noise).
	for k := 0; k < len(sorted); {
		if imag(sorted[k]) == 0 {
			res[k] = complex(real(res[k]), 0)
			k++
			continue
		}
		avg := 0.5 * (res[k] + cmplx.Conj(res[k+1]))
		res[k] = avg
		res[k+1] = cmplx.Conj(avg)
		k += 2
	}
	return NewScalar(sorted, res, d)
}
