package rational

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// testModel builds a small 2-port model with one real pole and one complex
// pair.
func testModel(t *testing.T) *Model {
	t.Helper()
	poles := []complex128{
		complex(-3, 0),
		complex(-1, 8), complex(-1, -8),
	}
	r0 := mat.NewCMatrixFrom([][]complex128{{1, 0.2}, {0.2, 0.5}})
	r1 := mat.NewCMatrixFrom([][]complex128{{0.4 + 0.3i, 0.1 - 0.2i}, {0.1 - 0.2i, 0.6 + 0.1i}})
	r1c := mat.NewCMatrixFrom([][]complex128{{0.4 - 0.3i, 0.1 + 0.2i}, {0.1 + 0.2i, 0.6 - 0.1i}})
	d := mat.NewMatrixFrom([][]float64{{0.05, 0}, {0, 0.05}})
	m, err := New(poles, []*mat.CMatrix{r0, r1, r1c}, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEvalMatchesDirectSum(t *testing.T) {
	m := testModel(t)
	for _, omega := range []float64{0, 0.5, 3, 12, 100} {
		s := complex(0, omega)
		got := m.Eval(omega)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				var want complex128
				for k, p := range m.Poles {
					want += m.Residues[k].At(i, j) / (s - p)
				}
				want += complex(m.D.At(i, j), 0)
				if cmplx.Abs(got.At(i, j)-want) > 1e-12*(1+cmplx.Abs(want)) {
					t.Fatalf("ω=%v (%d,%d): %v vs %v", omega, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestEvalIsRealSystem(t *testing.T) {
	// H(−jω) == conj(H(jω)) guaranteed by the pairing convention.
	m := testModel(t)
	hp := m.Eval(7.3)
	hm := m.Eval(-7.3)
	for i := range hp.Data {
		if cmplx.Abs(hm.Data[i]-cmplx.Conj(hp.Data[i])) > 1e-12 {
			t.Fatalf("conjugate symmetry violated")
		}
	}
}

func TestRealizationMatchesEval(t *testing.T) {
	m := testModel(t)
	sys := m.Realization()
	if sys.Order() != 2*3 {
		t.Fatalf("order %d want 6", sys.Order())
	}
	for _, omega := range []float64{0.1, 2, 8, 40} {
		hSS, err := sys.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		hPR := m.Eval(omega)
		if !hSS.Equalish(hPR, 1e-9*(1+hPR.MaxAbs())) {
			t.Fatalf("ω=%v realization mismatch:\nSS %v\nPR %v", omega, hSS, hPR)
		}
	}
}

func TestEntryRealizationMatchesEvalEntry(t *testing.T) {
	m := testModel(t)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			sys := m.EntryRealization(i, j)
			for _, omega := range []float64{0.3, 5, 9} {
				h, err := sys.Eval(omega)
				if err != nil {
					t.Fatal(err)
				}
				want := m.EvalEntry(i, j, omega)
				if cmplx.Abs(h.At(0, 0)-want) > 1e-10*(1+cmplx.Abs(want)) {
					t.Fatalf("entry (%d,%d) ω=%v: %v vs %v", i, j, omega, h.At(0, 0), want)
				}
			}
		}
	}
}

func TestCVectorRoundTrip(t *testing.T) {
	m := testModel(t)
	c01 := m.CVector(0, 1)
	m2 := m.Clone()
	m2.SetCVector(0, 1, c01)
	for k := range m.Residues {
		if cmplx.Abs(m2.Residues[k].At(0, 1)-m.Residues[k].At(0, 1)) > 1e-15 {
			t.Fatalf("CVector round trip changed residues")
		}
	}
	// Perturb and verify the conjugate partner follows.
	delta := make([]float64, len(c01))
	delta[1] = 0.1 // Re part of the complex pair residue
	delta[2] = 0.2 // Im part
	m2.AddToCVector(0, 1, delta)
	r := m2.Residues[1].At(0, 1)
	rc := m2.Residues[2].At(0, 1)
	if cmplx.Abs(rc-cmplx.Conj(r)) > 1e-15 {
		t.Fatalf("conjugate symmetry broken after AddToCVector")
	}
	if math.Abs(real(r)-real(m.Residues[1].At(0, 1))-0.1) > 1e-15 {
		t.Fatalf("Re perturbation not applied")
	}
	if math.Abs(imag(r)-imag(m.Residues[1].At(0, 1))-0.2) > 1e-15 {
		t.Fatalf("Im perturbation not applied")
	}
}

func TestEvalBasisConsistency(t *testing.T) {
	// H_ij(jω) == c_ij·k̃(ω) + D_ij for all entries.
	m := testModel(t)
	for _, omega := range []float64{0.2, 1, 8.1, 33} {
		k := m.EvalBasis(omega)
		h := m.Eval(omega)
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				c := m.CVector(i, j)
				var sum complex128
				for n := range k {
					sum += complex(c[n], 0) * k[n]
				}
				sum += complex(m.D.At(i, j), 0)
				if cmplx.Abs(sum-h.At(i, j)) > 1e-12*(1+cmplx.Abs(sum)) {
					t.Fatalf("basis identity fails at ω=%v (%d,%d)", omega, i, j)
				}
			}
		}
	}
}

func TestBasisRealizationEigenvalues(t *testing.T) {
	m := testModel(t)
	a1, _ := m.BasisRealization()
	ev, err := mat.EigenValues(a1)
	if err != nil {
		t.Fatal(err)
	}
	// The eigenvalues of A₁ are exactly the poles.
	for _, p := range m.Poles {
		found := false
		for _, z := range ev {
			if cmplx.Abs(z-p) < 1e-10*(1+cmplx.Abs(p)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("pole %v missing from eig(A1) = %v", p, ev)
		}
	}
}

func TestStability(t *testing.T) {
	m := testModel(t)
	if !m.IsStable(0) {
		t.Fatalf("model should be stable")
	}
	m.Poles[0] = complex(0.1, 0)
	if m.IsStable(0) {
		t.Fatalf("unstable pole not detected")
	}
}

func TestBadPoleOrderRejected(t *testing.T) {
	d := mat.NewMatrix(1, 1)
	r := mat.NewCMatrix(1, 1)
	// Complex pole without adjacent conjugate.
	if _, err := New([]complex128{complex(-1, 2), complex(-3, 0)}, []*mat.CMatrix{r, r.Clone()}, d); err == nil {
		t.Fatalf("expected ErrBadPoleOrder")
	}
}

func TestFromZPKKnownSystem(t *testing.T) {
	// H(s) = 2(s+1)/((s+2)(s+4)) = 2 (s+1)/(s²+6s+8)
	m, err := FromZPK([]complex128{-1}, []complex128{-2, -4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Partial fractions: r1/(s+2) + r2/(s+4); r1 = 2(−2+1)/(−2+4) = −1;
	// r2 = 2(−4+1)/(−4+2) = 3.
	for _, tc := range []struct {
		pole complex128
		res  complex128
	}{{-2, -1}, {-4, 3}} {
		found := false
		for k, p := range m.Poles {
			if cmplx.Abs(p-tc.pole) < 1e-12 {
				found = true
				if cmplx.Abs(m.Residues[k].At(0, 0)-tc.res) > 1e-12 {
					t.Fatalf("residue at %v: %v want %v", tc.pole, m.Residues[k].At(0, 0), tc.res)
				}
			}
		}
		if !found {
			t.Fatalf("pole %v missing", tc.pole)
		}
	}
	if m.D.At(0, 0) != 0 {
		t.Fatalf("strictly proper system must have D=0")
	}
}

func TestFromZPKBiproper(t *testing.T) {
	// H(s) = 3(s+1)(s+5)/((s+2)(s+4)): D = 3.
	m, err := FromZPK([]complex128{-1, -5}, []complex128{-2, -4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.D.At(0, 0)-3) > 1e-14 {
		t.Fatalf("D = %v want 3", m.D.At(0, 0))
	}
	// Spot-check value at s = j2 against the product form.
	s := complex(0, 2)
	want := 3 * (s + 1) * (s + 5) / ((s + 2) * (s + 4))
	got := m.EvalEntry(0, 0, 2)
	if cmplx.Abs(got-want) > 1e-12*(1+cmplx.Abs(want)) {
		t.Fatalf("H(j2) = %v want %v", got, want)
	}
}

func TestFromZPKComplexPairs(t *testing.T) {
	// Poles at −1±j5, zero at −0.5, gain 4.
	m, err := FromZPK([]complex128{-0.5}, []complex128{complex(-1, 5), complex(-1, -5)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.validatePairs(); err != nil {
		t.Fatal(err)
	}
	for _, omega := range []float64{0, 1, 5, 20} {
		s := complex(0, omega)
		want := 4 * (s + 0.5) / ((s - complex(-1, 5)) * (s - complex(-1, -5)))
		got := m.EvalEntry(0, 0, omega)
		if cmplx.Abs(got-want) > 1e-11*(1+cmplx.Abs(want)) {
			t.Fatalf("ω=%v: %v want %v", omega, got, want)
		}
	}
}

func TestFromZPKRepeatedPoleRejected(t *testing.T) {
	if _, err := FromZPK(nil, []complex128{-1, -1}, 1); err == nil {
		t.Fatalf("expected repeated-pole error")
	}
}

func TestSortPairsProperty(t *testing.T) {
	// Any conjugation-closed set sorts into valid pair order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var poles []complex128
		for i := 0; i < 2+rng.Intn(3); i++ {
			poles = append(poles, complex(-rng.Float64()-0.1, 0))
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			p := complex(-rng.Float64()-0.1, rng.Float64()*10+0.5)
			poles = append(poles, p, cmplx.Conj(p))
		}
		// Shuffle.
		rng.Shuffle(len(poles), func(i, j int) { poles[i], poles[j] = poles[j], poles[i] })
		sorted, _, err := SortPairs(poles, 1e-12)
		if err != nil {
			return false
		}
		if len(sorted) != len(poles) {
			return false
		}
		for k := 0; k < len(sorted); {
			if imag(sorted[k]) == 0 {
				k++
				continue
			}
			if k+1 >= len(sorted) || cmplx.Abs(sorted[k+1]-cmplx.Conj(sorted[k])) > 1e-12 {
				return false
			}
			k += 2
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	m := testModel(t)
	if !m.IsSymmetric(1e-12) {
		t.Fatalf("test model is reciprocal by construction")
	}
	m.Residues[0].Set(0, 1, 99)
	if m.IsSymmetric(1e-12) {
		t.Fatalf("asymmetry not detected")
	}
}

func TestEvalWithBasisMatchesEval(t *testing.T) {
	// EvalWithBasis on a cached basis must reproduce Eval exactly, including
	// after the residues change under the fixed pole set (the enforcement
	// caching scenario).
	m := testModel(t)
	for _, omega := range []float64{0, 0.5, 3, 12, 100} {
		k := m.EvalBasis(omega)
		want := m.Eval(omega)
		got := m.EvalWithBasis(k)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("ω=%v: EvalWithBasis %v vs Eval %v", omega, got.Data[i], want.Data[i])
			}
		}
		// Perturb residues, reuse the same basis.
		pert := m.Clone()
		delta := make([]float64, pert.NumPoles())
		for d := range delta {
			delta[d] = 0.01 * float64(d+1)
		}
		pert.AddToCVector(0, 1, delta)
		want = pert.Eval(omega)
		got = pert.EvalWithBasis(k)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("ω=%v after perturbation: %v vs %v", omega, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestEvalWithBasisRejectsLengthMismatch(t *testing.T) {
	m := testModel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on basis length mismatch")
		}
	}()
	m.EvalWithBasis(make([]complex128, m.NumPoles()+1))
}
