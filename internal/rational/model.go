// Package rational implements matrix-valued pole-residue rational models
//
//	H(s) = Σ_m R_m/(s − p_m) + D
//
// with poles shared across all matrix entries, as produced by Vector
// Fitting. Complex poles appear in adjacent conjugate pairs so that the
// model is real (H(s̄) = H̄(s)), and the package provides the real
// block-diagonal (Gilbert) state-space realization that the passivity
// machinery perturbs.
package rational

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/mat"
	"repro/internal/statespace"
)

// Model is a matrix pole-residue rational function with common poles.
//
// Pole convention: Poles lists every pole; a complex pole p (Im p > 0) is
// immediately followed by its conjugate, and the corresponding Residues
// entries are conjugate matrices. Real poles carry real residue matrices.
type Model struct {
	Poles    []complex128
	Residues []*mat.CMatrix // one P×P residue matrix per pole
	D        *mat.Matrix    // P×P real direct-coupling term
}

// ErrBadPoleOrder indicates the pole list violates the conjugate-pair
// adjacency convention.
var ErrBadPoleOrder = errors.New("rational: complex poles must come in adjacent conjugate pairs")

// New builds a Model and validates the pair structure.
func New(poles []complex128, residues []*mat.CMatrix, d *mat.Matrix) (*Model, error) {
	if len(poles) != len(residues) {
		return nil, fmt.Errorf("rational: %d poles but %d residue matrices", len(poles), len(residues))
	}
	p := d.Rows
	if d.Cols != p {
		return nil, fmt.Errorf("rational: D must be square, got %d×%d", d.Rows, d.Cols)
	}
	for _, r := range residues {
		if r.Rows != p || r.Cols != p {
			return nil, fmt.Errorf("rational: residue size %d×%d does not match D %d×%d", r.Rows, r.Cols, p, p)
		}
	}
	m := &Model{Poles: poles, Residues: residues, D: d}
	if err := m.validatePairs(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Model) validatePairs() error {
	const tol = 1e-9
	for k := 0; k < len(m.Poles); {
		p := m.Poles[k]
		if imag(p) == 0 {
			k++
			continue
		}
		if k+1 >= len(m.Poles) {
			return ErrBadPoleOrder
		}
		q := m.Poles[k+1]
		if cmplx.Abs(q-cmplx.Conj(p)) > tol*(1+cmplx.Abs(p)) {
			return ErrBadPoleOrder
		}
		k += 2
	}
	return nil
}

// Ports returns the matrix dimension P.
func (m *Model) Ports() int { return m.D.Rows }

// NumPoles returns the number of poles (counting both members of each
// conjugate pair), which equals the state dimension of the basis
// realization.
func (m *Model) NumPoles() int { return len(m.Poles) }

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	poles := make([]complex128, len(m.Poles))
	copy(poles, m.Poles)
	res := make([]*mat.CMatrix, len(m.Residues))
	for i, r := range m.Residues {
		res[i] = r.Clone()
	}
	return &Model{Poles: poles, Residues: res, D: m.D.Clone()}
}

// IsStable reports whether every pole has real part < −tol.
func (m *Model) IsStable(tol float64) bool {
	for _, p := range m.Poles {
		if real(p) >= -tol {
			return false
		}
	}
	return true
}

// EvalBasis returns the partial-fraction basis vector k̃(ω) of length
// NumPoles such that H_ij(jω) = c_ij·k̃(ω) + D_ij, where c_ij is the
// residue coordinate vector of entry (i,j) (see CVector). Real pole slots
// hold 1/(jω−p); a conjugate pair occupies two slots holding
// 2(jω−α)/Δ and −2β/Δ with p = α+jβ, Δ = (jω−α)²+β².
func (m *Model) EvalBasis(omega float64) []complex128 {
	return m.EvalBasisInto(nil, omega)
}

// EvalBasisInto is EvalBasis writing into the caller-owned buffer dst
// (grown when its capacity is insufficient, so a warmed buffer makes the
// call allocation-free). It returns the filled slice of length NumPoles.
func (m *Model) EvalBasisInto(dst []complex128, omega float64) []complex128 {
	s := complex(0, omega)
	n := len(m.Poles)
	var k []complex128
	if cap(dst) >= n {
		k = dst[:n]
	} else {
		k = make([]complex128, n)
	}
	for i := 0; i < len(m.Poles); {
		p := m.Poles[i]
		if imag(p) == 0 {
			k[i] = 1 / (s - p)
			i++
			continue
		}
		al, be := real(p), imag(p)
		d := (s - complex(al, 0)) * (s - complex(al, 0)) * complex(1, 0)
		d += complex(be*be, 0)
		k[i] = 2 * (s - complex(al, 0)) / d
		k[i+1] = complex(-2*be, 0) / d
		i += 2
	}
	return k
}

// CVector returns the real residue coordinate vector c_ij of entry (i,j)
// with respect to the basis realization: real-pole slots hold Re(R_ij);
// each conjugate pair contributes [Re(R_ij), Im(R_ij)] of its first member.
func (m *Model) CVector(i, j int) []float64 {
	c := make([]float64, len(m.Poles))
	for k := 0; k < len(m.Poles); {
		r := m.Residues[k].At(i, j)
		if imag(m.Poles[k]) == 0 {
			c[k] = real(r)
			k++
			continue
		}
		c[k] = real(r)
		c[k+1] = imag(r)
		k += 2
	}
	return c
}

// SetCVector writes the residue coordinates of entry (i,j), keeping the
// conjugate-pair symmetry of the residue matrices intact.
func (m *Model) SetCVector(i, j int, c []float64) {
	if len(c) != len(m.Poles) {
		panic("rational: SetCVector length mismatch")
	}
	for k := 0; k < len(m.Poles); {
		if imag(m.Poles[k]) == 0 {
			m.Residues[k].Set(i, j, complex(c[k], 0))
			k++
			continue
		}
		m.Residues[k].Set(i, j, complex(c[k], c[k+1]))
		m.Residues[k+1].Set(i, j, complex(c[k], -c[k+1]))
		k += 2
	}
}

// AddToCVector adds delta to the residue coordinates of entry (i,j).
func (m *Model) AddToCVector(i, j int, delta []float64) {
	c := m.CVector(i, j)
	for k := range c {
		c[k] += delta[k]
	}
	m.SetCVector(i, j, c)
}

// Eval returns H(jω) as a complex P×P matrix.
func (m *Model) Eval(omega float64) *mat.CMatrix {
	return m.EvalWithBasis(m.EvalBasis(omega))
}

// EvalWithBasis combines a precomputed partial-fraction basis vector k
// (as returned by EvalBasis) with the current residues and D. Callers that
// sample the same frequencies repeatedly while only the residues change —
// the passivity enforcement loop, which never moves poles — can cache the
// basis once per frequency and skip its recomputation.
func (m *Model) EvalWithBasis(k []complex128) *mat.CMatrix {
	return m.EvalWithBasisInto(nil, k)
}

// EvalWithBasisInto is EvalWithBasis writing into the caller-owned P×P
// buffer dst (reallocated only when too small; a warmed buffer makes the
// call allocation-free). The accumulation runs pole-major: each residue
// matrix is streamed through exactly once, contiguously, instead of being
// revisited entry-by-entry — the entry-major order touches every residue
// P² times and dominates the sweep profile at large pole counts.
func (m *Model) EvalWithBasisInto(dst *mat.CMatrix, k []complex128) *mat.CMatrix {
	if len(k) != len(m.Poles) {
		panic("rational: EvalWithBasis length mismatch")
	}
	p := m.Ports()
	if dst == nil || cap(dst.Data) < p*p {
		dst = mat.NewCMatrix(p, p)
	} else {
		dst.Rows, dst.Cols = p, p
		dst.Data = dst.Data[:p*p]
	}
	hd := dst.Data
	for e, d := range m.D.Data {
		hd[e] = complex(d, 0)
	}
	// The scalar factors are real (Re R, Im R), so the complex products
	// expand to plain multiply-adds — half the multiplies of a full
	// complex·complex product, and bitwise identical to it (the imaginary
	// part of the scalar is exactly zero).
	for n := 0; n < len(m.Poles); {
		rd := m.Residues[n].Data
		if imag(m.Poles[n]) == 0 {
			knr, kni := real(k[n]), imag(k[n])
			for e, r := range rd {
				rr := real(r)
				h := hd[e]
				hd[e] = complex(real(h)+rr*knr, imag(h)+rr*kni)
			}
			n++
			continue
		}
		knr, kni := real(k[n]), imag(k[n])
		k1r, k1i := real(k[n+1]), imag(k[n+1])
		for e, r := range rd {
			rr, ri := real(r), imag(r)
			h := hd[e]
			hd[e] = complex(real(h)+(rr*knr+ri*k1r), imag(h)+(rr*kni+ri*k1i))
		}
		n += 2
	}
	return dst
}

// EvalEntry returns H_ij(jω).
func (m *Model) EvalEntry(i, j int, omega float64) complex128 {
	k := m.EvalBasis(omega)
	c := m.CVector(i, j)
	var sum complex128
	for n := range k {
		sum += complex(c[n], 0) * k[n]
	}
	return sum + complex(m.D.At(i, j), 0)
}

// BasisRealization returns the single-input real realization (A₁, b₁) of
// the common-pole basis: A₁ is block diagonal with 1×1 blocks for real
// poles and 2×2 blocks [[α,β],[−β,α]] for conjugate pairs; b₁ holds 1 for
// real slots and [2,0] for pair slots. With c_ij = CVector(i,j):
// H_ij(s) = c_ij(sI−A₁)⁻¹b₁ + D_ij.
func (m *Model) BasisRealization() (*mat.Matrix, []float64) {
	return BasisFromPoles(m.Poles)
}

// BasisFromPoles builds the single-input real realization (A₁, b₁) of the
// partial-fraction basis for an arbitrary canonical pole list (conjugate
// pairs adjacent). It is shared by Vector Fitting, which needs the basis
// before a Model exists.
func BasisFromPoles(poles []complex128) (*mat.Matrix, []float64) {
	n := len(poles)
	a := mat.NewMatrix(n, n)
	b := make([]float64, n)
	for k := 0; k < n; {
		p := poles[k]
		if imag(p) == 0 {
			a.Set(k, k, real(p))
			b[k] = 1
			k++
			continue
		}
		al, be := real(p), imag(p)
		a.Set(k, k, al)
		a.Set(k, k+1, be)
		a.Set(k+1, k, -be)
		a.Set(k+1, k+1, al)
		b[k] = 2
		b[k+1] = 0
		k += 2
	}
	return a, b
}

// EntryRealization returns the SISO state-space realization of entry (i,j).
func (m *Model) EntryRealization(i, j int) *statespace.System {
	a, b1 := m.BasisRealization()
	n := len(b1)
	b := mat.NewMatrix(n, 1)
	for k := 0; k < n; k++ {
		b.Set(k, 0, b1[k])
	}
	cv := m.CVector(i, j)
	c := mat.NewMatrix(1, n)
	for k := 0; k < n; k++ {
		c.Set(0, k, cv[k])
	}
	d := mat.NewMatrix(1, 1)
	d.Set(0, 0, m.D.At(i, j))
	return statespace.MustNew(a, b, c, d)
}

// Realization returns the full MIMO realization with A = I_P ⊗ A₁,
// B = I_P ⊗ b₁, and rows of C holding the per-entry residue coordinates.
// State ordering is port-major: states n·j..n·j+n−1 belong to input j.
func (m *Model) Realization() *statespace.System {
	p := m.Ports()
	a1, b1 := m.BasisRealization()
	n := len(b1)
	a := mat.NewMatrix(n*p, n*p)
	b := mat.NewMatrix(n*p, p)
	c := mat.NewMatrix(p, n*p)
	for j := 0; j < p; j++ {
		a.SetSlice(j*n, j*n, a1)
		for k := 0; k < n; k++ {
			b.Set(j*n+k, j, b1[k])
		}
		for i := 0; i < p; i++ {
			cv := m.CVector(i, j)
			for k := 0; k < n; k++ {
				c.Set(i, j*n+k, cv[k])
			}
		}
	}
	return statespace.MustNew(a, b, c, m.D.Clone())
}

// IsSymmetric reports whether the model is reciprocal: every residue matrix
// and D symmetric within tol (scaled by the matrix magnitude).
func (m *Model) IsSymmetric(tol float64) bool {
	p := m.Ports()
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			if math.Abs(m.D.At(i, j)-m.D.At(j, i)) > tol {
				return false
			}
			for _, r := range m.Residues {
				if cmplx.Abs(r.At(i, j)-r.At(j, i)) > tol*(1+cmplx.Abs(r.At(i, j))) {
					return false
				}
			}
		}
	}
	return true
}
