package rational

import (
	"math"
	"math/rand"
)

// RandomStablePoles draws a strictly stable canonical pole list (conjugate
// pairs adjacent) of length n: resonance frequencies spread over four
// decades with moderate damping, the geometry of PDN macromodels, plus
// occasional real poles. It backs the Gramian property tests, benchmarks
// and the Ext-G experiment, which must all agree on one pole convention.
func RandomStablePoles(rng *rand.Rand, n int) []complex128 {
	poles := make([]complex128, 0, n)
	for len(poles) < n {
		if n-len(poles) == 1 || rng.Float64() < 0.3 {
			poles = append(poles, complex(-0.1-3*rng.Float64(), 0))
			continue
		}
		wr := math.Pow(10, 4*rng.Float64())
		gamma := wr * (0.01 + 0.2*rng.Float64())
		poles = append(poles, complex(-gamma, wr), complex(-gamma, -wr))
	}
	return poles
}

// RandomScalarWeight draws a random stable SISO rational weight of the
// given order: RandomStablePoles poles, conjugate-symmetric residues, and
// a positive direct term so the weight never vanishes identically — the
// shape Magnitude Vector Fitting produces for the sensitivity weight Ξ̃.
func RandomScalarWeight(rng *rand.Rand, order int) (*Model, error) {
	poles := RandomStablePoles(rng, order)
	res := make([]complex128, len(poles))
	for k := 0; k < len(poles); {
		if imag(poles[k]) == 0 {
			res[k] = complex(rng.NormFloat64(), 0)
			k++
			continue
		}
		res[k] = complex(rng.NormFloat64(), rng.NormFloat64())
		res[k+1] = complex(real(res[k]), -imag(res[k]))
		k += 2
	}
	return NewScalar(poles, res, 0.2+rng.Float64())
}
