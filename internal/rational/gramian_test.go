package rational

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func randomStablePoles(rng *rand.Rand, n int) []complex128 {
	poles := make([]complex128, 0, n)
	for len(poles) < n {
		if n-len(poles) == 1 || rng.Float64() < 0.3 {
			poles = append(poles, complex(-0.1-3*rng.Float64(), 0))
			continue
		}
		wr := math.Pow(10, 4*rng.Float64())
		gamma := wr * (0.01 + 0.2*rng.Float64())
		poles = append(poles, complex(-gamma, wr), complex(-gamma, -wr))
	}
	return poles
}

// TestBasisGramianMatchesLyapunov: the closed-form block assembly must
// agree with the dense Schur-based Lyapunov solve on random stable pole
// sets mixing real poles and conjugate pairs.
func TestBasisGramianMatchesLyapunov(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		poles := randomStablePoles(rng, 2+rng.Intn(14))
		got, err := BasisGramian(poles)
		if err != nil {
			t.Fatal(err)
		}
		a1, b1 := BasisFromPoles(poles)
		b := mat.NewMatrix(len(b1), 1)
		for i, v := range b1 {
			b.Set(i, 0, v)
		}
		want, err := mat.ControllabilityGramian(a1, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equalish(want, 1e-8*(1+want.MaxAbs())) {
			t.Fatalf("trial %d (poles %v):\nclosed form:\n%v\nLyapunov:\n%v",
				trial, poles, got, want)
		}
	}
}

// TestBasisGramianRejectsUnstable: the closed form must refuse poles on or
// right of the imaginary axis, like the Lyapunov path does.
func TestBasisGramianRejectsUnstable(t *testing.T) {
	if _, err := BasisGramian([]complex128{complex(0.1, 0)}); err == nil {
		t.Fatal("unstable pole accepted")
	}
	if _, err := BasisGramian([]complex128{complex(0, 5), complex(0, -5)}); err == nil {
		t.Fatal("marginally stable pair accepted")
	}
}

// TestEvalWithBasisIntoMatchesEval: the pole-major Into path must agree
// with Eval to rounding, reuse its buffer allocation-free, and the basis
// Into variant must be exact.
func TestEvalWithBasisIntoMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	poles := randomStablePoles(rng, 8)
	p := 3
	res := make([]*mat.CMatrix, len(poles))
	for k := 0; k < len(poles); {
		r := mat.NewCMatrix(p, p)
		for i := range r.Data {
			r.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if imag(poles[k]) == 0 {
			for i := range r.Data {
				r.Data[i] = complex(real(r.Data[i]), 0)
			}
			res[k] = r
			k++
			continue
		}
		res[k] = r
		conj := r.Clone()
		for i := range conj.Data {
			conj.Data[i] = complex(real(conj.Data[i]), -imag(conj.Data[i]))
		}
		res[k+1] = conj
		k += 2
	}
	d := mat.NewMatrix(p, p)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	m, err := New(poles, res, d)
	if err != nil {
		t.Fatal(err)
	}

	var basis []complex128
	h := mat.NewCMatrix(p, p)
	for _, omega := range []float64{0, 0.3, 5, 77, 1e3} {
		want := m.Eval(omega)
		basis = m.EvalBasisInto(basis, omega)
		ref := m.EvalBasis(omega)
		for i := range ref {
			if basis[i] != ref[i] {
				t.Fatalf("ω=%v: EvalBasisInto[%d] = %v, want %v", omega, i, basis[i], ref[i])
			}
		}
		h = m.EvalWithBasisInto(h, basis)
		if !h.Equalish(want, 1e-12*(1+want.MaxAbs())) {
			t.Fatalf("ω=%v: EvalWithBasisInto differs from Eval", omega)
		}
	}

	// Zero steady-state allocations for the warmed Into pair.
	omega := 42.0
	basis = m.EvalBasisInto(basis, omega)
	h = m.EvalWithBasisInto(h, basis)
	if n := testing.AllocsPerRun(50, func() {
		basis = m.EvalBasisInto(basis, omega)
		h = m.EvalWithBasisInto(h, basis)
	}); n != 0 {
		t.Fatalf("EvalBasisInto+EvalWithBasisInto allocate %v times per frequency after warm-up", n)
	}
}
