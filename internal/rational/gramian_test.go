package rational

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

// TestBasisGramianMatchesLyapunov: the closed-form block assembly must
// agree with the dense Schur-based Lyapunov solve on random stable pole
// sets mixing real poles and conjugate pairs.
func TestBasisGramianMatchesLyapunov(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		poles := RandomStablePoles(rng, 2+rng.Intn(14))
		got, err := BasisGramian(poles)
		if err != nil {
			t.Fatal(err)
		}
		a1, b1 := BasisFromPoles(poles)
		b := mat.NewMatrix(len(b1), 1)
		for i, v := range b1 {
			b.Set(i, 0, v)
		}
		want, err := mat.ControllabilityGramian(a1, b)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equalish(want, 1e-8*(1+want.MaxAbs())) {
			t.Fatalf("trial %d (poles %v):\nclosed form:\n%v\nLyapunov:\n%v",
				trial, poles, got, want)
		}
	}
}

// TestBasisGramianRejectsUnstable: the closed form must refuse poles on or
// right of the imaginary axis, like the Lyapunov path does.
func TestBasisGramianRejectsUnstable(t *testing.T) {
	if _, err := BasisGramian([]complex128{complex(0.1, 0)}); err == nil {
		t.Fatal("unstable pole accepted")
	}
	if _, err := BasisGramian([]complex128{complex(0, 5), complex(0, -5)}); err == nil {
		t.Fatal("marginally stable pair accepted")
	}
}

// TestEvalWithBasisIntoMatchesEval: the pole-major Into path must agree
// with Eval to rounding, reuse its buffer allocation-free, and the basis
// Into variant must be exact.
func TestEvalWithBasisIntoMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	poles := RandomStablePoles(rng, 8)
	p := 3
	res := make([]*mat.CMatrix, len(poles))
	for k := 0; k < len(poles); {
		r := mat.NewCMatrix(p, p)
		for i := range r.Data {
			r.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		if imag(poles[k]) == 0 {
			for i := range r.Data {
				r.Data[i] = complex(real(r.Data[i]), 0)
			}
			res[k] = r
			k++
			continue
		}
		res[k] = r
		conj := r.Clone()
		for i := range conj.Data {
			conj.Data[i] = complex(real(conj.Data[i]), -imag(conj.Data[i]))
		}
		res[k+1] = conj
		k += 2
	}
	d := mat.NewMatrix(p, p)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	m, err := New(poles, res, d)
	if err != nil {
		t.Fatal(err)
	}

	var basis []complex128
	h := mat.NewCMatrix(p, p)
	for _, omega := range []float64{0, 0.3, 5, 77, 1e3} {
		want := m.Eval(omega)
		basis = m.EvalBasisInto(basis, omega)
		ref := m.EvalBasis(omega)
		for i := range ref {
			if basis[i] != ref[i] {
				t.Fatalf("ω=%v: EvalBasisInto[%d] = %v, want %v", omega, i, basis[i], ref[i])
			}
		}
		h = m.EvalWithBasisInto(h, basis)
		if !h.Equalish(want, 1e-12*(1+want.MaxAbs())) {
			t.Fatalf("ω=%v: EvalWithBasisInto differs from Eval", omega)
		}
	}

	// Zero steady-state allocations for the warmed Into pair.
	omega := 42.0
	basis = m.EvalBasisInto(basis, omega)
	h = m.EvalWithBasisInto(h, basis)
	if n := testing.AllocsPerRun(50, func() {
		basis = m.EvalBasisInto(basis, omega)
		h = m.EvalWithBasisInto(h, basis)
	}); n != 0 {
		t.Fatalf("EvalBasisInto+EvalWithBasisInto allocate %v times per frequency after warm-up", n)
	}
}

// TestCascadeGramianIdentityWeightReducesToBasis: a unit weight Ξ̃(s) = 1 —
// order 0 (pure gain) or order 1 with a zero residue — turns the cascade
// S·Ξ̃ back into S, so P^Ξ,11 must equal the unweighted basis Gramian.
func TestCascadeGramianIdentityWeightReducesToBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	unit0, err := NewScalar(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	unit1, err := NewScalar([]complex128{complex(-7, 0)}, []complex128{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		poles := RandomStablePoles(rng, 2+rng.Intn(14))
		want, err := BasisGramian(poles)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-12 * (1 + want.MaxAbs())
		for name, w := range map[string]*Model{"order0": unit0, "order1": unit1} {
			got, err := CascadeGramian(poles, w)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			if !got.Equalish(want, tol) {
				t.Fatalf("trial %d: %s unit weight does not reduce to BasisGramian\n(poles %v)",
					trial, name, poles)
			}
		}
	}
}

// TestCascadeGramianSPDAndSymmetric: across ~50 random (model poles,
// weight) pairs the closed-form P^Ξ,11 must be exactly symmetric (the
// assembly scatters both triangles from one solve) and positive definite
// (it is a principal block of a controllability Gramian).
func TestCascadeGramianSPDAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		poles := RandomStablePoles(rng, 2+rng.Intn(16))
		weight, err := RandomScalarWeight(rng, 1+rng.Intn(8))
		if err != nil {
			t.Fatal(err)
		}
		g, err := CascadeGramian(poles, weight)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < g.Rows; i++ {
			for j := i + 1; j < g.Cols; j++ {
				if g.At(i, j) != g.At(j, i) {
					t.Fatalf("trial %d: asymmetric at (%d,%d): %v vs %v",
						trial, i, j, g.At(i, j), g.At(j, i))
				}
			}
		}
		if _, err := mat.CholFactor(g); err != nil {
			t.Fatalf("trial %d: P^Ξ,11 not SPD: %v", trial, err)
		}
	}
}

// TestCascadeGramianRejectsBadInputs: non-SISO weights and unstable poles
// (on either side of the cascade) must be refused with the typed sentinels.
func TestCascadeGramianRejectsBadInputs(t *testing.T) {
	unit, err := NewScalar(nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	stable := []complex128{complex(-1, 0)}
	if _, err := CascadeGramian([]complex128{complex(0.1, 0)}, unit); err != ErrUnstablePoles {
		t.Fatalf("unstable model poles: got %v", err)
	}
	unstableW, err := NewScalar([]complex128{complex(0.5, 0)}, []complex128{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CascadeGramian(stable, unstableW); err != ErrUnstablePoles {
		t.Fatalf("unstable weight poles: got %v", err)
	}
	mimo := &Model{D: mat.NewMatrix(2, 2)}
	if _, err := CascadeGramian(stable, mimo); err != ErrWeightNotSISO {
		t.Fatalf("MIMO weight: got %v", err)
	}
}
