package rational

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// ErrUnstablePoles is returned by BasisGramian and CascadeGramian for a
// pole set that is not strictly stable (the Gramian integral diverges).
var ErrUnstablePoles = errors.New("rational: basis Gramian needs strictly stable poles")

// ErrWeightNotSISO is returned by CascadeGramian when the weight model is
// not scalar (the paper's Ξ̃(s) is a SISO magnitude weight).
var ErrWeightNotSISO = errors.New("rational: cascade weight model must be SISO")

// block is one diagonal block of a basis realization: slot k, size 1 for a
// real pole or 2 for a conjugate pair.
type block struct {
	k, size int
}

// poleBlocks splits a canonical pole list (conjugate pairs adjacent) into
// the diagonal blocks of its basis realization.
func poleBlocks(poles []complex128) []block {
	blocks := make([]block, 0, len(poles))
	for k := 0; k < len(poles); {
		if imag(poles[k]) == 0 {
			blocks = append(blocks, block{k, 1})
			k++
		} else {
			blocks = append(blocks, block{k, 2})
			k += 2
		}
	}
	return blocks
}

// loadBlock returns the (A, b) pieces of one diagonal block, matching
// BasisFromPoles: a real pole p gives A = [p], b = [1]; a conjugate pair
// α±jβ gives A = [[α,β],[−β,α]], b = [2,0].
func loadBlock(poles []complex128, b block) ([2][2]float64, [2]float64) {
	p := poles[b.k]
	if b.size == 1 {
		return [2][2]float64{{real(p), 0}, {0, 0}}, [2]float64{1, 0}
	}
	al, be := real(p), imag(p)
	return [2][2]float64{{al, be}, {-be, al}}, [2]float64{2, 0}
}

// sylvesterBlock solves the tiny Sylvester equation
//
//	A_a·X + X·A_bᵀ = rhs,   ra×rb with ra, rb ≤ 2,
//
// by Gaussian elimination on its vectorization
// (I_rb ⊗ A_a + A_b ⊗ I_ra)·vec(X) = vec(rhs), columns stacked. The
// solution overwrites rhs. The system is nonsingular whenever no
// eigenvalue of A_a is the negative of one of A_b — guaranteed for two
// strictly stable blocks.
func sylvesterBlock(aa, ab [2][2]float64, ra, rb int, rhs *[2][2]float64) error {
	dim := ra * rb
	var m [4][5]float64 // augmented [M | vec(rhs)]
	for c := 0; c < rb; c++ {
		for r := 0; r < ra; r++ {
			row := c*ra + r
			for cc := 0; cc < rb; cc++ {
				for rr := 0; rr < ra; rr++ {
					col := cc*ra + rr
					v := 0.0
					if c == cc {
						v += aa[r][rr]
					}
					if r == rr {
						v += ab[c][cc]
					}
					m[row][col] = v
				}
			}
			m[row][dim] = rhs[r][c]
		}
	}
	if err := solveSmall(&m, dim); err != nil {
		return err
	}
	for c := 0; c < rb; c++ {
		for r := 0; r < ra; r++ {
			rhs[r][c] = m[c*ra+r][dim]
		}
	}
	return nil
}

// BasisGramian returns the controllability Gramian P₁ of the single-input
// basis realization (A₁, b₁) = BasisFromPoles(poles) in closed form. A₁ is
// block diagonal (1×1 blocks for real poles, 2×2 blocks for conjugate
// pairs), so the Lyapunov equation A₁P + PA₁ᵀ = −b₁b₁ᵀ decouples into one
// tiny Sylvester system per block pair,
//
//	A_a·X + X·A_bᵀ = −b_a·b_bᵀ,   X = P[block a, block b],
//
// each at most 2×2 and solved directly by a ≤4×4 Gaussian elimination on
// its vectorization. The assembly is O(n²) with no Schur step — the dense
// quasi-triangular solve behind mat.ControllabilityGramian is O(n³) and
// dominates the whole enforcement run for pole counts in the hundreds.
func BasisGramian(poles []complex128) (*mat.Matrix, error) {
	for _, p := range poles {
		if real(p) >= 0 {
			return nil, ErrUnstablePoles
		}
	}
	n := len(poles)
	g := mat.NewMatrix(n, n)
	blocks := poleBlocks(poles)
	for ai, ba := range blocks {
		aa, bva := loadBlock(poles, ba)
		for bi := ai; bi < len(blocks); bi++ {
			bb := blocks[bi]
			ab, bvb := loadBlock(poles, bb)
			var rhs [2][2]float64
			for r := 0; r < ba.size; r++ {
				for c := 0; c < bb.size; c++ {
					rhs[r][c] = -bva[r] * bvb[c]
				}
			}
			if err := sylvesterBlock(aa, ab, ba.size, bb.size, &rhs); err != nil {
				return nil, err
			}
			// Scatter X into the Gramian; X_ba = X_abᵀ by symmetry of P.
			for c := 0; c < bb.size; c++ {
				for r := 0; r < ba.size; r++ {
					g.Set(ba.k+r, bb.k+c, rhs[r][c])
					g.Set(bb.k+c, ba.k+r, rhs[r][c])
				}
			}
		}
	}
	return g, nil
}

// CascadeGramian returns the (1,1) block P^Ξ,11 of the controllability
// Gramian of the cascade S(s)·Ξ̃(s) in closed form (Ubolli et al., DATE
// 2014, eqs. 18–20): poles are the model's common poles (basis realization
// (A₁, b₁)), weight is the SISO rational weight Ξ̃ with realization
// (Ã, b̃, c̃, d̃). The cascade state matrix
//
//	A = | A₁  b₁c̃ |     B = | b₁d̃ |
//	    | 0    Ã  |         |  b̃  |
//
// is block upper-triangular with block-diagonal A₁ and Ã, so instead of
// one dense (n+n_w)-dimensional Lyapunov solve the partitioned equations
// decouple into tiny (≤2×2) Sylvester blocks:
//
//	P22:  Ã·P22 + P22·Ãᵀ = −b̃b̃ᵀ                    (the weight's own Gramian)
//	P12:  A₁·P12 + P12·Ãᵀ = −b₁·vᵀ,  v = d̃b̃ + P22c̃ᵀ
//	P11:  A₁·P11 + P11·A₁ᵀ = −(d̃²·b₁b₁ᵀ + b₁wᵀ + wb₁ᵀ),  w = P12c̃ᵀ
//
// The assembly is O(n² + n·n_w), removing the O((n+n_w)³) dense solve from
// the weighted enforcement path; with poles shared by all entries the
// block is computed once per model. An order-0 weight (pure gain d̃)
// degenerates to d̃²·BasisGramian(poles). statespace.Series + the dense
// Lyapunov solve remain available as the validation oracle
// (core.WeightedGramianDense).
func CascadeGramian(poles []complex128, weight *Model) (*mat.Matrix, error) {
	if weight.Ports() != 1 {
		return nil, ErrWeightNotSISO
	}
	for _, p := range poles {
		if real(p) >= 0 {
			return nil, ErrUnstablePoles
		}
	}
	for _, p := range weight.Poles {
		if real(p) >= 0 {
			return nil, ErrUnstablePoles
		}
	}
	n := len(poles)
	nw := len(weight.Poles)
	wc := weight.CVector(0, 0)
	wd := weight.D.At(0, 0)

	// P22: the weight basis Gramian (nw×nw, block closed form).
	p22, err := BasisGramian(weight.Poles)
	if err != nil {
		return nil, err
	}

	// v = d̃·b̃ + P22·c̃ᵀ.
	_, bw := BasisFromPoles(weight.Poles)
	v := make([]float64, nw)
	for i := 0; i < nw; i++ {
		s := wd * bw[i]
		for j := 0; j < nw; j++ {
			s += p22.At(i, j) * wc[j]
		}
		v[i] = s
	}

	mBlocks := poleBlocks(poles)
	wBlocks := poleBlocks(weight.Poles)

	// P12 (n×nw): block (a,b) solves A_a·X + X·Ã_bᵀ = −b_a·v_bᵀ.
	p12 := mat.NewMatrix(n, nw)
	for _, ba := range mBlocks {
		aa, bva := loadBlock(poles, ba)
		for _, bb := range wBlocks {
			ab, _ := loadBlock(weight.Poles, bb)
			var rhs [2][2]float64
			for r := 0; r < ba.size; r++ {
				for c := 0; c < bb.size; c++ {
					rhs[r][c] = -bva[r] * v[bb.k+c]
				}
			}
			if err := sylvesterBlock(aa, ab, ba.size, bb.size, &rhs); err != nil {
				return nil, err
			}
			for r := 0; r < ba.size; r++ {
				for c := 0; c < bb.size; c++ {
					p12.Set(ba.k+r, bb.k+c, rhs[r][c])
				}
			}
		}
	}

	// w = P12·c̃ᵀ.
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < nw; j++ {
			s += p12.At(i, j) * wc[j]
		}
		w[i] = s
	}

	// P11: block (a,b) solves
	// A_a·X + X·A_bᵀ = −(d̃²·b_a·b_bᵀ + b_a·w_bᵀ + w_a·b_bᵀ).
	dd := wd * wd
	p11 := mat.NewMatrix(n, n)
	for ai, ba := range mBlocks {
		aa, bva := loadBlock(poles, ba)
		for bi := ai; bi < len(mBlocks); bi++ {
			bb := mBlocks[bi]
			ab, bvb := loadBlock(poles, bb)
			var rhs [2][2]float64
			for r := 0; r < ba.size; r++ {
				for c := 0; c < bb.size; c++ {
					rhs[r][c] = -(dd*bva[r]*bvb[c] +
						bva[r]*w[bb.k+c] + w[ba.k+r]*bvb[c])
				}
			}
			if err := sylvesterBlock(aa, ab, ba.size, bb.size, &rhs); err != nil {
				return nil, err
			}
			for c := 0; c < bb.size; c++ {
				for r := 0; r < ba.size; r++ {
					p11.Set(ba.k+r, bb.k+c, rhs[r][c])
					p11.Set(bb.k+c, ba.k+r, rhs[r][c])
				}
			}
		}
	}
	return p11, nil
}

// solveSmall runs Gaussian elimination with partial pivoting on the
// augmented system m[:dim][:dim+1], leaving the solution in column dim.
func solveSmall(m *[4][5]float64, dim int) error {
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return ErrUnstablePoles
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < dim; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] * inv
			for c := col; c <= dim; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for r := 0; r < dim; r++ {
		m[r][dim] /= m[r][r]
	}
	return nil
}
