package rational

import (
	"errors"
	"math"

	"repro/internal/mat"
)

// ErrUnstablePoles is returned by BasisGramian for a pole set that is not
// strictly stable (the Gramian integral diverges).
var ErrUnstablePoles = errors.New("rational: basis Gramian needs strictly stable poles")

// BasisGramian returns the controllability Gramian P₁ of the single-input
// basis realization (A₁, b₁) = BasisFromPoles(poles) in closed form. A₁ is
// block diagonal (1×1 blocks for real poles, 2×2 blocks for conjugate
// pairs), so the Lyapunov equation A₁P + PA₁ᵀ = −b₁b₁ᵀ decouples into one
// tiny Sylvester system per block pair,
//
//	A_a·X + X·A_bᵀ = −b_a·b_bᵀ,   X = P[block a, block b],
//
// each at most 2×2 and solved directly by a ≤4×4 Gaussian elimination on
// its vectorization. The assembly is O(n²) with no Schur step — the dense
// quasi-triangular solve behind mat.ControllabilityGramian is O(n³) and
// dominates the whole enforcement run for pole counts in the hundreds.
func BasisGramian(poles []complex128) (*mat.Matrix, error) {
	for _, p := range poles {
		if real(p) >= 0 {
			return nil, ErrUnstablePoles
		}
	}
	n := len(poles)
	g := mat.NewMatrix(n, n)

	// Block boundaries: each entry is the starting slot of a block.
	type block struct {
		k, size int
	}
	blocks := make([]block, 0, n)
	for k := 0; k < n; {
		if imag(poles[k]) == 0 {
			blocks = append(blocks, block{k, 1})
			k++
		} else {
			blocks = append(blocks, block{k, 2})
			k += 2
		}
	}

	// Per-block realization pieces, matching BasisFromPoles.
	var aBlk [2][2]float64
	var bBlk [2]float64
	load := func(b block) ([2][2]float64, [2]float64) {
		p := poles[b.k]
		if b.size == 1 {
			aBlk = [2][2]float64{{real(p), 0}, {0, 0}}
			bBlk = [2]float64{1, 0}
		} else {
			al, be := real(p), imag(p)
			aBlk = [2][2]float64{{al, be}, {-be, al}}
			bBlk = [2]float64{2, 0}
		}
		return aBlk, bBlk
	}

	for ai, ba := range blocks {
		aa, bva := load(ba)
		for bi := ai; bi < len(blocks); bi++ {
			bb := blocks[bi]
			ab, bvb := load(bb)
			ra, rb := ba.size, bb.size
			// Sylvester system on vec(X), columns stacked:
			// (I_rb ⊗ A_a + A_b ⊗ I_ra)·vec(X) = −vec(b_a·b_bᵀ).
			dim := ra * rb
			var m [4][5]float64 // augmented [M | rhs]
			for c := 0; c < rb; c++ {
				for r := 0; r < ra; r++ {
					row := c*ra + r
					for cc := 0; cc < rb; cc++ {
						for rr := 0; rr < ra; rr++ {
							col := cc*ra + rr
							v := 0.0
							if c == cc {
								v += aa[r][rr]
							}
							if r == rr {
								v += ab[c][cc]
							}
							m[row][col] = v
						}
					}
					m[row][dim] = -bva[r] * bvb[c]
				}
			}
			if err := solveSmall(&m, dim); err != nil {
				return nil, err
			}
			// Scatter X into the Gramian; X_ba = X_abᵀ by symmetry of P.
			for c := 0; c < rb; c++ {
				for r := 0; r < ra; r++ {
					x := m[c*ra+r][dim]
					g.Set(ba.k+r, bb.k+c, x)
					g.Set(bb.k+c, ba.k+r, x)
				}
			}
		}
	}
	return g, nil
}

// solveSmall runs Gaussian elimination with partial pivoting on the
// augmented system m[:dim][:dim+1], leaving the solution in column dim.
func solveSmall(m *[4][5]float64, dim int) error {
	for col := 0; col < dim; col++ {
		piv := col
		for r := col + 1; r < dim; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if m[piv][col] == 0 {
			return ErrUnstablePoles
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := 0; r < dim; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] * inv
			for c := col; c <= dim; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	for r := 0; r < dim; r++ {
		m[r][dim] /= m[r][r]
	}
	return nil
}
