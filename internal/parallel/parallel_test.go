package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestForVisitsEachIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		n := 1000
		counts := make([]int64, n)
		For(workers, n, func(i int) { atomic.AddInt64(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForZeroAndNegativeN(t *testing.T) {
	called := false
	For(4, 0, func(int) { called = true })
	For(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn must not run for n ≤ 0")
	}
}

func TestForDeterministicResult(t *testing.T) {
	f := func(seed uint8) bool {
		n := 257
		a := make([]float64, n)
		b := make([]float64, n)
		work := func(out []float64) func(int) {
			return func(i int) { out[i] = float64(i*i+int(seed)) / 3.0 }
		}
		For(1, n, work(a))
		For(8, n, work(b))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestForWorkerVisitsEachIndexOnceWithValidWorker(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		n := 1000
		counts := make([]int64, n)
		bound := workers
		if bound <= 0 {
			bound = n // GOMAXPROCS-resolved; any id below n is structurally valid
		}
		ForWorker(workers, n, func(w, i int) {
			if w < 0 || w >= bound {
				t.Errorf("workers=%d: worker id %d out of range", workers, w)
			}
			atomic.AddInt64(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForWorkerIsolatesWorkerState(t *testing.T) {
	// Each worker accumulates into its own slot without synchronization —
	// the contract that per-worker workspaces rely on. The per-worker sums
	// must add up to the total exactly.
	workers := 8
	n := 5000
	sums := make([]int64, workers)
	ForWorker(workers, n, func(w, i int) { sums[w] += int64(i) })
	var total int64
	for _, s := range sums {
		total += s
	}
	if want := int64(n) * int64(n-1) / 2; total != want {
		t.Fatalf("per-worker partial sums total %d, want %d", total, want)
	}
}

func TestForCtxCompletesWithoutCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		n := 500
		counts := make([]int64, n)
		err := ForCtx(context.Background(), workers, n, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForCtxAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran int64
		err := ForCtx(ctx, workers, 100, func(int) { atomic.AddInt64(&ran, 1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", workers, err)
		}
		// A pre-cancelled context may still let the first claims through on
		// the parallel path (workers observe ctx once per claim), but a
		// serial run must not start any index.
		if workers == 1 && ran != 0 {
			t.Fatalf("serial run executed %d indices under a cancelled context", ran)
		}
	}
}

func TestForWorkerCtxDrainsInFlightAndLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var started, finished int64
	err := ForWorkerCtx(ctx, 4, 10000, func(_, i int) {
		if atomic.AddInt64(&started, 1) == 5 {
			cancel() // cancel mid-run from inside the work itself
		}
		time.Sleep(50 * time.Microsecond)
		atomic.AddInt64(&finished, 1)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// Deterministic drain: every claimed index ran to completion.
	if s, f := atomic.LoadInt64(&started), atomic.LoadInt64(&finished); s != f {
		t.Fatalf("%d indices started but only %d finished", s, f)
	}
	if finished >= 10000 {
		t.Fatal("cancellation did not stop the claim loop")
	}
	// All worker goroutines must be joined; allow the runtime a settle loop.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestForWorkerCtxNilContext(t *testing.T) {
	var ran int64
	if err := ForWorkerCtx(nil, 2, 64, func(_, i int) { atomic.AddInt64(&ran, 1) }); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("unexpected error %v", err)
	}
	if ran != 64 {
		t.Fatalf("ran %d of 64 indices", ran)
	}
}

func TestForErrReturnsLowestIndexError(t *testing.T) {
	e7 := errors.New("seven")
	e3 := errors.New("three")
	err := ForErr(4, 10, func(i int) error {
		switch i {
		case 7:
			return e7
		case 3:
			return e3
		}
		return nil
	})
	if err != e3 {
		t.Fatalf("got %v want error of index 3", err)
	}
	if err := ForErr(4, 10, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}
