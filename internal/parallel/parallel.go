// Package parallel provides a small deterministic fork-join helper for the
// embarrassingly parallel frequency sweeps of the library (singular-value
// sweeps, target-impedance and sensitivity evaluations). Results are
// bitwise independent of the worker count because every index writes only
// its own output slot; cf. the parallel Vector Fitting discussion in
// Chinea & Grivet-Talocia (ref. [11] of the paper).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), distributing indices over up to
// workers goroutines. workers ≤ 0 selects GOMAXPROCS; a single worker (or
// tiny n) runs inline. fn must be safe to call concurrently for distinct
// indices.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForWorker is For with a stable worker identity: fn(w, i) runs index i on
// worker w ∈ [0, workers), letting callers hand each goroutine its own
// reusable workspace. Like For, every index writes only its own output, so
// results stay bitwise independent of the worker count — the workspaces
// must only carry scratch state, never values that feed other indices.
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForErr is For with error collection: it returns the error of the lowest
// index whose fn failed (or nil). All indices are attempted regardless.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
