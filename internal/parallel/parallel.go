// Package parallel provides a small deterministic fork-join helper for the
// embarrassingly parallel frequency sweeps of the library (singular-value
// sweeps, target-impedance and sensitivity evaluations). Results are
// bitwise independent of the worker count because every index writes only
// its own output slot; cf. the parallel Vector Fitting discussion in
// Chinea & Grivet-Talocia (ref. [11] of the paper).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n), distributing indices over up to
// workers goroutines. workers ≤ 0 selects GOMAXPROCS; a single worker (or
// tiny n) runs inline. fn must be safe to call concurrently for distinct
// indices.
func For(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForWorker is For with a stable worker identity: fn(w, i) runs index i on
// worker w ∈ [0, workers), letting callers hand each goroutine its own
// reusable workspace. Like For, every index writes only its own output, so
// results stay bitwise independent of the worker count — the workspaces
// must only carry scratch state, never values that feed other indices.
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: once ctx is done, workers
// stop claiming new indices, indices already in flight run to completion,
// and every goroutine is joined before the call returns — the drain is
// deterministic in the sense that a claimed index is never abandoned
// halfway and no goroutine outlives the call. It returns nil when all n
// indices completed (even if ctx was cancelled after the last claim) and
// ctx.Err() when the cancellation left indices unclaimed; callers must
// treat their output as partial in that case.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	return ForWorkerCtx(ctx, workers, n, func(_, i int) { fn(i) })
}

// ForWorkerCtx is ForWorker with the cooperative cancellation of ForCtx:
// stable worker identities, no new claims after ctx is done, in-flight
// indices drained, all goroutines joined. Returns nil when every index
// completed, ctx.Err() otherwise.
func ForWorkerCtx(ctx context.Context, workers, n int, fn func(worker, i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var done int64 // indices fully completed
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(0, i)
			done++
		}
		return nil
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
				atomic.AddInt64(&done, 1)
			}
		}(w)
	}
	wg.Wait()
	if atomic.LoadInt64(&done) == int64(n) {
		return nil
	}
	return ctx.Err()
}

// ForErr is For with error collection: it returns the error of the lowest
// index whose fn failed (or nil). All indices are attempted regardless.
func ForErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	For(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
