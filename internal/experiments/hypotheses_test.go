package experiments

import (
	"os"
	"strings"
	"testing"

	"repro/internal/experiments/hypothesis"
)

// TestHypothesesShape pins down the registered specs: the promoted
// Ext-E..Ext-H experiments must keep their IDs, classes and judgement
// subtypes, because FINDINGS artifacts and the CLI refer to them by ID.
func TestHypothesesShape(t *testing.T) {
	reg, err := Hypotheses()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		id      string
		class   hypothesis.Class
		subtype hypothesis.Subtype
	}{
		{"ext-e-adaptive-economy", hypothesis.Statistical, hypothesis.Dominance},
		{"ext-f-batch-bitwise", hypothesis.Deterministic, hypothesis.Invariant},
		{"ext-g-gramian-oracle", hypothesis.Deterministic, hypothesis.Invariant},
		{"ext-h-certified-closure", hypothesis.Deterministic, hypothesis.Invariant},
		{"ext-h-certified-overhead", hypothesis.Statistical, hypothesis.Bounded},
	}
	specs := reg.Specs()
	if len(specs) != len(want) {
		t.Fatalf("registry holds %d specs, want %d", len(specs), len(want))
	}
	for i, w := range want {
		s := specs[i]
		if s.ID != w.id || s.Class != w.class || s.Subtype != w.subtype {
			t.Fatalf("spec %d = %s/%s/%s, want %s/%s/%s",
				i, s.ID, s.Class, s.Subtype, w.id, w.class, w.subtype)
		}
		if s.Claim == "" || s.Primary == "" {
			t.Fatalf("spec %s missing claim or primary metric", s.ID)
		}
		if s.Subtype == hypothesis.Bounded && s.Threshold <= 0 {
			t.Fatalf("bounded spec %s has no explicit threshold", s.ID)
		}
	}
}

// TestHypothesesDeterministicConfirm evaluates the cheap deterministic
// specs end-to-end and checks the artifacts they emit. The statistical
// timing specs (ext-e economy, ext-h overhead) are exercised by the CLI
// and their committed FINDINGS artifacts, not re-timed here.
func TestHypothesesDeterministicConfirm(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping model-building hypothesis runs in -short mode")
	}
	reg, err := Hypotheses()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, id := range []string{"ext-f-batch-bitwise", "ext-g-gramian-oracle"} {
		spec, ok := reg.Get(id)
		if !ok {
			t.Fatalf("spec %s not registered", id)
		}
		f, err := hypothesis.Evaluate(spec)
		if err != nil {
			t.Fatal(err)
		}
		if f.Verdict != hypothesis.Confirmed {
			t.Fatalf("%s judged %s: %s", id, f.Verdict, f.Reason)
		}
		jsPath, err := f.Write(dir)
		if err != nil {
			t.Fatal(err)
		}
		back, err := hypothesis.ReadFinding(jsPath)
		if err != nil {
			t.Fatal(err)
		}
		if back.ID != id || back.Verdict != hypothesis.Confirmed {
			t.Fatalf("artifact for %s read back as %s/%s", id, back.ID, back.Verdict)
		}
		md, err := os.ReadFile(strings.TrimSuffix(jsPath, ".json") + ".md")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(md), "## Verdict: CONFIRMED") {
			t.Fatalf("%s markdown artifact missing verdict header", id)
		}
	}
}
