package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"os"
	"path/filepath"
	"strings"

	repro "repro"
)

// Series is one plottable column set: an x axis (frequency unless XLabel
// says otherwise) plus named columns.
type Series struct {
	Name    string
	FreqHz  []float64 // the x axis; time for transient series (see XLabel)
	Columns map[string][]float64
	Order   []string // column order for CSV output
	XLabel  string   // CSV header of the x column; "" means "freq_hz"
}

// WriteCSV writes the series to dir/<name>.csv.
func (s *Series) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	x := s.XLabel
	if x == "" {
		x = "freq_hz"
	}
	b.WriteString(x)
	for _, c := range s.Order {
		b.WriteString(",")
		b.WriteString(c)
	}
	b.WriteString("\n")
	for i := range s.FreqHz {
		fmt.Fprintf(&b, "%.10e", s.FreqHz[i])
		for _, c := range s.Order {
			fmt.Fprintf(&b, ",%.10e", s.Columns[c][i])
		}
		b.WriteString("\n")
	}
	return os.WriteFile(filepath.Join(dir, s.Name+".csv"), []byte(b.String()), 0o644)
}

// FigResult bundles the series and headline metrics of one figure.
type FigResult struct {
	Figure  string
	Series  []*Series
	Metrics map[string]float64
	Notes   []string
}

// WriteCSV emits all series of the figure.
func (r *FigResult) WriteCSV(dir string) error {
	for _, s := range r.Series {
		if err := s.WriteCSV(dir); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the metrics for terminal output.
func (r *FigResult) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Figure)
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-42s %.6g\n", k, r.Metrics[k])
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func sortStrings(v []string) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Fig1 — scattering responses of the STANDARD model vs raw data (paper
// Fig. 1): S(1,1) and S(1,2) magnitude and phase, plus fit-quality metrics.
func (c *Context) Fig1() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	model, rep, err := c.StandardFit()
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "fig1_scattering_standard",
		Columns: map[string][]float64{},
		Order: []string{
			"s11_data_db", "s11_model_db", "s12_data_db", "s12_model_db",
			"s11_data_deg", "s11_model_deg", "s12_data_deg", "s12_model_deg",
		},
	}
	for _, col := range s.Order {
		s.Columns[col] = nil
	}
	for k, f := range syn.Data.Freq {
		s.FreqHz = append(s.FreqHz, f)
		d11 := syn.Data.At(k, 0, 0)
		d12 := syn.Data.At(k, 0, 1)
		m11 := model.EvalEntry(0, 0, f)
		m12 := model.EvalEntry(0, 1, f)
		s.Columns["s11_data_db"] = append(s.Columns["s11_data_db"], db(cmplx.Abs(d11)))
		s.Columns["s11_model_db"] = append(s.Columns["s11_model_db"], db(cmplx.Abs(m11)))
		s.Columns["s12_data_db"] = append(s.Columns["s12_data_db"], db(cmplx.Abs(d12)))
		s.Columns["s12_model_db"] = append(s.Columns["s12_model_db"], db(cmplx.Abs(m12)))
		s.Columns["s11_data_deg"] = append(s.Columns["s11_data_deg"], cmplx.Phase(d11)*180/math.Pi)
		s.Columns["s11_model_deg"] = append(s.Columns["s11_model_deg"], cmplx.Phase(m11)*180/math.Pi)
		s.Columns["s12_data_deg"] = append(s.Columns["s12_data_deg"], cmplx.Phase(d12)*180/math.Pi)
		s.Columns["s12_model_deg"] = append(s.Columns["s12_model_deg"], cmplx.Phase(m12)*180/math.Pi)
	}
	return &FigResult{
		Figure: "Fig1: scattering fit, standard model",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"fit_rms_error":      rep.RMSErr,
			"fit_max_abs_error":  rep.MaxAbsErr,
			"model_order":        float64(model.NumPoles()),
			"vf_iterations_used": float64(rep.Iterations),
		},
		Notes: []string{"model matches raw scattering data closely (paper: 'match very closely the raw data')"},
	}, nil
}

// Fig2 — target impedance after fitting (paper Fig. 2): nominal vs standard
// model vs sensitivity-weighted model, before any passivity enforcement.
func (c *Context) Fig2() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	zref, err := c.ReferenceZ()
	if err != nil {
		return nil, err
	}
	std, _, err := c.StandardFit()
	if err != nil {
		return nil, err
	}
	wgt, _, err := c.WeightedFit()
	if err != nil {
		return nil, err
	}
	freqs := syn.Data.Freq
	zStd, err := repro.TargetImpedanceModel(std, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zW, err := repro.TargetImpedanceModel(wgt, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "fig2_target_impedance_after_fitting",
		Columns: map[string][]float64{},
		Order:   []string{"z_nominal_ohm", "z_standard_ohm", "z_weighted_ohm"},
	}
	for i, f := range freqs {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["z_nominal_ohm"] = append(s.Columns["z_nominal_ohm"], cmplx.Abs(zref[i]))
		s.Columns["z_standard_ohm"] = append(s.Columns["z_standard_ohm"], cmplx.Abs(zStd[i]))
		s.Columns["z_weighted_ohm"] = append(s.Columns["z_weighted_ohm"], cmplx.Abs(zW[i]))
	}
	return &FigResult{
		Figure: "Fig2: target impedance after fitting",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"standard_worst_rel_err_below_10MHz": worstRel(zStd, zref, freqs, lfBand),
			"weighted_worst_rel_err_below_10MHz": worstRel(zW, zref, freqs, lfBand),
			"standard_worst_rel_err_full_band":   worstRel(zStd, zref, freqs, allBand),
			"weighted_worst_rel_err_full_band":   worstRel(zW, zref, freqs, allBand),
		},
		Notes: []string{"paper: standard model 'severely deteriorated under nominal loading'; weighted model follows the nominal curve"},
	}, nil
}

// Fig3 — the sensitivity Ξ(ω) samples vs the Magnitude-VF weight model
// |Ξ̃(jω)| (paper Fig. 3).
func (c *Context) Fig3() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	xi, err := c.Sensitivity()
	if err != nil {
		return nil, err
	}
	w, err := c.WeightModel()
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "fig3_sensitivity_weight",
		Columns: map[string][]float64{},
		Order:   []string{"xi_data_db", "xi_model_db"},
	}
	var rmsNum, rmsDen float64
	maxXi := 0.0
	for _, v := range xi {
		if v > maxXi {
			maxXi = v
		}
	}
	for i, f := range syn.Data.Freq {
		if f == 0 {
			continue // log axis
		}
		s.FreqHz = append(s.FreqHz, f)
		m := w.Eval(f)
		s.Columns["xi_data_db"] = append(s.Columns["xi_data_db"], db(xi[i]))
		s.Columns["xi_model_db"] = append(s.Columns["xi_model_db"], db(m))
		// Relative accuracy where the sensitivity is significant (the
		// paper likewise ignores the deep notches / GHz spike).
		if xi[i] > 1e-3*maxXi {
			r := (m - xi[i]) / xi[i]
			rmsNum += r * r
			rmsDen++
		}
	}
	rms := math.Sqrt(rmsNum / math.Max(rmsDen, 1))
	return &FigResult{
		Figure: "Fig3: first-order sensitivity and its rational weight model",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"weight_order":                   float64(w.Order()),
			"weight_rms_rel_err_significant": rms,
			"xi_low_freq":                    xi[1],
			"xi_high_freq":                   xi[len(xi)-1],
			"xi_dynamic_range_db":            db(xi[1]) - db(xi[len(xi)-1]),
		},
	}, nil
}

// Fig4 — singular values of the weighted-fit model before and after
// (weighted) passivity enforcement (paper Fig. 4).
func (c *Context) Fig4() (*FigResult, error) {
	before, _, err := c.WeightedFit()
	if err != nil {
		return nil, err
	}
	after, rep, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	grid := repro.LogFreqGrid(1e3, 4e9, 400, false)
	s := &Series{
		Name:    "fig4_singular_values",
		Columns: map[string][]float64{},
		Order:   []string{"sigma_max_before", "sigma_max_after"},
	}
	worstBefore, worstAfter := 0.0, 0.0
	for _, f := range grid {
		s.FreqHz = append(s.FreqHz, f)
		sb := before.MaxSingularValue(f)
		sa := after.MaxSingularValue(f)
		s.Columns["sigma_max_before"] = append(s.Columns["sigma_max_before"], sb)
		s.Columns["sigma_max_after"] = append(s.Columns["sigma_max_after"], sa)
		if sb > worstBefore {
			worstBefore = sb
		}
		if sa > worstAfter {
			worstAfter = sa
		}
	}
	return &FigResult{
		Figure: "Fig4: singular values before/after passivity enforcement",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"max_sigma_before":       worstBefore,
			"max_sigma_after":        worstAfter,
			"enforcement_iterations": float64(rep.Iterations),
		},
		Notes: []string{"paper: all singular values ≤ 1 after enforcement; passive in 9 iterations on their testcase"},
	}, nil
}

// Fig5 — the headline result (paper Fig. 5): target impedance after
// passivity enforcement with and without sensitivity weighting.
func (c *Context) Fig5() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	zref, err := c.ReferenceZ()
	if err != nil {
		return nil, err
	}
	nonPassive, _, err := c.WeightedFit()
	if err != nil {
		return nil, err
	}
	stdEnf, _, err := c.StandardEnforced()
	if err != nil {
		return nil, err
	}
	wEnf, _, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	freqs := syn.Data.Freq
	zNP, err := repro.TargetImpedanceModel(nonPassive, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zStd, err := repro.TargetImpedanceModel(stdEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zW, err := repro.TargetImpedanceModel(wEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "fig5_target_impedance_after_enforcement",
		Columns: map[string][]float64{},
		Order:   []string{"z_nominal_ohm", "z_nonpassive_ohm", "z_standard_enf_ohm", "z_weighted_enf_ohm"},
	}
	for i, f := range freqs {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["z_nominal_ohm"] = append(s.Columns["z_nominal_ohm"], cmplx.Abs(zref[i]))
		s.Columns["z_nonpassive_ohm"] = append(s.Columns["z_nonpassive_ohm"], cmplx.Abs(zNP[i]))
		s.Columns["z_standard_enf_ohm"] = append(s.Columns["z_standard_enf_ohm"], cmplx.Abs(zStd[i]))
		s.Columns["z_weighted_enf_ohm"] = append(s.Columns["z_weighted_enf_ohm"], cmplx.Abs(zW[i]))
	}
	stdLF := worstRel(zStd, zref, freqs, lfBand)
	wLF := worstRel(zW, zref, freqs, lfBand)
	return &FigResult{
		Figure: "Fig5: target impedance after passivity enforcement (headline)",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"nonpassive_worst_rel_err_below_10MHz":   worstRel(zNP, zref, freqs, lfBand),
			"standard_enf_worst_rel_err_below_10MHz": stdLF,
			"weighted_enf_worst_rel_err_below_10MHz": wLF,
			"standard_over_weighted_error_ratio":     stdLF / math.Max(wLF, 1e-12),
		},
		Notes: []string{"paper: standard enforcement 'deviates significantly at low frequencies... useless for practical design'; weighted stays accurate"},
	}, nil
}

// Fig6 — scattering responses of the final weighted-passive model vs data
// (paper Fig. 6): enforcement must not degrade the scattering fit.
func (c *Context) Fig6() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	model, _, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "fig6_scattering_weighted_passive",
		Columns: map[string][]float64{},
		Order: []string{
			"s11_data_db", "s11_model_db", "s12_data_db", "s12_model_db",
		},
	}
	for k, f := range syn.Data.Freq {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["s11_data_db"] = append(s.Columns["s11_data_db"], db(cmplx.Abs(syn.Data.At(k, 0, 0))))
		s.Columns["s11_model_db"] = append(s.Columns["s11_model_db"], db(cmplx.Abs(model.EvalEntry(0, 0, f))))
		s.Columns["s12_data_db"] = append(s.Columns["s12_data_db"], db(cmplx.Abs(syn.Data.At(k, 0, 1))))
		s.Columns["s12_model_db"] = append(s.Columns["s12_model_db"], db(cmplx.Abs(model.EvalEntry(0, 1, f))))
	}
	return &FigResult{
		Figure: "Fig6: scattering of the final weighted-passive model",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"final_rms_error": model.RMSError(syn.Data),
		},
		Notes: []string{"paper: 'no difference ... can be noted in the scattering representation' vs Fig 1"},
	}, nil
}

// All runs every figure in order, returning results keyed 1..6.
func (c *Context) All() ([]*FigResult, error) {
	var out []*FigResult
	for i, fn := range []func() (*FigResult, error){
		c.Fig1, c.Fig2, c.Fig3, c.Fig4, c.Fig5, c.Fig6,
	} {
		r, err := fn()
		if err != nil {
			return out, fmt.Errorf("experiments: figure %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
