// Package hypothesis is a harness for hypothesis-driven experiments: a
// behavioral claim is classified, run under the rigor rules its class
// demands, judged to a verdict, and recorded as a reproducible FINDINGS
// artifact (JSON + markdown).
//
// Classification determines rigor:
//
//   - Deterministic experiments verify exact properties — invariants,
//     conservation laws, bitwise reproducibility. A single seed suffices
//     (determinism is the point), pass/fail is exact, and a failure is
//     always a bug, never noise.
//
//   - Statistical experiments compare metrics whose values vary by seed.
//     They run on at least three seeds (default 42, 123, 456), the
//     predicted direction must hold on every seed — one contradicting
//     seed refutes the hypothesis — and the effect must clear a >20%
//     threshold on every seed to count as significant; smaller but
//     directionally consistent effects are inconclusive, not confirmed.
//
// Statistical subtypes refine the judgment: Dominance (A strictly beats B,
// primary metric is the per-seed ratio A/B), Bounded (the primary metric
// stays at or under a bound on every seed), Equivalence (the primary
// ratio stays within a ±5% band on every seed).
package hypothesis

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Class is the rigor class of a hypothesis.
type Class string

// Hypothesis classes.
const (
	Deterministic Class = "deterministic"
	Statistical   Class = "statistical"
)

// Subtype refines the statistical judgment (Invariant is the only
// deterministic subtype).
type Subtype string

// Hypothesis subtypes.
const (
	// Invariant: an exact property holds (deterministic).
	Invariant Subtype = "invariant"
	// Dominance: A strictly beats B; the primary metric is the per-seed
	// ratio A/B and must exceed 1+Threshold on every seed.
	Dominance Subtype = "dominance"
	// Bounded: the primary metric stays ≤ Threshold on every seed.
	Bounded Subtype = "bounded"
	// Equivalence: the primary ratio stays within ±Threshold of 1 on
	// every seed (default band 5%).
	Equivalence Subtype = "equivalence"
)

// Verdict is the outcome of judging a hypothesis.
type Verdict string

// Verdicts.
const (
	Confirmed    Verdict = "confirmed"
	Refuted      Verdict = "refuted"
	Inconclusive Verdict = "inconclusive"
)

// DefaultSeeds is the statistical seed set mandated by the experiment
// standards (minimum 3 seeds).
var DefaultSeeds = []int64{42, 123, 456}

// Default thresholds of the experiment standards.
const (
	// DefaultEffect is the significance threshold: >20% effect on every
	// seed for a dominance hypothesis to be confirmed.
	DefaultEffect = 0.20
	// DefaultEquivalenceBand is the ±5% equivalence band.
	DefaultEquivalenceBand = 0.05
)

// Trial is one seeded run of an experiment.
type Trial struct {
	// Primary is the value of the spec's primary metric for this seed
	// (for Dominance/Equivalence a ratio, for Bounded the bounded value;
	// ignored semantically for Invariant but still recorded).
	Primary float64
	// Pass is the per-seed invariant verdict (deterministic class only).
	Pass bool
	// Metrics are the supporting per-seed measurements, recorded in the
	// finding for transparency.
	Metrics map[string]float64
	// Notes are free-form per-seed observations.
	Notes []string
}

// Spec declares one hypothesis experiment.
type Spec struct {
	// ID is the stable kebab-case identifier (artifact file names,
	// subcommand argument).
	ID string
	// Title is the one-line human name.
	Title string
	// Claim is the behavioral claim under test, stated falsifiably.
	Claim string
	// Class and Subtype classify the experiment (see package doc).
	Class   Class
	Subtype Subtype
	// Primary names the primary metric Trial.Primary reports.
	Primary string
	// Threshold overrides the class default: Dominance effect size
	// (default 0.20), Bounded upper bound (required), Equivalence band
	// (default 0.05). Ignored for Invariant.
	Threshold float64
	// Seeds overrides the seed set. Deterministic: default one seed (42).
	// Statistical: default DefaultSeeds; fewer than 3 is a spec error.
	Seeds []int64
	// Run executes one trial at the given seed.
	Run func(seed int64) (Trial, error)
}

// SeedResult is one trial as recorded in a finding.
type SeedResult struct {
	Seed    int64              `json:"seed"`
	Primary float64            `json:"primary"`
	Pass    bool               `json:"pass"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

// Finding is the reproducible artifact of one evaluated hypothesis.
type Finding struct {
	ID            string       `json:"id"`
	Title         string       `json:"title"`
	Claim         string       `json:"claim"`
	Class         Class        `json:"class"`
	Subtype       Subtype      `json:"subtype"`
	PrimaryMetric string       `json:"primary_metric"`
	Threshold     float64      `json:"threshold"`
	Verdict       Verdict      `json:"verdict"`
	Reason        string       `json:"reason"`
	Mean          float64      `json:"mean"`
	Min           float64      `json:"min"`
	Max           float64      `json:"max"`
	Seeds         []SeedResult `json:"seeds"`
	ElapsedMS     float64      `json:"elapsed_ms"`
	Date          string       `json:"date"`
}

// validate applies the rigor rules a spec must satisfy before running.
func (s *Spec) validate() error {
	if s.ID == "" || s.Run == nil {
		return fmt.Errorf("hypothesis: spec needs ID and Run (got ID=%q)", s.ID)
	}
	switch s.Class {
	case Deterministic:
		if s.Subtype != Invariant {
			return fmt.Errorf("hypothesis %s: deterministic class requires the invariant subtype", s.ID)
		}
	case Statistical:
		switch s.Subtype {
		case Dominance, Bounded, Equivalence:
		default:
			return fmt.Errorf("hypothesis %s: statistical class requires a dominance, bounded or equivalence subtype", s.ID)
		}
		if n := len(s.seeds()); n < 3 {
			return fmt.Errorf("hypothesis %s: statistical experiments need ≥3 seeds, got %d", s.ID, n)
		}
		if s.Subtype == Bounded && s.Threshold <= 0 {
			return fmt.Errorf("hypothesis %s: bounded subtype requires an explicit positive Threshold", s.ID)
		}
	default:
		return fmt.Errorf("hypothesis %s: unknown class %q", s.ID, s.Class)
	}
	return nil
}

// seeds resolves the effective seed set.
func (s *Spec) seeds() []int64 {
	if len(s.Seeds) > 0 {
		return s.Seeds
	}
	if s.Class == Deterministic {
		return DefaultSeeds[:1]
	}
	return DefaultSeeds
}

// threshold resolves the effective judgment threshold.
func (s *Spec) threshold() float64 {
	if s.Threshold != 0 {
		return s.Threshold
	}
	switch s.Subtype {
	case Equivalence:
		return DefaultEquivalenceBand
	default:
		return DefaultEffect
	}
}

// Evaluate runs the spec on its seed set and judges the verdict under the
// class rules. An error from any trial aborts the evaluation — a broken
// experiment yields no finding, not a refuted one.
func Evaluate(s *Spec) (*Finding, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	f := &Finding{
		ID: s.ID, Title: s.Title, Claim: s.Claim,
		Class: s.Class, Subtype: s.Subtype,
		PrimaryMetric: s.Primary, Threshold: s.threshold(),
		Date: start.UTC().Format("2006-01-02"),
	}
	for _, seed := range s.seeds() {
		tr, err := s.Run(seed)
		if err != nil {
			return nil, fmt.Errorf("hypothesis %s: seed %d: %w", s.ID, seed, err)
		}
		f.Seeds = append(f.Seeds, SeedResult{
			Seed: seed, Primary: tr.Primary, Pass: tr.Pass,
			Metrics: tr.Metrics, Notes: tr.Notes,
		})
	}
	f.Mean, f.Min, f.Max = summarize(f.Seeds)
	f.Verdict, f.Reason = judge(s, f)
	f.ElapsedMS = float64(time.Since(start).Microseconds()) / 1e3
	return f, nil
}

// summarize reports mean/min/max of the primary metric across seeds.
func summarize(seeds []SeedResult) (mean, mn, mx float64) {
	mn, mx = math.Inf(1), math.Inf(-1)
	for _, sr := range seeds {
		mean += sr.Primary
		mn = math.Min(mn, sr.Primary)
		mx = math.Max(mx, sr.Primary)
	}
	mean /= float64(len(seeds))
	return mean, mn, mx
}

// judge applies the class/subtype rules: deterministic failure is always a
// bug (refuted); statistical verdicts demand directional consistency on
// every seed and the full effect threshold on every seed to confirm.
func judge(s *Spec, f *Finding) (Verdict, string) {
	thr := s.threshold()
	switch s.Subtype {
	case Invariant:
		for _, sr := range f.Seeds {
			if !sr.Pass {
				return Refuted, fmt.Sprintf("invariant failed at seed %d — a deterministic failure is a bug, not noise", sr.Seed)
			}
		}
		return Confirmed, fmt.Sprintf("invariant held on all %d run(s)", len(f.Seeds))
	case Dominance:
		// Primary is the ratio A/B; effect per seed is ratio − 1.
		worst := math.Inf(1)
		for _, sr := range f.Seeds {
			worst = math.Min(worst, sr.Primary-1)
		}
		switch {
		case worst <= 0:
			return Refuted, fmt.Sprintf("direction contradicted: worst seed effect %+.1f%%", worst*100)
		case worst >= thr:
			return Confirmed, fmt.Sprintf("effect ≥ %.0f%% on every seed (worst %+.1f%%)", thr*100, worst*100)
		default:
			return Inconclusive, fmt.Sprintf("directionally consistent but worst seed effect %+.1f%% is below the %.0f%% threshold", worst*100, thr*100)
		}
	case Bounded:
		worst := math.Inf(-1)
		for _, sr := range f.Seeds {
			worst = math.Max(worst, sr.Primary)
		}
		if worst <= thr {
			return Confirmed, fmt.Sprintf("%s ≤ %g on every seed (worst %g)", s.Primary, thr, worst)
		}
		return Refuted, fmt.Sprintf("%s exceeded the %g bound (worst %g)", s.Primary, thr, worst)
	case Equivalence:
		worst := 0.0
		for _, sr := range f.Seeds {
			worst = math.Max(worst, math.Abs(sr.Primary-1))
		}
		switch {
		case worst <= thr:
			return Confirmed, fmt.Sprintf("within ±%.0f%% on every seed (worst deviation %.1f%%)", thr*100, worst*100)
		case worst <= 2*thr:
			return Inconclusive, fmt.Sprintf("worst deviation %.1f%% is between the ±%.0f%% band and twice it", worst*100, thr*100)
		default:
			return Refuted, fmt.Sprintf("deviation %.1f%% far outside the ±%.0f%% equivalence band", worst*100, thr*100)
		}
	}
	return Inconclusive, "unknown subtype"
}

// Markdown renders the finding as the FINDINGS document: claim,
// classification, verdict with reason, per-seed table, supporting metrics.
func (f *Finding) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# FINDINGS: %s\n\n", f.Title)
	fmt.Fprintf(&b, "- **ID:** %s\n- **Date:** %s\n- **Class:** %s / %s\n- **Primary metric:** %s (threshold %g)\n\n",
		f.ID, f.Date, f.Class, f.Subtype, f.PrimaryMetric, f.Threshold)
	fmt.Fprintf(&b, "## Hypothesis\n\n%s\n\n", f.Claim)
	fmt.Fprintf(&b, "## Verdict: %s\n\n%s\n\n", strings.ToUpper(string(f.Verdict)), f.Reason)
	fmt.Fprintf(&b, "Primary across seeds: mean %.6g, min %.6g, max %.6g.\n\n", f.Mean, f.Min, f.Max)
	fmt.Fprintf(&b, "## Per-seed results\n\n| seed | %s | pass |\n|---:|---:|:---|\n", f.PrimaryMetric)
	for _, sr := range f.Seeds {
		fmt.Fprintf(&b, "| %d | %.6g | %v |\n", sr.Seed, sr.Primary, sr.Pass)
	}
	b.WriteString("\n")
	for _, sr := range f.Seeds {
		if len(sr.Metrics) == 0 && len(sr.Notes) == 0 {
			continue
		}
		fmt.Fprintf(&b, "### Seed %d\n\n", sr.Seed)
		keys := make([]string, 0, len(sr.Metrics))
		for k := range sr.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "- %s: %.6g\n", k, sr.Metrics[k])
		}
		for _, n := range sr.Notes {
			fmt.Fprintf(&b, "- note: %s\n", n)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "_Evaluated in %.1f ms._\n", f.ElapsedMS)
	return b.String()
}

// Write persists the finding under dir as FINDINGS-<id>.json and
// FINDINGS-<id>.md, returning the JSON path.
func (f *Finding) Write(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	js, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	jsPath := filepath.Join(dir, "FINDINGS-"+f.ID+".json")
	if err := os.WriteFile(jsPath, append(js, '\n'), 0o644); err != nil {
		return "", err
	}
	mdPath := filepath.Join(dir, "FINDINGS-"+f.ID+".md")
	if err := os.WriteFile(mdPath, []byte(f.Markdown()), 0o644); err != nil {
		return "", err
	}
	return jsPath, nil
}

// ReadFinding loads a previously written FINDINGS JSON artifact.
func ReadFinding(path string) (*Finding, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f Finding
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("hypothesis: decoding %s: %w", path, err)
	}
	return &f, nil
}

// Registry holds hypothesis specs in registration order.
type Registry struct {
	order []string
	byID  map[string]*Spec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{byID: make(map[string]*Spec)} }

// Register validates and adds a spec; duplicate IDs are an error.
func (r *Registry) Register(s Spec) error {
	if err := s.validate(); err != nil {
		return err
	}
	if _, dup := r.byID[s.ID]; dup {
		return fmt.Errorf("hypothesis: duplicate spec %q", s.ID)
	}
	sc := s
	r.byID[s.ID] = &sc
	r.order = append(r.order, s.ID)
	return nil
}

// Specs returns the registered specs in registration order.
func (r *Registry) Specs() []*Spec {
	out := make([]*Spec, len(r.order))
	for i, id := range r.order {
		out[i] = r.byID[id]
	}
	return out
}

// Get looks a spec up by ID.
func (r *Registry) Get(id string) (*Spec, bool) {
	s, ok := r.byID[id]
	return s, ok
}
