package hypothesis

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// trialFor builds a Run function returning a fixed primary per seed.
func trialFor(vals map[int64]float64) func(int64) (Trial, error) {
	return func(seed int64) (Trial, error) {
		v, ok := vals[seed]
		if !ok {
			return Trial{}, fmt.Errorf("unexpected seed %d", seed)
		}
		return Trial{Primary: v, Pass: true, Metrics: map[string]float64{"v": v}}, nil
	}
}

func TestDeterministicVerdicts(t *testing.T) {
	pass := Spec{
		ID: "det-pass", Title: "t", Claim: "c", Class: Deterministic, Subtype: Invariant,
		Primary: "violations",
		Run:     func(int64) (Trial, error) { return Trial{Pass: true}, nil },
	}
	f, err := Evaluate(&pass)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Confirmed {
		t.Fatalf("passing invariant judged %s: %s", f.Verdict, f.Reason)
	}
	if len(f.Seeds) != 1 {
		t.Fatalf("deterministic spec ran %d seeds, one suffices", len(f.Seeds))
	}

	fail := pass
	fail.ID = "det-fail"
	fail.Run = func(int64) (Trial, error) { return Trial{Pass: false}, nil }
	f, err = Evaluate(&fail)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Refuted {
		t.Fatalf("failing invariant judged %s — a deterministic failure is always a bug", f.Verdict)
	}
}

func TestStatisticalSeedFloor(t *testing.T) {
	s := Spec{
		ID: "too-few", Title: "t", Claim: "c", Class: Statistical, Subtype: Dominance,
		Primary: "ratio", Seeds: []int64{1, 2},
		Run: func(int64) (Trial, error) { return Trial{Primary: 2}, nil },
	}
	if _, err := Evaluate(&s); err == nil {
		t.Fatal("statistical spec with 2 seeds accepted; the standards demand ≥3")
	}
}

func TestDominanceVerdicts(t *testing.T) {
	cases := []struct {
		vals map[int64]float64
		want Verdict
	}{
		// >20% effect on every seed.
		{map[int64]float64{42: 1.7, 123: 2.8, 456: 1.25}, Confirmed},
		// One contradicting seed refutes, however strong the others.
		{map[int64]float64{42: 3.0, 123: 0.97, 456: 2.5}, Refuted},
		// Directionally consistent but one seed under the threshold.
		{map[int64]float64{42: 1.5, 123: 1.08, 456: 1.4}, Inconclusive},
	}
	for i, c := range cases {
		s := Spec{
			ID: fmt.Sprintf("dom-%d", i), Title: "t", Claim: "c",
			Class: Statistical, Subtype: Dominance, Primary: "ratio",
			Run: trialFor(c.vals),
		}
		f, err := Evaluate(&s)
		if err != nil {
			t.Fatal(err)
		}
		if f.Verdict != c.want {
			t.Fatalf("case %d (%v): verdict %s (%s), want %s", i, c.vals, f.Verdict, f.Reason, c.want)
		}
	}
}

func TestBoundedVerdicts(t *testing.T) {
	s := Spec{
		ID: "bounded", Title: "t", Claim: "c", Class: Statistical, Subtype: Bounded,
		Primary: "overhead", Threshold: 0.25,
		Run: trialFor(map[int64]float64{42: 0.11, 123: 0.09, 456: 0.24}),
	}
	f, err := Evaluate(&s)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Confirmed {
		t.Fatalf("bounded within threshold judged %s: %s", f.Verdict, f.Reason)
	}
	over := s
	over.ID = "bounded-over"
	over.Run = trialFor(map[int64]float64{42: 0.11, 123: 0.31, 456: 0.24})
	if f, err = Evaluate(&over); err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Refuted {
		t.Fatalf("bound exceeded on one seed judged %s", f.Verdict)
	}
	noBound := s
	noBound.ID = "bounded-nothr"
	noBound.Threshold = 0
	if _, err := Evaluate(&noBound); err == nil {
		t.Fatal("bounded spec without explicit Threshold accepted")
	}
}

func TestEquivalenceVerdicts(t *testing.T) {
	s := Spec{
		ID: "equiv", Title: "t", Claim: "c", Class: Statistical, Subtype: Equivalence,
		Primary: "ratio",
		Run:     trialFor(map[int64]float64{42: 1.01, 123: 0.98, 456: 1.04}),
	}
	f, err := Evaluate(&s)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != Confirmed {
		t.Fatalf("within the ±5%% band judged %s: %s", f.Verdict, f.Reason)
	}
}

func TestFindingArtifactRoundTrip(t *testing.T) {
	s := Spec{
		ID: "artifact", Title: "Artifact round-trip", Claim: "writes survive reads",
		Class: Statistical, Subtype: Dominance, Primary: "ratio",
		Run: trialFor(map[int64]float64{42: 1.7, 123: 2.8, 456: 1.25}),
	}
	f, err := Evaluate(&s)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsPath, err := f.Write(dir)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadFinding(jsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("finding did not survive the JSON round-trip:\nout: %+v\nback: %+v", f, back)
	}
	md := f.Markdown()
	for _, want := range []string{"# FINDINGS: Artifact round-trip", "## Hypothesis", "## Verdict: CONFIRMED", "## Per-seed results", "| 123 |"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	if _, err := ReadFinding(filepath.Join(dir, "FINDINGS-artifact.md")); err == nil {
		t.Fatal("reading the markdown artifact as JSON should fail")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	mk := func(id string) Spec {
		return Spec{
			ID: id, Title: id, Claim: "c", Class: Deterministic, Subtype: Invariant,
			Run: func(int64) (Trial, error) { return Trial{Pass: true}, nil },
		}
	}
	for _, id := range []string{"b-second", "a-first"} {
		if err := r.Register(mk(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Register(mk("b-second")); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	specs := r.Specs()
	if len(specs) != 2 || specs[0].ID != "b-second" || specs[1].ID != "a-first" {
		t.Fatalf("registration order not preserved: %v", []string{specs[0].ID, specs[1].ID})
	}
	if _, ok := r.Get("a-first"); !ok {
		t.Fatal("Get missed a registered spec")
	}
	bad := mk("bad-class")
	bad.Class = "quantum"
	if err := r.Register(bad); err == nil {
		t.Fatal("invalid class accepted at registration")
	}
}
