package experiments

// Extension experiments beyond the paper's six figures, exercising the
// claims of its Conclusions section and the baselines its introduction
// cites. Each returns a FigResult like the FigN methods:
//
//	Ext-A  representation independence (§V: admittance/impedance data and
//	       arbitrary reference resistance feed the same flow)
//	Ext-B  time-domain verification: the enforced models driven by a
//	       switching tone; the weighted model reproduces the nominal
//	       impedance in transient, the standard one does not
//	Ext-C  classical projection MOR (balanced truncation, refs [6,7])
//	       against direct black-box identification
//	Ext-D  enforcement-baseline ablation: weighted vs standard QP vs
//	       global residue scaling
//	Ext-E  multi-stage adaptive passivity characterization vs the fixed
//	       pole-seeded sweep: verdict cross-validation, sample economics,
//	       and an adaptive-driven enforcement run
//	Ext-F  batch enforcement of a model library: sharded EnforcePassivityBatch
//	       vs sequential per-model enforcement, with bitwise cross-validation
//	       of the resulting models and wall-clock economics
//	Ext-G  closed-form weighted cascade Gramian (rational.CascadeGramian)
//	       vs the dense statespace Lyapunov oracle: accuracy, wall-clock
//	       across model orders, and enforcement-result equivalence of the
//	       two cost constructions
//	Ext-H  certified enforcement: escape rate of weighted enforcement with
//	       a sampling-only convergence check (fraction of runs whose result
//	       the Hamiltonian oracle still rejects) vs the certified pipeline,
//	       and the certification overhead on the same library

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	repro "repro"
	"repro/internal/core"
	"repro/internal/passivity"
	"repro/internal/rational"
)

// ExtA — representation independence. The same flow (sensitivity-weighted
// fit + weighted enforcement) is run from three representations of the same
// structure: native 50 Ω scattering, scattering renormalized to 5 Ω, and
// data converted through the admittance form onto a 20 Ω reference. All
// three passive models must reproduce the nominal target impedance.
func (c *Context) ExtA() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	zref, err := c.ReferenceZ()
	if err != nil {
		return nil, err
	}
	wEnf, _, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	freqs := syn.Data.Freq

	extract := func(data *repro.SData) (*repro.Macromodel, error) {
		res, err := repro.Extract(data, syn.Load, repro.ExtractOptions{
			NumPoles:     c.Cfg.Poles,
			VFIterations: c.Cfg.VFIterations,
			WeightOrder:  c.Cfg.WeightOrder,
			Enforce:      c.enforceOptions(nil),
		})
		if err != nil {
			return nil, err
		}
		return res.Model, nil
	}

	renorm, err := syn.Data.Renormalized(5)
	if err != nil {
		return nil, fmt.Errorf("renormalize to 5Ω: %w", err)
	}
	mRenorm, err := extract(renorm)
	if err != nil {
		return nil, fmt.Errorf("flow on 5Ω data: %w", err)
	}

	y, err := syn.Data.Admittance()
	if err != nil {
		return nil, fmt.Errorf("admittance form: %w", err)
	}
	viaY, err := repro.SDataFromAdmittance(freqs, y, 20)
	if err != nil {
		return nil, fmt.Errorf("admittance → 20Ω scattering: %w", err)
	}
	mViaY, err := extract(viaY)
	if err != nil {
		return nil, fmt.Errorf("flow on Y-derived data: %w", err)
	}

	z50, err := repro.TargetImpedanceModel(wEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	z5, err := repro.TargetImpedanceModel(mRenorm, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zY, err := repro.TargetImpedanceModel(mViaY, freqs, syn.Load)
	if err != nil {
		return nil, err
	}

	s := &Series{
		Name:    "extA_representation_independence",
		Columns: map[string][]float64{},
		Order:   []string{"z_nominal_ohm", "z_from_50ohm_ohm", "z_from_5ohm_ohm", "z_via_admittance_ohm"},
	}
	for i, f := range freqs {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["z_nominal_ohm"] = append(s.Columns["z_nominal_ohm"], cmplx.Abs(zref[i]))
		s.Columns["z_from_50ohm_ohm"] = append(s.Columns["z_from_50ohm_ohm"], cmplx.Abs(z50[i]))
		s.Columns["z_from_5ohm_ohm"] = append(s.Columns["z_from_5ohm_ohm"], cmplx.Abs(z5[i]))
		s.Columns["z_via_admittance_ohm"] = append(s.Columns["z_via_admittance_ohm"], cmplx.Abs(zY[i]))
	}
	e50 := worstRel(z50, zref, freqs, lfBand)
	e5 := worstRel(z5, zref, freqs, lfBand)
	eY := worstRel(zY, zref, freqs, lfBand)
	return &FigResult{
		Figure: "Ext-A: representation independence of the weighted flow (§V)",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"z_err_lf_native_50ohm":    e50,
			"z_err_lf_renormalized_5":  e5,
			"z_err_lf_via_admittance":  eY,
			"worst_path_over_best":     math.Max(e5, math.Max(e50, eY)) / math.Max(1e-12, math.Min(e5, math.Min(e50, eY))),
			"renormalized_model_r0":    mRenorm.R0(),
			"admittance_path_model_r0": mViaY.R0(),
		},
		Notes: []string{"paper §V: 'the same sensitivity-based weighting process can be applied to native data in admittance or impedance form, as well as in scattering representations normalized to different port resistances'"},
	}, nil
}

// ExtB — transient verification. Both enforced models are driven by a
// switching tone at the low frequency where the standard-enforcement model
// is most wrong; the weighted model's steady-state amplitude matches the
// nominal impedance, the standard one inherits its frequency-domain error.
// Cumulative energy must stay nonnegative for both (they are passive).
func (c *Context) ExtB() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	zref, err := c.ReferenceZ()
	if err != nil {
		return nil, err
	}
	stdEnf, _, err := c.StandardEnforced()
	if err != nil {
		return nil, err
	}
	wEnf, _, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	freqs := syn.Data.Freq
	zStd, err := repro.TargetImpedanceModel(stdEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}

	// Tone where the standard model errs most, within a simulable band.
	k0 := -1
	worst := -1.0
	for i, f := range freqs {
		if f < 2e5 || f > 1e7 {
			continue
		}
		if r := cmplx.Abs(zStd[i]-zref[i]) / (1e-15 + cmplx.Abs(zref[i])); r > worst {
			worst, k0 = r, i
		}
	}
	if k0 < 0 {
		return nil, fmt.Errorf("extB: no grid point in the 0.2–10 MHz band")
	}
	f0 := freqs[k0]
	want := cmplx.Abs(zref[k0])

	const cyclesTotal = 40
	dt := 1 / (64 * f0)
	steps := 64 * cyclesTotal
	// fdAmp is the model's own frequency-domain prediction at the tone;
	// the transient amplitude must reproduce it (time ↔ frequency domain
	// consistency), and its distance from the nominal impedance is the
	// model's real-world droop error.
	run := func(m *repro.Macromodel) (*repro.TransientResult, float64, float64, error) {
		zm, err := repro.TargetImpedanceModel(m, []float64{f0}, syn.Load)
		if err != nil {
			return nil, 0, 0, err
		}
		res, err := repro.Transient(m, syn.Load, repro.SineWave(f0, 1), repro.TransientOptions{
			Dt: dt, Steps: steps,
		})
		if err != nil {
			return nil, 0, 0, err
		}
		amp, _ := res.FitTone(syn.Load.ObsPort, f0, res.T[len(res.T)-1]/2)
		return res, amp, cmplx.Abs(zm[0]), nil
	}
	resW, ampW, fdW, err := run(wEnf)
	if err != nil {
		return nil, fmt.Errorf("weighted transient: %w", err)
	}
	resStd, ampStd, fdStd, err := run(stdEnf)
	if err != nil {
		return nil, fmt.Errorf("standard transient: %w", err)
	}

	s := &Series{
		Name:    "extB_transient_tone_waveforms",
		XLabel:  "time_s",
		Columns: map[string][]float64{},
		Order:   []string{"v_weighted_v", "v_standard_v"},
	}
	for k := range resW.T {
		s.FreqHz = append(s.FreqHz, resW.T[k])
		s.Columns["v_weighted_v"] = append(s.Columns["v_weighted_v"], resW.V[k][syn.Load.ObsPort])
		s.Columns["v_standard_v"] = append(s.Columns["v_standard_v"], resStd.V[k][syn.Load.ObsPort])
	}
	errW := math.Abs(ampW-want) / want
	errStd := math.Abs(ampStd-want) / want
	return &FigResult{
		Figure: "Ext-B: time-domain verification of the enforced models",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"tone_freq_hz":     f0,
			"z_nominal_ohm":    want,
			"amp_weighted_ohm": ampW,
			"amp_standard_ohm": ampStd,
			// Transient vs the model's own frequency response: the
			// co-simulation consistency check, tight on every config.
			"td_fd_consistency_weighted": math.Abs(ampW-fdW) / math.Max(fdW, 1e-12),
			"td_fd_consistency_standard": math.Abs(ampStd-fdStd) / math.Max(fdStd, 1e-12),
			// Transient vs the NOMINAL impedance: the droop error a
			// designer would see; the weighted model should win.
			"amp_rel_err_weighted":        errW,
			"amp_rel_err_standard":        errStd,
			"standard_over_weighted":      errStd / math.Max(errW, 1e-12),
			"min_energy_weighted_joule":   resW.MinEnergy(),
			"min_energy_standard_joule":   resStd.MinEnergy(),
			"freq_domain_err_at_tone_std": worst,
		},
		Notes: []string{"the paper's end use (§I): transient PDN verification; the standard-SOCP model's low-frequency error shows up directly as a wrong droop amplitude"},
	}, nil
}

// ExtC — classical projection-based MOR (balanced truncation of an
// overfitted model) against direct black-box identification at the same
// realization size, both judged in the scattering norm and under the
// nominal load. Runs on the 8-port structure so that the full BT pipeline
// (Gramians → Hankel SVD → projection → pole-residue → enforcement) stays
// interactive.
func (c *Context) ExtC() (*FigResult, error) {
	freqs := c.Freqs()
	syn, err := repro.GeneratePDN(repro.PDNSmall, freqs, 50)
	if err != nil {
		return nil, err
	}
	zref, err := repro.TargetImpedance(syn.Data, syn.Load)
	if err != nil {
		return nil, err
	}
	ports := syn.Data.Ports()

	checkOpts := repro.CheckOptions{ForceSweep: true, FreqMin: 500, FreqMax: 4e9, SweepPoints: 800}
	enforce := func(m *repro.Macromodel) error {
		chk, err := repro.CheckPassivity(m, checkOpts)
		if err != nil {
			return err
		}
		if chk.Passive {
			return nil
		}
		_, err = repro.EnforcePassivity(m, repro.EnforceOptions{
			Check:         checkOpts,
			Margin:        c.Cfg.EnforceMargin,
			MaxIterations: 80,
			ClampD:        true,
		})
		return err
	}

	direct, _, err := repro.Fit(syn.Data, repro.FitOptions{
		NumPoles: c.Cfg.Poles, Iterations: c.Cfg.VFIterations, ConstrainD: 0.999,
	})
	if err != nil {
		return nil, fmt.Errorf("direct fit: %w", err)
	}
	if err := enforce(direct); err != nil {
		return nil, fmt.Errorf("enforcing direct model: %w", err)
	}

	big, _, err := repro.Fit(syn.Data, repro.FitOptions{
		NumPoles: c.Cfg.Poles + 8, Iterations: c.Cfg.VFIterations, ConstrainD: 0.999,
	})
	if err != nil {
		return nil, fmt.Errorf("overfit: %w", err)
	}
	// Match the direct model's realization size n·P. The reduced model
	// inherits the overfit model's (non-)passivity plus the truncation
	// error, so it gets the same enforcement pass as the direct flow.
	target := c.Cfg.Poles * ports
	red, redRep, err := repro.ReduceModel(big, target)
	if err != nil {
		return nil, fmt.Errorf("balanced truncation: %w", err)
	}
	chk, err := repro.CheckPassivity(red, checkOpts)
	if err != nil {
		return nil, err
	}
	sigmaBefore := chk.MaxSigma
	if err := enforce(red); err != nil {
		return nil, fmt.Errorf("enforcing reduced model: %w", err)
	}

	zDirect, err := repro.TargetImpedanceModel(direct, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zRed, err := repro.TargetImpedanceModel(red, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "extC_mor_vs_vf",
		Columns: map[string][]float64{},
		Order:   []string{"z_nominal_ohm", "z_vf_direct_ohm", "z_bt_reduced_ohm"},
	}
	for i, f := range freqs {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["z_nominal_ohm"] = append(s.Columns["z_nominal_ohm"], cmplx.Abs(zref[i]))
		s.Columns["z_vf_direct_ohm"] = append(s.Columns["z_vf_direct_ohm"], cmplx.Abs(zDirect[i]))
		s.Columns["z_bt_reduced_ohm"] = append(s.Columns["z_bt_reduced_ohm"], cmplx.Abs(zRed[i]))
	}
	tail := 0.0
	if len(redRep.Hankel) > 0 {
		tail = redRep.Hankel[len(redRep.Hankel)-1] / redRep.Hankel[0]
	}
	return &FigResult{
		Figure: "Ext-C: balanced truncation (refs [6,7]) vs direct Vector Fitting",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"rms_s_direct":             direct.RMSError(syn.Data),
			"rms_s_overfit":            big.RMSError(syn.Data),
			"rms_s_reduced":            red.RMSError(syn.Data),
			"z_err_all_direct":         worstRel(zDirect, zref, freqs, allBand),
			"z_err_all_reduced":        worstRel(zRed, zref, freqs, allBand),
			"bt_bound":                 redRep.Bound,
			"bt_retained_order":        float64(redRep.Order),
			"hankel_tail_over_head":    tail,
			"sigma_max_before_repair":  sigmaBefore,
			"reduced_model_num_poles":  float64(red.NumPoles()),
			"direct_realization_order": float64(c.Cfg.Poles * ports),
		},
		Notes: []string{"balanced truncation needs an enforcement pass of its own (projection does not preserve scattering passivity) and matches direct VF only when the overfit source model is accurate — the classical-MOR baseline of the paper's introduction"},
	}, nil
}

// ExtD — enforcement ablation. The same non-passive weighted fit is made
// passive three ways: the paper's weighted QP, the standard QP, and global
// residue scaling; the target-impedance damage tells them apart.
func (c *Context) ExtD() (*FigResult, error) {
	syn, err := c.Dataset()
	if err != nil {
		return nil, err
	}
	zref, err := c.ReferenceZ()
	if err != nil {
		return nil, err
	}
	nonPassive, _, err := c.WeightedFit()
	if err != nil {
		return nil, err
	}
	stdEnf, _, err := c.StandardEnforced()
	if err != nil {
		return nil, err
	}
	wEnf, _, err := c.WeightedEnforced()
	if err != nil {
		return nil, err
	}
	scaled := nonPassive.Clone()
	// The bisection needs ~12 sweeps; a coarser grid is plenty to locate
	// the strawman's γ (the QP schemes keep the full-resolution check).
	scalOpts := c.enforceOptions(nil)
	scalOpts.Check.SweepPoints = 500
	scalRep, err := repro.EnforcePassivityByScaling(scaled, scalOpts)
	if err != nil {
		return nil, fmt.Errorf("residue scaling: %w", err)
	}

	freqs := syn.Data.Freq
	zStd, err := repro.TargetImpedanceModel(stdEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zW, err := repro.TargetImpedanceModel(wEnf, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	zScal, err := repro.TargetImpedanceModel(scaled, freqs, syn.Load)
	if err != nil {
		return nil, err
	}
	s := &Series{
		Name:    "extD_enforcement_ablation",
		Columns: map[string][]float64{},
		Order:   []string{"z_nominal_ohm", "z_weighted_qp_ohm", "z_standard_qp_ohm", "z_residue_scaling_ohm"},
	}
	for i, f := range freqs {
		s.FreqHz = append(s.FreqHz, f)
		s.Columns["z_nominal_ohm"] = append(s.Columns["z_nominal_ohm"], cmplx.Abs(zref[i]))
		s.Columns["z_weighted_qp_ohm"] = append(s.Columns["z_weighted_qp_ohm"], cmplx.Abs(zW[i]))
		s.Columns["z_standard_qp_ohm"] = append(s.Columns["z_standard_qp_ohm"], cmplx.Abs(zStd[i]))
		s.Columns["z_residue_scaling_ohm"] = append(s.Columns["z_residue_scaling_ohm"], cmplx.Abs(zScal[i]))
	}
	eW := worstRel(zW, zref, freqs, lfBand)
	eStd := worstRel(zStd, zref, freqs, lfBand)
	eScal := worstRel(zScal, zref, freqs, lfBand)
	return &FigResult{
		Figure: "Ext-D: enforcement ablation (weighted QP / standard QP / residue scaling)",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"z_err_lf_weighted_qp":     eW,
			"z_err_lf_standard_qp":     eStd,
			"z_err_lf_residue_scaling": eScal,
			"scaling_gamma":            scalRep.Gamma,
			"scaling_checks":           float64(scalRep.Checks),
			"scaling_over_weighted":    eScal / math.Max(eW, 1e-12),
		},
		Notes: []string{"every scheme reaches passivity; only the weighted QP reaches it without destroying the loaded response"},
	}, nil
}

// ExtE — adaptive characterization. The non-passive weighted fit of the
// 45-port testcase is characterized by the fixed pole-seeded sweep and by
// the multi-stage adaptive scheme; both are cross-checked for verdict and
// worst-σ agreement, and the sample counts quantify what the hierarchical
// refinement saves. The enforcement loop is then run once on the adaptive
// characterizer to confirm the end-to-end path.
func (c *Context) ExtE() (*FigResult, error) {
	m0, _, err := c.WeightedFit()
	if err != nil {
		return nil, err
	}
	base := repro.CheckOptions{FreqMin: 500, FreqMax: 4e9, SweepPoints: 1200}

	sweepOpts := base
	sweepOpts.Method = repro.CheckSweep
	sweepRep, err := repro.CheckPassivity(m0, sweepOpts)
	if err != nil {
		return nil, fmt.Errorf("sweep characterization: %w", err)
	}
	adOpts := base
	adOpts.Method = repro.CheckAdaptive
	adRep, err := repro.CheckPassivity(m0, adOpts)
	if err != nil {
		return nil, fmt.Errorf("adaptive characterization: %w", err)
	}

	agree := 0.0
	if adRep.Passive == sweepRep.Passive {
		agree = 1
	}

	enfOpts := c.enforceOptions(nil)
	enfOpts.Check = adOpts
	enforced := m0.Clone()
	enfRep, err := repro.EnforcePassivity(enforced, enfOpts)
	if err != nil {
		return nil, fmt.Errorf("adaptive-based enforcement: %w", err)
	}
	// Final verdict from the independent fixed sweep.
	recheck, err := repro.CheckPassivity(enforced, sweepOpts)
	if err != nil {
		return nil, err
	}

	// Band table: one row per adaptive violation band.
	bands := &Series{
		Name:    "extE_adaptive_violation_bands",
		Columns: map[string][]float64{},
		Order:   []string{"sigma_peak", "band_lo_hz", "band_hi_hz"},
		XLabel:  "peak_freq_hz",
	}
	for _, v := range adRep.Violations {
		bands.FreqHz = append(bands.FreqHz, v.FreqPeakHz)
		bands.Columns["sigma_peak"] = append(bands.Columns["sigma_peak"], v.SigmaPeak)
		bands.Columns["band_lo_hz"] = append(bands.Columns["band_lo_hz"], v.FreqLoHz)
		bands.Columns["band_hi_hz"] = append(bands.Columns["band_hi_hz"], v.FreqHiHz)
	}

	return &FigResult{
		Figure: "Ext-E: multi-stage adaptive characterization vs fixed sweep",
		Series: []*Series{bands},
		Metrics: map[string]float64{
			"sweep_samples":            float64(sweepRep.Samples),
			"adaptive_samples":         float64(adRep.Samples),
			"sweep_max_sigma":          sweepRep.MaxSigma,
			"adaptive_max_sigma":       adRep.MaxSigma,
			"verdict_agreement":        agree,
			"sweep_violation_bands":    float64(len(sweepRep.Violations)),
			"adaptive_violation_bands": float64(len(adRep.Violations)),
			"enforce_iterations":       float64(enfRep.Iterations),
			"enforced_passive":         b2f(enfRep.Passive && recheck.Passive),
		},
		Notes: []string{"adaptive refinement concentrates samples at the violation bands; the fixed sweep spends its grid uniformly"},
	}, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ExtF — batch enforcement of a model library. A deterministic library of
// violating synthetic macromodels is enforced twice: sequentially, one
// EnforcePassivity call per model, and through the sharded
// EnforcePassivityBatch. The experiment cross-validates that the batch
// path is bitwise identical to the sequential one (sampled transfer
// matrices of every pair of enforced models compared exactly) and reports
// the wall-clock economics of the sharding — the unit of scale-out for
// model-library services.
func (c *Context) ExtF() (*FigResult, error) {
	const libSize = 8
	build := func() ([]*repro.Macromodel, error) {
		lib := make([]*repro.Macromodel, libSize)
		for i := range lib {
			m, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
				Ports: 2, Poles: 30, Seed: int64(100 + i), PeakGain: 1.1,
			})
			if err != nil {
				return nil, err
			}
			lib[i] = m
		}
		return lib, nil
	}

	seq, err := build()
	if err != nil {
		return nil, err
	}
	opts := repro.EnforceOptions{
		Check:  repro.CheckOptions{Method: repro.CheckAdaptive},
		ClampD: true,
	}
	seqStart := time.Now()
	seqIters := 0
	for i, m := range seq {
		rep, err := repro.EnforcePassivity(m, opts)
		if err != nil {
			return nil, fmt.Errorf("sequential enforcement of model %d: %w", i, err)
		}
		seqIters += rep.Iterations
	}
	seqElapsed := time.Since(seqStart)

	bat, err := build()
	if err != nil {
		return nil, err
	}
	batStart := time.Now()
	brep, err := repro.EnforcePassivityBatch(bat, repro.BatchEnforceOptions{Enforce: opts})
	if err != nil {
		return nil, fmt.Errorf("batch enforcement: %w", err)
	}
	batElapsed := time.Since(batStart)
	for i, e := range brep.Errors {
		if e != nil {
			return nil, fmt.Errorf("batch enforcement of model %d: %w", i, e)
		}
	}

	// Bitwise cross-validation: the enforced models must agree exactly.
	probes := []float64{0.13, 1.7, 23, 170, 2300, 1.7e4}
	identical := true
	for i := range seq {
		for _, f := range probes {
			a, b := seq[i].Eval(f), bat[i].Eval(f)
			for r := range a {
				for col := range a[r] {
					if a[r][col] != b[r][col] {
						identical = false
					}
				}
			}
		}
	}

	series := &Series{
		Name:    "extF_per_model_iterations",
		Columns: map[string][]float64{},
		Order:   []string{"iterations", "final_sigma"},
		XLabel:  "model_index",
	}
	for i, r := range brep.Reports {
		series.FreqHz = append(series.FreqHz, float64(i))
		series.Columns["iterations"] = append(series.Columns["iterations"], float64(r.Iterations))
		series.Columns["final_sigma"] = append(series.Columns["final_sigma"], r.Final.MaxSigma)
	}

	return &FigResult{
		Figure: "Ext-F: sharded batch enforcement of a model library",
		Series: []*Series{series},
		Metrics: map[string]float64{
			"library_size":      float64(brep.Models),
			"batch_passive":     float64(brep.Passive),
			"batch_failed":      float64(brep.Failed),
			"batch_iterations":  float64(brep.TotalIterations),
			"sequential_iters":  float64(seqIters),
			"sequential_ms":     float64(seqElapsed.Milliseconds()),
			"batch_ms":          float64(batElapsed.Milliseconds()),
			"batch_speedup":     seqElapsed.Seconds() / math.Max(batElapsed.Seconds(), 1e-9),
			"bitwise_identical": b2f(identical),
			"worst_sigma_after": brep.WorstSigma,
		},
		Notes: []string{"batch sharding reuses per-worker workspaces across models; speedup tracks GOMAXPROCS on multi-core hosts"},
	}, nil
}

// ExtG — the closed-form weighted cascade Gramian against the dense
// Lyapunov oracle it replaced. Three parts: (1) accuracy and wall-clock of
// rational.CascadeGramian vs core.WeightedGramianDense across model orders
// at the paper's n_w = 8; (2) enforcement equivalence — the same violating
// library enforced with the closed-form cost and with the dense-oracle
// cost must land on the same passive models to solver precision; (3) the
// weighted batch path cross-checked bitwise against sequential weighted
// enforcement (the closed form is what makes per-model weighted costs
// affordable at library scale).
func (c *Context) ExtG() (*FigResult, error) {
	const nw = 8
	rng := rand.New(rand.NewSource(77))
	weight, err := rational.RandomScalarWeight(rng, nw)
	if err != nil {
		return nil, err
	}

	sizes := []int{100, 250, 500}
	s := &Series{
		Name:    "extG_gramian_scaling",
		XLabel:  "model_order_np",
		Columns: map[string][]float64{},
		Order:   []string{"closed_ms", "dense_ms", "speedup", "rel_frob_err"},
	}
	worstErr, speedup500 := 0.0, 0.0
	for _, np := range sizes {
		poles := rational.RandomStablePoles(rng, np)
		model, err := rational.NewScalar(poles, make([]complex128, len(poles)), 0)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		fast, err := core.WeightedGramian(model, weight)
		if err != nil {
			return nil, fmt.Errorf("extG: closed form at n=%d: %w", np, err)
		}
		closedMS := float64(time.Since(t0).Microseconds()) / 1e3
		t0 = time.Now()
		dense, err := core.WeightedGramianDense(model, weight)
		if err != nil {
			return nil, fmt.Errorf("extG: dense oracle at n=%d: %w", np, err)
		}
		denseMS := float64(time.Since(t0).Microseconds()) / 1e3

		var num, den float64
		for i := 0; i < dense.Rows; i++ {
			for j := 0; j < dense.Cols; j++ {
				d := fast.At(i, j) - dense.At(i, j)
				num += d * d
				den += dense.At(i, j) * dense.At(i, j)
			}
		}
		rel := math.Sqrt(num / den)
		if rel > worstErr {
			worstErr = rel
		}
		sp := denseMS / math.Max(closedMS, 1e-6)
		if np == 500 {
			speedup500 = sp
		}
		s.FreqHz = append(s.FreqHz, float64(np))
		s.Columns["closed_ms"] = append(s.Columns["closed_ms"], closedMS)
		s.Columns["dense_ms"] = append(s.Columns["dense_ms"], denseMS)
		s.Columns["speedup"] = append(s.Columns["speedup"], sp)
		s.Columns["rel_frob_err"] = append(s.Columns["rel_frob_err"], rel)
	}

	// Enforcement equivalence: the same violating library under the two
	// cost constructions, plus weighted batch vs sequential (bitwise).
	const libSize = 4
	build := func() ([]*rational.Model, error) {
		lib := make([]*rational.Model, libSize)
		for i := range lib {
			m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
				Ports: 2, Poles: 24, Seed: int64(500 + i), PeakGain: 1.1,
			})
			if err != nil {
				return nil, err
			}
			lib[i] = m
		}
		return lib, nil
	}
	enfW, err := rational.RandomScalarWeight(rand.New(rand.NewSource(78)), nw)
	if err != nil {
		return nil, err
	}
	base := passivity.EnforceOptions{Check: passivity.CheckOptions{Method: passivity.MethodAdaptive}}

	closedLib, err := build()
	if err != nil {
		return nil, err
	}
	for i, m := range closedLib {
		if _, err := core.EnforceWeighted(m, enfW, base); err != nil {
			return nil, fmt.Errorf("extG: closed-cost enforcement of model %d: %w", i, err)
		}
	}
	denseLib, err := build()
	if err != nil {
		return nil, err
	}
	for i, m := range denseLib {
		gram, err := core.WeightedGramianDense(m, enfW)
		if err != nil {
			return nil, err
		}
		opts := base
		opts.CostGramian = gram
		if _, err := passivity.Enforce(m, opts); err != nil {
			return nil, fmt.Errorf("extG: dense-cost enforcement of model %d: %w", i, err)
		}
	}
	probes := []float64{0.3, 2.1, 17, 140, 2500}
	maxDev := 0.0
	for i := range closedLib {
		for _, w := range probes {
			a := closedLib[i].Eval(w)
			b := denseLib[i].Eval(w)
			for e := range a.Data {
				if d := cmplx.Abs(a.Data[e] - b.Data[e]); d > maxDev {
					maxDev = d
				}
			}
		}
	}

	batchLib, err := build()
	if err != nil {
		return nil, err
	}
	brep := passivity.EnforceBatch(batchLib, passivity.BatchOptions{
		Enforce: base, Weight: enfW, Workers: 4,
	})
	bitwise := true
	for i := range batchLib {
		if brep.Results[i].Err != nil {
			return nil, fmt.Errorf("extG: weighted batch model %d: %w", i, brep.Results[i].Err)
		}
		for k := range batchLib[i].Residues {
			if !batchLib[i].Residues[k].Equalish(closedLib[i].Residues[k], 0) {
				bitwise = false
			}
		}
	}

	return &FigResult{
		Figure: "Ext-G: closed-form weighted cascade Gramian vs dense Lyapunov oracle",
		Series: []*Series{s},
		Metrics: map[string]float64{
			"weight_order_nw":            nw,
			"worst_rel_frobenius_err":    worstErr,
			"speedup_at_np500":           speedup500,
			"enforce_max_abs_s_dev":      maxDev,
			"batch_bitwise_vs_closed":    b2f(bitwise),
			"enforced_models_per_cost":   libSize,
			"largest_model_order_tested": float64(sizes[len(sizes)-1]),
		},
		Notes: []string{
			"the closed form solves tiny (≤2×2) Sylvester blocks along the block upper-triangular cascade A instead of one dense (n+n_w)-dimensional Lyapunov equation — same P^Ξ,11 to machine precision, orders of magnitude faster, and what makes per-model weighted costs affordable in batch services",
		},
	}, nil
}

// ExtH — certified enforcement. A library of ~100 random 10-pole weighted
// enforcements runs at a latency-capped adaptive operating point (refinement
// depth 6 — the configuration of the documented σ = 1.0000014 false pass);
// every fourth model carries the narrow off-resonance "shoulder" band that
// the capped sampling steps over. Uncertified enforcement takes the
// sampling check's word for convergence; the Hamiltonian oracle then
// re-judges every result, and the fraction it rejects is the escape rate.
// The same library enforced through the certified pipeline must come back
// with zero escapes — certified violation bands re-enter the loop as
// constraints — at a measured certification overhead.
func (c *Context) ExtH() (*FigResult, error) {
	const libSize = 100
	rng := rand.New(rand.NewSource(1404))
	weight, err := rational.RandomScalarWeight(rng, 4)
	if err != nil {
		return nil, err
	}
	build := func() ([]*rational.Model, error) {
		models := make([]*rational.Model, libSize)
		for i := range models {
			opts := passivity.SyntheticOptions{Ports: 2, Poles: 10, Seed: int64(9000 + i), PeakGain: 0.45}
			if i%4 == 0 {
				opts.NarrowBand = true
				opts.PeakGain = 0.4
			}
			m, err := passivity.SyntheticModel(opts)
			if err != nil {
				return nil, err
			}
			models[i] = m
		}
		return models, nil
	}
	enforceLib := func(models []*rational.Model, certify bool) (*passivity.BatchReport, time.Duration) {
		t0 := time.Now()
		rep := passivity.EnforceBatch(models, passivity.BatchOptions{
			Enforce: passivity.EnforceOptions{
				Check:   passivity.CheckOptions{Method: passivity.MethodAdaptive, AdaptiveMaxStages: 6},
				Certify: certify,
			},
			Weight:  weight,
			Workers: 1, // timing comparison, not a scaling experiment
		})
		return rep, time.Since(t0)
	}
	oracle := func(m *rational.Model) (bool, float64, error) {
		rep, err := passivity.Check(m, passivity.CheckOptions{Method: passivity.MethodHamiltonian})
		if err != nil {
			return false, 0, err
		}
		return rep.Passive, rep.MaxSigma, nil
	}

	plainLib, err := build()
	if err != nil {
		return nil, err
	}
	plainRep, plainElapsed := enforceLib(plainLib, false)
	certLib, err := build()
	if err != nil {
		return nil, err
	}
	certRep, certElapsed := enforceLib(certLib, true)

	series := &Series{
		Name:    "extH_escape_rate",
		Columns: map[string][]float64{},
		Order:   []string{"oracle_sigma_uncertified", "oracle_sigma_certified", "rescues"},
		XLabel:  "model_index",
	}
	escapedPlain, escapedCert := 0, 0
	for i := 0; i < libSize; i++ {
		if plainRep.Results[i].Err != nil || certRep.Results[i].Err != nil {
			return nil, fmt.Errorf("extH: model %d failed: %v / %v", i, plainRep.Results[i].Err, certRep.Results[i].Err)
		}
		okP, sigP, err := oracle(plainLib[i])
		if err != nil {
			return nil, err
		}
		okC, sigC, err := oracle(certLib[i])
		if err != nil {
			return nil, err
		}
		if !okP {
			escapedPlain++
		}
		if !okC {
			escapedCert++
		}
		series.FreqHz = append(series.FreqHz, float64(i))
		series.Columns["oracle_sigma_uncertified"] = append(series.Columns["oracle_sigma_uncertified"], sigP)
		series.Columns["oracle_sigma_certified"] = append(series.Columns["oracle_sigma_certified"], sigC)
		series.Columns["rescues"] = append(series.Columns["rescues"], float64(certRep.Results[i].Report.CertifiedRescues))
	}

	overhead := certElapsed.Seconds()/math.Max(plainElapsed.Seconds(), 1e-9) - 1
	return &FigResult{
		Figure: "Ext-H: certified enforcement — escape rate and certification overhead",
		Series: []*Series{series},
		Metrics: map[string]float64{
			"library_size":           libSize,
			"escaped_uncertified":    float64(escapedPlain),
			"escape_rate_uncert":     float64(escapedPlain) / libSize,
			"escaped_certified":      float64(escapedCert),
			"certified_models":       float64(certRep.Stats.Certified),
			"certified_rescues":      float64(certRep.Stats.CertifiedRescues),
			"uncertified_ms":         float64(plainElapsed.Milliseconds()),
			"certified_ms":           float64(certElapsed.Milliseconds()),
			"certification_overhead": overhead,
		},
		Notes: []string{
			"escapes are convergences the sampling check accepted but the Hamiltonian oracle rejects; the certified pipeline re-enters every proven band as constraints, so its escape count must be zero by construction",
		},
	}, nil
}

// Extensions runs every extension experiment in order.
func (c *Context) Extensions() ([]*FigResult, error) {
	var out []*FigResult
	for _, fn := range []func() (*FigResult, error){c.ExtA, c.ExtB, c.ExtC, c.ExtD, c.ExtE, c.ExtF, c.ExtG, c.ExtH} {
		r, err := fn()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
