package experiments

// Hypothesis-harness promotion of the extension experiments: the claims
// the Ext-E..Ext-H figures demonstrate, restated falsifiably and run under
// the classification rigor of internal/experiments/hypothesis —
// deterministic invariants on a single seed (failure = bug), statistical
// claims on ≥3 seeds with directional consistency and a >20% (or bounded)
// effect threshold on every seed. The FigResult versions remain the
// plotted artifacts; these are the judged, reproducible FINDINGS.

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/experiments/hypothesis"
	"repro/internal/passivity"
	"repro/internal/rational"
)

// Hypotheses returns the registry of promoted extension experiments.
func Hypotheses() (*hypothesis.Registry, error) {
	r := hypothesis.NewRegistry()
	for _, s := range []hypothesis.Spec{
		extEAdaptiveEconomy(),
		extFBatchBitwise(),
		extGGramianOracle(),
		extHCertifiedClosure(),
		extHCertifiedOverhead(),
	} {
		if err := r.Register(s); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// extEAdaptiveEconomy — Ext-E promoted: the adaptive characterizer reaches
// the fixed sweep's verdict on >20% fewer σ evaluations, on every seed.
func extEAdaptiveEconomy() hypothesis.Spec {
	return hypothesis.Spec{
		ID:      "ext-e-adaptive-economy",
		Title:   "Adaptive characterization beats the fixed sweep on sample economy",
		Claim:   "On violating synthetic models the multi-stage adaptive characterizer reaches the same passivity verdict as the 1200-point fixed sweep while spending >20% fewer σ(ω) evaluations, consistently across seeds.",
		Class:   hypothesis.Statistical,
		Subtype: hypothesis.Dominance,
		Primary: "sweep_samples/adaptive_samples",
		Run: func(seed int64) (hypothesis.Trial, error) {
			m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
				Ports: 2, Poles: 40, Seed: seed, PeakGain: 1.1,
			})
			if err != nil {
				return hypothesis.Trial{}, err
			}
			sweep, err := passivity.Check(m, passivity.CheckOptions{Method: passivity.MethodSweep, SweepPoints: 1200})
			if err != nil {
				return hypothesis.Trial{}, err
			}
			adaptive, err := passivity.Check(m, passivity.CheckOptions{Method: passivity.MethodAdaptive})
			if err != nil {
				return hypothesis.Trial{}, err
			}
			if adaptive.Samples == 0 {
				return hypothesis.Trial{}, fmt.Errorf("adaptive characterizer reported zero samples")
			}
			return hypothesis.Trial{
				Primary: float64(sweep.Samples) / float64(adaptive.Samples),
				Pass:    sweep.Passive == adaptive.Passive,
				Metrics: map[string]float64{
					"sweep_samples":      float64(sweep.Samples),
					"adaptive_samples":   float64(adaptive.Samples),
					"sweep_max_sigma":    sweep.MaxSigma,
					"adaptive_max_sigma": adaptive.MaxSigma,
					"verdict_agreement":  b2f(sweep.Passive == adaptive.Passive),
				},
			}, nil
		},
	}
}

// extFBatchBitwise — Ext-F promoted: sharded batch enforcement is bitwise
// identical to sequential per-model enforcement.
func extFBatchBitwise() hypothesis.Spec {
	return hypothesis.Spec{
		ID:      "ext-f-batch-bitwise",
		Title:   "Batch enforcement is bitwise identical to sequential",
		Class:   hypothesis.Deterministic,
		Subtype: hypothesis.Invariant,
		Claim:   "EnforcePassivityBatch produces residue matrices bitwise identical to sequential EnforcePassivity on the same library, for every model, with the whole library enforced passive.",
		Primary: "bitwise_mismatches",
		Run: func(seed int64) (hypothesis.Trial, error) {
			const libSize = 4
			build := func() ([]*rational.Model, error) {
				lib := make([]*rational.Model, libSize)
				for i := range lib {
					m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
						Ports: 2, Poles: 24, Seed: seed*1000 + int64(i), PeakGain: 1.1,
					})
					if err != nil {
						return nil, err
					}
					lib[i] = m
				}
				return lib, nil
			}
			opts := passivity.EnforceOptions{Check: passivity.CheckOptions{Method: passivity.MethodAdaptive}, ClampD: true}
			seq, err := build()
			if err != nil {
				return hypothesis.Trial{}, err
			}
			passive := libSize
			for i, m := range seq {
				rep, err := passivity.Enforce(m, opts)
				if err != nil {
					return hypothesis.Trial{}, fmt.Errorf("sequential model %d: %w", i, err)
				}
				if !rep.Passive {
					passive--
				}
			}
			bat, err := build()
			if err != nil {
				return hypothesis.Trial{}, err
			}
			brep := passivity.EnforceBatch(bat, passivity.BatchOptions{Enforce: opts, Workers: 4})
			mismatches := 0
			for i := range bat {
				if brep.Results[i].Err != nil {
					return hypothesis.Trial{}, fmt.Errorf("batch model %d: %w", i, brep.Results[i].Err)
				}
				for k := range bat[i].Residues {
					if !bat[i].Residues[k].Equalish(seq[i].Residues[k], 0) {
						mismatches++
					}
				}
			}
			return hypothesis.Trial{
				Primary: float64(mismatches),
				Pass:    mismatches == 0 && passive == libSize && brep.Stats.Passive == libSize,
				Metrics: map[string]float64{
					"library_size":       libSize,
					"bitwise_mismatches": float64(mismatches),
					"sequential_passive": float64(passive),
					"batch_passive":      float64(brep.Stats.Passive),
				},
			}, nil
		},
	}
}

// extGGramianOracle — Ext-G promoted: the closed-form cascade Gramian
// matches the dense Lyapunov oracle to near machine precision.
func extGGramianOracle() hypothesis.Spec {
	return hypothesis.Spec{
		ID:      "ext-g-gramian-oracle",
		Title:   "Closed-form cascade Gramian matches the dense Lyapunov oracle",
		Class:   hypothesis.Deterministic,
		Subtype: hypothesis.Invariant,
		Claim:   "rational-model weighted Gramians from the closed-form cascade construction agree with the dense statespace Lyapunov oracle within 1e-10 relative Frobenius error across model orders.",
		Primary: "worst_rel_frobenius_err",
		Run: func(seed int64) (hypothesis.Trial, error) {
			rng := rand.New(rand.NewSource(seed))
			weight, err := rational.RandomScalarWeight(rng, 8)
			if err != nil {
				return hypothesis.Trial{}, err
			}
			worst := 0.0
			for _, np := range []int{100, 250} {
				poles := rational.RandomStablePoles(rng, np)
				model, err := rational.NewScalar(poles, make([]complex128, len(poles)), 0)
				if err != nil {
					return hypothesis.Trial{}, err
				}
				fast, err := core.WeightedGramian(model, weight)
				if err != nil {
					return hypothesis.Trial{}, err
				}
				dense, err := core.WeightedGramianDense(model, weight)
				if err != nil {
					return hypothesis.Trial{}, err
				}
				var num, den float64
				for i := 0; i < dense.Rows; i++ {
					for j := 0; j < dense.Cols; j++ {
						d := fast.At(i, j) - dense.At(i, j)
						num += d * d
						den += dense.At(i, j) * dense.At(i, j)
					}
				}
				worst = math.Max(worst, math.Sqrt(num/den))
			}
			return hypothesis.Trial{
				Primary: worst,
				Pass:    worst <= 1e-10,
				Metrics: map[string]float64{"worst_rel_frobenius_err": worst},
			}, nil
		},
	}
}

// extHCorpus builds the Ext-H certification corpus: 100 random 10-pole
// violating models, every fourth carrying the narrow off-resonance
// "shoulder" band the stage-capped adaptive sampling steps over.
func extHCorpus(size int) ([]*rational.Model, error) {
	models := make([]*rational.Model, size)
	for i := range models {
		opts := passivity.SyntheticOptions{Ports: 2, Poles: 10, Seed: int64(9000 + i), PeakGain: 0.45}
		if i%4 == 0 {
			opts.NarrowBand = true
			opts.PeakGain = 0.4
		}
		m, err := passivity.SyntheticModel(opts)
		if err != nil {
			return nil, err
		}
		models[i] = m
	}
	return models, nil
}

// extHEnforce runs the weighted Ext-H enforcement at the stage-capped
// adaptive operating point (the documented false-pass configuration).
func extHEnforce(models []*rational.Model, certify bool) (*passivity.BatchReport, time.Duration, error) {
	rng := rand.New(rand.NewSource(1404))
	weight, err := rational.RandomScalarWeight(rng, 4)
	if err != nil {
		return nil, 0, err
	}
	t0 := time.Now()
	rep := passivity.EnforceBatch(models, passivity.BatchOptions{
		Enforce: passivity.EnforceOptions{
			Check:   passivity.CheckOptions{Method: passivity.MethodAdaptive, AdaptiveMaxStages: 6},
			Certify: certify,
		},
		Weight:  weight,
		Workers: 1,
	})
	return rep, time.Since(t0), nil
}

// extHCertifiedClosure — the terminal contour-counter claim on the Ext-H
// corpus: certified enforcement leaves zero unsettled intervals and zero
// oracle escapes. Before the counter stage the probe pipeline could leave
// Open intervals behind (best-effort verdicts); with it every certificate
// must finish the whole axis.
func extHCertifiedClosure() hypothesis.Spec {
	return hypothesis.Spec{
		ID:      "ext-h-certified-closure",
		Title:   "Certified enforcement settles every interval (Open == nil) with zero escapes",
		Class:   hypothesis.Deterministic,
		Subtype: hypothesis.Invariant,
		Claim:   "On the Ext-H 100-model weighted-enforcement corpus, every certificate returned by the counter-terminated pipeline is Certified with zero Open intervals, and the dense Hamiltonian oracle rejects none of the enforced models.",
		Primary: "open_intervals_plus_escapes",
		Run: func(int64) (hypothesis.Trial, error) {
			models, err := extHCorpus(100)
			if err != nil {
				return hypothesis.Trial{}, err
			}
			rep, elapsed, err := extHEnforce(models, true)
			if err != nil {
				return hypothesis.Trial{}, err
			}
			openIntervals, uncertified, escapes, nodes := 0, 0, 0, 0
			for i, res := range rep.Results {
				if res.Err != nil {
					return hypothesis.Trial{}, fmt.Errorf("model %d: %w", i, res.Err)
				}
				cert := res.Report.Certificate
				if cert == nil || !cert.Certified {
					uncertified++
				}
				if cert != nil {
					openIntervals += len(cert.Open)
					for _, st := range cert.Stages {
						nodes += st.Nodes
					}
				}
				oracle, err := passivity.Check(models[i], passivity.CheckOptions{Method: passivity.MethodHamiltonian})
				if err != nil {
					return hypothesis.Trial{}, err
				}
				if !oracle.Passive {
					escapes++
				}
			}
			return hypothesis.Trial{
				Primary: float64(openIntervals + escapes),
				Pass:    openIntervals == 0 && escapes == 0 && uncertified == 0,
				Metrics: map[string]float64{
					"library_size":      float64(len(models)),
					"open_intervals":    float64(openIntervals),
					"uncertified":       float64(uncertified),
					"oracle_escapes":    float64(escapes),
					"counter_nodes":     float64(nodes),
					"certified_rescues": float64(rep.Stats.CertifiedRescues),
					"elapsed_ms":        float64(elapsed.Milliseconds()),
				},
			}, nil
		},
	}
}

// extHCertifiedOverhead — the certification-cost claim on the BENCH_4
// steady-state workload: enforcement of already-passive models (the
// library-service steady state) with the counter-terminated full-axis
// certificate costs at most 25% more wall-clock than without it. On the
// violating corpus certify=true also re-enforces rescued bands — extra
// enforcement work, not certificate cost — so the bound is measured where
// BENCH_4.json measured it: models whose enforcement converges immediately
// and whose entire added cost is the certificate.
func extHCertifiedOverhead() hypothesis.Spec {
	return hypothesis.Spec{
		ID:        "ext-h-certified-overhead",
		Title:     "Certification overhead stays within 25% on the steady-state path",
		Class:     hypothesis.Statistical,
		Subtype:   hypothesis.Bounded,
		Claim:     "Enforcing a library of truly passive models with full-axis certification (counter-terminated pipeline) costs at most 25% more wall-clock than the same run without certification, on every seed.",
		Primary:   "certification_overhead",
		Threshold: 0.25,
		Run: func(seed int64) (hypothesis.Trial, error) {
			// BENCH_4 sizing: nP ≥ 500 keeps the pipeline on the large-model
			// branch, and the generous passivity headroom (low peak gain)
			// keeps every seed on the eigensolve-free tail-bound + Lipschitz
			// path — the steady state the ≤25% bound is about.
			const libSize = 8
			build := func() ([]*rational.Model, error) {
				lib := make([]*rational.Model, libSize)
				for i := range lib {
					m, err := passivity.SyntheticModel(passivity.SyntheticOptions{
						Ports: 2, Poles: 250 + 125*(i%3), Seed: seed*100 + int64(i),
						PeakGain: 0.04, DSigma: 0.6,
					})
					if err != nil {
						return nil, err
					}
					lib[i] = m
				}
				return lib, nil
			}
			run := func(certify bool) (time.Duration, int, error) {
				lib, err := build()
				if err != nil {
					return 0, 0, err
				}
				opts := passivity.EnforceOptions{
					Check:   passivity.CheckOptions{Method: passivity.MethodAdaptive},
					Certify: certify,
				}
				t0 := time.Now()
				certified := 0
				for i, m := range lib {
					rep, err := passivity.Enforce(m, opts)
					if err != nil {
						return 0, 0, fmt.Errorf("model %d: %w", i, err)
					}
					if !rep.Passive {
						return 0, 0, fmt.Errorf("model %d unexpectedly non-passive", i)
					}
					if rep.Certificate != nil && rep.Certificate.Certified {
						certified++
					}
				}
				return time.Since(t0), certified, nil
			}
			plainElapsed, _, err := run(false)
			if err != nil {
				return hypothesis.Trial{}, err
			}
			certElapsed, certified, err := run(true)
			if err != nil {
				return hypothesis.Trial{}, err
			}
			overhead := certElapsed.Seconds()/math.Max(plainElapsed.Seconds(), 1e-9) - 1
			return hypothesis.Trial{
				Primary: overhead,
				Pass:    overhead <= 0.25,
				Metrics: map[string]float64{
					"library_size":     libSize,
					"certified_models": float64(certified),
					"uncertified_ms":   float64(plainElapsed.Milliseconds()),
					"certified_ms":     float64(certElapsed.Milliseconds()),
				},
			}, nil
		},
	}
}
