package experiments

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	repro "repro"
)

// quickCtx shares one reduced-cost context across the tests in this
// package; building it exercises the whole flow once.
var quickCtx = NewContext(Config{
	Points:        60,
	Poles:         10,
	WeightOrder:   8,
	VFIterations:  5,
	EnforceMargin: 2e-5,
	Preset:        repro.PDNSmall,
})

func TestAllFiguresRun(t *testing.T) {
	results, err := quickCtx.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("expected 6 figures, got %d", len(results))
	}
	for i, r := range results {
		if len(r.Series) == 0 {
			t.Fatalf("figure %d has no series", i+1)
		}
		if len(r.Metrics) == 0 {
			t.Fatalf("figure %d has no metrics", i+1)
		}
		if !strings.Contains(r.Summary(), "==") {
			t.Fatalf("summary formatting broken")
		}
	}
}

func TestShapeCriteria(t *testing.T) {
	// The qualitative claims of the paper, asserted on the reduced run.
	fig2, err := quickCtx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if fig2.Metrics["weighted_worst_rel_err_below_10MHz"] > fig2.Metrics["standard_worst_rel_err_below_10MHz"] {
		t.Fatalf("Fig2 shape violated: weighted fit should beat standard at LF (%v vs %v)",
			fig2.Metrics["weighted_worst_rel_err_below_10MHz"],
			fig2.Metrics["standard_worst_rel_err_below_10MHz"])
	}
	fig3, err := quickCtx.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if fig3.Metrics["xi_dynamic_range_db"] < 20 {
		t.Fatalf("Fig3 shape violated: sensitivity should span decades (%v dB)",
			fig3.Metrics["xi_dynamic_range_db"])
	}
	fig4, err := quickCtx.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if fig4.Metrics["max_sigma_before"] <= 1 {
		t.Fatalf("Fig4: the fitted model should violate passivity")
	}
	if fig4.Metrics["max_sigma_after"] > 1+1e-6 {
		t.Fatalf("Fig4: enforcement left σmax = %v", fig4.Metrics["max_sigma_after"])
	}
	fig5, err := quickCtx.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if fig5.Metrics["standard_over_weighted_error_ratio"] < 1.5 {
		t.Fatalf("Fig5 headline violated: weighted enforcement should preserve Z better (ratio %v)",
			fig5.Metrics["standard_over_weighted_error_ratio"])
	}
	fig6, err := quickCtx.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if fig6.Metrics["final_rms_error"] > 0.05 {
		t.Fatalf("Fig6: final scattering accuracy lost (%v)", fig6.Metrics["final_rms_error"])
	}
}

func TestCSVOutput(t *testing.T) {
	res, err := quickCtx.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(filepath.Join(dir, "fig2_target_impedance_after_fitting.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(blob)), "\n")
	if !strings.HasPrefix(lines[0], "freq_hz,z_nominal_ohm") {
		t.Fatalf("CSV header wrong: %q", lines[0])
	}
	if len(lines) != quickCtx.Cfg.Points+2 { // header + DC + points
		t.Fatalf("CSV rows %d want %d", len(lines), quickCtx.Cfg.Points+2)
	}
}

func TestExtensionsRunAndHoldShape(t *testing.T) {
	results, err := quickCtx.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("expected 8 extension experiments, got %d", len(results))
	}
	for _, r := range results {
		if len(r.Series) == 0 || len(r.Metrics) == 0 {
			t.Fatalf("%s: empty result", r.Figure)
		}
	}

	extA := results[0]
	// Representation independence is a consistency claim: every path must
	// complete (produce a passive model; Extract fails otherwise) and no
	// path may be catastrophically worse than another. Absolute accuracy
	// on this deliberately down-scaled config is checked by Fig5's ratio.
	for _, k := range []string{"z_err_lf_native_50ohm", "z_err_lf_renormalized_5", "z_err_lf_via_admittance"} {
		v := extA.Metrics[k]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("Ext-A: %s = %v", k, v)
		}
	}
	if extA.Metrics["worst_path_over_best"] > 50 {
		t.Fatalf("Ext-A: representation paths diverge by ×%v", extA.Metrics["worst_path_over_best"])
	}

	extB := results[1]
	if extB.Metrics["min_energy_weighted_joule"] < -1e-9 || extB.Metrics["min_energy_standard_joule"] < -1e-9 {
		t.Fatalf("Ext-B: passive models generated energy: %v / %v",
			extB.Metrics["min_energy_weighted_joule"], extB.Metrics["min_energy_standard_joule"])
	}
	// Transient must reproduce each model's own frequency response.
	if extB.Metrics["td_fd_consistency_weighted"] > 0.05 || extB.Metrics["td_fd_consistency_standard"] > 0.05 {
		t.Fatalf("Ext-B: co-simulation inconsistent with frequency domain: %v / %v",
			extB.Metrics["td_fd_consistency_weighted"], extB.Metrics["td_fd_consistency_standard"])
	}

	extC := results[2]
	if extC.Metrics["rms_s_reduced"] > 50*extC.Metrics["rms_s_overfit"]+extC.Metrics["bt_bound"] {
		t.Fatalf("Ext-C: reduced model error %v implausibly large", extC.Metrics["rms_s_reduced"])
	}

	extD := results[3]
	if extD.Metrics["scaling_gamma"] <= 0 || extD.Metrics["scaling_gamma"] > 1 {
		t.Fatalf("Ext-D: bad scaling γ %v", extD.Metrics["scaling_gamma"])
	}
	if extD.Metrics["z_err_lf_residue_scaling"] < extD.Metrics["z_err_lf_weighted_qp"] {
		t.Fatalf("Ext-D shape violated: scaling (%v) should be worse than weighted QP (%v)",
			extD.Metrics["z_err_lf_residue_scaling"], extD.Metrics["z_err_lf_weighted_qp"])
	}

	extE := results[4]
	if extE.Metrics["verdict_agreement"] != 1 {
		t.Fatalf("Ext-E: adaptive and sweep characterization disagree: %+v", extE.Metrics)
	}
	if extE.Metrics["enforced_passive"] != 1 {
		t.Fatalf("Ext-E: adaptive-driven enforcement failed: %+v", extE.Metrics)
	}
	if extE.Metrics["adaptive_samples"] <= 0 || extE.Metrics["sweep_samples"] <= 0 {
		t.Fatalf("Ext-E: missing sample accounting: %+v", extE.Metrics)
	}

	extF := results[5]
	if extF.Metrics["bitwise_identical"] != 1 {
		t.Fatalf("Ext-F: batch enforcement diverged from sequential: %+v", extF.Metrics)
	}
	if extF.Metrics["batch_passive"] != extF.Metrics["library_size"] || extF.Metrics["batch_failed"] != 0 {
		t.Fatalf("Ext-F: library not fully enforced: %+v", extF.Metrics)
	}
	if extF.Metrics["batch_iterations"] != extF.Metrics["sequential_iters"] {
		t.Fatalf("Ext-F: batch and sequential iteration counts differ: %+v", extF.Metrics)
	}

	extG := results[6]
	if extG.Metrics["worst_rel_frobenius_err"] > 1e-10 {
		t.Fatalf("Ext-G: closed form diverges from the dense oracle: %+v", extG.Metrics)
	}
	if extG.Metrics["batch_bitwise_vs_closed"] != 1 {
		t.Fatalf("Ext-G: weighted batch diverged from sequential weighted enforcement: %+v", extG.Metrics)
	}
	if extG.Metrics["enforce_max_abs_s_dev"] > 1e-6 {
		t.Fatalf("Ext-G: closed-cost and dense-cost enforcement disagree: %+v", extG.Metrics)
	}

	extH := results[7]
	if extH.Metrics["escaped_certified"] != 0 {
		t.Fatalf("Ext-H: certified enforcement let %v false passes escape: %+v",
			extH.Metrics["escaped_certified"], extH.Metrics)
	}
	if extH.Metrics["escaped_uncertified"] == 0 {
		t.Fatalf("Ext-H: the uncertified operating point produced no escapes — the experiment no longer measures anything: %+v", extH.Metrics)
	}
	if extH.Metrics["certified_models"] != extH.Metrics["library_size"] {
		t.Fatalf("Ext-H: not every model came back with a full certificate: %+v", extH.Metrics)
	}
	if extH.Metrics["certified_rescues"] < extH.Metrics["escaped_uncertified"] {
		t.Fatalf("Ext-H: fewer rescues than uncertified escapes — the pipeline is not catching the same bands: %+v", extH.Metrics)
	}
}

func TestExtensionCSVEmission(t *testing.T) {
	res, err := quickCtx.ExtD()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "extD_enforcement_ablation.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "freq_hz,") {
		t.Fatalf("unexpected CSV header: %.60s", data)
	}
}

func TestTransientSeriesUsesTimeAxis(t *testing.T) {
	res, err := quickCtx.ExtB()
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].XLabel != "time_s" {
		t.Fatalf("Ext-B series should be a time series, got %q", res.Series[0].XLabel)
	}
	dir := t.TempDir()
	if err := res.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "extB_transient_tone_waveforms.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "time_s,") {
		t.Fatalf("unexpected CSV header: %.60s", data)
	}
}
