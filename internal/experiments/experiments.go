// Package experiments regenerates every figure of the paper's evaluation
// (§IV) on the synthetic 45-port PDN testcase. Each FigN method returns the
// plotted series plus the quantitative shape metrics recorded in
// EXPERIMENTS.md, and can emit CSV files for external plotting.
//
// The artifacts (dataset, fits, weights, enforced models) are built lazily
// and shared across figures, mirroring the single flow of the paper:
//
//	data → standard fit (Fig 1) → target impedances (Fig 2)
//	     → sensitivity + weight model (Fig 3)
//	     → weighted fit → singular values (Fig 4)
//	     → standard vs weighted enforcement (Fig 5) → final scattering (Fig 6)
package experiments

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"

	repro "repro"
)

// Config sizes an experiment run.
type Config struct {
	// Points is the number of log-spaced frequency samples, 1 kHz–2 GHz
	// (the DC point is always added), paper: ~300.
	Points int
	// Poles is the macromodel order n (paper: 12).
	Poles int
	// WeightOrder is the sensitivity weight order n_w (paper: 8).
	WeightOrder int
	// VFIterations bounds the Vector Fitting sweeps.
	VFIterations int
	// EnforceMargin is the singular-value margin of the enforcement loop.
	EnforceMargin float64
	// Preset selects the synthetic structure.
	Preset repro.PDNPreset
}

// Default mirrors the paper's settings on the full 45-port structure.
func Default() Config {
	return Config{
		Points:        301,
		Poles:         12,
		WeightOrder:   8,
		VFIterations:  8,
		EnforceMargin: 2e-5,
		Preset:        repro.PDNPaper45,
	}
}

// Quick is a reduced-cost variant for benchmarks and CI: same structure,
// coarser frequency grid and fewer fit sweeps.
func Quick() Config {
	c := Default()
	c.Points = 100
	c.VFIterations = 5
	return c
}

// Context lazily builds and caches the shared artifacts.
type Context struct {
	Cfg Config

	once struct {
		data, zref, xi, weight, stdFit, wFit, enfStd, enfW sync.Once
	}
	err struct {
		data, zref, xi, weight, stdFit, wFit, enfStd, enfW error
	}

	syn    *repro.SyntheticPDN
	zref   []complex128
	xi     []float64
	weight *repro.Weight

	stdModel  *repro.Macromodel // plain (unweighted) fit
	stdFitRep *repro.FitReport

	wModel  *repro.Macromodel // sensitivity-weighted fit (non-passive)
	wFitRep *repro.FitReport

	enfStdModel *repro.Macromodel // weighted fit + standard enforcement
	enfStdRep   *repro.EnforceReport
	enfWModel   *repro.Macromodel // weighted fit + weighted enforcement
	enfWRep     *repro.EnforceReport
}

// NewContext prepares a lazy experiment context.
func NewContext(cfg Config) *Context {
	if cfg.Points <= 0 {
		cfg = Default()
	}
	return &Context{Cfg: cfg}
}

// Freqs returns the frequency grid (Hz) including DC.
func (c *Context) Freqs() []float64 {
	return repro.LogFreqGrid(1e3, 2e9, c.Cfg.Points, true)
}

// Dataset returns the synthetic PDN scattering data and nominal load.
func (c *Context) Dataset() (*repro.SyntheticPDN, error) {
	c.once.data.Do(func() {
		c.syn, c.err.data = repro.GeneratePDN(c.Cfg.Preset, c.Freqs(), 50)
	})
	return c.syn, c.err.data
}

// ReferenceZ returns the nominal target impedance computed from the data.
func (c *Context) ReferenceZ() ([]complex128, error) {
	c.once.zref.Do(func() {
		syn, err := c.Dataset()
		if err != nil {
			c.err.zref = err
			return
		}
		c.zref, c.err.zref = repro.TargetImpedance(syn.Data, syn.Load)
	})
	return c.zref, c.err.zref
}

// Sensitivity returns the Ξ_k samples.
func (c *Context) Sensitivity() ([]float64, error) {
	c.once.xi.Do(func() {
		syn, err := c.Dataset()
		if err != nil {
			c.err.xi = err
			return
		}
		c.xi, c.err.xi = repro.Sensitivity(syn.Data, syn.Load)
	})
	return c.xi, c.err.xi
}

// WeightModel returns the fitted minimum-phase weight Ξ̃(s).
func (c *Context) WeightModel() (*repro.Weight, error) {
	c.once.weight.Do(func() {
		syn, err := c.Dataset()
		if err != nil {
			c.err.weight = err
			return
		}
		c.weight, _, c.err.weight = repro.BuildWeight(syn.Data, syn.Load, c.Cfg.WeightOrder)
	})
	return c.weight, c.err.weight
}

// StandardFit returns the plain (unweighted) macromodel — the paper's
// baseline whose loaded accuracy collapses.
func (c *Context) StandardFit() (*repro.Macromodel, *repro.FitReport, error) {
	c.once.stdFit.Do(func() {
		syn, err := c.Dataset()
		if err != nil {
			c.err.stdFit = err
			return
		}
		c.stdModel, c.stdFitRep, c.err.stdFit = repro.Fit(syn.Data, repro.FitOptions{
			NumPoles:   c.Cfg.Poles,
			Iterations: c.Cfg.VFIterations,
			ConstrainD: 0.999,
		})
	})
	return c.stdModel, c.stdFitRep, c.err.stdFit
}

// WeightedFit returns the sensitivity-weighted macromodel before passivity
// enforcement.
func (c *Context) WeightedFit() (*repro.Macromodel, *repro.FitReport, error) {
	c.once.wFit.Do(func() {
		syn, err := c.Dataset()
		if err != nil {
			c.err.wFit = err
			return
		}
		xi, err := c.Sensitivity()
		if err != nil {
			c.err.wFit = err
			return
		}
		c.wModel, c.wFitRep, c.err.wFit = repro.Fit(syn.Data, repro.FitOptions{
			NumPoles:   c.Cfg.Poles,
			Iterations: c.Cfg.VFIterations,
			Weights:    xi,
			ConstrainD: 0.999,
		})
	})
	return c.wModel, c.wFitRep, c.err.wFit
}

func (c *Context) enforceOptions(weight *repro.Weight) repro.EnforceOptions {
	return repro.EnforceOptions{
		Check: repro.CheckOptions{
			ForceSweep:  true,
			FreqMin:     500,
			FreqMax:     4e9,
			SweepPoints: 1200,
		},
		Margin: c.Cfg.EnforceMargin,
		ClampD: true,
		Weight: weight,
	}
}

// StandardEnforced returns the weighted-fit model made passive with the
// STANDARD (unweighted) cost — the paper's Fig. 5 "standard SOCP" curve.
func (c *Context) StandardEnforced() (*repro.Macromodel, *repro.EnforceReport, error) {
	c.once.enfStd.Do(func() {
		m, _, err := c.WeightedFit()
		if err != nil {
			c.err.enfStd = err
			return
		}
		clone := m.Clone()
		c.enfStdRep, c.err.enfStd = repro.EnforcePassivity(clone, c.enforceOptions(nil))
		c.enfStdModel = clone
	})
	return c.enfStdModel, c.enfStdRep, c.err.enfStd
}

// WeightedEnforced returns the weighted-fit model made passive with the
// paper's sensitivity-weighted cost — the Fig. 5 "weighted SOCP" curve.
func (c *Context) WeightedEnforced() (*repro.Macromodel, *repro.EnforceReport, error) {
	c.once.enfW.Do(func() {
		m, _, err := c.WeightedFit()
		if err != nil {
			c.err.enfW = err
			return
		}
		w, err := c.WeightModel()
		if err != nil {
			c.err.enfW = err
			return
		}
		clone := m.Clone()
		c.enfWRep, c.err.enfW = repro.EnforcePassivity(clone, c.enforceOptions(w))
		c.enfWModel = clone
	})
	return c.enfWModel, c.enfWRep, c.err.enfW
}

// --- shared helpers ------------------------------------------------------

func db(x float64) float64 {
	if x <= 0 {
		return -400
	}
	return 20 * math.Log10(x)
}

// worstRel returns the worst relative deviation |a−b|/|b| over the indices
// where sel returns true.
func worstRel(a, b []complex128, freqs []float64, sel func(f float64) bool) float64 {
	mx := 0.0
	for i := range a {
		if !sel(freqs[i]) {
			continue
		}
		r := cmplx.Abs(a[i]-b[i]) / (1e-15 + cmplx.Abs(b[i]))
		if r > mx {
			mx = r
		}
	}
	return mx
}

func lfBand(f float64) bool  { return f > 0 && f < 1e7 }
func allBand(f float64) bool { return f > 0 }

// fmtHz renders a frequency compactly.
func fmtHz(f float64) string {
	switch {
	case f >= 1e9:
		return fmt.Sprintf("%.3gGHz", f/1e9)
	case f >= 1e6:
		return fmt.Sprintf("%.3gMHz", f/1e6)
	case f >= 1e3:
		return fmt.Sprintf("%.3gkHz", f/1e3)
	default:
		return fmt.Sprintf("%.3gHz", f)
	}
}
