package statespace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// randSys builds a random stable system with block-diagonal dynamics.
func randSys(rng *rand.Rand, n, inputs, outputs int) *System {
	a := mat.NewMatrix(n, n)
	for k := 0; k < n; {
		if k+1 < n && rng.Float64() < 0.5 {
			al := -0.4 - rng.Float64()
			be := 0.5 + 2*rng.Float64()
			a.Set(k, k, al)
			a.Set(k, k+1, be)
			a.Set(k+1, k, -be)
			a.Set(k+1, k+1, al)
			k += 2
			continue
		}
		a.Set(k, k, -0.2-rng.Float64())
		k++
	}
	b := mat.NewMatrix(n, inputs)
	c := mat.NewMatrix(outputs, n)
	d := mat.NewMatrix(outputs, inputs)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	for i := range d.Data {
		d.Data[i] = 0.2 * rng.NormFloat64()
	}
	return MustNew(a, b, c, d)
}

func TestQuickSeriesIsTransferProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	f := func(seed int64, omegaRaw float64) bool {
		local := rand.New(rand.NewSource(seed))
		p := 1 + local.Intn(3)
		q := 1 + local.Intn(3)
		r := 1 + local.Intn(3)
		g := randSys(rng, 1+local.Intn(6), q, r) // G: q inputs → r outputs
		h := randSys(rng, 1+local.Intn(6), p, q) // H: p inputs → q outputs
		gh, err := Series(g, h)
		if err != nil {
			return false
		}
		omega := math.Mod(math.Abs(omegaRaw), 50)
		lhs, err := gh.Eval(omega)
		if err != nil {
			return false
		}
		gw, err := g.Eval(omega)
		if err != nil {
			return false
		}
		hw, err := h.Eval(omega)
		if err != nil {
			return false
		}
		return lhs.Equalish(gw.Mul(hw), 1e-8*(1+lhs.MaxAbs()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeriesOrderAdds(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g := randSys(rng, 5, 2, 2)
	h := randSys(rng, 7, 2, 2)
	gh, err := Series(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Order() != 12 {
		t.Fatalf("series order %d want 12", gh.Order())
	}
	if gh.Inputs() != 2 || gh.Outputs() != 2 {
		t.Fatalf("series io %d×%d want 2×2", gh.Outputs(), gh.Inputs())
	}
}

func TestQuickGramianPositiveSemidefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		sys := randSys(rng, 2+rng.Intn(8), 1+rng.Intn(3), 2)
		p, err := sys.Gramian()
		if err != nil {
			t.Fatal(err)
		}
		// xᵀPx ≥ 0 for random directions.
		n := sys.Order()
		for k := 0; k < 10; k++ {
			x := make([]float64, n)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			if q := mat.Dot(x, p.MulVec(x)); q < -1e-10 {
				t.Fatalf("trial %d: Gramian indefinite (xᵀPx = %g)", trial, q)
			}
		}
	}
}

func TestQuickEvalConjugateSymmetry(t *testing.T) {
	// Real systems satisfy H(−jω) = conj(H(jω)).
	rng := rand.New(rand.NewSource(64))
	sys := randSys(rng, 6, 2, 2)
	for _, omega := range []float64{0.1, 1, 3, 17} {
		hp, err := sys.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		hm, err := sys.Eval(-omega)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				a := hp.At(i, j)
				b := hm.At(i, j)
				if math.Abs(real(a)-real(b)) > 1e-10 || math.Abs(imag(a)+imag(b)) > 1e-10 {
					t.Fatalf("conjugate symmetry violated at ω=%g (%d,%d)", omega, i, j)
				}
			}
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	sys := randSys(rng, 4, 1, 1)
	c := sys.Clone()
	c.A.Set(0, 0, 99)
	if sys.A.At(0, 0) == 99 {
		t.Fatal("Clone must not share storage")
	}
}
