package statespace

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func randStableSystem(rng *rand.Rand, n, m, p int) *System {
	a := mat.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	shift := a.FrobNorm() + 0.5
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)-shift)
	}
	b := mat.NewMatrix(n, m)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	c := mat.NewMatrix(p, n)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	d := mat.NewMatrix(p, m)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return MustNew(a, b, c, d)
}

func TestEvalFirstOrderSystem(t *testing.T) {
	// H(s) = 1/(s+2) + 0.5
	a := mat.NewMatrixFrom([][]float64{{-2}})
	b := mat.NewMatrixFrom([][]float64{{1}})
	c := mat.NewMatrixFrom([][]float64{{1}})
	d := mat.NewMatrixFrom([][]float64{{0.5}})
	sys := MustNew(a, b, c, d)
	for _, omega := range []float64{0, 1, 10} {
		h, err := sys.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		want := 1/(complex(0, omega)+2) + 0.5
		if cmplx.Abs(h.At(0, 0)-want) > 1e-14 {
			t.Fatalf("ω=%v: %v want %v", omega, h.At(0, 0), want)
		}
	}
}

func TestSeriesTransferProduct(t *testing.T) {
	// Transfer of Series(G,H) equals G(jω)·H(jω) pointwise.
	rng := rand.New(rand.NewSource(60))
	g := randStableSystem(rng, 4, 2, 3)
	h := randStableSystem(rng, 3, 1, 2)
	gh, err := Series(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if gh.Order() != 7 || gh.Inputs() != 1 || gh.Outputs() != 3 {
		t.Fatalf("series dims wrong: n=%d m=%d p=%d", gh.Order(), gh.Inputs(), gh.Outputs())
	}
	for _, omega := range []float64{0, 0.7, 4, 25} {
		hg, err := g.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		hh, err := h.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		want := hg.Mul(hh)
		got, err := gh.Eval(omega)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equalish(want, 1e-9*(1+want.MaxAbs())) {
			t.Fatalf("series transfer mismatch at ω=%v", omega)
		}
	}
}

func TestSeriesDimensionMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randStableSystem(rng, 2, 2, 2)
	h := randStableSystem(rng, 2, 2, 3) // 3 outputs vs 2 inputs
	if _, err := Series(g, h); err == nil {
		t.Fatalf("expected dimension error")
	}
}

func TestSeriesPreservesQuasiTriangular(t *testing.T) {
	// Block-diagonal A_G and A_H compose into a quasi-triangular A.
	ag := mat.NewMatrixFrom([][]float64{{-1, 3}, {-3, -1}})
	g := MustNew(ag, mat.NewMatrixFrom([][]float64{{2}, {0}}),
		mat.NewMatrixFrom([][]float64{{1, 0}}), mat.NewMatrixFrom([][]float64{{0}}))
	ah := mat.NewMatrixFrom([][]float64{{-5}})
	h := MustNew(ah, mat.NewMatrixFrom([][]float64{{1}}),
		mat.NewMatrixFrom([][]float64{{1}}), mat.NewMatrixFrom([][]float64{{0.3}}))
	gh, err := Series(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.IsQuasiUpperTriangular(gh.A, 1e-14) {
		t.Fatalf("series A should remain quasi-triangular:\n%v", gh.A)
	}
}

func TestGramianResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	sys := randStableSystem(rng, 6, 2, 2)
	p, err := sys.Gramian()
	if err != nil {
		t.Fatal(err)
	}
	r := sys.A.Mul(p).Add(p.Mul(sys.A.T())).Add(sys.B.Mul(sys.B.T()))
	if r.MaxAbs() > 1e-8*(1+p.MaxAbs()*sys.A.MaxAbs()) {
		t.Fatalf("gramian residual %v", r.MaxAbs())
	}
}

func TestGramianL2NormIdentity(t *testing.T) {
	// For H(s)=c(sI−A)⁻¹b: ‖H‖₂² = c·P·cᵀ. For H(s)=1/(s+a):
	// ‖H‖₂² = (1/2π)∫|H|²dω = 1/(2a).
	a := mat.NewMatrixFrom([][]float64{{-2}})
	b := mat.NewMatrixFrom([][]float64{{1}})
	c := mat.NewMatrixFrom([][]float64{{1}})
	d := mat.NewMatrix(1, 1)
	sys := MustNew(a, b, c, d)
	p, err := sys.Gramian()
	if err != nil {
		t.Fatal(err)
	}
	got := p.At(0, 0) // c·P·cᵀ with c=1
	want := 1.0 / 4.0 // 1/(2·2)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("L2 identity: got %v want %v", got, want)
	}
}

func TestIsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	sys := randStableSystem(rng, 5, 1, 1)
	ok, err := sys.IsStable(0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("shifted random system should be stable")
	}
	sys.A.Set(0, 0, 1)
	sys.A.Set(0, 1, 0)
	ok, err = sys.IsStable(0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("unstable system not detected")
	}
}

func TestNewValidation(t *testing.T) {
	a := mat.NewMatrix(2, 3)
	if _, err := New(a, mat.NewMatrix(2, 1), mat.NewMatrix(1, 2), mat.NewMatrix(1, 1)); err == nil {
		t.Fatalf("non-square A accepted")
	}
	a = mat.NewMatrix(2, 2)
	if _, err := New(a, mat.NewMatrix(3, 1), mat.NewMatrix(1, 2), mat.NewMatrix(1, 1)); err == nil {
		t.Fatalf("bad B accepted")
	}
	if _, err := New(a, mat.NewMatrix(2, 1), mat.NewMatrix(1, 3), mat.NewMatrix(1, 1)); err == nil {
		t.Fatalf("bad C accepted")
	}
	if _, err := New(a, mat.NewMatrix(2, 1), mat.NewMatrix(1, 2), mat.NewMatrix(2, 2)); err == nil {
		t.Fatalf("bad D accepted")
	}
}
