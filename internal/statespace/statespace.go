// Package statespace provides real linear time-invariant state-space systems
//
//	x' = A·x + B·u,   y = C·x + D·u
//
// with the operations needed by the macromodeling flow: frequency-response
// evaluation, series (product) composition as used by the sensitivity-
// weighted Gramian of Ubolli et al. (DATE 2014, eq. 18), and controllability
// Gramians.
package statespace

import (
	"fmt"

	"repro/internal/mat"
)

// System is a real state-space system {A, B, C, D}.
type System struct {
	A *mat.Matrix // n×n
	B *mat.Matrix // n×m
	C *mat.Matrix // p×n
	D *mat.Matrix // p×m
}

// New validates dimensions and wraps the four matrices.
func New(a, b, c, d *mat.Matrix) (*System, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("statespace: A must be square, got %d×%d", a.Rows, a.Cols)
	}
	if b.Rows != n {
		return nil, fmt.Errorf("statespace: B has %d rows, want %d", b.Rows, n)
	}
	if c.Cols != n {
		return nil, fmt.Errorf("statespace: C has %d cols, want %d", c.Cols, n)
	}
	if d.Rows != c.Rows || d.Cols != b.Cols {
		return nil, fmt.Errorf("statespace: D is %d×%d, want %d×%d", d.Rows, d.Cols, c.Rows, b.Cols)
	}
	return &System{A: a, B: b, C: c, D: d}, nil
}

// MustNew is New that panics on dimension errors (for internal construction).
func MustNew(a, b, c, d *mat.Matrix) *System {
	s, err := New(a, b, c, d)
	if err != nil {
		panic(err)
	}
	return s
}

// Order returns the state dimension.
func (s *System) Order() int { return s.A.Rows }

// Inputs returns the input count.
func (s *System) Inputs() int { return s.B.Cols }

// Outputs returns the output count.
func (s *System) Outputs() int { return s.C.Rows }

// Clone deep-copies the system.
func (s *System) Clone() *System {
	return &System{A: s.A.Clone(), B: s.B.Clone(), C: s.C.Clone(), D: s.D.Clone()}
}

// Eval returns the transfer matrix H(jω) = C(jωI−A)⁻¹B + D at angular
// frequency ω (rad/s) using a complex LU solve.
func (s *System) Eval(omega float64) (*mat.CMatrix, error) {
	n := s.Order()
	m := mat.NewCMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, complex(-s.A.At(i, j), 0))
		}
		m.Set(i, i, m.At(i, i)+complex(0, omega))
	}
	lu, err := mat.CLUFactor(m)
	if err != nil {
		return nil, fmt.Errorf("statespace: jωI−A singular at ω=%g: %w", omega, err)
	}
	x := lu.Solve(mat.RealToComplex(s.B)) // (jωI−A)⁻¹B
	h := mat.RealToComplex(s.C).Mul(x)
	for i := 0; i < h.Rows; i++ {
		for j := 0; j < h.Cols; j++ {
			h.Set(i, j, h.At(i, j)+complex(s.D.At(i, j), 0))
		}
	}
	return h, nil
}

// Series returns the series composition G·H as a state-space system: the
// input feeds H first, whose output feeds G, so the transfer function is
// G(s)·H(s). The realization is the block form used in eq. (18) of the
// paper:
//
//	A = | A_G  B_G·C_H |   B = | B_G·D_H |   C = [C_G  D_G·C_H],  D = D_G·D_H
//	    |  0     A_H   |       |   B_H   |
//
// Note the A matrix stays quasi-upper-triangular whenever A_G and A_H are,
// which lets Gramian computations skip the Schur step.
func Series(g, h *System) (*System, error) {
	if g.Inputs() != h.Outputs() {
		return nil, fmt.Errorf("statespace: series mismatch, G has %d inputs, H has %d outputs", g.Inputs(), h.Outputs())
	}
	ng, nh := g.Order(), h.Order()
	n := ng + nh
	a := mat.NewMatrix(n, n)
	a.SetSlice(0, 0, g.A)
	a.SetSlice(0, ng, g.B.Mul(h.C))
	a.SetSlice(ng, ng, h.A)
	b := mat.NewMatrix(n, h.Inputs())
	b.SetSlice(0, 0, g.B.Mul(h.D))
	b.SetSlice(ng, 0, h.B)
	c := mat.NewMatrix(g.Outputs(), n)
	c.SetSlice(0, 0, g.C)
	c.SetSlice(0, ng, g.D.Mul(h.C))
	d := g.D.Mul(h.D)
	return New(a, b, c, d)
}

// Gramian returns the controllability Gramian P solving A·P + P·Aᵀ = −B·Bᵀ.
func (s *System) Gramian() (*mat.Matrix, error) {
	return mat.ControllabilityGramian(s.A, s.B)
}

// IsStable reports whether all eigenvalues of A have real part < −tol.
func (s *System) IsStable(tol float64) (bool, error) {
	ev, err := mat.EigenValues(s.A)
	if err != nil {
		return false, err
	}
	for _, z := range ev {
		if real(z) >= -tol {
			return false, nil
		}
	}
	return true, nil
}
