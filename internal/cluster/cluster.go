// Package cluster distributes EnforceBatch-style workloads across a
// fleet of passivityd hosts: a coordinator owning a job ledger in front
// of worker agents that each embed the single-host serve.Server (worker
// pool, supervision, retry, cache persistence — everything PR 6/7 built
// stays in force inside each host).
//
// # Protocol
//
// The coordinator speaks two HTTP/JSON surfaces. The client surface is
// wire-compatible with a single passivityd daemon — POST /v1/check and
// /v1/enforce take the serve.Request schema and block until the job's
// result returns from whichever host ran it — so `passcheck -remote`
// pointed at a coordinator transparently fans a batch out across the
// fleet. The worker surface under /cluster/v1/ is pull-based:
//
//	POST /cluster/v1/join       register, advertise the warm-cache catalog
//	POST /cluster/v1/lease      long-poll for the next work item (204 = none)
//	POST /cluster/v1/complete   deliver a result (+ optional cache upload)
//	POST /cluster/v1/heartbeat  renew liveness and the in-flight leases
//	GET  /cluster/v1/cache      download a content-addressed cache blob
//
// # Ledger
//
// Every admitted job is an item in the coordinator's ledger with three
// states: pending (queued on exactly one member), leased (held by a
// member under a deadline), done (result recorded, waiter released).
// A lease carries an epoch, incremented each time the item is leased;
// completions must present the current epoch, so a duplicate completion
// arriving after a lease expired and the item ran elsewhere is discarded
// — each item's result is delivered exactly once. Heartbeats renew a
// member's leases; a lease that outlives its TTL, or a member silent past
// the worker TTL, requeues the item onto a different host with a fresh
// epoch. Requeued enforce jobs restart from the pristine admitted model
// bytes the ledger kept — the coordinator never ships a half-perturbed
// survivor, mirroring the in-process pristine-restore of the serve layer.
//
// # Placement and stealing
//
// Placement follows pole-fingerprint affinity, extended cluster-wide: the
// coordinator keeps a placement map (fingerprint → member) plus a catalog
// of which members hold which fingerprints warm — seeded by each member's
// advertised catalog at join and updated on every completion and cache
// upload — and falls back to the least-loaded member for unseen
// fingerprints. An idle member's lease request steals from the tail of
// the most-loaded peer's queue (throughput beats affinity when a host
// would otherwise sit idle); the placement map follows the thief so
// queued siblings of the stolen fingerprint migrate together.
//
// # Warm-state transfer
//
// Warm state moves as the v3 checksummed Session cache files. After a
// completion the worker uploads the model's per-fingerprint cache blob;
// the coordinator verifies the CRC-64 footer and stores it
// content-addressed (a corrupt upload is quarantined — counted, never
// stored — and the job's result stands). When a job is placed or stolen
// onto a member whose catalog lacks the fingerprint, the lease carries
// the blob's address; the agent downloads and imports it ahead of the
// model, so a rebalanced or recovered host starts warm. The import path
// re-verifies the checksum end to end — a blob torn in flight costs one
// cold pole set, never a poisoned cache.
package cluster

import (
	"encoding/json"

	"repro/internal/serve"
)

// Wire types of the worker-facing /cluster/v1/ surface. The client-facing
// surface reuses serve.Request/serve.Response unchanged.

// JoinRequest registers a worker host with the coordinator.
type JoinRequest struct {
	// Name identifies the host (stable across reconnects; a re-join with
	// a live name requeues whatever the previous incarnation held).
	Name string `json:"name"`
	// Fingerprints advertises the host's warm evaluation-cache catalog as
	// %016x pole-set fingerprints (serve.Server.CacheFingerprints), so
	// affinity placement survives host restarts warm.
	Fingerprints []string `json:"fingerprints,omitempty"`
}

// JoinResponse returns the coordinator's timing contract.
type JoinResponse struct {
	// LeaseTTLMS is how long a lease lives without a heartbeat.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// PollWaitMS is the longest a lease long-poll is held before 204.
	PollWaitMS int64 `json:"poll_wait_ms"`
	// HeartbeatMS is the interval the worker should heartbeat at.
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest asks for the next work item.
type LeaseRequest struct {
	// Worker names the requesting host (from JoinRequest.Name).
	Worker string `json:"worker"`
	// Fingerprints re-advertises the host's current resident cache
	// catalog (%016x). Sessions evict under their byte budgets, so the
	// catalog the host joined with goes stale; refreshing it on every
	// lease keeps placement and warm-state shipping honest — a
	// fingerprint the host evicted is shipped again, not assumed warm.
	Fingerprints []string `json:"fingerprints,omitempty"`
}

// LeaseResponse hands one ledger item to a worker.
type LeaseResponse struct {
	// Item and Epoch identify the lease; completions must echo both.
	Item  int64 `json:"item"`
	Epoch int   `json:"epoch"`
	// Kind is "check" or "enforce".
	Kind string `json:"kind"`
	// Model is the admitted macromodel JSON, byte-identical on every
	// lease of the item — a retry always restarts pristine.
	Model json.RawMessage `json:"model"`
	// Check and Enforce carry the job's option specs.
	Check   serve.CheckSpec   `json:"check"`
	Enforce serve.EnforceSpec `json:"enforce"`
	// DeadlineMS bounds the job's running wall-clock host-side (0 = the
	// host's default).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Fingerprint is the model's pole-set fingerprint, %016x.
	Fingerprint string `json:"fingerprint"`
	// CacheAddr, when set, is the content address of a warm cache blob
	// for Fingerprint that this host does not hold — download it from
	// GET /cluster/v1/cache?addr= and import it before running the model.
	CacheAddr string `json:"cache_addr,omitempty"`
	// WantCache asks the host to upload the fingerprint's cache blob with
	// its completion: the coordinator had no record of this host holding
	// the fingerprint warm, so the store wants a copy to ship to future
	// placements. Hosts the coordinator already knows warm skip the
	// upload — steady-state sweeps do not re-serialize a cache per job.
	WantCache bool `json:"want_cache,omitempty"`
	// Stolen marks a lease served from another member's queue.
	Stolen bool `json:"stolen,omitempty"`
}

// HeartbeatRequest renews a worker's liveness and its in-flight leases.
type HeartbeatRequest struct {
	// Worker names the host.
	Worker string `json:"worker"`
	// Items lists the ledger items the host is still running.
	Items []int64 `json:"items,omitempty"`
	// Fingerprints re-advertises the host's resident cache catalog, like
	// LeaseRequest.Fingerprints.
	Fingerprints []string `json:"fingerprints,omitempty"`
}

// CompleteRequest delivers one item's result, optionally with the
// model's per-fingerprint cache blob as the warm-state upload.
type CompleteRequest struct {
	// Worker names the host; Item and Epoch echo the lease.
	Worker string `json:"worker"`
	// Item is the ledger item id.
	Item int64 `json:"item"`
	// Epoch is the lease epoch the result belongs to.
	Epoch int `json:"epoch"`
	// Status is the HTTP status the result travels under end to end
	// (serve.ResponseStatus's mapping).
	Status int `json:"status"`
	// Response is the job's wire result.
	Response serve.Response `json:"response"`
	// Cache, when present, is the v3 checksummed cache blob for the
	// model's fingerprint (base64 over JSON), uploaded after completion.
	Cache []byte `json:"cache,omitempty"`
}

// CompleteResponse acknowledges a completion.
type CompleteResponse struct {
	// Accepted is false when the completion was discarded (stale epoch,
	// unknown item) — the authoritative result came or comes from
	// elsewhere; the worker must not retry.
	Accepted bool `json:"accepted"`
	// Reason explains a discard.
	Reason string `json:"reason,omitempty"`
}
