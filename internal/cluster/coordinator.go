package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// Errors of the coordinator's admission and worker surfaces.
var (
	// ErrTooManyPending rejects a Submit because MaxPending items are
	// already admitted and unfinished (HTTP 429 with a Retry-After hint).
	ErrTooManyPending = errors.New("cluster: job ledger full")
	// ErrClosed rejects work on a coordinator that has been closed.
	ErrClosed = errors.New("cluster: coordinator closed")
	// ErrUnknownWorker answers lease/heartbeat calls from a member the
	// coordinator does not consider live (HTTP 410 — the agent re-joins).
	ErrUnknownWorker = errors.New("cluster: unknown or lost worker")
)

// PlacementPolicy selects how the coordinator places admitted items.
type PlacementPolicy int

const (
	// PlaceAffinity (the default) follows the cluster-wide
	// pole-fingerprint placement map and member catalogs, falling back to
	// the least-loaded member.
	PlaceAffinity PlacementPolicy = iota
	// PlaceRandom places every item on a uniformly random live member —
	// the control arm of BenchmarkClusterAffinityPlacement.
	PlaceRandom
)

// Options configures NewCoordinator.
type Options struct {
	// LeaseTTL is how long a lease survives without a heartbeat before
	// the item is requeued onto a different host (default 15s).
	LeaseTTL time.Duration
	// WorkerTTL is how long a member may stay silent — no lease, complete
	// or heartbeat call — before it is declared lost and everything it
	// holds is requeued (default 3×LeaseTTL).
	WorkerTTL time.Duration
	// PollWait bounds how long a lease long-poll is held open when no
	// work is available (default 2s).
	PollWait time.Duration
	// DefaultMaxAttempts is how many times an item may be leased before a
	// lease expiry becomes its terminal failure (default 3). Results
	// reported by a live worker — success or error — are always terminal:
	// the worker already ran the serve layer's own retry ladder.
	DefaultMaxAttempts int
	// MaxPending bounds admitted-but-unfinished items (default 4096).
	MaxPending int
	// CacheBudget bounds the content-addressed warm-state store's bytes
	// (default 256 MiB).
	CacheBudget int64
	// Placement selects the placement policy (default PlaceAffinity).
	Placement PlacementPolicy
	// Seed makes PlaceRandom deterministic for benchmarks (0 = fixed).
	Seed int64
}

// itemState is a ledger item's lifecycle position.
type itemState int

const (
	statePending itemState = iota // queued on exactly one member
	stateLeased                   // held by a member under a deadline
	stateDone                     // result recorded, waiter released
)

// item is one unit of work in the ledger: a single model's check or
// enforce job, its admitted (pristine) model bytes, lease bookkeeping and
// the result slot.
type item struct {
	id         int64
	kind       serve.JobKind
	model      json.RawMessage
	fp         uint64
	check      serve.CheckSpec
	enforce    serve.EnforceSpec
	deadlineMS int64

	state       itemState
	epoch       int // bumped on every lease; completions must match
	attempts    int // leases issued
	maxAttempts int
	holder      string
	leaseExpiry time.Time
	stolen      bool

	resp   serve.Response
	status int
	done   chan struct{} // closed exactly once, when the result lands
}

// member is one worker host the coordinator knows.
type member struct {
	name     string
	catalog  map[uint64]bool // fingerprints the host holds warm
	queue    []*item         // pending items placed here (FIFO; steals pop the tail)
	leased   map[int64]*item
	lastSeen time.Time
	lost     bool
}

// load is the placement pressure signal: queued plus running work.
func (m *member) load() int { return len(m.queue) + len(m.leased) }

// Coordinator owns the cluster job ledger: admission, affinity placement,
// lease lifecycle, work stealing, requeue on worker loss, result
// delivery, and the content-addressed warm-state store. Build with
// NewCoordinator, serve HTTP with Handler, stop with Close.
type Coordinator struct {
	opts  Options
	met   *clusterMetrics
	store *cacheStore

	mu        sync.Mutex
	members   map[string]*member
	items     map[int64]*item
	nextItem  int64
	placement map[uint64]string
	pending   int // admitted, not yet done
	closed    bool
	rng       *rand.Rand

	// notify wakes one blocked lease long-poll when work arrives; a
	// successful lease re-arms it while queued work remains.
	notify chan struct{}

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCoordinator builds the coordinator and starts its lease-expiry
// sweeper.
func NewCoordinator(opts Options) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 15 * time.Second
	}
	if opts.WorkerTTL <= 0 {
		opts.WorkerTTL = 3 * opts.LeaseTTL
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	if opts.DefaultMaxAttempts <= 0 {
		opts.DefaultMaxAttempts = 3
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = 4096
	}
	if opts.CacheBudget <= 0 {
		opts.CacheBudget = 256 << 20
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Coordinator{
		opts:      opts,
		met:       newClusterMetrics(),
		store:     newCacheStore(opts.CacheBudget),
		members:   make(map[string]*member),
		items:     make(map[int64]*item),
		placement: make(map[uint64]string),
		rng:       rand.New(rand.NewSource(seed)),
		notify:    make(chan struct{}, 1),
		stop:      make(chan struct{}),
	}
	c.wg.Add(1)
	go c.sweeper()
	return c
}

// sweeper expires leases and lost workers even when no protocol call
// arrives to trigger the scan — without it, a dead fleet would leave
// submitters waiting forever.
func (c *Coordinator) sweeper() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.mu.Lock()
			c.expireLocked(time.Now())
			c.mu.Unlock()
		}
	}
}

// Close stops the coordinator: the sweeper exits, every unfinished item
// fails with a 503 result, and subsequent submissions are rejected.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, it := range c.items {
		if it.state != stateDone {
			c.failLocked(it, http.StatusServiceUnavailable, "coordinator shutting down")
		}
	}
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
}

// Submit admits one job to the ledger, places it, and returns the item
// whose done channel closes when the result lands. The model bytes are
// validated (and fingerprinted) here, so every later lease ships a model
// the coordinator knows decodes.
func (c *Coordinator) Submit(kind serve.JobKind, model json.RawMessage, check serve.CheckSpec, enforce serve.EnforceSpec, deadlineMS int64, maxAttempts int) (*item, error) {
	var m repro.Macromodel
	if err := json.Unmarshal(model, &m); err != nil {
		return nil, fmt.Errorf("cluster: decoding model: %w", err)
	}
	fp := repro.PoleFingerprint(&m)
	if maxAttempts <= 0 {
		maxAttempts = c.opts.DefaultMaxAttempts
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.pending >= c.opts.MaxPending {
		c.met.rejected()
		return nil, ErrTooManyPending
	}
	c.nextItem++
	it := &item{
		id:          c.nextItem,
		kind:        kind,
		model:       model,
		fp:          fp,
		check:       check,
		enforce:     enforce,
		deadlineMS:  deadlineMS,
		maxAttempts: maxAttempts,
		done:        make(chan struct{}),
	}
	c.items[it.id] = it
	c.pending++
	c.met.submitted()
	c.enqueueLocked(it, "", false)
	return it, nil
}

// enqueueLocked places a pending item on a member queue (never the
// excluded one) and wakes a poller. With no live member the item simply
// stays unplaced in the ledger; the next join re-places it.
func (c *Coordinator) enqueueLocked(it *item, exclude string, front bool) {
	it.state = statePending
	it.holder = ""
	m := c.placeLocked(it.fp, exclude)
	if m == nil {
		// No live member can take it: park it; joinLocked re-places
		// parked items when a host arrives.
		return
	}
	if front {
		m.queue = append([]*item{it}, m.queue...)
	} else {
		m.queue = append(m.queue, it)
	}
	it.holder = m.name
	c.wake()
}

// wake arms the lease long-poll notifier (non-blocking).
func (c *Coordinator) wake() {
	select {
	case c.notify <- struct{}{}:
	default:
	}
}

// placeLocked picks the member for a fingerprint: the recorded placement,
// then any member whose catalog holds the fingerprint warm, then the
// least-loaded live member (uniform random under PlaceRandom). The
// excluded member — the host a requeued item just died on — is never
// chosen. Returns nil when no eligible live member exists.
func (c *Coordinator) placeLocked(fp uint64, exclude string) *member {
	eligible := func(m *member) bool { return m != nil && !m.lost && m.name != exclude }
	if c.opts.Placement == PlaceRandom {
		var live []*member
		for _, m := range c.members {
			if eligible(m) {
				live = append(live, m)
			}
		}
		if len(live) == 0 {
			return nil
		}
		// Map iteration order is random but not seeded; sort by name for
		// a reproducible draw under a fixed Seed.
		sortMembers(live)
		return live[c.rng.Intn(len(live))]
	}
	if name, ok := c.placement[fp]; ok {
		if m := c.members[name]; eligible(m) {
			return m
		}
	}
	var best *member
	for _, m := range c.members {
		if eligible(m) && m.catalog[fp] && (best == nil || m.load() < best.load() || (m.load() == best.load() && m.name < best.name)) {
			best = m
		}
	}
	if best == nil {
		for _, m := range c.members {
			if eligible(m) && (best == nil || m.load() < best.load() || (m.load() == best.load() && m.name < best.name)) {
				best = m
			}
		}
	}
	if best != nil {
		c.placement[fp] = best.name
	}
	return best
}

// sortMembers orders members by name (deterministic random placement).
func sortMembers(ms []*member) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].name < ms[j-1].name; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// Join registers (or re-registers) a worker host. A re-join with a live
// name requeues everything the previous incarnation held — the old agent
// is gone; its leases would only expire later anyway.
func (c *Coordinator) Join(req *JoinRequest) (*JoinResponse, error) {
	if req.Name == "" {
		return nil, errors.New("cluster: join without a name")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if old := c.members[req.Name]; old != nil {
		c.evictMemberLocked(old)
	}
	m := &member{
		name:     req.Name,
		catalog:  parseCatalog(req.Fingerprints),
		leased:   make(map[int64]*item),
		lastSeen: time.Now(),
	}
	c.members[req.Name] = m
	c.met.joined()
	// Re-place items parked while no member was live (or queued on hosts
	// that have since vanished).
	for _, it := range c.items {
		if it.state == statePending && it.holder == "" {
			c.enqueueLocked(it, "", false)
		}
	}
	c.wake()
	return &JoinResponse{
		LeaseTTLMS:  c.opts.LeaseTTL.Milliseconds(),
		PollWaitMS:  c.opts.PollWait.Milliseconds(),
		HeartbeatMS: (c.opts.LeaseTTL / 3).Milliseconds(),
	}, nil
}

// evictMemberLocked removes a member from service: its queue and leases
// requeue elsewhere, its catalog and placements are scrubbed.
func (c *Coordinator) evictMemberLocked(m *member) {
	m.lost = true
	for fp, name := range c.placement {
		if name == m.name {
			delete(c.placement, fp)
		}
	}
	queue := m.queue
	m.queue = nil
	for _, it := range queue {
		c.requeueLocked(it, m.name)
	}
	leased := m.leased
	m.leased = make(map[int64]*item)
	for _, it := range leased {
		c.requeueLocked(it, m.name)
	}
	delete(c.members, m.name)
	c.met.left()
}

// requeueLocked moves an item that died with its host back to pending on
// a different member — or fails it when its lease attempts are spent.
func (c *Coordinator) requeueLocked(it *item, exclude string) {
	if it.state == stateDone {
		return
	}
	if it.state == stateLeased && it.attempts >= it.maxAttempts {
		c.failLocked(it, http.StatusInternalServerError,
			fmt.Sprintf("lease expired on %q after %d attempt(s); worker lost", it.holder, it.attempts))
		return
	}
	if it.state == stateLeased {
		c.met.requeued()
	}
	// Requeued items go to the front: they have been waiting longest and
	// their submitter is closest to a timeout.
	c.enqueueLocked(it, exclude, true)
}

// failLocked records a terminal failure result.
func (c *Coordinator) failLocked(it *item, status int, msg string) {
	it.resp = serve.Response{Error: msg, Attempts: it.attempts, Fingerprint: fmt.Sprintf("%016x", it.fp)}
	c.finishLocked(it, status)
	c.met.failed()
}

// finishLocked transitions an item to done and releases its waiter.
func (c *Coordinator) finishLocked(it *item, status int) {
	if it.state == stateDone {
		return
	}
	if it.state == stateLeased {
		if m := c.members[it.holder]; m != nil {
			delete(m.leased, it.id)
		}
	}
	it.state = stateDone
	it.status = status
	c.pending--
	close(it.done)
	// Done items stay in the ledger map so late duplicate completions
	// are recognized (and discarded) rather than mistaken for unknown
	// items; drop the heavy payload, keep the bookkeeping.
	it.model = nil
}

// expireLocked requeues expired leases and evicts silent members.
func (c *Coordinator) expireLocked(now time.Time) {
	for _, m := range c.members {
		if now.Sub(m.lastSeen) > c.opts.WorkerTTL {
			c.evictMemberLocked(m)
		}
	}
	for _, m := range c.members {
		for _, it := range m.leased {
			if now.After(it.leaseExpiry) {
				delete(m.leased, it.id)
				c.requeueLocked(it, m.name)
			}
		}
	}
}

// parseCatalog decodes a worker-advertised %016x fingerprint list
// (unparseable entries are dropped — an agent bug must not poison the
// whole catalog).
func parseCatalog(ss []string) map[uint64]bool {
	cat := make(map[uint64]bool, len(ss))
	for _, s := range ss {
		if fp, err := strconv.ParseUint(s, 16, 64); err == nil {
			cat[fp] = true
		}
	}
	return cat
}

// Lease hands the next work item to a member, long-polling up to
// PollWait. A nil response with nil error means "no work right now"
// (HTTP 204). An idle member whose own queue is empty steals from the
// tail of the most-loaded peer's queue.
func (c *Coordinator) Lease(ctx context.Context, req *LeaseRequest) (*LeaseResponse, error) {
	deadline := time.NewTimer(c.opts.PollWait)
	defer deadline.Stop()
	for {
		resp, err := c.tryLease(req)
		if resp != nil || err != nil {
			return resp, err
		}
		select {
		case <-c.notify:
		case <-deadline.C:
			return nil, nil
		case <-ctx.Done():
			return nil, nil
		case <-c.stop:
			return nil, ErrClosed
		}
	}
}

// tryLease attempts one lease without blocking.
func (c *Coordinator) tryLease(req *LeaseRequest) (*LeaseResponse, error) {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	m := c.members[req.Worker]
	if m == nil || m.lost {
		return nil, ErrUnknownWorker
	}
	m.lastSeen = now
	if req.Fingerprints != nil {
		m.catalog = parseCatalog(req.Fingerprints)
	}
	c.expireLocked(now)

	var it *item
	stolen := false
	if len(m.queue) > 0 {
		it, m.queue = m.queue[0], m.queue[1:]
	} else {
		// Steal from the tail of the most-loaded peer's queue: the tail
		// is the work the victim will reach last, so moving it disturbs
		// affinity the least while keeping this host busy. Only genuinely
		// backlogged victims qualify — running something with more queued,
		// or a queue of two-plus; snatching the single queued item of an
		// otherwise idle peer is pure placement churn, not throughput.
		var victim *member
		for _, v := range c.members {
			if v == m || v.lost || len(v.queue) == 0 {
				continue
			}
			if len(v.queue) < 2 && len(v.leased) == 0 {
				continue
			}
			if victim == nil || len(v.queue) > len(victim.queue) || (len(v.queue) == len(victim.queue) && v.name < victim.name) {
				victim = v
			}
		}
		if victim != nil {
			it = victim.queue[len(victim.queue)-1]
			victim.queue = victim.queue[:len(victim.queue)-1]
			stolen = true
			c.met.stole()
			if c.opts.Placement == PlaceAffinity {
				// The placement map follows the thief so queued siblings
				// of the fingerprint migrate with the cache.
				c.placement[it.fp] = m.name
			}
		}
	}
	if it == nil {
		return nil, nil
	}
	it.state = stateLeased
	it.epoch++
	it.attempts++
	it.holder = m.name
	it.leaseExpiry = now.Add(c.opts.LeaseTTL)
	it.stolen = stolen
	m.leased[it.id] = it
	c.met.leased(stolen, m.catalog[it.fp])

	resp := &LeaseResponse{
		Item:        it.id,
		Epoch:       it.epoch,
		Kind:        kindName(it.kind),
		Model:       it.model,
		Check:       it.check,
		Enforce:     it.enforce,
		DeadlineMS:  it.deadlineMS,
		Fingerprint: fmt.Sprintf("%016x", it.fp),
		Stolen:      stolen,
		WantCache:   !m.catalog[it.fp],
	}
	if !m.catalog[it.fp] {
		// Ship the warm cache ahead of the model when the store holds one
		// this host lacks.
		if addr := c.store.latestAddr(it.fp); addr != "" {
			resp.CacheAddr = addr
			c.met.shipped()
		}
	}
	// More work may be queued; keep the other pollers moving.
	for _, v := range c.members {
		if len(v.queue) > 0 {
			c.wake()
			break
		}
	}
	return resp, nil
}

// kindName maps a job kind to its wire name.
func kindName(k serve.JobKind) string {
	if k == serve.JobEnforce {
		return "enforce"
	}
	return "check"
}

// Heartbeat renews a member's liveness and the leases of the items it
// reports in flight.
func (c *Coordinator) Heartbeat(req *HeartbeatRequest) error {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.members[req.Worker]
	if m == nil || m.lost {
		return ErrUnknownWorker
	}
	m.lastSeen = now
	if req.Fingerprints != nil {
		m.catalog = parseCatalog(req.Fingerprints)
	}
	for _, id := range req.Items {
		if it := m.leased[id]; it != nil {
			it.leaseExpiry = now.Add(c.opts.LeaseTTL)
		}
	}
	return nil
}

// Complete records one item's result. Only a completion presenting the
// item's current epoch from its current holder is accepted; anything
// else — a duplicate from a host whose lease expired and whose item
// already ran elsewhere, an unknown item id — is discarded, so every
// item's result is delivered exactly once. An accepted completion also
// ingests the optional cache upload: validated, content-addressed,
// catalogued; a corrupt blob is quarantined without touching the result.
func (c *Coordinator) Complete(req *CompleteRequest) *CompleteResponse {
	c.mu.Lock()
	m := c.members[req.Worker]
	if m != nil && !m.lost {
		m.lastSeen = time.Now()
	}
	it := c.items[req.Item]
	switch {
	case it == nil:
		c.mu.Unlock()
		c.met.duplicate()
		return &CompleteResponse{Accepted: false, Reason: "unknown item"}
	case it.state != stateLeased || it.epoch != req.Epoch || it.holder != req.Worker:
		c.mu.Unlock()
		c.met.duplicate()
		return &CompleteResponse{Accepted: false, Reason: "stale epoch"}
	}
	it.resp = req.Response
	it.resp.Attempts = it.attempts // cluster-level attempts supersede host-local counts
	status := req.Status
	if status == 0 {
		status = http.StatusOK
	}
	fp := it.fp
	kind := it.kind
	c.finishLocked(it, status)
	c.met.completed(kindName(kind), status)
	if m != nil {
		// The host just ran the model; its serve layer holds the cache.
		m.catalog[fp] = true
	}
	c.mu.Unlock()

	if len(req.Cache) > 0 {
		if _, upFP, err := c.store.put(req.Cache); err != nil {
			c.met.quarantinedUpload()
		} else {
			c.met.cacheTransferred(len(req.Cache))
			c.mu.Lock()
			if m2 := c.members[req.Worker]; m2 != nil {
				m2.catalog[upFP] = true
			}
			c.mu.Unlock()
		}
	}
	return &CompleteResponse{Accepted: true}
}

// CacheBlob serves a stored warm-state blob by content address (nil when
// evicted), counting the downstream transfer.
func (c *Coordinator) CacheBlob(addr string) []byte {
	blob := c.store.get(addr)
	if blob != nil {
		c.met.cacheTransferred(len(blob))
	}
	return blob
}
