package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// fastCheck keeps test jobs in the millisecond range.
var fastCheck = serve.CheckSpec{Method: "sweep", SweepPoints: 80}

// variant builds a model sharing base's pole set exactly (same pole
// fingerprint) with residues scaled by a real factor — the shape of a
// parameter sweep over a fixed pole library.
func variant(t testing.TB, base *repro.Macromodel, scale float64) *repro.Macromodel {
	t.Helper()
	blob, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	var mj struct {
		R0       float64          `json:"r0"`
		Poles    [][2]float64     `json:"poles"`
		Residues [][][][2]float64 `json:"residues"`
		D        [][]float64      `json:"d"`
	}
	if err := json.Unmarshal(blob, &mj); err != nil {
		t.Fatal(err)
	}
	for _, rm := range mj.Residues {
		for i := range rm {
			for j := range rm[i] {
				rm[i][j][0] *= scale
				rm[i][j][1] *= scale
			}
		}
	}
	out, err := json.Marshal(mj)
	if err != nil {
		t.Fatal(err)
	}
	m := &repro.Macromodel{}
	if err := json.Unmarshal(out, m); err != nil {
		t.Fatal(err)
	}
	return m
}

// library builds nFP×variants violating models: nFP distinct pole sets,
// each with residue-scaled copies (the acceptance criteria's 64-model /
// 8-fingerprint sweep is library(t, 8, 8, …)).
func library(t testing.TB, nFP, variants, poles int) []*repro.Macromodel {
	t.Helper()
	var out []*repro.Macromodel
	for f := 0; f < nFP; f++ {
		base, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 2, Poles: poles, Seed: 7100 + int64(f), PeakGain: 1.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < variants; v++ {
			out = append(out, variant(t, base, 1+0.002*float64(v)))
		}
	}
	return out
}

// modelJSON marshals a model for submission (and byte comparison).
func modelJSON(t testing.TB, m *repro.Macromodel) json.RawMessage {
	t.Helper()
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// newHost builds a serve.Server worker host, drained at cleanup.
func newHost(t testing.TB, workers int) *serve.Server {
	t.Helper()
	srv, err := serve.New(serve.Options{Workers: workers, QueueDepth: 256, DefaultDeadline: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv
}

// startAgent joins srv to the coordinator at base, stopped at cleanup.
func startAgent(t testing.TB, srv *serve.Server, base, name string, concurrency int) *Agent {
	t.Helper()
	a, err := NewAgent(srv, AgentOptions{Coordinator: base, Name: name, Concurrency: concurrency})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Start(context.Background()); err != nil {
		t.Fatalf("agent %s: %v", name, err)
	}
	t.Cleanup(a.Stop)
	return a
}

// postEnforce submits one enforce job to the coordinator's client surface.
func postEnforce(t testing.TB, base string, model json.RawMessage) (*serve.Response, int) {
	t.Helper()
	body, err := json.Marshal(map[string]any{
		"model": model, "check": fastCheck, "enforce": serve.EnforceSpec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.Post(base+"/v1/enforce", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp serve.Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return &resp, hr.StatusCode
}

// waitUntil polls cond at 5ms until it holds or the deadline passes.
func waitUntil(t testing.TB, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cacheBlobFor warms a throwaway Session on a model and exports the
// resulting checksummed cache blob.
func cacheBlobFor(t testing.TB, m *repro.Macromodel) (uint64, []byte) {
	t.Helper()
	sess := repro.NewSession()
	chk, err := fastCheck.CheckOptions()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Check(context.Background(), m, chk); err != nil {
		t.Fatal(err)
	}
	fp := repro.PoleFingerprint(m)
	blob, err := sess.ExportCache(fp)
	if err != nil {
		t.Fatalf("exporting cache: %v", err)
	}
	return fp, blob
}

// TestClusterEnforceBitwise is the acceptance workload: a 64-model
// library over 8 pole fingerprints enforced through a coordinator with
// two in-process worker hosts must produce models byte-identical to a
// single-host Session.EnforceBatch over the same library.
func TestClusterEnforceBitwise(t *testing.T) {
	models := library(t, 8, 8, 12)

	// Single-host reference: EnforceBatch perturbs clones in place.
	ref := make([]*repro.Macromodel, len(models))
	for i, m := range models {
		ref[i] = m.Clone()
	}
	chk, err := fastCheck.CheckOptions()
	if err != nil {
		t.Fatal(err)
	}
	sess := repro.NewSession()
	brep, err := sess.EnforceBatch(context.Background(), ref, repro.BatchEnforceOptions{
		Enforce: repro.EnforceOptions{Check: chk},
	})
	if err != nil {
		t.Fatalf("single-host EnforceBatch: %v", err)
	}
	if brep.Failed != 0 {
		t.Fatalf("single-host batch failed %d models", brep.Failed)
	}

	// Cluster arm: coordinator + two agent hosts.
	c := NewCoordinator(Options{})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)
	startAgent(t, newHost(t, 2), ts.URL, "host-a", 2)
	startAgent(t, newHost(t, 2), ts.URL, "host-b", 2)

	got := make([]*serve.Response, len(models))
	var wg sync.WaitGroup
	for i, m := range models {
		wg.Add(1)
		go func(i int, blob json.RawMessage) {
			defer wg.Done()
			resp, status := postEnforce(t, ts.URL, blob)
			if status != http.StatusOK {
				t.Errorf("model %d: HTTP %d: %s", i, status, resp.Error)
				return
			}
			got[i] = resp
		}(i, modelJSON(t, m))
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := range models {
		if got[i] == nil || got[i].Model == nil {
			t.Fatalf("model %d: no enforced model returned", i)
		}
		want := modelJSON(t, ref[i])
		have := modelJSON(t, got[i].Model)
		if !bytes.Equal(want, have) {
			t.Fatalf("model %d: cluster result differs from single-host EnforceBatch\nwant %s\nhave %s",
				i, want[:min(len(want), 200)], have[:min(len(have), 200)])
		}
		if got[i].Report == nil || !got[i].Report.Passive {
			t.Fatalf("model %d: not passive after enforcement", i)
		}
	}
}

// TestClusterWorkerLossRequeue kills a worker host mid-lease and asserts
// the item requeues onto the surviving host and delivers exactly one
// result.
func TestClusterWorkerLossRequeue(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 250 * time.Millisecond, WorkerTTL: time.Hour, PollWait: 100 * time.Millisecond})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	// Host a stalls its first job attempt long past the lease TTL, then
	// vanishes (context cancelled: no heartbeats, no completion).
	hostA := newHost(t, 1)
	hostA.InjectFaults(new(serve.FaultPlan).DelayOn(1, 5*time.Second))
	agentA, err := NewAgent(hostA, AgentOptions{Coordinator: ts.URL, Name: "host-a", Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	if err := agentA.Start(ctxA); err != nil {
		t.Fatal(err)
	}
	defer cancelA()
	t.Cleanup(func() {
		// Unblock the stalled job before Stop waits on the lease loop.
		dctx, dcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer dcancel()
		hostA.Drain(dctx)
		agentA.Stop()
	})

	model := library(t, 1, 1, 12)[0]
	respc := make(chan *serve.Response, 1)
	statusc := make(chan int, 1)
	go func() {
		resp, status := postEnforce(t, ts.URL, modelJSON(t, model))
		respc <- resp
		statusc <- status
	}()

	// Wait for host a to hold the lease, then kill it.
	waitUntil(t, 5*time.Second, "host-a to lease the item", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		m := c.members["host-a"]
		return m != nil && len(m.leased) == 1
	})
	cancelA()
	startAgent(t, newHost(t, 1), ts.URL, "host-b", 1)

	select {
	case resp := <-respc:
		status := <-statusc
		if status != http.StatusOK {
			t.Fatalf("HTTP %d: %s", status, resp.Error)
		}
		if resp.Model == nil || resp.Report == nil || !resp.Report.Passive {
			t.Fatalf("requeued job returned no passive model: %+v", resp)
		}
		if resp.Attempts != 2 {
			t.Errorf("attempts = %d, want 2 (one lost lease, one successful re-run)", resp.Attempts)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("requeued job never completed")
	}
	c.met.mu.Lock()
	requeues := c.met.requeuesTotal
	c.met.mu.Unlock()
	if requeues < 1 {
		t.Errorf("requeuesTotal = %d, want >= 1", requeues)
	}
}

// fakeJoin registers a synthetic member directly (no agent behind it).
func fakeJoin(t testing.TB, c *Coordinator, name string, fps ...string) {
	t.Helper()
	if _, err := c.Join(&JoinRequest{Name: name, Fingerprints: fps}); err != nil {
		t.Fatal(err)
	}
}

// leaseOrFail pulls one lease for a fake member.
func leaseOrFail(t testing.TB, c *Coordinator, worker string) *LeaseResponse {
	t.Helper()
	lease, err := c.Lease(context.Background(), &LeaseRequest{Worker: worker})
	if err != nil {
		t.Fatalf("lease %s: %v", worker, err)
	}
	if lease == nil {
		t.Fatalf("lease %s: no work", worker)
	}
	return lease
}

// TestClusterDuplicateCompletionDiscarded expires a lease, re-runs the
// item elsewhere, then delivers the original holder's late completion —
// which must be discarded, leaving the second host's result standing.
func TestClusterDuplicateCompletionDiscarded(t *testing.T) {
	c := NewCoordinator(Options{LeaseTTL: 50 * time.Millisecond, WorkerTTL: time.Hour, PollWait: 50 * time.Millisecond})
	t.Cleanup(c.Close)
	fakeJoin(t, c, "w1")
	fakeJoin(t, c, "w2")

	model := library(t, 1, 1, 12)[0]
	it, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	// w1 leases; placement is deterministic (lowest name on a tie) but
	// either fake can pull — whoever holds it goes silent.
	lease1, err := c.Lease(context.Background(), &LeaseRequest{Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	holder, other := "w1", "w2"
	if lease1 == nil {
		lease1 = leaseOrFail(t, c, "w2")
		holder, other = "w2", "w1"
	}

	// The holder goes silent; the lease expires and the item requeues onto
	// the other host (never back onto the holder).
	waitUntil(t, 5*time.Second, "lease expiry requeue", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.items[lease1.Item].state == statePending
	})
	lease2 := leaseOrFail(t, c, other)
	if lease2.Item != lease1.Item {
		t.Fatalf("second lease got item %d, want %d", lease2.Item, lease1.Item)
	}
	if lease2.Epoch == lease1.Epoch {
		t.Fatalf("requeued lease kept epoch %d", lease1.Epoch)
	}
	if !bytes.Equal(lease2.Model, lease1.Model) {
		t.Fatal("requeued lease shipped different model bytes — retries must restart pristine")
	}

	// The second host completes with the current epoch: accepted.
	ack := c.Complete(&CompleteRequest{
		Worker: other, Item: lease2.Item, Epoch: lease2.Epoch,
		Status: http.StatusOK, Response: serve.Response{Worker: 2},
	})
	if !ack.Accepted {
		t.Fatalf("live completion rejected: %s", ack.Reason)
	}

	// The original holder's late completion presents a stale epoch:
	// discarded, result untouched.
	late := c.Complete(&CompleteRequest{
		Worker: holder, Item: lease1.Item, Epoch: lease1.Epoch,
		Status: http.StatusOK, Response: serve.Response{Worker: 1},
	})
	if late.Accepted {
		t.Fatal("stale-epoch completion was accepted")
	}
	unknown := c.Complete(&CompleteRequest{Worker: holder, Item: 9999, Epoch: 1})
	if unknown.Accepted {
		t.Fatal("unknown-item completion was accepted")
	}

	<-it.done
	if it.resp.Worker != 2 {
		t.Fatalf("delivered result came from worker %d, want the second host's", it.resp.Worker)
	}
	c.met.mu.Lock()
	dups := c.met.duplicatesTotal
	c.met.mu.Unlock()
	if dups < 2 {
		t.Errorf("duplicatesTotal = %d, want >= 2", dups)
	}
}

// TestClusterCorruptCacheUploadQuarantined uploads a bit-flipped cache
// blob with a completion: the job must complete normally while the blob
// is quarantined — counted, never stored, never shipped.
func TestClusterCorruptCacheUploadQuarantined(t *testing.T) {
	c := NewCoordinator(Options{PollWait: 50 * time.Millisecond})
	t.Cleanup(c.Close)
	fakeJoin(t, c, "w1")

	model := library(t, 1, 1, 12)[0]
	fp, blob := cacheBlobFor(t, model)
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x40

	it, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseOrFail(t, c, "w1")
	ack := c.Complete(&CompleteRequest{
		Worker: "w1", Item: lease.Item, Epoch: lease.Epoch,
		Status: http.StatusOK, Response: serve.Response{}, Cache: corrupt,
	})
	if !ack.Accepted {
		t.Fatalf("completion with corrupt cache rejected: %s", ack.Reason)
	}
	<-it.done
	if it.status != http.StatusOK {
		t.Fatalf("job status %d, want 200 — a corrupt upload must not fail the job", it.status)
	}
	if addr := c.store.latestAddr(fp); addr != "" {
		t.Fatalf("corrupt blob was stored at %s", addr)
	}
	c.met.mu.Lock()
	quarantined := c.met.quarantinedUploads
	c.met.mu.Unlock()
	if quarantined != 1 {
		t.Errorf("quarantinedUploads = %d, want 1", quarantined)
	}

	// The intact blob uploads fine on the next completion.
	it2, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lease2 := leaseOrFail(t, c, "w1")
	if c.Complete(&CompleteRequest{
		Worker: "w1", Item: lease2.Item, Epoch: lease2.Epoch,
		Status: http.StatusOK, Response: serve.Response{}, Cache: blob,
	}); c.store.latestAddr(fp) == "" {
		t.Fatal("intact blob was not stored")
	}
	<-it2.done
}

// TestClusterStealing queues a same-fingerprint pile on one member and
// asserts an idle peer's lease steals from it, moving the placement.
func TestClusterStealing(t *testing.T) {
	c := NewCoordinator(Options{PollWait: 50 * time.Millisecond})
	t.Cleanup(c.Close)
	fakeJoin(t, c, "w1")
	fakeJoin(t, c, "w2")

	models := library(t, 1, 4, 12)
	fp := repro.PoleFingerprint(models[0])
	items := make([]*item, len(models))
	for i, m := range models {
		it, err := c.Submit(serve.JobCheck, modelJSON(t, m), fastCheck, serve.EnforceSpec{}, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		items[i] = it
	}
	c.mu.Lock()
	placed := c.placement[fp]
	queueLen := len(c.members[placed].queue)
	c.mu.Unlock()
	if queueLen != len(models) {
		t.Fatalf("%d of %d same-fingerprint items queued on %s", queueLen, len(models), placed)
	}

	thief := "w1"
	if placed == "w1" {
		thief = "w2"
	}
	lease := leaseOrFail(t, c, thief)
	if !lease.Stolen {
		t.Fatal("idle peer's lease was not marked stolen")
	}
	c.mu.Lock()
	newPlace := c.placement[fp]
	c.mu.Unlock()
	if newPlace != thief {
		t.Fatalf("placement stayed on %s after the steal, want %s", newPlace, thief)
	}
	if c.StealsTotal() != 1 {
		t.Errorf("StealsTotal = %d, want 1", c.StealsTotal())
	}
	for _, it := range items {
		c.mu.Lock()
		st, holder, id, epoch := it.state, it.holder, it.id, it.epoch
		c.mu.Unlock()
		if st == stateLeased {
			c.Complete(&CompleteRequest{Worker: holder, Item: id, Epoch: epoch, Status: http.StatusOK})
		}
	}
}

// TestClusterWarmTransfer pushes a cache blob through a completion and
// asserts the next lease of that fingerprint on a cold member carries the
// blob's address, and the blob downloads intact.
func TestClusterWarmTransfer(t *testing.T) {
	c := NewCoordinator(Options{PollWait: 50 * time.Millisecond})
	t.Cleanup(c.Close)
	fakeJoin(t, c, "w1")

	model := library(t, 1, 1, 12)[0]
	_, blob := cacheBlobFor(t, model)

	it, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseOrFail(t, c, "w1")
	c.Complete(&CompleteRequest{
		Worker: "w1", Item: lease.Item, Epoch: lease.Epoch,
		Status: http.StatusOK, Response: serve.Response{}, Cache: blob,
	})
	<-it.done

	// A cold member joins; the same fingerprint's next items pile onto w1
	// (it holds the placement) and the idle peer steals from the backlog's
	// tail — that stolen lease must ship the blob address.
	fakeJoin(t, c, "w2")
	var sibs [2]*item
	for i := range sibs {
		it2, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		sibs[i] = it2
	}
	lease2 := leaseOrFail(t, c, "w2")
	if !lease2.Stolen {
		t.Fatal("w2's lease did not steal from the backlog")
	}
	if lease2.CacheAddr == "" {
		t.Fatal("lease onto a cold member carried no cache address")
	}
	got := c.CacheBlob(lease2.CacheAddr)
	if !bytes.Equal(got, blob) {
		t.Fatal("downloaded blob differs from the uploaded one")
	}
	if _, err := repro.CacheBlobFingerprint(got); err != nil {
		t.Fatalf("shipped blob fails validation: %v", err)
	}
	c.Complete(&CompleteRequest{Worker: "w2", Item: lease2.Item, Epoch: lease2.Epoch, Status: http.StatusOK})
	leaseSib := leaseOrFail(t, c, "w1") // w1 drains its remaining sibling
	c.Complete(&CompleteRequest{Worker: "w1", Item: leaseSib.Item, Epoch: leaseSib.Epoch, Status: http.StatusOK})
	for _, s := range sibs {
		<-s.done
	}

	// w1 already holds the fingerprint warm: a lease back onto it must NOT
	// re-ship the blob.
	it3, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var lease3 *LeaseResponse
	holder3 := ""
	for _, w := range []string{"w1", "w2"} {
		if l, _ := c.Lease(context.Background(), &LeaseRequest{Worker: w}); l != nil {
			lease3, holder3 = l, w
			break
		}
	}
	if lease3 == nil {
		t.Fatal("third item never leased")
	}
	if lease3.CacheAddr != "" {
		t.Error("lease onto a warm member re-shipped the cache")
	}
	c.Complete(&CompleteRequest{Worker: holder3, Item: lease3.Item, Epoch: lease3.Epoch, Status: http.StatusOK})
	<-it3.done
}

// TestClusterAgentWarmImport drives the full warm-transfer path through
// real agents: host a warms a fingerprint and uploads its cache; after a
// vanishes, a cold host b gets the next same-fingerprint job with the
// blob shipped ahead — observable as an affinity hit on b's first contact
// with the fingerprint.
func TestClusterAgentWarmImport(t *testing.T) {
	c := NewCoordinator(Options{
		LeaseTTL: 200 * time.Millisecond, WorkerTTL: 600 * time.Millisecond,
		PollWait: 50 * time.Millisecond,
	})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	model := library(t, 1, 1, 12)[0]

	hostA := newHost(t, 1)
	agentA, err := NewAgent(hostA, AgentOptions{Coordinator: ts.URL, Name: "host-a", Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctxA, cancelA := context.WithCancel(context.Background())
	if err := agentA.Start(ctxA); err != nil {
		t.Fatal(err)
	}
	defer cancelA()
	t.Cleanup(agentA.Stop)

	resp, status := postEnforce(t, ts.URL, modelJSON(t, model))
	if status != http.StatusOK {
		t.Fatalf("warmup job: HTTP %d: %s", status, resp.Error)
	}
	fp := repro.PoleFingerprint(model)
	if c.store.latestAddr(fp) == "" {
		t.Fatal("completion did not upload the cache blob")
	}

	// Host a vanishes; the coordinator evicts it at the worker TTL.
	cancelA()
	agentA.Stop()
	waitUntil(t, 5*time.Second, "host-a eviction", func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.members["host-a"] == nil
	})

	startAgent(t, newHost(t, 1), ts.URL, "host-b", 1)
	resp2, status := postEnforce(t, ts.URL, modelJSON(t, model))
	if status != http.StatusOK {
		t.Fatalf("warm-import job: HTTP %d: %s", status, resp2.Error)
	}
	if !resp2.AffinityHit {
		t.Error("first contact on host-b was not an affinity hit — the shipped cache was not imported")
	}
	c.met.mu.Lock()
	ships := c.met.cacheShipsTotal
	bytesMoved := c.met.cacheBytesTotal
	c.met.mu.Unlock()
	if ships < 1 {
		t.Errorf("cacheShipsTotal = %d, want >= 1", ships)
	}
	if bytesMoved <= 0 {
		t.Errorf("cacheBytesTotal = %d, want > 0", bytesMoved)
	}
}

// TestClusterAdmissionRetryAfterDate fills the ledger and asserts the 429
// carries an HTTP-date Retry-After that the shared parser honors.
func TestClusterAdmissionRetryAfterDate(t *testing.T) {
	c := NewCoordinator(Options{MaxPending: 1})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	model := library(t, 1, 1, 12)[0]
	if _, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 1); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"model": modelJSON(t, model), "check": fastCheck})
	hr, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	io.Copy(io.Discard, hr.Body)
	if hr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", hr.StatusCode)
	}
	ra := hr.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 carried no Retry-After")
	}
	if !strings.Contains(ra, "GMT") {
		t.Fatalf("Retry-After %q is not an HTTP-date", ra)
	}
	if d := serve.ParseRetryAfter(ra); d <= 0 || d > 10*time.Second {
		t.Fatalf("ParseRetryAfter(%q) = %v, want a short positive wait", ra, d)
	}
}

// TestClusterMetricsEndpoint scrapes the coordinator's /metrics and
// checks the cluster series are exported.
func TestClusterMetricsEndpoint(t *testing.T) {
	c := NewCoordinator(Options{PollWait: 50 * time.Millisecond})
	t.Cleanup(c.Close)
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(ts.Close)

	// /healthz is 503 until a worker joins.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-join /healthz = %d, want 503", hr.StatusCode)
	}
	fakeJoin(t, c, "w1")
	hr, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hr.Body)
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("post-join /healthz = %d, want 200", hr.StatusCode)
	}

	model := library(t, 1, 1, 12)[0]
	it, err := c.Submit(serve.JobCheck, modelJSON(t, model), fastCheck, serve.EnforceSpec{}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	lease := leaseOrFail(t, c, "w1")
	c.Complete(&CompleteRequest{Worker: "w1", Item: lease.Item, Epoch: lease.Epoch, Status: http.StatusOK})
	<-it.done

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	blob, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(blob)
	for _, series := range []string{
		"passivityd_cluster_leases_active",
		"passivityd_cluster_steals_total",
		"passivityd_cluster_requeues_total",
		"passivityd_cluster_cache_transfers_bytes_total",
		"passivityd_cluster_duplicates_dropped_total",
		"passivityd_cluster_quarantined_uploads_total",
		`passivityd_cluster_jobs_completed_total{kind="check",status="200"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
}
