package cluster

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// clusterMetrics aggregates the coordinator's operational counters,
// exported in Prometheus text format on the coordinator's /metrics.
// Gauges (members, active leases, ledger depth) are computed from the
// live ledger at scrape time; only the counters live here.
type clusterMetrics struct {
	mu sync.Mutex

	submittedTotal int64
	rejectedTotal  int64
	joinsTotal     int64
	leavesTotal    int64

	leasesTotal     int64
	warmLeasesTotal int64 // leases whose member already held the fingerprint
	stealsTotal     int64
	requeuesTotal   int64
	duplicatesTotal int64

	completedTotal map[string]int64 // by "kind/status code"
	failedTotal    int64

	quarantinedUploads int64
	cacheShipsTotal    int64 // leases that carried a CacheAddr
	cacheBytesTotal    int64 // bytes moved through the store, both directions
}

func newClusterMetrics() *clusterMetrics {
	return &clusterMetrics{completedTotal: make(map[string]int64)}
}

func (m *clusterMetrics) submitted() { m.bump(&m.submittedTotal) }
func (m *clusterMetrics) rejected()  { m.bump(&m.rejectedTotal) }
func (m *clusterMetrics) joined()    { m.bump(&m.joinsTotal) }
func (m *clusterMetrics) left()      { m.bump(&m.leavesTotal) }
func (m *clusterMetrics) stole()     { m.bump(&m.stealsTotal) }
func (m *clusterMetrics) requeued()  { m.bump(&m.requeuesTotal) }
func (m *clusterMetrics) duplicate() { m.bump(&m.duplicatesTotal) }
func (m *clusterMetrics) failed()    { m.bump(&m.failedTotal) }
func (m *clusterMetrics) shipped()   { m.bump(&m.cacheShipsTotal) }

func (m *clusterMetrics) quarantinedUpload() { m.bump(&m.quarantinedUploads) }

func (m *clusterMetrics) bump(c *int64) {
	m.mu.Lock()
	*c++
	m.mu.Unlock()
}

func (m *clusterMetrics) leased(stolen, warm bool) {
	m.mu.Lock()
	m.leasesTotal++
	if warm {
		m.warmLeasesTotal++
	}
	m.mu.Unlock()
}

func (m *clusterMetrics) completed(kind string, status int) {
	m.mu.Lock()
	m.completedTotal[fmt.Sprintf("%s/%d", kind, status)]++
	m.mu.Unlock()
}

func (m *clusterMetrics) cacheTransferred(n int) {
	m.mu.Lock()
	m.cacheBytesTotal += int64(n)
	m.mu.Unlock()
}

// WarmLeaseRatio reports the fraction of leases that landed on a member
// already holding the item's fingerprint warm — the cluster-level
// analogue of the single-host affinity hit ratio, and the warm-transfer
// hit rate BENCH_10.json records.
func (c *Coordinator) WarmLeaseRatio() float64 {
	c.met.mu.Lock()
	defer c.met.mu.Unlock()
	if c.met.leasesTotal == 0 {
		return 0
	}
	return float64(c.met.warmLeasesTotal) / float64(c.met.leasesTotal)
}

// StealsTotal reports how many leases were served by stealing from a
// peer's queue.
func (c *Coordinator) StealsTotal() int64 {
	c.met.mu.Lock()
	defer c.met.mu.Unlock()
	return c.met.stealsTotal
}

// writePrometheus renders the coordinator state in Prometheus text
// format (hand-rolled — the module takes no dependencies).
func (c *Coordinator) writePrometheus(w io.Writer) {
	c.mu.Lock()
	membersLive := len(c.members)
	leasesActive := 0
	queueDepth := 0
	for _, m := range c.members {
		leasesActive += len(m.leased)
		queueDepth += len(m.queue)
	}
	pending := c.pending
	c.mu.Unlock()
	storeBytes, storeBlobs := c.store.stats()

	m := c.met
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP passivityd_cluster_members Live worker hosts.\n# TYPE passivityd_cluster_members gauge\npassivityd_cluster_members %d\n", membersLive)
	fmt.Fprintf(w, "# HELP passivityd_cluster_leases_active Items currently leased to a host.\n# TYPE passivityd_cluster_leases_active gauge\npassivityd_cluster_leases_active %d\n", leasesActive)
	fmt.Fprintf(w, "# HELP passivityd_cluster_queue_depth Items queued on member queues.\n# TYPE passivityd_cluster_queue_depth gauge\npassivityd_cluster_queue_depth %d\n", queueDepth)
	fmt.Fprintf(w, "# HELP passivityd_cluster_pending Admitted-but-unfinished ledger items.\n# TYPE passivityd_cluster_pending gauge\npassivityd_cluster_pending %d\n", pending)

	fmt.Fprintf(w, "# HELP passivityd_cluster_jobs_submitted_total Jobs admitted to the ledger.\n# TYPE passivityd_cluster_jobs_submitted_total counter\npassivityd_cluster_jobs_submitted_total %d\n", m.submittedTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_jobs_rejected_total Jobs rejected at admission (ledger full).\n# TYPE passivityd_cluster_jobs_rejected_total counter\npassivityd_cluster_jobs_rejected_total %d\n", m.rejectedTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_joins_total Worker host registrations.\n# TYPE passivityd_cluster_joins_total counter\npassivityd_cluster_joins_total %d\n", m.joinsTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_leaves_total Worker hosts evicted (lost or re-joined).\n# TYPE passivityd_cluster_leaves_total counter\npassivityd_cluster_leaves_total %d\n", m.leavesTotal)

	fmt.Fprintf(w, "# HELP passivityd_cluster_leases_total Leases issued.\n# TYPE passivityd_cluster_leases_total counter\npassivityd_cluster_leases_total %d\n", m.leasesTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_warm_leases_total Leases placed on a host already holding the fingerprint warm.\n# TYPE passivityd_cluster_warm_leases_total counter\npassivityd_cluster_warm_leases_total %d\n", m.warmLeasesTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_steals_total Leases served by stealing from a peer's queue.\n# TYPE passivityd_cluster_steals_total counter\npassivityd_cluster_steals_total %d\n", m.stealsTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_requeues_total Leased items requeued after lease expiry or host loss.\n# TYPE passivityd_cluster_requeues_total counter\npassivityd_cluster_requeues_total %d\n", m.requeuesTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_duplicates_dropped_total Completions discarded for a stale epoch or unknown item.\n# TYPE passivityd_cluster_duplicates_dropped_total counter\npassivityd_cluster_duplicates_dropped_total %d\n", m.duplicatesTotal)

	fmt.Fprintf(w, "# HELP passivityd_cluster_jobs_completed_total Results recorded, by kind and HTTP status.\n# TYPE passivityd_cluster_jobs_completed_total counter\n")
	keys := make([]string, 0, len(m.completedTotal))
	for k := range m.completedTotal {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kind, status := k, ""
		for i := range k {
			if k[i] == '/' {
				kind, status = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "passivityd_cluster_jobs_completed_total{kind=%q,status=%q} %d\n", kind, status, m.completedTotal[k])
	}
	fmt.Fprintf(w, "# HELP passivityd_cluster_jobs_failed_total Items failed by the coordinator itself (attempts spent, shutdown).\n# TYPE passivityd_cluster_jobs_failed_total counter\npassivityd_cluster_jobs_failed_total %d\n", m.failedTotal)

	fmt.Fprintf(w, "# HELP passivityd_cluster_quarantined_uploads_total Corrupt cache uploads quarantined at ingest.\n# TYPE passivityd_cluster_quarantined_uploads_total counter\npassivityd_cluster_quarantined_uploads_total %d\n", m.quarantinedUploads)
	fmt.Fprintf(w, "# HELP passivityd_cluster_cache_ships_total Leases that carried a warm-cache address for the host to fetch.\n# TYPE passivityd_cluster_cache_ships_total counter\npassivityd_cluster_cache_ships_total %d\n", m.cacheShipsTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_cache_transfers_bytes_total Cache bytes moved through the store, uploads plus downloads.\n# TYPE passivityd_cluster_cache_transfers_bytes_total counter\npassivityd_cluster_cache_transfers_bytes_total %d\n", m.cacheBytesTotal)
	fmt.Fprintf(w, "# HELP passivityd_cluster_cache_store_bytes Resident bytes in the content-addressed store.\n# TYPE passivityd_cluster_cache_store_bytes gauge\npassivityd_cluster_cache_store_bytes %d\n", storeBytes)
	fmt.Fprintf(w, "# HELP passivityd_cluster_cache_store_blobs Resident blobs in the content-addressed store.\n# TYPE passivityd_cluster_cache_store_blobs gauge\npassivityd_cluster_cache_store_blobs %d\n", storeBlobs)
}
