package cluster

import (
	"container/list"
	"fmt"
	"hash/crc64"
	"sync"

	repro "repro"
)

// cacheStore is the coordinator's content-addressed warm-state store:
// validated Session cache blobs keyed by their own content (fingerprint +
// CRC-64 + length), with a per-fingerprint "latest" pointer and an LRU
// byte budget. Content addressing makes re-uploads of an unchanged cache
// free to store and lets a blob be shipped to any number of members
// without coordination.
type cacheStore struct {
	mu     sync.Mutex
	blobs  map[string]*storeEntry
	latest map[uint64]string // fingerprint → newest blob address
	lru    *list.List        // of *storeEntry; front = most recent
	bytes  int64
	budget int64
}

type storeEntry struct {
	addr string
	fp   uint64
	blob []byte
	elem *list.Element
}

var storeCRC = crc64.MakeTable(crc64.ECMA)

func newCacheStore(budget int64) *cacheStore {
	return &cacheStore{
		blobs:  make(map[string]*storeEntry),
		latest: make(map[uint64]string),
		lru:    list.New(),
		budget: budget,
	}
}

// put validates blob as a well-formed checksummed cache file and stores
// it, returning its content address. A corrupt blob is rejected without
// storing anything — the caller quarantines (counts) it.
func (st *cacheStore) put(blob []byte) (addr string, fp uint64, err error) {
	fp, err = repro.CacheBlobFingerprint(blob)
	if err != nil {
		return "", 0, fmt.Errorf("cluster: corrupt cache upload: %w", err)
	}
	addr = fmt.Sprintf("%016x-%016x-%d", fp, crc64.Checksum(blob, storeCRC), len(blob))
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, ok := st.blobs[addr]; ok {
		st.lru.MoveToFront(e.elem)
		st.latest[fp] = addr
		return addr, fp, nil
	}
	e := &storeEntry{addr: addr, fp: fp, blob: blob}
	e.elem = st.lru.PushFront(e)
	st.blobs[addr] = e
	st.bytes += int64(len(blob))
	st.latest[fp] = addr
	for st.budget > 0 && st.bytes > st.budget && st.lru.Len() > 1 {
		old := st.lru.Back().Value.(*storeEntry)
		st.lru.Remove(old.elem)
		delete(st.blobs, old.addr)
		st.bytes -= int64(len(old.blob))
		if st.latest[old.fp] == old.addr {
			delete(st.latest, old.fp)
		}
	}
	return addr, fp, nil
}

// get returns the blob at addr (nil when evicted or never stored).
func (st *cacheStore) get(addr string) []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.blobs[addr]
	if !ok {
		return nil
	}
	st.lru.MoveToFront(e.elem)
	return e.blob
}

// latestAddr returns the newest stored blob address for a fingerprint
// ("" when none survives the budget).
func (st *cacheStore) latestAddr(fp uint64) string {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.latest[fp]
}

// stats reports the store's resident bytes and blob count (gauges).
func (st *cacheStore) stats() (bytes int64, blobs int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.bytes, st.lru.Len()
}
