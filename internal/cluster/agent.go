package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// AgentOptions configures NewAgent.
type AgentOptions struct {
	// Coordinator is the coordinator's base URL (e.g. http://host:9100).
	Coordinator string
	// Name identifies this host to the coordinator (stable across agent
	// restarts, so a recovered host re-claims its catalog by re-joining).
	Name string
	// Concurrency is how many lease loops pull work in parallel (default:
	// the embedded server's worker count — one in-flight item per worker
	// keeps the pool busy without hoarding leases a peer could serve).
	Concurrency int
	// Client overrides the HTTP client (default: no-timeout client; the
	// coordinator bounds the lease long-poll itself).
	Client *http.Client
	// RetryBase and RetryMax bound the backoff after coordinator errors
	// (defaults 100ms and 2s; a Retry-After hint overrides the schedule).
	RetryBase time.Duration
	// RetryMax caps the doubled backoff steps.
	RetryMax time.Duration
}

// Agent is one cluster worker host: an embedded serve.Server — worker
// pool, supervision, retry, cache persistence, everything the single-host
// daemon has — driven by lease loops pulling work from a coordinator.
// Build with NewAgent, start with Start, stop with Stop (the embedded
// server's Drain is the caller's job; the agent does not own it).
type Agent struct {
	opts AgentOptions
	srv  *serve.Server
	cli  *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	gen      int          // join generation; a re-join bumps it
	timing   JoinResponse // coordinator's timing contract
	inflight map[int64]bool
}

// NewAgent wraps an existing server as a cluster worker host.
func NewAgent(srv *serve.Server, opts AgentOptions) (*Agent, error) {
	if opts.Coordinator == "" {
		return nil, errors.New("cluster: agent without a coordinator URL")
	}
	if opts.Name == "" {
		return nil, errors.New("cluster: agent without a name")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = srv.Workers()
	}
	if opts.RetryBase <= 0 {
		opts.RetryBase = 100 * time.Millisecond
	}
	if opts.RetryMax <= 0 {
		opts.RetryMax = 2 * time.Second
	}
	cli := opts.Client
	if cli == nil {
		cli = &http.Client{}
	}
	return &Agent{opts: opts, srv: srv, cli: cli, inflight: make(map[int64]bool)}, nil
}

// Start joins the coordinator (retrying until ctx expires) and launches
// the heartbeat and lease loops. The agent runs until Stop or ctx
// cancellation.
func (a *Agent) Start(ctx context.Context) error {
	a.ctx, a.cancel = context.WithCancel(ctx)
	if err := a.join(0); err != nil {
		a.cancel()
		return err
	}
	a.wg.Add(1)
	go a.heartbeatLoop()
	for i := 0; i < a.opts.Concurrency; i++ {
		a.wg.Add(1)
		go a.leaseLoop()
	}
	return nil
}

// Stop halts the loops. In-flight jobs keep running on the embedded
// server but their completions no longer reach the coordinator — it will
// requeue them at lease expiry, exactly as if the host died.
func (a *Agent) Stop() {
	if a.cancel != nil {
		a.cancel()
	}
	a.wg.Wait()
}

// join registers with the coordinator, advertising the server's warm
// cache catalog; it retries with backoff until it succeeds or the agent
// stops. gen guards re-joins: only the first loop to see a 410 re-joins;
// latecomers find the generation already advanced and return.
func (a *Agent) join(seenGen int) error {
	a.mu.Lock()
	if a.gen != seenGen {
		a.mu.Unlock()
		return nil
	}
	a.mu.Unlock()

	req := JoinRequest{Name: a.opts.Name, Fingerprints: a.catalog()}
	for attempt := 1; ; attempt++ {
		var resp JoinResponse
		status, err := a.post("/cluster/v1/join", &req, &resp)
		if err == nil && status == http.StatusOK {
			a.mu.Lock()
			if a.gen == seenGen { // lost a race with another re-joiner: theirs stands
				a.gen++
				a.timing = resp
			}
			a.mu.Unlock()
			return nil
		}
		if err == nil {
			err = fmt.Errorf("cluster: join: HTTP %d", status)
		}
		select {
		case <-time.After(a.backoff(attempt, 0)):
		case <-a.ctx.Done():
			return fmt.Errorf("cluster: joining %s: %w (last: %v)", a.opts.Coordinator, a.ctx.Err(), err)
		}
	}
}

// catalog formats the embedded server's resident cache fingerprints for
// the wire. Sent on join, every lease and every heartbeat: Sessions
// evict under their byte budgets, so only a freshly advertised catalog
// keeps the coordinator's placement and warm-shipping decisions honest.
func (a *Agent) catalog() []string {
	fps := a.srv.CacheFingerprints()
	out := make([]string, len(fps))
	for i, fp := range fps {
		out[i] = fmt.Sprintf("%016x", fp)
	}
	return out
}

// backoff doubles RetryBase per attempt, capped at RetryMax; a positive
// hint (a parsed Retry-After) overrides the schedule.
func (a *Agent) backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	d := a.opts.RetryBase << (attempt - 1)
	if d > a.opts.RetryMax || d <= 0 {
		d = a.opts.RetryMax
	}
	return d
}

// post sends one JSON request, decoding the body into out when non-nil
// and the status is 2xx.
func (a *Agent) post(path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	hreq, err := http.NewRequestWithContext(a.ctx, http.MethodPost, a.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := a.cli.Do(hreq)
	if err != nil {
		return 0, err
	}
	defer hresp.Body.Close()
	if out != nil && hresp.StatusCode >= 200 && hresp.StatusCode <= 299 && hresp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(io.LimitReader(hresp.Body, maxBodyBytes)).Decode(out); err != nil {
			return hresp.StatusCode, fmt.Errorf("cluster: decoding %s response: %w", path, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 8<<10))
	}
	return hresp.StatusCode, nil
}

// heartbeatLoop renews the agent's liveness and in-flight leases at the
// coordinator's requested interval.
func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	for {
		a.mu.Lock()
		interval := time.Duration(a.timing.HeartbeatMS) * time.Millisecond
		gen := a.gen
		items := make([]int64, 0, len(a.inflight))
		for id := range a.inflight {
			items = append(items, id)
		}
		a.mu.Unlock()
		if interval <= 0 {
			interval = 5 * time.Second
		}
		select {
		case <-a.ctx.Done():
			return
		case <-time.After(interval):
		}
		status, err := a.post("/cluster/v1/heartbeat", &HeartbeatRequest{Worker: a.opts.Name, Items: items, Fingerprints: a.catalog()}, nil)
		if err == nil && status == http.StatusGone {
			// The coordinator forgot us (restart, worker-TTL eviction):
			// re-register so the lease loops keep pulling.
			a.join(gen)
		}
	}
}

// leaseLoop pulls one item at a time: lease, execute on the embedded
// server, complete — forever, until the agent stops.
func (a *Agent) leaseLoop() {
	defer a.wg.Done()
	errs := 0
	for a.ctx.Err() == nil {
		a.mu.Lock()
		gen := a.gen
		a.mu.Unlock()
		var lease LeaseResponse
		status, err := a.post("/cluster/v1/lease", &LeaseRequest{Worker: a.opts.Name, Fingerprints: a.catalog()}, &lease)
		switch {
		case a.ctx.Err() != nil:
			return
		case err == nil && status == http.StatusOK:
			errs = 0
			a.execute(&lease)
			continue
		case err == nil && status == http.StatusNoContent:
			errs = 0 // the long-poll already waited server-side
			continue
		case err == nil && status == http.StatusGone:
			if a.join(gen) != nil {
				return
			}
			continue
		}
		// Connection trouble or an unexpected status: back off and retry.
		errs++
		select {
		case <-time.After(a.backoff(errs, 0)):
		case <-a.ctx.Done():
			return
		}
	}
}

// execute runs one leased item on the embedded server and reports the
// result. The shipped warm cache (if any) is imported first; a fetch or
// import failure only costs a cold start, never the job.
func (a *Agent) execute(lease *LeaseResponse) {
	a.mu.Lock()
	a.inflight[lease.Item] = true
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.inflight, lease.Item)
		a.mu.Unlock()
	}()

	if lease.CacheAddr != "" {
		if blob := a.fetchCache(lease.CacheAddr); blob != nil {
			a.srv.ImportCache(blob) // corrupt-in-flight = cold start; import validated it away
		}
	}

	comp := CompleteRequest{Worker: a.opts.Name, Item: lease.Item, Epoch: lease.Epoch}
	resp, status := a.runLeased(lease)
	comp.Response, comp.Status = resp, status

	if lease.WantCache {
		// The coordinator had no warm copy of this fingerprint from us:
		// upload the (now warm) cache so it can ship it to whichever host
		// the fingerprint lands on next. ErrNoCache and busy holders just
		// mean no upload this round.
		if fp, err := strconv.ParseUint(lease.Fingerprint, 16, 64); err == nil {
			if blob, err := a.srv.ExportCache(fp); err == nil {
				comp.Cache = blob
			}
		}
	}

	// The completion must land: the result exists only here, and losing it
	// costs the cluster a redundant re-run at lease expiry. Retry past
	// transient coordinator trouble; stop only when rejected (the lease
	// moved on — the authoritative result comes from elsewhere) or the
	// agent itself stops.
	for attempt := 1; a.ctx.Err() == nil; attempt++ {
		var ack CompleteResponse
		st, err := a.post("/cluster/v1/complete", &comp, &ack)
		if err == nil && st == http.StatusOK {
			return
		}
		select {
		case <-time.After(a.backoff(attempt, 0)):
		case <-a.ctx.Done():
			return
		}
	}
}

// runLeased executes the leased job on the embedded server, reusing the
// single-host wire mapping end to end.
func (a *Agent) runLeased(lease *LeaseResponse) (serve.Response, int) {
	var model repro.Macromodel
	if err := json.Unmarshal(lease.Model, &model); err != nil {
		return serve.Response{Error: "decoding leased model: " + err.Error()}, http.StatusBadRequest
	}
	chk, err := lease.Check.CheckOptions()
	if err != nil {
		return serve.Response{Error: err.Error()}, http.StatusBadRequest
	}
	kind := serve.JobCheck
	if lease.Kind == "enforce" {
		kind = serve.JobEnforce
	}
	job := &serve.Job{
		Kind:     kind,
		Model:    &model,
		Check:    chk,
		Enforce:  lease.Enforce.EnforceOptions(),
		Deadline: time.Duration(lease.DeadlineMS) * time.Millisecond,
	}
	ch, err := a.srv.Submit(job)
	if err != nil {
		// Admission failure on a host that just leased the item — the
		// queue is briefly full or the host is draining. 503 marks it
		// worth another host's attempt.
		return serve.Response{Error: err.Error()}, http.StatusServiceUnavailable
	}
	return serve.ResponseStatus(<-ch)
}

// fetchCache downloads a content-addressed blob (nil on any failure —
// warm state is an optimization, never a dependency).
func (a *Agent) fetchCache(addr string) []byte {
	hreq, err := http.NewRequestWithContext(a.ctx, http.MethodGet,
		a.opts.Coordinator+"/cluster/v1/cache?addr="+addr, nil)
	if err != nil {
		return nil
	}
	hresp, err := a.cli.Do(hreq)
	if err != nil {
		return nil
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(hresp.Body, 8<<10))
		return nil
	}
	blob, err := io.ReadAll(io.LimitReader(hresp.Body, maxBodyBytes))
	if err != nil {
		return nil
	}
	return blob
}
