package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
)

// maxBodyBytes bounds any request body the coordinator reads (models and
// cache uploads both grow with poles × ports²).
const maxBodyBytes = 256 << 20

// clientRequest mirrors serve.Request with the model kept as raw bytes:
// the ledger stores the admitted JSON verbatim, so every lease of the
// item ships byte-identical model input and a retry restarts pristine.
type clientRequest struct {
	Model       json.RawMessage   `json:"model"`
	Check       serve.CheckSpec   `json:"check"`
	Enforce     serve.EnforceSpec `json:"enforce"`
	DeadlineMS  int64             `json:"deadline_ms,omitempty"`
	MaxAttempts int               `json:"max_attempts,omitempty"`
}

// writeJSON emits one JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		body, _ = json.Marshal(serve.Response{Error: "encoding response: " + err.Error()})
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// Handler returns the coordinator's HTTP interface. The client surface is
// wire-compatible with a single passivityd daemon; the worker surface
// carries the /cluster/v1/ pull protocol:
//
//	POST /v1/check            submit a check job, wait, return its Response
//	POST /v1/enforce          submit an enforce job
//	POST /cluster/v1/join     register a worker host
//	POST /cluster/v1/lease    long-poll for work (204 = none, 410 = re-join)
//	POST /cluster/v1/complete deliver a result (+ optional cache upload)
//	POST /cluster/v1/heartbeat renew liveness and leases
//	GET  /cluster/v1/cache    download a content-addressed cache blob
//	GET  /metrics             Prometheus text-format metrics
//	GET  /healthz             readiness (503 until a worker host has joined)
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", func(w http.ResponseWriter, r *http.Request) {
		c.handleJob(w, r, serve.JobCheck)
	})
	mux.HandleFunc("/v1/enforce", func(w http.ResponseWriter, r *http.Request) {
		c.handleJob(w, r, serve.JobEnforce)
	})
	mux.HandleFunc("/cluster/v1/join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if !decodePost(w, r, &req) {
			return
		}
		resp, err := c.Join(&req)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, serve.Response{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("/cluster/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decodePost(w, r, &req) {
			return
		}
		resp, err := c.Lease(r.Context(), &req)
		switch {
		case err == ErrUnknownWorker:
			// 410 tells the agent its registration is gone — re-join.
			writeJSON(w, http.StatusGone, serve.Response{Error: err.Error()})
		case err != nil:
			writeJSON(w, http.StatusServiceUnavailable, serve.Response{Error: err.Error()})
		case resp == nil:
			w.WriteHeader(http.StatusNoContent)
		default:
			writeJSON(w, http.StatusOK, resp)
		}
	})
	mux.HandleFunc("/cluster/v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodePost(w, r, &req) {
			return
		}
		writeJSON(w, http.StatusOK, c.Complete(&req))
	})
	mux.HandleFunc("/cluster/v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodePost(w, r, &req) {
			return
		}
		if err := c.Heartbeat(&req); err != nil {
			writeJSON(w, http.StatusGone, serve.Response{Error: err.Error()})
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/cluster/v1/cache", func(w http.ResponseWriter, r *http.Request) {
		blob := c.CacheBlob(r.URL.Query().Get("addr"))
		if blob == nil {
			// Evicted or never stored: the agent runs the job cold.
			http.Error(w, "no such blob", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		closed, members := c.closed, len(c.members)
		c.mu.Unlock()
		switch {
		case closed:
			http.Error(w, "closed", http.StatusServiceUnavailable)
		case members == 0:
			// A coordinator with no worker hosts parks every job; an LB
			// should hold traffic until the first join.
			http.Error(w, "no workers joined", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	return mux
}

// decodePost enforces POST + JSON body, answering the error itself.
func decodePost(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.Response{Error: "decoding request: " + err.Error()})
		return false
	}
	return true
}

// handleJob admits one client job to the ledger and waits for its result.
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request, kind serve.JobKind) {
	var req clientRequest
	if !decodePost(w, r, &req) {
		return
	}
	if len(req.Model) == 0 {
		writeJSON(w, http.StatusBadRequest, serve.Response{Error: "request carries no model"})
		return
	}
	// Fail malformed check specs here, before a worker burns a lease on
	// them (the same validation the single-host handler does).
	if _, err := req.Check.CheckOptions(); err != nil {
		writeJSON(w, http.StatusBadRequest, serve.Response{Error: err.Error()})
		return
	}
	it, err := c.Submit(kind, req.Model, req.Check, req.Enforce, req.DeadlineMS, req.MaxAttempts)
	switch {
	case err == ErrTooManyPending:
		// RFC 9110 allows either form of Retry-After; the coordinator
		// hints with an HTTP-date (the daemon hints with delta-seconds),
		// so clients must parse both — serve.ParseRetryAfter does.
		w.Header().Set("Retry-After", time.Now().Add(2*time.Second).UTC().Format(http.TimeFormat))
		writeJSON(w, http.StatusTooManyRequests, serve.Response{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, serve.Response{Error: err.Error()})
		return
	}
	// The coordinator always finishes an admitted item (lease expiry and
	// Close both fail it), so this wait cannot leak; a departed client
	// just never reads the buffered result.
	<-it.done
	writeJSON(w, it.status, it.resp)
}
