package cluster

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	repro "repro"
	"repro/internal/serve"
)

// BenchmarkClusterAffinityPlacement measures what fingerprint-affinity
// placement plus cache-file warm-state transfer buy a 2-host cluster over
// random placement — and what the cluster buys over one identically-sized
// host — on the acceptance workload: a 64-model library sharing 8 pole
// fingerprints, re-swept every round (the monitoring pattern the service
// exists for).
//
// Budgets are sized so the library outgrows one host: each host's two
// worker Sessions get 30% of the full steady-state cache footprint, so a
// host can keep ~4–5 of the 8 fingerprints warm but never all 8. Affinity
// placement splits the fingerprints across the two hosts and ships caches
// with stolen work, so after the warm-up sweep nearly every lease lands
// warm; random placement makes each host cycle through all 8
// fingerprints and thrash its LRUs; the single host has nowhere to put
// half the
// library no matter how it routes. One op = one full 64-model sweep after
// a shared warm-up sweep; warm-lease-ratio is the coordinator's
// warm-placement rate (the warm-transfer hit rate BENCH_10.json records).
// Acceptance: affinity beats random by ≥ 1.5× on the warm re-sweep.
func BenchmarkClusterAffinityPlacement(b *testing.B) {
	const (
		nFP            = 8
		variants       = 8
		workersPerHost = 2
	)
	var models []*repro.Macromodel
	for f := 0; f < nFP; f++ {
		base, err := repro.SyntheticMacromodel(repro.SyntheticModelOptions{
			Ports: 4, Poles: 60, Seed: 4200 + int64(f), PeakGain: 0.9,
		})
		if err != nil {
			b.Fatal(err)
		}
		for v := 0; v < variants; v++ {
			models = append(models, variant(b, base, 1+0.002*float64(v)))
		}
	}
	blobs := make([]json.RawMessage, len(models))
	for i, m := range models {
		blobs[i] = modelJSON(b, m)
	}
	chk := repro.CheckOptions{Method: repro.CheckAdaptive}
	chkSpec := serve.CheckSpec{Method: "adaptive"}

	// Probe the full steady-state footprint once; 30% of it per worker
	// Session gives each 2-worker host ~60% of the library's caches —
	// enough for an affinity-placed half, binding for anything more.
	probe := repro.NewSession()
	for _, m := range models {
		if _, err := probe.Check(context.Background(), m, chk); err != nil {
			b.Fatal(err)
		}
	}
	budget := probe.CacheStats().Bytes * 3 / 10

	newBenchHost := func(b *testing.B) *serve.Server {
		s, err := serve.New(serve.Options{
			Workers:         workersPerHost,
			QueueDepth:      len(models) * 2,
			DefaultDeadline: time.Minute,
			CacheBudget:     budget,
		})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	drainHost := func(b *testing.B, s *serve.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			b.Fatal(err)
		}
	}

	// Single-host baseline: the same hardware as one cluster member,
	// carrying the whole library alone.
	b.Run("single-host", func(b *testing.B) {
		s := newBenchHost(b)
		sweep := func() {
			chans := make([]<-chan *serve.Result, len(models))
			for i, m := range models {
				ch, err := s.Submit(&serve.Job{Kind: serve.JobCheck, Model: m, Check: chk})
				if err != nil {
					b.Fatal(err)
				}
				chans[i] = ch
			}
			for i, ch := range chans {
				if res := <-ch; res.Err != nil {
					b.Fatalf("job %d: %v", i, res.Err)
				}
			}
		}
		sweep()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep()
		}
		b.StopTimer()
		b.ReportMetric(s.AffinityHitRatio(), "hit-ratio")
		drainHost(b, s)
	})

	for _, arm := range []struct {
		name      string
		placement PlacementPolicy
	}{
		{"cluster-2/affinity", PlaceAffinity},
		{"cluster-2/random", PlaceRandom},
	} {
		b.Run(arm.name, func(b *testing.B) {
			c := NewCoordinator(Options{Placement: arm.placement, Seed: 7, MaxPending: len(models) * 2})
			defer c.Close()
			ts := httptest.NewServer(c.Handler())
			defer ts.Close()
			hosts := []*serve.Server{newBenchHost(b), newBenchHost(b)}
			agents := make([]*Agent, len(hosts))
			for i, h := range hosts {
				a, err := NewAgent(h, AgentOptions{
					Coordinator: ts.URL,
					Name:        []string{"host-a", "host-b"}[i],
					Concurrency: workersPerHost,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := a.Start(context.Background()); err != nil {
					b.Fatal(err)
				}
				agents[i] = a
			}

			sweep := func() {
				items := make([]*item, len(models))
				for i := range models {
					it, err := c.Submit(serve.JobCheck, blobs[i], chkSpec, serve.EnforceSpec{}, 0, 3)
					if err != nil {
						b.Fatal(err)
					}
					items[i] = it
				}
				for i, it := range items {
					<-it.done
					if it.status != 200 {
						b.Fatalf("job %d: HTTP %d: %s", i, it.status, it.resp.Error)
					}
				}
			}
			sweep() // warm-up: placement, caches and the blob store populate
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sweep()
			}
			b.StopTimer()
			b.ReportMetric(c.WarmLeaseRatio(), "warm-lease-ratio")
			b.ReportMetric(float64(c.StealsTotal()), "steals")
			for _, a := range agents {
				a.Stop()
			}
			for _, h := range hosts {
				drainHost(b, h)
			}
		})
	}
}
