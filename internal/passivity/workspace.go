package passivity

import (
	"repro/internal/mat"
	"repro/internal/rational"
)

// checkWorkspace bundles the reusable buffers one worker needs to evaluate
// σ_max(S(jω)): the P×P transfer buffer, the Jacobi SVD workspace, the
// singular-value slice and a basis scratch. After the first evaluation at a
// given model size every σ evaluation through the workspace is
// allocation-free. A workspace is not safe for concurrent use — the
// workspacePool hands a private one to each parallel.ForWorker goroutine.
type checkWorkspace struct {
	svd   mat.CSVDWorkspace
	h     *mat.CMatrix
	sv    []float64
	basis []complex128
}

// sigma evaluates σ_max of S(jω) from a precomputed basis vector, exactly
// (one-sided Jacobi; see the caveat on sigmaMax), reusing the workspace
// buffers.
func (ws *checkWorkspace) sigma(model *rational.Model, k []complex128) float64 {
	ws.h = model.EvalWithBasisInto(ws.h, k)
	ws.sv = mat.SingularValuesInto(&ws.svd, ws.h, ws.sv)
	if len(ws.sv) == 0 {
		return 0
	}
	return ws.sv[0]
}

// sigmaAt evaluates σ_max of S(jω), building the basis vector into the
// workspace scratch.
func (ws *checkWorkspace) sigmaAt(model *rational.Model, omega float64) float64 {
	ws.basis = model.EvalBasisInto(ws.basis, omega)
	return ws.sigma(model, ws.basis)
}

// workspacePool is a grow-only set of per-worker workspaces. ensure must be
// called before a parallel fan-out so that the workers index a fixed slice;
// growth never happens concurrently.
type workspacePool struct {
	ws []*checkWorkspace
}

func newWorkspacePool() *workspacePool { return &workspacePool{} }

// ensure grows the pool to at least k workspaces (serial phase only).
func (p *workspacePool) ensure(k int) {
	for len(p.ws) < k {
		p.ws = append(p.ws, &checkWorkspace{})
	}
}

// get returns workspace i, growing the pool as needed (serial phase only).
func (p *workspacePool) get(i int) *checkWorkspace {
	p.ensure(i + 1)
	return p.ws[i]
}
