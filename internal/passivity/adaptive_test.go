package passivity

import (
	"math"
	"testing"
)

// bandsOverlap reports whether two violation bands intersect, with a small
// relative slack on the edges (band edges come from linear interpolation on
// different grids).
func bandsOverlap(a, b Violation, slack float64) bool {
	aLo, aHi := a.OmegaLo*(1-slack), a.OmegaHi*(1+slack)
	bLo, bHi := b.OmegaLo*(1-slack), b.OmegaHi*(1+slack)
	if math.IsInf(a.OmegaHi, 1) {
		aHi = math.Inf(1)
	}
	if math.IsInf(b.OmegaHi, 1) {
		bHi = math.Inf(1)
	}
	return aLo <= bHi && bLo <= aHi
}

// TestAdaptiveMatchesHamiltonianOracle cross-validates the adaptive
// characterizer against the exact Hamiltonian test on a population of
// random passive, near-passive and violating models: the verdict must
// agree, the worst singular value must match, and every violation band
// found by one method must overlap a band found by the other.
func TestAdaptiveMatchesHamiltonianOracle(t *testing.T) {
	cases := 0
	boundary := 0
	for seed := int64(0); seed < 25; seed++ {
		for _, cfg := range []SyntheticOptions{
			{Ports: 1, Poles: 6, PeakGain: 0.15, DSigma: 0.85}, // passive
			{Ports: 2, Poles: 10, PeakGain: 0.6, DSigma: 0.9},  // near-passive
			{Ports: 3, Poles: 12, PeakGain: 1.2, DSigma: 0.75}, // violating
			{Ports: 2, Poles: 8, PeakGain: 0.35, DSigma: 0.97}, // tight headroom
		} {
			cfg.Seed = seed
			m, err := SyntheticModel(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ham, err := Check(m, CheckOptions{Method: MethodHamiltonian})
			if err != nil {
				t.Fatal(err)
			}
			ad, err := Check(m, CheckOptions{Method: MethodAdaptive})
			if err != nil {
				t.Fatal(err)
			}
			cases++
			if math.Abs(ham.MaxSigma-1) < 1e-4 {
				// Razor-thin boundary case: the verdict is numerically
				// ill-posed; only demand agreement on the magnitude.
				boundary++
				if math.Abs(ad.MaxSigma-ham.MaxSigma) > 1e-3 {
					t.Fatalf("seed=%d %+v: boundary model σ %v vs oracle %v",
						seed, cfg, ad.MaxSigma, ham.MaxSigma)
				}
				continue
			}
			if ad.Passive != ham.Passive {
				t.Fatalf("seed=%d %+v: adaptive passive=%v, oracle passive=%v (σ %v vs %v)",
					seed, cfg, ad.Passive, ham.Passive, ad.MaxSigma, ham.MaxSigma)
			}
			if !ham.Passive {
				// The oracle's crossings are exact but its in-band maximum
				// comes from a unimodal golden-section refinement, which
				// can undershoot on multi-peaked bands. Adaptive must not
				// report LESS than the oracle; reporting more is fine as
				// long as the value is a genuine sample.
				if ad.MaxSigma < ham.MaxSigma-1e-3*(1+ham.MaxSigma) {
					t.Fatalf("seed=%d %+v: adaptive max σ %v undershoots oracle %v",
						seed, cfg, ad.MaxSigma, ham.MaxSigma)
				}
				if sv := sigmaMax(m, ad.MaxOmega, nil); math.Abs(sv-ad.MaxSigma) > 1e-9*(1+sv) {
					t.Fatalf("seed=%d %+v: reported max σ %v is not a real sample (σ(jω)=%v)",
						seed, cfg, ad.MaxSigma, sv)
				}
				for _, hv := range ham.Violations {
					found := false
					for _, av := range ad.Violations {
						if bandsOverlap(hv, av, 1e-2) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed=%d %+v: oracle band [%v,%v] not found by adaptive (bands: %+v)",
							seed, cfg, hv.OmegaLo, hv.OmegaHi, ad.Violations)
					}
				}
				for _, av := range ad.Violations {
					found := false
					for _, hv := range ham.Violations {
						if bandsOverlap(av, hv, 1e-2) {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("seed=%d %+v: adaptive band [%v,%v] is a false positive",
							seed, cfg, av.OmegaLo, av.OmegaHi)
					}
				}
			}
		}
	}
	if cases-boundary < 50 {
		t.Fatalf("oracle population too small: %d usable of %d", cases-boundary, cases)
	}
}

// TestAdaptiveFindsNarrowBandMissedBySweep is the headline scenario: a
// large model (n·P = 1000, beyond any practical Hamiltonian eigensolve)
// with a deliberately narrow off-resonance violation band. The fixed
// 1000-point sweep steps over the band and wrongly certifies passivity;
// the adaptive characterizer localizes it. The same gadget embedded in a
// reduced-size model is verified against the exact Hamiltonian oracle.
func TestAdaptiveFindsNarrowBandMissedBySweep(t *testing.T) {
	big, err := SyntheticModel(SyntheticOptions{
		Ports: 4, Poles: 250, Seed: 3, NarrowBand: true, PeakGain: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := big.NumPoles() * big.Ports(); n < 1000 {
		t.Fatalf("model too small for the scenario: nP=%d", n)
	}

	sweep, err := Check(big, CheckOptions{Method: MethodSweep, SweepPoints: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.Passive {
		t.Fatalf("scenario broken: the fixed sweep found the band (σ=%v)", sweep.MaxSigma)
	}

	ad, err := Check(big, CheckOptions{Method: MethodAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Passive || len(ad.Violations) == 0 {
		t.Fatalf("adaptive missed the narrow band: %+v", ad)
	}
	wc := 1.37 * math.Sqrt(1*1e4) // default gadget placement
	v := ad.Violations[0]
	if v.OmegaLo < wc*(1-1e-3) || v.OmegaHi > wc*(1+1e-3) {
		t.Fatalf("band mislocated: [%v, %v], expected near %v", v.OmegaLo, v.OmegaHi, wc)
	}

	// Oracle cross-validation at reduced size: the identical gadget with a
	// small background, where the Hamiltonian test is tractable.
	small, err := SyntheticModel(SyntheticOptions{
		Ports: 2, Poles: 30, Seed: 3, NarrowBand: true, PeakGain: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ham, err := Check(small, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	adSmall, err := Check(small, CheckOptions{Method: MethodAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if ham.Passive || adSmall.Passive {
		t.Fatalf("reduced model should violate: oracle passive=%v adaptive passive=%v", ham.Passive, adSmall.Passive)
	}
	if math.Abs(adSmall.MaxSigma-ham.MaxSigma) > 1e-4*(1+ham.MaxSigma) {
		t.Fatalf("reduced model peak σ %v vs oracle %v", adSmall.MaxSigma, ham.MaxSigma)
	}
	if !bandsOverlap(adSmall.Violations[0], ham.Violations[0], 1e-3) {
		t.Fatalf("reduced bands disagree: adaptive %+v oracle %+v", adSmall.Violations[0], ham.Violations[0])
	}
	// The big model hosts the same gadget: its peak must match the
	// oracle-verified value.
	if math.Abs(ad.MaxSigma-ham.MaxSigma) > 1e-4*(1+ham.MaxSigma) {
		t.Fatalf("big-model peak σ %v vs oracle-verified %v", ad.MaxSigma, ham.MaxSigma)
	}
}

// TestAdaptiveSampleBudget: the adaptive characterizer must stay within
// its sample cap and well under the fixed sweep on the large narrow-band
// model (the whole point of hierarchical refinement).
func TestAdaptiveSampleBudget(t *testing.T) {
	m, err := SyntheticModel(SyntheticOptions{
		Ports: 4, Poles: 250, Seed: 7, NarrowBand: true, PeakGain: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ad, err := Check(m, CheckOptions{Method: MethodAdaptive})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Samples >= 1000 {
		t.Fatalf("adaptive spent %d samples; should undercut the 1000-point sweep", ad.Samples)
	}
	// The refinement budget is enforced beyond the mandatory seed grid:
	// measure the seed size with a budget of one, then cap tightly.
	one, err := Check(m, CheckOptions{Method: MethodAdaptive, AdaptiveMaxSamples: 1})
	if err != nil {
		t.Fatal(err)
	}
	seeds := one.Samples - 1
	capped, err := Check(m, CheckOptions{Method: MethodAdaptive, AdaptiveMaxSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Samples > seeds+100 {
		t.Fatalf("refinement budget ignored: %d samples on %d seeds", capped.Samples, seeds)
	}
}

// TestEnforceWithAdaptiveMethod runs the whole enforcement loop on the
// adaptive characterizer (exercising the shared EvalCache and its
// warm-start path) and verifies the result with the exact oracle.
func TestEnforceWithAdaptiveMethod(t *testing.T) {
	m := nonPassiveMIMO(t)
	rep, err := Enforce(m, EnforceOptions{
		Check: CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("adaptive-based enforcement failed: %+v", rep)
	}
	chk, err := Check(m, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Passive {
		t.Fatalf("hamiltonian still sees violations: σmax=%v at ω=%v", chk.MaxSigma, chk.MaxOmega)
	}
}

// TestEvalCacheReuse: a second identical check through the same cache must
// be served from memory and return a bitwise-identical report;
// invalidation must force re-evaluation without changing the result. A
// passive model keeps the warm-start seed list empty, so the grids of the
// runs coincide exactly.
func TestEvalCacheReuse(t *testing.T) {
	m := nonPassiveSISO(t, 0.01) // small residue: passive
	cache := NewEvalCache()
	opts := CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: cache}
	first, err := Check(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Passive != true {
		t.Fatalf("test model should be passive: %+v", first)
	}
	missesAfterFirst := cache.SigmaMisses
	if missesAfterFirst == 0 {
		t.Fatal("first check should populate the cache")
	}
	second, err := Check(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.SigmaMisses != missesAfterFirst {
		t.Fatalf("second check re-evaluated %d frequencies", cache.SigmaMisses-missesAfterFirst)
	}
	if !reportsEqual(first, second) {
		t.Fatalf("cached report differs:\n%+v\nvs\n%+v", first, second)
	}
	cache.InvalidateSigma()
	third, err := Check(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cache.SigmaMisses == missesAfterFirst {
		t.Fatal("invalidation did not force re-evaluation")
	}
	if !reportsEqual(first, third) {
		t.Fatalf("post-invalidation report differs:\n%+v\nvs\n%+v", first, third)
	}
	// A non-passive model records warm-start seeds for the next check.
	bad := nonPassiveSISO(t, 0.12)
	badCache := NewEvalCache()
	if _, err := Check(bad, CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: badCache}); err != nil {
		t.Fatal(err)
	}
	if len(badCache.Hot()) == 0 {
		t.Fatal("violating check should record hot frequencies for warm start")
	}
}

func reportsEqual(a, b *Report) bool {
	if a.Passive != b.Passive || a.MaxSigma != b.MaxSigma || a.MaxOmega != b.MaxOmega ||
		len(a.Violations) != len(b.Violations) {
		return false
	}
	for i := range a.Violations {
		if a.Violations[i] != b.Violations[i] {
			return false
		}
	}
	return true
}
