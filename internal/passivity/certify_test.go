package passivity

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/mat"
)

// plainTailBound is the pre-refactor per-term bound kept as the test
// reference: every pole contributes its interval supremum independently.
func plainTailBound(feats []poleFeature, dSigma, w0, w1 float64) float64 {
	sum := dSigma
	for i := range feats {
		f := &feats[i]
		d := 0.0
		if f.wr < w0 {
			d = w0 - f.wr
		} else if f.wr > w1 {
			d = f.wr - w1
		}
		sum += f.rnorm / math.Sqrt(f.gamma*f.gamma+d*d)
	}
	return sum
}

// TestTailBoundTightRigorous checks the two defining properties of the
// tightened bound on random models and random intervals: it never falls
// below the true σ(ω) anywhere in the interval, and it never exceeds the
// plain per-term bound it replaces.
func TestTailBoundTightRigorous(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		model, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 16, Seed: int64(300 + trial), PeakGain: 0.4,
		})
		if err != nil {
			t.Fatal(err)
		}
		ws := &checkWorkspace{}
		feats := make([]poleFeature, 0, len(model.Poles))
		for k := range model.Poles {
			feats = append(feats, poleFeatureOf(model, k, ws))
		}
		sorted := append([]poleFeature(nil), feats...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a].wr < sorted[b].wr })
		scan := newBoundScanner(sorted)
		dS := mat.MaxSingularValue(mat.RealToComplex(model.D))
		for iv := 0; iv < 20; iv++ {
			w0 := math.Pow(10, 4*rng.Float64())
			w1 := w0 * math.Pow(10, rng.Float64())
			// An infinite limit disables both early exits: the full scan
			// yields the exact tightened value, comparable to the plain sum.
			tight := scan.tailBound(dS, math.Inf(1), w0, w1)
			plain := plainTailBound(feats, dS, w0, w1)
			if tight > plain*(1+1e-12) {
				t.Fatalf("trial %d: tightened bound %g exceeds plain bound %g on [%g, %g]", trial, tight, plain, w0, w1)
			}
			for s := 0; s <= 8; s++ {
				w := w0 * math.Pow(w1/w0, float64(s)/8)
				if sv := ws.sigmaAt(model, w); sv > tight*(1+1e-12) {
					t.Fatalf("trial %d: σ(%g) = %g exceeds tightened bound %g on [%g, %g]", trial, w, sv, tight, w0, w1)
				}
			}
		}
	}
}

func TestHamiltonianCrossingsLevel(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 10, Seed: 5, PeakGain: 0.6, DSigma: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ws := &checkWorkspace{}
	for _, gamma := range []float64{0.8, 0.95, 1.0} {
		crossings, err := HamiltonianCrossingsLevel(model, gamma)
		if err != nil {
			t.Fatalf("level %g: %v", gamma, err)
		}
		for _, w := range crossings {
			if sv := ws.sigmaAt(model, w); math.Abs(sv-gamma) > 1e-6*gamma {
				t.Fatalf("level %g: reported crossing at ω=%g has σ=%g", gamma, w, sv)
			}
		}
	}
}

func TestCertifyPassiveModelSmall(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 12, Seed: 7, PeakGain: 0.03, DSigma: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified || len(cert.Violations) != 0 {
		t.Fatalf("passive model not certified: %+v", cert)
	}
	if cert.Stage == "" || len(cert.Stages) == 0 {
		t.Fatalf("certificate missing stage accounting: %+v", cert)
	}
}

func TestCertifyFindsNarrowViolation(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 12, Seed: 3, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the model really is non-passive (oracle).
	crossings, err := HamiltonianCrossings(model)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) == 0 {
		t.Skip("gadget did not produce a violation at this seed")
	}
	cert, err := Certify(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cert.Certified || len(cert.Violations) == 0 {
		t.Fatalf("violating model certified passive: %+v", cert)
	}
	if cert.Stage != StageHamiltonian {
		t.Fatalf("small model should be settled by the full eigentest, got %q", cert.Stage)
	}
	ws := &checkWorkspace{}
	for _, v := range cert.Violations {
		if sv := ws.sigmaAt(model, v.OmegaPeak); sv <= 1 {
			t.Fatalf("certified violation at ω=%g has σ=%g ≤ 1", v.OmegaPeak, sv)
		}
	}
}

func TestCertifyLargeModelPipeline(t *testing.T) {
	// Force the large-model path by lowering the full-eigentest cap below
	// N = 2·n·P: the default pipeline becomes tail-bound → lipschitz →
	// restricted → probe, and the cheap σ-anchored sweep catches the
	// gadget violation before any eigensolve.
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 40, Seed: 9, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	copts := CertifyOptions{MaxDim: 16}
	cert, err := Certify(model, CheckOptions{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Violations) == 0 {
		t.Fatalf("large-model pipeline missed the gadget violation: %+v", cert)
	}
	// The σ-anchored sweep either samples inside the narrow band itself or
	// leaves a width-floor sliver that the restricted eigentest proves;
	// both are escalation working as designed.
	if cert.Stage != StageLipschitz && cert.Stage != StageRestricted {
		t.Fatalf("expected %q or %q stage verdict, got %q", StageLipschitz, StageRestricted, cert.Stage)
	}
	ws := &checkWorkspace{}
	for _, v := range cert.Violations {
		if sv := ws.sigmaAt(model, v.OmegaPeak); sv <= 1 {
			t.Fatalf("certified violation at ω=%g has σ=%g ≤ 1", v.OmegaPeak, sv)
		}
	}

	// A passive model through the same pipeline must certify without ever
	// solving a full-size eigenproblem.
	passive, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 40, Seed: 10, PeakGain: 0.03, DSigma: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	cert, err = Certify(passive, CheckOptions{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified || len(cert.Violations) != 0 {
		t.Fatalf("large-model pipeline failed to certify a passive model: %+v", cert)
	}
	if cert.EigenDim >= 2*passive.NumPoles()*passive.Ports() {
		t.Fatalf("certification solved a full-size eigenproblem (dim %d)", cert.EigenDim)
	}
}

// TestCertifyBoundedCacheEviction pins the LRU-eviction soundness fix:
// with a cache far smaller than the sweep's working set, snapshotted
// anchors are evicted mid-stage and must be re-evaluated — an evicted
// anchor silently read as σ=0 would certify violating intervals.
func TestCertifyBoundedCacheEviction(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 40, Seed: 9, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := CheckOptions{Method: MethodAdaptive, Cache: NewEvalCache()}
	opts.Cache.MaxEntries = 48
	opts.defaults(model)
	if _, err := Check(model, opts); err != nil {
		t.Fatal(err)
	}
	cert, err := Certify(model, opts, CertifyOptions{MaxDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Violations) == 0 {
		t.Fatalf("bounded-cache certification missed the gadget violation: %+v", cert)
	}
	ws := &checkWorkspace{}
	for _, v := range cert.Violations {
		if sv := ws.sigmaAt(model, v.OmegaPeak); sv <= 1 {
			t.Fatalf("violation at ω=%g has σ=%g ≤ 1", v.OmegaPeak, sv)
		}
	}
}

func TestCertifyRestrictedStageDirect(t *testing.T) {
	// Compose the restricted eigentest directly behind the tail bound (no
	// σ-anchored sweep): it must prove the gadget violation on a reduced
	// model and confirm it on the full one.
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 40, Seed: 9, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(TailBoundCertifier(), RestrictedHamiltonianCertifier())
	cert, err := p.Run(model, CheckOptions{}, CertifyOptions{MaxDim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Violations) == 0 {
		t.Fatalf("restricted stage missed the gadget violation: %+v", cert)
	}
	if cert.Stage != StageRestricted {
		t.Fatalf("expected %q stage verdict, got %q", StageRestricted, cert.Stage)
	}
	ws := &checkWorkspace{}
	for _, v := range cert.Violations {
		if sv := ws.sigmaAt(model, v.OmegaPeak); sv <= 1 {
			t.Fatalf("restricted violation at ω=%g has σ=%g ≤ 1", v.OmegaPeak, sv)
		}
	}
}

func TestCertifyProbeStageFindsViolation(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 14, Seed: 3, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	if cr, err := HamiltonianCrossings(model); err != nil || len(cr) == 0 {
		t.Skip("gadget did not produce a violation at this seed")
	}
	// Tail bound + probe only: the probe must localize the crossing from
	// the open intervals alone.
	p := NewPipeline(TailBoundCertifier(), ProbeCertifier())
	cert, err := p.Run(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Violations) == 0 {
		t.Fatalf("probe stage missed the violation: %+v", cert)
	}
	if cert.Stage != StageProbe {
		t.Fatalf("expected %q stage verdict, got %q", StageProbe, cert.Stage)
	}
}

func TestCertifyDeterministic(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 24, Seed: 21, PeakGain: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Certify(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Certify(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("certification is not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestEnforceCertifyProducesCertificate(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 12, Seed: 3, NarrowBand: true})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Enforce(model, EnforceOptions{Certify: true})
	if err != nil {
		t.Fatalf("certified enforcement failed: %v", err)
	}
	if !rep.Passive {
		t.Fatal("certified enforcement did not converge")
	}
	if rep.Certificate == nil || !rep.Certificate.Certified {
		t.Fatalf("missing or unconfirmed certificate: %+v", rep.Certificate)
	}
	// The certified result must satisfy the exact oracle.
	if cr, err := HamiltonianCrossings(model); err != nil {
		t.Fatal(err)
	} else if len(cr) > 0 {
		ws := &checkWorkspace{}
		for _, w := range cr {
			if sv := ws.sigmaAt(model, w); sv > 1+1e-9 {
				t.Fatalf("oracle finds σ=%g at ω=%g after certified enforcement", sv, w)
			}
		}
	}
}
