package passivity

import (
	"math/cmplx"
	"testing"

	"repro/internal/mat"
)

func TestResidueScalingMakesSISOPassive(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	before, err := Check(m, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Passive {
		t.Fatal("fixture should start non-passive")
	}
	polesBefore := append([]complex128(nil), m.Poles...)
	rep, err := EnforceByResidueScaling(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatal("scaling should always terminate passive")
	}
	if rep.Gamma <= 0 || rep.Gamma >= 1 {
		t.Fatalf("expected 0 < γ < 1, got %v", rep.Gamma)
	}
	after, err := Check(m, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !after.Passive {
		t.Fatalf("model still non-passive after scaling (σmax=%g)", after.MaxSigma)
	}
	for i, p := range m.Poles {
		if p != polesBefore[i] {
			t.Fatal("scaling must not move poles")
		}
	}
}

func TestResidueScalingMIMO(t *testing.T) {
	m := nonPassiveMIMO(t)
	rep, err := EnforceByResidueScaling(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatal("MIMO scaling failed")
	}
	if rep.Checks < 3 {
		t.Fatalf("bisection should need several checks, got %d", rep.Checks)
	}
}

func TestResidueScalingPassiveModelUntouched(t *testing.T) {
	m := nonPassiveSISO(t, 0.01) // actually passive
	r0 := m.Residues[0].At(0, 0)
	rep, err := EnforceByResidueScaling(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gamma != 1 {
		t.Fatalf("passive model must keep γ=1, got %v", rep.Gamma)
	}
	if m.Residues[0].At(0, 0) != r0 {
		t.Fatal("passive model residues must not change")
	}
}

func TestResidueScalingLosesMoreAccuracyThanQP(t *testing.T) {
	// The point of the baseline: compare the perturbation that scaling
	// inflicts against the targeted QP scheme on the same fixture.
	mScale := nonPassiveSISO(t, 0.12)
	mQP := nonPassiveSISO(t, 0.12)
	ref := nonPassiveSISO(t, 0.12)

	if _, err := EnforceByResidueScaling(mScale, EnforceOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Enforce(mQP, EnforceOptions{}); err != nil {
		t.Fatal(err)
	}
	// Deviation from the original model at a frequency far from the
	// violation band (ω = 1 rad/s; the fixture violates near its resonance).
	var devScale, devQP float64
	for _, w := range []float64{0.5, 1, 2} {
		devScale += cmplx.Abs(mScale.EvalEntry(0, 0, w) - ref.EvalEntry(0, 0, w))
		devQP += cmplx.Abs(mQP.EvalEntry(0, 0, w) - ref.EvalEntry(0, 0, w))
	}
	if devScale <= devQP {
		t.Fatalf("scaling should be less accurate away from violations: scale %g vs QP %g", devScale, devQP)
	}
}

func TestResidueScalingDClamp(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	m.D.Set(0, 0, 1.2)
	if _, err := EnforceByResidueScaling(m, EnforceOptions{}); err == nil {
		t.Fatal("σmax(D) ≥ 1 without ClampD must fail")
	}
	rep, err := EnforceByResidueScaling(m, EnforceOptions{ClampD: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatal("ClampD run should be passive")
	}
	if sig := mat.MaxSingularValue(mat.RealToComplex(m.D)); sig >= 1 {
		t.Fatalf("D not clamped: σmax=%v", sig)
	}
}
