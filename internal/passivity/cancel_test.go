package passivity

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rational"
)

func violatingModels(t *testing.T, n, poles int) []*rational.Model {
	t.Helper()
	out := make([]*rational.Model, n)
	for i := range out {
		m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: poles, Seed: 700 + int64(i), PeakGain: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = m
	}
	return out
}

func TestEnforceCancelledBetweenSweeps(t *testing.T) {
	m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 20, Seed: 41, PeakGain: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sweeps int64
	opts := EnforceOptions{
		Check: CheckOptions{
			Method: MethodAdaptive,
			Ctx:    ctx,
			Progress: func(ev ProgressEvent) {
				if ev.Kind == ProgressIteration && atomic.AddInt64(&sweeps, 1) == 1 {
					cancel()
				}
			},
		},
		ClampD: true,
	}
	rep, err := Enforce(m, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled Enforce must return its partial report")
	}
	if rep.Iterations != len(rep.History) {
		t.Fatalf("incoherent partial report: %d iterations, %d history entries", rep.Iterations, len(rep.History))
	}
	if rep.Iterations == 0 {
		t.Fatal("cancellation fired after the first sweep; the partial report must show it")
	}
}

func TestEnforceBatchCancellationDrainsAndMarksSlots(t *testing.T) {
	models := violatingModels(t, 8, 24)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var events int64
	rep := EnforceBatch(models, BatchOptions{
		Enforce: EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}, ClampD: true},
		Workers: 2,
		Ctx:     ctx,
		Progress: func(ev ProgressEvent) {
			if atomic.AddInt64(&events, 1) == 2 {
				cancel()
			}
			if ev.Model < 0 || ev.Model >= len(models) {
				t.Errorf("progress event with out-of-range model %d", ev.Model)
			}
		},
	})
	if rep.Stats.Models != len(models) {
		t.Fatalf("stats cover %d models, want %d", rep.Stats.Models, len(models))
	}
	var completed, cancelled int
	for i, r := range rep.Results {
		switch {
		case r.Err == nil:
			if r.Report == nil || r.Report.Final == nil {
				t.Fatalf("model %d: no error but incomplete report", i)
			}
			completed++
		case errors.Is(r.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("model %d: unexpected error %v", i, r.Err)
		}
	}
	if cancelled == 0 {
		t.Fatal("no model was cancelled — the cancel raced past the batch")
	}
	if completed+cancelled != len(models) {
		t.Fatalf("slots unaccounted: %d completed + %d cancelled of %d", completed, cancelled, len(models))
	}
	if rep.Stats.Failed != cancelled {
		t.Fatalf("stats count %d failed, want the %d cancelled models", rep.Stats.Failed, cancelled)
	}
	// Zero leaked goroutines, with a settle loop for runtime bookkeeping.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckCancelledContext(t *testing.T) {
	m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, method := range []Method{MethodAdaptive, MethodSweep, MethodHamiltonian} {
		if _, err := Check(m, CheckOptions{Method: method, Ctx: ctx}); !errors.Is(err, context.Canceled) {
			t.Fatalf("method %d: got %v, want context.Canceled", method, err)
		}
	}
}
