package passivity

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
)

// BenchmarkEnforce measures a full adaptive-driven enforcement run on the
// nP = 1000 narrow-band synthetic model — the perf_opt target workload: a
// model too large for the Hamiltonian eigensolve whose violation band only
// the adaptive characterizer finds. ReportAllocs tracks the zero-allocation
// workspace goal.
func BenchmarkEnforce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 4, Poles: 250, Seed: 3, PeakGain: 0.1, NarrowBand: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := Enforce(m, EnforceOptions{
			Check: CheckOptions{Method: MethodAdaptive},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatal("enforcement failed")
		}
	}
}

// BenchmarkEnforceSmall is the fast companion (nP = 80) for quick
// regression sweeps of the same path.
func BenchmarkEnforceSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 40, Seed: 9, PeakGain: 1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := Enforce(m, EnforceOptions{
			Check: CheckOptions{Method: MethodAdaptive}, ClampD: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatal("enforcement failed")
		}
	}
}

// BenchmarkCertify measures what the post-convergence certificate adds to
// an enforcement run whose model is already truly passive — the steady
// state of a library service, where certification must be nearly free. At
// nP = 500/1000 (N = 2·n·P ≥ 2000) the pipeline runs tail-bound interval
// certificates with restricted Hamiltonian escalation, never the full
// eigensolve. Compare certify=false (the PR 3 engine) with certify=true;
// the BENCH_4.json acceptance line is <15% wall-clock overhead.
func BenchmarkCertify(b *testing.B) {
	for _, np := range []int{500, 1000} {
		for _, certify := range []bool{false, true} {
			b.Run(fmt.Sprintf("nP=%d/certify=%v", np, certify), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m, err := SyntheticModel(SyntheticOptions{
						Ports: 2, Poles: np / 2, Seed: 17, PeakGain: 0.08, DSigma: 0.75,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					rep, err := Enforce(m, EnforceOptions{
						Check:   CheckOptions{Method: MethodAdaptive},
						Certify: certify,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Passive {
						b.Fatal("model unexpectedly non-passive")
					}
					if certify && (rep.Certificate == nil || !rep.Certificate.Certified) {
						b.Fatalf("certification incomplete: %+v", rep.Certificate)
					}
				}
			})
		}
	}
}

// benchBatchLibrary builds the 32-model library of the batch benchmark:
// deterministic violating models of mixed sizes.
func benchBatchLibrary(b *testing.B) []*rational.Model {
	b.Helper()
	lib := make([]*rational.Model, 32)
	for i := range lib {
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 20 + 4*(i%4), Seed: int64(60 + i), PeakGain: 1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		lib[i] = m
	}
	return lib
}

// BenchmarkEnforceBatch measures sharded enforcement of a 32-model library
// at worker counts 1 and GOMAXPROCS. The per-model work is identical at
// every worker count (results are bitwise equal), so the ratio of the two
// timings is the model-level parallel speedup.
func BenchmarkEnforceBatch(b *testing.B) {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				lib := benchBatchLibrary(b)
				b.StartTimer()
				rep := EnforceBatch(lib, BatchOptions{
					Enforce: EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}},
					Workers: workers,
				})
				if rep.Stats.Failed != 0 || rep.Stats.Passive != len(lib) {
					b.Fatalf("batch enforcement failed: %+v", rep.Stats)
				}
			}
		})
	}
}

// BenchmarkCounterLargeN measures the contour counter's full Count of a
// crossing-free segment on truly passive models at Hamiltonian dimensions
// N = 600, 2000 and 6000 — the workload the structured diagonal-plus-
// low-rank kernel exists for. The dense complex-LU backend prices one node
// at O(N³), so it only runs where that is affordable (N = 600 always,
// N = 2000 outside -short, never at 6000); the structured backend runs
// everywhere. Both backends must return count 0 — the structured/dense
// wall-clock ratio at equal N is the PR 9 acceptance number.
func BenchmarkCounterLargeN(b *testing.B) {
	for _, np := range []int{150, 500, 1500} { // N = 2·poles·ports = 4·poles
		for _, backend := range []string{BackendStructured, BackendDense} {
			n := 4 * np
			b.Run(fmt.Sprintf("N=%d/%s", n, backend), func(b *testing.B) {
				if backend == BackendDense {
					if n > 2000 {
						b.Skipf("dense Count at N=%d is O(N³) per node — infeasible", n)
					}
					if n > 600 && testing.Short() {
						b.Skipf("dense Count at N=%d skipped in -short runs", n)
					}
				}
				m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: np, Seed: 17, PeakGain: 0.08, DSigma: 0.75})
				if err != nil {
					b.Fatal(err)
				}
				build := NewIntervalCounter
				if backend == BackendDense {
					build = NewIntervalCounterDense
				}
				ic, err := build(m, 1)
				if err != nil {
					b.Fatal(err)
				}
				// A segment above the resonance band (pole resonances sit below
				// 1e4 rad/s ≈ 0.25·bound at N=600, lower fractions beyond):
				// the count is provably zero — the gap-certification workload
				// the counter spends almost all its certification nodes on.
				lo := ic.OmegaBound() * 0.30
				hi := ic.OmegaBound() * 0.31
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cnt, err := ic.Count(lo, hi)
					if err != nil {
						b.Fatal(err)
					}
					if cnt != 0 {
						b.Fatalf("passive model: count %d on [%g, %g]", cnt, lo, hi)
					}
				}
				b.ReportMetric(float64(ic.Nodes())/float64(b.N), "nodes/op")
			})
		}
	}
}

// BenchmarkCounterNode isolates the per-node determinant cost the counter
// pays: one DetPhasePivot evaluation of the shifted level-1 Hamiltonian at
// a fixed off-spectrum point, structured vs dense, N = 600 and 2000.
func BenchmarkCounterNode(b *testing.B) {
	for _, np := range []int{150, 500} {
		n := 4 * np
		m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: np, Seed: 17, PeakGain: 0.08, DSigma: 0.75})
		if err != nil {
			b.Fatal(err)
		}
		s, err := HamiltonianFactorsLevel(m, 1)
		if err != nil {
			b.Fatal(err)
		}
		z := complex(0.1*s.EigenBound(), 0.07*s.EigenBound())
		b.Run(fmt.Sprintf("N=%d/structured", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Perturb z per iteration so the factor cache never hits.
				if _, _, err := s.DetPhasePivot(z + complex(float64(i%7)*1e-9, 0)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("N=%d/dense", n), func(b *testing.B) {
			if n > 600 && testing.Short() {
				b.Skipf("dense DetPhasePivot at N=%d skipped in -short runs", n)
			}
			d := mat.NewDenseShifted(s.Materialize())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.DetPhasePivot(z + complex(float64(i%7)*1e-9, 0)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
