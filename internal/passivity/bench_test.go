package passivity

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/rational"
)

// BenchmarkEnforce measures a full adaptive-driven enforcement run on the
// nP = 1000 narrow-band synthetic model — the perf_opt target workload: a
// model too large for the Hamiltonian eigensolve whose violation band only
// the adaptive characterizer finds. ReportAllocs tracks the zero-allocation
// workspace goal.
func BenchmarkEnforce(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 4, Poles: 250, Seed: 3, PeakGain: 0.1, NarrowBand: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := Enforce(m, EnforceOptions{
			Check: CheckOptions{Method: MethodAdaptive},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatal("enforcement failed")
		}
	}
}

// BenchmarkEnforceSmall is the fast companion (nP = 80) for quick
// regression sweeps of the same path.
func BenchmarkEnforceSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 40, Seed: 9, PeakGain: 1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rep, err := Enforce(m, EnforceOptions{
			Check: CheckOptions{Method: MethodAdaptive}, ClampD: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passive {
			b.Fatal("enforcement failed")
		}
	}
}

// BenchmarkCertify measures what the post-convergence certificate adds to
// an enforcement run whose model is already truly passive — the steady
// state of a library service, where certification must be nearly free. At
// nP = 500/1000 (N = 2·n·P ≥ 2000) the pipeline runs tail-bound interval
// certificates with restricted Hamiltonian escalation, never the full
// eigensolve. Compare certify=false (the PR 3 engine) with certify=true;
// the BENCH_4.json acceptance line is <15% wall-clock overhead.
func BenchmarkCertify(b *testing.B) {
	for _, np := range []int{500, 1000} {
		for _, certify := range []bool{false, true} {
			b.Run(fmt.Sprintf("nP=%d/certify=%v", np, certify), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m, err := SyntheticModel(SyntheticOptions{
						Ports: 2, Poles: np / 2, Seed: 17, PeakGain: 0.08, DSigma: 0.75,
					})
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					rep, err := Enforce(m, EnforceOptions{
						Check:   CheckOptions{Method: MethodAdaptive},
						Certify: certify,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Passive {
						b.Fatal("model unexpectedly non-passive")
					}
					if certify && (rep.Certificate == nil || !rep.Certificate.Certified) {
						b.Fatalf("certification incomplete: %+v", rep.Certificate)
					}
				}
			})
		}
	}
}

// benchBatchLibrary builds the 32-model library of the batch benchmark:
// deterministic violating models of mixed sizes.
func benchBatchLibrary(b *testing.B) []*rational.Model {
	b.Helper()
	lib := make([]*rational.Model, 32)
	for i := range lib {
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 20 + 4*(i%4), Seed: int64(60 + i), PeakGain: 1.1,
		})
		if err != nil {
			b.Fatal(err)
		}
		lib[i] = m
	}
	return lib
}

// BenchmarkEnforceBatch measures sharded enforcement of a 32-model library
// at worker counts 1 and GOMAXPROCS. The per-model work is identical at
// every worker count (results are bitwise equal), so the ratio of the two
// timings is the model-level parallel speedup.
func BenchmarkEnforceBatch(b *testing.B) {
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				lib := benchBatchLibrary(b)
				b.StartTimer()
				rep := EnforceBatch(lib, BatchOptions{
					Enforce: EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}},
					Workers: workers,
				})
				if rep.Stats.Failed != 0 || rep.Stats.Passive != len(lib) {
					b.Fatalf("batch enforcement failed: %+v", rep.Stats)
				}
			}
		})
	}
}
