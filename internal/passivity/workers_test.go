package passivity

import (
	"math"
	"reflect"
	"testing"
)

func TestSweepWorkersDoNotChangeResult(t *testing.T) {
	m := nonPassiveMIMO(t)
	var reports []*Report
	for _, workers := range []int{1, 2, 8} {
		rep, err := Check(m, CheckOptions{Method: MethodSweep, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	ref := reports[0]
	for i, rep := range reports[1:] {
		if rep.Passive != ref.Passive || len(rep.Violations) != len(ref.Violations) {
			t.Fatalf("workers case %d: verdict differs", i)
		}
		if math.Abs(rep.MaxSigma-ref.MaxSigma) > 1e-12 {
			t.Fatalf("workers case %d: MaxSigma %v vs %v", i, rep.MaxSigma, ref.MaxSigma)
		}
		if math.Abs(rep.MaxOmega-ref.MaxOmega) > 1e-12*ref.MaxOmega {
			t.Fatalf("workers case %d: MaxOmega %v vs %v", i, rep.MaxOmega, ref.MaxOmega)
		}
		for k, v := range rep.Violations {
			if math.Abs(v.OmegaPeak-ref.Violations[k].OmegaPeak) > 1e-9*ref.Violations[k].OmegaPeak {
				t.Fatalf("workers case %d: violation %d peak differs", i, k)
			}
		}
	}
}

// TestAdaptiveWorkersBitwiseIdentical: the staged refinement batches its
// parallel evaluations so that every decision is taken on the calling
// goroutine — the whole Report must be bitwise identical for any worker
// count, not merely within tolerance.
func TestAdaptiveWorkersBitwiseIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts CheckOptions
	}{
		{"mimo", CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4}},
		{"mimo-cached", CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4}},
	} {
		var reports []*Report
		for _, workers := range []int{1, 2, 8} {
			m := nonPassiveMIMO(t)
			opts := tc.opts
			opts.Workers = workers
			if tc.name == "mimo-cached" {
				opts.Cache = NewEvalCache()
			}
			rep, err := Check(m, opts)
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, rep)
		}
		for i, rep := range reports[1:] {
			if !reflect.DeepEqual(rep, reports[0]) {
				t.Fatalf("%s: workers case %d not bitwise identical:\n%+v\nvs\n%+v",
					tc.name, i, rep, reports[0])
			}
		}
	}

	// The large synthetic narrow-band model exercises deep refinement.
	var reports []*Report
	for _, workers := range []int{1, 8} {
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 3, Poles: 80, Seed: 5, NarrowBand: true, PeakGain: 0.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(m, CheckOptions{Method: MethodAdaptive, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("narrow-band model: workers changed the report:\n%+v\nvs\n%+v",
			reports[0], reports[1])
	}
}

func TestSweepHandlesHeavilyDampedPoles(t *testing.T) {
	// A pole with |Re p| ≫ |Im p| used to seed the sweep grid with a
	// negative frequency, yielding NaN violation bands that poisoned the
	// enforcement QP. Regression: all report fields must be finite.
	m := nonPassiveSISO(t, 0.12)
	m.Poles = append(m.Poles, complex(-50, 0.3), complex(-50, -0.3))
	m.Residues = append(m.Residues, m.Residues[0].Clone(), m.Residues[0].Clone())
	r := m.CVector(0, 0)
	r[len(r)-2] = 0.4
	r[len(r)-1] = 0
	m.SetCVector(0, 0, r)
	rep, err := Check(m, CheckOptions{Method: MethodSweep})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.MaxSigma) || math.IsNaN(rep.MaxOmega) {
		t.Fatal("NaN in sweep report")
	}
	for _, v := range rep.Violations {
		if math.IsNaN(v.OmegaPeak) || math.IsNaN(v.SigmaPeak) || v.OmegaHi < v.OmegaLo {
			t.Fatalf("bad violation band: %+v", v)
		}
	}
}
