package passivity

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
)

// nonPassiveSISO builds a 1-port model with a controlled violation near
// ω = 20 rad/s: a resonant pole pushes |S| slightly above one.
func nonPassiveSISO(t *testing.T, bump float64) *rational.Model {
	t.Helper()
	p := complex(-1, 20)
	r := complex(bump, 0)
	m, err := rational.NewScalar(
		[]complex128{p, cmplx.Conj(p)},
		[]complex128{r, cmplx.Conj(r)},
		0.92,
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// nonPassiveMIMO builds a 2-port model with violations in two bands.
func nonPassiveMIMO(t *testing.T) *rational.Model {
	t.Helper()
	poles := []complex128{
		complex(-1, 20), complex(-1, -20),
		complex(-3, 200), complex(-3, -200),
	}
	r1 := mat.NewCMatrixFrom([][]complex128{{0.15, 0.02}, {0.02, 0.01}})
	r1c := conj(r1)
	r2 := mat.NewCMatrixFrom([][]complex128{{0.05, 0.01}, {0.01, 0.7}})
	r2c := conj(r2)
	d := mat.NewMatrixFrom([][]float64{{0.9, 0.02}, {0.02, 0.88}})
	m, err := rational.New(poles, []*mat.CMatrix{r1, r1c, r2, r2c}, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func conj(m *mat.CMatrix) *mat.CMatrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] = cmplx.Conj(out.Data[i])
	}
	return out
}

func TestHamiltonianCrossingsMatchUnitSigma(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	crossings, err := HamiltonianCrossings(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) == 0 {
		t.Fatalf("expected crossings for a non-passive model")
	}
	for _, w := range crossings {
		s := m.Eval(w)
		sv := mat.MaxSingularValue(s)
		if math.Abs(sv-1) > 1e-6 {
			t.Fatalf("σ(S(j%v)) = %v, want 1 at a crossing", w, sv)
		}
	}
}

func TestHamiltonianPassiveModelNoCrossings(t *testing.T) {
	m := nonPassiveSISO(t, 0.01) // small residue: |S| stays below 1
	crossings, err := HamiltonianCrossings(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(crossings) != 0 {
		t.Fatalf("passive model reported crossings: %v", crossings)
	}
}

func TestCheckHamiltonianVsSweepAgree(t *testing.T) {
	for _, bump := range []float64{0.01, 0.12, 0.4} {
		m := nonPassiveSISO(t, bump)
		h, err := Check(m, CheckOptions{Method: MethodHamiltonian})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Check(m, CheckOptions{Method: MethodSweep, OmegaMin: 0.1, OmegaMax: 1e4, SweepPoints: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if h.Passive != s.Passive {
			t.Fatalf("bump=%v: hamiltonian passive=%v sweep passive=%v", bump, h.Passive, s.Passive)
		}
		if !h.Passive {
			if math.Abs(h.MaxSigma-s.MaxSigma) > 1e-4*(1+h.MaxSigma) {
				t.Fatalf("bump=%v: max σ %v vs %v", bump, h.MaxSigma, s.MaxSigma)
			}
			if math.Abs(h.MaxOmega-s.MaxOmega) > 0.05*h.MaxOmega {
				t.Fatalf("bump=%v: peak ω %v vs %v", bump, h.MaxOmega, s.MaxOmega)
			}
		}
	}
}

func TestCheckAutoSelectsMethod(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	rep, err := Check(m, CheckOptions{Method: MethodAuto})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "hamiltonian" {
		t.Fatalf("small model should use hamiltonian, got %s", rep.Method)
	}
	rep, err = Check(m, CheckOptions{Method: MethodAuto, HamiltonianMaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != "adaptive" {
		t.Fatalf("forced-large model should use the adaptive characterizer, got %s", rep.Method)
	}
}

func TestSigmaLinearization(t *testing.T) {
	// δσ ≈ Re(uᴴ·δS·v) for small residue perturbations — the foundation of
	// the constraint rows.
	m := nonPassiveMIMO(t)
	omega := 20.0
	s := m.Eval(omega)
	svd := mat.CSVDecompose(s)
	u, v := svd.U.Col(0), svd.V.Col(0)
	ktil := m.EvalBasis(omega)

	rng := rand.New(rand.NewSource(90))
	n := m.NumPoles()
	eps := 1e-7
	for trial := 0; trial < 5; trial++ {
		pert := m.Clone()
		pred := 0.0
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				delta := make([]float64, n)
				for k := range delta {
					delta[k] = eps * rng.NormFloat64()
				}
				pert.AddToCVector(i, j, delta)
				// predicted δS_ij = δc·k̃; δσ contribution Re(conj(u_i)v_j·δS_ij)
				var ds complex128
				for k := range delta {
					ds += complex(delta[k], 0) * ktil[k]
				}
				pred += real(cmplx.Conj(u[i]) * complex(1, 0) * v[j] * ds)
			}
		}
		s2 := pert.Eval(omega)
		svd2 := mat.CSVDecompose(s2)
		got := svd2.S[0] - svd.S[0]
		if math.Abs(got-pred) > 2e-2*math.Abs(pred)+1e-12 {
			t.Fatalf("trial %d: δσ = %v predicted %v", trial, got, pred)
		}
	}
}

func TestAssembleDualMatchesDense(t *testing.T) {
	// The structured dual assembly must equal the explicit F·G⁻¹·Fᵀ.
	m := nonPassiveMIMO(t)
	chk, err := Check(m, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Passive {
		t.Fatalf("test model should be non-passive")
	}
	gram, err := StandardGramian(m)
	if err != nil {
		t.Fatal(err)
	}
	chol, _, err := mat.CholFactorRegularized(gram)
	if err != nil {
		t.Fatal(err)
	}
	opts := EnforceOptions{Margin: 1e-4, GuardBand: 2e-3, MaxBandSubdivision: 3}
	cons, err := buildConstraints(m, chk, opts, chol)
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) == 0 {
		t.Fatalf("no constraints built")
	}
	structured := assembleDual(cons, 0)

	// Dense: F has one row per constraint, P²·n columns.
	p := m.Ports()
	n := m.NumPoles()
	f := mat.NewMatrix(len(cons), p*p*n)
	for a, c := range cons {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				alpha := cmplx.Conj(c.u[i]) * c.v[j]
				for k := 0; k < n; k++ {
					val := real(alpha)*c.rk[k] - imag(alpha)*c.ik[k]
					f.Set(a, (i*p+j)*n+k, val)
				}
			}
		}
	}
	// H⁻¹Fᵀ block-wise with identical blocks G.
	dense := mat.NewMatrix(len(cons), len(cons))
	for a := 0; a < len(cons); a++ {
		for b := 0; b < len(cons); b++ {
			sum := 0.0
			for blk := 0; blk < p*p; blk++ {
				fa := make([]float64, n)
				fb := make([]float64, n)
				for k := 0; k < n; k++ {
					fa[k] = f.At(a, blk*n+k)
					fb[k] = f.At(b, blk*n+k)
				}
				sum += mat.Dot(fa, chol.SolveVec(fb))
			}
			dense.Set(a, b, sum)
		}
	}
	if !structured.Equalish(dense, 1e-9*(1+dense.MaxAbs())) {
		t.Fatalf("structured dual:\n%v\ndense:\n%v", structured, dense)
	}
}

func TestEnforceSISO(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	before := sampleResponses(m)
	rep, err := Enforce(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("not passive after enforcement")
	}
	chk, err := Check(m, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Passive {
		t.Fatalf("hamiltonian disagrees after enforcement: max σ %v", chk.MaxSigma)
	}
	// Perturbation should be modest: responses move by less than the
	// violation magnitude order.
	after := sampleResponses(m)
	for i := range before {
		if cmplx.Abs(after[i]-before[i]) > 0.2 {
			t.Fatalf("enforcement distorted response too much: %v -> %v", before[i], after[i])
		}
	}
}

func sampleResponses(m *rational.Model) []complex128 {
	var out []complex128
	for _, w := range []float64{0.1, 1, 5, 20, 100, 1000} {
		out = append(out, m.Eval(w).At(0, 0))
	}
	return out
}

func TestEnforceMIMO(t *testing.T) {
	m := nonPassiveMIMO(t)
	chk0, err := Check(m, CheckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if chk0.Passive {
		t.Fatalf("test model should be non-passive (σmax=%v)", chk0.MaxSigma)
	}
	rep, err := Enforce(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive || rep.Iterations == 0 {
		t.Fatalf("enforcement failed: %+v", rep)
	}
	// Residues stay conjugate-symmetric.
	for k := 0; k < len(m.Poles); k += 2 {
		r := m.Residues[k].At(0, 1)
		rc := m.Residues[k+1].At(0, 1)
		if cmplx.Abs(rc-cmplx.Conj(r)) > 1e-12 {
			t.Fatalf("conjugate symmetry broken by enforcement")
		}
	}
	// Poles and D untouched.
	ref := nonPassiveMIMO(t)
	for i, p := range m.Poles {
		if p != ref.Poles[i] {
			t.Fatalf("poles moved")
		}
	}
	if !m.D.Equalish(ref.D, 0) {
		t.Fatalf("D moved")
	}
}

func TestEnforceWithSweepMethod(t *testing.T) {
	m := nonPassiveMIMO(t)
	rep, err := Enforce(m, EnforceOptions{
		Check: CheckOptions{Method: MethodSweep, OmegaMin: 0.1, OmegaMax: 1e4, SweepPoints: 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("sweep-based enforcement failed")
	}
	// Verify with the exact method.
	chk, err := Check(m, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	if !chk.Passive {
		t.Fatalf("hamiltonian still sees violations: σmax=%v at ω=%v", chk.MaxSigma, chk.MaxOmega)
	}
}

func TestEnforceRejectsAsymptoticViolation(t *testing.T) {
	m, err := rational.NewScalar(
		[]complex128{-1},
		[]complex128{0.1},
		1.05, // σ(D) > 1
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Enforce(m, EnforceOptions{}); err == nil {
		t.Fatalf("expected ErrAsymptoticViolation")
	}
}

func TestEnforceAlreadyPassiveIsNoOp(t *testing.T) {
	m := nonPassiveSISO(t, 0.01)
	ref := m.Clone()
	rep, err := Enforce(m, EnforceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive || rep.Iterations != 0 {
		t.Fatalf("passive model should be a no-op: %+v", rep)
	}
	for k := range m.Residues {
		if !m.Residues[k].Equalish(ref.Residues[k], 0) {
			t.Fatalf("residues changed on a passive model")
		}
	}
}

func TestEnforceCustomGramianMatchesDimension(t *testing.T) {
	m := nonPassiveSISO(t, 0.12)
	bad := mat.Identity(5)
	if _, err := Enforce(m, EnforceOptions{CostGramian: bad}); err == nil {
		t.Fatalf("wrong-size Gramian accepted")
	}
	good := mat.Identity(m.NumPoles())
	rep, err := Enforce(m, EnforceOptions{CostGramian: good})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passive {
		t.Fatalf("identity-cost enforcement failed")
	}
}

func BenchmarkCheckHamiltonianSISO(b *testing.B) {
	m, err := rational.NewScalar(
		[]complex128{complex(-1, 20), complex(-1, -20)},
		[]complex128{complex(0.12, 0), complex(0.12, 0)},
		0.92,
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Check(m, CheckOptions{Method: MethodHamiltonian}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnforceMIMO2Port(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		poles := []complex128{
			complex(-1, 20), complex(-1, -20),
			complex(-3, 200), complex(-3, -200),
		}
		r1 := mat.NewCMatrixFrom([][]complex128{{0.15, 0.02}, {0.02, 0.01}})
		r2 := mat.NewCMatrixFrom([][]complex128{{0.05, 0.01}, {0.01, 0.7}})
		d := mat.NewMatrixFrom([][]float64{{0.9, 0.02}, {0.02, 0.88}})
		m, err := rational.New(poles, []*mat.CMatrix{r1, conj(r1), r2, conj(r2)}, d)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := Enforce(m, EnforceOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
