package passivity

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rational"
)

// This file implements the terminal rigor stage of the certification
// pipeline: an argument-principle eigenvalue counter over jω-axis segments
// of the level-γ Hamiltonian pencil. Where the Arnoldi probe can only
// *find* imaginary eigenvalues (best effort — absence of evidence), the
// counter *counts* them inside a thin rectangle around each unsettled
// segment by contour quadrature of the logarithmic-derivative trace
// (mat.ContourEvaluator). A provably-zero count means σ(S(jω)) − γ cannot
// change sign on the segment, so a single spot sample settles it
// rigorously; nonzero counts are bisected down to candidate crossing
// clusters that the σ machinery then judges directly. Either way the stage
// retires every interval it is handed — Certificate.Open == nil — or
// records an honest Note about the rectangle it could not stabilize.

// StageCounter names the contour-integral counter stage in certificates.
const StageCounter = "contour-counter"

// Kernel backend names recorded in StageCost.Backend and progress events.
const (
	// BackendStructured is the diagonal-plus-low-rank determinant/solve
	// kernel (mat.StructuredShifted): O(N·p²) per contour node.
	BackendStructured = "structured"
	// BackendDense is the dense kernel (complex LU / Francis QR): O(N³).
	BackendDense = "dense"
)

// counterCluster is one floor-width segment of the jω axis that still
// holds a nonzero eigenvalue count after bisection — a candidate crossing
// (or tight cluster of crossings) of σ(S(jω)) through the level γ.
type counterCluster struct {
	Lo, Hi float64
	Count  int
}

// IntervalCounter counts the eigenvalues of a model's level-γ Hamiltonian
// on segments of the positive imaginary axis — equivalently the crossings
// of σ(S(jω)) through the level γ with ω in the segment. The Hamiltonian
// is built once; each count walks a thin rectangular contour around the
// segment. Not safe for concurrent use.
type IntervalCounter struct {
	ev        *mat.ContourEvaluator
	backend   string
	gamma     float64
	bound     float64
	lastDelta float64
	// RectNodes caps the determinant evaluations of one rectangle count
	// (default max(4096, 2·N) — the quadrature's aliasing guard tightens
	// chords proportionally to N, so large-N contours legitimately spend
	// more nodes); Budget caps them over the counter's lifetime
	// (0 = unlimited). Exceeding either returns mat.ErrContourStall.
	RectNodes int
	Budget    int
}

// rectNodesFor is the default per-rectangle node cap for dimension N.
func rectNodesFor(dim int) int {
	if n := 2 * dim; n > 4096 {
		return n
	}
	return 4096
}

// NewIntervalCounter builds the level-γ Hamiltonian of the model in
// factored diagonal-plus-low-rank form (HamiltonianFactorsLevel) and
// prepares the contour evaluator over the structured O(N·p²) determinant
// kernel. It fails when γ is a singular value of D (the pencil is
// undefined there — nudge γ).
func NewIntervalCounter(model *rational.Model, gamma float64) (*IntervalCounter, error) {
	s, err := HamiltonianFactorsLevel(model, gamma)
	if err != nil {
		return nil, err
	}
	ev := mat.NewContourEvaluatorBackend(s)
	return &IntervalCounter{ev: ev, backend: BackendStructured, gamma: gamma, bound: ev.EigenBound(), RectNodes: rectNodesFor(ev.Dim())}, nil
}

// NewIntervalCounterDense builds the counter over the materialized
// Hamiltonian and the dense complex-LU determinant kernel — O(N³) per
// contour node. It is the oracle the structured kernel is cross-validated
// against (and a debugging escape hatch via
// CertifyOptions.ForceDenseKernels); NewIntervalCounter is the production
// path.
func NewIntervalCounterDense(model *rational.Model, gamma float64) (*IntervalCounter, error) {
	sys := model.Realization()
	h, err := HamiltonianMatrixLevel(sys.A, sys.B, sys.C, sys.D, gamma)
	if err != nil {
		return nil, err
	}
	ev := mat.NewContourEvaluator(h)
	return &IntervalCounter{ev: ev, backend: BackendDense, gamma: gamma, bound: ev.EigenBound(), RectNodes: rectNodesFor(ev.Dim())}, nil
}

// Dim returns the Hamiltonian dimension 2·n·P.
func (ic *IntervalCounter) Dim() int { return ic.ev.Dim() }

// Backend reports which determinant kernel the counter walks contours
// with: BackendStructured or BackendDense.
func (ic *IntervalCounter) Backend() string { return ic.backend }

// Nodes returns the determinant evaluations spent so far.
func (ic *IntervalCounter) Nodes() int { return ic.ev.Nodes }

// OmegaBound returns a rigorous upper bound on every crossing frequency:
// the induced-norm bound on the Hamiltonian's eigenvalue moduli. Segments
// entirely beyond it are crossing-free without any quadrature.
func (ic *IntervalCounter) OmegaBound() float64 { return ic.bound }

// LastDelta returns the real-direction half-width of the rectangle the
// most recent successful Count walked (the stall-retry ladder may shrink
// it below the initial width/4). Oracle tests use it to reproduce the
// exact region counted.
func (ic *IntervalCounter) LastDelta() float64 { return ic.lastDelta }

// contourOpts builds the per-rectangle quadrature options under the
// remaining budget.
func (ic *IntervalCounter) contourOpts() (mat.ContourOptions, error) {
	limit := ic.RectNodes
	if ic.Budget > 0 {
		rem := ic.Budget - ic.ev.Nodes
		if rem <= 0 {
			return mat.ContourOptions{}, fmt.Errorf("counter budget exhausted after %d nodes: %w", ic.ev.Nodes, mat.ErrContourStall)
		}
		limit = min(limit, rem)
	}
	return mat.ContourOptions{MaxNodes: limit}, nil
}

// Count counts the Hamiltonian eigenvalues inside a thin rectangle
// enclosing the open segment (lo, hi) of the positive imaginary axis. A
// zero count proves the segment holds no crossing of σ through γ. A
// nonzero count flags candidates: the rectangle has half-width δ in the
// real direction, so eigenvalues within δ of the axis are counted even if
// slightly off it (sound for certification — zero is still zero — and the
// candidates are vetted by direct σ evaluation afterwards). Stalls retry
// with a shrunken δ; a persistent mat.ErrContourStall means an eigenvalue
// hugs the segment endpoints and the caller should split elsewhere.
func (ic *IntervalCounter) Count(lo, hi float64) (int, error) {
	if !(lo >= 0) || !(hi > lo) || math.IsInf(hi, 1) {
		return 0, fmt.Errorf("passivity: IntervalCounter.Count on invalid segment [%g, %g]", lo, hi)
	}
	delta := 0.25 * (hi - lo)
	var lastErr error
	for try := 0; try < 5; try++ {
		opts, err := ic.contourOpts()
		if err != nil {
			return 0, err
		}
		rect := mat.RectContour{ReLo: -delta, ReHi: delta, ImLo: lo, ImHi: hi}
		if lo == 0 {
			// DC segment: drop the bottom edge below the axis so an ω = 0
			// eigenvalue sits inside the contour, not on it. The spectrum
			// is symmetric in jω, so the dip only adds mirror images of
			// eigenvalues already counted — harmless for a candidate count
			// and irrelevant for a zero count.
			rect.ImLo = -delta
		}
		n, err := ic.ev.CountRect(rect, opts)
		if err == nil {
			ic.lastDelta = delta
			return n, nil
		}
		lastErr = err
		// An eigenvalue near a vertical edge stalls the quadrature; thinner
		// rectangles move the edge off it. (Horizontal-edge stalls are the
		// caller's to fix by splitting elsewhere.)
		delta *= 0.35
	}
	return 0, lastErr
}

// Crossings bisects (lo, hi) into crossing-free gaps and floor-width
// clusters holding the nonzero counts. floor is the smallest cluster width
// (a relative width is applied against hi by the caller). When a midpoint
// stalls the quadrature — an eigenvalue sitting on it — nearby split
// points are tried before giving up on the segment.
func (ic *IntervalCounter) Crossings(lo, hi, floor float64) ([]counterCluster, error) {
	n, err := ic.Count(lo, hi)
	switch {
	case err == nil && n == 0:
		return nil, nil
	case err == nil && hi-lo <= floor:
		return []counterCluster{{Lo: lo, Hi: hi, Count: n}}, nil
	case err != nil && !errors.Is(err, mat.ErrContourStall):
		return nil, err
	case err != nil && hi-lo <= floor:
		return nil, err
	}
	// Nonzero count, or a stall on a rectangle too crowded for its node
	// budget: either way the halves are strictly easier, so split.
	width := hi - lo
	var clusters []counterCluster
	// Nudge ladder for the split point: the exact midpoint first, then
	// asymmetric offsets in case an eigenvalue sits on it.
	for _, f := range []float64{0.5, 0.53, 0.46, 0.59, 0.41} {
		mid := lo + f*width
		left, err := ic.Crossings(lo, mid, floor)
		if err != nil {
			if errors.Is(err, mat.ErrContourStall) {
				continue
			}
			return nil, err
		}
		right, err := ic.Crossings(mid, hi, floor)
		if err != nil {
			if errors.Is(err, mat.ErrContourStall) {
				continue
			}
			return nil, err
		}
		return append(append(clusters, left...), right...), nil
	}
	return nil, mat.ErrContourStall
}

// CounterCertifier returns the terminal contour-integral counter stage: it
// retires every interval the earlier stages left open (or proves the
// violations living inside them), so certificates finish with Open == nil.
func CounterCertifier() Certifier { return counterStage{} }

// counterStage adapts IntervalCounter to the Certifier interface.
type counterStage struct{}

// Name implements Certifier.
func (counterStage) Name() string { return StageCounter }

func (counterStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageCounter, DimGate: cc.copts.CounterMaxDim}
	if len(open) == 0 {
		// Nothing left to settle: skip building the Hamiltonian entirely —
		// the terminal stage must be free on the steady-state path where the
		// earlier certificates already covered the axis.
		return nil, nil, cost, nil
	}
	backend := BackendStructured
	if cc.copts.ForceDenseKernels {
		backend = BackendDense
	}
	cost.Backend = backend
	if dim := 2 * len(cc.model.Poles) * cc.model.D.Rows; dim > cc.copts.CounterMaxDim {
		// Each quadrature node costs O(N·p²) on the structured kernel (O(N³)
		// when dense kernels are forced); past the configured frontier the
		// node budget would dominate the run. Decline honestly instead of
		// stalling, and count the declined intervals so the gate is visible
		// in metrics, not just in this note.
		cost.Note = fmt.Sprintf("counter declined: Hamiltonian dim %d exceeds CounterMaxDim %d", dim, cc.copts.CounterMaxDim)
		cost.Declined = len(open)
		return open, nil, cost, nil
	}
	build := NewIntervalCounter
	if backend == BackendDense {
		build = NewIntervalCounterDense
	}
	ic, err := build(cc.model, cc.limit)
	if err != nil {
		// γ collides with a singular value of D; leave the intervals open
		// rather than abort a best-effort pipeline tail.
		cost.Note = err.Error()
		return open, nil, cost, nil
	}
	ic.Budget = cc.copts.CounterMaxNodes
	cost.EigenDim = ic.Dim()
	var rem []CertInterval
	var viols []Violation
	for _, iv := range open {
		ivViols, ok, note := counterSettle(cc, ic, iv, &cost)
		switch {
		case len(ivViols) > 0:
			viols = append(viols, ivViols...)
		case ok:
			cost.Certified++
		default:
			if note != "" {
				cost.Note = note
			}
			rem = append(rem, iv)
		}
	}
	cost.Nodes = ic.Nodes()
	cost.Violations = len(viols)
	return rem, viols, cost, nil
}

// counterSettle resolves one open interval: localize candidate crossing
// clusters by contour counting, then judge every crossing-free gap with a
// single σ sample and every cluster with a polished peak. It reports the
// violations found, whether the interval is certified clean, and a
// diagnostic note when the quadrature could not settle it.
func counterSettle(cc *certContext, ic *IntervalCounter, iv CertInterval, cost *StageCost) ([]Violation, bool, string) {
	lo, hi := iv.Lo, iv.Hi
	segHi := hi
	if math.IsInf(hi, 1) {
		// No Hamiltonian eigenvalue lies beyond the norm bound, so the
		// segment past it is crossing-free by construction; counting stops
		// at the bound and the tail joins the last gap.
		segHi = ic.OmegaBound() * (1 + 1e-9)
	}
	var clusters []counterCluster
	if lo < segHi {
		floor := cc.relTol * segHi
		var err error
		clusters, err = ic.Crossings(lo, segHi, floor)
		if err != nil {
			return nil, false, fmt.Sprintf("counter on [%g, %g]: %v", lo, segHi, err)
		}
	}
	// Edges of the crossing-free gaps: interval ends plus cluster bounds.
	edges := make([]float64, 0, 2*len(clusters)+2)
	edges = append(edges, lo)
	for _, cl := range clusters {
		edges = append(edges, cl.Lo, cl.Hi)
	}
	edges = append(edges, hi)
	var viols []Violation
	// Odd (gap) spans are provably crossing-free: one sample decides each.
	for i := 0; i+1 < len(edges); i += 2 {
		g0, g1 := edges[i], edges[i+1]
		if g1 <= g0 {
			continue
		}
		w := testPoint(g0, g1)
		sv := cachedSigma(cc.model, w, cc.cache, cc.ws)
		cost.Samples++
		if sv > cc.limit {
			peakW, peakS := refinePeak(cc.model, g0, g1, w, cc.cache, cc.ws)
			viols = append(viols, Violation{OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: g0, OmegaHi: g1})
		}
	}
	// Clusters get their peak polished directly.
	for _, cl := range clusters {
		seed := testPoint(cl.Lo, cl.Hi)
		peakW, peakS := refinePeak(cc.model, cl.Lo, cl.Hi, seed, cc.cache, cc.ws)
		cost.Samples++
		if peakS > cc.limit {
			viols = append(viols, Violation{OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: cl.Lo, OmegaHi: cl.Hi})
		}
	}
	return viols, len(viols) == 0, ""
}
