package passivity

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rational"
)

// This file implements the staged certification pipeline: a chain of
// Certifier stages that together turn "no violation was sampled" into "no
// violation exists". The fast characterizers (sweep, adaptive) can step
// over a residual band — the ROADMAP's σ = 1.0000014 false pass — because
// they only ever sample σ(ω). The pipeline instead partitions the whole
// frequency axis [0, ∞) into intervals and retires each one with a
// rigorous certificate, escalating from cheap to exact:
//
//	tail-bound              closed-form interval bound, no σ evaluations
//	hamiltonian             full imaginary-eigenvalue test (small N = 2nP)
//	hamiltonian-restricted  level-γ eigentest on a reduced model built from
//	                        the poles that matter inside one interval
//	hamiltonian-probe       targeted inverse iteration near jω (huge N;
//	                        best-effort detector, not a certificate)
//
// Stage names are recorded in the Certificate so reports and the CLI can
// say which stage settled the verdict and at what cost.

// Stage names recorded in Certificate.Stage and StageCost.Stage.
const (
	// StageTailBound is the closed-form per-interval pole-tail bound.
	StageTailBound = "tail-bound"
	// StageLipschitz is the σ-anchored certified sweep (derivative-bounded
	// midpoint samples).
	StageLipschitz = "lipschitz"
	// StageHamiltonian is the full imaginary-eigenvalue test.
	StageHamiltonian = "hamiltonian"
	// StageRestricted is the level-γ eigentest on per-interval reduced models.
	StageRestricted = "hamiltonian-restricted"
	// StageProbe is the targeted (shift-and-invert) eigenvalue probe.
	StageProbe = "hamiltonian-probe"
	// StageCounter (declared in counter.go) is the terminal contour-integral
	// eigenvalue counter.
)

// CertInterval is one frequency interval [Lo, Hi] (rad/s) the pipeline
// still has to resolve. Lo may be 0 and Hi may be +Inf.
type CertInterval struct {
	Lo, Hi float64
}

// StageCost records what one pipeline stage did and what it spent.
type StageCost struct {
	Stage      string
	Certified  int    // intervals this stage certified passive
	Violations int    // violations this stage proved on the full model
	EigenDim   int    // largest eigenproblem dimension solved (0 = none)
	Samples    int    // direct σ(ω) evaluations spent (peak polishing excluded)
	Nodes      int    // contour-quadrature determinant evaluations (counter stage)
	Backend    string // kernel backend the stage ran (or declined) on: BackendStructured/BackendDense ("" = no kernel involved)
	DimGate    int    // effective dimension gate the stage enforced (0 = ungated)
	Declined   int    // open intervals the stage declined at its dimension gate
	Note       string // non-fatal diagnostics (e.g. an eigensolve that bailed)
}

// Certificate is the outcome of the certification pipeline. Certified
// reports that every interval of the axis partition carries a rigorous
// certificate; when it is false with no Violations, the Open intervals
// exhausted the rigorous stages — an interval can outgrow the restricted
// stage's reduction capacity (RestrictedMaxDim, or a headroom too thin to
// budget the far-pole truncation) even below the probe dimension cap —
// and the verdict is best-effort.
type Certificate struct {
	Certified  bool
	Stage      string // stage that settled the verdict (certified or found the violations)
	Violations []Violation
	Stages     []StageCost
	EigenDim   int            // largest eigenproblem dimension solved overall
	Intervals  int            // intervals in the initial axis partition
	Open       []CertInterval // intervals no rigorous stage could retire
}

// CertifyOptions tunes the certification pipeline. The zero value selects
// the defaults.
type CertifyOptions struct {
	// MaxDim is the largest Hamiltonian dimension N = 2·n·P certified by
	// the full eigentest (default 600). Beyond it the pipeline switches to
	// restricted-band certification. The gate deliberately stays at the
	// dense-QR frontier: the full eigentest needs the complete spectrum,
	// which the structured determinant/solve kernels do not accelerate —
	// the counter and probe gates are the ones they lift.
	MaxDim int
	// RestrictedMaxDim caps the per-interval reduced eigenproblem dimension
	// 2·n_near·P (default 1200).
	RestrictedMaxDim int
	// ProbeMaxDim caps the targeted-probe stage's matrix dimension
	// (default 60000: the structured shift-and-invert path costs O(N·p²)
	// per query; 6000 was the dense-LU ceiling). Intervals left open beyond
	// it stay uncertified.
	ProbeMaxDim int
	// TailMaxIntervals bounds the tail-bound stage's subdivision work
	// (default 4096 interval evaluations).
	TailMaxIntervals int
	// TailBudget is the fraction of the passivity headroom (limit − σmax(D))
	// the restricted stage may allocate to truncated far-pole tails
	// (default 0.25). Smaller values keep more poles in the reduced models.
	TailBudget float64
	// SweepMaxSamples caps the σ evaluations of the Lipschitz certified
	// sweep (default 20000; they route through the run's EvalCache).
	SweepMaxSamples int
	// CounterMaxNodes caps the determinant evaluations the terminal
	// contour-counter stage spends per certification run (default 250000).
	// One node is an O(N·p²) structured factorization — cheap enough that
	// the sharper structured proximity alarm, which bisects harder near
	// eigenvalue clusters than the dense LU min-pivot did, is worth paying
	// for (the old dense-LU default was 50000). Intervals whose quadrature
	// exhausts the budget stay open with a Note.
	CounterMaxNodes int
	// CounterMaxDim caps the Hamiltonian dimension N = 2·n·P the counter
	// stage will walk contours around (default 6000). The structured
	// diagonal-plus-low-rank kernel prices one quadrature node at O(N·p²)
	// with p = 2·ports — the dense O(N³) complex LU that pinned the old
	// default at 600 survives only behind ForceDenseKernels — so the gate
	// now tracks node affordability, not factorization cost. Larger models
	// keep their unsettled intervals open with a Note and a Declined count.
	CounterMaxDim int
	// ForceDenseKernels routes the counter and probe stages through the
	// dense O(N³) kernels even when structured factors are available. It is
	// a debugging/oracle knob — the dense path is the reference the
	// structured kernels are cross-validated against — and its users own
	// the cost: the dimension gates are NOT lowered to dense-affordable
	// values automatically.
	ForceDenseKernels bool
}

func (o *CertifyOptions) defaults() {
	if o.MaxDim <= 0 {
		o.MaxDim = 600
	}
	if o.RestrictedMaxDim <= 0 {
		o.RestrictedMaxDim = 1200
	}
	if o.ProbeMaxDim <= 0 {
		o.ProbeMaxDim = 60000
	}
	if o.TailMaxIntervals <= 0 {
		o.TailMaxIntervals = 4096
	}
	if o.TailBudget <= 0 || o.TailBudget >= 1 {
		o.TailBudget = 0.25
	}
	if o.SweepMaxSamples <= 0 {
		o.SweepMaxSamples = 20000
	}
	if o.CounterMaxNodes <= 0 {
		o.CounterMaxNodes = 250000
	}
	if o.CounterMaxDim <= 0 {
		o.CounterMaxDim = 6000
	}
}

// certContext carries the per-run state every stage shares: the model, its
// pole features (index-aligned with model.Poles), the passivity limit, and
// the evaluation machinery (cache + workspaces) of the surrounding check
// or enforcement run.
type certContext struct {
	model  *rational.Model
	feats  []poleFeature // index-aligned, NOT sorted
	dSigma float64
	limit  float64
	relTol float64 // width floor of the subdividing stages
	copts  CertifyOptions
	cache  *EvalCache      // full-model σ evaluations (may be nil)
	ws     *checkWorkspace // full-model workspace
	redWS  checkWorkspace  // reduced-model scratch (never touches the cache)
	scan   *boundScanner   // resonance-sorted outward bound evaluator
}

// Certifier is one composable stage of the certification pipeline. The
// interface is sealed (stages share internal evaluation state); compose
// the built-in stages with NewPipeline or use DefaultPipeline.
type Certifier interface {
	// Name identifies the stage in certificates, reports and CLI output.
	Name() string
	// certify examines the open intervals and returns the ones it could not
	// retire, the violations it proved on the full model, and its cost.
	certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error)
}

// Pipeline is an ordered Certifier chain; each stage sees only the
// intervals earlier stages left open, and the run stops at the first stage
// that proves a violation (enforcement re-enters anyway) or empties the
// open set.
type Pipeline struct {
	Stages []Certifier
}

// NewPipeline chains the given stages in order.
func NewPipeline(stages ...Certifier) *Pipeline { return &Pipeline{Stages: stages} }

// TailBoundCertifier returns the closed-form interval-bound stage.
func TailBoundCertifier() Certifier { return tailStage{} }

// LipschitzCertifier returns the σ-anchored certified-sweep stage.
func LipschitzCertifier() Certifier { return lipschitzStage{} }

// HamiltonianCertifier returns the full imaginary-eigenvalue stage.
func HamiltonianCertifier() Certifier { return fullStage{} }

// RestrictedHamiltonianCertifier returns the per-interval reduced-model
// level-γ eigentest stage.
func RestrictedHamiltonianCertifier() Certifier { return restrictedStage{} }

// ProbeCertifier returns the targeted inverse-iteration stage (best-effort
// detector for models beyond the restricted stage).
func ProbeCertifier() Certifier { return probeStage{} }

// DefaultPipeline builds the stage chain for the model's size: the
// closed-form tail bound first always; then the full eigentest when
// N = 2·n·P fits MaxDim (cheap and exact in one shot), or — beyond it —
// the Lipschitz certified sweep (which exploits the residue phase
// cancellation the magnitude bounds cannot see) with the restricted
// eigentest and the targeted probe picking up the near-boundary slivers
// the sweep leaves open. Both chains end with the contour-integral counter
// stage, which rigorously retires whatever survives — every certificate
// finishes with Open == nil unless the quadrature itself reports a stall.
func DefaultPipeline(model *rational.Model, copts CertifyOptions) *Pipeline {
	copts.defaults()
	n := 2 * model.NumPoles() * model.Ports()
	if n <= copts.MaxDim {
		return NewPipeline(TailBoundCertifier(), HamiltonianCertifier(), CounterCertifier())
	}
	return NewPipeline(TailBoundCertifier(), LipschitzCertifier(), RestrictedHamiltonianCertifier(), ProbeCertifier(), CounterCertifier())
}

// Certify runs the default certification pipeline over the whole frequency
// axis. opts supplies the passivity tolerance and the evaluation cache/
// workspaces of the surrounding run (both optional); copts tunes the
// pipeline. The zero value of both option structs works.
func Certify(model *rational.Model, opts CheckOptions, copts CertifyOptions) (*Certificate, error) {
	copts.defaults()
	return DefaultPipeline(model, copts).Run(model, opts, copts)
}

// Run executes the pipeline. See Certify.
func (p *Pipeline) Run(model *rational.Model, opts CheckOptions, copts CertifyOptions) (*Certificate, error) {
	opts.defaults(model)
	copts.defaults()
	cc := &certContext{
		model:  model,
		dSigma: mat.MaxSingularValue(mat.RealToComplex(model.D)),
		limit:  1 + opts.Tol,
		relTol: opts.AdaptiveRelTol,
		copts:  copts,
		cache:  opts.Cache,
		ws:     opts.work.get(0),
	}
	if cc.dSigma > cc.limit {
		return nil, fmt.Errorf("%w (σmax(D)=%g)", ErrAsymptoticViolation, cc.dSigma)
	}
	cc.feats = make([]poleFeature, 0, len(model.Poles))
	for k := range model.Poles {
		cc.feats = append(cc.feats, poleFeatureOf(model, k, cc.ws))
	}
	sorted := append([]poleFeature(nil), cc.feats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].wr < sorted[b].wr })
	cc.scan = newBoundScanner(sorted)

	open := axisPartition(model)
	cert := &Certificate{Intervals: len(open), Stage: StageTailBound}
	for _, st := range p.Stages {
		if len(open) == 0 {
			break
		}
		// Stages can be eigensolve-heavy; the pipeline is cancellable at
		// stage granularity.
		if err := ctxErr(opts.Ctx); err != nil {
			return nil, err
		}
		rem, viols, cost, err := st.certify(cc, open)
		if err != nil {
			return nil, err
		}
		cert.Stages = append(cert.Stages, cost)
		opts.emit(ProgressEvent{
			Kind:     ProgressCertStage,
			Stage:    st.Name(),
			Samples:  cost.Samples,
			Nodes:    cost.Nodes,
			Backend:  cost.Backend,
			Declined: cost.Declined,
		})
		if cost.EigenDim > cert.EigenDim {
			cert.EigenDim = cost.EigenDim
		}
		if len(viols) > 0 {
			cert.Violations = append(cert.Violations, viols...)
			cert.Stage = st.Name()
			return cert, nil
		}
		if len(rem) < len(open) || len(rem) == 0 {
			cert.Stage = st.Name()
		}
		open = rem
	}
	cert.Open = open
	cert.Certified = len(open) == 0
	return cert, nil
}

// axisPartition splits [0, ∞) at the model's pole resonances: inside one
// cell the per-pole distance terms of the tail bound are monotone or
// convex, which is what makes the closed-form interval bound sharp.
func axisPartition(model *rational.Model) []CertInterval {
	var brk []float64
	for _, p := range model.Poles {
		wr := math.Abs(imag(p))
		if wr == 0 {
			wr = math.Abs(real(p))
		}
		if wr > 0 {
			brk = append(brk, wr)
		}
	}
	sortFloats(brk)
	brk = dedupeSorted(brk)
	out := make([]CertInterval, 0, len(brk)+1)
	lo := 0.0
	for _, w := range brk {
		out = append(out, CertInterval{Lo: lo, Hi: w})
		lo = w
	}
	out = append(out, CertInterval{Lo: lo, Hi: math.Inf(1)})
	return out
}

// boundScanner evaluates the closed-form interval bounds over a
// resonance-sorted pole feature list, scanning outward from the interval
// so both bounds exit early: upward once the partial sum crosses the cap
// (cannot certify), downward once the partial plus a rigorous bound on the
// not-yet-visited pole mass drops below it (certifies without touching the
// far poles). Shared by the adaptive characterizer and the certification
// pipeline.
type boundScanner struct {
	feats []poleFeature // sorted ascending by wr
	wrs   []float64     // feats[i].wr
	pre   []float64     // pre[i] = Σ_{j<i} ‖R_j‖₂
}

// newBoundScanner builds the scanner; feats must be sorted ascending by
// resonance frequency (the slice is retained, not copied).
func newBoundScanner(feats []poleFeature) *boundScanner {
	s := &boundScanner{
		feats: feats,
		wrs:   make([]float64, len(feats)),
		pre:   make([]float64, len(feats)+1),
	}
	for i, f := range feats {
		s.wrs[i] = f.wr
		s.pre[i+1] = s.pre[i] + f.rnorm
	}
	return s
}

// tailBound bounds σ(S(jω)) over [w0, w1]:
//
//	σ(S(jω)) ≤ σ(D) + Σ_k ‖R_k‖₂/|jω − p_k| ≤ σ(D) + Σ_k ‖R_k‖₂/√(γ_k² + d_k(ω)²)
//
// and tightens the plain per-term bound by accounting for pole-pair
// interactions: a term whose resonance keeps at least γ_k distance from
// the whole interval is convex there, so the SUM of all such far terms
// attains its maximum at an interval endpoint — two poles on opposite
// sides of the interval cannot both attain their per-term suprema at the
// same frequency, which is exactly the slack the plain bound wastes (and
// what let medium-Q pole clusters with collectively violating tails evade
// certification). Near terms (resonance inside or within γ_k of the
// interval) fall back to their per-term suprema. The result is never
// larger than the plain bound when the scan runs to completion; with a
// finite limit it exits early in either direction and callers must only
// use the comparison against limit.
func (s *boundScanner) tailBound(dSigma, limit, w0, w1 float64) float64 {
	n := len(s.feats)
	sumLo, sumHi := dSigma, dSigma
	near := 0.0
	add := func(f *poleFeature, d float64) {
		if d >= f.gamma {
			// Far: convex over the interval, evaluate at both endpoints.
			dLo := w0 - f.wr
			sumLo += f.rnorm / math.Sqrt(f.gamma*f.gamma+dLo*dLo)
			if !math.IsInf(w1, 1) {
				dHi := w1 - f.wr
				sumHi += f.rnorm / math.Sqrt(f.gamma*f.gamma+dHi*dHi)
			}
		} else {
			near += f.rnorm / math.Sqrt(f.gamma*f.gamma+d*d)
		}
	}
	lo := sort.SearchFloat64s(s.wrs, w0)
	r := lo
	for r < n && s.wrs[r] <= w1 {
		add(&s.feats[r], 0)
		r++
		if math.Max(sumLo, sumHi)+near > limit {
			return math.Max(sumLo, sumHi) + near
		}
	}
	l := lo - 1
	for l >= 0 || r < n {
		dl, dr := math.Inf(1), math.Inf(1)
		if l >= 0 {
			dl = w0 - s.wrs[l]
		}
		if r < n {
			dr = s.wrs[r] - w1
		}
		// Everything not yet visited sits at least dl (left) / dr (right)
		// away from the interval, so it adds at most mass/d to either
		// endpoint sum. Only valid as an early exit against a finite limit
		// — the full scan is required for the exact tightened value.
		if !math.IsInf(limit, 1) {
			rem := 0.0
			if l >= 0 {
				rem += s.pre[l+1] / dl
			}
			if r < n {
				rem += (s.pre[n] - s.pre[r]) / dr
			}
			if b := math.Max(sumLo, sumHi) + near + rem; b <= limit {
				return b
			}
		}
		if dl <= dr {
			add(&s.feats[l], dl)
			l--
		} else {
			add(&s.feats[r], dr)
			r++
		}
		if math.Max(sumLo, sumHi)+near > limit {
			break
		}
	}
	return math.Max(sumLo, sumHi) + near
}

// certMidpoint bisects an interval for the tail stage (log axis; linear at
// DC; doubling into an unbounded tail).
func certMidpoint(w0, w1 float64) float64 {
	switch {
	case math.IsInf(w1, 1):
		if w0 > 0 {
			return 2 * w0
		}
		return 1
	case w0 <= 0:
		return w1 / 2
	default:
		return math.Sqrt(w0 * w1)
	}
}

// tailStage retires intervals with the closed-form bound, bisecting the
// ones the bound cannot settle up to a depth and work budget. It performs
// no σ evaluations at all.
type tailStage struct{}

// Name implements Certifier.
func (tailStage) Name() string { return StageTailBound }

// tailMaxDepth bounds the per-interval bisection depth of the tail stage.
// Kept shallow deliberately: inside a dense pole band the magnitude-sum
// bound cannot certify at any depth (it is blind to residue phase
// cancellation), and the σ-anchored Lipschitz sweep retires those regions
// for a fraction of the arithmetic. Depth 3 is enough for the sparse
// outskirts — the DC cell, the unbounded tail, gaps between pole clusters
// — where the bound genuinely wins.
const tailMaxDepth = 3

func (tailStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageTailBound}
	type job struct {
		iv    CertInterval
		depth int
	}
	work := make([]job, 0, len(open))
	for _, iv := range open {
		work = append(work, job{iv: iv})
	}
	budget := cc.copts.TailMaxIntervals
	var rem []CertInterval
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		if budget <= 0 {
			rem = append(rem, j.iv)
			continue
		}
		budget--
		if cc.scan.tailBound(cc.dSigma, cc.limit, j.iv.Lo, j.iv.Hi) <= cc.limit {
			cost.Certified++
			continue
		}
		if j.depth >= tailMaxDepth {
			rem = append(rem, j.iv)
			continue
		}
		mid := certMidpoint(j.iv.Lo, j.iv.Hi)
		if !(mid > j.iv.Lo) || !(mid < j.iv.Hi) {
			rem = append(rem, j.iv)
			continue
		}
		work = append(work,
			job{iv: CertInterval{Lo: mid, Hi: j.iv.Hi}, depth: j.depth + 1},
			job{iv: CertInterval{Lo: j.iv.Lo, Hi: mid}, depth: j.depth + 1},
		)
	}
	return coalesce(rem), nil, cost, nil
}

// coalesce sorts disjoint intervals and merges the adjacent ones so the
// eigenvalue stages solve one problem per violation neighbourhood instead
// of one per bisection leaf.
func coalesce(ivs []CertInterval) []CertInterval {
	if len(ivs) <= 1 {
		return ivs
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].Lo < ivs[b].Lo })
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi*(1+1e-12) {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// lipschitzStage is the σ-anchored certified sweep: for an interval of
// half-width h around a sampled midpoint, the spectral-norm triangle
// inequality gives the rigorous bound
//
//	σ(S(jω)) ≤ σ(S(jω_mid)) + L·h,  L = Σ_k ‖R_k‖₂ / (γ_k² + d_k²)
//
// (the direct coupling cancels in the difference; d_k is the distance from
// the interval to pole k's resonance). Unlike the magnitude tail bound,
// the anchor is a true σ sample, so the certificate inherits the residue
// phase cancellation that keeps real models far below the worst-case sum —
// this is the stage that retires the bulk of a large passive model's pole
// band. Intervals still open at the width floor are exactly the
// near-boundary slivers the eigenvalue stages are built for; a midpoint
// sampled above the limit is already an exact violation.
type lipschitzStage struct{}

// Name implements Certifier.
func (lipschitzStage) Name() string { return StageLipschitz }

// lipJob is one certified-sweep work item: an interval with its endpoint
// σ samples, so a bisection adds exactly one new evaluation (the midpoint,
// shared by both children).
type lipJob struct {
	lo, hi   float64
	slo, shi float64
}

func (lipschitzStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageLipschitz}
	budget := cc.copts.SweepMaxSamples
	sample := func(w float64) float64 {
		// A resident σ is free: only genuine evaluations are charged
		// against the budget and reported as stage cost.
		if cc.cache != nil {
			if s, ok := cc.cache.sigmaFor(w); ok {
				cc.cache.SigmaHits++
				return s
			}
		}
		cost.Samples++
		budget--
		return cachedSigma(cc.model, w, cc.cache, cc.ws)
	}
	// Anchor the sweep at every frequency the surrounding run has already
	// paid for: inside Enforce the adaptive sweeps populated the cache's σ
	// layer exactly where the response does something interesting, and a
	// cached anchor costs nothing.
	anchors := cc.cache.sigmaFreqsSorted()
	var work []lipJob
	var rem []CertInterval
	var viols []Violation
	for _, iv := range open {
		if math.IsInf(iv.Hi, 1) {
			// Unbounded intervals carry no finite half-width; the tail
			// bound owns them and anything it left goes to the eigenvalue
			// stages.
			rem = append(rem, iv)
			continue
		}
		lo := iv.Lo
		slo := sample(lo)
		first := sort.SearchFloat64s(anchors, lo)
		for i := first; i < len(anchors) && anchors[i] < iv.Hi; i++ {
			w := anchors[i]
			if w <= lo*(1+1e-12) {
				continue
			}
			// Usually resident (a free anchor, not charged against the
			// budget) — but the sampling below can LRU-evict a snapshotted
			// anchor before we consume it, and an evicted anchor must be
			// re-evaluated, never trusted as σ=0.
			sw, ok := cc.cache.sigmaFor(w)
			if !ok {
				sw = sample(w)
			}
			work = append(work, lipJob{lo: lo, hi: w, slo: slo, shi: sw})
			lo, slo = w, sw
		}
		work = append(work, lipJob{lo: lo, hi: iv.Hi, slo: slo, shi: sample(iv.Hi)})
	}
	for len(work) > 0 {
		j := work[len(work)-1]
		work = work[:len(work)-1]
		if j.slo > cc.limit || j.shi > cc.limit {
			seed := j.lo
			if j.shi > j.slo {
				seed = j.hi
			}
			peakW, peakS := refinePeak(cc.model, j.lo, j.hi, seed, cc.cache, cc.ws)
			viols = append(viols, Violation{OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: j.lo, OmegaHi: j.hi})
			continue
		}
		if budget <= 0 {
			rem = append(rem, CertInterval{Lo: j.lo, Hi: j.hi})
			continue
		}
		// Two Lipschitz cones from the endpoint anchors meet at
		// avg(σlo, σhi) + L·h; the L sum exits early in both directions —
		// the comparison is all that matters.
		h := (j.hi - j.lo) / 2
		needed := (cc.limit - (j.slo+j.shi)/2) / h
		if needed > 0 && cc.scan.lipschitz(j.lo, j.hi, needed) <= needed {
			cost.Certified++
			continue
		}
		if j.hi-j.lo <= cc.relTol*j.hi {
			rem = append(rem, CertInterval{Lo: j.lo, Hi: j.hi})
			continue
		}
		mid := (j.lo + j.hi) / 2
		sm := sample(mid)
		work = append(work,
			lipJob{lo: mid, hi: j.hi, slo: sm, shi: j.shi},
			lipJob{lo: j.lo, hi: mid, slo: j.slo, shi: sm},
		)
	}
	cost.Violations = len(viols)
	return coalesce(rem), viols, cost, nil
}

// lipschitz sums the per-pole derivative bound terms Σ ‖R‖/(γ²+d²) over
// [w0, w1], visiting poles outward from the interval in resonance order.
// It exits early in BOTH directions: once the partial sum exceeds the cap
// (cannot certify), or once the partial plus a rigorous bound on
// everything not yet visited — remaining ‖R‖ mass over the squared
// outermost distance — drops below it (certifies without touching the far
// poles). Either way the scan only pays for the pole neighbourhood that
// matters, instead of O(n) per interval.
func (s *boundScanner) lipschitz(w0, w1, cap float64) float64 {
	wrs, feats, pre := s.wrs, s.feats, s.pre
	n := len(feats)
	sum := 0.0
	// Poles resonating inside the interval: distance 0, summed exactly.
	lo := sort.SearchFloat64s(wrs, w0)
	r := lo
	for r < n && wrs[r] <= w1 {
		f := &feats[r]
		sum += f.rnorm / (f.gamma * f.gamma)
		r++
		if sum > cap {
			return sum
		}
	}
	// Outward scan, nearer side first.
	l := lo - 1
	for l >= 0 || r < n {
		dl, dr := math.Inf(1), math.Inf(1)
		if l >= 0 {
			dl = w0 - wrs[l]
		}
		if r < n {
			dr = wrs[r] - w1
		}
		rem := 0.0
		if l >= 0 && dl > 0 {
			rem += pre[l+1] / (dl * dl)
		} else if l >= 0 {
			rem = math.Inf(1)
		}
		if r < n && dr > 0 {
			rem += (pre[n] - pre[r]) / (dr * dr)
		} else if r < n && dr <= 0 {
			rem = math.Inf(1)
		}
		if sum+rem <= cap {
			return sum + rem
		}
		if dl <= dr {
			f := &feats[l]
			sum += f.rnorm / (f.gamma*f.gamma + dl*dl)
			l--
		} else {
			f := &feats[r]
			sum += f.rnorm / (f.gamma*f.gamma + dr*dr)
			r++
		}
		if sum > cap {
			return sum
		}
	}
	return sum
}

// fullStage certifies the entire axis with the exact Hamiltonian
// imaginary-eigenvalue test, resolving every open interval at once.
type fullStage struct{}

// Name implements Certifier.
func (fullStage) Name() string { return StageHamiltonian }

func (fullStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageHamiltonian, EigenDim: 2 * cc.model.NumPoles() * cc.model.Ports(), Backend: BackendDense, DimGate: cc.copts.MaxDim}
	crossings, err := HamiltonianCrossings(cc.model)
	if err != nil {
		// Numerical failure: pass the intervals on instead of aborting the
		// pipeline (the probe stage may still settle them).
		cost.Note = err.Error()
		cost.EigenDim = 0
		return open, nil, cost, nil
	}
	edges := append([]float64{0}, crossings...)
	edges = append(edges, math.Inf(1))
	var viols []Violation
	for i := 0; i+1 < len(edges); i++ {
		lo, hi := edges[i], edges[i+1]
		test := testPoint(lo, hi)
		sv := cachedSigma(cc.model, test, cc.cache, cc.ws)
		cost.Samples++
		if sv > cc.limit {
			peakW, peakS := refinePeak(cc.model, lo, hi, test, cc.cache, cc.ws)
			viols = append(viols, Violation{
				OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: lo, OmegaHi: hi,
			})
		}
	}
	if len(viols) > 0 {
		cost.Violations = len(viols)
		return open, viols, cost, nil
	}
	cost.Certified = len(open)
	return nil, nil, cost, nil
}

// restrictedStage certifies each open interval with a level-γ eigentest on
// a reduced model: the poles whose tails matter inside the interval keep
// their residues, the rest are truncated and their collective contribution
// ε charged against the level (γ = limit − ε). The reduced eigenproblem is
// 2·n_near·P — tiny when violations are local, which is exactly the regime
// the tail bound leaves open.
type restrictedStage struct{}

// Name implements Certifier.
func (restrictedStage) Name() string { return StageRestricted }

func (restrictedStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageRestricted, Backend: BackendDense, DimGate: cc.copts.RestrictedMaxDim}
	var rem []CertInterval
	var viols []Violation
	for _, iv := range open {
		ok, vs, err := certifyRestricted(cc, iv, &cost)
		if err != nil {
			return nil, nil, cost, err
		}
		if len(vs) > 0 {
			viols = append(viols, vs...)
			continue
		}
		if ok {
			cost.Certified++
		} else {
			rem = append(rem, iv)
		}
	}
	cost.Violations = len(viols)
	return rem, viols, cost, nil
}

// poleUnit is a conjugate-closed residue unit (one real pole or one
// conjugate pair) with its worst-case tail contribution over an interval.
type poleUnit struct {
	k0, k1  int // pole indices; k1 = -1 for a real pole
	contrib float64
}

// intervalUnits builds the conjugate-closed units with their per-term
// supremum contributions over [w0, w1], sorted by contribution descending
// (index ascending on ties, keeping the selection deterministic).
func intervalUnits(cc *certContext, w0, w1 float64) []poleUnit {
	var units []poleUnit
	term := func(k int) float64 {
		f := &cc.feats[k]
		d := 0.0
		if f.wr < w0 {
			d = w0 - f.wr
		} else if f.wr > w1 {
			d = f.wr - w1
		}
		return f.rnorm / math.Sqrt(f.gamma*f.gamma+d*d)
	}
	for k := 0; k < len(cc.model.Poles); {
		if imag(cc.model.Poles[k]) != 0 && k+1 < len(cc.model.Poles) {
			units = append(units, poleUnit{k0: k, k1: k + 1, contrib: term(k) + term(k+1)})
			k += 2
		} else {
			units = append(units, poleUnit{k0: k, k1: -1, contrib: term(k)})
			k++
		}
	}
	sort.Slice(units, func(a, b int) bool {
		if units[a].contrib != units[b].contrib {
			return units[a].contrib > units[b].contrib
		}
		return units[a].k0 < units[b].k0
	})
	return units
}

// certifyRestricted retires one interval: returns (certified, violations).
// An ambiguous outcome (false, nil) leaves the interval open for the next
// stage.
func certifyRestricted(cc *certContext, iv CertInterval, cost *StageCost) (bool, []Violation, error) {
	headroom := cc.limit - cc.dSigma
	if headroom <= 0 {
		return false, nil, nil
	}
	units := intervalUnits(cc, iv.Lo, iv.Hi)
	budget := cc.copts.TailBudget * headroom
	maxNear := cc.copts.RestrictedMaxDim / (2 * cc.model.Ports())
	// Two attempts: the nominal far budget, then half of it (twice the
	// poles) when the nominal reduction is too coarse to settle the band.
	for attempt := 0; attempt < 2; attempt++ {
		certified, vs, fits, err := tryRestricted(cc, iv, units, budget/float64(attempt+1), maxNear, cost)
		if err != nil {
			return false, nil, err
		}
		if certified || len(vs) > 0 {
			return certified, vs, nil
		}
		if !fits {
			return false, nil, nil
		}
	}
	return false, nil, nil
}

// tryRestricted runs one reduced-model level test. fits=false reports that
// the budget could not be met within RestrictedMaxDim at all.
func tryRestricted(cc *certContext, iv CertInterval, units []poleUnit, budget float64, maxNear int, cost *StageCost) (certified bool, viols []Violation, fits bool, err error) {
	farSum := 0.0
	for _, u := range units {
		farSum += u.contrib
	}
	nearPoles := 0
	nNear := 0
	for nNear < len(units) && farSum > budget {
		u := units[nNear]
		width := 1
		if u.k1 >= 0 {
			width = 2
		}
		if nearPoles+width > maxNear {
			return false, nil, false, nil
		}
		farSum -= u.contrib
		nearPoles += width
		nNear++
	}
	gamma := cc.limit - farSum
	if gamma <= cc.dSigma*(1+1e-9) || nNear == 0 {
		return false, nil, false, nil
	}
	// Assemble the reduced model in original pole order (preserving the
	// conjugate-pair adjacency rational.New validates).
	idx := make([]int, 0, nearPoles)
	for _, u := range units[:nNear] {
		idx = append(idx, u.k0)
		if u.k1 >= 0 {
			idx = append(idx, u.k1)
		}
	}
	sort.Ints(idx)
	poles := make([]complex128, len(idx))
	residues := make([]*mat.CMatrix, len(idx))
	for i, k := range idx {
		poles[i] = cc.model.Poles[k]
		residues[i] = cc.model.Residues[k]
	}
	reduced, rerr := rational.New(poles, residues, cc.model.D)
	if rerr != nil {
		return false, nil, false, fmt.Errorf("passivity: restricted certification: %w", rerr)
	}
	dim := 2 * len(idx) * cc.model.Ports()
	if dim > cost.EigenDim {
		cost.EigenDim = dim
	}
	crossings, herr := HamiltonianCrossingsLevel(reduced, gamma)
	if herr != nil {
		cost.Note = herr.Error()
		return false, nil, true, nil
	}
	inside := crossings[:0:0]
	for _, w := range crossings {
		if w >= iv.Lo*(1-1e-9) && w <= iv.Hi*(1+1e-9) {
			inside = append(inside, w)
		}
	}
	if len(inside) == 0 {
		// The reduced σ never meets the level inside the interval: one spot
		// sample decides on which side it sits throughout.
		test := testPoint(iv.Lo, iv.Hi)
		sr := cc.redWS.sigmaAt(reduced, test)
		cost.Samples++
		if sr <= gamma {
			return true, nil, true, nil
		}
		// Reduced response sits above the level across the whole interval;
		// check the full model directly.
		sv := cachedSigma(cc.model, test, cc.cache, cc.ws)
		cost.Samples++
		if sv > cc.limit {
			peakW, peakS := refinePeak(cc.model, iv.Lo, iv.Hi, test, cc.cache, cc.ws)
			return false, []Violation{{OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: iv.Lo, OmegaHi: iv.Hi}}, true, nil
		}
		return false, nil, true, nil
	}
	// Candidate sub-bands between level crossings: confirm on the full model.
	edges := append([]float64{iv.Lo}, inside...)
	edges = append(edges, iv.Hi)
	for i := 0; i+1 < len(edges); i++ {
		lo, hi := edges[i], edges[i+1]
		test := testPoint(lo, hi)
		sv := cachedSigma(cc.model, test, cc.cache, cc.ws)
		cost.Samples++
		if sv > cc.limit {
			peakW, peakS := refinePeak(cc.model, lo, hi, test, cc.cache, cc.ws)
			viols = append(viols, Violation{OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: lo, OmegaHi: hi})
		}
	}
	if len(viols) > 0 {
		return false, viols, true, nil
	}
	// Level crossings without a confirmed full-model violation: ambiguous
	// (the far-tail allocation was too coarse) — caller retries tighter.
	return false, nil, true, nil
}

// probeStage hunts imaginary Hamiltonian eigenvalues near each open
// interval by shift-and-invert iteration (mat.ImagEigenProbe): M² is
// formed once, then each interval costs one LU. A confirmed hit is an
// exact violation (full-model σ evidence); a miss does NOT certify — the
// stage is the best-effort frontier past the dense eigensolve.
type probeStage struct{}

// Name implements Certifier.
func (probeStage) Name() string { return StageProbe }

func (probeStage) certify(cc *certContext, open []CertInterval) ([]CertInterval, []Violation, StageCost, error) {
	cost := StageCost{Stage: StageProbe, DimGate: cc.copts.ProbeMaxDim, Note: "best-effort: a miss does not certify"}
	if len(open) == 0 {
		return open, nil, cost, nil
	}
	n := 2 * cc.model.NumPoles() * cc.model.Ports()
	cost.Backend = BackendStructured
	if cc.copts.ForceDenseKernels {
		cost.Backend = BackendDense
	}
	if n > cc.copts.ProbeMaxDim {
		cost.Declined = len(open)
		return open, nil, cost, nil
	}
	var probe *mat.ImagEigenProbe
	if cc.copts.ForceDenseKernels {
		sys := cc.model.Realization()
		h, err := HamiltonianMatrix(sys.A, sys.B, sys.C, sys.D)
		if err != nil {
			cost.Note = err.Error()
			return open, nil, cost, nil
		}
		probe = mat.NewImagEigenProbe(h)
	} else {
		s, err := HamiltonianFactorsLevel(cc.model, 1)
		if err != nil {
			cost.Note = err.Error()
			return open, nil, cost, nil
		}
		probe = mat.NewStructuredImagEigenProbe(s)
	}
	cost.EigenDim = n
	var viols []Violation
	var confirmed []float64
	// probeMaxTargets is a GLOBAL cap on shift-and-invert solves — each is
	// an O(N³)-class LU — shared across the open intervals, not a
	// per-interval floor that could multiply past the bound.
	remaining := probeMaxTargets
	perInterval := max(1, probeMaxTargets/len(open))
	for _, iv := range open {
		if remaining <= 0 {
			break
		}
		targets := probeTargets(cc, iv, min(perInterval, remaining))
		remaining -= len(targets)
		for _, target := range targets {
			cand, perr := probe.Candidates(target, 0)
			if perr != nil {
				continue
			}
			for _, w := range cand {
				if w <= 0 {
					continue
				}
				dup := false
				for _, c := range confirmed {
					if math.Abs(w-c) <= 1e-6*c {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				// Confirm on the full model over a bracket scaled to the
				// local pole half-width: the candidate sits within ~γ of the
				// true crossing, and a band this narrow would drown inside a
				// wide golden-section bracket.
				h := math.Max(10*nearestGamma(cc.feats, w), 1e-6*w)
				lo, hi := w-h, w+h
				if lo <= 0 {
					lo = w / 2
				}
				// Confirmation is pure peak polishing, which StageCost.
				// Samples excludes by convention.
				peakW, peakS := refinePeak(cc.model, lo, hi, w, cc.cache, cc.ws)
				if peakS > cc.limit {
					confirmed = append(confirmed, w)
					viols = append(viols, Violation{
						OmegaPeak: peakW, SigmaPeak: peakS,
						OmegaLo: math.Min(w, peakW) * (1 - 1e-3), OmegaHi: math.Max(w, peakW) * (1 + 1e-3),
					})
				}
			}
		}
	}
	cost.Violations = len(viols)
	return open, viols, cost, nil
}

// probeMaxTargets bounds the total shift-and-invert solves of one probe
// stage run (each costs one LU of the N-dimensional M² + ω²I).
const probeMaxTargets = 32

// nearestGamma returns the half-width of the pole whose resonance lies
// closest to ω (1e-6·ω when the model has no features).
func nearestGamma(feats []poleFeature, w float64) float64 {
	best, gamma := math.Inf(1), 1e-6*w
	for i := range feats {
		if d := math.Abs(feats[i].wr - w); d < best {
			best, gamma = d, feats[i].gamma
		}
	}
	return gamma
}

// probeTargets picks the shift frequencies for one open interval: the pole
// resonances inside it — σ maxima, and hence imaginary Hamiltonian
// eigenvalues, cluster around them — thinned evenly to the cap, with the
// interval midpoint as the fallback when no resonance lies inside.
func probeTargets(cc *certContext, iv CertInterval, cap int) []float64 {
	var ts []float64
	for i := range cc.feats {
		wr := cc.feats[i].wr
		if wr > iv.Lo && (math.IsInf(iv.Hi, 1) || wr < iv.Hi) {
			ts = append(ts, wr)
		}
	}
	sortFloats(ts)
	ts = dedupeSorted(ts)
	if len(ts) == 0 {
		return []float64{certMidpoint(iv.Lo, iv.Hi)}
	}
	if len(ts) > cap {
		thin := make([]float64, 0, cap)
		for i := 0; i < cap; i++ {
			thin = append(thin, ts[i*len(ts)/cap])
		}
		ts = thin
	}
	return ts
}
