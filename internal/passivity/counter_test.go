package passivity

import (
	"encoding/json"
	"math"
	"os"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
)

// counterModelJSON is the golden-fixture encoding of a rational model:
// complex numbers as [re, im] pairs, residue matrices flattened row-major.
type counterModelJSON struct {
	Poles    [][2]float64   `json:"poles"`
	Residues [][][2]float64 `json:"residues"`
	D        [][]float64    `json:"d"`
}

// loadModelFixture reads a rational model from a testdata JSON file.
func loadModelFixture(t *testing.T, path string) *rational.Model {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	var mj counterModelJSON
	if err := json.Unmarshal(b, &mj); err != nil {
		t.Fatalf("decode fixture: %v", err)
	}
	poles := make([]complex128, len(mj.Poles))
	for i, p := range mj.Poles {
		poles[i] = complex(p[0], p[1])
	}
	ports := len(mj.D)
	residues := make([]*mat.CMatrix, len(mj.Residues))
	for k, flat := range mj.Residues {
		r := mat.NewCMatrix(ports, ports)
		for i := 0; i < ports; i++ {
			for j := 0; j < ports; j++ {
				v := flat[i*ports+j]
				r.Set(i, j, complex(v[0], v[1]))
			}
		}
		residues[k] = r
	}
	d := mat.NewMatrix(ports, ports)
	for i, row := range mj.D {
		for j, v := range row {
			d.Set(i, j, v)
		}
	}
	m, err := rational.New(poles, residues, d)
	if err != nil {
		t.Fatalf("fixture model invalid: %v", err)
	}
	return m
}

// levelEigs returns all eigenvalues of the model's level-γ Hamiltonian via
// the dense solver — the oracle the counter is validated against.
func levelEigs(t *testing.T, model *rational.Model, gamma float64) []complex128 {
	t.Helper()
	sys := model.Realization()
	h, err := HamiltonianMatrixLevel(sys.A, sys.B, sys.C, sys.D, gamma)
	if err != nil {
		t.Fatalf("HamiltonianMatrixLevel: %v", err)
	}
	eigs, err := mat.EigenValues(h)
	if err != nil {
		t.Fatalf("EigenValues: %v", err)
	}
	return eigs
}

// rectCount counts eigenvalues strictly inside the rectangle the counter
// actually walked for segment (lo, hi): half-width delta as reported by
// LastDelta, bottom edge dipped below the axis for DC segments (mirroring
// IntervalCounter.Count).
func rectCount(eigs []complex128, lo, hi, delta float64) int {
	imLo := lo
	if lo == 0 {
		imLo = -delta
	}
	n := 0
	for _, z := range eigs {
		if real(z) > -delta && real(z) < delta && imag(z) > imLo && imag(z) < hi {
			n++
		}
	}
	return n
}

// ambiguous reports whether some eigenvalue sits too close to the counted
// rectangle's boundary for the dense-oracle comparison to be well-posed
// (strictly-inside versus on-the-contour is then a coin flip between the
// two solvers' rounding).
func ambiguous(eigs []complex128, lo, hi, delta float64) bool {
	imLo := lo
	if lo == 0 {
		imLo = -delta
	}
	margin := 1e-6 * (math.Abs(hi) + delta)
	for _, z := range eigs {
		re, im := math.Abs(real(z)), imag(z)
		inBand := im > imLo-margin && im < hi+margin
		if inBand && math.Abs(re-delta) < margin {
			return true
		}
		if re < delta+margin && (math.Abs(im-imLo) < margin || math.Abs(im-hi) < margin) {
			return true
		}
	}
	return false
}

// TestCounterOracle cross-validates IntervalCounter (structured backend)
// against the dense Hamiltonian eigensolve on ≥100 random synthetic models,
// passive and non-passive: for every interval of a crossing-separated
// partition the counter must report exactly the eigenvalues the dense
// solver places in its rectangle, a zero count must imply zero on-axis
// crossings, and on a sampled subset the dense-LU counter backend must
// return the identical integer over the identical rectangle.
func TestCounterOracle(t *testing.T) {
	const gamma = 1 + 1e-9
	models, intervals, skipped, crossChecked := 0, 0, 0, 0
	for seed := int64(0); seed < 160; seed++ {
		peak := 0.12 // passive: one crossing-free interval
		if seed%2 == 0 {
			peak = 0.45 // violating: several crossing-separated intervals
		}
		model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 8, Seed: 7000 + seed, PeakGain: peak})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		eigs := levelEigs(t, model, gamma)
		ic, err := NewIntervalCounter(model, gamma)
		if err != nil {
			t.Fatalf("seed %d: NewIntervalCounter: %v", seed, err)
		}
		if ic.Backend() != BackendStructured {
			t.Fatalf("seed %d: NewIntervalCounter backend %q, want %q", seed, ic.Backend(), BackendStructured)
		}
		var icd *IntervalCounter
		if seed%8 == 0 { // dense cross-check on a sampled subset (O(N³)/node)
			if icd, err = NewIntervalCounterDense(model, gamma); err != nil {
				t.Fatalf("seed %d: NewIntervalCounterDense: %v", seed, err)
			}
		}
		// Partition [0, bound] at midpoints between the on-axis crossings so
		// interval edges stay clear of the eigenvalues.
		var crossings []float64
		scale := 0.0
		for _, z := range eigs {
			if a := math.Hypot(real(z), imag(z)); a > scale {
				scale = a
			}
		}
		tol := 1e-8 * (1 + scale)
		for _, z := range eigs {
			if math.Abs(real(z)) < tol && imag(z) > tol {
				crossings = append(crossings, imag(z))
			}
		}
		sortFloats(crossings)
		edges := []float64{0}
		for i := 0; i+1 < len(crossings); i++ {
			edges = append(edges, math.Sqrt(crossings[i]*crossings[i+1]))
		}
		edges = append(edges, ic.OmegaBound()*1.000001)
		models++
		for i := 0; i+1 < len(edges); i++ {
			lo, hi := edges[i], edges[i+1]
			if hi-lo < 1e-9*hi {
				continue
			}
			got, err := ic.Count(lo, hi)
			if err != nil {
				skipped++
				continue
			}
			delta := ic.LastDelta()
			if ambiguous(eigs, lo, hi, delta) {
				skipped++
				continue
			}
			want := rectCount(eigs, lo, hi, delta)
			if got != want {
				t.Fatalf("seed %d interval [%g, %g] δ=%g: counter %d, dense oracle %d", seed, lo, hi, delta, got, want)
			}
			if icd != nil {
				if gotD, err := icd.Count(lo, hi); err == nil && !ambiguous(eigs, lo, hi, icd.LastDelta()) {
					if wantD := rectCount(eigs, lo, hi, icd.LastDelta()); gotD != wantD {
						t.Fatalf("seed %d interval [%g, %g]: dense backend %d, eigensolve %d", seed, lo, hi, gotD, wantD)
					}
					crossChecked++
				}
			}
			// Soundness anchor: zero count ⇒ no on-axis crossing inside.
			if got == 0 {
				for _, w := range crossings {
					if w > lo && w < hi {
						t.Fatalf("seed %d: zero count on [%g, %g] but crossing at %g", seed, lo, hi, w)
					}
				}
			}
			intervals++
		}
	}
	if models < 100 {
		t.Fatalf("oracle corpus too small: %d models", models)
	}
	if intervals < 300 {
		t.Fatalf("oracle compared only %d intervals (skipped %d)", intervals, skipped)
	}
	if crossChecked < 20 {
		t.Fatalf("dense-backend cross-check covered only %d intervals", crossChecked)
	}
	t.Logf("oracle: %d models, %d intervals agreed (%d dense cross-checks), %d skipped (boundary-ambiguous or stalled)", models, intervals, crossChecked, skipped)
}

// TestCounterRetiresProbeOpenInterval is the regression for the PR 4 gap:
// on the checked-in golden model the probe pipeline (tail → lipschitz →
// restricted → probe, with dimension caps forcing the large-model branch)
// finishes with a non-empty Open set, and appending the counter stage
// retires it — Certified with Open == nil.
func TestCounterRetiresProbeOpenInterval(t *testing.T) {
	model := loadModelFixture(t, "testdata/counter_regression.json")
	copts := CertifyOptions{MaxDim: 2, RestrictedMaxDim: 2}

	before, err := NewPipeline(TailBoundCertifier(), LipschitzCertifier(), RestrictedHamiltonianCertifier(), ProbeCertifier()).
		Run(model, CheckOptions{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	if len(before.Violations) != 0 {
		t.Fatalf("fixture model unexpectedly violating: %+v", before.Violations)
	}
	if len(before.Open) == 0 {
		t.Fatal("fixture no longer reproduces the gap: probe pipeline left nothing open")
	}
	if before.Certified {
		t.Fatal("probe pipeline claims certified with open intervals")
	}

	after, err := NewPipeline(TailBoundCertifier(), LipschitzCertifier(), RestrictedHamiltonianCertifier(), ProbeCertifier(), CounterCertifier()).
		Run(model, CheckOptions{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Certified || len(after.Open) != 0 {
		t.Fatalf("counter did not retire the open set: certified=%v open=%v", after.Certified, after.Open)
	}
	if after.Stage != StageCounter {
		t.Fatalf("verdict stage = %q, want %q", after.Stage, StageCounter)
	}
	last := after.Stages[len(after.Stages)-1]
	if last.Stage != StageCounter || last.Certified != len(before.Open) {
		t.Fatalf("counter stage cost %+v, want Certified=%d", last, len(before.Open))
	}
	if last.Nodes == 0 {
		t.Fatal("counter stage recorded zero quadrature nodes")
	}

	// The default pipeline (with real dimension caps this model fits under)
	// must also finish fully settled.
	cert, err := Certify(model, CheckOptions{}, CertifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cert.Certified || len(cert.Open) != 0 {
		t.Fatalf("default pipeline: certified=%v open=%v", cert.Certified, cert.Open)
	}
}

// TestCounterViolatingModel checks the other verdict: on a clearly
// non-passive model the counter-terminated pipeline proves violations
// rather than certifying.
func TestCounterViolatingModel(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 10, Seed: 77, PeakGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(model, CheckOptions{Method: MethodHamiltonian})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passive {
		t.Skip("seed no longer produces a violating model")
	}
	copts := CertifyOptions{MaxDim: 2, RestrictedMaxDim: 2}
	cert, err := NewPipeline(TailBoundCertifier(), CounterCertifier()).Run(model, CheckOptions{}, copts)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Certified || len(cert.Violations) == 0 {
		t.Fatalf("counter pipeline missed the violations: %+v", cert)
	}
	for _, v := range cert.Violations {
		if v.SigmaPeak <= 1 {
			t.Fatalf("violation with σ peak %g ≤ 1", v.SigmaPeak)
		}
	}
}

// TestCounterBudget checks that an exhausted node budget surfaces as a
// stall (open interval downstream), not a wrong count.
func TestCounterBudget(t *testing.T) {
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 8, Seed: 5, PeakGain: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	ic, err := NewIntervalCounter(model, 1+1e-9)
	if err != nil {
		t.Fatal(err)
	}
	ic.Budget = 3 // far below one rectangle's minimum
	if _, err := ic.Count(1, ic.OmegaBound()); err == nil {
		t.Fatal("budget-starved count succeeded")
	}
	if ic.Nodes() > 3 {
		t.Fatalf("budget overrun: %d nodes", ic.Nodes())
	}
}
