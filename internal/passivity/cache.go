package passivity

import (
	"context"
	"runtime"
	"sort"

	"repro/internal/parallel"
	"repro/internal/rational"
)

// DefaultEvalCacheEntries is the default bound on the number of cached
// pole-basis vectors. It exceeds the worst single-run footprint — the
// adaptive refinement budget (AdaptiveMaxSamples, default 20000) plus seed
// grid and golden-section probes — so one enforcement run never evicts its
// own warm entries, while a long-running service that sweeps many pole
// sets stays bounded: at the cap, a 250-pole model holds ~128 MB of basis
// vectors.
const DefaultEvalCacheEntries = 32768

// basisEntry is one node of the basis LRU: the cached k̃(ω) plus its
// recency links.
type basisEntry struct {
	omega      float64
	k          []complex128
	prev, next *basisEntry
}

// EvalCache memoizes per-frequency transfer evaluations across repeated
// passivity checks of the SAME pole set. Two layers with different
// lifetimes:
//
//   - basis vectors k̃(ω) depend only on the poles, which Enforce never
//     moves, so they stay valid for an entire enforcement run;
//   - σ_max values additionally depend on the residues and must be dropped
//     whenever the model is perturbed (InvalidateSigma).
//
// The basis layer is LRU-bounded (MaxEntries); evicting a basis vector
// drops its σ entry with it, so the two layers never disagree about which
// frequencies are resident.
//
// Beyond the single active σ layer, the cache parks up to maxSigmaStash
// complete σ layers keyed by an opaque residue fingerprint (SwapSigma):
// when a caller cycles between residue variants that share the poles — a
// parameter-sweep library re-checked every round — each variant's σ
// samples survive the visits of its siblings instead of being recomputed
// from the shared basis every time. Stashed layers are plain value maps;
// they are exempt from the basis-residency invariant above (a σ value
// stays correct even after its basis vector was evicted).
//
// The cache also carries the violation-band frequencies found by the
// previous check (HotFrequencies) into the next check's seed grid, so that
// enforcement iterations re-localize their shrinking bands in a single
// refinement stage instead of rediscovering them from the coarse grid.
//
// The cache is NOT safe for concurrent use. The adaptive characterizer
// batches each refinement stage: cache lookups and stores happen on the
// calling goroutine, only the cache misses fan out through parallel.For,
// each miss writing its own slot. Results are therefore independent of the
// worker count, and of the LRU bound (an eviction can only force a
// recomputation, never change a value).
type EvalCache struct {
	basis      map[float64]*basisEntry
	sigma      map[float64]float64
	hot        []float64
	head, tail *basisEntry // recency list: head = most recent

	// stash holds parked σ layers by residue fingerprint (SwapSigma);
	// stashOrder tracks their recency, most recent last.
	stash      map[uint64]map[float64]float64
	stashOrder []uint64

	// MaxEntries bounds the basis layer (≤ 0 selects
	// DefaultEvalCacheEntries). Lower it for services that keep many caches
	// alive at once.
	MaxEntries int

	// Counters for benchmarks and experiment reports.
	SigmaHits, SigmaMisses int
	// Evictions counts basis entries dropped by the LRU bound.
	Evictions int
}

// NewEvalCache returns an empty cache with the default LRU bound.
func NewEvalCache() *EvalCache {
	return &EvalCache{
		basis: make(map[float64]*basisEntry),
		sigma: make(map[float64]float64),
	}
}

// InvalidateSigma drops the active σ layer (the model's residues changed
// in place, as enforcement perturbations do) while keeping the
// pole-dependent basis layer, the hot-frequency seeds and any stashed σ
// layers of other residue sets.
func (c *EvalCache) InvalidateSigma() {
	if c == nil {
		return
	}
	// clear keeps the map's buckets: the next sweep re-stores σ at the same
	// frequencies without re-growing the table from scratch.
	clear(c.sigma)
}

// maxSigmaStash bounds the parked σ layers a cache retains; beyond it the
// least-recently-parked layer is dropped. 64 comfortably covers a
// parameter sweep's variants per pole set while keeping the worst-case
// footprint proportional to the active layer.
const maxSigmaStash = 64

// SwapSigma switches the active σ layer between residue variants of the
// cache's pole set: the current layer is parked in the stash under the
// park key, and the layer previously parked under the restore key (if
// any) becomes active. Callers pass residue fingerprints as keys and must
// guarantee the park key identifies the residues the active layer was
// computed from. Cycling through a library of residue variants this way
// turns every revisit into σ-layer hits instead of recomputations.
func (c *EvalCache) SwapSigma(park, restore uint64) {
	if c == nil || park == restore {
		return
	}
	if c.stash == nil {
		c.stash = make(map[uint64]map[float64]float64)
	}
	if len(c.sigma) > 0 {
		if _, dup := c.stash[park]; !dup {
			c.stash[park] = c.sigma
			c.stashOrder = append(c.stashOrder, park)
			for len(c.stashOrder) > maxSigmaStash {
				drop := c.stashOrder[0]
				c.stashOrder = c.stashOrder[1:]
				delete(c.stash, drop)
			}
			c.sigma = nil
		}
	}
	if restored, ok := c.stash[restore]; ok {
		delete(c.stash, restore)
		for i, k := range c.stashOrder {
			if k == restore {
				c.stashOrder = append(c.stashOrder[:i], c.stashOrder[i+1:]...)
				break
			}
		}
		c.sigma = restored
		return
	}
	if c.sigma == nil {
		c.sigma = make(map[float64]float64)
	} else {
		clear(c.sigma)
	}
}

// StashedSigmaEntries sums the σ samples held by parked layers (see
// SwapSigma); the active layer is counted by SigmaEntries.
func (c *EvalCache) StashedSigmaEntries() int {
	n := 0
	for _, layer := range c.stash {
		n += len(layer)
	}
	return n
}

// SetHot records seed frequencies for the next check; NaN/±Inf and
// non-positive entries are dropped by the consumer.
func (c *EvalCache) SetHot(ws []float64) {
	if c == nil {
		return
	}
	c.hot = append(c.hot[:0], ws...)
}

// Hot returns the warm-start frequencies recorded by the previous check.
func (c *EvalCache) Hot() []float64 { return c.hot }

// BasisEntries returns the number of resident basis vectors.
func (c *EvalCache) BasisEntries() int { return len(c.basis) }

// sigmaFreqsSorted returns the frequencies resident in the σ layer in
// ascending order (nil for a nil cache). The certification sweep anchors
// on them: their evaluations are already paid for, and inside Enforce they
// sit exactly where the adaptive sweeps found the response interesting.
func (c *EvalCache) sigmaFreqsSorted() []float64 {
	if c == nil || len(c.sigma) == 0 {
		return nil
	}
	out := make([]float64, 0, len(c.sigma))
	for w := range c.sigma {
		out = append(out, w)
	}
	sort.Float64s(out)
	return out
}

func (c *EvalCache) cap() int {
	if c.MaxEntries > 0 {
		return c.MaxEntries
	}
	return DefaultEvalCacheEntries
}

// touch moves e to the recency head.
func (c *EvalCache) touch(e *basisEntry) {
	if c.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.tail == e {
		c.tail = e.prev
	}
	// Push front.
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// basisFor returns the cached basis vector for ω (marking it recently
// used), or nil.
func (c *EvalCache) basisFor(w float64) []complex128 {
	e, ok := c.basis[w]
	if !ok {
		return nil
	}
	c.touch(e)
	return e.k
}

// storeBasis inserts (or refreshes) the basis vector for ω and applies the
// LRU bound, evicting the coldest entries together with their σ values.
func (c *EvalCache) storeBasis(w float64, k []complex128) {
	if e, ok := c.basis[w]; ok {
		e.k = k
		c.touch(e)
		return
	}
	e := &basisEntry{omega: w, k: k}
	c.basis[w] = e
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	for limit := c.cap(); len(c.basis) > limit && c.tail != nil; {
		cold := c.tail
		c.tail = cold.prev
		if c.tail != nil {
			c.tail.next = nil
		} else {
			c.head = nil
		}
		delete(c.basis, cold.omega)
		delete(c.sigma, cold.omega)
		c.Evictions++
	}
}

// sigmaFor returns the cached σ_max for ω when resident. A σ hit also
// refreshes the recency of ω's basis entry: frequencies that keep hitting
// in the σ layer are exactly the ones whose bases must survive the LRU
// bound.
func (c *EvalCache) sigmaFor(w float64) (float64, bool) {
	s, ok := c.sigma[w]
	if ok {
		if e, found := c.basis[w]; found {
			c.touch(e)
		}
	}
	return s, ok
}

// sigmaBatch evaluates σ_max at every frequency of ws, filling cache hits
// serially and fanning the misses out over up to workers goroutines, each
// with its own workspace from pool. The result slice is index-aligned with
// ws and bitwise independent of the worker count. When ctx is cancelled
// mid-batch the fan-out drains deterministically and sigmaBatch returns
// ctx.Err() with a nil slice; nothing is stored in the cache, so a retried
// batch recomputes cleanly.
func sigmaBatch(ctx context.Context, model *rational.Model, ws []float64, workers int, c *EvalCache, pool *workspacePool) ([]float64, error) {
	out := make([]float64, len(ws))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if pool == nil {
		pool = newWorkspacePool()
	}
	if c == nil {
		pool.ensure(workers)
		if err := parallel.ForWorkerCtx(ctx, workers, len(ws), func(wk, i int) {
			out[i] = pool.get(wk).sigmaAt(model, ws[i])
		}); err != nil {
			return nil, err
		}
		return out, nil
	}
	// Serial pass over the cache; collect misses.
	miss := make([]int, 0, len(ws))
	for i, w := range ws {
		if s, ok := c.sigmaFor(w); ok {
			out[i] = s
			c.SigmaHits++
		} else {
			miss = append(miss, i)
			c.SigmaMisses++
		}
	}
	if len(miss) == 0 {
		return out, nil
	}
	// Parallel evaluation of the misses: each index owns its output slot
	// and its (freshly allocated or previously cached) basis vector.
	bases := make([][]complex128, len(miss))
	for bi, i := range miss {
		bases[bi] = c.basisFor(ws[i]) // nil when absent; filled in the loop
	}
	pool.ensure(workers)
	if err := parallel.ForWorkerCtx(ctx, workers, len(miss), func(wk, bi int) {
		i := miss[bi]
		if bases[bi] == nil {
			bases[bi] = model.EvalBasis(ws[i])
		}
		out[i] = pool.get(wk).sigma(model, bases[bi])
	}); err != nil {
		return nil, err
	}
	// Serial store.
	for bi, i := range miss {
		c.storeBasis(ws[i], bases[bi])
		c.sigma[ws[i]] = out[i]
	}
	return out, nil
}

// cachedSigma evaluates σ_max at one frequency through the cache (both
// layers), falling back to a direct workspace evaluation without one. This
// is the kernel behind the golden-section peak refinement, whose off-grid
// frequencies historically bypassed the cache and were re-evaluated every
// enforcement sweep.
func cachedSigma(model *rational.Model, w float64, c *EvalCache, ws *checkWorkspace) float64 {
	if ws == nil {
		ws = &checkWorkspace{}
	}
	if c == nil {
		return ws.sigmaAt(model, w)
	}
	if s, ok := c.sigmaFor(w); ok {
		c.SigmaHits++
		return s
	}
	c.SigmaMisses++
	k := c.basisFor(w)
	if k == nil {
		k = model.EvalBasis(w)
		c.storeBasis(w, k)
	}
	s := ws.sigma(model, k)
	c.sigma[w] = s
	return s
}
