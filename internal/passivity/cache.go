package passivity

import (
	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/rational"
)

// EvalCache memoizes per-frequency transfer evaluations across repeated
// passivity checks of the SAME pole set. Two layers with different
// lifetimes:
//
//   - basis vectors k̃(ω) depend only on the poles, which Enforce never
//     moves, so they stay valid for an entire enforcement run;
//   - σ_max values additionally depend on the residues and must be dropped
//     whenever the model is perturbed (InvalidateSigma).
//
// The cache also carries the violation-band frequencies found by the
// previous check (HotFrequencies) into the next check's seed grid, so that
// enforcement iterations re-localize their shrinking bands in a single
// refinement stage instead of rediscovering them from the coarse grid.
//
// The cache is NOT safe for concurrent use. The adaptive characterizer
// batches each refinement stage: cache lookups and stores happen on the
// calling goroutine, only the cache misses fan out through parallel.For,
// each miss writing its own slot. Results are therefore independent of the
// worker count.
type EvalCache struct {
	basis map[float64][]complex128
	sigma map[float64]float64
	hot   []float64

	// Counters for benchmarks and experiment reports.
	SigmaHits, SigmaMisses int
}

// NewEvalCache returns an empty cache.
func NewEvalCache() *EvalCache {
	return &EvalCache{
		basis: make(map[float64][]complex128),
		sigma: make(map[float64]float64),
	}
}

// InvalidateSigma drops the σ layer (the model's residues changed) while
// keeping the pole-dependent basis layer and the hot-frequency seeds.
func (c *EvalCache) InvalidateSigma() {
	if c == nil {
		return
	}
	c.sigma = make(map[float64]float64)
}

// SetHot records seed frequencies for the next check; NaN/±Inf and
// non-positive entries are dropped by the consumer.
func (c *EvalCache) SetHot(ws []float64) {
	if c == nil {
		return
	}
	c.hot = append(c.hot[:0], ws...)
}

// Hot returns the warm-start frequencies recorded by the previous check.
func (c *EvalCache) Hot() []float64 { return c.hot }

// sigmaFromBasis evaluates σ_max of S(jω) from a precomputed basis vector.
func sigmaFromBasis(model *rational.Model, k []complex128) float64 {
	s := model.EvalWithBasis(k)
	sv := mat.SingularValuesOnly(s)
	if len(sv) == 0 {
		return 0
	}
	return sv[0]
}

// sigmaBatch evaluates σ_max at every frequency of ws, filling cache hits
// serially and fanning the misses out over up to workers goroutines. The
// result slice is index-aligned with ws and bitwise independent of the
// worker count.
func sigmaBatch(model *rational.Model, ws []float64, workers int, c *EvalCache) []float64 {
	out := make([]float64, len(ws))
	if c == nil {
		parallel.For(workers, len(ws), func(i int) {
			out[i], _ = sigmaMax(model, ws[i], nil)
		})
		return out
	}
	// Serial pass over the cache; collect misses.
	miss := make([]int, 0, len(ws))
	for i, w := range ws {
		if s, ok := c.sigma[w]; ok {
			out[i] = s
			c.SigmaHits++
		} else {
			miss = append(miss, i)
			c.SigmaMisses++
		}
	}
	if len(miss) == 0 {
		return out
	}
	// Parallel evaluation of the misses: each index owns its output slot
	// and its (freshly allocated or previously cached) basis vector.
	bases := make([][]complex128, len(miss))
	for bi, i := range miss {
		bases[bi] = c.basis[ws[i]] // nil when absent; filled in the loop
	}
	parallel.For(workers, len(miss), func(bi int) {
		i := miss[bi]
		if bases[bi] == nil {
			bases[bi] = model.EvalBasis(ws[i])
		}
		out[i] = sigmaFromBasis(model, bases[bi])
	})
	// Serial store.
	for bi, i := range miss {
		c.basis[ws[i]] = bases[bi]
		c.sigma[ws[i]] = out[i]
	}
	return out
}
