package passivity

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rational"
)

// ScalingReport summarizes a residue-scaling enforcement run.
type ScalingReport struct {
	Passive bool
	// Gamma is the applied residue scale factor γ ∈ (0, 1].
	Gamma float64
	// Checks counts the passivity checks spent in the bisection.
	Checks int
	// Final is the passivity report of the scaled model.
	Final *Report
}

// EnforceByResidueScaling makes the model passive by scaling every residue
// matrix with a single factor γ found by bisection: the largest γ ∈ (0, 1]
// whose scaled model passes the passivity check. The poles and D stay
// fixed; as γ → 0 the model degenerates to S(s) = D, which is passive once
// σmax(D) < 1, so termination is guaranteed.
//
// This is the crudest guaranteed-passive scheme: it wipes out accuracy
// uniformly across frequency instead of perturbing only where violations
// live, and serves as the strawman baseline in the enforcement-accuracy
// ablation (EXPERIMENTS.md). Real flows should use Enforce or the
// sensitivity-weighted scheme.
func EnforceByResidueScaling(model *rational.Model, opts EnforceOptions) (*ScalingReport, error) {
	if opts.Margin <= 0 {
		opts.Margin = 1e-4
	}
	rep := &ScalingReport{Gamma: 1}
	dSigma := mat.MaxSingularValue(mat.RealToComplex(model.D))
	if dSigma >= 1-opts.Margin {
		if !opts.ClampD {
			return nil, fmt.Errorf("%w (σmax(D)=%g)", ErrAsymptoticViolation, dSigma)
		}
		clampDMatrix(model, 1-2*opts.Margin)
	}

	if opts.Check.Cache == nil {
		// Every bisection probe shares the pole set; the cache keeps the
		// basis vectors and the adaptive warm-start grid across probes.
		opts.Check.Cache = NewEvalCache()
	}
	passiveAt := func(gamma float64) (bool, *Report, error) {
		rep.Checks++
		opts.Check.Cache.InvalidateSigma()
		chk, err := Check(scaledClone(model, gamma), opts.Check)
		if err != nil {
			return false, nil, err
		}
		return chk.Passive, chk, nil
	}

	ok, chk, err := passiveAt(1)
	if err != nil {
		return nil, err
	}
	if ok {
		rep.Passive = true
		rep.Final = chk
		return rep, nil
	}

	// Bisection invariant: lo passive (γ=0 ⇒ S≡D), hi not passive.
	lo, hi := 0.0, 1.0
	var loReport *Report
	const tol = 1e-3
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, chk, err := passiveAt(mid)
		if err != nil {
			return nil, err
		}
		if ok {
			lo, loReport = mid, chk
		} else {
			hi = mid
		}
	}
	if loReport == nil {
		// Even tiny residues violate (can only happen for Margin-sized
		// numerical slack); fall back to the D-only model.
		ok, chk, err := passiveAt(lo)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("%w: residue scaling found no passive γ", ErrEnforceFailed)
		}
		loReport = chk
	}
	applyScale(model, lo)
	rep.Gamma = lo
	rep.Passive = true
	rep.Final = loReport
	return rep, nil
}

// scaledClone returns a deep copy of the model with residues scaled by γ.
func scaledClone(model *rational.Model, gamma float64) *rational.Model {
	out := model.Clone()
	applyScale(out, gamma)
	return out
}

func applyScale(model *rational.Model, gamma float64) {
	for k, r := range model.Residues {
		model.Residues[k] = r.Scale(complex(gamma, 0))
	}
}
