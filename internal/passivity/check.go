package passivity

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rational"
)

// Method selects the passivity detection algorithm.
type Method int

const (
	// MethodAuto uses the Hamiltonian test for small state dimensions and
	// the multi-stage adaptive characterizer otherwise.
	MethodAuto Method = iota
	// MethodHamiltonian always uses the Hamiltonian eigenvalue test
	// (exact, O((2nP)³)).
	MethodHamiltonian
	// MethodSweep always uses the fixed-grid singular-value frequency
	// sweep (pole-seeded log grid).
	MethodSweep
	// MethodAdaptive always uses the multi-stage adaptive sampling
	// characterizer: a coarse seed grid refined only where the local σ(ω)
	// curvature or pole proximity leaves room for a violation.
	MethodAdaptive
)

// Method-selection decision table. Let N = 2·n·P be the Hamiltonian
// dimension, n the pole count, P the port count:
//
//	Method       | Cost                     | Wins when
//	-------------+--------------------------+----------------------------------
//	Hamiltonian  | O(N³) eigensolve         | N ≲ HamiltonianMaxDim; exact
//	             |                          | crossings needed (certification,
//	             |                          | oracle for the other methods).
//	Sweep        | SweepPoints × O(P²n+P³)  | mid-size models with broad, well
//	             |                          | separated violation bands; flat
//	             |                          | cost profile, trivially parallel.
//	Adaptive     | ~seeds+zoom × O(P²n+P³)  | large models (N beyond the
//	             |                          | eigensolve) and/or narrow
//	             |                          | resonant bands a fixed grid can
//	             |                          | step over; cheapest inside
//	             |                          | Enforce via the EvalCache.
//	Auto         | —                        | Hamiltonian below
//	             |                          | HamiltonianMaxDim, Adaptive above.
//
// All methods except Hamiltonian only ever sample σ(ω) and can therefore
// step over a residual band. CheckOptions.Certify escalates a passive
// verdict through the staged certification pipeline (certify.go), whose
// stages win in different regimes:
//
//	Stage                  | Cost                   | Wins when
//	-----------------------+------------------------+--------------------------
//	tail-bound             | O(intervals·n), no σ   | headroom 1−σ(D) is ample
//	                       | evaluations            | away from resonances —
//	                       |                        | retires most of the axis.
//	hamiltonian            | O(N³) eigensolve       | N ≲ CertifyOptions.MaxDim:
//	                       |                        | exact, one shot.
//	hamiltonian-restricted | Σ O((2·n_near·P)³)     | large N, local violations:
//	                       | per open interval      | level-γ test on reduced
//	                       |                        | models, γ charged by the
//	                       |                        | truncated far-pole tail.
//	hamiltonian-probe      | O(N³) once (M²) +      | N beyond RestrictedMaxDim
//	                       | O(N³)/3 LU per target  | fitting: best-effort
//	                       |                        | detector, not a
//	                       |                        | certificate.

// CheckOptions configures a passivity check.
type CheckOptions struct {
	Method Method
	// OmegaMin/OmegaMax bound the sweep band (rad/s). Zero values default
	// to one decade beyond the pole imaginary-part range.
	OmegaMin, OmegaMax float64
	// SweepPoints is the log-grid density of the sweep (default 1000).
	SweepPoints int
	// HamiltonianMaxDim is the largest Hamiltonian dimension (2·n·P) that
	// MethodAuto still treats exactly (default 400).
	HamiltonianMaxDim int
	// Tol is the passivity slack: σ ≤ 1+Tol counts as passive
	// (default 1e-9).
	Tol float64
	// Workers bounds the goroutines used by the sweep grid evaluation
	// (0 = GOMAXPROCS, 1 = serial). Results are independent of the value.
	Workers int
	// AdaptiveSeedPoints is the coarse log-grid density the adaptive
	// characterizer starts from (default 64). Pole resonances are always
	// added on top.
	AdaptiveSeedPoints int
	// AdaptiveMaxStages caps the number of refinement stages (default 64).
	AdaptiveMaxStages int
	// AdaptiveRelTol is the relative tolerance to which violation-band
	// edges are bracketed (default 1e-3).
	AdaptiveRelTol float64
	// AdaptiveMaxSamples caps the σ evaluations the adaptive refinement
	// stages may spend beyond the mandatory seed grid (default 20000).
	AdaptiveMaxSamples int
	// Certify escalates a passive verdict through the staged certification
	// pipeline (see Certify and DefaultPipeline): tail-bound interval
	// certificates first, then an exact or restricted Hamiltonian
	// eigentest. Violations the pipeline proves are appended to the report
	// and flip Passive; the pipeline's verdict and cost land in
	// Report.Certificate. Enforce manages its own certification — it runs
	// the fast method every sweep and escalates only on convergence — so
	// this flag matters for standalone checks.
	Certify bool
	// CertifyOpts tunes the certification pipeline (zero value = defaults).
	CertifyOpts CertifyOptions
	// Ctx, when non-nil, cancels the check cooperatively: parallel σ
	// fan-outs stop claiming new frequencies (in-flight evaluations drain
	// deterministically, no goroutine leaks), the adaptive stage loop and
	// the certification pipeline stop between stages, and Check returns
	// ctx.Err(). A nil Ctx never cancels.
	Ctx context.Context
	// Progress, when non-nil, receives ProgressEvents (check completions,
	// enforcement iterations, certification stages) synchronously on the
	// working goroutine. Inside EnforceBatch the sink is called from
	// concurrent workers and must be safe for that.
	Progress ProgressFunc
	// ProgressModel tags emitted events with a batch model index.
	// EnforceBatch sets it per model; standalone callers should use -1
	// (the Session layer does) so handlers can tell the two apart.
	ProgressModel int
	// Cache, when non-nil, memoizes per-frequency evaluations across
	// checks of the same pole set (see EvalCache). Enforce installs one
	// automatically. Not safe for concurrent checks.
	Cache *EvalCache
	// work holds the per-worker evaluation workspaces. Check installs a
	// fresh pool when nil; Enforce and EnforceBatch install persistent
	// pools so buffers survive across sweeps (and, per worker, across
	// models).
	work *workspacePool
}

// Violation is one frequency band where a singular value exceeds one.
type Violation struct {
	OmegaPeak float64 // location of the in-band maximum (rad/s)
	SigmaPeak float64 // the maximum singular value there
	OmegaLo   float64 // lower band edge (0 when the band starts at DC)
	OmegaHi   float64 // upper band edge (+Inf when unbounded)
}

// Report is the outcome of a passivity check.
type Report struct {
	Passive    bool
	MaxSigma   float64 // worst singular value seen
	MaxOmega   float64 // where it occurs
	Violations []Violation
	Crossings  []float64 // unit-crossing frequencies (Hamiltonian method)
	DSigma     float64   // σmax(D): asymptotic passivity
	Method     string
	// Samples counts the σ(ω) grid evaluations spent (sweep and adaptive
	// methods; golden-section peak polishing excluded).
	Samples int
	// Certificate records the certification pipeline's verdict and cost.
	// It is nil unless certification ran: CheckOptions.Certify set and the
	// method-level check reported passive (a method-level violation needs
	// no certificate — the model is exactly known to be non-passive).
	Certificate *Certificate
}

func (o *CheckOptions) defaults(model *rational.Model) {
	if o.SweepPoints <= 0 {
		o.SweepPoints = 1000
	}
	if o.HamiltonianMaxDim <= 0 {
		o.HamiltonianMaxDim = 400
	}
	if o.AdaptiveSeedPoints <= 1 {
		o.AdaptiveSeedPoints = 64
	}
	if o.AdaptiveMaxStages <= 0 {
		o.AdaptiveMaxStages = 64
	}
	if o.AdaptiveRelTol <= 0 {
		o.AdaptiveRelTol = 1e-3
	}
	if o.AdaptiveMaxSamples <= 0 {
		o.AdaptiveMaxSamples = 20000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	if o.work == nil {
		o.work = newWorkspacePool()
	}
	if o.OmegaMin <= 0 || o.OmegaMax <= 0 {
		lo, hi := math.Inf(1), 0.0
		for _, p := range model.Poles {
			a := math.Hypot(real(p), imag(p))
			if a < lo {
				lo = a
			}
			if a > hi {
				hi = a
			}
		}
		if math.IsInf(lo, 1) || hi == 0 {
			lo, hi = 1, 10
		}
		if o.OmegaMin <= 0 {
			o.OmegaMin = lo / 10
		}
		if o.OmegaMax <= 0 {
			o.OmegaMax = hi * 10
		}
	}
}

// Check assesses the scattering passivity of a pole-residue model.
func Check(model *rational.Model, opts CheckOptions) (*Report, error) {
	if err := ctxErr(opts.Ctx); err != nil {
		return nil, err
	}
	opts.defaults(model)
	dSigma := mat.MaxSingularValue(mat.RealToComplex(model.D))
	method := opts.Method
	if method == MethodAuto {
		if 2*model.NumPoles()*model.Ports() <= opts.HamiltonianMaxDim {
			method = MethodHamiltonian
		} else {
			method = MethodAdaptive
		}
	}
	var rep *Report
	var err error
	switch method {
	case MethodHamiltonian:
		rep, err = checkHamiltonian(model, opts)
	case MethodSweep:
		rep, err = checkSweep(model, opts)
	case MethodAdaptive:
		rep, err = checkAdaptive(model, opts)
	default:
		return nil, fmt.Errorf("passivity: unknown method %d", opts.Method)
	}
	if err != nil {
		return nil, err
	}
	rep.DSigma = dSigma
	if dSigma > 1+opts.Tol {
		rep.Passive = false
	}
	if opts.Certify && rep.Passive {
		if err := certifyReport(model, rep, method, opts); err != nil {
			return nil, err
		}
	}
	opts.emit(ProgressEvent{
		Kind:     ProgressCheck,
		MaxSigma: rep.MaxSigma,
		Passive:  rep.Passive,
		Samples:  rep.Samples,
	})
	return rep, nil
}

// certifyReport escalates a passive method-level verdict through the
// certification pipeline and folds the outcome into the report. A
// Hamiltonian method pass is already exact, so it certifies itself without
// a second eigensolve.
func certifyReport(model *rational.Model, rep *Report, method Method, opts CheckOptions) error {
	if method == MethodHamiltonian {
		dim := 2 * model.NumPoles() * model.Ports()
		rep.Certificate = &Certificate{
			Certified: true,
			Stage:     StageHamiltonian,
			EigenDim:  dim,
			Stages:    []StageCost{{Stage: StageHamiltonian, EigenDim: dim}},
		}
		return nil
	}
	cert, err := Certify(model, opts, opts.CertifyOpts)
	if err != nil {
		return err
	}
	rep.Certificate = cert
	if len(cert.Violations) > 0 {
		mergeCertified(rep, cert)
	}
	return nil
}

// mergeCertified folds pipeline-proven violations into a report: appended
// to the violation list, reflected in the maximum, and flipping the
// verdict. Shared by the standalone check and the enforcement engine so
// the two paths cannot drift.
func mergeCertified(rep *Report, cert *Certificate) {
	rep.Passive = false
	for _, v := range cert.Violations {
		rep.Violations = append(rep.Violations, v)
		if v.SigmaPeak > rep.MaxSigma {
			rep.MaxSigma, rep.MaxOmega = v.SigmaPeak, v.OmegaPeak
		}
	}
}

// sigmaMax evaluates the largest singular value of S(jω) exactly via
// one-sided Jacobi. Iterative estimators (power/subspace iteration) are
// NOT safe here: PDN scattering matrices carry large clusters of singular
// values within 1e-4 of each other right at the passivity boundary, where
// any underestimate flips the verdict. ws provides the reusable buffers
// (nil allocates a transient workspace).
func sigmaMax(model *rational.Model, omega float64, ws *checkWorkspace) float64 {
	if ws == nil {
		ws = &checkWorkspace{}
	}
	return ws.sigmaAt(model, omega)
}

func checkHamiltonian(model *rational.Model, opts CheckOptions) (*Report, error) {
	crossings, err := HamiltonianCrossings(model)
	if err != nil {
		return nil, err
	}
	rep := &Report{Method: "hamiltonian", Crossings: crossings, Passive: true}
	// Candidate intervals between crossings (plus leading/trailing).
	edges := append([]float64{0}, crossings...)
	edges = append(edges, math.Inf(1))
	ws := opts.work.get(0)
	for i := 0; i+1 < len(edges); i++ {
		lo, hi := edges[i], edges[i+1]
		test := testPoint(lo, hi)
		sv := cachedSigma(model, test, opts.Cache, ws)
		if sv > rep.MaxSigma {
			rep.MaxSigma, rep.MaxOmega = sv, test
		}
		if sv > 1+opts.Tol {
			peakW, peakS := refinePeak(model, lo, hi, test, opts.Cache, ws)
			if peakS > rep.MaxSigma {
				rep.MaxSigma, rep.MaxOmega = peakS, peakW
			}
			rep.Violations = append(rep.Violations, Violation{
				OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: lo, OmegaHi: hi,
			})
			rep.Passive = false
		}
	}
	return rep, nil
}

// testPoint picks a representative frequency inside (lo, hi).
func testPoint(lo, hi float64) float64 {
	switch {
	case lo == 0 && math.IsInf(hi, 1):
		return 1
	case lo == 0:
		return hi / 2
	case math.IsInf(hi, 1):
		return lo * 2
	default:
		return math.Sqrt(lo * hi)
	}
}

// refinePeak locates the maximum of σ_max(jω) within a violation band by
// golden-section search on a bounded bracket. Evaluations route through
// the shared EvalCache (when present): the basis vectors at the probed
// frequencies survive residue perturbations, so enforcement sweeps that
// re-polish the same shrinking band stop paying the full evaluation.
func refinePeak(model *rational.Model, lo, hi, seed float64, c *EvalCache, ws *checkWorkspace) (float64, float64) {
	a, b := lo, hi
	if a == 0 {
		a = seed / 100
	}
	if math.IsInf(b, 1) {
		b = seed * 100
	}
	// Golden-section on log-ω for scale invariance.
	la, lb := math.Log(a), math.Log(b)
	const phi = 0.6180339887498949
	f := func(lw float64) float64 {
		return cachedSigma(model, math.Exp(lw), c, ws)
	}
	x1 := lb - phi*(lb-la)
	x2 := la + phi*(lb-la)
	f1, f2 := f(x1), f(x2)
	for it := 0; it < 60 && lb-la > 1e-10; it++ {
		if f1 < f2 {
			la, x1, f1 = x1, x2, f2
			x2 = la + phi*(lb-la)
			f2 = f(x2)
		} else {
			lb, x2, f2 = x2, x1, f1
			x1 = lb - phi*(lb-la)
			f1 = f(x1)
		}
	}
	lw := (la + lb) / 2
	return math.Exp(lw), f(lw)
}

// poleSeededGrid builds the sample grid shared by checkSweep and the
// adaptive stage 0: the DC point, an n-point log-spaced grid over
// [omegaMin, omegaMax], and every pole's resonance frequency with
// neighbours scaled by its damping. Narrow resonance peaks can slip
// between log-grid points; the pole seeds put samples where σ maxima
// live. The result is unsorted.
func poleSeededGrid(model *rational.Model, n int, omegaMin, omegaMax float64) []float64 {
	grid := make([]float64, 0, n+1+3*len(model.Poles))
	grid = append(grid, 0)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		grid = append(grid, omegaMin*math.Pow(omegaMax/omegaMin, t))
	}
	for _, p := range model.Poles {
		wr := math.Abs(imag(p))
		if wr == 0 {
			wr = math.Abs(real(p))
		}
		if wr <= 0 {
			continue
		}
		q := math.Abs(real(p)) / (1 + wr) // relative half-width
		grid = append(grid, wr, wr*(1+q))
		// Heavily damped poles have q ≥ 1; a nonpositive lower neighbour
		// would poison the log-domain peak refinement downstream.
		if lo := wr * (1 - q); lo > 0 {
			grid = append(grid, lo)
		}
	}
	return grid
}

func checkSweep(model *rational.Model, opts CheckOptions) (*Report, error) {
	rep := &Report{Method: "sweep", Passive: true}
	grid := poleSeededGrid(model, opts.SweepPoints, opts.OmegaMin, opts.OmegaMax)
	sortFloats(grid)
	sv, err := sigmaBatch(opts.Ctx, model, grid, opts.Workers, opts.Cache, opts.work)
	if err != nil {
		return nil, err
	}
	rep.Samples = len(grid)
	assembleReport(model, grid, sv, opts, rep)
	return rep, nil
}

// assembleReport turns a sampled σ(ω) grid into a Report: it records the
// global maximum, polishes near-limit local maxima by golden-section
// refinement (a peak sampled slightly off-crest can hide a violation), and
// scans contiguous runs above the limit into violation bands with
// interpolated edges. grid must be sorted ascending; sv is index-aligned
// and is sharpened in place.
func assembleReport(model *rational.Model, grid, sv []float64, opts CheckOptions, rep *Report) {
	ws := opts.work.get(0)
	for i, w := range grid {
		if sv[i] > rep.MaxSigma {
			rep.MaxSigma, rep.MaxOmega = sv[i], w
		}
	}
	// Refine every local maximum that comes close to the limit: a peak
	// sampled slightly off-crest can hide a violation.
	for i := 1; i+1 < len(grid); i++ {
		if sv[i] < 1-5e-3 || sv[i] <= sv[i-1] || sv[i] <= sv[i+1] || sv[i] > 1+opts.Tol {
			continue
		}
		lo := grid[i-1]
		if lo <= 0 {
			lo = grid[i] / 10
		}
		pw, ps := refinePeak(model, lo, grid[i+1], grid[i], opts.Cache, ws)
		if ps > sv[i] {
			// Record the sharpened value so the violation scan sees it.
			sv[i] = ps
			grid[i] = pw
			if ps > rep.MaxSigma {
				rep.MaxSigma, rep.MaxOmega = ps, pw
			}
		}
	}
	// Contiguous runs above 1 become violation bands.
	limit := 1 + opts.Tol
	i := 0
	for i < len(grid) {
		if sv[i] <= limit {
			i++
			continue
		}
		j := i
		for j < len(grid) && sv[j] > limit {
			j++
		}
		// Band edges by linear interpolation on σ(ω).
		lo := 0.0
		if i > 0 {
			lo = interpCrossing(grid[i-1], sv[i-1], grid[i], sv[i])
		}
		hi := math.Inf(1)
		if j < len(grid) {
			hi = interpCrossing(grid[j-1], sv[j-1], grid[j], sv[j])
		}
		// Peak within the run, refined locally.
		peakIdx := i
		for k := i; k < j; k++ {
			if sv[k] > sv[peakIdx] {
				peakIdx = k
			}
		}
		bl := grid[max(peakIdx-1, 0)]
		bh := grid[min(peakIdx+1, len(grid)-1)]
		if bl <= 0 {
			bl = grid[1] / 10
		}
		peakW, peakS := refinePeak(model, bl, bh, grid[peakIdx], opts.Cache, ws)
		if peakS < sv[peakIdx] {
			peakW, peakS = grid[peakIdx], sv[peakIdx]
		}
		if peakS > rep.MaxSigma {
			rep.MaxSigma, rep.MaxOmega = peakS, peakW
		}
		rep.Violations = append(rep.Violations, Violation{
			OmegaPeak: peakW, SigmaPeak: peakS, OmegaLo: lo, OmegaHi: hi,
		})
		rep.Passive = false
		i = j
	}
}

// interpCrossing linearly interpolates the ω where σ crosses 1 between two
// grid points.
func interpCrossing(w0, s0, w1, s1 float64) float64 {
	if s1 == s0 {
		return (w0 + w1) / 2
	}
	t := (1 - s0) / (s1 - s0)
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return w0 + t*(w1-w0)
}
