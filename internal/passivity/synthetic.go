package passivity

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/rational"
)

// SyntheticOptions configures SyntheticModel, the randomized pole-residue
// generator behind the characterization tests and the check benchmarks. It
// produces models whose passivity properties are controlled by
// construction, independent of any fitting stage.
type SyntheticOptions struct {
	// Ports is the port count P (default 2).
	Ports int
	// Poles is the model order n counting both members of each conjugate
	// pair (default 20).
	Poles int
	// Seed drives the deterministic pseudo-random construction.
	Seed int64
	// OmegaLo/OmegaHi bound the resonance placement in rad/s
	// (defaults 1 and 1e4).
	OmegaLo, OmegaHi float64
	// DSigma sets σmax(D) (default 0.9). Must stay below one for the model
	// to be asymptotically passive.
	DSigma float64
	// PeakGain caps each background pole's resonance strength ‖R‖₂/|Re p|
	// (default 0.25). Values well below 1−DSigma keep the model passive;
	// pushing PeakGain toward and beyond 1−DSigma produces the
	// near-passive and violating models of the oracle tests.
	PeakGain float64
	// NarrowBand plants a high-Q "shoulder" gadget on port 0: a resonance
	// whose residue phase is rotated so the σ peak sits several half-widths
	// OFF the pole's resonance frequency. The violation band has relative
	// width ~30·NarrowBandRelWidth — far below a 1000-point log grid's
	// spacing — while every frequency a pole-seeded fixed sweep samples
	// (the resonance itself and its half-width neighbours) stays safely
	// below one. Background poles are confined to ports 1..P−1 so the
	// gadget block stays exactly solvable.
	NarrowBand bool
	// NarrowBandOmega places the gadget resonance (default
	// 1.37·√(OmegaLo·OmegaHi), an off-grid frequency).
	NarrowBandOmega float64
	// NarrowBandRelWidth is the gadget pole's relative half-width γ/ω
	// (default 1e-5).
	NarrowBandRelWidth float64
}

func (o *SyntheticOptions) defaults() {
	if o.Ports <= 0 {
		o.Ports = 2
	}
	if o.Poles <= 0 {
		o.Poles = 20
	}
	if o.OmegaLo <= 0 {
		o.OmegaLo = 1
	}
	if o.OmegaHi <= o.OmegaLo {
		o.OmegaHi = 1e4 * o.OmegaLo
	}
	if o.DSigma <= 0 {
		o.DSigma = 0.9
		if o.NarrowBand {
			// The shoulder gadget needs the background close to one for
			// its off-resonance bump to cross the limit — but it must stay
			// below the sweep's 1−5e-3 near-limit refinement guard, or the
			// fixed grid's golden-section polishing finds the band anyway.
			o.DSigma = 0.985
		}
	}
	if o.PeakGain <= 0 {
		o.PeakGain = 0.25
	}
	if o.NarrowBandOmega <= 0 {
		o.NarrowBandOmega = 1.37 * math.Sqrt(o.OmegaLo*o.OmegaHi)
	}
	if o.NarrowBandRelWidth <= 0 {
		o.NarrowBandRelWidth = 1e-5
	}
}

// Shoulder-gadget constants: with background g = DSigma at the gadget port
// and residue term h·e^{jψ}/(1+ju), u = (ω−ωc)/γ, the |S| maximum sits at
// u* = tan(ψ/2) ≈ 5.7 half-widths off resonance, while u = 0 and u = ±1
// (exactly the frequencies a pole-seeded sweep samples) stay below one.
const (
	shoulderGain  = 0.7                 // h = ‖R‖/γ of the gadget pole
	shoulderPhase = 160 * math.Pi / 180 // ψ, the residue phase rotation
)

// SyntheticModel builds a random stable scattering model with controlled
// passivity structure. See SyntheticOptions for the knobs.
func SyntheticModel(opts SyntheticOptions) (*rational.Model, error) {
	opts.defaults()
	p := opts.Ports
	// The gadget occupies port 0 alone; the background poles need at least
	// one trailing port or they would pile onto the gadget port and destroy
	// its exactly analyzable SISO response.
	if opts.NarrowBand && p < 2 {
		return nil, fmt.Errorf("passivity: narrow-band gadget needs at least 2 ports, got %d", p)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	var poles []complex128
	var residues []*mat.CMatrix

	remaining := opts.Poles
	if opts.NarrowBand {
		if remaining < 2 {
			return nil, fmt.Errorf("passivity: narrow-band gadget needs at least 2 poles, got %d", remaining)
		}
		wc := opts.NarrowBandOmega
		gamma := opts.NarrowBandRelWidth * wc
		r := mat.NewCMatrix(p, p)
		r.Set(0, 0, complex(shoulderGain*gamma, 0)*cmplx.Exp(complex(0, shoulderPhase)))
		poles = append(poles, complex(-gamma, wc), complex(-gamma, -wc))
		residues = append(residues, r, conjCMatrix(r))
		remaining -= 2
	}

	// Background poles. With the gadget present they live on the trailing
	// port block so the gadget port stays an exactly analyzable SISO
	// response; otherwise they span all ports.
	bgLo := 0
	if opts.NarrowBand {
		bgLo = 1
	}
	for remaining > 0 {
		wr := logUniform(rng, opts.OmegaLo, opts.OmegaHi)
		gamma := wr * logUniform(rng, 0.02, 0.2)
		rnorm := opts.PeakGain * gamma * (0.3 + 0.7*rng.Float64())
		if remaining == 1 || bgLo >= p {
			// Odd leftover slot (or no background ports): real pole with a
			// small real residue, far below any passivity impact.
			rr := mat.NewCMatrix(p, p)
			i := bgLo % p
			rr.Set(i, i, complex(0.01*gamma, 0))
			poles = append(poles, complex(-gamma, 0))
			residues = append(residues, rr)
			remaining--
			continue
		}
		r := randomBlockResidue(rng, p, bgLo, rnorm)
		poles = append(poles, complex(-gamma, wr), complex(-gamma, -wr))
		residues = append(residues, r, conjCMatrix(r))
		remaining -= 2
	}

	d := mat.NewMatrix(p, p)
	for i := 0; i < p; i++ {
		v := opts.DSigma * (0.3 + 0.4*rng.Float64())
		if i == 0 {
			v = opts.DSigma
		}
		d.Set(i, i, v)
	}
	return rational.New(poles, residues, d)
}

// randomBlockResidue draws a dense complex residue on ports [lo, p) scaled
// to the requested spectral norm.
func randomBlockResidue(rng *rand.Rand, p, lo int, rnorm float64) *mat.CMatrix {
	r := mat.NewCMatrix(p, p)
	for i := lo; i < p; i++ {
		for j := lo; j < p; j++ {
			r.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
		}
	}
	if s := mat.MaxSingularValue(r); s > 0 {
		r = r.Scale(complex(rnorm/s, 0))
	}
	return r
}

func conjCMatrix(m *mat.CMatrix) *mat.CMatrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] = cmplx.Conj(out.Data[i])
	}
	return out
}

func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo * math.Pow(hi/lo, rng.Float64())
}
