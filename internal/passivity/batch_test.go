package passivity

import (
	"testing"

	"repro/internal/rational"
)

// batchLibrary builds a deterministic library of violating models.
func batchLibrary(t *testing.T, n int) []*rational.Model {
	t.Helper()
	lib := make([]*rational.Model, n)
	for i := range lib {
		m, err := SyntheticModel(SyntheticOptions{
			Ports: 2, Poles: 16 + 2*(i%3), Seed: int64(40 + i), PeakGain: 1.1,
		})
		if err != nil {
			t.Fatal(err)
		}
		lib[i] = m
	}
	return lib
}

func modelsBitwiseEqual(a, b *rational.Model) bool {
	if len(a.Poles) != len(b.Poles) {
		return false
	}
	for i := range a.Poles {
		if a.Poles[i] != b.Poles[i] {
			return false
		}
	}
	for k := range a.Residues {
		if !a.Residues[k].Equalish(b.Residues[k], 0) {
			return false
		}
	}
	return a.D.Equalish(b.D, 0)
}

// TestEnforceBatchMatchesSequential: the batch path must be bitwise
// identical to per-model sequential Enforce — same residues, same reports —
// for any worker count.
func TestEnforceBatchMatchesSequential(t *testing.T) {
	const n = 6
	base := EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}}

	seq := batchLibrary(t, n)
	seqReports := make([]*EnforceReport, n)
	for i, m := range seq {
		rep, err := Enforce(m, base)
		if err != nil {
			t.Fatalf("sequential model %d: %v", i, err)
		}
		seqReports[i] = rep
	}

	for _, workers := range []int{1, 4} {
		lib := batchLibrary(t, n)
		rep := EnforceBatch(lib, BatchOptions{Enforce: base, Workers: workers})
		if rep.Stats.Models != n || rep.Stats.Failed != 0 || rep.Stats.Passive != n {
			t.Fatalf("workers=%d: bad stats %+v", workers, rep.Stats)
		}
		for i := range lib {
			r := rep.Results[i]
			if r.Err != nil {
				t.Fatalf("workers=%d model %d: %v", workers, i, r.Err)
			}
			if !modelsBitwiseEqual(lib[i], seq[i]) {
				t.Fatalf("workers=%d model %d: batch result differs bitwise from sequential", workers, i)
			}
			if r.Report.Iterations != seqReports[i].Iterations ||
				r.Report.Final.MaxSigma != seqReports[i].Final.MaxSigma ||
				r.Report.Final.MaxOmega != seqReports[i].Final.MaxOmega {
				t.Fatalf("workers=%d model %d: report differs: %+v vs %+v",
					workers, i, r.Report.Final, seqReports[i].Final)
			}
		}
	}
}

// TestEnforceBatchIsolatesFailures: a model that cannot be enforced (σ(D)
// above one without ClampD) must fail alone; the rest of the library is
// still enforced.
func TestEnforceBatchIsolatesFailures(t *testing.T) {
	lib := batchLibrary(t, 4)
	bad, err := rational.NewScalar([]complex128{-1}, []complex128{0.1}, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	lib[2] = bad
	rep := EnforceBatch(lib, BatchOptions{
		Enforce: EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}},
		Workers: 2,
	})
	if rep.Stats.Failed != 1 || rep.Results[2].Err == nil {
		t.Fatalf("expected exactly the bad model to fail: %+v", rep.Stats)
	}
	for i, r := range rep.Results {
		if i == 2 {
			continue
		}
		if r.Err != nil || !r.Report.Passive {
			t.Fatalf("model %d should have been enforced: err=%v", i, r.Err)
		}
	}
	if rep.Stats.Passive != 3 || rep.Stats.Models != 4 {
		t.Fatalf("bad aggregates: %+v", rep.Stats)
	}
}

// TestEnforceBatchPerModelHook: the hook can supply per-model options (an
// identity cost here) and its errors land in the model's result slot.
func TestEnforceBatchPerModelHook(t *testing.T) {
	lib := batchLibrary(t, 3)
	hookErr := make([]bool, len(lib))
	rep := EnforceBatch(lib, BatchOptions{
		Enforce: EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}},
		Workers: 2,
		PerModel: func(i int, m *rational.Model, base EnforceOptions) (EnforceOptions, error) {
			if i == 1 {
				hookErr[i] = true
				return base, ErrEnforceFailed
			}
			return base, nil
		},
	})
	if rep.Results[1].Err == nil || !hookErr[1] {
		t.Fatalf("hook error not propagated: %+v", rep.Results[1])
	}
	for _, i := range []int{0, 2} {
		if rep.Results[i].Err != nil || !rep.Results[i].Report.Passive {
			t.Fatalf("model %d: %+v", i, rep.Results[i])
		}
	}
}

// weightForBatch builds a deterministic stable SISO weight.
func weightForBatch(t *testing.T) *rational.Model {
	t.Helper()
	w, err := rational.NewScalar(
		[]complex128{complex(-2, 0), complex(-40, 300), complex(-40, -300)},
		[]complex128{complex(3, 0), complex(1, 2), complex(1, -2)},
		0.5,
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEnforceBatchWeightedMatchesSequential: with a shared sensitivity
// weight the batch path must be bitwise identical — residues and reports —
// to sequential per-model weighted enforcement (Enforce with the
// closed-form cascade Gramian as cost) at every worker count.
func TestEnforceBatchWeightedMatchesSequential(t *testing.T) {
	const n = 6
	weight := weightForBatch(t)
	base := EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}}

	seq := batchLibrary(t, n)
	seqReports := make([]*EnforceReport, n)
	for i, m := range seq {
		gram, err := rational.CascadeGramian(m.Poles, weight)
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.CostGramian = gram
		rep, err := Enforce(m, opts)
		if err != nil {
			t.Fatalf("sequential weighted model %d: %v", i, err)
		}
		seqReports[i] = rep
	}

	for _, workers := range []int{1, 4} {
		lib := batchLibrary(t, n)
		rep := EnforceBatch(lib, BatchOptions{Enforce: base, Weight: weight, Workers: workers})
		if rep.Stats.Models != n || rep.Stats.Failed != 0 || rep.Stats.Passive != n {
			t.Fatalf("workers=%d: bad stats %+v", workers, rep.Stats)
		}
		for i := range lib {
			if rep.Results[i].Err != nil {
				t.Fatalf("workers=%d model %d: %v", workers, i, rep.Results[i].Err)
			}
			if !modelsBitwiseEqual(lib[i], seq[i]) {
				t.Fatalf("workers=%d model %d: weighted batch differs bitwise from sequential", workers, i)
			}
			r := rep.Results[i].Report
			if r.Iterations != seqReports[i].Iterations ||
				r.Final.MaxSigma != seqReports[i].Final.MaxSigma {
				t.Fatalf("workers=%d model %d: report differs", workers, i)
			}
		}
	}
}

// TestEnforceBatchPerModelWeights: Weights[i] overrides the shared Weight;
// nil entries fall back to it, and a mis-sized slice fails every slot with
// the sentinel instead of panicking mid-shard.
func TestEnforceBatchPerModelWeights(t *testing.T) {
	const n = 3
	weight := weightForBatch(t)
	alt, err := rational.NewScalar([]complex128{complex(-5, 0)}, []complex128{2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := EnforceOptions{Check: CheckOptions{Method: MethodAdaptive}}

	// Reference: model 1 under alt, others under the shared weight.
	seq := batchLibrary(t, n)
	for i, m := range seq {
		w := weight
		if i == 1 {
			w = alt
		}
		gram, err := rational.CascadeGramian(m.Poles, w)
		if err != nil {
			t.Fatal(err)
		}
		opts := base
		opts.CostGramian = gram
		if _, err := Enforce(m, opts); err != nil {
			t.Fatalf("sequential model %d: %v", i, err)
		}
	}

	lib := batchLibrary(t, n)
	rep := EnforceBatch(lib, BatchOptions{
		Enforce: base,
		Weight:  weight,
		Weights: []*rational.Model{nil, alt, nil},
		Workers: 2,
	})
	for i := range lib {
		if rep.Results[i].Err != nil {
			t.Fatalf("model %d: %v", i, rep.Results[i].Err)
		}
		if !modelsBitwiseEqual(lib[i], seq[i]) {
			t.Fatalf("model %d: per-model weight selection differs from sequential", i)
		}
	}

	bad := EnforceBatch(batchLibrary(t, n), BatchOptions{
		Enforce: base,
		Weights: []*rational.Model{weight},
	})
	if bad.Stats.Failed != n {
		t.Fatalf("mis-sized Weights should fail every model: %+v", bad.Stats)
	}
	for i, r := range bad.Results {
		if r.Err != ErrBatchWeightCount {
			t.Fatalf("model %d: want ErrBatchWeightCount, got %v", i, r.Err)
		}
	}
}
