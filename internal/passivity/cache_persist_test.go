package passivity

import (
	"bytes"
	"errors"
	"testing"
)

// primeCache runs a check with a cache so both layers carry real entries.
func primeCache(t *testing.T) (*EvalCache, int) {
	t.Helper()
	model, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 14, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	c := NewEvalCache()
	if _, err := Check(model, CheckOptions{Method: MethodAdaptive, Cache: c, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	c.SetHot([]float64{3.5, 88})
	if c.BasisEntries() == 0 || c.SigmaEntries() == 0 {
		t.Fatalf("priming left an empty cache: %d basis, %d sigma", c.BasisEntries(), c.SigmaEntries())
	}
	return c, model.NumPoles()
}

func TestEvalCacheSaveLoadRoundtrip(t *testing.T) {
	c, nPoles := primeCache(t)
	c.MaxEntries = 12345

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEvalCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	if got.MaxEntries != c.MaxEntries {
		t.Errorf("MaxEntries %d, want %d", got.MaxEntries, c.MaxEntries)
	}
	if got.BasisEntries() != c.BasisEntries() {
		t.Fatalf("basis entries %d, want %d", got.BasisEntries(), c.BasisEntries())
	}
	if got.SigmaEntries() != c.SigmaEntries() {
		t.Fatalf("sigma entries %d, want %d", got.SigmaEntries(), c.SigmaEntries())
	}
	for _, w := range c.sortedBasisFreqs() {
		a, b := c.basisFor(w), got.basisFor(w)
		if b == nil {
			t.Fatalf("basis for ω=%g missing after reload", w)
		}
		if len(a) != nPoles || len(b) != len(a) {
			t.Fatalf("basis length %d/%d at ω=%g, want %d", len(a), len(b), w, nPoles)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("basis mismatch at ω=%g index %d: %v vs %v", w, k, a[k], b[k])
			}
		}
	}
	for _, w := range c.sigmaFreqsSorted() {
		a, _ := c.sigmaFor(w)
		b, ok := got.sigmaFor(w)
		if !ok || a != b {
			t.Fatalf("σ mismatch at ω=%g: %v (resident %v) vs %v", w, b, ok, a)
		}
	}
	if len(got.Hot()) != 2 || got.Hot()[0] != 3.5 || got.Hot()[1] != 88 {
		t.Fatalf("hot seeds %v, want [3.5 88]", got.Hot())
	}
	if got.SigmaHits != 0 || got.Evictions != 0 {
		t.Fatalf("counters not reset: hits=%d evictions=%d", got.SigmaHits, got.Evictions)
	}
}

func TestEvalCacheLoadPreservesLRUOrder(t *testing.T) {
	c := NewEvalCache()
	for i := 1; i <= 5; i++ {
		c.storeBasis(float64(i), []complex128{complex(float64(i), 0)})
	}
	c.basisFor(2) // touch ω=2 to the head
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEvalCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded recency must match: evicting down to 2 entries keeps the
	// two warmest (ω=5 and the touched ω=2) on both caches.
	got.MaxEntries = 2
	got.storeBasis(6, []complex128{6}) // trigger evictions
	for _, w := range []float64{2, 6} {
		if got.basisFor(w) == nil {
			t.Fatalf("warm entry ω=%g evicted; resident: %v", w, got.sortedBasisFreqs())
		}
	}
	for _, w := range []float64{1, 3, 4, 5} {
		if got.basisFor(w) != nil {
			t.Fatalf("cold entry ω=%g survived eviction; resident: %v", w, got.sortedBasisFreqs())
		}
	}
}

func TestEvalCacheLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadEvalCache(bytes.NewReader([]byte("not a cache stream"))); !errors.Is(err, ErrCacheFormat) {
		t.Fatalf("got %v, want ErrCacheFormat", err)
	}
	// Truncated valid stream.
	c, _ := primeCache(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEvalCache(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated stream loaded without error")
	}
}
