package passivity

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// EvalCache persistence: a versioned little-endian binary stream holding
// both cache layers and the warm-start seeds, so a library service can
// save the per-frequency work of a sweep and start the next run warm
// (the Session layer wraps this with pole-set fingerprints and a file
// per model). Basis entries are written coldest → warmest; reloading
// replays them in that order, which reproduces the LRU recency exactly.
//
// The active σ layer is only valid for the exact residues it was computed
// from — the caller (Session) guards it with a residue fingerprint and
// parks it in the per-variant stash (SwapSigma) on mismatch; stashed
// layers are persisted with their keys so a reloaded cache keeps serving
// every variant of the sweep warm. The basis layer depends on the poles
// alone. The hot-seed list is persisted for snapshot fidelity (Save/Load
// round-trips the whole cache), but note the Session layer clears hot
// seeds at every checkout to keep session-routed sampling identical to
// stateless sampling, so loaded seeds only matter to direct EvalCache
// users.

const (
	cacheMagic   = 0x45564143 // "EVAC"
	cacheVersion = 2          // v2 appends the stashed σ layers
	// cacheMaxCount caps every persisted collection length, rejecting
	// corrupt or hostile streams before any allocation.
	cacheMaxCount = 1 << 28
)

// ErrCacheFormat reports a malformed or incompatible persisted cache.
var ErrCacheFormat = fmt.Errorf("passivity: malformed eval-cache stream")

// SigmaEntries returns the number of σ samples in the active layer;
// parked variant layers are counted by StashedSigmaEntries.
func (c *EvalCache) SigmaEntries() int { return len(c.sigma) }

// Save writes the cache (basis layer in LRU order, σ layer, hot seeds,
// LRU bound) to w in the versioned binary format read by LoadEvalCache.
func (c *EvalCache) Save(dst io.Writer) error {
	bw := bufio.NewWriter(dst)
	le := binary.LittleEndian
	var scratch [8]byte
	u64 := func(v uint64) error {
		le.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	f64 := func(v float64) error { return u64(math.Float64bits(v)) }
	var scratch4 [4]byte
	u32 := func(v uint32) error {
		le.PutUint32(scratch4[:], v)
		_, err := bw.Write(scratch4[:])
		return err
	}
	if err := u32(cacheMagic); err != nil {
		return err
	}
	if err := u32(cacheVersion); err != nil {
		return err
	}
	if err := u64(uint64(int64(c.MaxEntries))); err != nil {
		return err
	}
	// Basis layer, coldest first so the reload replays the recency order.
	if err := u64(uint64(len(c.basis))); err != nil {
		return err
	}
	for e := c.tail; e != nil; e = e.prev {
		if err := f64(e.omega); err != nil {
			return err
		}
		if err := u64(uint64(len(e.k))); err != nil {
			return err
		}
		for _, z := range e.k {
			if err := f64(real(z)); err != nil {
				return err
			}
			if err := f64(imag(z)); err != nil {
				return err
			}
		}
	}
	// σ layer, sorted by frequency for a deterministic stream.
	sws := c.sigmaFreqsSorted()
	if err := u64(uint64(len(sws))); err != nil {
		return err
	}
	for _, w := range sws {
		if err := f64(w); err != nil {
			return err
		}
		if err := f64(c.sigma[w]); err != nil {
			return err
		}
	}
	if err := u64(uint64(len(c.hot))); err != nil {
		return err
	}
	for _, w := range c.hot {
		if err := f64(w); err != nil {
			return err
		}
	}
	// Stashed σ layers, oldest first so the reload replays the parking
	// order; entries sorted by frequency for a deterministic stream.
	if err := u64(uint64(len(c.stashOrder))); err != nil {
		return err
	}
	for _, key := range c.stashOrder {
		layer := c.stash[key]
		if err := u64(key); err != nil {
			return err
		}
		if err := u64(uint64(len(layer))); err != nil {
			return err
		}
		ws := make([]float64, 0, len(layer))
		for w := range layer {
			ws = append(ws, w)
		}
		sort.Float64s(ws)
		for _, w := range ws {
			if err := f64(w); err != nil {
				return err
			}
			if err := f64(layer[w]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadEvalCache reads a cache persisted by Save. The returned cache is
// ready for use; its hit/miss/eviction counters start at zero.
func LoadEvalCache(r io.Reader) (*EvalCache, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var scratch [8]byte
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return le.Uint64(scratch[:]), nil
	}
	f64 := func() (float64, error) {
		v, err := u64()
		return math.Float64frombits(v), err
	}
	count := func() (int, error) {
		v, err := u64()
		if err != nil {
			return 0, err
		}
		if v > cacheMaxCount {
			return 0, fmt.Errorf("%w: count %d exceeds limit", ErrCacheFormat, v)
		}
		return int(v), nil
	}
	var scratch4 [4]byte
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch4[:]); err != nil {
			return 0, err
		}
		return le.Uint32(scratch4[:]), nil
	}
	if magic, err := u32(); err != nil {
		return nil, err
	} else if magic != cacheMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrCacheFormat, magic)
	}
	if version, err := u32(); err != nil {
		return nil, err
	} else if version != cacheVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCacheFormat, version)
	}
	c := NewEvalCache()
	maxEntries, err := u64()
	if err != nil {
		return nil, err
	}
	c.MaxEntries = int(int64(maxEntries))
	nBasis, err := count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nBasis; i++ {
		w, err := f64()
		if err != nil {
			return nil, err
		}
		klen, err := count()
		if err != nil {
			return nil, err
		}
		k := make([]complex128, klen)
		for j := range k {
			re, err := f64()
			if err != nil {
				return nil, err
			}
			im, err := f64()
			if err != nil {
				return nil, err
			}
			k[j] = complex(re, im)
		}
		c.storeBasis(w, k)
	}
	nSigma, err := count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nSigma; i++ {
		w, err := f64()
		if err != nil {
			return nil, err
		}
		s, err := f64()
		if err != nil {
			return nil, err
		}
		// A σ value is only admitted alongside its basis entry, keeping the
		// two-layer residency invariant of the live cache.
		if _, ok := c.basis[w]; ok {
			c.sigma[w] = s
		}
	}
	nHot, err := count()
	if err != nil {
		return nil, err
	}
	hot := make([]float64, nHot)
	for i := range hot {
		if hot[i], err = f64(); err != nil {
			return nil, err
		}
	}
	c.hot = hot
	nStash, err := count()
	if err != nil {
		return nil, err
	}
	if nStash > 0 {
		c.stash = make(map[uint64]map[float64]float64, nStash)
	}
	for i := 0; i < nStash; i++ {
		key, err := u64()
		if err != nil {
			return nil, err
		}
		nLayer, err := count()
		if err != nil {
			return nil, err
		}
		layer := make(map[float64]float64, nLayer)
		for j := 0; j < nLayer; j++ {
			w, err := f64()
			if err != nil {
				return nil, err
			}
			s, err := f64()
			if err != nil {
				return nil, err
			}
			layer[w] = s
		}
		if _, dup := c.stash[key]; dup {
			return nil, fmt.Errorf("%w: duplicate stash key %016x", ErrCacheFormat, key)
		}
		c.stash[key] = layer
		c.stashOrder = append(c.stashOrder, key)
	}
	if len(c.stashOrder) > maxSigmaStash {
		return nil, fmt.Errorf("%w: %d stashed layers exceeds limit", ErrCacheFormat, len(c.stashOrder))
	}
	// Replaying storeBasis counts LRU-bound evictions of an over-full
	// stream as if they happened live; reset the counters so a freshly
	// loaded cache reports only what happens after the load.
	c.SigmaHits, c.SigmaMisses, c.Evictions = 0, 0, 0
	return c, nil
}

// sortedBasisFreqs is a test hook: the resident basis frequencies in
// ascending order.
func (c *EvalCache) sortedBasisFreqs() []float64 {
	out := make([]float64, 0, len(c.basis))
	for w := range c.basis {
		out = append(out, w)
	}
	sort.Float64s(out)
	return out
}
