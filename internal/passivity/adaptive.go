package passivity

import (
	"math"
	"sort"

	"repro/internal/mat"
	"repro/internal/rational"
)

// This file implements MethodAdaptive: a multi-stage adaptive sampling
// passivity characterizer in the spirit of De Stefano et al., "A
// Multi-Stage Adaptive Sampling Scheme for Passivity Characterization of
// Large-Scale Macromodels". Starting from a coarse log-spaced seed grid
// (augmented with every pole's resonance and warm-start frequencies from a
// previous check), each stage estimates a per-interval error from the local
// σ(ω) curvature and from pole proximity, and bisects only the suspicious
// intervals. Narrow resonant violation bands that a fixed sweep grid steps
// over are found by zooming to the half-width scale of the poles that could
// push σ above one, while intervals certified passive by a residue tail
// bound are pruned without any further samples. All evaluations of a stage
// fan out through parallel.For; results are bitwise independent of the
// worker count.

// poleFeature summarizes one pole for the adaptive error estimates.
type poleFeature struct {
	wr    float64 // resonance frequency |Im p| (0 for real poles)
	gamma float64 // half-width |Re p|
	rnorm float64 // spectral norm ‖R‖₂ of the residue matrix
	// peakGain bounds the σ contribution of this pole's term anywhere on
	// the imaginary axis: ‖R‖₂/|Re p|, attained at its own resonance.
	peakGain float64
}

// poleFeatureOf builds the feature of pole k (shared by the adaptive
// characterizer and the certification pipeline, which needs the features
// index-aligned with the pole list).
func poleFeatureOf(model *rational.Model, k int, ws *checkWorkspace) poleFeature {
	p := model.Poles[k]
	gamma := math.Abs(real(p))
	if gamma == 0 {
		// Marginally stable pole: keep the feature finite so the scale
		// and bound arithmetic stays well defined.
		gamma = 1e-12 * (1 + math.Abs(imag(p)))
	}
	ws.sv = mat.SingularValuesInto(&ws.svd, model.Residues[k], ws.sv)
	rn := 0.0
	if len(ws.sv) > 0 {
		rn = ws.sv[0]
	}
	return poleFeature{
		wr:       math.Abs(imag(p)),
		gamma:    gamma,
		rnorm:    rn,
		peakGain: rn / gamma,
	}
}

// poleFeatures builds the per-pole features, sorted ascending by resonance
// frequency so the split criteria can binary-search the neighbourhood of an
// interval instead of scanning every pole.
func poleFeatures(model *rational.Model, ws *checkWorkspace) []poleFeature {
	feats := make([]poleFeature, 0, len(model.Poles))
	for k := range model.Poles {
		feats = append(feats, poleFeatureOf(model, k, ws))
	}
	sort.Slice(feats, func(a, b int) bool { return feats[a].wr < feats[b].wr })
	return feats
}

// adaptiveState carries the refinement grid and the per-model quantities
// the split criteria need.
// Tail-bound certification states, cached per interval (the bound depends
// only on the interval endpoints, so its verdict never changes once
// computed; sub-intervals of a certified interval are certified too, but
// those are never created because certified intervals never split).
const (
	certUnknown int8 = iota
	certPassive
	certOpen
)

type adaptiveState struct {
	model  *rational.Model
	feats  []poleFeature // sorted ascending by wr
	wrs    []float64     // feats[i].wr, for binary search
	scan   *boundScanner // outward-scanning interval bounds over feats
	dSigma float64
	limit  float64
	relTol float64
	grid   []float64
	lg     []float64 // log(grid), -Inf at DC; memoized for the curvature math
	sv     []float64
	cert   []int8 // cert[i] covers interval [grid[i], grid[i+1]]
}

// setGrid installs a fresh sorted grid with its σ samples, resetting the
// per-interval caches.
func (a *adaptiveState) setGrid(grid, sv []float64) {
	a.grid, a.sv = grid, sv
	a.lg = make([]float64, len(grid))
	for i, w := range grid {
		a.lg[i] = math.Log(w)
	}
	a.cert = make([]int8, max(len(grid)-1, 0))
}

// tailBound is a rigorous interval bound on σ over [w0, w1]: the tightened
// interaction-aware form shared with the certification pipeline (see
// boundScanner.tailBound in certify.go — far-pole terms are convex over
// the interval, so their sum is evaluated at the endpoints instead of
// summing per-term suprema attained at different frequencies). Intervals
// whose bound stays at or below the limit cannot host a violation and are
// pruned from refinement; the outward scan exits early in both directions
// — callers only use the comparison.
func (a *adaptiveState) tailBound(w0, w1 float64) float64 {
	return a.scan.tailBound(a.dSigma, a.limit, w0, w1)
}

// localScale returns the variation scale of σ over [w0, w1] — the smallest
// γ_k + dist_k over the pole features, capped at w1 — together with the
// largest resonance gain ‖R‖₂/γ among the features whose own scale is
// still unresolved by an interval of the given width. The scale tells the
// refinement how finely σ must be sampled here before its local behaviour
// can be trusted; the hidden gain tells it whether an unresolved resonance
// could push σ above the limit between the current samples.
//
// Only features with γ + dist < 2·width can influence the caller's split
// decision (the scale is compared against 2·width and the hidden gain
// requires γ + dist ≤ width), and those all have resonances within 2·width
// of the interval. The scan therefore binary-searches the sorted features
// for the window [w0 − 2.5·width, w1 + 2.5·width] (the 0.5 margin absorbs
// rounding at the window edges) instead of visiting all n poles — on a
// refined grid of g intervals this turns each stage from O(g·n) into
// O(g·log n) plus the few poles actually nearby.
func (a *adaptiveState) localScale(w0, w1, width float64) (scale, hiddenGain float64) {
	scale = w1
	if scale <= 0 {
		scale = 1
	}
	lo := w0 - 2.5*width
	hi := w1 + 2.5*width
	for i := sort.SearchFloat64s(a.wrs, lo); i < len(a.feats); i++ {
		f := &a.feats[i]
		if f.wr > hi {
			break
		}
		d := 0.0
		if f.wr < w0 {
			d = w0 - f.wr
		} else if f.wr > w1 {
			d = f.wr - w1
		}
		s := f.gamma + d
		if s < scale {
			scale = s
		}
		if s <= width && f.peakGain > hiddenGain {
			hiddenGain = f.peakGain
		}
	}
	return scale, hiddenGain
}

// secondDiff estimates σ” over the node triple (i0, i1, i2) by divided
// differences in log-ω (linear ω when the triple starts at DC).
func (a *adaptiveState) secondDiff(i0, i1, i2 int) float64 {
	var x0, x1, x2 float64
	if a.grid[i0] > 0 {
		x0, x1, x2 = a.lg[i0], a.lg[i1], a.lg[i2]
	} else {
		x0, x1, x2 = a.grid[i0], a.grid[i1], a.grid[i2]
	}
	d10 := (a.sv[i1] - a.sv[i0]) / (x1 - x0)
	d21 := (a.sv[i2] - a.sv[i1]) / (x2 - x1)
	return 2 * (d21 - d10) / (x2 - x0)
}

// localMaxEstimate bounds the in-interval maximum of σ by the larger
// endpoint value plus a quadratic interpolation-error term built from the
// neighbouring curvature: max ≲ max(s0, s1) + |σ”|·h²/8.
func (a *adaptiveState) localMaxEstimate(i int) float64 {
	w0, w1 := a.grid[i], a.grid[i+1]
	curv := 0.0
	if i > 0 {
		curv = math.Abs(a.secondDiff(i-1, i, i+1))
	}
	if i+2 < len(a.grid) {
		if c := math.Abs(a.secondDiff(i, i+1, i+2)); c > curv {
			curv = c
		}
	}
	var h float64
	if w0 > 0 {
		h = a.lg[i+1] - a.lg[i]
	} else {
		h = w1 - w0
	}
	return math.Max(a.sv[i], a.sv[i+1]) + curv*h*h/8
}

// needSplit decides whether interval i is suspicious enough to bisect this
// stage. The criteria, in order:
//
//  1. numerical floor — stop near machine resolution;
//  2. tail-bound pruning — certified-passive intervals never split;
//  3. feature resolution — zoom toward any pole whose resonance could
//     cross the limit until σ is sampled at the pole's half-width scale;
//  4. edge bracketing — intervals straddling the limit split until the
//     band edge is located to the relative tolerance;
//  5. curvature — resolved intervals still split while the local quadratic
//     error estimate leaves room for a violation between the samples.
func (a *adaptiveState) needSplit(i int) bool {
	w0, w1 := a.grid[i], a.grid[i+1]
	s0, s1 := a.sv[i], a.sv[i+1]
	width := w1 - w0
	if width <= 1e-12*w1 {
		return false
	}
	switch a.cert[i] {
	case certPassive:
		return false
	case certUnknown:
		if a.tailBound(w0, w1) <= a.limit {
			a.cert[i] = certPassive
			return false
		}
		a.cert[i] = certOpen
	}
	scale, hiddenGain := a.localScale(w0, w1, width)
	if width > 0.5*scale && math.Max(s0, s1)+hiddenGain > a.limit {
		return true
	}
	above0, above1 := s0 > a.limit, s1 > a.limit
	if above0 != above1 {
		return width > a.relTol*w1
	}
	if above0 && above1 {
		// Band interior: resolved at the local scale is enough; the peak
		// is polished by golden-section refinement afterwards.
		return false
	}
	// Both endpoints below the limit: split only while the local quadratic
	// estimate leaves room for a genuine crossing between the samples. A
	// flat plateau arbitrarily close to one has negligible curvature and
	// must NOT be refined — near-limit local crests are polished by the
	// golden-section pass in assembleReport, exactly as in the fixed
	// sweep, so stopping here cannot hide a smooth sub-resolution peak.
	if a.localMaxEstimate(i) <= a.limit {
		return false
	}
	return width > a.relTol*w1
}

// midpointOmega bisects an interval on the log axis (linearly for the DC
// interval).
func midpointOmega(w0, w1 float64) float64 {
	if w0 <= 0 {
		return w1 / 2
	}
	return math.Sqrt(w0 * w1)
}

// merge inserts the freshly evaluated midpoints into the sorted grid,
// carrying the log coordinates and the per-interval certification cache:
// an interval that survives unsplit keeps its tail-bound verdict, while
// the sub-intervals created around a midpoint start unknown.
func (a *adaptiveState) merge(ws, svs []float64) {
	n := len(a.grid) + len(ws)
	grid := make([]float64, 0, n)
	lg := make([]float64, 0, n)
	sv := make([]float64, 0, n)
	cert := make([]int8, 0, n)
	i, j := 0, 0
	prevOld := -2 // old index of the previously appended point; -2 = midpoint
	for i < len(a.grid) || j < len(ws) {
		if j >= len(ws) || (i < len(a.grid) && a.grid[i] <= ws[j]) {
			if len(grid) > 0 {
				if prevOld == i-1 {
					cert = append(cert, a.cert[i-1])
				} else {
					cert = append(cert, certUnknown)
				}
			}
			grid = append(grid, a.grid[i])
			lg = append(lg, a.lg[i])
			sv = append(sv, a.sv[i])
			prevOld = i
			i++
		} else {
			if len(grid) > 0 {
				cert = append(cert, certUnknown)
			}
			grid = append(grid, ws[j])
			lg = append(lg, math.Log(ws[j]))
			sv = append(sv, svs[j])
			prevOld = -2
			j++
		}
	}
	a.grid, a.lg, a.sv, a.cert = grid, lg, sv, cert
}

// dedupeSorted drops near-identical frequencies so the divided differences
// of the curvature estimate stay finite.
func dedupeSorted(ws []float64) []float64 {
	out := ws[:0]
	for i, w := range ws {
		if i == 0 || w > out[len(out)-1]*(1+1e-12) {
			out = append(out, w)
		}
	}
	return out
}

func checkAdaptive(model *rational.Model, opts CheckOptions) (*Report, error) {
	rep := &Report{Method: "adaptive", Passive: true}
	st := &adaptiveState{
		model:  model,
		feats:  poleFeatures(model, opts.work.get(0)),
		dSigma: mat.MaxSingularValue(mat.RealToComplex(model.D)),
		limit:  1 + opts.Tol,
		relTol: opts.AdaptiveRelTol,
	}
	st.scan = newBoundScanner(st.feats)
	st.wrs = st.scan.wrs

	// Stage 0: coarse log seed grid with every pole resonance and its
	// half-width neighbours (shared with the fixed sweep), plus warm-start
	// frequencies from the previous check of this enforcement run.
	grid := poleSeededGrid(model, opts.AdaptiveSeedPoints, opts.OmegaMin, opts.OmegaMax)
	if opts.Cache != nil {
		for _, w := range opts.Cache.Hot() {
			if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
				grid = append(grid, w)
			}
		}
	}
	sortFloats(grid)
	grid = dedupeSorted(grid)
	sv, err := sigmaBatch(opts.Ctx, model, grid, opts.Workers, opts.Cache, opts.work)
	if err != nil {
		return nil, err
	}
	st.setGrid(grid, sv)

	budget := opts.AdaptiveMaxSamples
	for stage := 0; stage < opts.AdaptiveMaxStages && budget > 0; stage++ {
		var mids []float64
		for i := 0; i+1 < len(st.grid); i++ {
			if st.needSplit(i) {
				mids = append(mids, midpointOmega(st.grid[i], st.grid[i+1]))
			}
		}
		if len(mids) == 0 {
			break
		}
		if len(mids) > budget {
			mids = mids[:budget]
		}
		budget -= len(mids)
		msv, err := sigmaBatch(opts.Ctx, model, mids, opts.Workers, opts.Cache, opts.work)
		if err != nil {
			return nil, err
		}
		st.merge(mids, msv)
	}

	rep.Samples = len(st.grid)
	assembleReport(model, st.grid, st.sv, opts, rep)
	if opts.Cache != nil {
		// Seed the next check of this enforcement run with the band
		// geometry found now: edges and peaks re-localize shrinking bands
		// in a single stage.
		var hot []float64
		for _, v := range rep.Violations {
			if v.OmegaLo > 0 && !math.IsInf(v.OmegaLo, 1) {
				hot = append(hot, v.OmegaLo)
			}
			hot = append(hot, v.OmegaPeak)
			if v.OmegaHi > 0 && !math.IsInf(v.OmegaHi, 1) {
				hot = append(hot, v.OmegaHi)
			}
		}
		opts.Cache.SetHot(hot)
	}
	return rep, nil
}
