package passivity

import (
	"testing"
)

// TestEvalCacheLRUBound: the basis layer must respect MaxEntries, evict
// least-recently-used frequencies first, and drop the σ entry together
// with its basis.
func TestEvalCacheLRUBound(t *testing.T) {
	c := NewEvalCache()
	c.MaxEntries = 3
	k := func(w float64) []complex128 { return []complex128{complex(w, 0)} }

	for _, w := range []float64{1, 2, 3} {
		c.storeBasis(w, k(w))
		c.sigma[w] = w * 10
	}
	if c.BasisEntries() != 3 || c.Evictions != 0 {
		t.Fatalf("setup: %d entries, %d evictions", c.BasisEntries(), c.Evictions)
	}

	// Touch ω=1 so ω=2 becomes the coldest, then insert a fourth entry.
	if c.basisFor(1) == nil {
		t.Fatal("ω=1 should be resident")
	}
	c.storeBasis(4, k(4))
	c.sigma[4] = 40
	if c.BasisEntries() != 3 || c.Evictions != 1 {
		t.Fatalf("after insert: %d entries, %d evictions", c.BasisEntries(), c.Evictions)
	}
	if c.basisFor(2) != nil {
		t.Fatal("ω=2 (least recently used) should have been evicted")
	}
	if _, ok := c.sigmaFor(2); ok {
		t.Fatal("σ entry must be evicted together with its basis")
	}
	for _, w := range []float64{1, 3, 4} {
		if c.basisFor(w) == nil {
			t.Fatalf("ω=%v should be resident", w)
		}
		if _, ok := c.sigmaFor(w); !ok {
			t.Fatalf("σ(ω=%v) should be resident", w)
		}
	}

	c.storeBasis(5, k(5))
	if c.BasisEntries() != 3 {
		t.Fatalf("cap not enforced: %d entries", c.BasisEntries())
	}
}

// TestEvalCacheLRUDoesNotChangeResults: a brutally small LRU bound forces
// constant eviction; the check verdict and report must still be identical
// to the unbounded cache (an eviction can only cost a recomputation).
func TestEvalCacheLRUDoesNotChangeResults(t *testing.T) {
	build := func() *EvalCache { return NewEvalCache() }
	mRef := nonPassiveMIMO(t)
	ref, err := Check(mRef, CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: build()})
	if err != nil {
		t.Fatal(err)
	}
	small := build()
	small.MaxEntries = 8
	m := nonPassiveMIMO(t)
	got, err := Check(m, CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: small})
	if err != nil {
		t.Fatal(err)
	}
	if small.Evictions == 0 {
		t.Fatal("bound of 8 entries should force evictions on this check")
	}
	if !reportsEqual(ref, got) {
		t.Fatalf("LRU bound changed the report:\n%+v\nvs\n%+v", ref, got)
	}
}

// TestEnforceSteadyStateAllocBound: once an enforcement-style loop has
// warmed the cache and workspace pool, re-checking the model (the
// steady-state sweep of Enforce: σ invalidated, bases cached) must spend
// only the per-check bookkeeping — grid assembly, stage slices, report —
// and nothing per frequency. The per-frequency kernels themselves are
// asserted exactly allocation-free in internal/mat and internal/rational;
// here a generous structural bound guards the integration: the historical
// figure for this model was ~40 allocations PER SAMPLE, the workspace path
// needs ~2 including all fixed overhead.
func TestEnforceSteadyStateAllocBound(t *testing.T) {
	m := nonPassiveMIMO(t)
	cache := NewEvalCache()
	opts := CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: cache, Workers: 1}
	first, err := Check(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	samples := first.Samples
	if samples == 0 {
		t.Fatal("no samples recorded")
	}
	// One invalidated re-check settles residual warm-up (map capacity).
	cache.InvalidateSigma()
	if _, err := Check(m, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		cache.InvalidateSigma()
		if _, err := Check(m, opts); err != nil {
			t.Fatal(err)
		}
	})
	bound := float64(6*samples + 400)
	if allocs > bound {
		t.Fatalf("steady-state check allocates %.0f times for %d samples; want ≤ %.0f",
			allocs, samples, bound)
	}
}
