package passivity

import (
	"bytes"
	"testing"
)

// TestEvalCacheLRUBound: the basis layer must respect MaxEntries, evict
// least-recently-used frequencies first, and drop the σ entry together
// with its basis.
func TestEvalCacheLRUBound(t *testing.T) {
	c := NewEvalCache()
	c.MaxEntries = 3
	k := func(w float64) []complex128 { return []complex128{complex(w, 0)} }

	for _, w := range []float64{1, 2, 3} {
		c.storeBasis(w, k(w))
		c.sigma[w] = w * 10
	}
	if c.BasisEntries() != 3 || c.Evictions != 0 {
		t.Fatalf("setup: %d entries, %d evictions", c.BasisEntries(), c.Evictions)
	}

	// Touch ω=1 so ω=2 becomes the coldest, then insert a fourth entry.
	if c.basisFor(1) == nil {
		t.Fatal("ω=1 should be resident")
	}
	c.storeBasis(4, k(4))
	c.sigma[4] = 40
	if c.BasisEntries() != 3 || c.Evictions != 1 {
		t.Fatalf("after insert: %d entries, %d evictions", c.BasisEntries(), c.Evictions)
	}
	if c.basisFor(2) != nil {
		t.Fatal("ω=2 (least recently used) should have been evicted")
	}
	if _, ok := c.sigmaFor(2); ok {
		t.Fatal("σ entry must be evicted together with its basis")
	}
	for _, w := range []float64{1, 3, 4} {
		if c.basisFor(w) == nil {
			t.Fatalf("ω=%v should be resident", w)
		}
		if _, ok := c.sigmaFor(w); !ok {
			t.Fatalf("σ(ω=%v) should be resident", w)
		}
	}

	c.storeBasis(5, k(5))
	if c.BasisEntries() != 3 {
		t.Fatalf("cap not enforced: %d entries", c.BasisEntries())
	}
}

// TestEvalCacheLRUDoesNotChangeResults: a brutally small LRU bound forces
// constant eviction; the check verdict and report must still be identical
// to the unbounded cache (an eviction can only cost a recomputation).
func TestEvalCacheLRUDoesNotChangeResults(t *testing.T) {
	build := func() *EvalCache { return NewEvalCache() }
	mRef := nonPassiveMIMO(t)
	ref, err := Check(mRef, CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: build()})
	if err != nil {
		t.Fatal(err)
	}
	small := build()
	small.MaxEntries = 8
	m := nonPassiveMIMO(t)
	got, err := Check(m, CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: small})
	if err != nil {
		t.Fatal(err)
	}
	if small.Evictions == 0 {
		t.Fatal("bound of 8 entries should force evictions on this check")
	}
	if !reportsEqual(ref, got) {
		t.Fatalf("LRU bound changed the report:\n%+v\nvs\n%+v", ref, got)
	}
}

// TestEnforceSteadyStateAllocBound: once an enforcement-style loop has
// warmed the cache and workspace pool, re-checking the model (the
// steady-state sweep of Enforce: σ invalidated, bases cached) must spend
// only the per-check bookkeeping — grid assembly, stage slices, report —
// and nothing per frequency. The per-frequency kernels themselves are
// asserted exactly allocation-free in internal/mat and internal/rational;
// here a generous structural bound guards the integration: the historical
// figure for this model was ~40 allocations PER SAMPLE, the workspace path
// needs ~2 including all fixed overhead.
func TestEnforceSteadyStateAllocBound(t *testing.T) {
	m := nonPassiveMIMO(t)
	cache := NewEvalCache()
	opts := CheckOptions{Method: MethodAdaptive, OmegaMin: 0.1, OmegaMax: 1e4, Cache: cache, Workers: 1}
	first, err := Check(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	samples := first.Samples
	if samples == 0 {
		t.Fatal("no samples recorded")
	}
	// One invalidated re-check settles residual warm-up (map capacity).
	cache.InvalidateSigma()
	if _, err := Check(m, opts); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		cache.InvalidateSigma()
		if _, err := Check(m, opts); err != nil {
			t.Fatal(err)
		}
	})
	bound := float64(6*samples + 400)
	if allocs > bound {
		t.Fatalf("steady-state check allocates %.0f times for %d samples; want ≤ %.0f",
			allocs, samples, bound)
	}
}

// TestSigmaStashSwap pins the park/restore semantics of the per-variant σ
// stash: cycling A → B → A restores A's exact σ layer, the bound drops
// the least-recently-parked layer, and InvalidateSigma leaves the stash
// alone.
func TestSigmaStashSwap(t *testing.T) {
	c := NewEvalCache()
	const fpA, fpB = 0xa, 0xb
	c.sigma[1.0] = 0.5
	c.sigma[2.0] = 0.7

	c.SwapSigma(fpA, fpB) // park A, B starts empty
	if n := c.SigmaEntries(); n != 0 {
		t.Fatalf("after swap to empty variant: %d active σ entries, want 0", n)
	}
	if n := c.StashedSigmaEntries(); n != 2 {
		t.Fatalf("stashed σ entries = %d, want 2", n)
	}
	c.sigma[3.0] = 0.9 // B's layer

	c.SwapSigma(fpB, fpA) // park B, restore A
	if s, ok := c.sigmaFor(1.0); !ok || s != 0.5 {
		t.Fatalf("restored A layer: σ(1.0) = %v (resident %v), want 0.5", s, ok)
	}
	if s, ok := c.sigmaFor(2.0); !ok || s != 0.7 {
		t.Fatalf("restored A layer: σ(2.0) = %v (resident %v), want 0.7", s, ok)
	}
	if _, ok := c.sigmaFor(3.0); ok {
		t.Fatal("B's σ(3.0) leaked into A's restored layer")
	}
	if n := c.StashedSigmaEntries(); n != 1 {
		t.Fatalf("stashed σ entries = %d, want 1 (B parked)", n)
	}

	// In-place perturbation drops the active layer only.
	c.InvalidateSigma()
	if n := c.SigmaEntries(); n != 0 {
		t.Fatalf("InvalidateSigma left %d active entries", n)
	}
	if n := c.StashedSigmaEntries(); n != 1 {
		t.Fatalf("InvalidateSigma touched the stash: %d entries, want 1", n)
	}

	// Same-fingerprint swap is a no-op.
	c.sigma[4.0] = 0.1
	c.SwapSigma(fpA, fpA)
	if _, ok := c.sigmaFor(4.0); !ok {
		t.Fatal("same-key swap dropped the active layer")
	}
}

// TestSigmaStashBound fills the stash past maxSigmaStash and checks the
// oldest layer is the one dropped.
func TestSigmaStashBound(t *testing.T) {
	c := NewEvalCache()
	for i := 0; i <= maxSigmaStash; i++ { // parks maxSigmaStash+1 layers
		c.sigma[float64(i)] = 1
		c.SwapSigma(uint64(i), uint64(i)+1<<32)
	}
	if got := len(c.stash); got != maxSigmaStash {
		t.Fatalf("stash holds %d layers, want %d", got, maxSigmaStash)
	}
	if _, ok := c.stash[0]; ok {
		t.Fatal("oldest stashed layer survived the bound")
	}
	// The most recently parked layer restores intact.
	c.SwapSigma(9999, uint64(maxSigmaStash))
	if s, ok := c.sigmaFor(float64(maxSigmaStash)); !ok || s != 1 {
		t.Fatalf("restore of newest layer: σ = %v (resident %v), want 1", s, ok)
	}
}

// TestSigmaStashPersistRoundtrip saves a cache carrying stashed variant
// layers and checks each one restores with its exact samples.
func TestSigmaStashPersistRoundtrip(t *testing.T) {
	c := NewEvalCache()
	c.storeBasis(1.0, []complex128{1})
	c.sigma[1.0] = 0.25
	c.SwapSigma(0xaa, 0xbb)
	c.sigma[1.0] = 0.5
	c.SwapSigma(0xbb, 0xcc)
	c.sigma[1.0] = 0.75

	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadEvalCache(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := got.sigmaFor(1.0); !ok || s != 0.75 {
		t.Fatalf("active layer: σ = %v (resident %v), want 0.75", s, ok)
	}
	if n := got.StashedSigmaEntries(); n != 2 {
		t.Fatalf("stashed entries after reload = %d, want 2", n)
	}
	for _, v := range []struct {
		key  uint64
		want float64
	}{{0xaa, 0.25}, {0xbb, 0.5}} {
		got.SwapSigma(0xffff+v.key, v.key)
		if s, ok := got.sigmaFor(1.0); !ok || s != v.want {
			t.Fatalf("variant %#x after reload: σ = %v (resident %v), want %v", v.key, s, ok, v.want)
		}
	}
}
