package passivity

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rational"
)

// This file encodes the ROADMAP repro: a 10-pole weighted-enforced
// synthetic PDN model whose adaptive final check passes while the
// Hamiltonian oracle still finds a residual violation band — the weighted
// cost makes exactly such leftovers likelier because perturbing
// high-sensitivity bands is deliberately expensive, and a sampling
// characterizer at a capped refinement depth (the large-model operating
// point) steps over the band that remains. Pre-refactor this was only
// detectable by running the oracle by hand; post-refactor, certified
// enforcement turns the false pass into an impossible state.

// falsePassModel builds the deterministic 10-pole repro model, the shared
// sensitivity weight, and the enforcement options with the weighted cost
// Gramian installed.
func falsePassModel(t *testing.T) (*rational.Model, *rational.Model, *EnforceOptions) {
	t.Helper()
	model, err := SyntheticModel(SyntheticOptions{
		Ports: 2, Poles: 10, Seed: 3, NarrowBand: true, PeakGain: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	weight, err := rational.RandomScalarWeight(rng, 4)
	if err != nil {
		t.Fatal(err)
	}
	gram, err := rational.CascadeGramian(model.Poles, weight)
	if err != nil {
		t.Fatal(err)
	}
	return model, weight, &EnforceOptions{
		// The capped refinement depth models a latency-bounded service
		// configuration; the narrow residual band needs ~17 bisection
		// stages to resolve and is invisible at 6.
		Check:       CheckOptions{Method: MethodAdaptive, AdaptiveMaxStages: 6},
		CostGramian: gram,
	}
}

// oracleWorstSigma locates the worst σ between the oracle's unit
// crossings (0 when the model has none, i.e. it is truly passive).
func oracleWorstSigma(t *testing.T, m *rational.Model) (float64, float64) {
	t.Helper()
	cr, err := HamiltonianCrossings(m)
	if err != nil {
		t.Fatal(err)
	}
	worst, at := 0.0, 0.0
	ws := &checkWorkspace{}
	for i := 0; i+1 < len(cr); i++ {
		pw, ps := refinePeak(m, cr[i], cr[i+1], testPoint(cr[i], cr[i+1]), nil, ws)
		if ps > worst {
			worst, at = ps, pw
		}
	}
	return worst, at
}

// TestAdaptiveFalsePassCaughtByCertification is the regression pair.
// Uncertified (pre-refactor behaviour): the weighted enforcement converges
// on the adaptive check's word and the oracle still finds a residual band.
// Certified: the same enforcement must catch that band through the
// pipeline, name the stage that caught it, and deliver a model the oracle
// agrees is passive.
func TestAdaptiveFalsePassCaughtByCertification(t *testing.T) {
	model, _, opts := falsePassModel(t)

	// Pre-refactor behaviour: adaptive-only enforcement false-passes.
	plain := model.Clone()
	rep, err := Enforce(plain, *opts)
	if err != nil {
		t.Fatalf("uncertified enforcement errored: %v", err)
	}
	if !rep.Passive {
		t.Fatal("uncertified enforcement did not converge — repro conditions changed")
	}
	worst, at := oracleWorstSigma(t, plain)
	if worst <= 1+1e-9 {
		t.Fatalf("oracle found no residual violation (σ=%g) — the repro no longer reproduces the false pass", worst)
	}
	t.Logf("uncertified enforcement false-passed: oracle finds σ=%.9f at ω=%.6g", worst, at)

	// Post-refactor: certification makes the false pass impossible.
	certified := model.Clone()
	copts := *opts
	copts.Certify = true
	crep, err := Enforce(certified, copts)
	if err != nil {
		t.Fatalf("certified enforcement errored: %v", err)
	}
	if !crep.Passive {
		t.Fatal("certified enforcement did not converge")
	}
	if crep.Certificate == nil || !crep.Certificate.Certified {
		t.Fatalf("missing or incomplete certificate: %+v", crep.Certificate)
	}
	if crep.Certificate.Stage == "" {
		t.Fatal("certificate does not name its stage")
	}
	if crep.CertifiedRescues == 0 {
		t.Fatal("certification never rescued a convergence — the repro band was not caught by the pipeline")
	}
	if worst, at := oracleWorstSigma(t, certified); worst > 1+1e-9 {
		t.Fatalf("oracle still finds σ=%.9f at ω=%.6g after certified enforcement", worst, at)
	}
	// The final certificate describes the last (clean) pipeline run — the
	// rescue count above proves a violation was caught mid-run — and must
	// carry the per-stage accounting the CLI reports.
	if len(crep.Certificate.Stages) == 0 {
		t.Fatal("certificate carries no stage accounting")
	}
}

// TestCertifiedBatchWorkerInvariance pins the acceptance criterion that
// certified batch enforcement stays bitwise identical across worker
// counts: each model — including the repro false-pass model — is certified
// on its owning worker with purely per-model state.
func TestCertifiedBatchWorkerInvariance(t *testing.T) {
	build := func() ([]*rational.Model, BatchOptions) {
		repro, weight, opts := falsePassModel(t)
		lib := []*rational.Model{repro}
		for _, seed := range []int64{101, 102, 103} {
			m, err := SyntheticModel(SyntheticOptions{Ports: 2, Poles: 12, Seed: seed, PeakGain: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			lib = append(lib, m)
		}
		// The shared weight: each model's cost Gramian is built on its
		// owning worker from its own pole set.
		bopts := BatchOptions{Enforce: *opts, Weight: weight}
		bopts.Enforce.CostGramian = nil
		bopts.Enforce.Certify = true
		return lib, bopts
	}

	lib1, b1 := build()
	b1.Workers = 1
	rep1 := EnforceBatch(lib1, b1)
	lib4, b4 := build()
	b4.Workers = 4
	rep4 := EnforceBatch(lib4, b4)

	if rep1.Stats != rep4.Stats {
		t.Fatalf("batch stats differ across worker counts:\n%+v\nvs\n%+v", rep1.Stats, rep4.Stats)
	}
	if rep1.Stats.Certified != len(lib1) {
		t.Fatalf("expected every model certified, got %d/%d", rep1.Stats.Certified, len(lib1))
	}
	if rep1.Stats.CertifiedRescues == 0 {
		t.Fatal("the repro model's rescue did not surface in the batch stats")
	}
	for i := range lib1 {
		if lib1[i].NumPoles() != lib4[i].NumPoles() {
			t.Fatalf("model %d order differs", i)
		}
		for k := range lib1[i].Residues {
			a, b := lib1[i].Residues[k], lib4[i].Residues[k]
			for e := range a.Data {
				if a.Data[e] != b.Data[e] {
					t.Fatalf("model %d residue %d entry %d differs bitwise: %v vs %v (Δ=%g)",
						i, k, e, a.Data[e], b.Data[e], math.Abs(real(a.Data[e]-b.Data[e])))
				}
			}
		}
	}
}
