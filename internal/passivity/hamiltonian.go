// Package passivity implements passivity assessment and enforcement for
// scattering-domain pole-residue macromodels: the Hamiltonian imaginary-
// eigenvalue test and adaptive singular-value sweeps for detection, and the
// iterative residue-perturbation scheme of the paper (eqs. 8–10) — a
// sequence of convex QPs minimizing a Gramian-weighted ‖δS‖² subject to
// linearized singular-value constraints — for enforcement. The cost
// Gramian is pluggable: the standard controllability Gramian gives the
// classical L2 scheme, while the sensitivity-weighted Gramian P^Ξ,11 from
// internal/core gives the paper's method.
package passivity

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/rational"
)

// ErrAsymptoticViolation is returned when σ_max(D) ≥ 1: perturbing the
// residues (C matrix) cannot repair a direct-coupling violation.
var ErrAsymptoticViolation = errors.New("passivity: σmax(D) ≥ 1, not repairable by residue perturbation")

// HamiltonianMatrix builds the Hamiltonian test matrix associated with the
// bounded-real (scattering) passivity of the realization {A,B,C,D}:
//
//	M = | A − B·R⁻¹·Dᵀ·C       −B·R⁻¹·Bᵀ          |
//	    | Cᵀ·Q⁻¹·C             −Aᵀ + Cᵀ·D·R⁻¹·Bᵀ  |
//
// with R = DᵀD − I and Q = DDᵀ − I. S(jω₀) has a unit singular value iff
// jω₀ is an eigenvalue of M (Grivet-Talocia 2004).
func HamiltonianMatrix(a, b, c, d *mat.Matrix) (*mat.Matrix, error) {
	return HamiltonianMatrixLevel(a, b, c, d, 1)
}

// HamiltonianMatrixLevel builds the level-γ Hamiltonian (Bruinsma–
// Steinbuch): with R = DᵀD − γ²I and Q = DDᵀ − γ²I,
//
//	M_γ = | A − B·R⁻¹·Dᵀ·C       −B·R⁻¹·Bᵀ          |
//	      | γ²·Cᵀ·Q⁻¹·C          −Aᵀ + Cᵀ·D·R⁻¹·Bᵀ  |
//
// so that σ(S(jω₀)) = γ iff jω₀ is an eigenvalue of M_γ. γ = 1 recovers
// the passivity test; the certifier uses γ < 1 to verify that a reduced
// model stays below a level tightened by the truncated far-pole tail. γ
// must not be a singular value of D.
func HamiltonianMatrixLevel(a, b, c, d *mat.Matrix, gamma float64) (*mat.Matrix, error) {
	n := a.Rows
	g2 := gamma * gamma
	r := d.T().Mul(d)
	q := d.Mul(d.T())
	for i := 0; i < r.Rows; i++ {
		r.Set(i, i, r.At(i, i)-g2)
	}
	for i := 0; i < q.Rows; i++ {
		q.Set(i, i, q.At(i, i)-g2)
	}
	rInv, err := mat.Inverse(r)
	if err != nil {
		return nil, fmt.Errorf("passivity: DᵀD−γ²I singular (σ(D)=γ=%g): %w", gamma, err)
	}
	qInv, err := mat.Inverse(q)
	if err != nil {
		return nil, fmt.Errorf("passivity: DDᵀ−γ²I singular (σ(D)=γ=%g): %w", gamma, err)
	}
	brd := b.Mul(rInv).Mul(d.T()) // B R⁻¹ Dᵀ
	m := mat.NewMatrix(2*n, 2*n)
	m.SetSlice(0, 0, a.Sub(brd.Mul(c)))
	m.SetSlice(0, n, b.Mul(rInv).Mul(b.T()).Scale(-1))
	m.SetSlice(n, 0, c.T().Mul(qInv).Mul(c).Scale(g2))
	m.SetSlice(n, n, a.T().Scale(-1).Add(c.T().Mul(d).Mul(rInv).Mul(b.T())))
	return m, nil
}

// HamiltonianFactorsLevel builds the level-γ Hamiltonian of a pole-residue
// model in the factored diagonal-plus-low-rank form M_γ = Λ + U·Vᵀ
// (mat.StructuredShifted), never materializing the dense 2nP×2nP matrix:
//
//	Λ  = blkdiag(A, −Aᵀ)            block-diagonal in the poles (A = I_P⊗A₁)
//	U  = | B   0  |                 2nP×2P
//	     | 0   Cᵀ |
//	Vᵀ = | −R⁻¹·Dᵀ·C    −R⁻¹·Bᵀ   |  2P×2nP, R = DᵀD−γ²I, Q = DDᵀ−γ²I
//	     | γ²·Q⁻¹·C      D·R⁻¹·Bᵀ |
//
// Every correction block of the Bruinsma–Steinbuch pencil factors through
// B or Cᵀ, so the rank is p = 2·P ≪ N and the structured contour/probe
// kernels run in O(N·p²) per node instead of the dense O(N³). Memory is
// O(N·p). Like HamiltonianMatrixLevel it fails when γ is a singular value
// of D.
func HamiltonianFactorsLevel(model *rational.Model, gamma float64) (*mat.StructuredShifted, error) {
	n := model.NumPoles()
	np := model.Ports()
	half := n * np
	g2 := gamma * gamma
	d := model.D
	r := d.T().Mul(d)
	q := d.Mul(d.T())
	for i := 0; i < np; i++ {
		r.Set(i, i, r.At(i, i)-g2)
		q.Set(i, i, q.At(i, i)-g2)
	}
	rInv, err := mat.Inverse(r)
	if err != nil {
		return nil, fmt.Errorf("passivity: DᵀD−γ²I singular (σ(D)=γ=%g): %w", gamma, err)
	}
	qInv, err := mat.Inverse(q)
	if err != nil {
		return nil, fmt.Errorf("passivity: DDᵀ−γ²I singular (σ(D)=γ=%g): %w", gamma, err)
	}
	// Λ: P copies of A₁'s blocks, then P copies of −A₁ᵀ's. A pair block
	// [[α, β], [−β, α]] transposes and negates to [[−α, β], [−β, −α]] — the
	// skew entry keeps its sign in the [[d₁, e], [−e, d₂]] encoding.
	diag := make([]float64, 2*half)
	skew := make([]float64, 2*half)
	for j := 0; j < np; j++ {
		base := j * n
		for k := 0; k < n; {
			p := model.Poles[k]
			if imag(p) == 0 {
				diag[base+k] = real(p)
				diag[half+base+k] = -real(p)
				k++
				continue
			}
			al, be := real(p), imag(p)
			diag[base+k], diag[base+k+1] = al, al
			skew[base+k] = be
			diag[half+base+k], diag[half+base+k+1] = -al, -al
			skew[half+base+k] = be
			k += 2
		}
	}
	_, b1 := rational.BasisFromPoles(model.Poles)
	cvs := make([][]float64, np*np) // cvs[i*P+j] = CVector(i,j): C[i][j·n+k]
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			cvs[i*np+j] = model.CVector(i, j)
		}
	}
	drInv := d.Mul(rInv)      // D·R⁻¹
	rInvDt := rInv.Mul(d.T()) // R⁻¹·Dᵀ
	u := mat.NewMatrix(2*half, 2*np)
	v := mat.NewMatrix(2*half, 2*np)
	for j := 0; j < np; j++ {
		for k := 0; k < n; k++ {
			row := j*n + k
			ut, ub := u.Row(row), u.Row(half+row)
			vt, vb := v.Row(row), v.Row(half+row)
			ut[j] = b1[k] // B = I_P⊗b₁
			for i := 0; i < np; i++ {
				ub[np+i] = cvs[i*np+j][k] // Cᵀ
			}
			for m := 0; m < np; m++ {
				// V top half: −Cᵀ·(D·R⁻¹) and γ²·Cᵀ·Q⁻¹ (R, Q symmetric).
				var a, b float64
				for i := 0; i < np; i++ {
					ci := cvs[i*np+j][k]
					a -= ci * drInv.At(i, m)
					b += ci * qInv.At(i, m)
				}
				vt[m] = a
				vt[np+m] = g2 * b
				// V bottom half: −B·R⁻¹ and B·(R⁻¹·Dᵀ).
				vb[m] = -b1[k] * rInv.At(j, m)
				vb[np+m] = b1[k] * rInvDt.At(j, m)
			}
		}
	}
	return mat.NewStructuredShifted(diag, skew, u, v), nil
}

// HamiltonianCrossings returns the frequencies ω ≥ 0 (rad/s) at which some
// singular value of the model's scattering matrix crosses 1, found as the
// imaginary eigenvalues of the Hamiltonian matrix. An empty result together
// with σmax(D) < 1 and a sub-unit spot check certifies passivity.
func HamiltonianCrossings(model *rational.Model) ([]float64, error) {
	return HamiltonianCrossingsLevel(model, 1)
}

// HamiltonianCrossingsLevel returns the frequencies ω ≥ 0 (rad/s) at which
// some singular value of the model's scattering matrix crosses the level γ
// (see HamiltonianMatrixLevel).
func HamiltonianCrossingsLevel(model *rational.Model, gamma float64) ([]float64, error) {
	sys := model.Realization()
	h, err := HamiltonianMatrixLevel(sys.A, sys.B, sys.C, sys.D, gamma)
	if err != nil {
		return nil, err
	}
	ev, err := mat.EigenValues(h)
	if err != nil {
		return nil, fmt.Errorf("passivity: Hamiltonian eigenvalues: %w", err)
	}
	var crossings []float64
	scale := 0.0
	for _, z := range ev {
		if a := math.Hypot(real(z), imag(z)); a > scale {
			scale = a
		}
	}
	tol := 1e-8 * (1 + scale)
	for _, z := range ev {
		if math.Abs(real(z)) < tol && imag(z) > tol {
			crossings = append(crossings, imag(z))
		}
	}
	sortFloats(crossings)
	return crossings, nil
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
