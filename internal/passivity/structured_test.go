package passivity

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/rational"
)

// The tests in this file validate HamiltonianFactorsLevel end to end: the
// factored diagonal-plus-low-rank pencil must materialize to exactly the
// Bruinsma–Steinbuch matrix HamiltonianMatrixLevel builds, and the
// structured determinant/solve kernels must agree with an independent dense
// complex LU on the same shifted pencil. The corpus spans ports, orders and
// levels γ on both passive and violating synthetic models — well over 100
// (model, shift) Hamiltonian instances.

// corpusCases enumerates the synthetic models the oracle tests run over.
// Gammas stay clear of singular values of D (σmax(D) defaults 0.9).
func corpusCases(t *testing.T) []corpusCase {
	t.Helper()
	var cases []corpusCase
	gammas := []float64{1, 0.97, 1.5}
	seed := int64(4200)
	for _, ports := range []int{1, 2, 3} {
		for _, poles := range []int{4, 8, 14} {
			for trial := 0; trial < 4; trial++ {
				seed++
				peak := 0.1 + 0.1*float64(trial)
				model, err := SyntheticModel(SyntheticOptions{Ports: ports, Poles: poles, Seed: seed, PeakGain: peak})
				if err != nil {
					t.Fatalf("ports=%d poles=%d seed=%d: %v", ports, poles, seed, err)
				}
				cases = append(cases, corpusCase{model: model, gamma: gammas[trial%len(gammas)]})
			}
		}
	}
	return cases
}

type corpusCase struct {
	model *rational.Model
	gamma float64
}

// TestStructuredFactorsMaterialize checks that the factored pencil
// materializes to the dense Bruinsma–Steinbuch Hamiltonian entry for entry.
func TestStructuredFactorsMaterialize(t *testing.T) {
	for _, tc := range corpusCases(t) {
		s, err := HamiltonianFactorsLevel(tc.model, tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		sys := tc.model.Realization()
		h, err := HamiltonianMatrixLevel(sys.A, sys.B, sys.C, sys.D, tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		got := s.Materialize()
		scale := 0.0
		for _, v := range h.Data {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := 0; i < h.Rows; i++ {
			for j := 0; j < h.Cols; j++ {
				if d := math.Abs(got.At(i, j) - h.At(i, j)); d > 1e-10*scale {
					t.Fatalf("γ=%g dim=%d: entry (%d,%d) factored %g dense %g (Δ=%g)",
						tc.gamma, h.Rows, i, j, got.At(i, j), h.At(i, j), d)
				}
			}
		}
	}
}

// TestStructuredDetOracleHamiltonian cross-validates LogDetPhase against an
// independent dense complex LU of zI − M_γ at shifts spread over the
// pencil's spectral range.
func TestStructuredDetOracleHamiltonian(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	checked := 0
	for _, tc := range corpusCases(t) {
		s, err := HamiltonianFactorsLevel(tc.model, tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		dense := s.Materialize()
		bound := s.EigenBound()
		for trial := 0; trial < 3; trial++ {
			z := complex((rng.Float64()-0.5)*bound, (rng.Float64()-0.5)*bound)
			wantPhase, wantLog, singular := denseHamLogDet(dense, z)
			if singular {
				continue
			}
			phase, logAbs, err := s.LogDetPhase(z)
			if err != nil {
				t.Fatalf("γ=%g z=%v: LogDetPhase: %v", tc.gamma, z, err)
			}
			if d := math.Abs(wrapPiTest(phase - wantPhase)); d > 1e-6 {
				t.Fatalf("γ=%g dim=%d z=%v: phase %g, dense %g (Δ=%g)", tc.gamma, s.Dim(), z, phase, wantPhase, d)
			}
			if d := math.Abs(logAbs - wantLog); d > 1e-6*(1+math.Abs(wantLog)) {
				t.Fatalf("γ=%g dim=%d z=%v: log|det| %g, dense %g", tc.gamma, s.Dim(), z, logAbs, wantLog)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("det oracle covered only %d Hamiltonian shifts", checked)
	}
}

// TestStructuredSolveOracleHamiltonian cross-validates the Woodbury solve
// against the dense complex solver on the same shifted pencils.
func TestStructuredSolveOracleHamiltonian(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	checked := 0
	for _, tc := range corpusCases(t) {
		s, err := HamiltonianFactorsLevel(tc.model, tc.gamma)
		if err != nil {
			t.Fatal(err)
		}
		n := s.Dim()
		dense := s.Materialize()
		bound := s.EigenBound()
		z := complex(0.3*bound*(rng.Float64()+0.1), 0.4*bound*(rng.Float64()-0.5))
		a := mat.NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := complex(-dense.At(i, j), 0)
				if i == j {
					v += z
				}
				a.Set(i, j, v)
			}
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want, err := mat.CSolveLin(a, b)
		if err != nil {
			continue
		}
		got := make([]complex128, n)
		if err := s.SolveInto(z, got, b); err != nil {
			t.Fatalf("γ=%g z=%v: SolveInto: %v", tc.gamma, z, err)
		}
		var num, den float64
		for i := range got {
			num += cmplx.Abs(got[i]-want[i]) * cmplx.Abs(got[i]-want[i])
			den += cmplx.Abs(want[i]) * cmplx.Abs(want[i])
		}
		if math.Sqrt(num) > 1e-7*(1+math.Sqrt(den)) {
			t.Fatalf("γ=%g dim=%d z=%v: Woodbury solve off by %g (rel)", tc.gamma, n, z, math.Sqrt(num/den))
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("solve oracle covered only %d pencils", checked)
	}
}

// denseHamLogDet is an independent complex-LU log-determinant of zI − M,
// used as the oracle (no code shared with StructuredShifted or
// mat.DenseShifted's pivot bookkeeping).
func denseHamLogDet(m *mat.Matrix, z complex128) (phase, logAbs float64, singular bool) {
	n := m.Rows
	a := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = -complex(m.At(i, j), 0)
		}
		a[i*n+i] += z
	}
	for k := 0; k < n; k++ {
		p, best := k, cmplx.Abs(a[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(a[i*n+k]); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return 0, 0, true
		}
		if p != k {
			for j := 0; j < n; j++ {
				a[k*n+j], a[p*n+j] = a[p*n+j], a[k*n+j]
			}
			phase += math.Pi
		}
		piv := a[k*n+k]
		phase += cmplx.Phase(piv)
		logAbs += math.Log(cmplx.Abs(piv))
		for i := k + 1; i < n; i++ {
			f := a[i*n+k] / piv
			for j := k + 1; j < n; j++ {
				a[i*n+j] -= f * a[k*n+j]
			}
		}
	}
	return wrapPiTest(phase), logAbs, false
}

// wrapPiTest reduces an angle to (−π, π].
func wrapPiTest(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}
