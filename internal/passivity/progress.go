package passivity

import "context"

// Progress event kinds reported through CheckOptions.Progress. The check
// event fires once per completed passivity check (inside Enforce that is
// once per sweep), the iteration event after every applied perturbation,
// and the certificate-stage event after each certification-pipeline stage.
const (
	// ProgressCheck reports a completed passivity check.
	ProgressCheck = "check"
	// ProgressIteration reports a completed enforcement sweep.
	ProgressIteration = "iteration"
	// ProgressCertStage reports a completed certification-pipeline stage.
	ProgressCertStage = "certificate-stage"
)

// ProgressEvent is one observation of a long-running check, enforcement or
// certification run, delivered synchronously on the goroutine doing the
// work. Handlers must be fast and, inside EnforceBatch, safe for
// concurrent calls from different workers.
type ProgressEvent struct {
	// Kind is one of ProgressCheck, ProgressIteration, ProgressCertStage.
	Kind string
	// Model is the batch model index the event belongs to (-1 outside a
	// batch; see CheckOptions.ProgressModel).
	Model int
	// Iteration is the 1-based enforcement sweep count (iteration events).
	Iteration int
	// MaxSigma is the worst singular value the step observed.
	MaxSigma float64
	// Passive is the step's verdict (check events).
	Passive bool
	// Stage names the certification stage (certificate-stage events).
	Stage string
	// Samples counts the σ(ω) evaluations the step spent.
	Samples int
	// Nodes counts contour-quadrature determinant evaluations
	// (certificate-stage events from the counter stage).
	Nodes int
	// Backend names the kernel backend a certificate stage ran (or
	// declined) on — BackendStructured or BackendDense; empty when the
	// stage involved no eigenproblem kernel.
	Backend string
	// Declined counts the open intervals a certificate stage declined at
	// its dimension gate (certificate-stage events).
	Declined int
}

// ProgressFunc receives progress events. A nil ProgressFunc disables
// reporting at zero cost.
type ProgressFunc func(ProgressEvent)

// emit delivers an event through the configured sink, tagging it with the
// configured model index.
func (o *CheckOptions) emit(ev ProgressEvent) {
	if o.Progress == nil {
		return
	}
	ev.Model = o.ProgressModel
	o.Progress(ev)
}

// ctxErr reports the cancellation state of an optional context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
