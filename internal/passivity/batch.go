package passivity

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/parallel"
	"repro/internal/rational"
)

// BatchOptions configures EnforceBatch.
type BatchOptions struct {
	// Enforce is the base enforcement configuration applied to every model.
	// Its Cache and workspace fields are ignored: each model receives a
	// private EvalCache (caches memoize a single pole set) and each worker
	// a persistent workspace pool.
	Enforce EnforceOptions
	// Workers bounds the model-level shards (0 = GOMAXPROCS, 1 = serial).
	// Results are bitwise independent of the value: each model is enforced
	// by exactly one worker with the same per-model state it would see in a
	// sequential run.
	Workers int
	// Weight, when non-nil, selects the sensitivity-weighted cost for every
	// model: the cost Gramian of model i is the closed-form cascade block
	// P^Ξ,11 = rational.CascadeGramian(model.Poles, Weight), computed on the
	// worker goroutine that owns the model (the block depends on the model's
	// pole set, so it cannot be shared across models). The weight must be a
	// stable SISO rational model.
	Weight *rational.Model
	// Weights supplies a per-model weight, overriding Weight for the models
	// whose entry is non-nil (a nil entry falls back to Weight, or to the
	// unweighted cost when Weight is nil too). When non-nil its length must
	// equal the model count.
	Weights []*rational.Model
	// PerModel, when non-nil, derives the enforcement options of model i
	// from the base options (e.g. a custom per-model cost Gramian). It runs
	// on the worker goroutine that owns model i and must not share mutable
	// state across calls. It sees — and may override — the weight-derived
	// CostGramian installed by Weight/Weights.
	PerModel func(i int, m *rational.Model, base EnforceOptions) (EnforceOptions, error)
	// Ctx, when non-nil, cancels the batch cooperatively: workers stop
	// claiming new models, the model in flight on each worker stops at its
	// own next cancellation point (returning its partial report), and
	// models never claimed get ctx.Err() in their result slot. No
	// goroutines outlive the call.
	Ctx context.Context
	// CacheFor, when non-nil, supplies the evaluation cache of model i. It
	// is called on the worker goroutine that owns the model, immediately
	// before its enforcement, and pairs with CacheDone(i) right after the
	// model completes — so a provider can lease caches per model instead
	// of pinning one per library entry for the whole batch (the Session
	// layer checks fingerprint-keyed caches out and in this way, keeping
	// its byte budget meaningful during large runs). Returning nil selects
	// a fresh private cache, the pre-Session behavior. The returned caches
	// must be distinct across concurrently running models — a cache is
	// single-goroutine state.
	CacheFor func(i int) *EvalCache
	// CacheDone returns the cache of model i after its enforcement
	// finished (successfully or not). Called on the owning worker
	// goroutine; may be nil.
	CacheDone func(i int)
	// Progress, when non-nil, receives the progress events of every
	// per-model enforcement run, tagged with the model index. It is called
	// from concurrent worker goroutines and must be safe for that.
	Progress ProgressFunc
}

// ErrBatchWeightCount is returned when BatchOptions.Weights is non-nil but
// not index-aligned with the model slice.
var ErrBatchWeightCount = errors.New("passivity: BatchOptions.Weights length must match the model count")

// ModelResult is the per-model outcome of a batch run.
type ModelResult struct {
	Report *EnforceReport // nil when Err is non-nil and no report was built
	Err    error
}

// BatchStats aggregates a batch run.
type BatchStats struct {
	Models          int
	Passive         int     // models passive after enforcement
	Failed          int     // models whose enforcement returned an error
	TotalIterations int     // enforcement sweeps summed over all models
	TotalSamples    int     // σ grid evaluations of the final checks
	WorstSigma      float64 // largest final σ_max across models
	// Certified counts models whose final certificate covers the whole
	// axis (Certificate.Certified); zero when certification is off.
	Certified int
	// CertifiedRescues sums the convergences across the library where the
	// fast check passed but the certification pipeline proved a residual
	// violation that re-entered the enforcement loop.
	CertifiedRescues int
}

// BatchReport is the outcome of EnforceBatch, index-aligned with the input
// models.
type BatchReport struct {
	Results []ModelResult
	Stats   BatchStats
}

// EnforceBatch enforces passivity on a library of models in place,
// sharding the models across up to Workers goroutines. Each worker carries
// a persistent workspace pool (buffers warm up once and are reused across
// all models the worker processes) and each model a private EvalCache, so
// steady-state enforcement performs no per-frequency allocations. Every
// model is attempted regardless of other models' failures; per-model
// errors land in the result slots. The per-model reports and the final
// residues are bitwise identical to running sequential Enforce on each
// model with the same base options; with Weight/Weights set they are
// bitwise identical to the sequential sensitivity-weighted run (the
// per-model cost Gramian comes from the same closed-form
// rational.CascadeGramian in both paths).
//
// With Enforce.Certify set, each model's convergences escalate through the
// certification pipeline on the worker goroutine that owns the model —
// its eigensolves, reduced models and probes touch only per-model state,
// so certified batch results remain bitwise identical to sequential
// certified runs at every worker count.
//
// Inside a sharded run the per-check worker fan-out is forced serial
// (Check results are worker-count independent, so this changes nothing but
// the scheduling): model-level parallelism already saturates the cores,
// and nested fan-outs would only thrash them.
//
// Cancellation: when Ctx is cancelled the workers drain deterministically —
// no new models are claimed, in-flight models stop at their own next
// cancellation point with partial per-model reports, never-claimed models
// get ctx.Err() in their result slot, and no goroutine outlives the call.
// The aggregate stats cover whatever completed; cancelled models count as
// failed.
func EnforceBatch(models []*rational.Model, opts BatchOptions) *BatchReport {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &BatchReport{Results: make([]ModelResult, len(models))}
	fillErr := func(err error) *BatchReport {
		for i := range rep.Results {
			rep.Results[i] = ModelResult{Err: err}
		}
		rep.Stats.Models = len(models)
		rep.Stats.Failed = len(models)
		return rep
	}
	if opts.Weights != nil && len(opts.Weights) != len(models) {
		return fillErr(ErrBatchWeightCount)
	}
	pools := make([]*workspacePool, workers)
	for i := range pools {
		pools[i] = newWorkspacePool()
	}
	ctxFailed := parallel.ForWorkerCtx(opts.Ctx, workers, len(models), func(wk, i int) {
		eopts := opts.Enforce
		weight := opts.Weight
		if opts.Weights != nil && opts.Weights[i] != nil {
			weight = opts.Weights[i]
		}
		if weight != nil {
			gram, err := rational.CascadeGramian(models[i].Poles, weight)
			if err != nil {
				rep.Results[i] = ModelResult{Err: fmt.Errorf("passivity: weighted cost Gramian of model %d: %w", i, err)}
				return
			}
			eopts.CostGramian = gram
		}
		if opts.PerModel != nil {
			var err error
			eopts, err = opts.PerModel(i, models[i], eopts)
			if err != nil {
				rep.Results[i] = ModelResult{Err: err}
				return
			}
		}
		eopts.Check.Cache = nil
		if opts.CacheFor != nil {
			eopts.Check.Cache = opts.CacheFor(i)
		}
		if eopts.Check.Cache == nil {
			eopts.Check.Cache = NewEvalCache()
		}
		eopts.Check.Ctx = opts.Ctx
		eopts.Check.Progress = opts.Progress
		eopts.Check.ProgressModel = i
		eopts.Check.work = pools[wk]
		if workers > 1 {
			eopts.Check.Workers = 1
		}
		r, err := Enforce(models[i], eopts)
		if opts.CacheDone != nil {
			opts.CacheDone(i)
		}
		rep.Results[i] = ModelResult{Report: r, Err: err}
	})
	if ctxFailed != nil {
		// Models never claimed before the cancellation: mark them so the
		// report stays index-coherent (a claimed model carries either its
		// full result or its own partial report + ctx error).
		for i := range rep.Results {
			if rep.Results[i].Report == nil && rep.Results[i].Err == nil {
				rep.Results[i] = ModelResult{Err: ctxFailed}
			}
		}
	}

	st := &rep.Stats
	st.Models = len(models)
	for _, r := range rep.Results {
		if r.Err != nil {
			st.Failed++
		}
		if r.Report == nil {
			continue
		}
		st.TotalIterations += r.Report.Iterations
		st.CertifiedRescues += r.Report.CertifiedRescues
		if r.Report.Passive {
			st.Passive++
		}
		if c := r.Report.Certificate; c != nil && c.Certified {
			st.Certified++
		}
		if f := r.Report.Final; f != nil {
			st.TotalSamples += f.Samples
			if f.MaxSigma > st.WorstSigma {
				st.WorstSigma = f.MaxSigma
			}
		}
	}
	return rep
}
