package passivity

import (
	"runtime"

	"repro/internal/parallel"
	"repro/internal/rational"
)

// BatchOptions configures EnforceBatch.
type BatchOptions struct {
	// Enforce is the base enforcement configuration applied to every model.
	// Its Cache and workspace fields are ignored: each model receives a
	// private EvalCache (caches memoize a single pole set) and each worker
	// a persistent workspace pool.
	Enforce EnforceOptions
	// Workers bounds the model-level shards (0 = GOMAXPROCS, 1 = serial).
	// Results are bitwise independent of the value: each model is enforced
	// by exactly one worker with the same per-model state it would see in a
	// sequential run.
	Workers int
	// PerModel, when non-nil, derives the enforcement options of model i
	// from the base options (e.g. a per-model cost Gramian for the
	// sensitivity-weighted scheme). It runs on the worker goroutine that
	// owns model i and must not share mutable state across calls.
	PerModel func(i int, m *rational.Model, base EnforceOptions) (EnforceOptions, error)
}

// ModelResult is the per-model outcome of a batch run.
type ModelResult struct {
	Report *EnforceReport // nil when Err is non-nil and no report was built
	Err    error
}

// BatchStats aggregates a batch run.
type BatchStats struct {
	Models          int
	Passive         int     // models passive after enforcement
	Failed          int     // models whose enforcement returned an error
	TotalIterations int     // enforcement sweeps summed over all models
	TotalSamples    int     // σ grid evaluations of the final checks
	WorstSigma      float64 // largest final σ_max across models
}

// BatchReport is the outcome of EnforceBatch, index-aligned with the input
// models.
type BatchReport struct {
	Results []ModelResult
	Stats   BatchStats
}

// EnforceBatch enforces passivity on a library of models in place,
// sharding the models across up to Workers goroutines. Each worker carries
// a persistent workspace pool (buffers warm up once and are reused across
// all models the worker processes) and each model a private EvalCache, so
// steady-state enforcement performs no per-frequency allocations. Every
// model is attempted regardless of other models' failures; per-model
// errors land in the result slots. The per-model reports and the final
// residues are bitwise identical to running sequential Enforce on each
// model with the same base options.
//
// Inside a sharded run the per-check worker fan-out is forced serial
// (Check results are worker-count independent, so this changes nothing but
// the scheduling): model-level parallelism already saturates the cores,
// and nested fan-outs would only thrash them.
func EnforceBatch(models []*rational.Model, opts BatchOptions) *BatchReport {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &BatchReport{Results: make([]ModelResult, len(models))}
	pools := make([]*workspacePool, workers)
	for i := range pools {
		pools[i] = newWorkspacePool()
	}
	parallel.ForWorker(workers, len(models), func(wk, i int) {
		eopts := opts.Enforce
		if opts.PerModel != nil {
			var err error
			eopts, err = opts.PerModel(i, models[i], eopts)
			if err != nil {
				rep.Results[i] = ModelResult{Err: err}
				return
			}
		}
		eopts.Check.Cache = NewEvalCache()
		eopts.Check.work = pools[wk]
		if workers > 1 {
			eopts.Check.Workers = 1
		}
		r, err := Enforce(models[i], eopts)
		rep.Results[i] = ModelResult{Report: r, Err: err}
	})

	st := &rep.Stats
	st.Models = len(models)
	for _, r := range rep.Results {
		if r.Err != nil {
			st.Failed++
		}
		if r.Report == nil {
			continue
		}
		st.TotalIterations += r.Report.Iterations
		if r.Report.Passive {
			st.Passive++
		}
		if f := r.Report.Final; f != nil {
			st.TotalSamples += f.Samples
			if f.MaxSigma > st.WorstSigma {
				st.WorstSigma = f.MaxSigma
			}
		}
	}
	return rep
}
