package passivity

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/qp"
	"repro/internal/rational"
)

// EnforceOptions configures the iterative perturbation loop (paper eq. 9).
type EnforceOptions struct {
	// Check configures the violation detection used each iteration.
	Check CheckOptions
	// MaxIterations bounds the outer loop (default 40).
	MaxIterations int
	// Margin pushes constrained singular values to σ ≤ 1 − Margin
	// (default 1e-4) so that the linearization error does not leave
	// residual violations.
	Margin float64
	// GuardBand adds preventive constraints on singular values that are
	// still below one but within GuardBand of it (default 2e-3), damping
	// the whack-a-mole effect of violations reappearing next to freshly
	// fixed bands.
	GuardBand float64
	// CostGramian is the n×n SPD matrix G defining the perturbation norm
	// ‖δS‖² = Σ_ij δc_ij·G·δc_ijᵀ. Nil selects the standard L2 cost, the
	// controllability Gramian of the pole basis (paper eq. 10). The
	// sensitivity-weighted scheme passes P^Ξ,11 (paper eq. 20).
	CostGramian *mat.Matrix
	// MaxBandSubdivision adds up to this many interior constraint
	// frequencies for wide violation bands (default 3).
	MaxBandSubdivision int
	// ClampD allows a one-time singular-value clip of the direct-coupling
	// matrix D to 1−Margin when the fitted model violates passivity
	// asymptotically (σmax(D) ≥ 1). Residue perturbation cannot repair D,
	// so without this flag such models are rejected.
	ClampD bool
	// Certify escalates every convergence of the fast per-sweep check
	// through the staged certification pipeline (certify.go). Violation
	// bands the pipeline proves re-enter the loop as constraints instead
	// of being declared passive, which makes the known adaptive false-pass
	// (a residual band the sampling stepped over) an impossible state by
	// construction. The per-sweep checks themselves stay on the fast
	// method; certification runs only when they report passive.
	Certify bool
	// CertifyOpts tunes the certification pipeline (zero value = defaults).
	CertifyOpts CertifyOptions
}

// IterationStats records one enforcement sweep.
type IterationStats struct {
	MaxSigma    float64 // worst σ before this sweep's perturbation
	Constraints int     // number of linearized constraints in the QP
	DeltaNorm   float64 // Frobenius norm of the applied δC
}

// EnforceReport summarizes an enforcement run.
type EnforceReport struct {
	Passive    bool
	Iterations int
	History    []IterationStats
	Final      *Report // the last passivity check
	// DClamped reports that the direct-coupling matrix was clipped to the
	// passivity boundary before the perturbation loop (see
	// EnforceOptions.ClampD).
	DClamped bool
	// Certificate is the last certification-pipeline verdict (nil unless
	// EnforceOptions.Certify). When Passive is true it describes how the
	// final model was certified. A Certificate with Certified false and no
	// Violations means the rigorous stages could not cover the whole axis
	// (its Open intervals outgrew the restricted stage's reduction
	// capacity or the probe dimension cap); Enforce still reports Passive
	// on the fast check's word, so callers needing a hard guarantee must
	// check Certificate.Certified.
	Certificate *Certificate
	// CertifiedRescues counts convergences where the fast check reported
	// passive but the pipeline proved a residual violation that re-entered
	// the loop — each one is a false pass the refactor turned into work.
	CertifiedRescues int
}

// ErrEnforceFailed is wrapped when the loop exhausts its iterations.
var ErrEnforceFailed = errors.New("passivity: enforcement did not converge")

// constraint is one linearized singular-value constraint.
type constraint struct {
	omega float64
	sigma float64
	u, v  []complex128 // singular vectors
	rk    []float64    // Re k̃(ω)
	ik    []float64    // Im k̃(ω)
	wr    []float64    // G⁻¹·Re k̃
	wi    []float64    // G⁻¹·Im k̃
}

// Enforce removes passivity violations of the model in place by the
// iterative residue-perturbation scheme, minimizing the Gramian-weighted
// perturbation norm subject to σ_i(jω_ν) + δσ_i ≤ 1 − Margin. The model's
// poles and D are untouched; only residues move.
//
// Enforce is an iteration engine over a two-speed detection stack: every
// sweep runs the fast configured check (opts.Check), and — with
// opts.Certify — each convergence escalates through the certification
// pipeline, whose proven violation bands re-enter the loop as constraints
// (seeding the evaluation cache so the fast stage tracks them from then
// on) instead of terminating it.
//
// Cancellation: when opts.Check.Ctx is cancelled, Enforce stops at the
// next cooperative point (between sweeps, between σ fan-out claims,
// between certification stages) and returns ctx.Err() together with a
// partial report covering the sweeps already applied — the model keeps
// those perturbations, since enforcement is in place. On any other error
// the report is nil.
func Enforce(model *rational.Model, opts EnforceOptions) (*EnforceReport, error) {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 40
	}
	if opts.Margin <= 0 {
		opts.Margin = 1e-4
	}
	if opts.GuardBand <= 0 {
		opts.GuardBand = 2e-3
	}
	if opts.MaxBandSubdivision <= 0 {
		opts.MaxBandSubdivision = 3
	}
	rep := &EnforceReport{}
	dSigma := mat.MaxSingularValue(mat.RealToComplex(model.D))
	if dSigma >= 1-opts.Margin {
		if !opts.ClampD {
			return nil, fmt.Errorf("%w (σmax(D)=%g)", ErrAsymptoticViolation, dSigma)
		}
		clampDMatrix(model, 1-2*opts.Margin)
		// D moved: σ samples a caller-supplied warm cache may carry (the
		// Session layer passes caches whose σ layer was computed from the
		// unclamped D) are stale. The pole-basis layer survives.
		opts.Check.Cache.InvalidateSigma()
		rep.DClamped = true
	}
	gram := opts.CostGramian
	if gram == nil {
		var err error
		gram, err = StandardGramian(model)
		if err != nil {
			return nil, err
		}
	}
	if gram.Rows != model.NumPoles() {
		return nil, fmt.Errorf("passivity: cost Gramian is %d×%d, want %d", gram.Rows, gram.Cols, model.NumPoles())
	}
	chol, _, err := mat.CholFactorRegularized(gram)
	if err != nil {
		return nil, fmt.Errorf("passivity: cost Gramian not positive definite: %w", err)
	}
	if opts.Check.Cache == nil {
		// The loop re-checks the model every sweep with the poles fixed:
		// share one evaluation cache so the basis vectors k̃(ω) are built
		// once per frequency, and let the adaptive characterizer warm-start
		// from the previous sweep's violation bands.
		opts.Check.Cache = NewEvalCache()
	}
	if opts.Check.work == nil {
		// One persistent workspace pool for the whole run: after the first
		// sweep warms the buffers, per-frequency evaluations are
		// allocation-free.
		opts.Check.work = newWorkspacePool()
	}
	// Certification is driven by the engine, not the per-sweep check: the
	// fast method runs every sweep and the pipeline only on convergence.
	opts.Check.Certify = false

	for iter := 0; iter < opts.MaxIterations; iter++ {
		if err := ctxErr(opts.Check.Ctx); err != nil {
			// Cancelled between sweeps: the partial report documents the
			// iterations already applied (the model keeps their
			// perturbations — enforcement is in-place and monotone).
			return rep, err
		}
		chk, err := Check(model, opts.Check)
		if err != nil {
			if ctxErr(opts.Check.Ctx) != nil {
				return rep, err
			}
			return nil, err
		}
		rep.Final = chk
		if chk.Passive {
			done, cerr := escalateConverged(model, &opts, rep, chk, true)
			if cerr != nil {
				if ctxErr(opts.Check.Ctx) != nil {
					return rep, cerr
				}
				return nil, cerr
			}
			if done {
				rep.Passive = true
				rep.Iterations = iter
				return rep, nil
			}
			// The pipeline proved residual violations; they are now merged
			// into chk and constrain this sweep like any sampled band.
		}
		cons, err := buildConstraints(model, chk, opts, chol)
		if err != nil {
			return nil, err
		}
		if len(cons) == 0 {
			return rep, fmt.Errorf("%w: violations present but no constraints generated", ErrEnforceFailed)
		}
		delta, err := solvePerturbation(model, cons, opts)
		if err != nil {
			return nil, fmt.Errorf("passivity: iteration %d: %w", iter, err)
		}
		// The residues moved: cached σ values are stale, the pole-dependent
		// basis vectors stay valid.
		opts.Check.Cache.InvalidateSigma()
		rep.History = append(rep.History, IterationStats{
			MaxSigma:    chk.MaxSigma,
			Constraints: len(cons),
			DeltaNorm:   delta,
		})
		rep.Iterations = iter + 1
		opts.Check.emit(ProgressEvent{
			Kind:      ProgressIteration,
			Iteration: iter + 1,
			MaxSigma:  chk.MaxSigma,
		})
	}
	chk, err := Check(model, opts.Check)
	if err != nil {
		if ctxErr(opts.Check.Ctx) != nil {
			return rep, err
		}
		return nil, err
	}
	rep.Final = chk
	rep.Passive = chk.Passive
	if rep.Passive {
		// The iteration budget is spent: violations the pipeline proves
		// here cannot re-enter the loop, so this is a verdict, not a
		// rescue.
		done, cerr := escalateConverged(model, &opts, rep, chk, false)
		if cerr != nil {
			if ctxErr(opts.Check.Ctx) != nil {
				return rep, cerr
			}
			return nil, cerr
		}
		rep.Passive = done
	}
	if !rep.Passive {
		return rep, fmt.Errorf("%w after %d iterations (σmax=%g)", ErrEnforceFailed, opts.MaxIterations, chk.MaxSigma)
	}
	return rep, nil
}

// escalateConverged runs the certification pipeline on a model the fast
// check declared passive. It returns true when the verdict stands (no
// certification requested, or the pipeline proved no violation). Proven
// violations are merged into chk — flipping its verdict and updating its
// maximum. With resume set (the loop still has iterations), the catch
// counts as a rescue and the band geometry is pushed into the evaluation
// cache's hot set so the next fast sweep samples the band instead of
// stepping over it again; without it (iteration budget spent) the merge
// only documents why the run fails.
func escalateConverged(model *rational.Model, opts *EnforceOptions, rep *EnforceReport, chk *Report, resume bool) (bool, error) {
	if !opts.Certify {
		return true, nil
	}
	cert, err := Certify(model, opts.Check, opts.CertifyOpts)
	if err != nil {
		return false, err
	}
	rep.Certificate = cert
	chk.Certificate = cert
	if len(cert.Violations) == 0 {
		return true, nil
	}
	mergeCertified(chk, cert)
	if resume {
		rep.CertifiedRescues++
		hot := append([]float64(nil), opts.Check.Cache.Hot()...)
		for _, v := range cert.Violations {
			if v.OmegaLo > 0 && !math.IsInf(v.OmegaLo, 1) {
				hot = append(hot, v.OmegaLo)
			}
			hot = append(hot, v.OmegaPeak)
			if v.OmegaHi > 0 && !math.IsInf(v.OmegaHi, 1) {
				hot = append(hot, v.OmegaHi)
			}
		}
		opts.Check.Cache.SetHot(hot)
	}
	return false, nil
}

// StandardGramian returns the controllability Gramian P₁ of the common-pole
// basis (A₁, b₁): the standard L2 perturbation cost of eq. (10) decomposes
// as tr(δC·P·δCᵀ) = Σ_ij δc_ij·P₁·δc_ijᵀ because A = I_P ⊗ A₁. The
// Gramian is assembled in closed form per pole-pair block
// (rational.BasisGramian), not by the dense O(n³) Lyapunov solve — at a
// thousand poles the dense solve used to dominate the entire enforcement
// run.
func StandardGramian(model *rational.Model) (*mat.Matrix, error) {
	return rational.BasisGramian(model.Poles)
}

// buildConstraints collects linearized singular-value constraints at the
// violation peaks (plus interior points of wide bands), including
// preventive constraints on singular values within the guard band. The
// transfer evaluation and SVD run through the shared cache and workspace;
// the per-constraint slices are freshly allocated because they outlive the
// call (constraints are few — one per near-limit singular value per
// constrained frequency).
func buildConstraints(model *rational.Model, chk *Report, opts EnforceOptions, chol *mat.Cholesky) ([]constraint, error) {
	freqs := constraintFrequencies(chk, opts)
	cache := opts.Check.Cache
	pool := opts.Check.work
	if pool == nil {
		pool = newWorkspacePool()
	}
	ws := pool.get(0)
	var cons []constraint
	for _, w := range freqs {
		var ktil []complex128
		if cache != nil {
			ktil = cache.basisFor(w)
		}
		if ktil == nil {
			ktil = model.EvalBasis(w)
			if cache != nil {
				cache.storeBasis(w, ktil)
			}
		}
		ws.h = model.EvalWithBasisInto(ws.h, ktil)
		svd := mat.CSVDecomposeInto(&ws.svd, ws.h)
		n := len(ktil)
		for i, sigma := range svd.S {
			if sigma <= 1-opts.GuardBand {
				break // sorted descending
			}
			c := constraint{
				omega: w,
				sigma: sigma,
				u:     svd.U.Col(i),
				v:     svd.V.Col(i),
				rk:    make([]float64, n),
				ik:    make([]float64, n),
				wr:    make([]float64, n),
				wi:    make([]float64, n),
			}
			for k, z := range ktil {
				c.rk[k] = real(z)
				c.ik[k] = imag(z)
			}
			chol.SolveVecInto(c.wr, c.rk)
			chol.SolveVecInto(c.wi, c.ik)
			cons = append(cons, c)
		}
	}
	return cons, nil
}

// constraintFrequencies lists the frequencies to constrain this sweep.
func constraintFrequencies(chk *Report, opts EnforceOptions) []float64 {
	var freqs []float64
	for _, v := range chk.Violations {
		freqs = append(freqs, v.OmegaPeak)
		lo, hi := v.OmegaLo, v.OmegaHi
		if lo > 0 && !math.IsInf(hi, 1) && hi > lo*1.05 {
			// Wide band: sprinkle interior points geometrically.
			k := opts.MaxBandSubdivision
			for i := 1; i <= k; i++ {
				t := float64(i) / float64(k+1)
				w := lo * math.Pow(hi/lo, t)
				if math.Abs(w-v.OmegaPeak) > 1e-6*v.OmegaPeak {
					freqs = append(freqs, w)
				}
			}
		}
	}
	sortFloats(freqs)
	// Deduplicate near-identical frequencies.
	out := freqs[:0]
	for i, w := range freqs {
		if i == 0 || w > out[len(out)-1]*(1+1e-9) {
			out = append(out, w)
		}
	}
	return out
}

// solvePerturbation assembles the dual QP via the Kronecker structure of
// the common-pole realization, solves it, and applies δC to the model. It
// returns ‖δC‖_F.
//
// Each constraint row acts on entry (i,j) as f_ij = Reα_ij·Re k̃ − Imα_ij·Im k̃
// with α_ij = conj(u_i)·v_j, so rows live in span{Re k̃, Im k̃} and the dual
// matrix M_ab = Σ_ij f_a,ijᵀ G⁻¹ f_b,ij collapses to a 2×2 kernel combined
// with closed-form Σ_ij α-products:
//
//	Σ_ij α^a·conj(α^b) = (u_aᴴu_b)·conj(v_aᴴv_b) =: β₁
//	Σ_ij α^a·α^b       = conj(u_aᵀu_b)·(v_aᵀv_b)  =: β₂
//	Σ Reα^aReα^b = ½Re(β₁+β₂)      Σ Imα^aImα^b = ½Re(β₁−β₂)
//	Σ Reα^aImα^b = ½Im(β₂−β₁)      Σ Imα^aReα^b = ½Im(β₂+β₁)
func solvePerturbation(model *rational.Model, cons []constraint, opts EnforceOptions) (float64, error) {
	m := len(cons)
	p := model.Ports()
	dual := assembleDual(cons, opts.Check.Workers)
	g := make([]float64, m)
	for a := range cons {
		g[a] = (1 - opts.Margin) - cons[a].sigma
	}
	lambda, err := qp.SolveNNQP(dual, g)
	if err != nil {
		return 0, err
	}
	// Apply δc_ij = −Σ_a λ_a (Reα^a_ij·wr_a − Imα^a_ij·wi_a).
	n := model.NumPoles()
	delta := make([]float64, n)
	total := 0.0
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			for k := range delta {
				delta[k] = 0
			}
			for a := range cons {
				la := lambda[a]
				if la == 0 {
					continue
				}
				alpha := cmplx.Conj(cons[a].u[i]) * cons[a].v[j]
				re, im := real(alpha), imag(alpha)
				wr, wi := cons[a].wr, cons[a].wi
				for k := range delta {
					delta[k] -= la * (re*wr[k] - im*wi[k])
				}
			}
			model.AddToCVector(i, j, delta)
			for _, d := range delta {
				total += d * d
			}
		}
	}
	return math.Sqrt(total), nil
}

// assembleDual builds the dual QP matrix M_ab = Σ_ij f_a,ijᵀ·G⁻¹·f_b,ij
// using the closed-form α-product sums documented on solvePerturbation.
// The m(m+1)/2 upper-triangle entries are independent — each needs only
// the two constraints it couples, and the inner Dot products are O(n) in
// the pole count — so they fan out over parallel.For; every pair writes
// its own (a,b)/(b,a) slots, keeping the result worker-count independent.
func assembleDual(cons []constraint, workers int) *mat.Matrix {
	m := len(cons)
	dual := mat.NewMatrix(m, m)
	// offs[a] is the linear index of pair (a,a); row a covers
	// [offs[a], offs[a+1]).
	offs := make([]int, m+1)
	for a := 0; a < m; a++ {
		offs[a+1] = offs[a] + (m - a)
	}
	parallel.For(workers, offs[m], func(t int) {
		a := sort.SearchInts(offs, t+1) - 1
		b := a + (t - offs[a])
		ca, cb := &cons[a], &cons[b]
		k00 := mat.Dot(ca.rk, cb.wr)
		k01 := mat.Dot(ca.rk, cb.wi)
		k10 := mat.Dot(ca.ik, cb.wr)
		k11 := mat.Dot(ca.ik, cb.wi)
		beta1 := mat.CDot(ca.u, cb.u) * cmplx.Conj(mat.CDot(ca.v, cb.v))
		var ru, rv complex128
		for i := range ca.u {
			ru += ca.u[i] * cb.u[i]
			rv += ca.v[i] * cb.v[i]
		}
		beta2 := cmplx.Conj(ru) * rv
		srr := 0.5 * real(beta1+beta2)
		sii := 0.5 * real(beta1-beta2)
		sri := 0.5 * imag(beta2-beta1)
		sir := 0.5 * imag(beta2+beta1)
		v := srr*k00 - sri*k01 - sir*k10 + sii*k11
		dual.Set(a, b, v)
		dual.Set(b, a, v)
	})
	return dual
}

// clampDMatrix clips the singular values of the model's direct-coupling
// matrix to the given limit, the minimal-perturbation projection onto the
// asymptotically passive set.
func clampDMatrix(model *rational.Model, limit float64) {
	svd := mat.SVDecompose(model.D)
	p := model.D.Rows
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			s := 0.0
			for k := 0; k < len(svd.S); k++ {
				sv := svd.S[k]
				if sv > limit {
					sv = limit
				}
				s += svd.U.At(i, k) * sv * svd.V.At(j, k)
			}
			model.D.Set(i, j, s)
		}
	}
}
