package touchstone

import (
	"bufio"
	"bytes"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func TestReadOptionLineVariants(t *testing.T) {
	src := `! a comment
# MHz S RI R 75
1.0 0.1 0.2 0.3 -0.4 0.3 -0.4 0.5 0.6
`
	d, err := Read(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.R0 != 75 {
		t.Fatalf("R0 = %v want 75", d.R0)
	}
	if d.Freq[0] != 1e6 {
		t.Fatalf("freq = %v want 1e6", d.Freq[0])
	}
	// 2-port column-major order: S11 S21 S12 S22.
	if d.Matrices[0].At(0, 0) != complex(0.1, 0.2) {
		t.Fatalf("S11 = %v", d.Matrices[0].At(0, 0))
	}
	if d.Matrices[0].At(1, 0) != complex(0.3, -0.4) {
		t.Fatalf("S21 = %v", d.Matrices[0].At(1, 0))
	}
	if d.Matrices[0].At(1, 1) != complex(0.5, 0.6) {
		t.Fatalf("S22 = %v", d.Matrices[0].At(1, 1))
	}
}

func TestReadMAFormat(t *testing.T) {
	src := `# Hz S MA R 50
100 0.5 90 0 0 0 0 1 0
`
	d, err := Read(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	s11 := d.Matrices[0].At(0, 0)
	if math.Abs(real(s11)) > 1e-12 || math.Abs(imag(s11)-0.5) > 1e-12 {
		t.Fatalf("MA decode: %v want 0.5j", s11)
	}
}

func TestReadDBFormat(t *testing.T) {
	src := `# Hz S DB
1000 -20 0 0 0 0 0 -20 0
`
	d, err := Read(strings.NewReader(src), 2)
	if err != nil {
		t.Fatal(err)
	}
	s11 := d.Matrices[0].At(0, 0)
	if math.Abs(real(s11)-0.1) > 1e-12 {
		t.Fatalf("DB decode: %v want 0.1", s11)
	}
}

func TestReadMultilineNPort(t *testing.T) {
	// 3-port with values wrapped across lines arbitrarily.
	src := `# Hz S RI R 50
1e6
 0.1 0 0.2 0 0.3 0
 0.2 0 0.4 0 0.5 0
 0.3 0 0.5 0
 0.6 0
2e6 0.1 0.1 0.2 0 0.3 0 0.2 0 0.4 0 0.5 0 0.3 0 0.5 0 0.6 0
`
	d, err := Read(strings.NewReader(src), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Freq) != 2 {
		t.Fatalf("points %d want 2", len(d.Freq))
	}
	if d.Matrices[0].At(2, 1) != complex(0.5, 0) {
		t.Fatalf("S32 = %v", d.Matrices[0].At(2, 1))
	}
	if d.Matrices[1].At(0, 0) != complex(0.1, 0.1) {
		t.Fatalf("point 2 S11 = %v", d.Matrices[1].At(0, 0))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ports := 1 + rng.Intn(5)
		points := 1 + rng.Intn(8)
		d := &Data{Parameter: ParamS, R0: 50}
		for k := 0; k < points; k++ {
			d.Freq = append(d.Freq, math.Pow(10, 3+6*rng.Float64()))
			m := mat.NewCMatrix(ports, ports)
			for i := range m.Data {
				m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			d.Matrices = append(d.Matrices, m)
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			return false
		}
		back, err := Read(&buf, ports)
		if err != nil {
			return false
		}
		if len(back.Freq) != points || back.R0 != 50 {
			return false
		}
		for k := range d.Freq {
			if math.Abs(back.Freq[k]-d.Freq[k]) > 1e-6*d.Freq[k] {
				return false
			}
			if !back.Matrices[k].Equalish(d.Matrices[k], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("# Hz S RI\n1 2 3\n"), 2); err == nil {
		t.Fatalf("truncated record accepted")
	}
	if _, err := Read(strings.NewReader("# Hz S RI\nfoo\n"), 1); err == nil {
		t.Fatalf("non-numeric accepted")
	}
	if _, err := Read(strings.NewReader("# Hz S RI\n# Hz S RI\n1 0 0\n"), 1); err == nil {
		t.Fatalf("double option line accepted")
	}
	if _, err := Read(strings.NewReader(""), 0); err == nil {
		t.Fatalf("zero ports accepted")
	}
}

func TestCommentsStripped(t *testing.T) {
	src := `! leading comment
# Hz S RI R 50
1e3 0.5 0 ! trailing comment
`
	d, err := Read(strings.NewReader(src), 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Matrices[0].At(0, 0) != complex(0.5, 0) {
		t.Fatalf("comment handling broke parsing")
	}
}

// TestOptionLineResistance pins the explicit "R <value>" pair parsing:
// the resistance is set only by the pair, stray bare numbers on the
// option line are malformed, and a dangling or non-numeric R is ErrFormat
// instead of being silently ignored (which used to leave R0 at 50).
func TestOptionLineResistance(t *testing.T) {
	record := "1e6 0.1 0.2 0.3 -0.4 0.3 -0.4 0.5 0.6\n"
	good := []struct {
		option string
		wantR0 float64
	}{
		{"# Hz S RI R 75", 75},
		{"# hz s ri r 28.5", 28.5},
		{"# R 100 Hz S RI", 100}, // option order is free
		{"# Hz S RI", 50},        // no R pair: default reference
	}
	for _, c := range good {
		d, err := Read(strings.NewReader(c.option+"\n"+record), 2)
		if err != nil {
			t.Errorf("%q: unexpected error %v", c.option, err)
			continue
		}
		if d.R0 != c.wantR0 {
			t.Errorf("%q: R0 = %v, want %v", c.option, d.R0, c.wantR0)
		}
	}
	bad := []string{
		"# Hz S RI R",       // dangling R, no value
		"# Hz S RI R ohm",   // non-numeric resistance
		"# Hz S RI 75",      // stray number without the R keyword
		"# Hz S 50 RI R 75", // stray number between keywords
		"# Hz S RI R 75 33", // second stray number after a valid pair
	}
	for _, option := range bad {
		_, err := Read(strings.NewReader(option+"\n"+record), 2)
		if err == nil {
			t.Errorf("%q: accepted, want ErrFormat", option)
			continue
		}
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%q: error %v does not wrap ErrFormat", option, err)
		}
	}
}

// TestScannerErrorWrapsErrFormat verifies that bufio.Scanner failures (an
// over-long line) surface wrapped in ErrFormat, with the underlying cause
// preserved in the chain for diagnosis.
func TestScannerErrorWrapsErrFormat(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("# Hz S RI R 50\n1e6")
	for sb.Len() < 1<<20+64 {
		sb.WriteString(" 0.0")
	}
	sb.WriteString("\n")
	_, err := Read(strings.NewReader(sb.String()), 2)
	if err == nil {
		t.Fatal("oversized line accepted")
	}
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("errors.Is(err, ErrFormat) = false for %v", err)
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("underlying bufio.ErrTooLong lost from chain: %v", err)
	}
}
