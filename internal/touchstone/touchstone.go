// Package touchstone reads and writes Touchstone v1 (.sNp) network
// parameter files, the interchange format in which field solvers deliver
// the tabulated scattering data consumed by the macromodeling flow.
//
// Supported: S/Y/Z parameters, RI/MA/DB formats, Hz/kHz/MHz/GHz units,
// arbitrary port counts (the standard 4-columns-per-line wrapping used for
// 2-port files and the row-wrapped layout for N>2 are both handled on
// input; output uses one full matrix row per line for readability).
package touchstone

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/cmplx"
	"strconv"
	"strings"

	"repro/internal/mat"
)

// Parameter identifies the network parameter type of a file.
type Parameter byte

// Parameter kinds.
const (
	ParamS Parameter = 'S'
	ParamY Parameter = 'Y'
	ParamZ Parameter = 'Z'
)

// Format is the number triplet encoding.
type Format int

// Data formats.
const (
	FormatRI Format = iota // real, imaginary
	FormatMA               // magnitude, angle (degrees)
	FormatDB               // 20·log10 magnitude, angle (degrees)
)

// Data is a parsed Touchstone dataset.
type Data struct {
	Freq      []float64 // Hz, ascending as stored
	Matrices  []*mat.CMatrix
	Parameter Parameter
	R0        float64 // reference resistance (Ω)
}

// ErrFormat reports a malformed file.
var ErrFormat = errors.New("touchstone: malformed file")

// Ports returns the port count of the dataset.
func (d *Data) Ports() int {
	if len(d.Matrices) == 0 {
		return 0
	}
	return d.Matrices[0].Rows
}

// Read parses a Touchstone v1 stream. The port count must be supplied by
// the caller (it is conventionally encoded in the file extension .sNp).
func Read(r io.Reader, ports int) (*Data, error) {
	if ports <= 0 {
		return nil, fmt.Errorf("%w: port count must be positive", ErrFormat)
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	data := &Data{Parameter: ParamS, R0: 50}
	format := FormatMA // Touchstone default
	freqScale := 1e9   // default GHz
	sawOption := false
	var values []float64
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "!"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if sawOption {
				return nil, fmt.Errorf("%w: repeated option line", ErrFormat)
			}
			sawOption = true
			var err error
			format, freqScale, err = parseOption(line, data)
			if err != nil {
				return nil, err
			}
			continue
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: bad number %q", ErrFormat, tok)
			}
			values = append(values, v)
		}
	}
	if err := sc.Err(); err != nil {
		// Scanner failures (an over-long line, a broken reader) are still
		// malformed input from the caller's point of view: wrap them so
		// errors.Is(err, ErrFormat) matches, keeping the underlying error
		// (e.g. bufio.ErrTooLong) in the chain too.
		return nil, fmt.Errorf("%w: %w", ErrFormat, err)
	}
	perPoint := 1 + 2*ports*ports
	if len(values) == 0 || len(values)%perPoint != 0 {
		return nil, fmt.Errorf("%w: %d values not divisible into %d-value records", ErrFormat, len(values), perPoint)
	}
	n := len(values) / perPoint
	for k := 0; k < n; k++ {
		rec := values[k*perPoint : (k+1)*perPoint]
		data.Freq = append(data.Freq, rec[0]*freqScale)
		m := mat.NewCMatrix(ports, ports)
		for e := 0; e < ports*ports; e++ {
			a, b := rec[1+2*e], rec[2+2*e]
			z := decode(a, b, format)
			// Touchstone stores row-major for N-ports; the special 2-port
			// convention is column-major (S11 S21 S12 S22).
			var i, j int
			if ports == 2 {
				i, j = e%2, e/2
			} else {
				i, j = e/ports, e%ports
			}
			m.Set(i, j, z)
		}
		data.Matrices = append(data.Matrices, m)
	}
	return data, nil
}

func parseOption(line string, d *Data) (Format, float64, error) {
	format := FormatMA
	unit := 1e9 // default GHz
	toks := strings.Fields(line)[1:]
	for i := 0; i < len(toks); i++ {
		tok := toks[i]
		switch strings.ToUpper(tok) {
		case "HZ":
			unit = 1
		case "KHZ":
			unit = 1e3
		case "MHZ":
			unit = 1e6
		case "GHZ":
			unit = 1e9
		case "S":
			d.Parameter = ParamS
		case "Y":
			d.Parameter = ParamY
		case "Z":
			d.Parameter = ParamZ
		case "RI":
			format = FormatRI
		case "MA":
			format = FormatMA
		case "DB":
			format = FormatDB
		case "R":
			// The reference resistance is the explicit pair "R <value>";
			// a dangling R with no (numeric) value is malformed, and bare
			// numbers never set R0 on their own.
			if i+1 >= len(toks) {
				return format, unit, fmt.Errorf("%w: option R without a resistance value", ErrFormat)
			}
			v, err := strconv.ParseFloat(toks[i+1], 64)
			if err != nil {
				return format, unit, fmt.Errorf("%w: bad resistance %q after R", ErrFormat, toks[i+1])
			}
			d.R0 = v
			i++
		default:
			return format, unit, fmt.Errorf("%w: unknown option %q", ErrFormat, tok)
		}
	}
	return format, unit, nil
}

func decode(a, b float64, f Format) complex128 {
	switch f {
	case FormatRI:
		return complex(a, b)
	case FormatMA:
		return cmplx.Rect(a, b*math.Pi/180)
	default: // FormatDB
		return cmplx.Rect(math.Pow(10, a/20), b*math.Pi/180)
	}
}

// Write emits the dataset in RI format with Hz units, one frequency point
// per logical record: 2-port data on a single line in the conventional
// S11 S21 S12 S22 order, and one full matrix row per line for every other
// port count.
func Write(w io.Writer, d *Data) error {
	if len(d.Freq) != len(d.Matrices) {
		return fmt.Errorf("%w: %d frequencies, %d matrices", ErrFormat, len(d.Freq), len(d.Matrices))
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "! generated by repro/internal/touchstone\n")
	fmt.Fprintf(bw, "# Hz %c RI R %g\n", d.Parameter, d.R0)
	ports := d.Ports()
	for k, f := range d.Freq {
		m := d.Matrices[k]
		if m.Rows != ports || m.Cols != ports {
			return fmt.Errorf("%w: inconsistent matrix size at point %d", ErrFormat, k)
		}
		fmt.Fprintf(bw, "%.10e", f)
		if ports == 2 {
			// 2-port convention: S11 S21 S12 S22 on one line.
			order := [][2]int{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
			for _, ij := range order {
				z := m.At(ij[0], ij[1])
				fmt.Fprintf(bw, " %.10e %.10e", real(z), imag(z))
			}
			fmt.Fprintln(bw)
			continue
		}
		fmt.Fprintln(bw)
		for i := 0; i < ports; i++ {
			for j := 0; j < ports; j++ {
				z := m.At(i, j)
				fmt.Fprintf(bw, " %.10e %.10e", real(z), imag(z))
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}
