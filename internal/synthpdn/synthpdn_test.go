package synthpdn

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mat"
	"repro/internal/pdn"
)

func logFreqs(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(hi/lo, t)
	}
	return out
}

func TestPaper45PortMix(t *testing.T) {
	p, err := Build(Paper45())
	if err != nil {
		t.Fatal(err)
	}
	if p.Ports() != 45 {
		t.Fatalf("port count %d want 45", p.Ports())
	}
	counts := map[PortRole]int{}
	for _, r := range p.Roles {
		counts[r]++
	}
	if counts[RoleDie] != 24 || counts[RoleDecap] != 12 || counts[RoleVRM] != 1 || counts[RoleOpen] != 8 {
		t.Fatalf("role mix %v want die=24 decap=12 vrm=1 open=8", counts)
	}
	// Port ordering: die block first, then decap, then VRM, then open.
	for i := 0; i < 24; i++ {
		if p.Roles[i] != RoleDie {
			t.Fatalf("port %d should be die", i)
		}
	}
	if p.Roles[36] != RoleVRM {
		t.Fatalf("port 36 should be VRM")
	}
}

func TestSmallBuildDeterministic(t *testing.T) {
	a, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := a.Circuit.PortS(1e8, 50)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Circuit.PortS(1e8, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !sa.Equalish(sb, 0) {
		t.Fatalf("same seed must give identical networks")
	}
}

func TestGeneratedDataIsPassive(t *testing.T) {
	// σ_max(S) ≤ 1 at every frequency — the generated network is a
	// terminated RLC circuit, hence provably passive; this validates the
	// whole MNA + Z→S chain.
	p, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	freqs := append([]float64{0}, logFreqs(1e3, 2e9, 40)...)
	ss, err := p.Circuit.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ss {
		if sv := mat.MaxSingularValue(s); sv > 1+1e-8 {
			t.Fatalf("σmax=%v > 1 at f=%g", sv, freqs[i])
		}
	}
}

func TestGeneratedDataIsReciprocal(t *testing.T) {
	p, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{1e4, 1e7, 1e9} {
		s, err := p.Circuit.PortS(f, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Equalish(s.T(), 1e-8*(1+s.MaxAbs())) {
			t.Fatalf("S not symmetric at %g", f)
		}
	}
}

func TestNominalLoadShape(t *testing.T) {
	p, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	load := p.NominalLoad()
	if err := load.Validate(p.Ports()); err != nil {
		t.Fatal(err)
	}
	if p.Roles[load.ObsPort] != RoleDie {
		t.Fatalf("observation port must be a die port")
	}
	// Total excitation 1 A over die ports only.
	var sum complex128
	for i, j := range load.J {
		sum += j
		if j != 0 && p.Roles[i] != RoleDie {
			t.Fatalf("excitation on non-die port %d", i)
		}
	}
	if cmplx.Abs(sum-1) > 1e-12 {
		t.Fatalf("total current %v", sum)
	}
	// VRM port must be shorted per the paper's setup.
	for i, r := range p.Roles {
		if r == RoleVRM {
			if _, ok := load.Terms[i].(pdn.Short); !ok {
				t.Fatalf("VRM termination should be a short, got %T", load.Terms[i])
			}
		}
	}
}

func TestScatteringVsDirectSimulation(t *testing.T) {
	// The headline cross-validation: Z_PDN from the scattering-domain
	// formula (eq. 2) must match the direct MNA simulation of the loaded
	// circuit, proving the S-parameter export, eq. (2) and the termination
	// models all agree.
	p, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	freqs := logFreqs(1e3, 2e9, 25)
	omega := make([]float64, len(freqs))
	for i, f := range freqs {
		omega[i] = 2 * math.Pi * f
	}
	r0 := 50.0
	ss, err := p.Circuit.SweepS(freqs, r0)
	if err != nil {
		t.Fatal(err)
	}
	load := p.NominalLoad()
	zS, err := pdn.TargetImpedance(omega, ss, r0, load)
	if err != nil {
		t.Fatal(err)
	}
	zDirect, err := p.LoadedReferenceZ(freqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range freqs {
		rel := cmplx.Abs(zS[k]-zDirect[k]) / (1e-12 + cmplx.Abs(zDirect[k]))
		if rel > 1e-5 {
			t.Fatalf("f=%g: scattering-domain %v vs direct %v (rel %v)", freqs[k], zS[k], zDirect[k], rel)
		}
	}
}

func TestBuildRejectsBadConfig(t *testing.T) {
	cfg := Small()
	cfg.NumDiePorts = 100
	if _, err := Build(cfg); err == nil {
		t.Fatalf("too many die ports accepted")
	}
	cfg = Small()
	cfg.NumDecapPorts = 0
	if _, err := Build(cfg); err == nil {
		t.Fatalf("zero decap ports accepted")
	}
}

func TestSensitivityShapeOnSmallPDN(t *testing.T) {
	// The PDN sensitivity should be largest at low frequency (where the
	// shorted VRM makes Z_PDN ≪ R0 and the S→Z map is stiff) and fall by
	// orders of magnitude into the GHz range — the mechanism behind the
	// paper's Fig. 3.
	p, err := Build(Small())
	if err != nil {
		t.Fatal(err)
	}
	freqs := logFreqs(1e3, 2e9, 30)
	omega := make([]float64, len(freqs))
	for i, f := range freqs {
		omega[i] = 2 * math.Pi * f
	}
	ss, err := p.Circuit.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	xi, err := pdn.Sensitivity(omega, ss, 50, p.NominalLoad())
	if err != nil {
		t.Fatal(err)
	}
	if xi[0] < 10*xi[len(xi)-1] {
		t.Fatalf("sensitivity should drop from LF to HF: Ξ(lo)=%v Ξ(hi)=%v", xi[0], xi[len(xi)-1])
	}
}

func BenchmarkSweepSmallPDN(b *testing.B) {
	p, err := Build(Small())
	if err != nil {
		b.Fatal(err)
	}
	freqs := logFreqs(1e3, 2e9, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Circuit.SweepS(freqs, 50); err != nil {
			b.Fatal(err)
		}
	}
}
