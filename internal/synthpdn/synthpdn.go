// Package synthpdn generates synthetic multiport power-distribution-network
// structures: board, package and die power planes modeled as RLC unit-cell
// grids, stitched by BGA balls and die bumps. It substitutes for the
// proprietary Intel package data and commercial field solver of the paper's
// §IV testcase: the generated networks expose the same port mix (die power
// ports, board decap ports, one VRM port, unused open ports), the same
// frequency range, and the same qualitative impedance/sensitivity behavior
// that makes unweighted passivity enforcement destroy model accuracy.
package synthpdn

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/pdn"
)

// PortRole labels what each port of the generated network connects to.
type PortRole int

// Port roles in declaration order (die block ports first, then board decap
// ports, one VRM port, then intentionally unused open ports).
const (
	RoleDie PortRole = iota
	RoleDecap
	RoleVRM
	RoleOpen
)

// String implements fmt.Stringer.
func (r PortRole) String() string {
	switch r {
	case RoleDie:
		return "die"
	case RoleDecap:
		return "decap"
	case RoleVRM:
		return "vrm"
	case RoleOpen:
		return "open"
	}
	return "unknown"
}

// GridSpec sizes one power plane grid and its unit-cell electrical values.
type GridSpec struct {
	NX, NY   int     // node grid
	CellL    float64 // series inductance per cell edge (H)
	CellR    float64 // series resistance per cell edge (Ω)
	CellSkin float64 // skin-effect coefficient (Ω/√Hz)
	NodeC    float64 // shunt plane capacitance per node (F)
	TanD     float64 // dielectric loss tangent of the shunt capacitance
}

// Config parameterizes the synthetic PDN.
type Config struct {
	Board GridSpec
	Pkg   GridSpec
	Die   GridSpec

	NumBalls int     // board↔package connections
	BallL    float64 // per ball
	BallR    float64
	NumBumps int // package↔die connections
	BumpL    float64
	BumpR    float64

	NumDiePorts   int
	NumDecapPorts int
	NumOpenPorts  int

	// Jitter adds deterministic ±Jitter relative spread to cell values so
	// the structure is not perfectly uniform (Seed controls the stream).
	Jitter float64
	Seed   int64

	// Nominal termination values (paper §IV): decap C/ESR/ESL triples
	// cycled over the decap ports, die series-RC blocks, VRM model.
	DecapModels []pdn.SeriesRLC
	DieModel    pdn.SeriesRLC
	VRMShort    bool          // true: ideal short (paper); false: use VRMModel
	VRMModel    pdn.SeriesRLC // used when VRMShort is false
}

// Paper45 mirrors the paper's testcase dimensions: P = 45 ports of which
// Pa = 24 die, Pc = 12 decap, Pv = 1 VRM and Po = 8 open.
func Paper45() Config {
	// Loss levels are tuned toward the paper's testcase character: smooth,
	// well-damped responses that a low-order (n = 12) rational model fits
	// with small error, leaving only shallow passivity violations for the
	// enforcement stage (their Fig. 4 shows σ peaks of ~1.002). Skin-effect
	// and dielectric-loss terms keep the plane resonance Q moderate.
	// The die grid carries only its metal parasitics (tiny node C): the
	// actual die decoupling capacitance belongs to the *termination* models
	// of the active blocks, exactly as in the paper's setup. This makes the
	// unloaded network impedance rise inductively into the GHz range, so
	// that under nominal loading the die-block admittance dominates there —
	// which is what collapses the high-frequency sensitivity Ξ and gives
	// the strong low/high-frequency weighting contrast of their Fig. 3.
	return Config{
		Board: GridSpec{NX: 8, NY: 6, CellL: 0.8e-9, CellR: 4e-3, CellSkin: 4e-6, NodeC: 30e-12, TanD: 0.05},
		Pkg:   GridSpec{NX: 5, NY: 4, CellL: 0.15e-9, CellR: 8e-3, CellSkin: 2.5e-6, NodeC: 8e-12, TanD: 0.04},
		Die:   GridSpec{NX: 6, NY: 4, CellL: 15e-12, CellR: 40e-3, CellSkin: 1e-6, NodeC: 4e-12, TanD: 0.03},

		NumBalls: 10, BallL: 0.25e-9, BallR: 8e-3,
		NumBumps: 12, BumpL: 40e-12, BumpR: 8e-3,

		NumDiePorts:   24,
		NumDecapPorts: 12,
		NumOpenPorts:  8,

		Jitter: 0.1,
		Seed:   2014,

		DecapModels: []pdn.SeriesRLC{
			pdn.Decap(100e-9, 20e-3, 0.6e-9),
			pdn.Decap(1e-6, 10e-3, 0.8e-9),
			pdn.Decap(10e-6, 5e-3, 1.2e-9),
		},
		DieModel: pdn.DieRC(0.08, 40e-9),
		VRMShort: true,
		VRMModel: pdn.VRM(0.8e-3, 8e-9),
	}
}

// Small is a reduced 8-port variant (4 die, 2 decap, 1 VRM, 1 open) for
// tests and examples.
func Small() Config {
	cfg := Paper45()
	cfg.Board.NX, cfg.Board.NY = 4, 3
	cfg.Pkg.NX, cfg.Pkg.NY = 3, 2
	cfg.Die.NX, cfg.Die.NY = 2, 2
	cfg.NumBalls, cfg.NumBumps = 4, 4
	cfg.NumDiePorts = 4
	cfg.NumDecapPorts = 2
	cfg.NumOpenPorts = 1
	return cfg
}

// PDN is a generated structure: the passive network plus port metadata and
// the nominal termination network.
type PDN struct {
	Circuit *circuit.Circuit
	Roles   []PortRole
	Config  Config
}

// Ports returns the total port count.
func (p *PDN) Ports() int { return len(p.Roles) }

// PortsWithRole lists port indices carrying a role.
func (p *PDN) PortsWithRole(r PortRole) []int {
	var out []int
	for i, role := range p.Roles {
		if role == r {
			out = append(out, i)
		}
	}
	return out
}

// Build constructs the synthetic PDN circuit.
func Build(cfg Config) (*PDN, error) {
	if cfg.NumDiePorts < 1 || cfg.NumDecapPorts < 1 {
		return nil, fmt.Errorf("synthpdn: need at least one die and one decap port")
	}
	if cfg.NumDiePorts > cfg.Die.NX*cfg.Die.NY {
		return nil, fmt.Errorf("synthpdn: %d die ports exceed %d die nodes", cfg.NumDiePorts, cfg.Die.NX*cfg.Die.NY)
	}
	if cfg.NumDecapPorts+1 > cfg.Board.NX*cfg.Board.NY {
		return nil, fmt.Errorf("synthpdn: board grid too small for decap+VRM ports")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	jit := func(v float64) float64 {
		if cfg.Jitter <= 0 {
			return v
		}
		return v * (1 + cfg.Jitter*(2*rng.Float64()-1))
	}
	c := circuit.New()

	board := buildGrid(c, cfg.Board, jit)
	pkg := buildGrid(c, cfg.Pkg, jit)
	die := buildGrid(c, cfg.Die, jit)

	// BGA balls: distribute between board-center region and package nodes.
	connectGrids(c, board, cfg.Board, pkg, cfg.Pkg, cfg.NumBalls, cfg.BallL, cfg.BallR, jit)
	// Die bumps: package to die.
	connectGrids(c, pkg, cfg.Pkg, die, cfg.Die, cfg.NumBumps, cfg.BumpL, cfg.BumpR, jit)

	pdnNet := &PDN{Circuit: c, Config: cfg}

	// Die ports: spread across the die grid.
	for _, n := range spread(die, cfg.NumDiePorts) {
		c.DefinePort(n)
		pdnNet.Roles = append(pdnNet.Roles, RoleDie)
	}
	// Decap ports: spread across the board, avoiding the VRM corner.
	decapNodes := spread(board[1:], cfg.NumDecapPorts)
	for _, n := range decapNodes {
		c.DefinePort(n)
		pdnNet.Roles = append(pdnNet.Roles, RoleDecap)
	}
	// VRM port at the board corner node.
	c.DefinePort(board[0])
	pdnNet.Roles = append(pdnNet.Roles, RoleVRM)
	// Open ports: alternate between package and board leftovers.
	openPool := append(append([]int{}, pkg...), board...)
	seen := map[int]bool{board[0]: true}
	for _, n := range decapNodes {
		seen[n] = true
	}
	added := 0
	for _, n := range openPool {
		if added >= cfg.NumOpenPorts {
			break
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		c.DefinePort(n)
		pdnNet.Roles = append(pdnNet.Roles, RoleOpen)
		added++
	}
	if added < cfg.NumOpenPorts {
		return nil, fmt.Errorf("synthpdn: could not place %d open ports", cfg.NumOpenPorts)
	}
	return pdnNet, nil
}

// buildGrid creates an NX×NY plane of nodes with series L+R cell edges and
// shunt C at each node, returning the node list (row-major).
func buildGrid(c *circuit.Circuit, g GridSpec, jit func(float64) float64) []int {
	nodes := make([]int, g.NX*g.NY)
	for i := range nodes {
		nodes[i] = c.Node()
	}
	at := func(x, y int) int { return nodes[y*g.NX+x] }
	for y := 0; y < g.NY; y++ {
		for x := 0; x < g.NX; x++ {
			if x+1 < g.NX {
				c.AddSkinInductor(at(x, y), at(x+1, y), jit(g.CellL), jit(g.CellR), g.CellSkin)
			}
			if y+1 < g.NY {
				c.AddSkinInductor(at(x, y), at(x, y+1), jit(g.CellL), jit(g.CellR), g.CellSkin)
			}
			c.AddLossyCapacitor(at(x, y), circuit.Ground, jit(g.NodeC), g.TanD)
		}
	}
	return nodes
}

// connectGrids stitches two plane grids with n series-RL links spread over
// both node sets.
func connectGrids(c *circuit.Circuit, a []int, ga GridSpec, b []int, gb GridSpec, n int, l, r float64, jit func(float64) float64) {
	an := spread(a, n)
	bn := spread(b, n)
	for i := 0; i < n; i++ {
		c.AddLossyInductor(an[i], bn[i], jit(l), jit(r))
	}
}

// spread picks n approximately evenly spaced entries from nodes.
func spread(nodes []int, n int) []int {
	if n >= len(nodes) {
		out := make([]int, len(nodes))
		copy(out, nodes)
		for len(out) < n {
			out = append(out, nodes[len(out)%len(nodes)])
		}
		return out
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		idx := i * (len(nodes) - 1) / max(n-1, 1)
		out[i] = nodes[idx]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NominalLoad assembles the paper's nominal termination network for the
// generated PDN: decap models cycled over decap ports, die RC blocks with
// uniform 1 A total excitation, short (or RL) VRM, opens elsewhere.
// Z_PDN is observed at the first die port.
func (p *PDN) NominalLoad() *pdn.Load {
	terms := make([]pdn.Termination, p.Ports())
	decapIdx := 0
	for i, role := range p.Roles {
		switch role {
		case RoleDie:
			terms[i] = p.Config.DieModel
		case RoleDecap:
			models := p.Config.DecapModels
			terms[i] = models[decapIdx%len(models)]
			decapIdx++
		case RoleVRM:
			if p.Config.VRMShort {
				terms[i] = pdn.Short{}
			} else {
				terms[i] = p.Config.VRMModel
			}
		default:
			terms[i] = pdn.Open{}
		}
	}
	diePorts := p.PortsWithRole(RoleDie)
	return &pdn.Load{
		Terms:   terms,
		J:       pdn.UniformDieExcitation(p.Ports(), diePorts),
		ObsPort: diePorts[0],
	}
}

// LoadedReferenceZ computes the reference Z_PDN directly in the circuit
// domain: the nominal terminations are instantiated as circuit elements on
// a fresh copy of the structure and the voltage at the observation node is
// solved per frequency. This bypasses the scattering representation
// entirely and cross-validates eq. (2).
func (p *PDN) LoadedReferenceZ(freqs []float64) ([]complex128, error) {
	load := p.NominalLoad()
	// Rebuild the circuit (elements are append-only, so build a fresh one
	// to avoid mutating the S-parameter network).
	fresh, err := Build(p.Config)
	if err != nil {
		return nil, err
	}
	c := fresh.Circuit
	currents := map[int]complex128{}
	for i, t := range load.Terms {
		node := c.PortNode(i)
		switch m := t.(type) {
		case pdn.Short:
			c.AddResistor(node, circuit.Ground, 1e-8)
		case pdn.Resistor:
			c.AddResistor(node, circuit.Ground, m.R)
		case pdn.SeriesRLC:
			c.AddSeriesRLC(node, circuit.Ground, m.R, m.L, m.C)
		case pdn.Open:
			// nothing
		default:
			return nil, fmt.Errorf("synthpdn: unsupported termination %T for direct simulation", t)
		}
		if load.J[i] != 0 {
			currents[node] = load.J[i]
		}
	}
	obsNode := c.PortNode(load.ObsPort)
	out := make([]complex128, len(freqs))
	for k, f := range freqs {
		v, err := c.Solve(f, currents)
		if err != nil {
			return nil, err
		}
		out[k] = v[obsNode]
	}
	return out, nil
}
