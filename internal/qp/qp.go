// Package qp solves the strictly convex quadratic programs that arise in
// passivity enforcement:
//
//	minimize   ½·xᵀHx
//	subject to F·x ≤ g
//
// with H symmetric positive definite. The primal has many variables (one
// per residue coordinate per matrix entry, P²·n) but few constraints (one
// per violated singular value), so the problem is solved through its dual,
// a nonnegative QP of dimension m = #constraints:
//
//	minimize  ½·λᵀMλ + gᵀλ   s.t. λ ≥ 0,  with  M = F·H⁻¹·Fᵀ,
//
// after which x* = −H⁻¹Fᵀλ*. Callers with structured H (block-diagonal
// Gramians) assemble M themselves and call SolveNNQP directly.
package qp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// ErrIterationLimit indicates the active-set loop failed to converge.
var ErrIterationLimit = errors.New("qp: active-set iteration limit exceeded")

// ErrInfeasible indicates the primal constraints admit no solution (the
// dual is unbounded below, detected by runaway multipliers).
var ErrInfeasible = errors.New("qp: constraints are infeasible")

// SolveNNQP minimizes ½λᵀMλ + qᵀλ over λ ≥ 0 using a Lawson–Hanson-style
// active-set method. M must be symmetric positive semidefinite. Because M
// is often rank deficient in practice (more constraints than effective
// degrees of freedom), a tiny explicit Tikhonov shift ε·I is added up
// front: the dual becomes strictly convex, the active-set iteration
// provably terminates, and the induced primal feasibility error is O(ε·λ),
// far below the enforcement margins this solver serves.
func SolveNNQP(m *mat.Matrix, q []float64) ([]float64, error) {
	n := m.Rows
	if m.Cols != n || len(q) != n {
		panic("qp: SolveNNQP dimension mismatch")
	}
	scale := 1.0 + m.MaxAbs()
	eps := 1e-11 * scale
	m = m.Clone()
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+eps)
	}

	lambda := make([]float64, n)
	free := make([]bool, n)
	grad := make([]float64, n)
	copy(grad, q) // gradient at λ=0 is q

	qScale := 0.0
	for _, v := range q {
		qScale += math.Abs(v)
	}
	tol := 1e-12 * (scale + qScale)

	maxOuter := 4*n + 40
	for outer := 0; outer < maxOuter; outer++ {
		// Most negative gradient among bound variables.
		best, bestVal := -1, -tol
		for i := 0; i < n; i++ {
			if !free[i] && grad[i] < bestVal {
				best, bestVal = i, grad[i]
			}
		}
		if best == -1 {
			return lambda, nil // KKT satisfied
		}
		free[best] = true

		// Inner loop: re-optimize on the free set, trimming negative
		// components until the free-set minimizer is feasible.
		for inner := 0; inner < maxOuter; inner++ {
			idx := freeIndices(free)
			cand, err := solveFreeSet(m, q, idx)
			if err != nil {
				return nil, err
			}
			if allNonNegative(cand, tol) {
				for k, i := range idx {
					lambda[i] = math.Max(cand[k], 0)
				}
				break
			}
			// An unbounded dual (infeasible primal) shows up as runaway
			// candidate magnitudes from the regularized solve.
			if mat.Norm2(cand) > 1e13*(1+qScale)/math.Max(scale, 1e-300) {
				return nil, ErrInfeasible
			}
			// Line search toward the candidate, stopping at the first
			// variable that crosses zero.
			alpha := 1.0
			for k, i := range idx {
				if cand[k] < 0 {
					den := lambda[i] - cand[k]
					if den > 0 {
						if a := lambda[i] / den; a < alpha {
							alpha = a
						}
					} else {
						alpha = 0
					}
				}
			}
			for k, i := range idx {
				lambda[i] += alpha * (cand[k] - lambda[i])
				if lambda[i] <= tol {
					lambda[i] = 0
					free[i] = false
				}
			}
			if inner == maxOuter-1 {
				return nil, ErrIterationLimit
			}
		}
		// Refresh the gradient: grad = Mλ + q.
		for i := 0; i < n; i++ {
			s := q[i]
			row := m.Row(i)
			for j, v := range row {
				if lambda[j] != 0 {
					s += v * lambda[j]
				}
			}
			grad[i] = s
		}
	}
	return nil, ErrIterationLimit
}

func freeIndices(free []bool) []int {
	var idx []int
	for i, f := range free {
		if f {
			idx = append(idx, i)
		}
	}
	return idx
}

func allNonNegative(v []float64, tol float64) bool {
	for _, x := range v {
		if x < -tol {
			return false
		}
	}
	return true
}

// solveFreeSet solves M[idx,idx]·λ = −q[idx]. The caller has already made
// M strictly positive definite, so a plain Cholesky applies (with the
// regularized fallback as a numerical backstop).
func solveFreeSet(m *mat.Matrix, q []float64, idx []int) ([]float64, error) {
	k := len(idx)
	sub := mat.NewMatrix(k, k)
	rhs := make([]float64, k)
	for a, i := range idx {
		rhs[a] = -q[i]
		for b, j := range idx {
			sub.Set(a, b, m.At(i, j))
		}
	}
	chol, _, err := mat.CholFactorRegularized(sub)
	if err != nil {
		return nil, fmt.Errorf("qp: free-set system not solvable: %w", err)
	}
	return chol.SolveVec(rhs), nil
}

// Result holds the solution of a dense QP solve.
type Result struct {
	X          []float64 // primal minimizer
	Lambda     []float64 // dual multipliers (one per constraint row)
	Iterations int
}

// SolveDense solves min ½xᵀHx s.t. Fx ≤ g for dense H (SPD) and F. This is
// the generic path used by tests and small problems; the passivity
// enforcement fast path assembles the dual matrix directly instead.
func SolveDense(h, f *mat.Matrix, g []float64) (*Result, error) {
	nvar := h.Rows
	if h.Cols != nvar || f.Cols != nvar || len(g) != f.Rows {
		panic("qp: SolveDense dimension mismatch")
	}
	chol, _, err := mat.CholFactorRegularized(h)
	if err != nil {
		return nil, fmt.Errorf("qp: H not positive definite: %w", err)
	}
	// W = H⁻¹Fᵀ, M = F·W.
	w := chol.Solve(f.T())
	m := f.Mul(w)
	m.Symmetrize()
	lambda, err := SolveNNQP(m, g)
	if err != nil {
		return nil, err
	}
	// x = −H⁻¹Fᵀλ = −W·λ.
	x := make([]float64, nvar)
	for i := 0; i < nvar; i++ {
		s := 0.0
		for j := 0; j < f.Rows; j++ {
			s += w.At(i, j) * lambda[j]
		}
		x[i] = -s
	}
	// Verify primal feasibility: a solution that badly violates the
	// constraints signals an infeasible problem that slipped past the
	// multiplier guard.
	scale := 1 + mat.Norm2(g) + mat.Norm2(x)*(1+f.MaxAbs())
	fx := f.MulVec(x)
	for i := range g {
		if fx[i] > g[i]+1e-6*scale {
			return nil, ErrInfeasible
		}
	}
	return &Result{X: x, Lambda: lambda}, nil
}
