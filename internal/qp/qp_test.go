package qp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func randSPD(rng *rand.Rand, n int) *mat.Matrix {
	b := mat.NewMatrix(n+2, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	p := b.T().Mul(b)
	for i := 0; i < n; i++ {
		p.Set(i, i, p.At(i, i)+0.5)
	}
	return p
}

func TestUnconstrainedOptimumWhenFeasible(t *testing.T) {
	// If g ≥ 0 the unconstrained minimizer x=0 is feasible, so x*=0, λ*=0.
	rng := rand.New(rand.NewSource(70))
	h := randSPD(rng, 5)
	f := mat.NewMatrix(3, 5)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	g := []float64{1, 2, 0.5}
	res, err := SolveDense(h, f, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.X {
		if math.Abs(x) > 1e-10 {
			t.Fatalf("x should be 0, got %v", res.X)
		}
	}
}

func TestSingleActiveConstraintClosedForm(t *testing.T) {
	// min ½‖x‖² s.t. aᵀx ≤ g with g<0 has solution x = a·g/‖a‖².
	h := mat.Identity(3)
	f := mat.NewMatrixFrom([][]float64{{1, 2, -1}})
	g := []float64{-2.0}
	res, err := SolveDense(h, f, g)
	if err != nil {
		t.Fatal(err)
	}
	norm2 := 1.0 + 4 + 1
	want := []float64{1 * -2 / norm2, 2 * -2 / norm2, -1 * -2 / norm2}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-10 {
			t.Fatalf("x = %v want %v", res.X, want)
		}
	}
}

func TestTwoConstraints(t *testing.T) {
	// min ½(x²+y²) s.t. −x ≤ −1, −y ≤ −2  ⇒ x=1, y=2 (both active).
	h := mat.Identity(2)
	f := mat.NewMatrixFrom([][]float64{{-1, 0}, {0, -1}})
	g := []float64{-1, -2}
	res, err := SolveDense(h, f, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-10 || math.Abs(res.X[1]-2) > 1e-10 {
		t.Fatalf("x = %v want [1 2]", res.X)
	}
	// Both multipliers positive.
	if res.Lambda[0] <= 0 || res.Lambda[1] <= 0 {
		t.Fatalf("λ = %v, both should be active", res.Lambda)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate rows must not break the solver (singular dual matrix).
	h := mat.Identity(2)
	f := mat.NewMatrixFrom([][]float64{{-1, 0}, {-1, 0}, {-1, 0}})
	g := []float64{-1, -1, -1}
	res, err := SolveDense(h, f, g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-8 || math.Abs(res.X[1]) > 1e-8 {
		t.Fatalf("x = %v want [1 0]", res.X)
	}
}

// checkKKT verifies stationarity, primal/dual feasibility and complementary
// slackness of a solution.
func checkKKT(t *testing.T, h, f *mat.Matrix, g []float64, res *Result, tol float64) {
	t.Helper()
	// Stationarity: Hx + Fᵀλ = 0.
	hx := h.MulVec(res.X)
	ftl := f.MulVecT(res.Lambda)
	for i := range hx {
		if math.Abs(hx[i]+ftl[i]) > tol {
			t.Fatalf("stationarity violated at %d: %v", i, hx[i]+ftl[i])
		}
	}
	fx := f.MulVec(res.X)
	for i := range g {
		// Primal feasibility.
		if fx[i] > g[i]+tol {
			t.Fatalf("primal infeasible row %d: %v > %v", i, fx[i], g[i])
		}
		// Dual feasibility.
		if res.Lambda[i] < -tol {
			t.Fatalf("negative multiplier %v", res.Lambda[i])
		}
		// Complementary slackness.
		if res.Lambda[i]*(g[i]-fx[i]) > tol*10 {
			t.Fatalf("complementary slackness violated row %d: λ=%v slack=%v", i, res.Lambda[i], g[i]-fx[i])
		}
	}
}

func TestKKTRandomProblems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := 1 + rng.Intn(6)
		h := randSPD(rng, n)
		fm := mat.NewMatrix(m, n)
		for i := range fm.Data {
			fm.Data[i] = rng.NormFloat64()
		}
		// Guarantee feasibility: pick a point x0 and give every row
		// nonnegative slack around it, so x0 is always feasible. Rows with
		// zero slack tend to be active at the optimum.
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		fx0 := fm.MulVec(x0)
		g := make([]float64, m)
		for i := range g {
			slack := 0.0
			if rng.Intn(2) == 0 {
				slack = math.Abs(rng.NormFloat64())
			}
			g[i] = fx0[i] + slack
		}
		res, err := SolveDense(h, fm, g)
		if err != nil {
			return false
		}
		// Inline KKT check (quick.Check can't call t.Fatalf helpers).
		hx := h.MulVec(res.X)
		ftl := fm.MulVecT(res.Lambda)
		scale := 1.0 + mat.Norm2(g)
		for i := range hx {
			if math.Abs(hx[i]+ftl[i]) > 1e-6*scale {
				return false
			}
		}
		fx := fm.MulVec(res.X)
		for i := range g {
			if fx[i] > g[i]+1e-6*scale || res.Lambda[i] < -1e-9 {
				return false
			}
			if res.Lambda[i]*(g[i]-fx[i]) > 1e-5*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestObjectiveNotWorseThanVertices(t *testing.T) {
	// Compare against brute force over all active-set combinations for a
	// small problem: the QP solution must achieve the minimum objective
	// among all KKT candidates.
	rng := rand.New(rand.NewSource(71))
	h := randSPD(rng, 3)
	f := mat.NewMatrix(3, 3)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	g := []float64{-1, -0.5, 2}
	res, err := SolveDense(h, f, g)
	if err != nil {
		t.Fatal(err)
	}
	checkKKT(t, h, f, g, res, 1e-8)
	obj := func(x []float64) float64 {
		hx := h.MulVec(x)
		return 0.5 * mat.Dot(x, hx)
	}
	feasible := func(x []float64) bool {
		fx := f.MulVec(x)
		for i := range g {
			if fx[i] > g[i]+1e-9 {
				return false
			}
		}
		return true
	}
	best := obj(res.X)
	// Enumerate all subsets of constraints as equalities, solve the KKT
	// system, and keep feasible candidates.
	for mask := 0; mask < 8; mask++ {
		var rows []int
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				rows = append(rows, i)
			}
		}
		k := len(rows)
		// Solve [H Aᵀ; A 0][x;ν] = [0; g_A]
		kkt := mat.NewMatrix(3+k, 3+k)
		kkt.SetSlice(0, 0, h)
		for a, r := range rows {
			for j := 0; j < 3; j++ {
				kkt.Set(3+a, j, f.At(r, j))
				kkt.Set(j, 3+a, f.At(r, j))
			}
		}
		rhs := make([]float64, 3+k)
		for a, r := range rows {
			rhs[3+a] = g[r]
		}
		sol, err := mat.SolveLin(kkt, rhs)
		if err != nil {
			continue
		}
		x := sol[:3]
		if feasible(x) && obj(x) < best-1e-9 {
			t.Fatalf("found better feasible point: obj %v < %v (mask %b)", obj(x), best, mask)
		}
	}
}

func TestNNQPDirect(t *testing.T) {
	// min ½λᵀMλ + qᵀλ, λ≥0 with M = I, q = (−1, 2): λ* = (1, 0).
	m := mat.Identity(2)
	q := []float64{-1, 2}
	lam, err := SolveNNQP(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam[0]-1) > 1e-10 || lam[1] != 0 {
		t.Fatalf("λ = %v want [1 0]", lam)
	}
}

func BenchmarkSolveDense50x200(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	h := randSPD(rng, 200)
	f := mat.NewMatrix(50, 200)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	g := make([]float64, 50)
	for i := range g {
		g[i] = rng.NormFloat64() - 0.5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveDense(h, f, g); err != nil {
			b.Fatal(err)
		}
	}
}

func TestInfeasibleDetected(t *testing.T) {
	// x ≤ −1 and −x ≤ −1 (i.e. x ≥ 1) cannot both hold.
	h := mat.Identity(1)
	f := mat.NewMatrixFrom([][]float64{{1}, {-1}})
	g := []float64{-1, -1}
	if _, err := SolveDense(h, f, g); err == nil {
		t.Fatalf("expected ErrInfeasible")
	}
}
