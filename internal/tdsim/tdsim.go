// Package tdsim co-simulates a scattering macromodel with its nominal
// termination network in the time domain — the "extensive transient
// simulations" that the paper's §I flow feeds its macromodels into, and the
// step where passivity decides between a usable model and a numerically
// exploding one (§II).
//
// The scattering state-space model {A,B,C,D} (waves normalized to R0) is
// first converted to its admittance realization
//
//	I = C_Y·x + D_Y·V,  x' = A_Y·x + B_Y·V,
//	A_Y = A − B·K·C,  B_Y = B·K/√R0,  C_Y = −(2/√R0)·K·C,
//	D_Y = (I−D)·K/R0,  K = (I+D)⁻¹,
//
// then discretized with the trapezoidal rule (A-stable, no artificial
// damping — the honest integrator for passivity experiments) or backward
// Euler (adds numerical damping, provided for comparison). Each port is
// closed by the trapezoidal companion model of its termination and by the
// Norton current sources; the per-step algebraic system shares one LU
// factorization.
//
// The simulator also integrates the instantaneous power Σᵢ vᵢ·iᵢ delivered
// to the macromodel. For a passive model started at rest the cumulative
// energy can never go negative; a non-passive model can be caught
// generating energy even when the waveforms stay bounded.
package tdsim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/pdn"
	"repro/internal/statespace"
)

// Method selects the integration rule.
type Method int

// Integration rules.
const (
	// Trapezoidal is the A-stable, non-dissipative default.
	Trapezoidal Method = iota
	// BackwardEuler adds numerical damping (L-stable); useful to show how a
	// lossy integrator can mask model non-passivity.
	BackwardEuler
)

// String returns the method name.
func (m Method) String() string {
	if m == BackwardEuler {
		return "backward-euler"
	}
	return "trapezoidal"
}

// Source is a Norton current source injected into one port.
type Source struct {
	Port int
	Wave Waveform
}

// Options configures a transient run.
type Options struct {
	// Dt is the time step (s).
	Dt float64
	// Steps is the number of time steps.
	Steps int
	// Method selects the integrator (default Trapezoidal).
	Method Method
	// RecordEvery decimates the stored output (default 1 = every step).
	RecordEvery int
}

// Result holds the recorded waveforms of a run.
type Result struct {
	// T lists recorded time points (s), starting at 0.
	T []float64
	// V[k][p] is the voltage at port p at T[k].
	V [][]float64
	// I[k][p] is the current into macromodel port p at T[k].
	I [][]float64
	// Energy[k] is the cumulative energy delivered to the macromodel up to
	// T[k] (trapezoidal accumulation of Σ_p v_p·i_p).
	Energy []float64
	// Method echoes the integrator used.
	Method Method
}

// ErrBadOptions reports invalid simulation options.
var ErrBadOptions = errors.New("tdsim: invalid options")

// Simulator is a prepared transient co-simulation. Build it with New, run
// it with Run; a Simulator is single-use (Run consumes its state).
type Simulator struct {
	opts    Options
	ports   int
	n       int
	phi     *mat.Matrix // n×n state propagator
	gam1    *mat.Matrix // n×p weight of v_k (trapezoidal only)
	gam2    *mat.Matrix // n×p weight of v_{k+1}
	cy, dy  *mat.Matrix
	cyPhi   *mat.Matrix // p×n
	cyGam1  *mat.Matrix // p×p
	lu      *mat.LU     // factored p×p step matrix
	stamps  []stamp
	sources []Source
}

// New prepares a transient co-simulation of a scattering state-space system
// (normalized to r0) terminated by terms and excited by sources.
func New(sys *statespace.System, r0 float64, terms []pdn.Termination, sources []Source, opts Options) (*Simulator, error) {
	p := sys.Outputs()
	if sys.Inputs() != p {
		return nil, fmt.Errorf("tdsim: scattering system must be square, got %d×%d", sys.Outputs(), sys.Inputs())
	}
	if len(terms) != p {
		return nil, fmt.Errorf("tdsim: %d terminations for %d ports", len(terms), p)
	}
	if r0 <= 0 {
		return nil, fmt.Errorf("%w: r0 = %g", ErrBadOptions, r0)
	}
	if opts.Dt <= 0 || opts.Steps <= 0 {
		return nil, fmt.Errorf("%w: Dt=%g Steps=%d", ErrBadOptions, opts.Dt, opts.Steps)
	}
	if opts.RecordEvery <= 0 {
		opts.RecordEvery = 1
	}
	for _, src := range sources {
		if src.Port < 0 || src.Port >= p {
			return nil, fmt.Errorf("tdsim: source port %d out of range [0,%d)", src.Port, p)
		}
		if src.Wave == nil {
			return nil, fmt.Errorf("tdsim: source at port %d has nil waveform", src.Port)
		}
	}
	be := opts.Method == BackwardEuler

	// Admittance realization.
	n := sys.Order()
	iPlusD := mat.Identity(p).Add(sys.D)
	luD, err := mat.LUFactor(iPlusD)
	if err != nil {
		return nil, fmt.Errorf("tdsim: I+D singular (D has an eigenvalue at −1): %w", err)
	}
	k := luD.Solve(mat.Identity(p))
	sqrtR0 := math.Sqrt(r0)
	kc := k.Mul(sys.C)                                    // p×n
	ay := sys.A.Sub(sys.B.Mul(kc))                        // n×n
	by := sys.B.Mul(k).Scale(1 / sqrtR0)                  // n×p
	cy := kc.Scale(-2 / sqrtR0)                           // p×n
	dy := mat.Identity(p).Sub(sys.D).Mul(k).Scale(1 / r0) // p×p

	sim := &Simulator{opts: opts, ports: p, n: n, cy: cy, dy: dy, sources: sources}

	// Discretization.
	h := opts.Dt
	if n > 0 {
		var e, f *mat.Matrix
		if be {
			e = mat.Identity(n).Sub(ay.Scale(h))
			f = mat.Identity(n)
		} else {
			e = mat.Identity(n).Sub(ay.Scale(h / 2))
			f = mat.Identity(n).Add(ay.Scale(h / 2))
		}
		luE, err := mat.LUFactor(e)
		if err != nil {
			return nil, fmt.Errorf("tdsim: discretization matrix singular at Dt=%g: %w", h, err)
		}
		sim.phi = luE.Solve(f)
		if be {
			sim.gam2 = luE.Solve(by.Scale(h))
			sim.gam1 = mat.NewMatrix(n, p)
		} else {
			sim.gam2 = luE.Solve(by.Scale(h / 2))
			sim.gam1 = sim.gam2.Clone()
		}
		sim.cyPhi = cy.Mul(sim.phi)
		sim.cyGam1 = cy.Mul(sim.gam1)
	}

	// Termination companions and the per-step algebraic system
	// M = C_Y·Γ₂ + D_Y + diag(Geq).
	sim.stamps = make([]stamp, p)
	m := dy.Clone()
	if n > 0 {
		m = m.Add(cy.Mul(sim.gam2))
	}
	for i, t := range terms {
		st, err := newStamp(t, h, be)
		if err != nil {
			return nil, err
		}
		sim.stamps[i] = st
		m.Set(i, i, m.At(i, i)+st.Geq())
	}
	lu, err := mat.LUFactor(m)
	if err != nil {
		return nil, fmt.Errorf("tdsim: step matrix singular: %w", err)
	}
	sim.lu = lu
	return sim, nil
}

// Run integrates the co-simulation from zero initial conditions.
func (s *Simulator) Run() *Result {
	p, n := s.ports, s.n
	h := s.opts.Dt
	x := make([]float64, n)
	vPrev := make([]float64, p)
	iPrev := make([]float64, p)
	energy := 0.0
	powerPrev := 0.0

	res := &Result{Method: s.opts.Method}
	record := func(t float64, v, ii []float64) {
		res.T = append(res.T, t)
		res.V = append(res.V, append([]float64(nil), v...))
		res.I = append(res.I, append([]float64(nil), ii...))
		res.Energy = append(res.Energy, energy)
	}
	record(0, vPrev, iPrev)

	rhs := make([]float64, p)
	for k := 1; k <= s.opts.Steps; k++ {
		t := float64(k) * h
		for i := range rhs {
			rhs[i] = 0
		}
		for _, src := range s.sources {
			rhs[src.Port] += src.Wave.At(t)
		}
		if n > 0 {
			xp := s.cyPhi.MulVec(x)
			vp := s.cyGam1.MulVec(vPrev)
			for i := 0; i < p; i++ {
				rhs[i] -= xp[i] + vp[i]
			}
		}
		for i, st := range s.stamps {
			rhs[i] -= st.Hist()
		}
		v := s.lu.SolveVec(rhs)

		// State update and macromodel port currents.
		var iNow []float64
		if n > 0 {
			xNew := s.phi.MulVec(x)
			g1 := s.gam1.MulVec(vPrev)
			g2 := s.gam2.MulVec(v)
			for i := range xNew {
				xNew[i] += g1[i] + g2[i]
			}
			iNow = s.cy.MulVec(xNew)
			dv := s.dy.MulVec(v)
			for i := range iNow {
				iNow[i] += dv[i]
			}
			x = xNew
		} else {
			iNow = s.dy.MulVec(v)
		}

		// Advance termination states with their solved load currents.
		for i, st := range s.stamps {
			st.Advance(v[i], st.Geq()*v[i]+st.Hist())
		}

		// Energy bookkeeping (trapezoidal on instantaneous power).
		power := 0.0
		for i := 0; i < p; i++ {
			power += v[i] * iNow[i]
		}
		energy += h / 2 * (powerPrev + power)
		powerPrev = power

		copy(vPrev, v)
		copy(iPrev, iNow)
		if k%s.opts.RecordEvery == 0 || k == s.opts.Steps {
			record(t, v, iNow)
		}
	}
	return res
}

// PortVoltage extracts the voltage waveform of one port.
func (r *Result) PortVoltage(port int) []float64 {
	out := make([]float64, len(r.V))
	for k := range r.V {
		out[k] = r.V[k][port]
	}
	return out
}

// PortCurrent extracts the macromodel port current waveform of one port.
func (r *Result) PortCurrent(port int) []float64 {
	out := make([]float64, len(r.I))
	for k := range r.I {
		out[k] = r.I[k][port]
	}
	return out
}

// MaxAbsVoltage returns the worst-case |v| of one port — the droop metric
// of a PDN transient run.
func (r *Result) MaxAbsVoltage(port int) float64 {
	worst := 0.0
	for k := range r.V {
		if a := math.Abs(r.V[k][port]); a > worst {
			worst = a
		}
	}
	return worst
}

// FinalVoltage returns the last recorded voltage at a port.
func (r *Result) FinalVoltage(port int) float64 {
	if len(r.V) == 0 {
		return 0
	}
	return r.V[len(r.V)-1][port]
}

// MinEnergy returns the lowest cumulative energy seen — negative values
// flag a macromodel generating energy (non-passive behaviour).
func (r *Result) MinEnergy() float64 {
	low := math.Inf(1)
	for _, e := range r.Energy {
		if e < low {
			low = e
		}
	}
	return low
}

// FitTone least-squares-fits v_port(t) ≈ A·sin(2πft) + B·cos(2πft) + C + D·t
// over the samples with t ≥ tStart and returns the tone amplitude √(A²+B²)
// and phase atan2(B, A) — the steady-state response estimate for
// single-tone excitations. The constant and linear terms absorb the slow
// tails of low-frequency PDN poles that have not fully decayed.
func (r *Result) FitTone(port int, freqHz, tStart float64) (amp, phase float64) {
	const nb = 4
	var s [nb][nb]float64
	var b [nb]float64
	w := 2 * math.Pi * freqHz
	// Center and scale the drift coordinate for conditioning.
	tEnd := tStart
	if len(r.T) > 0 {
		tEnd = r.T[len(r.T)-1]
	}
	tMid, tHalf := (tStart+tEnd)/2, math.Max((tEnd-tStart)/2, 1e-300)
	cnt := 0
	for k, t := range r.T {
		if t < tStart {
			continue
		}
		basis := [nb]float64{math.Sin(w * t), math.Cos(w * t), 1, (t - tMid) / tHalf}
		y := r.V[k][port]
		for i := 0; i < nb; i++ {
			for j := 0; j < nb; j++ {
				s[i][j] += basis[i] * basis[j]
			}
			b[i] += basis[i] * y
		}
		cnt++
	}
	if cnt < nb+1 {
		return 0, 0
	}
	m := mat.NewMatrix(nb, nb)
	for i := 0; i < nb; i++ {
		for j := 0; j < nb; j++ {
			m.Set(i, j, s[i][j])
		}
	}
	x, err := mat.SolveLin(m, b[:])
	if err != nil {
		return 0, 0
	}
	return math.Hypot(x[0], x[1]), math.Atan2(x[1], x[0])
}
