package tdsim

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mat"
	"repro/internal/pdn"
	"repro/internal/rational"
	"repro/internal/statespace"
)

// matchedModel returns a P-port D-only scattering system S(s) = 0 (every
// port looks like a perfect R0 resistor).
func matchedModel(p int) *statespace.System {
	return statespace.MustNew(mat.NewMatrix(0, 0), mat.NewMatrix(0, p), mat.NewMatrix(p, 0), mat.NewMatrix(p, p))
}

// onePolePairModel builds the 1-port scattering model
// S(s) = d + r/(s−p) + r̄/(s−p̄) with p = −a+jb and real r, realized through
// the rational package so the realization convention matches the library.
func onePolePairModel(t *testing.T, a, b, r, d float64) *rational.Model {
	t.Helper()
	poles := []complex128{complex(-a, b), complex(-a, -b)}
	r1 := mat.NewCMatrix(1, 1)
	r1.Set(0, 0, complex(r, 0))
	r2 := mat.NewCMatrix(1, 1)
	r2.Set(0, 0, complex(r, 0))
	dm := mat.NewMatrix(1, 1)
	dm.Set(0, 0, d)
	m, err := rational.New(poles, []*mat.CMatrix{r1, r2}, dm)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatchedModelStepResponse(t *testing.T) {
	// S = 0 means the port is an R0 resistor: V = R0·J instantly.
	sys := matchedModel(1)
	sim, err := New(sys, 50, []pdn.Termination{pdn.Open{}},
		[]Source{{Port: 0, Wave: Step{Amplitude: 1}}},
		Options{Dt: 1e-9, Steps: 100})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for k := 1; k < len(res.T); k++ {
		if math.Abs(res.V[k][0]-50) > 1e-9 {
			t.Fatalf("V[%d] = %v want 50", k, res.V[k][0])
		}
		if math.Abs(res.I[k][0]-1) > 1e-12 {
			t.Fatalf("I[%d] = %v want 1", k, res.I[k][0])
		}
	}
	// Energy into a 50 Ω model carrying 1 A is 50 W × t.
	finalE := res.Energy[len(res.Energy)-1]
	wantE := 50 * res.T[len(res.T)-1]
	if math.Abs(finalE-wantE) > 0.02*wantE {
		t.Fatalf("energy %v want ≈ %v", finalE, wantE)
	}
}

func TestDecapStepMatchesAnalyticRC(t *testing.T) {
	// Matched 1-port model (an R0 resistor) in parallel with a decap
	// (C + ESR): the node voltage under a current step J is
	//   V(t) = R0·J·(1 − R0/(R0+ESR)·e^{−t/τ}),  τ = C·(R0+ESR).
	const (
		r0  = 50.0
		esr = 10.0
		c   = 1e-9
		j   = 0.5
	)
	tau := c * (r0 + esr)
	dt := tau / 400
	sys := matchedModel(1)
	sim, err := New(sys, r0, []pdn.Termination{pdn.Decap(c, esr, 0)},
		[]Source{{Port: 0, Wave: Step{Amplitude: j}}},
		Options{Dt: dt, Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	for k, tm := range res.T {
		if tm < 5*dt {
			continue // skip the discrete step onset
		}
		// The discrete step turns on between t=0 and t=dt; model it as a
		// half-step delay.
		want := r0 * j * (1 - r0/(r0+esr)*math.Exp(-(tm-dt/2)/tau))
		if math.Abs(res.V[k][0]-want) > 0.01*r0*j {
			t.Fatalf("t=%g: V=%v want %v", tm, res.V[k][0], want)
		}
	}
	// DC limit: decap blocks, all current in the port resistance.
	if f := res.FinalVoltage(0); math.Abs(f-r0*j) > 1e-3*r0*j {
		t.Fatalf("final V=%v want %v", f, r0*j)
	}
}

func TestSineSteadyStateMatchesTargetImpedance(t *testing.T) {
	// A 2-port rational model terminated at port 1 by a resistor, excited
	// by a sine at port 0: the steady-state tone at port 0 must match
	// |Z_PDN(jω0)| computed by the frequency-domain machinery (eq. 2).
	poles := []complex128{
		complex(-2*math.Pi*3e6, 2*math.Pi*3e7),
		complex(-2*math.Pi*3e6, -2*math.Pi*3e7),
		complex(-2*math.Pi*1e7, 0),
	}
	mk := func(v complex128) *mat.CMatrix {
		m := mat.NewCMatrix(2, 2)
		m.Set(0, 0, v)
		m.Set(0, 1, v/2)
		m.Set(1, 0, v/2)
		m.Set(1, 1, v/3)
		return m
	}
	scale := complex(2*math.Pi*2e6, 0)
	res1 := mk(scale * complex(0.3, 0.1))
	res2 := mk(scale * complex(0.3, -0.1))
	res3 := mk(scale * complex(-0.4, 0))
	d := mat.NewMatrix(2, 2)
	d.Set(0, 0, 0.2)
	d.Set(1, 1, 0.1)
	model, err := rational.New(poles, []*mat.CMatrix{res1, res2, res3}, d)
	if err != nil {
		t.Fatal(err)
	}

	const (
		r0 = 50.0
		f0 = 2.2e7
	)
	load := &pdn.Load{
		Terms:   []pdn.Termination{pdn.Open{}, pdn.Resistor{R: 5}},
		J:       []complex128{1, 0},
		ObsPort: 0,
	}
	omega0 := 2 * math.Pi * f0
	zRef, err := pdn.TargetImpedanceAt(model.Eval(omega0), r0, omega0, load)
	if err != nil {
		t.Fatal(err)
	}

	dt := 1 / (60 * f0)
	steps := 9000 // ≈ 150 cycles, transients die in ~10
	sim, err := New(model.Realization(), r0, load.Terms,
		[]Source{{Port: 0, Wave: Sine{Freq: f0, Amplitude: 1}}},
		Options{Dt: dt, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Run()
	amp, _ := out.FitTone(0, f0, out.T[len(out.T)-1]/2)
	if math.Abs(amp-cmplx.Abs(zRef)) > 0.02*cmplx.Abs(zRef) {
		t.Fatalf("steady-state amplitude %v, frequency domain says %v", amp, cmplx.Abs(zRef))
	}
}

func TestStepSettlesToDCTargetImpedance(t *testing.T) {
	model := onePolePairModel(t, 2*math.Pi*1e6, 2*math.Pi*1e7, -2*math.Pi*2e5, 0.3)
	load := &pdn.Load{
		Terms:   []pdn.Termination{pdn.Resistor{R: 20}},
		J:       []complex128{1, 0}[:1],
		ObsPort: 0,
	}
	z0, err := pdn.TargetImpedanceAt(model.Eval(0), 50, 0, load)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(model.Realization(), 50, load.Terms,
		[]Source{{Port: 0, Wave: Step{Amplitude: 1, Rise: 1e-8}}},
		Options{Dt: 2e-9, Steps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if got, want := res.FinalVoltage(0), real(z0); math.Abs(got-want) > 1e-3*math.Abs(want) {
		t.Fatalf("settled V=%v want Re Z_PDN(0)=%v", got, want)
	}
}

func TestBackwardEulerSettlesToSameDC(t *testing.T) {
	model := onePolePairModel(t, 2*math.Pi*1e6, 2*math.Pi*1e7, -2*math.Pi*2e5, 0.3)
	terms := []pdn.Termination{pdn.Resistor{R: 20}}
	src := []Source{{Port: 0, Wave: Step{Amplitude: 1, Rise: 1e-8}}}
	var finals [2]float64
	for i, method := range []Method{Trapezoidal, BackwardEuler} {
		sim, err := New(model.Realization(), 50, terms, src,
			Options{Dt: 2e-9, Steps: 4000, Method: method})
		if err != nil {
			t.Fatal(err)
		}
		finals[i] = sim.Run().FinalVoltage(0)
	}
	if math.Abs(finals[0]-finals[1]) > 1e-3*math.Abs(finals[0]) {
		t.Fatalf("trapezoidal settles to %v, backward Euler to %v", finals[0], finals[1])
	}
}

func TestPassiveModelEnergyNonNegative(t *testing.T) {
	// A clearly passive model: |S| ≤ 0.3 at all frequencies.
	model := onePolePairModel(t, 1e7, 6e7, -0.2e7, 0.1)
	sim, err := New(model.Realization(), 50,
		[]pdn.Termination{pdn.Resistor{R: 50}},
		[]Source{{Port: 0, Wave: Pulse{T0: 1e-8, Rise: 2e-9, Width: 5e-8, Amplitude: 2, Period: 2e-7}}},
		Options{Dt: 5e-10, Steps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	if e := res.MinEnergy(); e < -1e-12 {
		t.Fatalf("passive model consumed negative energy: %v", e)
	}
}

func TestNonPassiveModelGeneratesEnergy(t *testing.T) {
	// r = −3a makes S(jb) ≈ d − 3, |S| ≈ 2.9 > 1 at resonance: driving at
	// the resonance through a matched load extracts energy from the model.
	const a = 1e7
	bad := onePolePairModel(t, a, 6e7, -3*a, 0.1)
	good := onePolePairModel(t, a, 6e7, -0.2*a, 0.1)
	fRes := 6e7 / (2 * math.Pi)
	run := func(m *rational.Model) *Result {
		sim, err := New(m.Realization(), 50,
			[]pdn.Termination{pdn.Resistor{R: 50}},
			[]Source{{Port: 0, Wave: Sine{Freq: fRes, Amplitude: 1}}},
			Options{Dt: 1 / (50 * fRes), Steps: 20000})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	resBad := run(bad)
	if e := resBad.MinEnergy(); e > -1e-9 {
		t.Fatalf("non-passive model should generate energy, min cumulative energy %v", e)
	}
	resGood := run(good)
	if e := resGood.MinEnergy(); e < -1e-12 {
		t.Fatalf("passive comparator consumed negative energy: %v", e)
	}
}

func TestNonPassiveModelUnstableWithShort(t *testing.T) {
	// The same non-passive model is exponentially unstable when shorted
	// (the admittance realization A_Y has a RHP eigenvalue), while the
	// passive comparator stays bounded — the paper's §II "root cause for
	// numerical instabilities in transient simulations".
	const a = 1e7
	bad := onePolePairModel(t, a, 6e7, -3*a, 0.1)
	good := onePolePairModel(t, a, 6e7, -0.2*a, 0.1)
	run := func(m *rational.Model) *Result {
		sim, err := New(m.Realization(), 50,
			[]pdn.Termination{pdn.Short{}},
			[]Source{{Port: 0, Wave: Pulse{Rise: 1e-9, Width: 1e-8, Amplitude: 1}}},
			Options{Dt: 5e-10, Steps: 4000})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	resBad := run(bad)
	resGood := run(good)
	iBad := resBad.PortCurrent(0)
	iGood := resGood.PortCurrent(0)
	lateBad := math.Abs(iBad[len(iBad)-1])
	lateGood := math.Abs(iGood[len(iGood)-1])
	if lateBad < 1e3 {
		t.Fatalf("non-passive model should diverge under a short, final |I| = %v", lateBad)
	}
	if lateGood > 1 {
		t.Fatalf("passive model should stay bounded under a short, final |I| = %v", lateGood)
	}
}

func TestRecordDecimation(t *testing.T) {
	sys := matchedModel(1)
	sim, err := New(sys, 50, []pdn.Termination{pdn.Open{}},
		[]Source{{Port: 0, Wave: Step{Amplitude: 1}}},
		Options{Dt: 1e-9, Steps: 100, RecordEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run()
	// initial point + 10 decimated points.
	if len(res.T) != 11 {
		t.Fatalf("got %d records, want 11", len(res.T))
	}
	if res.T[1] != 10e-9 {
		t.Fatalf("first recorded step at %v want 10 ns", res.T[1])
	}
}

type bogusTermination struct{}

func (bogusTermination) Y(float64) complex128 { return 0 }
func (bogusTermination) Describe() string     { return "bogus" }

func TestErrorPaths(t *testing.T) {
	sys := matchedModel(2)
	terms := []pdn.Termination{pdn.Open{}, pdn.Open{}}
	ok := Options{Dt: 1e-9, Steps: 10}
	if _, err := New(sys, 50, terms[:1], nil, ok); err == nil {
		t.Fatal("termination count mismatch must fail")
	}
	if _, err := New(sys, -50, terms, nil, ok); err == nil {
		t.Fatal("negative r0 must fail")
	}
	if _, err := New(sys, 50, terms, nil, Options{Dt: 0, Steps: 10}); err == nil {
		t.Fatal("zero Dt must fail")
	}
	if _, err := New(sys, 50, terms, []Source{{Port: 7, Wave: Step{}}}, ok); err == nil {
		t.Fatal("out-of-range source port must fail")
	}
	if _, err := New(sys, 50, terms, []Source{{Port: 0}}, ok); err == nil {
		t.Fatal("nil waveform must fail")
	}
	if _, err := New(sys, 50, []pdn.Termination{bogusTermination{}, pdn.Open{}}, nil, ok); err == nil {
		t.Fatal("unsupported termination must fail")
	}
	// D with an eigenvalue at −1 has no admittance realization.
	dm := mat.NewMatrix(1, 1)
	dm.Set(0, 0, -1)
	degenerate := statespace.MustNew(mat.NewMatrix(0, 0), mat.NewMatrix(0, 1), mat.NewMatrix(1, 0), dm)
	if _, err := New(degenerate, 50, []pdn.Termination{pdn.Open{}}, nil, ok); err == nil {
		t.Fatal("D = −1 must fail")
	}
}

func TestWaveforms(t *testing.T) {
	s := Step{T0: 1, Rise: 2, Amplitude: 4}
	if s.At(0.5) != 0 || s.At(2) != 2 || s.At(10) != 4 {
		t.Fatal("step waveform wrong")
	}
	p := Pulse{T0: 0, Rise: 1, Width: 2, Amplitude: 2, Period: 10}
	if p.At(0.5) != 1 || p.At(2) != 2 || p.At(3.5) != 1 || p.At(7) != 0 {
		t.Fatalf("pulse waveform wrong: %v %v %v %v", p.At(0.5), p.At(2), p.At(3.5), p.At(7))
	}
	if p.At(10.5) != 1 {
		t.Fatal("pulse should repeat with the period")
	}
	sn := Sine{Freq: 1, Amplitude: 2, T0: 1}
	if sn.At(0.5) != 0 {
		t.Fatal("sine should be off before T0")
	}
	if math.Abs(sn.At(1.25)-2) > 1e-12 {
		t.Fatalf("sine quarter period = %v want 2", sn.At(1.25))
	}
	sc := Scale(Step{Amplitude: 3}, 0.5)
	if sc.At(1) != 1.5 {
		t.Fatal("scaled waveform wrong")
	}
	c := Custom{F: func(t float64) float64 { return 2 * t }}
	if c.At(3) != 6 {
		t.Fatal("custom waveform wrong")
	}
	for _, w := range []Waveform{s, p, sn, sc, c} {
		if w.Describe() == "" {
			t.Fatal("empty description")
		}
	}
}

func TestFitToneRecoversKnownTone(t *testing.T) {
	res := &Result{}
	f := 3.0
	for k := 0; k <= 400; k++ {
		tm := float64(k) * 0.001
		res.T = append(res.T, tm)
		res.V = append(res.V, []float64{1.5*math.Sin(2*math.Pi*f*tm+0.7) + 0.2})
		res.I = append(res.I, []float64{0})
		res.Energy = append(res.Energy, 0)
	}
	amp, phase := res.FitTone(0, f, 0.05)
	if math.Abs(amp-1.5) > 1e-9 {
		t.Fatalf("amp = %v want 1.5", amp)
	}
	if math.Abs(phase-0.7) > 1e-9 {
		t.Fatalf("phase = %v want 0.7", phase)
	}
}

func TestSimulatorLinearity(t *testing.T) {
	// The co-simulation is LTI: scaling the excitation scales every
	// waveform exactly (same factorizations, zero initial state).
	model := onePolePairModel(t, 1e7, 6e7, -0.2e7, 0.1)
	run := func(amp float64) *Result {
		sim, err := New(model.Realization(), 50,
			[]pdn.Termination{pdn.Decap(1e-9, 0.01, 1e-10)},
			[]Source{{Port: 0, Wave: Pulse{Rise: 2e-9, Width: 3e-8, Amplitude: amp}}},
			Options{Dt: 1e-9, Steps: 300})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	base := run(1)
	for _, gain := range []float64{2, 0.5, -3} {
		scaled := run(gain)
		for k := range base.T {
			want := gain * base.V[k][0]
			if math.Abs(scaled.V[k][0]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("gain %v: V[%d] = %v want %v", gain, k, scaled.V[k][0], want)
			}
		}
	}
}

func TestSimulatorSuperposition(t *testing.T) {
	// Two sources at different ports: the joint response is the sum of the
	// individual responses.
	poles := []complex128{complex(-2e7, 1e8), complex(-2e7, -1e8)}
	mk := func(v complex128) *mat.CMatrix {
		m := mat.NewCMatrix(2, 2)
		m.Set(0, 0, v)
		m.Set(0, 1, v/3)
		m.Set(1, 0, v/3)
		m.Set(1, 1, v/2)
		return m
	}
	r := mk(complex(3e6, 1e6))
	rc := mk(complex(3e6, -1e6))
	d := mat.NewMatrix(2, 2)
	d.Set(0, 0, 0.1)
	d.Set(1, 1, 0.15)
	model, err := rational.New(poles, []*mat.CMatrix{r, rc}, d)
	if err != nil {
		t.Fatal(err)
	}
	terms := []pdn.Termination{pdn.Resistor{R: 10}, pdn.Decap(2e-9, 0.05, 0)}
	run := func(sources []Source) *Result {
		sim, err := New(model.Realization(), 50, terms, sources,
			Options{Dt: 5e-10, Steps: 400})
		if err != nil {
			t.Fatal(err)
		}
		return sim.Run()
	}
	s0 := Source{Port: 0, Wave: Step{Amplitude: 1, Rise: 1e-9}}
	s1 := Source{Port: 1, Wave: Sine{Freq: 2e7, Amplitude: 0.7}}
	rA := run([]Source{s0})
	rB := run([]Source{s1})
	rAB := run([]Source{s0, s1})
	for k := range rAB.T {
		for p := 0; p < 2; p++ {
			want := rA.V[k][p] + rB.V[k][p]
			if math.Abs(rAB.V[k][p]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("superposition violated at k=%d port %d: %v vs %v", k, p, rAB.V[k][p], want)
			}
		}
	}
}
