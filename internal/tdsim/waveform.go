package tdsim

import (
	"fmt"
	"math"
)

// Waveform is a scalar excitation waveform evaluated at absolute time t (s).
type Waveform interface {
	// At returns the waveform value at time t.
	At(t float64) float64
	// Describe returns a short human-readable summary.
	Describe() string
}

// Step is a current step of the given amplitude starting at T0 with a
// linear rise of duration Rise (0 = ideal step). It models the synchronous
// switching onset of the paper's active device blocks.
type Step struct {
	T0        float64 // onset time (s)
	Rise      float64 // linear rise time (s); 0 for an ideal step
	Amplitude float64
}

// At implements Waveform.
func (w Step) At(t float64) float64 {
	switch {
	case t < w.T0:
		return 0
	case w.Rise <= 0 || t >= w.T0+w.Rise:
		return w.Amplitude
	default:
		return w.Amplitude * (t - w.T0) / w.Rise
	}
}

// Describe implements Waveform.
func (w Step) Describe() string {
	return fmt.Sprintf("step %.3g A at %.3g s (rise %.3g s)", w.Amplitude, w.T0, w.Rise)
}

// Pulse is a trapezoidal pulse: rise, hold for Width, fall. With Period > 0
// the pulse repeats, modelling a periodic switching activity burst.
type Pulse struct {
	T0        float64 // onset of the first pulse (s)
	Rise      float64 // rise and fall time (s)
	Width     float64 // flat-top duration (s)
	Amplitude float64
	Period    float64 // repetition period (s); 0 for a single pulse
}

// At implements Waveform.
func (w Pulse) At(t float64) float64 {
	if t < w.T0 {
		return 0
	}
	tau := t - w.T0
	if w.Period > 0 {
		tau = math.Mod(tau, w.Period)
	}
	rise := w.Rise
	if rise <= 0 {
		rise = 0
	}
	switch {
	case tau < rise:
		if rise == 0 {
			return w.Amplitude
		}
		return w.Amplitude * tau / rise
	case tau < rise+w.Width:
		return w.Amplitude
	case tau < 2*rise+w.Width && rise > 0:
		return w.Amplitude * (1 - (tau-rise-w.Width)/rise)
	default:
		return 0
	}
}

// Describe implements Waveform.
func (w Pulse) Describe() string {
	return fmt.Sprintf("pulse %.3g A width %.3g s period %.3g s", w.Amplitude, w.Width, w.Period)
}

// Sine is a sinusoidal excitation switched on at T0.
type Sine struct {
	Freq      float64 // Hz
	Amplitude float64
	Phase     float64 // radians
	T0        float64 // switch-on time (s)
}

// At implements Waveform.
func (w Sine) At(t float64) float64 {
	if t < w.T0 {
		return 0
	}
	return w.Amplitude * math.Sin(2*math.Pi*w.Freq*(t-w.T0)+w.Phase)
}

// Describe implements Waveform.
func (w Sine) Describe() string {
	return fmt.Sprintf("sine %.3g A at %.3g Hz", w.Amplitude, w.Freq)
}

// Scale returns w with its value multiplied by gain — used to split one
// switching waveform over several die ports with per-port shares.
func Scale(w Waveform, gain float64) Waveform { return scaled{w: w, gain: gain} }

type scaled struct {
	w    Waveform
	gain float64
}

// At implements Waveform.
func (s scaled) At(t float64) float64 { return s.gain * s.w.At(t) }

// Describe implements Waveform.
func (s scaled) Describe() string {
	return fmt.Sprintf("%.3g × (%s)", s.gain, s.w.Describe())
}

// Custom wraps an arbitrary function of time as a Waveform.
type Custom struct {
	F    func(t float64) float64
	Name string
}

// At implements Waveform.
func (w Custom) At(t float64) float64 { return w.F(t) }

// Describe implements Waveform.
func (w Custom) Describe() string {
	if w.Name != "" {
		return w.Name
	}
	return "custom waveform"
}
