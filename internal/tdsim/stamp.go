package tdsim

import (
	"fmt"

	"repro/internal/pdn"
)

// shortConductance matches pdn.Short's large finite admittance so that the
// time- and frequency-domain analyses see the same termination.
const shortConductance = 1e8

// stamp is the discrete-time companion model of one port termination for a
// fixed step size: at every step the load current into the termination is
//
//	i_{k+1} = Geq·v_{k+1} + hist_k,
//
// where Geq is constant and hist_k depends on the stamp state. After the
// port voltage v_{k+1} has been solved, advance(v, i) updates the state.
type stamp interface {
	// Geq returns the constant companion conductance.
	Geq() float64
	// Hist returns the history current term for the upcoming step.
	Hist() float64
	// Advance consumes the solved port voltage and load current of the
	// step just completed.
	Advance(v, i float64)
}

// staticStamp is a memoryless conductance (open, short, resistor).
type staticStamp struct{ g float64 }

func (s *staticStamp) Geq() float64         { return s.g }
func (s *staticStamp) Hist() float64        { return 0 }
func (s *staticStamp) Advance(_, _ float64) {}

// rlcStamp is the trapezoidal (or backward-Euler) companion of a series
// R-L-C branch. State: branch current i and capacitor voltage vC.
//
// Trapezoidal discretization of v = R·i + L·di/dt + vC, C·dvC/dt = i gives
//
//	i' = (½·v' + ½·v + β·i − vC)/α,
//	α = L/h + R/2 + h/(4C),  β = L/h − R/2 − h/(4C),
//	vC' = vC + h/(2C)·(i' + i),
//
// where primes denote step k+1 and the C terms drop when C = 0 (vC ≡ 0).
// Backward Euler replaces the averages by fully implicit terms:
//
//	i' = (v' + (L/h)·i − vC)/αBE,  αBE = L/h + R + h/C,
//	vC' = vC + (h/C)·i'.
type rlcStamp struct {
	r, l, c float64
	h       float64
	be      bool // backward Euler instead of trapezoidal

	alpha, beta float64
	geq         float64

	i, vC float64 // state
	v     float64 // previous port voltage (trapezoidal history)
}

func newRLCStamp(r, l, c, h float64, be bool) *rlcStamp {
	s := &rlcStamp{r: r, l: l, c: c, h: h, be: be}
	if be {
		s.alpha = r
		if l > 0 {
			s.alpha += l / h
		}
		if c > 0 {
			s.alpha += h / c
		}
		s.geq = 1 / s.alpha
	} else {
		s.alpha = r / 2
		s.beta = -r / 2
		if l > 0 {
			s.alpha += l / h
			s.beta += l / h
		}
		if c > 0 {
			s.alpha += h / (4 * c)
			s.beta -= h / (4 * c)
		}
		s.geq = 1 / (2 * s.alpha)
	}
	return s
}

func (s *rlcStamp) Geq() float64 { return s.geq }

func (s *rlcStamp) Hist() float64 {
	if s.be {
		h := -s.vC
		if s.l > 0 {
			h += s.l / s.h * s.i
		}
		return h / s.alpha
	}
	return (0.5*s.v + s.beta*s.i - s.vC) / s.alpha
}

func (s *rlcStamp) Advance(v, i float64) {
	if s.c > 0 {
		if s.be {
			s.vC += s.h / s.c * i
		} else {
			s.vC += s.h / (2 * s.c) * (i + s.i)
		}
	}
	s.i = i
	s.v = v
}

// newStamp builds the companion model of a pdn.Termination for step size h.
// Degenerate series branches (R=L=C=0) behave as shorts.
func newStamp(t pdn.Termination, h float64, be bool) (stamp, error) {
	switch v := t.(type) {
	case pdn.Open:
		return &staticStamp{g: 0}, nil
	case pdn.Short:
		return &staticStamp{g: shortConductance}, nil
	case pdn.Resistor:
		if v.R <= 0 {
			return nil, fmt.Errorf("tdsim: resistor termination needs R > 0, got %g", v.R)
		}
		return &staticStamp{g: 1 / v.R}, nil
	case pdn.SeriesRLC:
		if v.L <= 0 && v.C <= 0 {
			if v.R <= 0 {
				return &staticStamp{g: shortConductance}, nil
			}
			return &staticStamp{g: 1 / v.R}, nil
		}
		if v.R < 0 || v.L < 0 || v.C < 0 {
			return nil, fmt.Errorf("tdsim: series RLC termination needs nonnegative elements, got %s", v.Describe())
		}
		return newRLCStamp(v.R, v.L, v.C, h, be), nil
	default:
		return nil, fmt.Errorf("tdsim: no time-domain companion model for termination %q", t.Describe())
	}
}
