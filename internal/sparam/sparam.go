// Package sparam converts multiport network parameters between the
// scattering, impedance and admittance representations, and renormalizes
// scattering matrices to a different reference resistance.
//
// The paper's conclusions (§V) note that the sensitivity-based weighting
// flow applies unchanged to native data in admittance or impedance form and
// to scattering data normalized to any port resistance; these conversions
// are what make that claim exercisable (see the representation-independence
// experiment in internal/experiments).
//
// All conversions assume a uniform real reference resistance R0 at every
// port, the convention of the paper (R0 = 50 Ω in §IV). With that
// convention the Cayley-transform factors commute, so
//
//	Z = R0·(I+S)(I−S)⁻¹ = R0·(I−S)⁻¹(I+S)
//	Y = R0⁻¹·(I−S)(I+S)⁻¹
//	S = (Z−R0·I)(Z+R0·I)⁻¹ = (I−R0·Y)(I+R0·Y)⁻¹
//
// and renormalization from R0 to R1 is the Möbius map
//
//	S' = (S − ρI)(I − ρS)⁻¹,  ρ = (R1−R0)/(R1+R0).
package sparam

import (
	"errors"
	"fmt"

	"repro/internal/mat"
)

// ErrSingular reports a conversion whose Cayley factor is numerically
// singular (e.g. S has an eigenvalue at +1, meaning an ideally open port,
// when converting to Y; or at −1, an ideal short, when converting to Z).
var ErrSingular = errors.New("sparam: conversion matrix is singular")

// ErrR0 reports a non-positive reference resistance.
var ErrR0 = errors.New("sparam: reference resistance must be positive")

// addDiag returns m + d·I without modifying m.
func addDiag(m *mat.CMatrix, d complex128) *mat.CMatrix {
	out := m.Clone()
	for i := 0; i < out.Rows; i++ {
		out.Set(i, i, out.At(i, i)+d)
	}
	return out
}

// negAddDiag returns d·I − m without modifying m.
func negAddDiag(m *mat.CMatrix, d complex128) *mat.CMatrix {
	out := m.Clone().Scale(-1)
	for i := 0; i < out.Rows; i++ {
		out.Set(i, i, out.At(i, i)+d)
	}
	return out
}

// solveRight returns den⁻¹·num, reporting ErrSingular when den cannot be
// factored.
func solveRight(den, num *mat.CMatrix) (*mat.CMatrix, error) {
	lu, err := mat.CLUFactor(den)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSingular, err)
	}
	return lu.Solve(num), nil
}

// SToZ converts one scattering sample to the impedance representation,
// Z = R0·(I−S)⁻¹(I+S).
func SToZ(s *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	if r0 <= 0 {
		return nil, ErrR0
	}
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("sparam: S must be square, got %d×%d", s.Rows, s.Cols)
	}
	z, err := solveRight(negAddDiag(s, 1), addDiag(s, 1))
	if err != nil {
		return nil, fmt.Errorf("I−S: %w", err)
	}
	return z.Scale(complex(r0, 0)), nil
}

// SToY converts one scattering sample to the admittance representation,
// Y = R0⁻¹·(I+S)⁻¹(I−S).
func SToY(s *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	if r0 <= 0 {
		return nil, ErrR0
	}
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("sparam: S must be square, got %d×%d", s.Rows, s.Cols)
	}
	y, err := solveRight(addDiag(s, 1), negAddDiag(s, 1))
	if err != nil {
		return nil, fmt.Errorf("I+S: %w", err)
	}
	return y.Scale(complex(1/r0, 0)), nil
}

// ZToS converts one impedance sample to scattering,
// S = (Z+R0·I)⁻¹(Z−R0·I).
func ZToS(z *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	if r0 <= 0 {
		return nil, ErrR0
	}
	if z.Rows != z.Cols {
		return nil, fmt.Errorf("sparam: Z must be square, got %d×%d", z.Rows, z.Cols)
	}
	s, err := solveRight(addDiag(z, complex(r0, 0)), addDiag(z, complex(-r0, 0)))
	if err != nil {
		return nil, fmt.Errorf("Z+R0·I: %w", err)
	}
	return s, nil
}

// YToS converts one admittance sample to scattering,
// S = (I+R0·Y)⁻¹(I−R0·Y).
func YToS(y *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	if r0 <= 0 {
		return nil, ErrR0
	}
	if y.Rows != y.Cols {
		return nil, fmt.Errorf("sparam: Y must be square, got %d×%d", y.Rows, y.Cols)
	}
	ry := y.Clone().Scale(complex(r0, 0))
	s, err := solveRight(addDiag(ry, 1), negAddDiag(ry, 1))
	if err != nil {
		return nil, fmt.Errorf("I+R0·Y: %w", err)
	}
	return s, nil
}

// Renormalize maps a scattering sample from reference resistance r0 to r1
// via the Möbius transform S' = (I−ρS)⁻¹(S−ρI) with ρ = (r1−r0)/(r1+r0).
// Renormalization preserves passivity: σmax(S') ≤ 1 whenever σmax(S) ≤ 1.
func Renormalize(s *mat.CMatrix, r0, r1 float64) (*mat.CMatrix, error) {
	if r0 <= 0 || r1 <= 0 {
		return nil, ErrR0
	}
	if s.Rows != s.Cols {
		return nil, fmt.Errorf("sparam: S must be square, got %d×%d", s.Rows, s.Cols)
	}
	rho := (r1 - r0) / (r1 + r0)
	if rho == 0 {
		return s.Clone(), nil
	}
	num := addDiag(s, complex(-rho, 0))
	den := negAddDiag(s.Clone().Scale(complex(rho, 0)), 1)
	out, err := solveRight(den, num)
	if err != nil {
		return nil, fmt.Errorf("I−ρS: %w", err)
	}
	return out, nil
}

// SweepSToZ applies SToZ to every sample.
func SweepSToZ(samples []*mat.CMatrix, r0 float64) ([]*mat.CMatrix, error) {
	return sweep(samples, func(s *mat.CMatrix) (*mat.CMatrix, error) { return SToZ(s, r0) })
}

// SweepSToY applies SToY to every sample.
func SweepSToY(samples []*mat.CMatrix, r0 float64) ([]*mat.CMatrix, error) {
	return sweep(samples, func(s *mat.CMatrix) (*mat.CMatrix, error) { return SToY(s, r0) })
}

// SweepZToS applies ZToS to every sample.
func SweepZToS(samples []*mat.CMatrix, r0 float64) ([]*mat.CMatrix, error) {
	return sweep(samples, func(z *mat.CMatrix) (*mat.CMatrix, error) { return ZToS(z, r0) })
}

// SweepYToS applies YToS to every sample.
func SweepYToS(samples []*mat.CMatrix, r0 float64) ([]*mat.CMatrix, error) {
	return sweep(samples, func(y *mat.CMatrix) (*mat.CMatrix, error) { return YToS(y, r0) })
}

// SweepRenormalize applies Renormalize to every sample.
func SweepRenormalize(samples []*mat.CMatrix, r0, r1 float64) ([]*mat.CMatrix, error) {
	return sweep(samples, func(s *mat.CMatrix) (*mat.CMatrix, error) { return Renormalize(s, r0, r1) })
}

func sweep(samples []*mat.CMatrix, f func(*mat.CMatrix) (*mat.CMatrix, error)) ([]*mat.CMatrix, error) {
	out := make([]*mat.CMatrix, len(samples))
	for k, s := range samples {
		m, err := f(s)
		if err != nil {
			return nil, fmt.Errorf("sample %d: %w", k, err)
		}
		out[k] = m
	}
	return out, nil
}
