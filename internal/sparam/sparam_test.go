package sparam

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

// randContractive returns a random complex matrix scaled so σmax ≤ smax.
func randContractive(rng *rand.Rand, n int, smax float64) *mat.CMatrix {
	s := mat.NewCMatrix(n, n)
	for i := range s.Data {
		s.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	sig := mat.MaxSingularValue(s)
	if sig > 0 {
		s = s.Scale(complex(smax/sig, 0))
	}
	return s
}

func TestSToZKnownOnePort(t *testing.T) {
	// S=0 is a matched load: Z=R0. S=1/3 is Z=2·R0. S=-1/3 is Z=R0/2.
	cases := []struct{ s, z complex128 }{
		{0, 50},
		{complex(1.0/3, 0), 100},
		{complex(-1.0/3, 0), 25},
	}
	for _, c := range cases {
		s := mat.NewCMatrix(1, 1)
		s.Set(0, 0, c.s)
		z, err := SToZ(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		if cmplx.Abs(z.At(0, 0)-c.z) > 1e-12*cmplx.Abs(c.z) {
			t.Fatalf("S=%v: Z=%v want %v", c.s, z.At(0, 0), c.z)
		}
	}
}

func TestSToYIsInverseOfSToZ(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 1; n <= 8; n += 3 {
		s := randContractive(rng, n, 0.8)
		z, err := SToZ(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		y, err := SToY(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		// Z·Y = I.
		if !z.Mul(y).Equalish(mat.CIdentity(n), 1e-9) {
			t.Fatalf("n=%d: Z·Y != I", n)
		}
	}
}

func TestSZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 1; n <= 10; n += 3 {
		s := randContractive(rng, n, 0.9)
		z, err := SToZ(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ZToS(z, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equalish(s, 1e-9) {
			t.Fatalf("n=%d: S→Z→S round trip failed", n)
		}
	}
}

func TestSYRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 1; n <= 10; n += 3 {
		s := randContractive(rng, n, 0.9)
		y, err := SToY(s, 75)
		if err != nil {
			t.Fatal(err)
		}
		back, err := YToS(y, 75)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equalish(s, 1e-9) {
			t.Fatalf("n=%d: S→Y→S round trip failed", n)
		}
	}
}

func TestRenormalizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := randContractive(rng, 5, 0.9)
	out, err := Renormalize(s, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equalish(s, 1e-14) {
		t.Fatal("Renormalize(50→50) must be the identity")
	}
}

func TestRenormalizeMatchesImpedancePath(t *testing.T) {
	// Renormalizing directly must agree with going through Z:
	// S' = ZToS(SToZ(S, r0), r1).
	rng := rand.New(rand.NewSource(5))
	for _, r1 := range []float64{1, 10, 50, 85, 200} {
		s := randContractive(rng, 6, 0.85)
		direct, err := Renormalize(s, 50, r1)
		if err != nil {
			t.Fatal(err)
		}
		z, err := SToZ(s, 50)
		if err != nil {
			t.Fatal(err)
		}
		viaZ, err := ZToS(z, r1)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equalish(viaZ, 1e-9) {
			t.Fatalf("r1=%g: Möbius renormalization disagrees with impedance path", r1)
		}
	}
}

func TestRenormalizeGroupProperty(t *testing.T) {
	// R0→R1 followed by R1→R2 equals R0→R2.
	rng := rand.New(rand.NewSource(6))
	s := randContractive(rng, 4, 0.9)
	s1, err := Renormalize(s, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Renormalize(s1, 10, 120)
	if err != nil {
		t.Fatal(err)
	}
	sDirect, err := Renormalize(s, 50, 120)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Equalish(sDirect, 1e-9) {
		t.Fatal("renormalization does not compose")
	}
}

func TestRenormalizePreservesPassivity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		s := randContractive(rng, n, 0.999)
		r1 := math.Exp(rng.Float64()*6-3) * 50 // 2.5 Ω … 1 kΩ
		out, err := Renormalize(s, 50, r1)
		if err != nil {
			t.Fatal(err)
		}
		if sig := mat.MaxSingularValue(out); sig > 1+1e-9 {
			t.Fatalf("trial %d: renormalization to %.3g Ω broke passivity: σmax=%v", trial, r1, sig)
		}
	}
}

func TestQuickRoundTripsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64, r0Scale float64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(5)
		r0 := 5 + 100*math.Abs(math.Mod(r0Scale, 1))
		s := randContractive(rng, n, 0.9)
		z, err := SToZ(s, r0)
		if err != nil {
			return false
		}
		back, err := ZToS(z, r0)
		if err != nil {
			return false
		}
		y, err := SToY(s, r0)
		if err != nil {
			return false
		}
		back2, err := YToS(y, r0)
		if err != nil {
			return false
		}
		return back.Equalish(s, 1e-8) && back2.Equalish(s, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSingularConversionsReportErrors(t *testing.T) {
	// S = I is an ideally open port: I−S singular, Z undefined.
	s := mat.CIdentity(3)
	if _, err := SToZ(s, 50); err == nil {
		t.Fatal("SToZ(I) should fail")
	}
	// S = −I is an ideal short: I+S singular, Y undefined.
	sm := mat.CIdentity(3).Scale(-1)
	if _, err := SToY(sm, 50); err == nil {
		t.Fatal("SToY(−I) should fail")
	}
}

func TestBadArguments(t *testing.T) {
	s := mat.NewCMatrix(2, 3)
	if _, err := SToZ(s, 50); err == nil {
		t.Fatal("non-square S must be rejected")
	}
	sq := mat.NewCMatrix(2, 2)
	if _, err := SToZ(sq, 0); err == nil {
		t.Fatal("R0=0 must be rejected")
	}
	if _, err := Renormalize(sq, 50, -1); err == nil {
		t.Fatal("negative target R0 must be rejected")
	}
}

func TestKnownSeriesImpedance(t *testing.T) {
	// A 1-port with Z = R + jωL at some frequency, converted to S and back.
	z := mat.NewCMatrix(1, 1)
	z.Set(0, 0, complex(5, 30))
	s, err := ZToS(z, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := (complex(5, 30) - 50) / (complex(5, 30) + 50)
	if cmplx.Abs(s.At(0, 0)-want) > 1e-12 {
		t.Fatalf("S=%v want %v", s.At(0, 0), want)
	}
}

func TestSweepVariantsMatchScalarCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var samples []*mat.CMatrix
	for k := 0; k < 5; k++ {
		samples = append(samples, randContractive(rng, 3, 0.8))
	}
	zs, err := SweepSToZ(samples, 50)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := SweepSToY(samples, 50)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := SweepRenormalize(samples, 50, 20)
	if err != nil {
		t.Fatal(err)
	}
	backZ, err := SweepZToS(zs, 50)
	if err != nil {
		t.Fatal(err)
	}
	backY, err := SweepYToS(ys, 50)
	if err != nil {
		t.Fatal(err)
	}
	for k := range samples {
		z1, _ := SToZ(samples[k], 50)
		if !zs[k].Equalish(z1, 1e-12) {
			t.Fatalf("sweep Z mismatch at %d", k)
		}
		if !backZ[k].Equalish(samples[k], 1e-9) || !backY[k].Equalish(samples[k], 1e-9) {
			t.Fatalf("sweep round trip mismatch at %d", k)
		}
		r1, _ := Renormalize(samples[k], 50, 20)
		if !rs[k].Equalish(r1, 1e-12) {
			t.Fatalf("sweep renormalize mismatch at %d", k)
		}
	}
}
