package circuit

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/mat"
)

func TestResistorDividerDriven(t *testing.T) {
	// 1A into a 2Ω–3Ω series chain to ground: node voltages 5V and 3V.
	c := New()
	n1 := c.Node()
	n2 := c.Node()
	c.AddResistor(n1, n2, 2)
	c.AddResistor(n2, Ground, 3)
	v, err := c.Solve(1e3, map[int]complex128{n1: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(v[n1]-5) > 1e-9 || cmplx.Abs(v[n2]-3) > 1e-9 {
		t.Fatalf("v = %v want [5 3]", v)
	}
}

func TestPortZSingleRLC(t *testing.T) {
	// Series R-L-C to ground: Z(f) = R + jωL + 1/(jωC).
	r, l, cap := 0.5, 2e-9, 1e-7
	c := New()
	n := c.Node()
	c.AddSeriesRLC(n, Ground, r, l, cap)
	c.DefinePort(n)
	for _, f := range []float64{1e5, 1e7, 1e9} {
		z, err := c.PortZ(f)
		if err != nil {
			t.Fatal(err)
		}
		omega := 2 * math.Pi * f
		want := complex(r, omega*l) + 1/complex(0, omega*cap)
		if cmplx.Abs(z.At(0, 0)-want) > 1e-6*cmplx.Abs(want) {
			t.Fatalf("f=%g: Z=%v want %v", f, z.At(0, 0), want)
		}
	}
}

func TestInductorIsShortAtDC(t *testing.T) {
	c := New()
	n1 := c.Node()
	n2 := c.Node()
	c.AddInductor(n1, n2, 1e-9)
	c.AddResistor(n2, Ground, 5)
	c.DefinePort(n1)
	z, err := c.PortZ(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(real(z.At(0, 0))-5) > 1e-6 || math.Abs(imag(z.At(0, 0))) > 1e-9 {
		t.Fatalf("DC impedance through inductor: %v want 5", z.At(0, 0))
	}
}

func TestFloatingCapacitorDCRegularized(t *testing.T) {
	// A node reachable only through a capacitor must not blow up the DC
	// solve thanks to GMin.
	c := New()
	n := c.Node()
	c.AddCapacitor(n, Ground, 1e-9)
	c.DefinePort(n)
	z, err := c.PortZ(0)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(z.At(0, 0)) < 1e9 {
		t.Fatalf("floating cap at DC should look like GMin: %v", z.At(0, 0))
	}
}

func TestReciprocityAndSymmetry(t *testing.T) {
	// Any linear RLC network is reciprocal: Z = Zᵀ.
	c := buildLadder()
	for _, f := range []float64{1e4, 1e6, 1e8} {
		z, err := c.PortZ(f)
		if err != nil {
			t.Fatal(err)
		}
		if !z.Equalish(z.T(), 1e-9*(1+z.MaxAbs())) {
			t.Fatalf("Z not symmetric at f=%g", f)
		}
	}
}

// buildLadder constructs a small 3-port RLC ladder used by several tests.
func buildLadder() *Circuit {
	c := New()
	nodes := make([]int, 5)
	for i := range nodes {
		nodes[i] = c.Node()
	}
	for i := 0; i+1 < len(nodes); i++ {
		c.AddSkinResistor(nodes[i], nodes[i+1], 0.01, 1e-6)
		c.AddInductor(nodes[i], nodes[i+1], 1e-9)
	}
	for _, n := range nodes {
		c.AddLossyCapacitor(n, Ground, 50e-12, 0.02)
	}
	c.AddResistor(nodes[0], Ground, 100) // damping so |S|<1 strictly
	c.DefinePort(nodes[0])
	c.DefinePort(nodes[2])
	c.DefinePort(nodes[4])
	return c
}

func TestPassivityOfScatteringData(t *testing.T) {
	// A passive RLC network must satisfy σ_max(S) ≤ 1 at every frequency.
	c := buildLadder()
	freqs := []float64{0, 1e3, 1e5, 1e7, 1e8, 5e8, 1e9, 5e9}
	ss, err := c.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ss {
		if sv := mat.MaxSingularValue(s); sv > 1+1e-9 {
			t.Fatalf("σmax(S)=%v > 1 at f=%g", sv, freqs[i])
		}
	}
}

func TestZToSRoundTrip(t *testing.T) {
	c := buildLadder()
	z, err := c.PortZ(3e7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ZToS(z, 50)
	if err != nil {
		t.Fatal(err)
	}
	z2, err := SToZ(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !z.Equalish(z2, 1e-8*(1+z.MaxAbs())) {
		t.Fatalf("Z→S→Z round trip failed")
	}
}

func TestZToSMatchesDefinition(t *testing.T) {
	// For a single 50Ω resistor port: S must be 0; for 100Ω: S = 1/3.
	c := New()
	n := c.Node()
	c.AddResistor(n, Ground, 50)
	c.DefinePort(n)
	s, err := c.PortS(1e6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s.At(0, 0)) > 1e-9 {
		t.Fatalf("matched load S=%v want 0", s.At(0, 0))
	}
	c2 := New()
	n2 := c2.Node()
	c2.AddResistor(n2, Ground, 100)
	c2.DefinePort(n2)
	s2, err := c2.PortS(1e6, 50)
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(s2.At(0, 0)-complex(1.0/3, 0)) > 1e-9 {
		t.Fatalf("100Ω load S=%v want 1/3", s2.At(0, 0))
	}
}

func TestSkinResistor(t *testing.T) {
	c := New()
	n := c.Node()
	c.AddSkinResistor(n, Ground, 1, 1e-3)
	c.DefinePort(n)
	z, err := c.PortZ(1e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 1e-3*math.Sqrt(1e6)
	if math.Abs(real(z.At(0, 0))-want) > 1e-9*want {
		t.Fatalf("skin R = %v want %v", real(z.At(0, 0)), want)
	}
}

func TestSweepSMatchesPointwise(t *testing.T) {
	c := buildLadder()
	freqs := []float64{1e4, 1e6, 1e8}
	sw, err := c.SweepS(freqs, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range freqs {
		s, err := c.PortS(f, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !sw[i].Equalish(s, 1e-12) {
			t.Fatalf("sweep mismatch at %g", f)
		}
	}
}

func TestDrivenMatchesPortZ(t *testing.T) {
	// Injecting 1A at a port and reading the port voltage equals Z column.
	c := buildLadder()
	f := 2.5e7
	z, err := c.PortZ(f)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.Solve(f, map[int]complex128{c.PortNode(1): 1})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.NumPorts(); p++ {
		if cmplx.Abs(v[c.PortNode(p)]-z.At(p, 1)) > 1e-9*(1+cmplx.Abs(z.At(p, 1))) {
			t.Fatalf("driven voltage %v vs Z %v", v[c.PortNode(p)], z.At(p, 1))
		}
	}
}

func BenchmarkPortS3PortLadder(b *testing.B) {
	c := buildLadder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PortS(1e8, 50); err != nil {
			b.Fatal(err)
		}
	}
}
