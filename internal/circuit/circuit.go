// Package circuit implements a linear AC circuit simulator based on
// modified nodal analysis (MNA). It plays the role of the commercial field
// solver used in the paper: multiport PDN structures are described as RLC
// networks, swept in frequency, and exported as scattering parameters.
//
// Supported elements: resistors (optionally with a √f skin-effect term),
// conductances, capacitors (optionally with dielectric loss tangent),
// inductors (with optional series resistance), and current sources for
// direct driven analyses. Ports are defined between a node and ground.
package circuit

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// Ground is the reference node index.
const Ground = 0

// Circuit is a linear network under construction. Node 0 is ground; other
// nodes are allocated with Node(). The zero value is not usable — call New.
type Circuit struct {
	numNodes  int // including ground
	resistors []resistor
	caps      []capacitor
	inductors []inductor
	ports     []int // port k is between node ports[k] and ground
	// GMin is a tiny leak conductance from every node to ground that keeps
	// the MNA matrix nonsingular at DC when nodes float behind capacitors.
	GMin float64
}

type resistor struct {
	a, b int
	r    float64 // DC resistance, Ω
	skin float64 // additional Ω·s^½ term: R(f) = r + skin·√f
}

type capacitor struct {
	a, b int
	c    float64 // F
	tanD float64 // dielectric loss tangent: Y = jωC + ωC·tanδ
}

type inductor struct {
	a, b int
	l    float64 // H
	r    float64 // series resistance folded into the branch equation
	skin float64 // additional Ω·s^½ series term, as in AddSkinResistor
}

// New returns an empty circuit with only the ground node.
func New() *Circuit {
	return &Circuit{numNodes: 1, GMin: 1e-12}
}

// Node allocates a new circuit node and returns its index.
func (c *Circuit) Node() int {
	c.numNodes++
	return c.numNodes - 1
}

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return c.numNodes }

func (c *Circuit) checkNode(n int) {
	if n < 0 || n >= c.numNodes {
		panic(fmt.Sprintf("circuit: node %d out of range (have %d)", n, c.numNodes))
	}
}

// AddResistor connects a resistance R (Ω) between nodes a and b.
func (c *Circuit) AddResistor(a, b int, r float64) {
	c.AddSkinResistor(a, b, r, 0)
}

// AddSkinResistor connects a frequency-dependent resistance
// R(f) = rdc + skin·√f between a and b, modeling conductor skin effect.
func (c *Circuit) AddSkinResistor(a, b int, rdc, skin float64) {
	c.checkNode(a)
	c.checkNode(b)
	if rdc <= 0 && skin <= 0 {
		panic("circuit: resistor must have positive resistance")
	}
	c.resistors = append(c.resistors, resistor{a, b, rdc, skin})
}

// AddCapacitor connects capacitance C (F) between a and b.
func (c *Circuit) AddCapacitor(a, b int, farads float64) {
	c.AddLossyCapacitor(a, b, farads, 0)
}

// AddLossyCapacitor connects C with dielectric loss tangent tanD.
func (c *Circuit) AddLossyCapacitor(a, b int, farads, tanD float64) {
	c.checkNode(a)
	c.checkNode(b)
	if farads <= 0 {
		panic("circuit: capacitance must be positive")
	}
	c.caps = append(c.caps, capacitor{a, b, farads, tanD})
}

// AddInductor connects inductance L (H) between a and b.
func (c *Circuit) AddInductor(a, b int, henries float64) {
	c.AddLossyInductor(a, b, henries, 0)
}

// AddLossyInductor connects L with a series resistance r inside the branch.
func (c *Circuit) AddLossyInductor(a, b int, henries, r float64) {
	c.AddSkinInductor(a, b, henries, r, 0)
}

// AddSkinInductor connects L with a frequency-dependent series resistance
// r(f) = r + skin·√f folded into the branch equation — the unit-cell model
// for power planes (conductor loss grows with skin depth).
func (c *Circuit) AddSkinInductor(a, b int, henries, r, skin float64) {
	c.checkNode(a)
	c.checkNode(b)
	if henries <= 0 {
		panic("circuit: inductance must be positive")
	}
	c.inductors = append(c.inductors, inductor{a, b, henries, r, skin})
}

// DefinePort declares a port between node n and ground. Ports are numbered
// in declaration order.
func (c *Circuit) DefinePort(n int) int {
	c.checkNode(n)
	if n == Ground {
		panic("circuit: port node cannot be ground")
	}
	c.ports = append(c.ports, n)
	return len(c.ports) - 1
}

// NumPorts returns the declared port count.
func (c *Circuit) NumPorts() int { return len(c.ports) }

// PortNode returns the node of port k.
func (c *Circuit) PortNode(k int) int { return c.ports[k] }

// ErrNoPorts is returned by port-parameter extraction on port-less circuits.
var ErrNoPorts = errors.New("circuit: no ports defined")

// stamp assembles the complex MNA matrix at frequency f (Hz). Unknowns:
// node voltages 1..numNodes-1 followed by inductor branch currents.
func (c *Circuit) stamp(f float64) *mat.CMatrix {
	nv := c.numNodes - 1
	nl := len(c.inductors)
	dim := nv + nl
	m := mat.NewCMatrix(dim, dim)
	omega := 2 * math.Pi * f

	addY := func(a, b int, y complex128) {
		if a != Ground {
			m.Set(a-1, a-1, m.At(a-1, a-1)+y)
		}
		if b != Ground {
			m.Set(b-1, b-1, m.At(b-1, b-1)+y)
		}
		if a != Ground && b != Ground {
			m.Set(a-1, b-1, m.At(a-1, b-1)-y)
			m.Set(b-1, a-1, m.At(b-1, a-1)-y)
		}
	}
	for _, r := range c.resistors {
		res := r.r + r.skin*math.Sqrt(f)
		addY(r.a, r.b, complex(1/res, 0))
	}
	for _, cp := range c.caps {
		y := complex(omega*cp.c*cp.tanD, omega*cp.c)
		addY(cp.a, cp.b, y)
	}
	for li, l := range c.inductors {
		// Branch equation row nv+li: V_a − V_b − (r + jωL)·I = 0.
		// KCL: current I leaves node a, enters node b.
		row := nv + li
		if l.a != Ground {
			m.Set(l.a-1, row, m.At(l.a-1, row)+1)
			m.Set(row, l.a-1, m.At(row, l.a-1)+1)
		}
		if l.b != Ground {
			m.Set(l.b-1, row, m.At(l.b-1, row)-1)
			m.Set(row, l.b-1, m.At(row, l.b-1)-1)
		}
		m.Set(row, row, complex(-(l.r+l.skin*math.Sqrt(f)), -omega*l.l))
	}
	// GMin leak on every node keeps DC solvable with floating capacitors.
	if c.GMin > 0 {
		for n := 0; n < nv; n++ {
			m.Set(n, n, m.At(n, n)+complex(c.GMin, 0))
		}
	}
	return m
}

// PortZ returns the open-circuit port impedance matrix Z(f) (Ω): Z[p][q] is
// the voltage at port p per unit current injected into port q with all
// other ports open.
func (c *Circuit) PortZ(f float64) (*mat.CMatrix, error) {
	p := len(c.ports)
	if p == 0 {
		return nil, ErrNoPorts
	}
	m := c.stamp(f)
	lu, err := mat.CLUFactor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: singular MNA matrix at f=%g Hz: %w", f, err)
	}
	nv := c.numNodes - 1
	dim := m.Rows
	z := mat.NewCMatrix(p, p)
	rhs := make([]complex128, dim)
	for q := 0; q < p; q++ {
		for i := range rhs {
			rhs[i] = 0
		}
		rhs[c.ports[q]-1] = 1 // 1 A into the port node
		sol := lu.SolveVec(rhs)
		for pi := 0; pi < p; pi++ {
			z.Set(pi, q, sol[c.ports[pi]-1])
		}
	}
	_ = nv
	return z, nil
}

// PortS returns the scattering matrix at frequency f normalized to the port
// resistance r0: S = (Z − r0·I)(Z + r0·I)⁻¹.
func (c *Circuit) PortS(f, r0 float64) (*mat.CMatrix, error) {
	z, err := c.PortZ(f)
	if err != nil {
		return nil, err
	}
	return ZToS(z, r0)
}

// ZToS converts an impedance matrix to scattering with uniform reference
// r0: S = (Z − r0·I)(Z + r0·I)⁻¹. The product A·B⁻¹ is evaluated via the
// transposed solve BᵀX = Aᵀ, S = Xᵀ.
func ZToS(z *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	p := z.Rows
	num := z.Clone()
	den := z.Clone()
	for i := 0; i < p; i++ {
		num.Set(i, i, num.At(i, i)-complex(r0, 0))
		den.Set(i, i, den.At(i, i)+complex(r0, 0))
	}
	lu, err := mat.CLUFactor(den.T())
	if err != nil {
		return nil, fmt.Errorf("circuit: Z+R0 singular: %w", err)
	}
	x := lu.Solve(num.T())
	return x.T(), nil
}

// SToZ converts a scattering matrix back to impedance:
// Z = r0·(I+S)(I−S)⁻¹.
func SToZ(s *mat.CMatrix, r0 float64) (*mat.CMatrix, error) {
	p := s.Rows
	num := s.Clone()
	den := s.Clone().Scale(-1)
	for i := 0; i < p; i++ {
		num.Set(i, i, num.At(i, i)+1)
		den.Set(i, i, den.At(i, i)+1)
	}
	lu, err := mat.CLUFactor(den.T())
	if err != nil {
		return nil, fmt.Errorf("circuit: I−S singular: %w", err)
	}
	x := lu.Solve(num.T())
	return x.T().Scale(complex(r0, 0)), nil
}
