package circuit

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/mat"
)

// Solve performs a driven AC analysis at frequency f (Hz) with the given
// current injections (node index → phasor amps flowing into the node) and
// returns the node voltage phasors indexed by node (entry 0, ground, is 0).
func (c *Circuit) Solve(f float64, currents map[int]complex128) ([]complex128, error) {
	m := c.stamp(f)
	lu, err := mat.CLUFactor(m)
	if err != nil {
		return nil, fmt.Errorf("circuit: singular MNA matrix at f=%g Hz: %w", f, err)
	}
	rhs := make([]complex128, m.Rows)
	for node, amps := range currents {
		c.checkNode(node)
		if node == Ground {
			continue
		}
		rhs[node-1] += amps
	}
	sol := lu.SolveVec(rhs)
	v := make([]complex128, c.numNodes)
	for n := 1; n < c.numNodes; n++ {
		v[n] = sol[n-1]
	}
	return v, nil
}

// AddSeriesRLC wires a series R-L-C branch between nodes a and b, creating
// the internal nodes. Any of r, l may be zero (the element is omitted);
// c must be positive if used, or pass c ≤ 0 to omit the capacitor (pure RL
// branch). At least one element must be present.
func (c *Circuit) AddSeriesRLC(a, b int, r, l, cap float64) {
	type elem struct {
		kind byte
		val  float64
	}
	var chain []elem
	if r > 0 {
		chain = append(chain, elem{'R', r})
	}
	if l > 0 {
		chain = append(chain, elem{'L', l})
	}
	if cap > 0 {
		chain = append(chain, elem{'C', cap})
	}
	if len(chain) == 0 {
		panic("circuit: empty series branch")
	}
	prev := a
	for i, e := range chain {
		next := b
		if i < len(chain)-1 {
			next = c.Node()
		}
		switch e.kind {
		case 'R':
			c.AddResistor(prev, next, e.val)
		case 'L':
			c.AddInductor(prev, next, e.val)
		case 'C':
			c.AddCapacitor(prev, next, e.val)
		}
		prev = next
	}
}

// SweepS computes the scattering matrix at every frequency (Hz) in
// parallel, normalized to r0.
func (c *Circuit) SweepS(freqs []float64, r0 float64) ([]*mat.CMatrix, error) {
	out := make([]*mat.CMatrix, len(freqs))
	errs := make([]error, len(freqs))
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > len(freqs) {
		workers = len(freqs)
	}
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(freqs) {
					return
				}
				s, err := c.PortS(freqs[i], r0)
				out[i], errs[i] = s, err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SweepZ computes the port impedance matrix at every frequency in parallel.
func (c *Circuit) SweepZ(freqs []float64) ([]*mat.CMatrix, error) {
	out := make([]*mat.CMatrix, len(freqs))
	errs := make([]error, len(freqs))
	var wg sync.WaitGroup
	workers := runtime.NumCPU()
	if workers > len(freqs) {
		workers = len(freqs)
	}
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(freqs) {
					return
				}
				z, err := c.PortZ(freqs[i])
				out[i], errs[i] = z, err
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
