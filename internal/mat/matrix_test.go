package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randCMatrix(rng *rand.Rand, r, c int) *CMatrix {
	m := NewCMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return m
}

func randSPD(rng *rand.Rand, n int) *Matrix {
	b := randMatrix(rng, n+2, n)
	p := b.T().Mul(b)
	for i := 0; i < n; i++ {
		p.Set(i, i, p.At(i, i)+0.5)
	}
	return p
}

func TestMatrixBasicOps(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	sum := a.Add(b)
	if sum.At(0, 0) != 6 || sum.At(1, 1) != 12 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := b.Sub(a)
	if diff.At(0, 0) != 4 || diff.At(1, 0) != 4 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	prod := a.Mul(b)
	want := NewMatrixFrom([][]float64{{19, 22}, {43, 50}})
	if !prod.Equalish(want, 1e-14) {
		t.Fatalf("Mul wrong: %v want %v", prod, want)
	}
	if a.T().At(0, 1) != 3 {
		t.Fatalf("T wrong")
	}
	if got := a.Trace(); got != 5 {
		t.Fatalf("Trace = %v want 5", got)
	}
	sc := a.Scale(2)
	if sc.At(1, 1) != 8 {
		t.Fatalf("Scale wrong")
	}
}

func TestMatrixMulVec(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 0, -1}
	y := a.MulVec(x)
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	z := a.MulVecT([]float64{1, 1})
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("MulVecT = %v", z)
	}
}

func TestMatrixTransposeProductProperty(t *testing.T) {
	// (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		return lhs.Equalish(rhs, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 6, 7)
	s := a.Slice(1, 4, 2, 6)
	if s.Rows != 3 || s.Cols != 4 {
		t.Fatalf("Slice dims %d×%d", s.Rows, s.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if s.At(i, j) != a.At(i+1, j+2) {
				t.Fatalf("Slice content mismatch at (%d,%d)", i, j)
			}
		}
	}
	b := NewMatrix(6, 7)
	b.SetSlice(1, 2, s)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if b.At(i+1, j+2) != s.At(i, j) {
				t.Fatalf("SetSlice mismatch")
			}
		}
	}
}

func TestKronDims(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := Identity(3)
	k := a.Kron(b)
	if k.Rows != 6 || k.Cols != 6 {
		t.Fatalf("Kron dims")
	}
	if k.At(0, 0) != 1 || k.At(3, 3) != 4 || k.At(0, 3) != 2 || k.At(1, 4) != 2 {
		t.Fatalf("Kron values wrong:\n%v", k)
	}
}

func TestCMatrixHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randCMatrix(rng, 4, 5)
	h := a.H()
	for i := 0; i < 4; i++ {
		for j := 0; j < 5; j++ {
			if h.At(j, i) != complexConj(a.At(i, j)) {
				t.Fatalf("H mismatch")
			}
		}
	}
	// (A·B)ᴴ == Bᴴ·Aᴴ
	b := randCMatrix(rng, 5, 3)
	lhs := a.Mul(b).H()
	rhs := b.H().Mul(a.H())
	if !lhs.Equalish(rhs, 1e-12) {
		t.Fatalf("(AB)^H != B^H A^H")
	}
}

func complexConj(z complex128) complex128 { return complex(real(z), -imag(z)) }

func TestCMatrixMulVecH(t *testing.T) {
	a := NewCMatrixFrom([][]complex128{{1 + 1i, 2}, {0, 3 - 1i}})
	x := []complex128{1, 1i}
	got := a.MulVecH(x)
	want := a.H().MulVec(x)
	for i := range got {
		if cAbs(got[i]-want[i]) > 1e-14 {
			t.Fatalf("MulVecH = %v want %v", got, want)
		}
	}
}

func cAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	got := Norm2(x)
	want := math.Sqrt2 * 1e200
	if math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow handling: got %v want %v", got, want)
	}
	if Norm2(nil) != 0 || Norm2([]float64{0, 0}) != 0 {
		t.Fatalf("Norm2 zero cases")
	}
}

func TestDotAndCDot(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatalf("Dot")
	}
	got := CDot([]complex128{1i, 1}, []complex128{1, 1i})
	// conj(i)*1 + conj(1)*i = -i + i = 0
	if cAbs(got) > 1e-15 {
		t.Fatalf("CDot = %v want 0", got)
	}
}

func TestSymmetrize(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("Symmetrize: %v", a)
	}
}

func TestPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 2)
	a.Add(b)
}
